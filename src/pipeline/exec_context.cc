#include "pipeline/exec_context.h"

namespace k2::pipeline {

ExecContext& worker_context() {
  thread_local ExecContext ctx;
  return ctx;
}

}  // namespace k2::pipeline
