#include "pipeline/eval_pipeline.h"

#include <cmath>

#include "interp/interpreter.h"
#include "kernel/kernel_checker.h"
#include "sim/perf_model.h"

namespace k2::pipeline {

namespace {

constexpr double kErrMax = 100.0;  // safety cost of unsafe programs (§3.2)

// Margin for the early-exit proof: the test-cost lower bound is compared
// against the acceptance uniform with this much slack so floating-point
// reordering of partial sums can never flip a decision the full evaluation
// would have made differently.
constexpr double kExitMargin = 1e-9;

// One equivalence question in its self-contained form; the query policy
// itself (window first, whole-program fallback) lives in
// verify::solve_query_local so the sync path, the dispatcher workers, and
// remote solve-workers run literally the same code.
verify::SolveQuery make_query(const ebpf::Program& src,
                              const ebpf::Program& cand,
                              const std::optional<verify::WindowSpec>& win,
                              const verify::EqOptions& opts) {
  verify::SolveQuery q;
  q.src = src;
  q.cand = cand;
  q.win = win;
  q.eq = opts;
  return q;
}

}  // namespace

EvalPipeline::EvalPipeline(const ebpf::Program& src, core::TestSuite& suite,
                           verify::EqCache& cache, const EvalConfig& cfg)
    : src_(src), suite_(suite), cache_(cache), cfg_(cfg) {}

bool EvalPipeline::run_suite(const ebpf::Program& cand, double perf,
                             const RejectGate& gate, ExecContext& ctx,
                             core::TestEval& te,
                             const ebpf::InsnRange* touched) {
  const size_t n = suite_.size();
  while (order_.size() < n) order_.push_back(uint32_t(order_.size()));

  ctx.diffs.assign(n, 0.0);
  ctx.run_opts.max_insns = cfg_.max_insns;
  // Decode once (or patch the 1-2 slots the proposal touched), then run the
  // whole batch through the selected execution backend with arena-backed
  // machine reuse. The runner is thread-local (worker_context) and shared
  // across chains, so re-select the configured backend every evaluation —
  // a no-op when unchanged. Bailout accounting is delta-based for the same
  // reason: the runner's counter is cumulative across chains.
  ctx.runner.select(cfg_.exec_backend);
  const uint64_t bailouts_before = ctx.runner.jit_bailouts();
  ctx.runner.prepare(cand, touched);
  stats_.jit_bailouts += ctx.runner.jit_bailouts() - bailouts_before;
  ctx.batch.clear();
  for (size_t p = 0; p < n; ++p)
    ctx.batch.push_back(interp::SuiteTest{&suite_.test(order_[p]), nullptr});

  const double c_min =
      cfg_.params.avg_by_tests && n > 0 ? 1.0 / double(n) : 1.0;
  double running = 0;  // partial diff sum, execution order
  size_t first_fail = size_t(-1);
  bool exited = false;

  // Per-test bookkeeping and the provable-rejection gate live in the batch
  // callback; returning false is the early exit. The decision arithmetic is
  // unchanged from the per-test interp::run loop this replaces.
  ctx.runner.run_suite(
      ctx.batch, /*until_first_fail=*/false, ctx.run_opts,
      [&](uint32_t p, const interp::RunResult& r) -> bool {
        uint32_t i = order_[p];
        double d = suite_.diff_on(i, r, cfg_.params.diff);
        stats_.tests_executed++;
        ctx.diffs[i] = d;
        running += d;
        if (d == 0) {
          te.passed++;
        } else {
          te.failed++;
          if (first_fail == size_t(-1)) first_fail = p;
        }
        // Provable rejection: even the cost lower bound (error term from
        // the tests run so far, exact perf term, safety term >= 0) caps the
        // acceptance probability strictly below the pre-drawn uniform.
        // Gated on a failed test so fully-passing candidates always reach
        // the verifier.
        if (cfg_.early_exit && te.failed > 0 && gate.active() && p + 1 < n) {
          double lb = cfg_.params.alpha * (c_min * running) +
                      cfg_.params.beta * perf;
          double p_ub =
              std::min(1.0, std::exp(-gate.mcmc_beta * (lb - gate.cur_cost)));
          if (gate.u > p_ub * (1.0 + kExitMargin)) {
            stats_.tests_skipped += n - 1 - p;
            exited = true;
            return false;
          }
        }
        return true;
      });

  // Promote the killing test: the next doomed candidate dies on test one.
  if (cfg_.reorder_tests && first_fail != size_t(-1) && first_fail > 0) {
    uint32_t idx = order_[first_fail];
    order_.erase(order_.begin() + ptrdiff_t(first_fail));
    order_.insert(order_.begin(), idx);
  }

  if (!exited) {
    // Sum in canonical suite order so the cost is bit-identical no matter
    // what order the tests actually executed in.
    te.diff_sum = 0;
    for (size_t i = 0; i < n; ++i) te.diff_sum += ctx.diffs[i];
    te.all_passed = te.failed == 0;
  }
  return exited;
}

Eval EvalPipeline::evaluate(const ebpf::Program& cand,
                            const std::optional<verify::WindowSpec>& win,
                            const RejectGate& gate, ExecContext& ctx,
                            PendingEq* pending,
                            const ebpf::InsnRange* touched) {
  Eval ev;
  // Cancellation checkpoint: a cancelled run's decisions no longer matter,
  // so skip the test suite and — the expensive part — any solver query.
  if (cfg_.cancel && cfg_.cancel->load(std::memory_order_relaxed)) {
    ev.cost = kRejectedCost;
    ev.rejected_early = true;
    return ev;
  }
  // The perf term comes from the pluggable backend when one is wired in;
  // ctx.machine is lent as scratch so trace-based backends reuse the
  // worker's interpreter state (the legacy machine, not the runner's, so
  // workload runs never disturb the fast path's dirty-region bookkeeping).
  double perf = cfg_.perf_model
                    ? cfg_.perf_model->relative(cand, src_, &ctx.machine)
                    : core::perf_cost(cfg_.goal, cand, src_);
  core::TestEval te;
  if (run_suite(cand, perf, gate, ctx, te, touched)) {
    stats_.early_exits++;
    stats_.test_prunes++;
    ev.cost = kRejectedCost;
    ev.rejected_early = true;
    return ev;
  }

  bool unequal = true;
  double safe_cost = 0;
  if (!te.all_passed) {
    stats_.test_prunes++;
  } else {
    // Static safety first (cheap); solver-backed checks in full mode.
    safety::SafetyOptions sopt = cfg_.safety;
    sopt.run_solver_checks =
        cfg_.safety.run_solver_checks && !cfg_.window_mode;
    safety::SafetyResult sres = safety::check_safety(cand, sopt);
    // Checker-specific constraints (§6): K2's FOL safety is more precise
    // than the kernel checker (e.g. it knows packets are >= 14 bytes and
    // that an uninitialized stack read whose value is dead is harmless),
    // so a candidate can be K2-safe yet unloadable. Folding the checker's
    // static rules into the safety cost here is the paper's "we added
    // these checks on-demand, as we encountered programs that failed to
    // load" — and it is what makes all final outputs pass the checker
    // without post-filtering (Table 5).
    if (sres.safe && !kernel::kernel_check(cand).accepted) {
      sres.safe = false;
      sres.reason = "rejected by checker-specific constraints";
    }
    if (!sres.safe) {
      stats_.safety_rejects++;
      safe_cost = kErrMax;
      if (sres.cex) suite_.add(*sres.cex);  // prune similar ones cheaply
    } else if (pending && cfg_.dispatcher && cfg_.dispatcher->async()) {
      // Asynchronous dispatch: claim the cache slot; on a miss, queue the
      // solver call (or join another chain's identical in-flight query) and
      // return speculatively under the not-equal assumption.
      verify::EqCache::Key key = verify::EqCache::key_for(src_, cand);
      verify::EqCache::Claim cl = cache_.claim(key);
      if (cl.verdict) {
        stats_.cache_hits++;
        // A disk-tier NOT_EQUAL hit replays the persisted counterexample
        // exactly once — the suite evolves as if the cold run's solve had
        // just happened here.
        if (cl.replay_cex) confirm_cex(cand, *cl.replay_cex, ctx);
        unequal = *cl.verdict != verify::Verdict::EQUAL;
        ev.verified = !unequal;
      } else if (!cl.pending) {
        // The 64-bit slot is busy with a different program's in-flight
        // query (fingerprint collision): solve synchronously, uncached.
        stats_.solver_calls++;
        verify::SolveQuery q = make_query(src_, cand, win, cfg_.eq);
        verify::EqResult eq =
            cfg_.backend ? cfg_.backend->solve(q) : verify::solve_query_local(q);
        unequal = eq.verdict != verify::Verdict::EQUAL;
        if (eq.cex) confirm_cex(cand, *eq.cex, ctx);
        ev.verified = !unequal;
      } else {
        if (cl.owner) {
          stats_.solver_calls++;
          // The deferred solve is a self-contained SolveQuery (owns copies
          // of both programs), so nothing captures `this` — the pipeline
          // may die before the worker runs it.
          cfg_.dispatcher->submit(cache_, key, cl.pending,
                                  make_query(src_, cand, win, cfg_.eq),
                                  cfg_.backend);
        } else {
          stats_.pending_joins++;
        }
        stats_.speculations++;
        pending->ticket = cl.pending;
        pending->key = key;
        pending->cand = cand;
        pending->te = te;
        pending->perf = perf;
        ev.pending = true;
        // `unequal` stays true: the speculative cost assumes NOT_EQUAL.
      }
    } else {
      verify::EqCache::Key key = verify::EqCache::key_for(src_, cand);
      verify::EqCache::Hit hinfo;
      if (auto hit = cache_.lookup(key, &hinfo)) {
        stats_.cache_hits++;
        // Disk-tier replay-once (see the async branch above).
        if (hinfo.replay_cex) confirm_cex(cand, *hinfo.replay_cex, ctx);
        unequal = *hit != verify::Verdict::EQUAL;
      } else {
        stats_.solver_calls++;
        verify::SolveQuery q = make_query(src_, cand, win, cfg_.eq);
        verify::EqResult eq =
            cfg_.backend ? cfg_.backend->solve(q) : verify::solve_query_local(q);
        cache_.insert(key, eq.verdict, eq.cex ? &*eq.cex : nullptr);
        unequal = eq.verdict != verify::Verdict::EQUAL;
        if (eq.cex) confirm_cex(cand, *eq.cex, ctx);
      }
      ev.verified = !unequal;
    }
  }
  double err = core::error_cost(cfg_.params, te, unequal);
  ev.cost = cfg_.params.alpha * err + cfg_.params.beta * perf +
            cfg_.params.gamma * safe_cost;
  return ev;
}

void EvalPipeline::confirm_cex(const ebpf::Program& cand,
                               const interp::InputSpec& cex,
                               ExecContext& ctx) {
  // Only keep counterexamples the interpreter confirms, guarding against
  // encoder/interpreter drift.
  interp::RunResult r1 = interp::run(src_, cex, ctx.run_opts, ctx.machine);
  interp::RunResult r2 = interp::run(cand, cex, ctx.run_opts, ctx.machine);
  if (!interp::outputs_equal(src_.type, r1, r2)) suite_.add(cex);
}

Eval EvalPipeline::finalize(PendingEq& p, const verify::EqResult& eq,
                            ExecContext& ctx) {
  bool unequal = eq.verdict != verify::Verdict::EQUAL;
  // Chains sharing one query each confirm against their own candidate.
  if (eq.cex) confirm_cex(p.cand, *eq.cex, ctx);
  Eval ev;
  // The candidate reached the verifier, so it passed every test and the
  // safety checker: the γ·safe term is zero and te/perf are unchanged from
  // dispatch time — only the equivalence term needed the real verdict.
  double err = core::error_cost(cfg_.params, p.te, unequal);
  ev.cost = cfg_.params.alpha * err + cfg_.params.beta * p.perf;
  ev.verified = !unequal;
  p.ticket.reset();
  return ev;
}

std::optional<Eval> EvalPipeline::poll(PendingEq& p, ExecContext& ctx) {
  std::optional<verify::EqResult> r = p.ticket->poll();
  if (!r) return std::nullopt;
  return finalize(p, *r, ctx);
}

Eval EvalPipeline::resolve(PendingEq& p, ExecContext& ctx) {
  verify::EqResult r = p.ticket->wait();
  return finalize(p, r, ctx);
}

void EvalPipeline::cancel(PendingEq& p) {
  if (cfg_.dispatcher) cfg_.dispatcher->cancel(p.ticket);
  p.ticket.reset();
}

}  // namespace k2::pipeline
