// Per-worker execution state for candidate evaluation. One ExecContext lives
// per OS thread (see worker_context()); the interpreter Machine and the
// per-test scratch vectors inside it are re-filled, never re-allocated, as
// the worker evaluates millions of candidates.
//
// Thread-safety: an ExecContext is NOT thread-safe and never shared —
// worker_context() hands each thread its own instance, and references must
// not be passed across threads (solver workers never touch one: the async
// dispatch path re-runs counterexamples on the chain's own context at
// speculation-retire time, see EvalPipeline::poll/resolve).
#pragma once

#include <cstdint>
#include <vector>

#include "interp/fast_interp.h"
#include "interp/interpreter.h"
#include "interp/state.h"
#include "jit/backend_runner.h"

namespace k2::pipeline {

struct ExecContext {
  // Legacy-interpreter machine, used for the cold paths (counterexample
  // confirmation) — kept separate from the runner's machine so those runs
  // never disturb the fast path's dirty-region bookkeeping.
  interp::Machine machine;
  interp::RunOptions run_opts;
  // The execution engine for the hot suite loop: the decode-once/execute-
  // many interpreter plus (when EvalConfig::exec_backend selects it) the
  // x86-64 template JIT, behind one SuiteRunner-shaped seam. Holds the
  // incrementally-patched DecodedProgram, its arena-backed machine, and
  // the per-context executable code arena.
  jit::BackendRunner runner;
  // Reused batch buffer for SuiteRunner::run_suite.
  std::vector<interp::SuiteTest> batch;
  // Per-test diffs of the current candidate, indexed by the suite's
  // canonical test index (execution may visit tests in a different order;
  // costs are summed canonically for bit-stable results).
  std::vector<double> diffs;
};

// The calling thread's ExecContext. Thread-local so both pool workers and
// the driver thread (which helps drain the pool on small machines) reuse
// their interpreter state across chains.
ExecContext& worker_context();

}  // namespace k2::pipeline
