// Work-stealing thread pool shared by the search driver: Markov chains and
// final top-k re-verification are submitted as tasks instead of spawning raw
// std::threads per call site. Each worker owns a deque; it pushes and pops
// its own work LIFO (cache-warm) and steals FIFO from victims when empty, so
// uneven task lengths (chains with very different solver loads) keep all
// cores busy.
//
// This pool is for CPU-bound work only. Tasks that park their thread for
// long stretches (Z3 equivalence queries) belong on the dedicated
// verify::AsyncSolverDispatcher pool instead — a handful of hard solver
// calls here would starve every chain.
//
// Thread-safety: submit() and run_all() are safe from any thread, including
// pool workers (a worker's submission lands on its own deque; run_all's
// caller lends a hand draining the queue instead of sleeping, so nested use
// cannot deadlock). submit() never blocks on task execution; run_all()
// blocks until every passed task finished. The destructor executes any
// still-queued tasks before joining, so submitted closures must stay valid
// until their future is ready or the pool is destroyed.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace k2::pipeline {

class ThreadPool {
 public:
  // Spawns `nthreads` workers (clamped to >= 1).
  explicit ThreadPool(int nthreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return int(workers_.size()); }

  // Index of the calling pool worker in [0, size()), or -1 when called from
  // a thread outside this pool. Used to key per-worker state.
  int worker_index() const;

  // Schedules `fn` and returns a future for its result. Safe to call from
  // pool workers (the task goes on the caller's own deque).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task]() { (*task)(); });
    return fut;
  }

  // Runs all `fns` on the pool and blocks until every one finished. The
  // calling thread lends a hand by executing queued tasks instead of just
  // sleeping, so a 1-thread pool still makes progress when called from the
  // driver thread.
  void run_all(std::vector<std::function<void()>> fns);

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> q;
  };

  void enqueue(std::function<void()> fn);
  // Pops from own deque (back) or steals from a victim (front).
  bool try_get_task(int self, std::function<void()>& out);
  void worker_loop(int index);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<int> pending_{0};  // queued but not yet started tasks
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> rr_{0};  // round-robin cursor for external submits
};

}  // namespace k2::pipeline
