#include "pipeline/thread_pool.h"

#include <algorithm>

namespace k2::pipeline {

namespace {
// Maps worker threads back to their index; -1 everywhere else. One slot per
// thread is enough because a thread belongs to at most one pool.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local int tl_index = -1;
}  // namespace

ThreadPool::ThreadPool(int nthreads) {
  int n = std::max(1, nthreads);
  queues_.reserve(n);
  for (int i = 0; i < n; ++i) queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(n);
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this, i]() { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);  // same race as enqueue
    stop_.store(true);
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

int ThreadPool::worker_index() const {
  return tl_pool == this ? tl_index : -1;
}

void ThreadPool::enqueue(std::function<void()> fn) {
  int self = worker_index();
  size_t target = self >= 0 ? size_t(self)
                            : rr_.fetch_add(1, std::memory_order_relaxed) %
                                  queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->q.push_back(std::move(fn));
  }
  {
    // Bump under the CV mutex: a worker between its predicate check and its
    // sleep must not miss this task's notification.
    std::lock_guard<std::mutex> lock(wake_mu_);
    pending_.fetch_add(1, std::memory_order_release);
  }
  wake_cv_.notify_one();
}

bool ThreadPool::try_get_task(int self, std::function<void()>& out) {
  // Own queue first, newest task (LIFO: cache-warm, bounded memory).
  if (self >= 0) {
    Queue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.q.empty()) {
      out = std::move(own.q.back());
      own.q.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal the oldest task from a victim (FIFO: takes the work its owner is
  // farthest from touching).
  size_t n = queues_.size();
  size_t start = self >= 0 ? size_t(self) : 0;
  for (size_t k = 1; k <= n; ++k) {
    Queue& victim = *queues_[(start + k) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.q.empty()) {
      out = std::move(victim.q.front());
      victim.q.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(int index) {
  tl_pool = this;
  tl_index = index;
  std::function<void()> task;
  while (true) {
    if (try_get_task(index, task)) {
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [this]() {
      return stop_.load() || pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load() && pending_.load(std::memory_order_acquire) == 0) break;
  }
  tl_pool = nullptr;
  tl_index = -1;
}

void ThreadPool::run_all(std::vector<std::function<void()>> fns) {
  std::vector<std::future<void>> futs;
  futs.reserve(fns.size());
  for (auto& fn : fns) futs.push_back(submit(std::move(fn)));
  // Help drain the pool instead of blocking: matters when the caller is the
  // only runnable thread (1-core machines) or itself a pool worker. All
  // futures are waited before any result is consumed, so a task exception
  // propagates only once every sibling has finished touching shared state.
  std::function<void()> task;
  for (auto& f : futs) {
    while (f.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (try_get_task(worker_index(), task)) {
        task();
        task = nullptr;
      } else {
        f.wait_for(std::chrono::milliseconds(1));
      }
    }
  }
  for (auto& f : futs) f.get();
}

}  // namespace k2::pipeline
