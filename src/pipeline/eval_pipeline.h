// The candidate evaluation pipeline (§3, Fig. 1): test-case pruning →
// static + solver safety → cached equivalence checking → cost. Extracted
// from the inline lambda that used to live in run_chain so the sequence is
// a first-class, measurable subsystem shared by chains and re-verification.
//
// Two execution-order optimizations, both decision-preserving:
//
//  * Fail-first ordering. The pipeline keeps its own permutation of the
//    shared suite and promotes the most-recently-killing test to the front,
//    so doomed candidates die on interpreter time, not solver time.
//
//  * Provable-rejection early exit. The chain draws its acceptance
//    uniform u *before* evaluation (the evaluation consumes no randomness,
//    so the RNG stream is unchanged) and hands it to the pipeline. While
//    tests execute, the pipeline tracks a lower bound on the final cost;
//    once even that bound caps the acceptance probability strictly below u,
//    the remaining tests cannot change the chain's decision and are
//    skipped. Exit is only taken after at least one test has failed — a
//    fully-passing candidate must still reach the verifier so best-program
//    tracking is unaffected — and costs of fully-evaluated candidates are
//    summed in canonical suite order, making same-seed chain decisions
//    bit-identical to the legacy inline evaluation.
#pragma once

#include <limits>
#include <optional>

#include "core/cost.h"
#include "core/params.h"
#include "pipeline/exec_context.h"
#include "safety/safety.h"
#include "verify/cache.h"
#include "verify/window.h"

namespace k2::pipeline {

struct EvalConfig {
  core::SearchParams params;
  core::Goal goal = core::Goal::INST_COUNT;
  verify::EqOptions eq;
  safety::SafetyOptions safety;
  // Window-mode search defers solver-backed safety to final re-verification
  // (same rule the legacy inline evaluation applied).
  bool window_mode = false;
  bool reorder_tests = true;
  bool early_exit = true;
};

struct EvalStats {
  uint64_t test_prunes = 0;     // candidates killed by the test suite
  uint64_t safety_rejects = 0;
  uint64_t solver_calls = 0;    // equivalence queries actually discharged
  uint64_t cache_hits = 0;
  uint64_t early_exits = 0;     // test loops cut short by provable rejection
  uint64_t tests_executed = 0;
  uint64_t tests_skipped = 0;   // tests the early exit avoided
};

struct Eval {
  double cost = 0;
  bool verified = false;       // safe && formally equivalent
  bool rejected_early = false; // cost is +inf sentinel, decision pinned
};

// The chain's pre-drawn accept decision, exposed to the pipeline so it can
// prove rejection mid-evaluation. Inactive by default (u < 0).
struct RejectGate {
  double cur_cost = 0;  // cost of the chain's current program
  double u = -1;        // the acceptance uniform for this proposal
  double mcmc_beta = 0;
  bool active() const { return u > 0 && mcmc_beta > 0; }
};

class EvalPipeline {
 public:
  EvalPipeline(const ebpf::Program& src, core::TestSuite& suite,
               verify::EqCache& cache, const EvalConfig& cfg);

  // Evaluates one candidate against the full chain: tests, safety (with the
  // kernel-checker constraint fold-in, §6), cached equivalence (window
  // query first when `win` covers the mutation), and the §3.2 cost.
  // Counterexamples from the safety and equivalence checkers are appended
  // to the shared suite, exactly as the legacy inline evaluation did.
  Eval evaluate(const ebpf::Program& cand,
                const std::optional<verify::WindowSpec>& win,
                const RejectGate& gate, ExecContext& ctx);

  const EvalStats& stats() const { return stats_; }

  static constexpr double kRejectedCost =
      std::numeric_limits<double>::infinity();

 private:
  // Runs the suite in fail-first order; fills te and ctx.diffs. Returns
  // true when the loop exited early under `gate`.
  bool run_suite(const ebpf::Program& cand, double perf,
                 const RejectGate& gate, ExecContext& ctx,
                 core::TestEval& te);

  const ebpf::Program& src_;
  core::TestSuite& suite_;
  verify::EqCache& cache_;
  EvalConfig cfg_;
  EvalStats stats_;
  std::vector<uint32_t> order_;  // fail-first permutation of suite indices
};

}  // namespace k2::pipeline
