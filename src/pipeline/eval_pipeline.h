// The candidate evaluation pipeline (§3, Fig. 1): test-case pruning →
// static + solver safety → cached equivalence checking → cost. Extracted
// from the inline lambda that used to live in run_chain so the sequence is
// a first-class, measurable subsystem shared by chains and re-verification.
//
// Two execution-order optimizations, both decision-preserving:
//
//  * Fail-first ordering. The pipeline keeps its own permutation of the
//    shared suite and promotes the most-recently-killing test to the front,
//    so doomed candidates die on interpreter time, not solver time.
//
//  * Provable-rejection early exit. The chain draws its acceptance
//    uniform u *before* evaluation (the evaluation consumes no randomness,
//    so the RNG stream is unchanged) and hands it to the pipeline. While
//    tests execute, the pipeline tracks a lower bound on the final cost;
//    once even that bound caps the acceptance probability strictly below u,
//    the remaining tests cannot change the chain's decision and are
//    skipped. Exit is only taken after at least one test has failed — a
//    fully-passing candidate must still reach the verifier so best-program
//    tracking is unaffected — and costs of fully-evaluated candidates are
//    summed in canonical suite order, making same-seed chain decisions
//    bit-identical to the legacy inline evaluation.
//
// Asynchronous solver dispatch (ISSUE 2): when an AsyncSolverDispatcher is
// wired in and the caller passes a PendingEq out-parameter, an equivalence
// query that misses the cache no longer blocks. evaluate() submits the
// query to the solver pool (or joins another chain's identical in-flight
// query via the cache's PendingVerdict) and returns a *speculative* Eval —
// cost computed under the assumption the verdict will be "not equal", the
// statistically common outcome, with Eval::pending set. The chain keeps
// proposing from that assumption and later retires the speculation through
// poll()/resolve(), which deliver the corrected Eval once the real verdict
// lands (the chain rolls back via its undo-log if the solver says EQUAL —
// see core/mcmc.cc). cancel() detaches a speculation whose chain state was
// rolled away.
//
// Thread-safety: an EvalPipeline instance belongs to ONE chain (thread).
// evaluate()/poll()/resolve()/cancel() and stats() must be called from that
// thread only; the shared TestSuite, EqCache and AsyncSolverDispatcher they
// touch are themselves thread-safe. evaluate() blocks on Z3 only in the
// synchronous path; poll() never blocks; resolve() blocks until the solver
// pool publishes the verdict.
#pragma once

#include <atomic>
#include <limits>
#include <optional>

#include "core/cost.h"
#include "core/params.h"
#include "jit/exec_backend.h"
#include "pipeline/exec_context.h"
#include "safety/safety.h"
#include "verify/cache.h"
#include "verify/solver_dispatch.h"
#include "verify/window.h"

namespace k2::sim {
class PerfModel;
}

namespace k2::pipeline {

struct EvalConfig {
  core::SearchParams params;
  core::Goal goal = core::Goal::INST_COUNT;
  verify::EqOptions eq;
  safety::SafetyOptions safety;
  // Window-mode search defers solver-backed safety to final re-verification
  // (same rule the legacy inline evaluation applied).
  bool window_mode = false;
  bool reorder_tests = true;
  bool early_exit = true;
  // Interpreter step budget per test execution (RunOptions::max_insns),
  // plumbed from CompileOptions / k2c --max-insns.
  uint64_t max_insns = 1u << 20;
  // Which engine runs candidates against the suite (jit/exec_backend.h):
  // the fast interpreter (default, the reference semantics) or the x86-64
  // template JIT with automatic per-program interpreter fallback. Plumbed
  // from CompileOptions / k2c --exec-backend. Decision-neutral by
  // construction: the JIT is differentially fuzzed to produce bit-identical
  // RunResults, so same-seed searches pick the same winners either way.
  jit::ExecBackend exec_backend = jit::ExecBackend::FAST_INTERP;
  // Non-null + dispatcher->async(): equivalence queries go through the
  // solver pool when the caller opts in per-call (see evaluate()). Null or
  // a zero-worker dispatcher reproduces the synchronous PR 1 path exactly.
  verify::AsyncSolverDispatcher* dispatcher = nullptr;
  // Where equivalence queries actually solve (verify/solver_backend.h):
  // null runs solve_query_local in-process — bit-identical to the legacy
  // inline policy; a RemoteSolverBackend farms queries to solve-worker
  // processes. Applies to both the synchronous path and dispatched tasks.
  // Final re-verification (core/compiler.cc) ignores it by design.
  verify::SolverBackend* backend = nullptr;
  // Pluggable perf(p) backend for the cost stage (sim/perf_model.h). The
  // model must outlive the pipeline and be goal-consistent with `goal`.
  // Null falls back to core::perf_cost(goal, ...) — bit-identical to the
  // INST_COUNT / STATIC_LATENCY backends, so legacy callers are unchanged.
  const sim::PerfModel* perf_model = nullptr;
  // Cooperative cancellation checkpoint (api::CompilerService): when the
  // flag is set, evaluate() returns a rejected Eval immediately instead of
  // running tests or (crucially) a Z3 query that could park the thread for
  // its full timeout budget. The flag is only consulted, never written; an
  // unset flag leaves evaluation bit-identical.
  const std::atomic<bool>* cancel = nullptr;
};

struct EvalStats {
  uint64_t test_prunes = 0;     // candidates killed by the test suite
  uint64_t safety_rejects = 0;
  uint64_t solver_calls = 0;    // queries solved inline (sync) or submitted
                                // to the dispatcher (async; submit-time
                                // count — cancellation may abandon a few)
  uint64_t cache_hits = 0;
  uint64_t early_exits = 0;     // test loops cut short by provable rejection
  uint64_t tests_executed = 0;
  uint64_t tests_skipped = 0;   // tests the early exit avoided
  // Async dispatch observability:
  uint64_t speculations = 0;    // evaluations returned with pending verdicts
  uint64_t pending_joins = 0;   // queries shared with another chain in flight
  // JIT backend observability: prepared candidates that fell back to the
  // interpreter (unsupported helper / oversized program / no executable
  // memory). Always 0 under FAST_INTERP.
  uint64_t jit_bailouts = 0;
};

struct Eval {
  double cost = 0;
  bool verified = false;       // safe && formally equivalent
  bool rejected_early = false; // cost is +inf sentinel, decision pinned
  bool pending = false;        // async: cost assumes NOT_EQUAL; verdict in
                               // flight, retire via poll()/resolve()
};

// The chain's pre-drawn accept decision, exposed to the pipeline so it can
// prove rejection mid-evaluation. Inactive by default (u < 0).
struct RejectGate {
  double cur_cost = 0;  // cost of the chain's current program
  double u = -1;        // the acceptance uniform for this proposal
  double mcmc_beta = 0;
  bool active() const { return u > 0 && mcmc_beta > 0; }
};

// Handle for one speculated equivalence verdict: the in-flight query plus
// everything finalize needs to turn the real verdict into a corrected Eval
// (the test evaluation and perf term were computed before dispatch and do
// not change). Obtained from evaluate(); consumed by exactly one of
// poll()-returning-a-value, resolve(), or cancel().
struct PendingEq {
  verify::PendingHandle ticket;
  verify::EqCache::Key key;
  ebpf::Program cand;  // this chain's candidate, for cex confirmation —
                       // chains sharing one query confirm against their own
  core::TestEval te;
  double perf = 0;
  bool valid() const { return ticket != nullptr; }
};

class EvalPipeline {
 public:
  EvalPipeline(const ebpf::Program& src, core::TestSuite& suite,
               verify::EqCache& cache, const EvalConfig& cfg);

  // Evaluates one candidate against the full chain: tests, safety (with the
  // kernel-checker constraint fold-in, §6), cached equivalence (window
  // query first when `win` covers the mutation), and the §3.2 cost.
  // Counterexamples from the safety and equivalence checkers are appended
  // to the shared suite, exactly as the legacy inline evaluation did.
  //
  // `pending` opts into asynchronous dispatch: when non-null and a
  // dispatcher with workers is configured, a cache-missing equivalence
  // query is submitted to the solver pool instead of blocking, `*pending`
  // is filled, and the returned Eval carries `pending == true` with the
  // cost computed under the rejected (not-equal) assumption. With a null
  // `pending` (or no dispatcher) the call is fully synchronous and
  // bit-identical to the PR 1 pipeline.
  //
  // `touched` is the instruction range the proposal mutated (from
  // ProposalGen::propose): the per-worker decoded program is patched in
  // place instead of re-decoded. Null forces a full decode — required for
  // the first evaluation of a chain and after any discontinuous program
  // change (the chain's speculative rollback calls ctx.runner.invalidate()
  // for the same reason).
  Eval evaluate(const ebpf::Program& cand,
                const std::optional<verify::WindowSpec>& win,
                const RejectGate& gate, ExecContext& ctx,
                PendingEq* pending = nullptr,
                const ebpf::InsnRange* touched = nullptr);

  // Retires a speculation. poll() never blocks: nullopt while the solver is
  // still working, the corrected Eval once the verdict landed. resolve()
  // blocks until the verdict lands. Both confirm and append the solver's
  // counterexample (if any) to the shared suite, then invalidate `p`.
  std::optional<Eval> poll(PendingEq& p, ExecContext& ctx);
  Eval resolve(PendingEq& p, ExecContext& ctx);

  // Abandons a speculation whose chain state was rolled back: detaches this
  // chain from the in-flight query (the query itself is skipped only when
  // no other chain still waits on it) and invalidates `p`.
  void cancel(PendingEq& p);

  const EvalStats& stats() const { return stats_; }

  static constexpr double kRejectedCost =
      std::numeric_limits<double>::infinity();

 private:
  // Runs the suite in fail-first order through the batched fast-interpreter
  // entry point (interp::SuiteRunner::run_suite over the pre-decoded
  // candidate); fills te and ctx.diffs. Returns true when the loop exited
  // early under `gate`.
  bool run_suite(const ebpf::Program& cand, double perf,
                 const RejectGate& gate, ExecContext& ctx,
                 core::TestEval& te, const ebpf::InsnRange* touched);

  // Appends a solver counterexample to the shared suite iff the interpreter
  // confirms the disagreement between src_ and `cand`.
  void confirm_cex(const ebpf::Program& cand, const interp::InputSpec& cex,
                   ExecContext& ctx);

  // Turns the real verdict into the corrected Eval for a speculation.
  Eval finalize(PendingEq& p, const verify::EqResult& eq, ExecContext& ctx);

  const ebpf::Program& src_;
  core::TestSuite& suite_;
  verify::EqCache& cache_;
  EvalConfig cfg_;
  EvalStats stats_;
  std::vector<uint32_t> order_;  // fail-first permutation of suite indices
};

}  // namespace k2::pipeline
