#include "api/service.h"

#include <chrono>
#include <condition_variable>
#include <deque>

#include "api/schema.h"
#include "core/batch_compiler.h"
#include "ebpf/assembler.h"

namespace k2::api {

namespace {
using Clock = std::chrono::steady_clock;
}

struct JobHandle::Job {
  std::string id;
  CompileRequest req;
  EventFn callback;  // immutable after submit
  std::atomic<bool> cancel_flag{false};
  Clock::time_point submitted;
  size_t max_events = 4096;

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  JobState state = JobState::QUEUED;       // guarded by mu
  std::deque<Event> events;                // guarded by mu (bounded ring)
  uint64_t next_seq = 1;                   // guarded by mu
  uint64_t dropped = 0;                    // events aged out; guarded by mu
  CompileResponse resp;                    // guarded by mu; set at terminal
  // Per-job resource budget (request budget_wall_ms/budget_iters), armed in
  // run_job when either cap is set. Job-owned for the same lifetime reason
  // as the store/backend below: chains observe it through CompileServices.
  core::JobBudget budget;
  // Job-level overrides of the service-wide store/backend (request-level
  // cache_dir / solver_endpoints). Owned by the job, not stack-allocated in
  // run_job: a cancelled speculation's task can sit in the shared
  // dispatcher queue past run_job's return, and jobs_ outlives the
  // dispatcher, so Job members outlive every drained task. Declared before
  // `cache` so the cache (which writes through to the store) dies first.
  std::optional<verify::CacheStore> store;
  std::optional<verify::RemoteSolverBackend> backend;
  // Single-mode jobs own their equivalence cache so pending-verdict counts
  // stay observable after cancellation (batch jobs use per-benchmark
  // caches inside BatchCompiler::run).
  std::shared_ptr<verify::EqCache> cache;

  bool terminal_locked() const {
    return state == JobState::DONE || state == JobState::FAILED ||
           state == JobState::CANCELLED;
  }

  // Appends one event (assigning its seq) and invokes the callback outside
  // the lock, preserving seq order because emit() is only called from the
  // single thread running this job.
  void emit(std::string type, util::Json data) {
    Event ev;
    ev.job_id = id;
    ev.type = std::move(type);
    ev.data = std::move(data);
    ev.t_sec =
        std::chrono::duration<double>(Clock::now() - submitted).count();
    {
      std::lock_guard<std::mutex> lock(mu);
      ev.seq = next_seq++;
      events.push_back(ev);
      // Drop-oldest policy for slow consumers: the ring is bounded, the
      // oldest event ages out, and `dropped` counts what a late poll(0) can
      // no longer see (its first seq is dropped + 1 — a detectable gap, not
      // silent loss). Seq numbering never skips.
      if (events.size() > max_events) {
        events.pop_front();
        dropped++;
      }
    }
    if (callback) callback(ev);
  }
};

util::Json event_to_json(const Event& e) {
  util::Json j;
  j.set("schema", kEventSchema);
  j.set("job", e.job_id);
  j.set("seq", e.seq);
  j.set("type", e.type);
  j.set("t_sec", e.t_sec);
  if (e.data.is_object())
    for (const auto& [key, value] : e.data.as_object()) j.set(key, value);
  return j;
}

// ---- JobHandle --------------------------------------------------------------

const std::string& JobHandle::id() const { return job_->id; }

JobState JobHandle::state() const {
  std::lock_guard<std::mutex> lock(job_->mu);
  return job_->state;
}

bool JobHandle::terminal() const {
  std::lock_guard<std::mutex> lock(job_->mu);
  return job_->terminal_locked();
}

bool JobHandle::cancel() {
  {
    std::lock_guard<std::mutex> lock(job_->mu);
    if (job_->terminal_locked()) return false;
  }
  job_->cancel_flag.store(true, std::memory_order_relaxed);
  return true;
}

void JobHandle::wait() const {
  std::unique_lock<std::mutex> lock(job_->mu);
  job_->cv.wait(lock, [this] { return job_->terminal_locked(); });
}

std::vector<Event> JobHandle::poll(uint64_t after) const {
  std::vector<Event> out;
  std::lock_guard<std::mutex> lock(job_->mu);
  for (const Event& e : job_->events)
    if (e.seq > after) out.push_back(e);
  return out;
}

uint64_t JobHandle::last_seq() const {
  std::lock_guard<std::mutex> lock(job_->mu);
  return job_->next_seq - 1;
}

CompileResponse JobHandle::response() const {
  std::lock_guard<std::mutex> lock(job_->mu);
  if (!job_->terminal_locked())
    throw std::logic_error("JobHandle::response(): job " + job_->id +
                           " is still " + to_string(job_->state));
  return job_->resp;
}

size_t JobHandle::pending_eq_queries() const {
  return job_->cache ? job_->cache->pending_count() : 0;
}

uint64_t JobHandle::events_dropped() const {
  std::lock_guard<std::mutex> lock(job_->mu);
  return job_->dropped;
}

// ---- CompilerService --------------------------------------------------------

CompilerService::CompilerService(ServiceOptions opts)
    : opts_(opts),
      dispatcher_(std::max(0, opts.solver_workers)),
      pool_(std::max(1, opts.threads)) {
  if (!opts_.cache_dir.empty()) {
    store_.emplace();
    std::string err;
    if (!store_->open(opts_.cache_dir, &err))
      throw std::runtime_error("cache_dir '" + opts_.cache_dir + "': " + err);
  }
  if (!opts_.solver_endpoints.empty()) {
    verify::RemoteSolverBackend::Options bo;
    bo.endpoints = opts_.solver_endpoints;
    bo.portfolio = std::max(1, opts_.portfolio);
    backend_.emplace(bo);
  }
}

CompilerService::~CompilerService() { shutdown(/*cancel_running=*/true); }

JobHandle CompilerService::submit(CompileRequest req, EventFn cb) {
  req.validate_or_throw();
  auto job = std::make_shared<JobHandle::Job>();
  job->req = std::move(req);
  job->callback = std::move(cb);
  job->submitted = Clock::now();
  job->max_events = std::max<size_t>(16, opts_.max_events_per_job);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_)
      throw std::logic_error("CompilerService: submit() after shutdown()");
    // Admission control: count this service's queued/active jobs under the
    // same lock that will enqueue, so the bound can never be raced past.
    // Rejection happens AFTER validation — an invalid request is a
    // validation failure, not load shed — and before an id is assigned, so
    // rejected requests leave no trace beyond the counter.
    if (opts_.max_queued_jobs > 0 || opts_.max_active_jobs > 0) {
      size_t queued = 0, active = 0;
      for (const auto& j : jobs_) {
        std::lock_guard<std::mutex> jlock(j->mu);
        if (j->terminal_locked()) continue;
        active++;
        if (j->state == JobState::QUEUED) queued++;
      }
      if (opts_.max_active_jobs > 0 && active >= opts_.max_active_jobs) {
        rejected_++;
        throw OverloadError("max_active_jobs", active, opts_.max_active_jobs);
      }
      if (opts_.max_queued_jobs > 0 && queued >= opts_.max_queued_jobs) {
        rejected_++;
        throw OverloadError("max_queued_jobs", queued, opts_.max_queued_jobs);
      }
    }
    job->id = "job-" + std::to_string(next_id_++);
    jobs_.push_back(job);
  }
  job->emit("state", [&] {
    util::Json d;
    d.set("state", to_string(JobState::QUEUED));
    return d;
  }());
  pool_.submit([this, job]() { run_job(job); });
  return JobHandle(job);
}

void CompilerService::finish(const std::shared_ptr<JobHandle::Job>& job,
                             JobState terminal) {
  {
    std::lock_guard<std::mutex> lock(job->mu);
    job->state = terminal;
    job->resp.job_id = job->id;
    job->resp.state = terminal;
    job->resp.wall_secs =
        std::chrono::duration<double>(Clock::now() - job->submitted).count();
  }
  util::Json d;
  d.set("state", to_string(terminal));
  {
    std::lock_guard<std::mutex> lock(job->mu);
    if (!job->resp.error.empty()) d.set("error", job->resp.error);
  }
  job->emit("state", std::move(d));
  job->cv.notify_all();
}

void CompilerService::run_job(std::shared_ptr<JobHandle::Job> job) {
  if (job->cancel_flag.load(std::memory_order_relaxed)) {
    finish(job, JobState::CANCELLED);  // cancelled while still queued
    return;
  }
  {
    std::lock_guard<std::mutex> lock(job->mu);
    job->state = JobState::RUNNING;
  }
  job->emit("state", [&] {
    util::Json d;
    d.set("state", to_string(JobState::RUNNING));
    return d;
  }());

  // Arm the per-job resource budget now rather than at submit: the wall
  // window measures run time, so time spent QUEUED under load is not
  // charged against the job.
  core::JobBudget* budget = nullptr;
  if (job->req.budget_wall_ms > 0 || job->req.budget_iters > 0) {
    job->budget.arm(job->req.budget_wall_ms, job->req.budget_iters);
    budget = &job->budget;
  }

  // Chain/batch progress → the job's event stream. Runs on engine threads;
  // seq assignment and ring insertion are serialized by the job mutex so
  // poll() always observes strictly monotonic order. Callback *invocation*
  // order matches seq for deterministic jobs (one emitting thread);
  // parallel-chain jobs may deliver callbacks slightly out of order —
  // consumers that need strict order use poll().
  core::ProgressFn progress = [job](const core::ProgressEvent& e) {
    util::Json d;
    const char* type = "tick";
    switch (e.kind) {
      case core::ProgressEvent::Kind::CHAIN_TICK: type = "tick"; break;
      case core::ProgressEvent::Kind::NEW_BEST: type = "best"; break;
      case core::ProgressEvent::Kind::JOB_DONE: type = "job_done"; break;
    }
    if (!e.benchmark.empty()) d.set("benchmark", e.benchmark);
    if (!e.setting.empty()) d.set("setting", e.setting);
    if (e.kind == core::ProgressEvent::Kind::JOB_DONE) {
      d.set("improved", e.improved);
      d.set("best_perf", e.perf);
      d.set("wall_secs", e.wall_secs);
      d.set("cache_hits", e.cache_hits);
      d.set("cache_misses", e.cache_misses);
      d.set("solver_calls", e.solver_calls);
    } else {
      d.set("chain", int64_t(e.chain));
      d.set("iter", e.iter);
      d.set("proposals", e.proposals);
      d.set(e.kind == core::ProgressEvent::Kind::NEW_BEST ? "perf"
                                                          : "best_perf",
            e.perf);
    }
    job->emit(type, std::move(d));
  };

  // Effective async dispatch needs BOTH the request to ask for workers and
  // the service to own some; otherwise the job runs the synchronous path.
  // When declining to share, the lowered options' solver_workers is zeroed
  // below so the engine cannot spin up a private per-job Z3 pool — the
  // dispatcher is a service-level resource, ONE per service.
  verify::AsyncSolverDispatcher* dispatcher =
      job->req.solver_workers > 0 && dispatcher_.async() ? &dispatcher_
                                                         : nullptr;

  JobState terminal = JobState::DONE;
  try {
    if (job->req.mode == CompileRequest::Mode::SINGLE) {
      ebpf::Program src = job->req.resolve_program();
      core::CompileOptions copts = job->req.to_compile_options();
      if (!dispatcher) copts.solver_workers = 0;
      job->cache = std::make_shared<verify::EqCache>();
      // Persistent store: a request-level cache_dir overrides the
      // service-wide store. The attach happens here (not in compile())
      // because the cache is job-owned — external to the engine.
      verify::CacheStore* store = store_ ? &*store_ : nullptr;
      if (!job->req.cache_dir.empty()) {
        job->store.emplace();
        std::string err;
        if (!job->store->open(job->req.cache_dir, &err))
          throw std::runtime_error("cache_dir '" + job->req.cache_dir +
                                   "': " + err);
        store = &*job->store;
      }
      if (store) {
        bool uw = copts.force_windows
                      ? *copts.force_windows
                      : src.num_real_insns() > copts.window_threshold;
        job->cache->attach_store(
            store,
            verify::CacheStore::options_fingerprint(copts.eq, uw));
      }
      // Remote backend: request-level endpoints override the service-wide
      // backend. Job-owned for the same lifetime reason as the store.
      verify::SolverBackend* backend = backend_ ? &*backend_ : nullptr;
      if (!job->req.solver_endpoints.empty()) {
        verify::RemoteSolverBackend::Options bo;
        bo.endpoints = job->req.solver_endpoints;
        bo.portfolio = std::max(1, job->req.portfolio);
        job->backend.emplace(bo);
        backend = &*job->backend;
      }
      core::CompileServices svc;
      svc.dispatcher = dispatcher;
      svc.cache = job->cache.get();
      svc.backend = backend;
      svc.sequential = job->req.deterministic;
      // Parallel-chain jobs shard their chains over the service pool
      // (re-entrant run_all) instead of nesting a second pool.
      svc.pool = &pool_;
      svc.cancel = &job->cancel_flag;
      svc.progress = progress;
      svc.tick_every = opts_.tick_every;
      svc.budget = budget;
      verify::AsyncSolverDispatcher::Stats ds_before = dispatcher_.stats();
      core::CompileResult r = core::compile(src, copts, svc);
      if (dispatcher) {
        // Same owner-reports rule as the batch path below: monotone
        // counters as exact per-job deltas, queue_peak as the service-
        // lifetime high-water mark.
        verify::AsyncSolverDispatcher::Stats ds_after = dispatcher_.stats();
        r.solver_timeouts = ds_after.timeouts - ds_before.timeouts;
        r.solver_abandoned = ds_after.abandoned - ds_before.abandoned;
        r.solver_queue_peak = ds_after.queue_peak;
      }
      if (r.cancelled) terminal = JobState::CANCELLED;
      std::lock_guard<std::mutex> lock(job->mu);
      job->resp.best_asm = ebpf::disassemble(r.best);
      job->resp.best_slots = r.best.size_slots();
      job->resp.single = std::move(r);
    } else {
      core::BatchServices bsvc;
      bsvc.pool = &pool_;
      bsvc.dispatcher = dispatcher;
      // A request-level cache_dir / endpoint list takes precedence: leave
      // the shared service handle null so the batch builds its own from
      // base.cache_dir / base.solver_endpoints (safe — batch run() drains
      // the dispatcher before its locals die).
      bsvc.store =
          job->req.cache_dir.empty() && store_ ? &*store_ : nullptr;
      bsvc.backend = job->req.solver_endpoints.empty() && backend_
                         ? &*backend_
                         : nullptr;
      bsvc.cancel = &job->cancel_flag;
      bsvc.progress = progress;
      bsvc.tick_every = opts_.tick_every;
      bsvc.budget = budget;
      core::BatchOptions bopts = job->req.to_batch_options();
      if (!dispatcher) bopts.base.solver_workers = 0;
      verify::AsyncSolverDispatcher::Stats ds_before = dispatcher_.stats();
      core::BatchReport rep = core::BatchCompiler(std::move(bopts)).run(bsvc);
      if (dispatcher) {
        // The engine leaves dispatcher-level totals to the dispatcher's
        // owner (us). timeouts/abandoned are monotone, so the delta is this
        // job's exact share; queue_peak is a service-lifetime high-water
        // mark shared with any concurrently-running jobs.
        verify::AsyncSolverDispatcher::Stats ds_after = dispatcher_.stats();
        rep.totals.solver_timeouts = ds_after.timeouts - ds_before.timeouts;
        rep.totals.solver_abandoned =
            ds_after.abandoned - ds_before.abandoned;
        rep.totals.solver_queue_peak = ds_after.queue_peak;
      }
      if (rep.cancelled) terminal = JobState::CANCELLED;
      std::lock_guard<std::mutex> lock(job->mu);
      job->resp.batch = std::move(rep);
    }
  } catch (const std::exception& e) {
    terminal = JobState::FAILED;
    std::lock_guard<std::mutex> lock(job->mu);
    job->resp.error = e.what();
  }
  finish(job, terminal);
}

JobHandle CompilerService::find(const std::string& job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& job : jobs_)
    if (job->id == job_id) return JobHandle(job);
  return JobHandle();
}

std::vector<std::string> CompilerService::job_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& job : jobs_) out.push_back(job->id);
  return out;
}

size_t CompilerService::active_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& job : jobs_) {
    std::lock_guard<std::mutex> jlock(job->mu);
    if (!job->terminal_locked()) n++;
  }
  return n;
}

bool CompilerService::idle() const {
  return active_jobs() == 0 && dispatcher_.stats().queue_depth == 0;
}

verify::AsyncSolverDispatcher::Stats CompilerService::solver_stats() const {
  return dispatcher_.stats();
}

size_t CompilerService::pending_eq_queries() const {
  std::vector<std::shared_ptr<JobHandle::Job>> jobs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs = jobs_;
  }
  size_t n = 0;
  for (const auto& job : jobs)
    if (job->cache) n += job->cache->pending_count();
  return n;
}

namespace {
void accumulate(verify::EqCache::Stats& total,
                const verify::EqCache::Stats& s) {
  total.hits += s.hits;
  total.misses += s.misses;
  total.insertions += s.insertions;
  total.collisions += s.collisions;
  total.pending_joins += s.pending_joins;
  total.pending_abandons += s.pending_abandons;
  total.disk_hits += s.disk_hits;
  total.disk_loaded += s.disk_loaded;
  total.disk_writes += s.disk_writes;
}
}  // namespace

verify::EqCache::Stats CompilerService::cache_stats() const {
  std::vector<std::shared_ptr<JobHandle::Job>> jobs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs = jobs_;
  }
  verify::EqCache::Stats total;
  for (const auto& job : jobs)
    if (job->cache) accumulate(total, job->cache->stats());
  return total;
}

ServiceMetrics CompilerService::metrics() const {
  ServiceMetrics m;
  // One pass under the service mutex: the job set is frozen, each job's
  // state / ring depth / drop counter are read under its own lock, and each
  // cache contributes an atomic EqCache::Snapshot (stats + pending under
  // one all-shard lock) — so the state sums always add up to `submitted`
  // and cache/pending_eq are never torn against each other. (A RUNNING
  // job's own counters keep advancing, of course; consistency here means
  // the reported numbers describe one coherent gather, not a stopped
  // world.)
  std::lock_guard<std::mutex> lock(mu_);
  m.submitted = next_id_ - 1;
  m.rejected = rejected_;
  for (const auto& job : jobs_) {
    std::shared_ptr<verify::EqCache> cache;
    {
      std::lock_guard<std::mutex> jlock(job->mu);
      switch (job->state) {
        case JobState::QUEUED: m.queued++; break;
        case JobState::RUNNING: m.running++; break;
        case JobState::DONE: m.done++; break;
        case JobState::FAILED: m.failed++; break;
        case JobState::CANCELLED: m.cancelled++; break;
      }
      m.event_backlog += job->events.size();
      m.events_dropped += job->dropped;
      if (job->terminal_locked()) {
        if (job->resp.single) m.jit_bailouts += job->resp.single->jit_bailouts;
        if (job->resp.batch)
          m.jit_bailouts += job->resp.batch->totals.jit_bailouts;
        // Workload provenance: which scenario each finished job priced
        // under, keyed name@fingerprint so a renamed-but-identical file and
        // its catalog twin land in the same bucket.
        const std::string* sn = nullptr;
        const std::string* fp = nullptr;
        if (job->resp.single) {
          sn = &job->resp.single->scenario;
          fp = &job->resp.single->scenario_fingerprint;
        } else if (job->resp.batch) {
          sn = &job->resp.batch->scenario;
          fp = &job->resp.batch->scenario_fingerprint;
        }
        if (sn && !sn->empty()) m.scenario_jobs[*sn + "@" + *fp]++;
      }
      cache = job->cache;
    }
    if (cache) {
      verify::EqCache::Snapshot cs = cache->snapshot();
      accumulate(m.cache, cs.stats);
      m.pending_eq += cs.pending;
    }
  }
  m.solver = dispatcher_.stats();
  return m;
}

void CompilerService::shutdown(bool cancel_running) {
  std::vector<std::shared_ptr<JobHandle::Job>> jobs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    jobs = jobs_;
  }
  if (cancel_running)
    for (const auto& job : jobs)
      job->cancel_flag.store(true, std::memory_order_relaxed);
  for (const auto& job : jobs) {
    std::unique_lock<std::mutex> lock(job->mu);
    job->cv.wait(lock, [&] { return job->terminal_locked(); });
  }
  // Every job is terminal; settle queued/in-flight solver tasks (abandoning
  // released speculations) so pending_eq_queries() reads 0 on clean exit
  // and no task outlives the jobs it points into.
  dispatcher_.drain();
}

}  // namespace k2::api
