// The single home of every wire-schema version string the system speaks.
// Bump a constant here (v1 → v2) and every producer stamps the new version
// while every consumer rejects the old one with a clear error — no version
// string is ever written out from anywhere else.
//
// This header is deliberately dependency-free (constants only) so that any
// layer — including src/core, which sits *below* src/api in the layer
// stack — can name a schema version without inverting the architecture.
// Everything else in src/api is strictly top-of-stack.
#pragma once

namespace k2::api {

// api::CompileRequest / api::CompileResponse (src/api/request.h,
// src/api/response.h). One family version for the pair: a request and its
// response always travel together, distinguished by the "kind" field.
inline constexpr const char* kCompileSchema = "k2-compile/v1";

// core::BatchReport (src/core/batch_compiler.h): the structured JSON
// report of a corpus batch (`k2c --corpus --report out.json`), embedded
// verbatim as the "batch" member of a batch-mode CompileResponse.
inline constexpr const char* kBatchReportSchema = "k2-batch-report/v1";

// api::Event (src/api/service.h): one entry of a job's progress/event
// stream, as emitted by `k2c serve` and JobHandle::poll().
inline constexpr const char* kEventSchema = "k2-event/v1";

// The newline-delimited-JSON control protocol `k2c serve` speaks
// (src/api/serve.h); sent back in every hello/shutdown reply.
inline constexpr const char* kServeProtocol = "k2-serve/v1";

// The newline-delimited-JSON solve protocol spoken between a
// RemoteSolverBackend and `k2c solve-worker` processes
// (src/verify/solve_protocol.h); sent back in every hello reply.
inline constexpr const char* kSolveProtocol = "k2-solve/v1";

// scenario::Scenario (src/scenario/scenario.h): a declarative traffic
// scenario — packet-size/flow distributions, arrival shaping, map-state
// regimes — expanded into deterministic workloads for the TRACE_LATENCY
// cost stage. Carried inline in CompileRequest.scenario or as a
// standalone file (`k2c --scenario=<file>`).
inline constexpr const char* kScenarioSchema = "k2-scenario/v1";

// The on-disk persistent equivalence-cache store format
// (src/verify/cache_store.h): the header line of every shard file.
inline constexpr const char* kEqCacheSchema = "k2-eqcache/v1";

// The report bench_micro_interp emits (bench/micro_interp.cc). v2: adds
// the JIT backend column (jit_execs_per_sec, jit_speedup per row, and
// geomean_jit_speedup) to the legacy-vs-decoded comparison.
inline constexpr const char* kMicroInterpSchema = "k2-microinterp/v2";

// The load/soak report bench_serve_load emits (bench/serve_load.cc):
// throughput, per-op latency percentiles, queue depths, and error/cancel
// counts from one load run against the serve protocol.
inline constexpr const char* kLoadReportSchema = "k2-loadreport/v1";

}  // namespace k2::api
