// `k2c serve` — the long-running service mode: a newline-delimited-JSON
// (NDJSON) control protocol over stdio or a unix-domain socket, fronting
// one api::CompilerService. One request object per line in, one reply
// object per line out, in request order (protocol k2-serve/v1; the full
// wire grammar with a worked netcat example lives in docs/API.md).
//
// Ops:
//   {"op":"hello"}                         → capabilities + protocol version
//   {"op":"submit","request":{...}}        → {"ok":true,"job":"job-1",...}
//   {"op":"status","job":"job-1"}          → state + event count
//   {"op":"events","job":"job-1","after":N}→ events with seq > N
//   {"op":"result","job":"job-1"}          → terminal CompileResponse
//   {"op":"wait","job":"job-1"}            → blocks until terminal, → status
//   {"op":"cancel","job":"job-1"}          → requests cooperative cancel
//   {"op":"stats"}                         → service counters: jobs, solver
//                                            queue, cache tiers (memory +
//                                            disk), store and solver farm
//   {"op":"metrics"}                       → one consistent snapshot: jobs
//                                            by state, admission rejections,
//                                            event-ring backlog/drops,
//                                            configured limits, solver +
//                                            cache counters
//   {"op":"shutdown"}                      → cancels live jobs, drains the
//                                            solver queue, ends the loop;
//                                            reply reports pending_eq (0 on
//                                            a clean shutdown)
//
// Every reply carries "ok"; failures carry "error" (and "diagnostics" with
// $.field paths for invalid submissions) instead of closing the
// connection. Malformed JSON lines get an error reply too — the loop only
// ends on shutdown or EOF.
//
// The loop is synchronous and single-connection by design: it blocks on
// one line at a time while submitted jobs make progress on the service's
// pool in the background, which is exactly the shape a supervisor pipe or
// a socat/netcat session wants. (Concurrent clients would each run their
// own ServeLoop over a shared CompilerService; the service is fully
// thread-safe.)
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "api/service.h"

namespace k2::api {

// One NDJSON request line in → one reply line out (no trailing newline);
// sets *stop to end the session. The transport-agnostic shape shared by
// ServeLoop::handle and verify::SolveWorker::handle_line.
using LineHandler = std::function<std::string(const std::string&, bool*)>;

// Generic single-client NDJSON unix-socket server: binds `path` (replacing
// any existing file), accepts one client at a time, pumps each line
// through `handler`, and returns when a handler sets *stop. Returns 0 on
// success, errno-style on socket errors. Both `k2c serve --socket` and
// `k2c solve-worker --socket` are thin wrappers over this.
int serve_lines_on_unix_socket(const std::string& path,
                               const LineHandler& handler);

class ServeLoop {
 public:
  // The service must outlive the loop.
  explicit ServeLoop(CompilerService& service) : service_(service) {}

  // Handles ONE request line and returns the reply line (no trailing
  // newline). Sets *stop on shutdown. Never throws — every failure becomes
  // an {"ok":false,...} reply. Transport-agnostic: run() and the socket
  // server are both thin line pumps over this.
  std::string handle(const std::string& line, bool* stop);

  // Reads NDJSON requests from `in`, writes NDJSON replies to `out` (one
  // line per reply, flushed), until {"op":"shutdown"} or EOF. Returns the
  // number of requests handled. On shutdown, cancels and joins every live
  // job before returning.
  size_t run(std::istream& in, std::ostream& out);

 private:
  CompilerService& service_;
};

// Serves clients on a unix-domain socket at `path` (created fresh; an
// existing file at `path` is replaced). Accepts one client at a time, runs
// a ServeLoop over the connection, and returns when a client sends
// shutdown. Returns 0 on success, non-zero errno-style on socket errors.
int serve_unix_socket(CompilerService& service, const std::string& path);

}  // namespace k2::api
