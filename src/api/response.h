// api::CompileResponse — the versioned result of one job (schema
// k2-compile/v1, kind "response"). A response is terminal-state only: the
// service fills it when a job reaches DONE, FAILED or CANCELLED; progress
// along the way travels in the event stream (api/service.h), not here.
//
// Single-mode responses embed the CompileResult metrics plus the winning
// program as disassembly (programs travel as text on the wire, exactly like
// BatchReport::best_asm); batch-mode responses embed the full
// k2-batch-report/v1 object. to_json()/from_json() are exact inverses over
// everything written — from_json restores metrics and disassembly, not
// executable ebpf::Program objects.
#pragma once

#include <optional>
#include <string>

#include "core/batch_compiler.h"
#include "util/json.h"

namespace k2::api {

enum class JobState : uint8_t { QUEUED, RUNNING, DONE, FAILED, CANCELLED };

const char* to_string(JobState s);
// Inverse of to_string; returns false on unknown names.
bool job_state_from_string(const std::string& s, JobState* out);

struct CompileResponse {
  std::string job_id;
  JobState state = JobState::QUEUED;  // terminal in practice
  std::string error;                  // FAILED: what()
  double wall_secs = 0;               // submit → terminal

  // Exactly one is set on success (matching the request's mode); both are
  // empty on FAILED and on a job cancelled before it started.
  std::optional<core::CompileResult> single;
  std::string best_asm;  // single mode: disassembly of CompileResult::best
  int best_slots = 0;    // single mode: CompileResult::best.size_slots()
  std::optional<core::BatchReport> batch;

  util::Json to_json() const;
  // Strict: schema/kind enforced; throws std::runtime_error (with the
  // BatchReport version message for embedded batch mismatches).
  static CompileResponse from_json(const util::Json& j);
};

}  // namespace k2::api
