// api::CompileRequest — the one versioned, validated description of a unit
// of compilation work (schema k2-compile/v1). It subsumes what used to be
// scattered across core::CompileOptions, core::BatchOptions and ~20
// hand-parsed k2c flags: a request is either
//
//   * single mode — one source program (inline BPF assembly or a corpus
//     benchmark name) optimized by one search run, or
//   * batch mode — a set of corpus benchmarks × an optional parameter-
//     setting sweep, driven by the corpus-sharded batch orchestrator,
//
// and carries every search knob with its default. Requests are built
// either from JSON (strict: unknown fields, bad types, out-of-range values
// and unknown enum strings are all hard errors with `$.field` paths — no
// silent fallback to defaults, ever) or through the typed fluent builder
// (CompileRequest::for_benchmark("xdp_fw").iters(5000).chains(2)), and
// round-trip through to_json()/from_json() exactly.
//
// This header is the TOP of the layer stack: src/api depends on core and
// below, never the reverse (the one exception is the dependency-free
// constants header api/schema.h).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "core/batch_compiler.h"
#include "core/compiler.h"
#include "scenario/scenario.h"
#include "util/json.h"

namespace k2::api {

// One validation problem: a JSON-pointer-ish field path ("$.iters_per_chain")
// plus a human-readable message.
struct Diagnostic {
  std::string path;
  std::string message;
  std::string str() const { return path + ": " + message; }
};

// Thrown by from_json()/validate-or-throw paths; carries every diagnostic
// found (not just the first), joined in what().
class ValidationError : public std::runtime_error {
 public:
  explicit ValidationError(std::vector<Diagnostic> diags);
  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

 private:
  std::vector<Diagnostic> diags_;
};

struct CompileRequest {
  enum class Mode : uint8_t { SINGLE, BATCH };
  enum class Sweep : uint8_t { NONE, TABLE8, FULL };
  enum class Settings : uint8_t { DEFAULT, TABLE8 };
  enum class Windows : uint8_t { AUTO, ON, OFF };

  Mode mode = Mode::SINGLE;

  // -- single mode: exactly one of `benchmark` / `program_asm` is set.
  std::string benchmark;            // corpus benchmark name
  std::string program_asm;          // inline BPF assembly
  std::string prog_type = "xdp";    // xdp | socket | trace (program_asm only)

  // -- batch mode
  std::vector<std::string> corpus;  // benchmark names; empty = all 19
  Sweep sweep = Sweep::NONE;        // one job per benchmark×setting

  // -- search knobs (both modes; defaults mirror core::CompileOptions)
  core::Goal goal = core::Goal::INST_COUNT;
  std::optional<sim::PerfModelKind> perf_model;  // unset = derived from goal
  Settings settings = Settings::DEFAULT;
  uint64_t iters_per_chain = 10'000;
  int num_chains = 4;
  int top_k = 1;
  int num_initial_tests = 24;
  uint64_t seed = 0x6b32;
  Windows windows = Windows::AUTO;
  uint64_t max_insns = 1u << 20;
  // Execution engine for candidate test runs ("fast" | "jit"). The JIT is
  // decision-neutral — bit-identical RunResults — so it changes wall-clock,
  // never winners; programs it cannot translate fall back per-program to
  // the interpreter (CompileResult::jit_bailouts).
  jit::ExecBackend exec_backend = jit::ExecBackend::FAST_INTERP;
  unsigned eq_timeout_ms = 20'000;
  bool reorder_tests = true;
  bool early_exit = true;

  // -- execution shape
  // threads: batch shard width / chain-pool width for non-deterministic
  // single jobs. solver_workers: dedicated async Z3 threads (0 = sync).
  int threads = 4;
  int solver_workers = 0;
  int speculation_depth = 4;
  // Deterministic single jobs run their chains sequentially
  // (core::CompileServices::sequential) so same-seed results are
  // bit-identical to a direct sequential core::compile — the service
  // default, and what the differential tests pin. false trades that for
  // chain-level parallelism inside the job. Batch jobs are always
  // deterministic per job (the batch layer parallelizes across jobs).
  bool deterministic = true;
  // Persistent equivalence-cache directory (CompileOptions::cache_dir):
  // settled verdicts load from disk at job start and write through on every
  // solve, so a repeated identical request warm-starts with zero Z3 queries
  // for already-settled pairs. Empty = memory-only cache.
  std::string cache_dir;
  // Remote solver farm (CompileOptions::solver_endpoints): unix-socket
  // paths of k2-solve/v1 workers. Empty = solve in-process.
  std::vector<std::string> solver_endpoints;
  // Portfolio width over those endpoints (first definitive verdict wins;
  // > 1 trades determinism for latency).
  int portfolio = 1;
  // Per-job resource budgets (core::JobBudget), both 0 = unlimited. The
  // wall clock starts when the job starts RUNNING (queue time is free); the
  // iteration cap is a job-wide total across chains (and across batch
  // jobs). An exhausted budget stops the search at the next iteration
  // checkpoint but still runs final re-verification, so the job finishes
  // DONE with a verified best and result.budget_exhausted == true — never
  // CANCELLED, never unverified.
  uint64_t budget_wall_ms = 0;
  uint64_t budget_iters = 0;
  // Traffic scenario for the TRACE_LATENCY cost stage (src/scenario,
  // schema k2-scenario/v1). At most ONE of the three sources may be set:
  //   scenario        — built-in catalog name ("imix_hot_maps", ...).
  //                     Unknown names are hard validation errors — there is
  //                     no silent fall-back to `default`.
  //   scenario_file   — path to a k2-scenario/v1 JSON file, loaded and
  //                     strictly validated at request validation time.
  //   scenario_inline — a parsed Scenario (the JSON wire form carries it as
  //                     an object under the "scenario" key).
  // All empty/unset = the `default` scenario, bit-identical to pre-scenario
  // behavior. Pair with perf_model "latency"; the static backends record
  // the scenario as provenance but price nothing against it.
  std::string scenario;
  std::string scenario_file;
  std::optional<scenario::Scenario> scenario_inline;

  // ---- typed builder -------------------------------------------------------
  static CompileRequest for_benchmark(std::string name);
  static CompileRequest for_program(std::string asm_text,
                                    std::string type = "xdp");
  static CompileRequest for_corpus(std::vector<std::string> names = {});

  CompileRequest& with_goal(core::Goal g) { goal = g; return *this; }
  CompileRequest& with_perf_model(sim::PerfModelKind k) {
    perf_model = k;
    return *this;
  }
  CompileRequest& iters(uint64_t n) { iters_per_chain = n; return *this; }
  CompileRequest& chains(int n) { num_chains = n; return *this; }
  CompileRequest& with_seed(uint64_t s) { seed = s; return *this; }
  CompileRequest& with_top_k(int k) { top_k = k; return *this; }
  CompileRequest& with_threads(int n) { threads = n; return *this; }
  CompileRequest& with_solver_workers(int n) {
    solver_workers = n;
    return *this;
  }
  CompileRequest& with_sweep(Sweep s) { sweep = s; return *this; }
  CompileRequest& with_settings(Settings s) { settings = s; return *this; }
  CompileRequest& parallel_chains(bool on = true) {
    deterministic = !on;
    return *this;
  }
  CompileRequest& with_budget(uint64_t wall_ms, uint64_t iters) {
    budget_wall_ms = wall_ms;
    budget_iters = iters;
    return *this;
  }
  CompileRequest& with_scenario(std::string name) {
    scenario = std::move(name);
    return *this;
  }
  CompileRequest& with_scenario(scenario::Scenario s) {
    scenario_inline = std::move(s);
    return *this;
  }
  CompileRequest& with_scenario_file(std::string path) {
    scenario_file = std::move(path);
    return *this;
  }

  // ---- validation ----------------------------------------------------------
  // Structural + range validation of the typed fields (mode/source
  // consistency, positive budgets, bounded widths, resolvable corpus
  // names). Empty result = valid. from_json() additionally rejects unknown
  // fields and unknown enum strings before the typed checks run.
  std::vector<Diagnostic> validate() const;
  void validate_or_throw() const;  // throws ValidationError

  // ---- JSON ----------------------------------------------------------------
  util::Json to_json() const;
  // Strict parse: schema version, field names, types, enum strings and
  // ranges are all enforced; throws ValidationError listing every problem
  // with its $.path. to_json()/from_json() are exact inverses.
  static CompileRequest from_json(const util::Json& j);

  // ---- lowering to the engine ----------------------------------------------
  // Both assume validate() passed. to_compile_options() is the single-mode
  // lowering; to_batch_options() the batch-mode one.
  core::CompileOptions to_compile_options() const;
  core::BatchOptions to_batch_options() const;
  // Resolves the single-mode source program (assembles program_asm or looks
  // up the corpus benchmark).
  ebpf::Program resolve_program() const;
  // Resolves the effective traffic scenario: scenario_inline, else
  // scenario_file (loaded + strictly parsed), else the named catalog entry,
  // else the `default` scenario. Throws ValidationError (with
  // $.scenario/$.scenario_file paths) on unknown names or bad files —
  // validate() reports the same problems without throwing.
  scenario::Scenario resolved_scenario() const;
};

const char* to_string(CompileRequest::Mode m);
const char* to_string(CompileRequest::Sweep s);
const char* to_string(CompileRequest::Settings s);
const char* to_string(CompileRequest::Windows w);

}  // namespace k2::api
