#include "api/serve.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>

#include "api/schema.h"

namespace k2::api {

namespace {

util::Json ok_reply() {
  util::Json j;
  j.set("ok", true);
  return j;
}

util::Json error_reply(const std::string& msg) {
  util::Json j;
  j.set("ok", false);
  j.set("error", msg);
  return j;
}

util::Json validation_reply(const ValidationError& e) {
  util::Json j;
  j.set("ok", false);
  j.set("error", "invalid request");
  util::Json diags{util::Json::Array{}};
  for (const Diagnostic& d : e.diagnostics()) {
    util::Json dj;
    dj.set("path", d.path);
    dj.set("message", d.message);
    diags.push_back(std::move(dj));
  }
  j.set("diagnostics", std::move(diags));
  return j;
}

// Shared status shape for the status/wait/cancel replies. `events` is the
// total emitted (== last_seq); both O(1), no event-ring copy.
util::Json status_reply(const JobHandle& job) {
  util::Json j = ok_reply();
  j.set("job", job.id());
  j.set("state", to_string(job.state()));
  uint64_t last = job.last_seq();
  j.set("events", last);
  j.set("last_seq", last);
  j.set("events_dropped", job.events_dropped());
  return j;
}

// Admission rejection (OverloadError): a typed reply clients can
// distinguish from validation failures — error_kind "overloaded" plus the
// bound that fired — so load generators count rejections instead of
// mis-filing them as errors.
util::Json overload_reply(const OverloadError& e) {
  util::Json j = error_reply(e.what());
  j.set("error_kind", "overloaded");
  j.set("rejected", true);
  j.set("limit", e.limit_name());
  j.set("current", e.current());
  j.set("max", e.limit());
  return j;
}

util::Json solver_json(const verify::AsyncSolverDispatcher::Stats& ds,
                       int workers) {
  util::Json solver;
  solver.set("workers", int64_t(workers));
  solver.set("submitted", ds.submitted);
  solver.set("completed", ds.completed);
  solver.set("abandoned", ds.abandoned);
  solver.set("timeouts", ds.timeouts);
  solver.set("queue_depth", ds.queue_depth);
  solver.set("queue_peak", ds.queue_peak);
  return solver;
}

util::Json cache_json(const verify::EqCache::Stats& cs, uint64_t pending) {
  util::Json cache;
  cache.set("hits", cs.hits);
  cache.set("misses", cs.misses);
  cache.set("insertions", cs.insertions);
  cache.set("collisions", cs.collisions);
  cache.set("pending_joins", cs.pending_joins);
  cache.set("pending_abandons", cs.pending_abandons);
  cache.set("disk_hits", cs.disk_hits);
  cache.set("disk_loaded", cs.disk_loaded);
  cache.set("disk_writes", cs.disk_writes);
  cache.set("pending", pending);
  return cache;
}

}  // namespace

std::string ServeLoop::handle(const std::string& line, bool* stop) {
  util::Json req;
  try {
    req = util::Json::parse(line);
  } catch (const std::exception& e) {
    return error_reply(std::string("malformed JSON: ") + e.what()).dump();
  }

  try {
    if (!req.is_object() || !req.get("op") || !req.at("op").is_string())
      return error_reply("expected an object with a string 'op'").dump();
    const std::string& op = req.at("op").as_string();

    if (op == "hello") {
      util::Json j = ok_reply();
      j.set("protocol", kServeProtocol);
      j.set("request_schema", kCompileSchema);
      j.set("event_schema", kEventSchema);
      util::Json ops{util::Json::Array{}};
      // docs:serve-ops-begin (scripts/check_docs.py: every op listed here
      // must have a row in docs/API.md's serve-op table)
      for (const char* o : {"hello", "submit", "status", "events", "result",
                            "wait", "cancel", "stats", "metrics", "shutdown"})
        ops.push_back(o);
      // docs:serve-ops-end
      j.set("ops", std::move(ops));
      return j.dump();
    }
    if (op == "stats" || op == "metrics") {
      // Both ops read ONE ServiceMetrics snapshot, so every number in the
      // reply describes the same instant (no torn totals: state counts sum
      // to jobs submitted, and cache/pending_eq match). `stats` keeps its
      // original compact shape for existing clients; `metrics` adds the
      // full state breakdown, event-ring health, admission counters and
      // configured limits.
      ServiceMetrics m = service_.metrics();
      util::Json j = ok_reply();
      util::Json jobs;
      if (op == "metrics") {
        jobs.set("submitted", m.submitted);
        jobs.set("rejected", m.rejected);
        jobs.set("queued", m.queued);
        jobs.set("running", m.running);
        jobs.set("done", m.done);
        jobs.set("failed", m.failed);
        jobs.set("cancelled", m.cancelled);
      } else {
        jobs.set("total", m.submitted);
      }
      jobs.set("active", m.queued + m.running);
      j.set("jobs", std::move(jobs));
      if (op == "metrics") {
        util::Json events;
        events.set("backlog", m.event_backlog);
        events.set("dropped", m.events_dropped);
        j.set("events", std::move(events));
        util::Json limits;
        limits.set("max_queued_jobs", uint64_t(service_.options().max_queued_jobs));
        limits.set("max_active_jobs", uint64_t(service_.options().max_active_jobs));
        limits.set("max_events_per_job",
                   uint64_t(service_.options().max_events_per_job));
        limits.set("threads", int64_t(service_.options().threads));
        limits.set("solver_workers", int64_t(service_.options().solver_workers));
        limits.set("tick_every", service_.options().tick_every);
        j.set("limits", std::move(limits));
      }
      j.set("solver", solver_json(m.solver, service_.options().solver_workers));
      j.set("cache", cache_json(m.cache, m.pending_eq));
      j.set("jit_bailouts", m.jit_bailouts);
      // Workload provenance: finished jobs per traffic scenario
      // ("name@fingerprint" -> count). Empty until a job completes.
      util::Json scenarios;
      for (const auto& [key, count] : m.scenario_jobs)
        scenarios.set(key, count);
      if (m.scenario_jobs.empty()) scenarios = util::Json(util::Json::Object{});
      j.set("scenarios", std::move(scenarios));
      if (const verify::CacheStore* st = service_.store()) {
        verify::CacheStore::Stats ss = st->stats();
        util::Json store;
        store.set("dir", st->dir());
        store.set("records", uint64_t(st->records().size()));
        store.set("loaded", ss.loaded);
        store.set("dropped", ss.dropped);
        store.set("appended", ss.appended);
        store.set("reset_shards", ss.reset_shards);
        j.set("store", std::move(store));
      }
      if (verify::RemoteSolverBackend* rb = service_.remote_backend()) {
        verify::RemoteSolverBackend::Stats rs = rb->stats();
        util::Json remote;
        remote.set("live_endpoints", int64_t(rb->live_endpoints()));
        remote.set("remote_solved", rs.remote_solved);
        remote.set("remote_failed", rs.remote_failed);
        remote.set("local_fallbacks", rs.local_fallbacks);
        remote.set("portfolio_races", rs.portfolio_races);
        j.set("remote", std::move(remote));
      }
      return j.dump();
    }
    if (op == "shutdown") {
      *stop = true;
      service_.shutdown(/*cancel_running=*/true);
      util::Json j = ok_reply();
      j.set("protocol", kServeProtocol);
      j.set("shutdown", true);
      // The no-leaked-verdicts invariant: shutdown() drained the solver
      // queue, so every job cache holds zero in-flight verdicts.
      j.set("pending_eq", uint64_t(service_.pending_eq_queries()));
      return j.dump();
    }
    if (op == "submit") {
      const util::Json* r = req.get("request");
      if (!r) return error_reply("submit needs a 'request' object").dump();
      CompileRequest creq = CompileRequest::from_json(*r);  // ValidationError
      JobHandle job = service_.submit(std::move(creq));
      util::Json j = ok_reply();
      j.set("job", job.id());
      j.set("state", to_string(job.state()));
      return j.dump();
    }

    // Everything below addresses an existing job.
    const util::Json* jid = req.get("job");
    if (!jid || !jid->is_string())
      return error_reply("op '" + op + "' needs a string 'job'").dump();
    JobHandle job = service_.find(jid->as_string());
    if (!job.valid())
      return error_reply("unknown job '" + jid->as_string() + "'").dump();

    if (op == "status") return status_reply(job).dump();
    if (op == "wait") {
      job.wait();
      return status_reply(job).dump();
    }
    if (op == "cancel") {
      bool accepted = job.cancel();
      util::Json j = status_reply(job);
      j.set("cancel_accepted", accepted);
      return j.dump();
    }
    if (op == "events") {
      uint64_t after = 0;
      if (const util::Json* a = req.get("after")) after = a->as_uint();
      util::Json j = ok_reply();
      j.set("job", job.id());
      util::Json evs{util::Json::Array{}};
      for (const Event& e : job.poll(after)) evs.push_back(event_to_json(e));
      j.set("events", std::move(evs));
      return j.dump();
    }
    if (op == "result") {
      if (!job.terminal())
        return error_reply("job '" + job.id() + "' is still " +
                           to_string(job.state()))
            .dump();
      util::Json j = ok_reply();
      j.set("result", job.response().to_json());
      return j.dump();
    }
    return error_reply("unknown op '" + op + "'").dump();
  } catch (const OverloadError& e) {
    return overload_reply(e).dump();
  } catch (const ValidationError& e) {
    return validation_reply(e).dump();
  } catch (const std::exception& e) {
    return error_reply(e.what()).dump();
  }
}

size_t ServeLoop::run(std::istream& in, std::ostream& out) {
  size_t handled = 0;
  std::string line;
  bool stop = false;
  while (!stop && std::getline(in, line)) {
    if (line.empty()) continue;
    out << handle(line, &stop) << "\n";
    out.flush();
    handled++;
  }
  return handled;
}

// Writes the whole reply, retrying EINTR and short writes; MSG_NOSIGNAL so
// a client that disconnected mid-reply surfaces as EPIPE instead of a
// process-killing SIGPIPE. Returns false when the client is gone.
static bool write_all(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t w = send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return false;
    off += size_t(w);
  }
  return true;
}

int serve_lines_on_unix_socket(const std::string& path,
                               const LineHandler& handler) {
  int listener = socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) return errno;

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    close(listener);
    return ENAMETOOLONG;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  unlink(path.c_str());  // replace a stale socket file
  if (bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(listener, 4) < 0) {
    int err = errno;
    close(listener);
    return err;
  }

  // One client at a time: every connection pumps lines through the one
  // handler; a handler that sets *stop ends serving entirely.
  bool stop = false;
  while (!stop) {
    int fd = accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      close(listener);
      return err;
    }
    char chunk[4096];
    std::string pending;
    bool client_gone = false;
    ssize_t n;
    while (!stop && !client_gone &&
           (n = read(fd, chunk, sizeof chunk)) > 0) {
      pending.append(chunk, size_t(n));
      size_t pos;
      while (!stop && !client_gone &&
             (pos = pending.find('\n')) != std::string::npos) {
        std::string line = pending.substr(0, pos);
        pending.erase(0, pos + 1);
        if (line.empty()) continue;
        if (!write_all(fd, handler(line, &stop) + "\n"))
          client_gone = true;  // drop this client, keep serving
      }
    }
    // A final request without a trailing newline still counts (matching
    // the stdio path's getline semantics).
    if (!stop && !client_gone && !pending.empty())
      write_all(fd, handler(pending, &stop) + "\n");
    close(fd);
  }
  close(listener);
  return 0;
}

int serve_unix_socket(CompilerService& service, const std::string& path) {
  ServeLoop loop(service);
  return serve_lines_on_unix_socket(
      path,
      [&loop](const std::string& line, bool* stop) {
        return loop.handle(line, stop);
      });
}

}  // namespace k2::api
