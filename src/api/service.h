// api::CompilerService — the session-based front door of the compilation
// engine: submit() turns a validated CompileRequest into an asynchronous
// job (QUEUED → RUNNING → DONE | FAILED | CANCELLED), many jobs share ONE
// work-stealing ThreadPool and ONE AsyncSolverDispatcher, and every job
// exposes a monotonic progress/event stream plus cooperative cancel().
// `k2c`, `k2c serve`, and the bench drivers are all clients of this class;
// nothing above src/api constructs core::compile/BatchCompiler directly.
//
// Scheduling model (and why): the unit of admission is the JOB. Submitted
// jobs are enqueued round-robin over the pool's worker deques (FIFO per
// deque, work-stealing across them), so with W workers at most W jobs make
// progress at once and later submissions wait their turn instead of
// oversubscribing — fair in admission order. Inside a job the engine runs
// deterministically sequential by default (chains in index order; batch
// jobs shard benchmark tasks over the SAME shared pool via nested
// run_all, which the pool supports re-entrantly), so one job cannot starve
// the others except by using its fair share of workers.
//
// Determinism: a deterministic (default) job's results are bit-identical
// to a direct sequential core::compile / BatchCompiler::run with the same
// options — independent of how many other jobs run concurrently, in what
// order jobs were submitted, or the service pool width — because each job
// gets a fresh per-job EqCache (single mode) or per-benchmark caches
// (batch mode, inside BatchCompiler) and shares only the stateless pool
// and the solver dispatcher. Requires solver_workers == 0, as everywhere.
// Enforced by tests/api_service_test.cc (shuffled-submission differential).
//
// Cancellation: cancel() sets the job's flag; the engine observes it at
// chain-iteration checkpoints, before each candidate evaluation
// (EvalPipeline), between final-verification candidates, and between batch
// jobs — so a cancel lands within one chain-iteration checkpoint, never
// mid-Z3-query. In-flight speculative solver queries are released; once
// the dispatcher drains, the job's EqCache holds zero pending verdicts
// (JobHandle::pending_eq_queries, asserted by the cancellation test).
//
// Thread-safety: every public method of CompilerService and JobHandle is
// safe from any thread. Event callbacks run inline on engine worker
// threads and must be fast, non-blocking, and thread-safe.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/request.h"
#include "api/response.h"
#include "pipeline/thread_pool.h"
#include "util/json.h"
#include "verify/cache.h"
#include "verify/cache_store.h"
#include "verify/solver_backend.h"
#include "verify/solver_dispatch.h"

namespace k2::api {

// One entry of a job's progress stream. `seq` is monotonically increasing
// per job starting at 1 with no gaps (a bounded ring may age entries out of
// poll()'s reach, but the numbering never skips), so consumers can resume
// from the last seq they saw.
struct Event {
  uint64_t seq = 0;
  std::string job_id;
  std::string type;  // state | tick | best | job_done
  double t_sec = 0;  // seconds since the job was submitted
  util::Json data;   // type-specific payload (see docs/API.md)
};

util::Json event_to_json(const Event& e);  // stamps k2-event/v1

using EventFn = std::function<void(const Event&)>;

struct ServiceOptions {
  int threads = 4;           // shared pool width (jobs + batch benchmark tasks)
  int solver_workers = 0;    // shared async Z3 pool (0 = synchronous)
  uint64_t tick_every = 512; // chain iterations between tick events
  // Event ring bound (oldest aged out, drop-oldest); clamped to >= 16 so
  // the state trajectory + job_done tail always survive in the ring.
  size_t max_events_per_job = 4096;
  // Admission control (ISSUE 7): submit() throws OverloadError — the
  // request is NOT enqueued — once the bound is reached, instead of letting
  // the queue grow without limit under overload. max_queued_jobs bounds
  // jobs sitting in QUEUED (waiting for a pool worker); max_active_jobs
  // bounds all non-terminal jobs (QUEUED + RUNNING). 0 = unbounded.
  size_t max_queued_jobs = 0;
  size_t max_active_jobs = 0;
  // Service-wide persistent equivalence-cache directory (k2c serve
  // --cache-dir): every job without a request-level cache_dir attaches to
  // this one store, so repeated identical requests warm-start across the
  // service's lifetime. Empty = memory-only. The constructor throws when
  // the store cannot be opened.
  std::string cache_dir;
  // Service-wide solver-farm endpoints (k2c serve --solver-endpoints); a
  // request-level solver_endpoints list overrides per job.
  std::vector<std::string> solver_endpoints;
  int portfolio = 1;  // portfolio width over those endpoints
};

class CompilerService;

// Thrown by CompilerService::submit() when admission control rejects the
// request (see ServiceOptions::max_queued_jobs / max_active_jobs). The
// request was NOT enqueued; the caller may retry later. Typed — rather than
// a bare runtime_error — so the serve loop can emit a structured
// "overloaded" reply that clients distinguish from validation failures.
class OverloadError : public std::runtime_error {
 public:
  OverloadError(std::string limit_name, uint64_t current, uint64_t limit)
      : std::runtime_error("overloaded: " + limit_name + " reached (" +
                           std::to_string(current) + " >= " +
                           std::to_string(limit) + "); request rejected"),
        limit_name_(std::move(limit_name)),
        current_(current),
        limit_(limit) {}
  const std::string& limit_name() const { return limit_name_; }
  uint64_t current() const { return current_; }
  uint64_t limit() const { return limit_; }

 private:
  std::string limit_name_;
  uint64_t current_;
  uint64_t limit_;
};

// One consistent point-in-time snapshot of every live gauge and counter the
// service exposes — gathered under a single pass holding the service mutex
// (with each job's state, its event ring, and its cache's EqCache::Snapshot
// read together), so sums always add up: queued + running + done + failed +
// cancelled == submitted, and `cache`/`pending_eq` describe the same
// instant. Backing store of the serve `metrics` and `stats` ops.
struct ServiceMetrics {
  // Lifetime counters.
  uint64_t submitted = 0;  // jobs accepted by admission (== ids assigned)
  uint64_t rejected = 0;   // submits refused by admission control
  // Jobs by state (gauges; terminal states are also lifetime counters).
  uint64_t queued = 0;
  uint64_t running = 0;
  uint64_t done = 0;
  uint64_t failed = 0;
  uint64_t cancelled = 0;
  // Event-stream health across every job ring (slow-consumer observables).
  uint64_t event_backlog = 0;   // events currently buffered in rings
  uint64_t events_dropped = 0;  // events aged out of rings, lifetime
  // Equivalence-cache totals over all job-owned caches, plus in-flight
  // verdicts, from the same pass.
  verify::EqCache::Stats cache;
  uint64_t pending_eq = 0;
  // Shared solver dispatcher counters.
  verify::AsyncSolverDispatcher::Stats solver;
  // JIT fallbacks summed over terminal jobs' results (single and batch).
  // Always 0 while every request runs the default fast-interpreter backend.
  uint64_t jit_bailouts = 0;
  // Terminal jobs per traffic scenario, keyed "name@fingerprint" (e.g.
  // "default@a1b2..."), from the same pass — workload provenance for the
  // serve `stats`/`metrics` ops.
  std::map<std::string, uint64_t> scenario_jobs;
};

class JobHandle {
 public:
  JobHandle() = default;

  bool valid() const { return job_ != nullptr; }
  const std::string& id() const;
  JobState state() const;
  bool terminal() const;

  // Requests cooperative cancellation; returns false when the job already
  // reached a terminal state (too late — the result stands). Idempotent.
  bool cancel();

  // Blocks until the job reaches DONE / FAILED / CANCELLED.
  void wait() const;

  // Events with seq > after, oldest first. Never blocks.
  std::vector<Event> poll(uint64_t after = 0) const;

  // Seq of the newest event (== total events emitted; 0 before the first).
  // O(1), unlike poll() which copies — status endpoints use this.
  uint64_t last_seq() const;

  // The terminal response; throws std::logic_error before terminal().
  CompileResponse response() const;

  // Pending (in-flight) equivalence verdicts still parked in this job's
  // cache — the cancellation-leak observable. Always 0 for batch jobs
  // (their per-benchmark caches live and die inside the run) and for
  // solver_workers == 0.
  size_t pending_eq_queries() const;

  // Events aged out of this job's bounded ring because no consumer polled
  // fast enough (the drop-oldest policy; see ServiceOptions::
  // max_events_per_job). Equivalently: the seq of the oldest event still in
  // the ring is events_dropped() + 1.
  uint64_t events_dropped() const;

 private:
  friend class CompilerService;
  struct Job;
  explicit JobHandle(std::shared_ptr<Job> job) : job_(std::move(job)) {}
  std::shared_ptr<Job> job_;
};

class CompilerService {
 public:
  explicit CompilerService(ServiceOptions opts = {});
  // Cancels every live job and joins all work before returning.
  ~CompilerService();

  CompilerService(const CompilerService&) = delete;
  CompilerService& operator=(const CompilerService&) = delete;

  // Validates the request (throws ValidationError listing every problem),
  // applies admission control (throws OverloadError when the configured
  // queued/active bound is reached — the request is NOT enqueued), assigns
  // a job id ("job-<n>"), enqueues it, and returns immediately. `cb`, when
  // set, receives every event of this job inline from engine threads, in
  // seq order.
  JobHandle submit(CompileRequest req, EventFn cb = nullptr);

  // Lookup by id; invalid handle when unknown.
  JobHandle find(const std::string& job_id) const;
  std::vector<std::string> job_ids() const;

  // Jobs not yet terminal (queued or running).
  size_t active_jobs() const;
  // True when no job is queued or running AND the solver queue is empty —
  // "workers idle" as observed by the cancellation test.
  bool idle() const;

  verify::AsyncSolverDispatcher::Stats solver_stats() const;
  const ServiceOptions& options() const { return opts_; }

  // Every live gauge/counter in ONE consistent snapshot (see
  // ServiceMetrics). The serve `stats` and `metrics` ops read exclusively
  // through this so they never report torn totals mid-run.
  ServiceMetrics metrics() const;

  // Pending (in-flight) equivalence verdicts summed over every job-owned
  // cache. 0 after a clean shutdown — the no-leaked-verdicts invariant
  // `k2c serve` asserts before exiting.
  size_t pending_eq_queries() const;
  // Aggregated equivalence-cache statistics across all job-owned caches
  // (batch jobs' per-benchmark caches live and die inside their run and
  // are reported in the batch report instead).
  verify::EqCache::Stats cache_stats() const;
  // The service-wide persistent store / remote backend, null when not
  // configured (see ServiceOptions). For observability (the serve `stats`
  // verb); job-level overrides are not reachable here.
  const verify::CacheStore* store() const {
    return store_ ? &*store_ : nullptr;
  }
  verify::RemoteSolverBackend* remote_backend() {
    return backend_ ? &*backend_ : nullptr;
  }

  // Cancels all non-terminal jobs (when `cancel_running`), blocks until
  // every job is terminal, then drains the solver dispatcher so no queued
  // or in-flight query outlives the service's observable state. submit()
  // after shutdown() throws.
  void shutdown(bool cancel_running = true);

 private:
  void run_job(std::shared_ptr<JobHandle::Job> job);
  void finish(const std::shared_ptr<JobHandle::Job>& job, JobState terminal);

  ServiceOptions opts_;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<JobHandle::Job>> jobs_;  // submit order
  uint64_t next_id_ = 1;
  uint64_t rejected_ = 0;  // admission rejections; guarded by mu_
  bool shutdown_ = false;
  // Store and backend before the dispatcher: the dispatcher's destructor
  // drains queued tasks, which may still publish verdicts through them.
  std::optional<verify::CacheStore> store_;
  std::optional<verify::RemoteSolverBackend> backend_;
  // Dispatcher before pool: the pool's destructor runs still-queued job
  // tasks, which may touch the dispatcher — it must still be alive.
  verify::AsyncSolverDispatcher dispatcher_;
  pipeline::ThreadPool pool_;
};

}  // namespace k2::api
