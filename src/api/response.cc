#include "api/response.h"

#include <stdexcept>

#include "api/schema.h"

namespace k2::api {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::QUEUED: return "QUEUED";
    case JobState::RUNNING: return "RUNNING";
    case JobState::DONE: return "DONE";
    case JobState::FAILED: return "FAILED";
    case JobState::CANCELLED: return "CANCELLED";
  }
  return "QUEUED";
}

bool job_state_from_string(const std::string& s, JobState* out) {
  for (JobState st : {JobState::QUEUED, JobState::RUNNING, JobState::DONE,
                      JobState::FAILED, JobState::CANCELLED}) {
    if (s == to_string(st)) {
      *out = st;
      return true;
    }
  }
  return false;
}

util::Json CompileResponse::to_json() const {
  util::Json j;
  j.set("schema", kCompileSchema);
  j.set("kind", "response");
  j.set("job", job_id);
  j.set("state", to_string(state));
  j.set("error", error);
  j.set("wall_secs", wall_secs);
  if (single) {
    util::Json s = core::compile_result_to_json(*single);
    s.set("best_slots", int64_t(best_slots));
    s.set("best_asm", best_asm);
    j.set("single", std::move(s));
  }
  if (batch) j.set("batch", batch->to_json());
  return j;
}

CompileResponse CompileResponse::from_json(const util::Json& j) {
  if (j.at("schema").as_string() != kCompileSchema)
    throw std::runtime_error(
        "CompileResponse: schema version mismatch: found '" +
        j.at("schema").as_string() + "', this build reads only '" +
        std::string(kCompileSchema) + "'");
  if (j.at("kind").as_string() != "response")
    throw std::runtime_error("CompileResponse: kind is not 'response'");
  CompileResponse r;
  r.job_id = j.at("job").as_string();
  if (!job_state_from_string(j.at("state").as_string(), &r.state))
    throw std::runtime_error("CompileResponse: unknown state '" +
                             j.at("state").as_string() + "'");
  r.error = j.at("error").as_string();
  r.wall_secs = j.at("wall_secs").as_double();
  if (const util::Json* s = j.get("single")) {
    r.single = core::compile_result_from_json(*s);
    r.best_asm = s->at("best_asm").as_string();
    r.best_slots = int(s->at("best_slots").as_int());
  }
  if (const util::Json* b = j.get("batch"))
    r.batch = core::BatchReport::from_json(*b);
  return r;
}

}  // namespace k2::api
