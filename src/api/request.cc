#include "api/request.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "corpus/corpus.h"
#include "ebpf/assembler.h"
#include "sim/perf_model.h"

namespace k2::api {

namespace {

// Every field a k2-compile/v1 request may carry — the whitelist the strict
// parser checks unknown fields against, and the list scripts/check_docs.py
// scans to enforce that docs/API.md documents each one. Keep one name per
// line between the markers.
// docs:request-fields-begin
const char* const kRequestFields[] = {
    "schema",
    "mode",
    "benchmark",
    "program_asm",
    "prog_type",
    "corpus",
    "sweep",
    "goal",
    "perf_model",
    "settings",
    "iters_per_chain",
    "num_chains",
    "top_k",
    "num_initial_tests",
    "seed",
    "windows",
    "max_insns",
    "exec_backend",
    "eq_timeout_ms",
    "reorder_tests",
    "early_exit",
    "threads",
    "solver_workers",
    "speculation_depth",
    "deterministic",
    "cache_dir",
    "solver_endpoints",
    "portfolio",
    "budget_wall_ms",
    "budget_iters",
    "scenario",
    "scenario_file",
};
// docs:request-fields-end

bool known_field(const std::string& name) {
  for (const char* f : kRequestFields)
    if (name == f) return true;
  return false;
}

std::string join_diags(const std::vector<Diagnostic>& diags) {
  std::string out = "invalid CompileRequest:";
  for (const Diagnostic& d : diags) out += "\n  " + d.str();
  return out;
}

// Collects diagnostics while pulling typed values out of the request
// object; every getter records a problem instead of throwing so the caller
// sees ALL problems at once.
struct FieldReader {
  const util::Json& j;
  std::vector<Diagnostic>& diags;

  void fail(const std::string& field, std::string msg) {
    diags.push_back({"$." + field, std::move(msg)});
  }

  const util::Json* find(const std::string& field) {
    return j.get(field);
  }

  void read_bool(const std::string& field, bool* out) {
    const util::Json* v = find(field);
    if (!v) return;
    if (!v->is_bool()) return fail(field, "expected a boolean");
    *out = v->as_bool();
  }

  void read_uint(const std::string& field, uint64_t* out, uint64_t min,
                 uint64_t max) {
    const util::Json* v = find(field);
    if (!v) return;
    if (!v->is_int()) return fail(field, "expected a non-negative integer");
    // util::Json carries uint64 as two's-complement int64 (values >= 2^63
    // appear negative on the wire — see util/json.h); a full-range field
    // (max == UINT64_MAX) accepts the wrap so to_json output always parses
    // back. Range-bounded fields reject negatives outright.
    if (v->as_int() < 0 && max != UINT64_MAX)
      return fail(field, "expected a non-negative integer");
    uint64_t u = v->as_uint();
    if (u < min || u > max)
      return fail(field, "out of range [" + std::to_string(min) + ", " +
                             std::to_string(max) + "]: got " +
                             std::to_string(u));
    *out = u;
  }

  void read_int(const std::string& field, int* out, int min, int max) {
    const util::Json* v = find(field);
    if (!v) return;
    if (!v->is_int()) return fail(field, "expected an integer");
    int64_t i = v->as_int();
    if (i < min || i > max)
      return fail(field, "out of range [" + std::to_string(min) + ", " +
                             std::to_string(max) + "]: got " +
                             std::to_string(i));
    *out = int(i);
  }

  void read_string(const std::string& field, std::string* out) {
    const util::Json* v = find(field);
    if (!v) return;
    if (!v->is_string()) return fail(field, "expected a string");
    *out = v->as_string();
  }

  // Strict enum: the value must be one of `values` (no silent fallback —
  // the whole point of request-time validation; see ISSUE 5's footgun fix).
  // Returns the matched index or -1 after recording a diagnostic.
  int read_enum(const std::string& field,
                const std::vector<std::string>& values, int def) {
    const util::Json* v = find(field);
    if (!v) return def;
    if (!v->is_string()) {
      fail(field, "expected a string");
      return -1;
    }
    const std::string& s = v->as_string();
    for (size_t i = 0; i < values.size(); ++i)
      if (s == values[i]) return int(i);
    std::string expected;
    for (size_t i = 0; i < values.size(); ++i)
      expected += (i ? "|" : "") + values[i];
    fail(field, "unknown value '" + s + "' (expected " + expected + ")");
    return -1;
  }
};

// Re-roots scenario-layer diagnostics ("$.packet.min_len") under the
// request field that carried the scenario ("$.scenario.packet.min_len").
void append_scenario_diags(const std::vector<scenario::Diag>& inner,
                           const std::string& field,
                           std::vector<Diagnostic>* out) {
  for (const scenario::Diag& d : inner) {
    std::string path = d.path;
    if (!path.empty() && path[0] == '$') path = field + path.substr(1);
    out->push_back({std::move(path), d.message});
  }
}

// Loads + strictly parses a k2-scenario/v1 file. On failure returns false
// with every problem appended under $.scenario_file.
bool load_scenario_file(const std::string& path, scenario::Scenario* out,
                        std::vector<Diagnostic>* diags) {
  std::ifstream in(path);
  if (!in) {
    diags->push_back({"$.scenario_file", "cannot open '" + path + "'"});
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  try {
    *out = scenario::Scenario::from_json(util::Json::parse(ss.str()));
  } catch (const scenario::ScenarioError& e) {
    std::vector<Diagnostic> inner;
    append_scenario_diags(e.diagnostics(), "$", &inner);
    for (Diagnostic& d : inner)
      diags->push_back(
          {"$.scenario_file", "'" + path + "' " + d.path + ": " + d.message});
    return false;
  } catch (const std::exception& e) {
    diags->push_back(
        {"$.scenario_file", "'" + path + "': " + std::string(e.what())});
    return false;
  }
  return true;
}

}  // namespace

ValidationError::ValidationError(std::vector<Diagnostic> diags)
    : std::runtime_error(join_diags(diags)), diags_(std::move(diags)) {}

const char* to_string(CompileRequest::Mode m) {
  return m == CompileRequest::Mode::BATCH ? "batch" : "single";
}
const char* to_string(CompileRequest::Sweep s) {
  switch (s) {
    case CompileRequest::Sweep::TABLE8: return "table8";
    case CompileRequest::Sweep::FULL: return "full";
    default: return "none";
  }
}
const char* to_string(CompileRequest::Settings s) {
  return s == CompileRequest::Settings::TABLE8 ? "table8" : "default";
}
const char* to_string(CompileRequest::Windows w) {
  switch (w) {
    case CompileRequest::Windows::ON: return "on";
    case CompileRequest::Windows::OFF: return "off";
    default: return "auto";
  }
}

CompileRequest CompileRequest::for_benchmark(std::string name) {
  CompileRequest r;
  r.mode = Mode::SINGLE;
  r.benchmark = std::move(name);
  return r;
}

CompileRequest CompileRequest::for_program(std::string asm_text,
                                           std::string type) {
  CompileRequest r;
  r.mode = Mode::SINGLE;
  r.program_asm = std::move(asm_text);
  r.prog_type = std::move(type);
  return r;
}

CompileRequest CompileRequest::for_corpus(std::vector<std::string> names) {
  CompileRequest r;
  r.mode = Mode::BATCH;
  r.corpus = std::move(names);
  return r;
}

std::vector<Diagnostic> CompileRequest::validate() const {
  std::vector<Diagnostic> diags;
  auto fail = [&](const char* path, std::string msg) {
    diags.push_back({path, std::move(msg)});
  };

  if (mode == Mode::SINGLE) {
    if (benchmark.empty() && program_asm.empty())
      fail("$.benchmark",
           "single mode needs a source: set benchmark or program_asm");
    if (!benchmark.empty() && !program_asm.empty())
      fail("$.benchmark", "benchmark and program_asm are mutually exclusive");
    if (!corpus.empty())
      fail("$.corpus", "corpus is a batch-mode field");
    if (sweep != Sweep::NONE)
      fail("$.sweep", "sweep is a batch-mode field");
    if (!benchmark.empty()) {
      try {
        corpus::benchmark(benchmark);
      } catch (const std::out_of_range&) {
        fail("$.benchmark", "unknown corpus benchmark '" + benchmark + "'");
      }
    }
    if (prog_type != "xdp" && prog_type != "socket" && prog_type != "trace")
      fail("$.prog_type", "unknown value '" + prog_type +
                              "' (expected xdp|socket|trace)");
  } else {
    if (!benchmark.empty() || !program_asm.empty())
      fail("$.benchmark",
           "benchmark/program_asm are single-mode fields; use corpus");
    for (const std::string& name : corpus) {
      try {
        corpus::benchmark(name);
      } catch (const std::out_of_range&) {
        fail("$.corpus", "unknown corpus benchmark '" + name + "'");
      }
    }
  }

  if (iters_per_chain < 1 || iters_per_chain > 100'000'000)
    fail("$.iters_per_chain", "out of range [1, 100000000]");
  if (num_chains < 1 || num_chains > 64)
    fail("$.num_chains", "out of range [1, 64]");
  if (top_k < 1 || top_k > 16) fail("$.top_k", "out of range [1, 16]");
  if (num_initial_tests < 1 || num_initial_tests > 1024)
    fail("$.num_initial_tests", "out of range [1, 1024]");
  if (max_insns < 1) fail("$.max_insns", "must be positive");
  if (threads < 1 || threads > 256) fail("$.threads", "out of range [1, 256]");
  if (solver_workers < 0 || solver_workers > 64)
    fail("$.solver_workers", "out of range [0, 64]");
  if (speculation_depth < 1 || speculation_depth > 64)
    fail("$.speculation_depth", "out of range [1, 64]");
  if (portfolio < 1 || portfolio > 16)
    fail("$.portfolio", "out of range [1, 16]");
  if (budget_wall_ms > 86'400'000)
    fail("$.budget_wall_ms", "out of range [0, 86400000]");
  if (budget_iters > 100'000'000'000)
    fail("$.budget_iters", "out of range [0, 100000000000]");
  for (const std::string& ep : solver_endpoints)
    if (ep.empty()) fail("$.solver_endpoints", "endpoint must be non-empty");
  {
    int sources = (!scenario.empty() ? 1 : 0) + (!scenario_file.empty() ? 1 : 0) +
                  (scenario_inline ? 1 : 0);
    if (sources > 1)
      fail("$.scenario",
           "scenario, scenario_file and an inline scenario object are "
           "mutually exclusive");
    if (sources == 1) {
      if (!scenario.empty() && !scenario::find_scenario(scenario))
        fail("$.scenario", "unknown scenario '" + scenario + "' (expected " +
                               scenario::catalog_names() +
                               " or use scenario_file)");
      if (!scenario_file.empty()) {
        scenario::Scenario ignored;
        load_scenario_file(scenario_file, &ignored, &diags);
      }
      if (scenario_inline)
        append_scenario_diags(scenario_inline->validate(), "$.scenario",
                              &diags);
    }
  }
  if (perf_model) {
    // The backend implies the goal (same rule the CLI applies): a
    // mismatched pair is a contradiction, not a preference.
    bool size_model = *perf_model == sim::PerfModelKind::INST_COUNT;
    if (size_model != (goal == core::Goal::INST_COUNT))
      fail("$.perf_model",
           std::string("backend '") + sim::to_string(*perf_model) +
               "' contradicts goal '" +
               (goal == core::Goal::INST_COUNT ? "size" : "latency") + "'");
  }
  return diags;
}

void CompileRequest::validate_or_throw() const {
  std::vector<Diagnostic> diags = validate();
  if (!diags.empty()) throw ValidationError(std::move(diags));
}

util::Json CompileRequest::to_json() const {
  util::Json j;
  j.set("schema", kCompileSchema);
  j.set("mode", to_string(mode));
  if (mode == Mode::SINGLE) {
    if (!benchmark.empty()) j.set("benchmark", benchmark);
    if (!program_asm.empty()) {
      j.set("program_asm", program_asm);
      j.set("prog_type", prog_type);
    }
  } else {
    util::Json names{util::Json::Array{}};
    for (const std::string& n : corpus) names.push_back(n);
    j.set("corpus", std::move(names));
    j.set("sweep", to_string(sweep));
  }
  j.set("goal", goal == core::Goal::LATENCY ? "latency" : "size");
  if (perf_model) j.set("perf_model", sim::to_string(*perf_model));
  j.set("settings", to_string(settings));
  j.set("iters_per_chain", iters_per_chain);
  j.set("num_chains", int64_t(num_chains));
  j.set("top_k", int64_t(top_k));
  j.set("num_initial_tests", int64_t(num_initial_tests));
  j.set("seed", seed);
  j.set("windows", to_string(windows));
  j.set("max_insns", max_insns);
  j.set("exec_backend", jit::to_string(exec_backend));
  j.set("eq_timeout_ms", uint64_t(eq_timeout_ms));
  j.set("reorder_tests", reorder_tests);
  j.set("early_exit", early_exit);
  j.set("threads", int64_t(threads));
  j.set("solver_workers", int64_t(solver_workers));
  j.set("speculation_depth", int64_t(speculation_depth));
  j.set("deterministic", deterministic);
  if (!cache_dir.empty()) j.set("cache_dir", cache_dir);
  if (!solver_endpoints.empty()) {
    util::Json eps{util::Json::Array{}};
    for (const std::string& ep : solver_endpoints) eps.push_back(ep);
    j.set("solver_endpoints", std::move(eps));
  }
  j.set("portfolio", int64_t(portfolio));
  if (budget_wall_ms > 0) j.set("budget_wall_ms", budget_wall_ms);
  if (budget_iters > 0) j.set("budget_iters", budget_iters);
  // One "scenario" key on the wire: a string names a catalog entry, an
  // object is an inline k2-scenario/v1 document.
  if (scenario_inline)
    j.set("scenario", scenario_inline->to_json());
  else if (!scenario.empty())
    j.set("scenario", scenario);
  if (!scenario_file.empty()) j.set("scenario_file", scenario_file);
  return j;
}

CompileRequest CompileRequest::from_json(const util::Json& j) {
  std::vector<Diagnostic> diags;
  if (!j.is_object())
    throw ValidationError(
        std::vector<Diagnostic>{{"$", "expected a JSON object"}});

  // Unknown fields are hard errors: a typo'd knob must never silently run
  // with the default it meant to override.
  for (const auto& [name, value] : j.as_object())
    if (!known_field(name))
      diags.push_back({"$." + name, "unknown field"});

  FieldReader rd{j, diags};

  std::string schema;
  rd.read_string("schema", &schema);
  if (schema.empty())
    rd.fail("schema", "missing (expected '" + std::string(kCompileSchema) +
                          "')");
  else if (schema != kCompileSchema)
    rd.fail("schema", "version mismatch: found '" + schema +
                          "', this build reads only '" + kCompileSchema + "'");

  CompileRequest r;
  switch (rd.read_enum("mode", {"single", "batch"}, 0)) {
    case 1: r.mode = Mode::BATCH; break;
    default: r.mode = Mode::SINGLE; break;
  }

  rd.read_string("benchmark", &r.benchmark);
  rd.read_string("program_asm", &r.program_asm);
  switch (rd.read_enum("prog_type", {"xdp", "socket", "trace"}, 0)) {
    case 1: r.prog_type = "socket"; break;
    case 2: r.prog_type = "trace"; break;
    default: r.prog_type = "xdp"; break;
  }

  if (const util::Json* names = rd.find("corpus")) {
    if (!names->is_array()) {
      rd.fail("corpus", "expected an array of benchmark names");
    } else {
      for (const util::Json& n : names->as_array()) {
        if (!n.is_string()) {
          rd.fail("corpus", "expected an array of benchmark names");
          break;
        }
        r.corpus.push_back(n.as_string());
      }
    }
  }
  switch (rd.read_enum("sweep", {"none", "table8", "full"}, 0)) {
    case 1: r.sweep = Sweep::TABLE8; break;
    case 2: r.sweep = Sweep::FULL; break;
    default: r.sweep = Sweep::NONE; break;
  }

  switch (rd.read_enum("goal", {"size", "latency"}, 0)) {
    case 1: r.goal = core::Goal::LATENCY; break;
    default: r.goal = core::Goal::INST_COUNT; break;
  }
  if (const util::Json* pm = rd.find("perf_model")) {
    if (!pm->is_string()) {
      rd.fail("perf_model", "expected a string");
    } else {
      sim::PerfModelKind kind;
      if (!sim::perf_model_kind_from_string(pm->as_string().c_str(), &kind))
        rd.fail("perf_model", "unknown value '" + pm->as_string() +
                                  "' (expected insts|latency|static-latency)");
      else
        r.perf_model = kind;
    }
  }
  switch (rd.read_enum("settings", {"default", "table8"}, 0)) {
    case 1: r.settings = Settings::TABLE8; break;
    default: r.settings = Settings::DEFAULT; break;
  }
  switch (rd.read_enum("windows", {"auto", "on", "off"}, 0)) {
    case 1: r.windows = Windows::ON; break;
    case 2: r.windows = Windows::OFF; break;
    default: r.windows = Windows::AUTO; break;
  }

  rd.read_uint("iters_per_chain", &r.iters_per_chain, 1, 100'000'000);
  rd.read_int("num_chains", &r.num_chains, 1, 64);
  rd.read_int("top_k", &r.top_k, 1, 16);
  rd.read_int("num_initial_tests", &r.num_initial_tests, 1, 1024);
  rd.read_uint("seed", &r.seed, 0, UINT64_MAX);
  rd.read_uint("max_insns", &r.max_insns, 1, UINT64_MAX);
  switch (rd.read_enum("exec_backend", {"fast", "jit"}, 0)) {
    case 1: r.exec_backend = jit::ExecBackend::JIT; break;
    default: r.exec_backend = jit::ExecBackend::FAST_INTERP; break;
  }
  uint64_t eq_ms = r.eq_timeout_ms;
  rd.read_uint("eq_timeout_ms", &eq_ms, 1, 3'600'000);
  r.eq_timeout_ms = unsigned(eq_ms);
  rd.read_bool("reorder_tests", &r.reorder_tests);
  rd.read_bool("early_exit", &r.early_exit);
  rd.read_int("threads", &r.threads, 1, 256);
  rd.read_int("solver_workers", &r.solver_workers, 0, 64);
  rd.read_int("speculation_depth", &r.speculation_depth, 1, 64);
  rd.read_bool("deterministic", &r.deterministic);
  rd.read_string("cache_dir", &r.cache_dir);
  if (const util::Json* eps = rd.find("solver_endpoints")) {
    if (!eps->is_array()) {
      rd.fail("solver_endpoints", "expected an array of endpoint paths");
    } else {
      for (const util::Json& ep : eps->as_array()) {
        if (!ep.is_string()) {
          rd.fail("solver_endpoints", "expected an array of endpoint paths");
          break;
        }
        r.solver_endpoints.push_back(ep.as_string());
      }
    }
  }
  rd.read_int("portfolio", &r.portfolio, 1, 16);
  rd.read_uint("budget_wall_ms", &r.budget_wall_ms, 0, 86'400'000);
  rd.read_uint("budget_iters", &r.budget_iters, 0, 100'000'000'000);
  if (const util::Json* sc = rd.find("scenario")) {
    if (sc->is_string()) {
      r.scenario = sc->as_string();
    } else if (sc->is_object()) {
      try {
        r.scenario_inline = scenario::Scenario::from_json(*sc);
      } catch (const scenario::ScenarioError& e) {
        append_scenario_diags(e.diagnostics(), "$.scenario", &diags);
      }
    } else {
      rd.fail("scenario",
              "expected a catalog name (string) or an inline scenario "
              "object");
    }
  }
  rd.read_string("scenario_file", &r.scenario_file);

  if (diags.empty())
    for (Diagnostic& d : r.validate()) diags.push_back(std::move(d));
  if (!diags.empty()) throw ValidationError(std::move(diags));
  return r;
}

core::CompileOptions CompileRequest::to_compile_options() const {
  core::CompileOptions o;
  o.goal = goal;
  o.perf_model = perf_model;
  if (settings == Settings::TABLE8) o.settings = core::table8_settings();
  o.iters_per_chain = iters_per_chain;
  o.num_chains = num_chains;
  o.top_k = top_k;
  o.num_initial_tests = num_initial_tests;
  o.seed = seed;
  if (windows != Windows::AUTO) o.force_windows = windows == Windows::ON;
  o.max_insns = max_insns;
  o.exec_backend = exec_backend;
  o.eq.timeout_ms = eq_timeout_ms;
  o.reorder_tests = reorder_tests;
  o.early_exit = early_exit;
  o.threads = threads;
  o.solver_workers = solver_workers;
  o.speculation_depth = speculation_depth;
  o.cache_dir = cache_dir;
  o.solver_endpoints = solver_endpoints;
  o.portfolio = portfolio;
  o.scenario = resolved_scenario();
  return o;
}

core::BatchOptions CompileRequest::to_batch_options() const {
  core::BatchOptions b;
  b.benchmarks = corpus;
  b.base = to_compile_options();
  switch (sweep) {
    case Sweep::TABLE8: b.sweep = core::table8_settings(); break;
    case Sweep::FULL: b.sweep = core::default_settings(); break;
    case Sweep::NONE: break;
  }
  b.threads = threads;
  return b;
}

scenario::Scenario CompileRequest::resolved_scenario() const {
  if (scenario_inline) return *scenario_inline;
  if (!scenario_file.empty()) {
    scenario::Scenario s;
    std::vector<Diagnostic> diags;
    if (!load_scenario_file(scenario_file, &s, &diags))
      throw ValidationError(std::move(diags));
    return s;
  }
  if (!scenario.empty()) {
    const scenario::Scenario* s = scenario::find_scenario(scenario);
    if (!s)
      throw ValidationError({{"$.scenario",
                              "unknown scenario '" + scenario + "' (expected " +
                                  scenario::catalog_names() +
                                  " or use scenario_file)"}});
    return *s;
  }
  return scenario::default_scenario();
}

ebpf::Program CompileRequest::resolve_program() const {
  if (!benchmark.empty()) return corpus::benchmark(benchmark).o2;
  ebpf::ProgType type = ebpf::ProgType::XDP;
  if (prog_type == "socket") type = ebpf::ProgType::SOCKET_FILTER;
  if (prog_type == "trace") type = ebpf::ProgType::TRACEPOINT;
  return ebpf::assemble(program_asm, type);
}

}  // namespace k2::api
