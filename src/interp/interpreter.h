// The BPF interpreter (§7): executes bytecode against an InputSpec and
// reports all observable outputs plus any fault. Candidate programs from the
// synthesizer are arbitrary bytecode, so every memory access is
// bounds-checked and every anomaly becomes a Fault instead of undefined
// behaviour — faults then surface as maximal error cost in the search (§3.2).
#pragma once

#include "ebpf/program.h"
#include "interp/state.h"

namespace k2::interp {

RunResult run(const ebpf::Program& prog, const InputSpec& input,
              const RunOptions& opt = {});

// Same, but reusing caller-owned machine state. Machine::init re-fills `m`
// for every call, so buffers (packet, regions, map runtimes) keep their
// capacity across runs — the evaluation pipeline allocates one Machine per
// worker instead of one per execution.
RunResult run(const ebpf::Program& prog, const InputSpec& input,
              const RunOptions& opt, Machine& m);

// True when the two results are observably equal for the given hook type
// (XDP/SOCKET_FILTER: r0 + packet + maps; TRACEPOINT: r0 + maps). A faulting
// result never equals a non-faulting one.
bool outputs_equal(ebpf::ProgType type, const RunResult& a,
                   const RunResult& b);

}  // namespace k2::interp
