// Runtime implementations of BPF kernel helper functions (§2.1, App. B.5).
// Deterministic with respect to the InputSpec: "stateful" helpers (ktime,
// prandom) derive their i-th return value from the input seeds and the call
// index, matching the encoder's sequence-variable axiomatization.
#pragma once

#include <cstdint>

#include "interp/state.h"

namespace k2::interp {

// splitmix64 step; the prandom helper threads this state (the FOL encoder
// threads the identical function symbolically).
uint64_t splitmix64(uint64_t x);

// Value poisoned into r1..r5 after helper calls. Reading these registers
// after a call is a safety violation (§6 property 3); the same constant is
// used by the encoder so both sides stay bit-identical even on unsafe
// programs (useful for differential testing).
constexpr uint64_t kScratchPoison = 0xdeadbeefdeadbeefull;

// Executes helper `id` against machine state `m` (arguments in r1..r5,
// result in r0; r1..r5 clobbered). Returns Fault::NONE on success.
Fault call_helper(Machine& m, int64_t id);

// Same, for an `id` already known to have a prototype — the fast
// interpreter resolves helper references at decode time and skips the
// per-call table lookup (an unknown id is a BAD_HELPER fault *before* the
// helper-call counter increments, exactly like call_helper).
Fault call_helper_resolved(Machine& m, int64_t id);

}  // namespace k2::interp
