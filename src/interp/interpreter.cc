#include "interp/interpreter.h"

#include <cstring>

#include "ebpf/semantics.h"
#include "interp/helpers.h"

namespace k2::interp {

using ebpf::AluShape;
using ebpf::Insn;
using ebpf::InsnClass;
using ebpf::JmpShape;
using ebpf::Opcode;

RunResult run(const ebpf::Program& prog, const InputSpec& input,
              const RunOptions& opt) {
  Machine m;
  return run(prog, input, opt, m);
}

RunResult run(const ebpf::Program& prog, const InputSpec& input,
              const RunOptions& opt, Machine& m) {
  RunResult res;
  m.init(prog, input);
  ebpf::ConcreteBackend be;

  const auto fault = [&](Fault f, int pc) {
    res.fault = f;
    res.fault_pc = pc;
    return res;
  };
  const auto finish = [&]() {
    res.r0 = m.regs[0];
    res.packet_out.assign(
        m.pkt_buf.data() + (m.pkt_data - Machine::kPacketBase),
        m.pkt_buf.data() + (m.pkt_data_end - Machine::kPacketBase));
    for (size_t fd = 0; fd < m.maps.size(); ++fd)
      res.maps_out[static_cast<int>(fd)] = m.maps[fd].contents();
    return res;
  };

  int pc = 0;
  const int n = static_cast<int>(prog.insns.size());
  while (true) {
    if (pc < 0 || pc >= n) return fault(Fault::BAD_INSN, pc);
    if (res.insns_executed++ >= opt.max_insns)
      return fault(Fault::STEP_LIMIT, pc);
    const Insn& insn = prog.insns[pc];
    if (opt.record_trace && insn.op != Opcode::NOP)
      res.trace.push_back(static_cast<uint32_t>(pc));

    AluShape a;
    JmpShape j;
    if (ebpf::decompose_alu(insn.op, &a)) {
      uint64_t src = a.is_imm ? ebpf::sext32(insn.imm) : m.regs[insn.src];
      m.regs[insn.dst] = ebpf::alu_apply(a.op, a.is64, m.regs[insn.dst], src, be);
      pc++;
      continue;
    }
    if (ebpf::decompose_jmp(insn.op, &j)) {
      uint64_t lhs = m.regs[insn.dst];
      uint64_t rhs = j.is_imm ? ebpf::sext32(insn.imm) : m.regs[insn.src];
      if (ebpf::jmp_test(j.cond, lhs, rhs, be)) {
        if (insn.off < 0) return fault(Fault::BACKWARD_JUMP, pc);
        pc += 1 + insn.off;
      } else {
        pc++;
      }
      continue;
    }

    switch (insn.op) {
      case Opcode::NEG64:
      case Opcode::NEG32:
      case Opcode::BE16:
      case Opcode::BE32:
      case Opcode::BE64:
      case Opcode::LE16:
      case Opcode::LE32:
      case Opcode::LE64:
        m.regs[insn.dst] = ebpf::alu_unary_apply(insn.op, m.regs[insn.dst], be);
        pc++;
        break;

      case Opcode::JA:
        if (insn.off < 0) return fault(Fault::BACKWARD_JUMP, pc);
        pc += 1 + insn.off;
        break;

      case Opcode::LDXB:
      case Opcode::LDXH:
      case Opcode::LDXW:
      case Opcode::LDXDW: {
        uint32_t w = static_cast<uint32_t>(ebpf::mem_width(insn.op));
        uint64_t addr = m.regs[insn.src] + insn.off;
        if (addr < 0x1000) return fault(Fault::NULL_DEREF, pc);
        uint8_t* p = m.resolve(addr, w);
        if (!p) return fault(Fault::OOB_ACCESS, pc);
        uint64_t v = 0;
        std::memcpy(&v, p, w);  // little-endian host, as in the paper setup
        m.regs[insn.dst] = v;
        pc++;
        break;
      }

      case Opcode::STXB:
      case Opcode::STXH:
      case Opcode::STXW:
      case Opcode::STXDW:
      case Opcode::STB:
      case Opcode::STH:
      case Opcode::STW:
      case Opcode::STDW: {
        uint32_t w = static_cast<uint32_t>(ebpf::mem_width(insn.op));
        uint64_t addr = m.regs[insn.dst] + insn.off;
        if (addr < 0x1000) return fault(Fault::NULL_DEREF, pc);
        uint8_t* p = m.resolve(addr, w);
        if (!p) return fault(Fault::OOB_ACCESS, pc);
        uint64_t v = ebpf::insn_class(insn.op) == InsnClass::STX
                         ? m.regs[insn.src]
                         : ebpf::sext32(insn.imm);
        std::memcpy(p, &v, w);
        pc++;
        break;
      }

      case Opcode::XADD32:
      case Opcode::XADD64: {
        uint32_t w = static_cast<uint32_t>(ebpf::mem_width(insn.op));
        uint64_t addr = m.regs[insn.dst] + insn.off;
        if (addr < 0x1000) return fault(Fault::NULL_DEREF, pc);
        uint8_t* p = m.resolve(addr, w);
        if (!p) return fault(Fault::OOB_ACCESS, pc);
        uint64_t v = 0;
        std::memcpy(&v, p, w);
        v += m.regs[insn.src];
        std::memcpy(p, &v, w);
        pc++;
        break;
      }

      case Opcode::CALL: {
        Fault f = call_helper(m, insn.imm);
        if (f != Fault::NONE) return fault(f, pc);
        pc++;
        break;
      }

      case Opcode::EXIT:
        return finish();

      case Opcode::LDDW:
        m.regs[insn.dst] = static_cast<uint64_t>(insn.imm);
        pc++;
        break;

      case Opcode::LDMAPFD:
        m.regs[insn.dst] = Machine::kMapHandleBase +
                           static_cast<uint64_t>(insn.imm);
        pc++;
        break;

      case Opcode::NOP:
        pc++;
        break;

      default:
        return fault(Fault::BAD_INSN, pc);
    }
  }
}

bool outputs_equal(ebpf::ProgType type, const RunResult& a,
                   const RunResult& b) {
  if (a.fault != Fault::NONE || b.fault != Fault::NONE)
    return a.fault == b.fault && a.fault == Fault::NONE;
  if (a.r0 != b.r0) return false;
  if (a.maps_out != b.maps_out) return false;
  if (type != ebpf::ProgType::TRACEPOINT && a.packet_out != b.packet_out)
    return false;
  return true;
}

}  // namespace k2::interp
