#include "interp/maps.h"

#include <cerrno>
#include <cstring>

namespace k2::interp {

namespace {

// ARRAY/DEVMAP keys are u32 indices in [0, max_entries).
bool array_index(const ebpf::MapDef& def, const uint8_t* key, uint32_t* idx) {
  uint32_t v = 0;
  std::memcpy(&v, key, std::min<uint32_t>(def.key_size, 4));
  *idx = v;
  return v < def.max_entries;
}

}  // namespace

MapRuntime::MapRuntime(const ebpf::MapDef& def) : def_(def) {
  if (def_.kind != ebpf::MapKind::HASH) {
    // Array-like maps are fully populated with zeroed values.
    for (uint32_t i = 0; i < def_.max_entries; ++i) {
      Bytes key(def_.key_size, 0);
      std::memcpy(key.data(), &i, std::min<uint32_t>(def_.key_size, 4));
      data_[key] = std::make_unique<Bytes>(def_.value_size, 0);
    }
  }
}

uint8_t* MapRuntime::lookup(const uint8_t* key) {
  if (def_.kind != ebpf::MapKind::HASH) {
    uint32_t idx;
    if (!array_index(def_, key, &idx)) return nullptr;
  }
  Bytes k(key, key + def_.key_size);
  auto it = data_.find(k);
  return it == data_.end() ? nullptr : it->second->data();
}

int MapRuntime::update(const uint8_t* key, const uint8_t* value) {
  if (def_.kind != ebpf::MapKind::HASH) {
    uint32_t idx;
    if (!array_index(def_, key, &idx)) return -ENOENT;
    Bytes k(key, key + def_.key_size);
    std::memcpy(data_[k]->data(), value, def_.value_size);
    return 0;
  }
  Bytes k(key, key + def_.key_size);
  auto it = data_.find(k);
  if (it != data_.end()) {
    std::memcpy(it->second->data(), value, def_.value_size);
    return 0;
  }
  if (data_.size() >= def_.max_entries) return -E2BIG;
  data_[k] = std::make_unique<Bytes>(value, value + def_.value_size);
  return 0;
}

int MapRuntime::erase(const uint8_t* key) {
  if (def_.kind != ebpf::MapKind::HASH) return -EINVAL;
  Bytes k(key, key + def_.key_size);
  return data_.erase(k) ? 0 : -ENOENT;
}

std::map<Bytes, Bytes> MapRuntime::contents() const {
  std::map<Bytes, Bytes> out;
  for (const auto& [k, v] : data_) out[k] = *v;
  return out;
}

void MapRuntime::clear() { data_.clear(); }

}  // namespace k2::interp
