#include "interp/maps.h"

#include <cerrno>
#include <cstring>

namespace k2::interp {

namespace {

// ARRAY/DEVMAP keys are u32 indices in [0, max_entries).
bool array_index(const ebpf::MapDef& def, const uint8_t* key, uint32_t* idx) {
  uint32_t v = 0;
  std::memcpy(&v, key, std::min<uint32_t>(def.key_size, 4));
  *idx = v;
  return v < def.max_entries;
}

}  // namespace

// Sorted merge of the live table into an existing snapshot map, reusing its
// nodes and value-buffer capacity; keys leaving the snapshot park their
// nodes in out_pool_ and keys entering it take them back, so steady-state
// keyset churn allocates nothing.
void MapRuntime::merge_live_into(std::map<Bytes, Bytes>& out) {
  auto oit = out.begin();
  for (auto dit = data_.begin(); dit != data_.end(); ++dit) {
    while (oit != out.end() && oit->first < dit->first) {
      auto next = std::next(oit);
      out_pool_.push_back(out.extract(oit));
      oit = next;
    }
    if (oit != out.end() && oit->first == dit->first) {
      oit->second = *dit->second.value;
    } else if (!out_pool_.empty()) {
      auto nh = std::move(out_pool_.back());
      out_pool_.pop_back();
      nh.key() = dit->first;
      nh.mapped() = *dit->second.value;
      oit = out.insert(oit, std::move(nh));
    } else {
      oit = out.emplace_hint(oit, dit->first, *dit->second.value);
    }
    ++oit;
  }
  while (oit != out.end()) {
    auto next = std::next(oit);
    out_pool_.push_back(out.extract(oit));
    oit = next;
  }
}

MapRuntime::MapRuntime(const ebpf::MapDef& def) : def_(def) {
  if (is_array()) {
    // Array-like maps are fully populated with zeroed values.
    for (uint32_t i = 0; i < def_.max_entries; ++i) {
      Bytes key(def_.key_size, 0);
      std::memcpy(key.data(), &i, std::min<uint32_t>(def_.key_size, 4));
      data_[std::move(key)].value = std::make_unique<Bytes>(def_.value_size, 0);
    }
  }
}

void MapRuntime::mark(Table::iterator it) {
  Entry& e = it->second;
  if (!e.run_dirty) {
    e.run_dirty = true;
    run_dirty_.push_back(it);
  }
  if (!e.snap_stale) {
    e.snap_stale = true;
    snap_stale_.push_back(it);
  }
}

uint8_t* MapRuntime::lookup(const uint8_t* key) {
  if (is_array()) {
    uint32_t idx;
    if (!array_index(def_, key, &idx)) return nullptr;
  }
  // Transparent-ish find without allocating a key: std::map with Bytes keys
  // has no heterogeneous lookup for raw byte ranges, so reuse a scratch key.
  thread_local Bytes k;
  k.assign(key, key + def_.key_size);
  auto it = data_.find(k);
  if (it == data_.end()) return nullptr;
  // The caller may write through the returned pointer (that is the whole
  // point of bpf_map_lookup_elem), so the entry is dirty from here on.
  if (is_array()) mark(it);
  return it->second.value->data();
}

int MapRuntime::update(const uint8_t* key, const uint8_t* value) {
  thread_local Bytes k;
  if (is_array()) {
    uint32_t idx;
    if (!array_index(def_, key, &idx)) return -ENOENT;
    k.assign(key, key + def_.key_size);
    auto it = data_.find(k);
    if (it == data_.end()) return -ENOENT;  // key_size > 4 with stray bytes
    std::memcpy(it->second.value->data(), value, def_.value_size);
    mark(it);
    return 0;
  }
  k.assign(key, key + def_.key_size);
  auto it = data_.find(k);
  if (it != data_.end()) {
    std::memcpy(it->second.value->data(), value, def_.value_size);
    return 0;
  }
  if (data_.size() >= def_.max_entries) return -E2BIG;
  if (!pool_.empty()) {
    Table::node_type nh = std::move(pool_.back());
    pool_.pop_back();
    nh.key() = k;  // capacity-reusing assign
    nh.mapped().value->assign(value, value + def_.value_size);
    nh.mapped().run_dirty = false;
    nh.mapped().snap_stale = false;
    data_.insert(std::move(nh));
  } else {
    data_[k].value = std::make_unique<Bytes>(value, value + def_.value_size);
  }
  return 0;
}

int MapRuntime::erase(const uint8_t* key) {
  if (is_array()) return -EINVAL;
  thread_local Bytes k;
  k.assign(key, key + def_.key_size);
  auto it = data_.find(k);
  if (it == data_.end()) return -ENOENT;
  pool_.push_back(data_.extract(it));
  return 0;
}

void MapRuntime::reset() {
  if (is_array()) {
    for (Table::iterator it : run_dirty_) {
      Entry& e = it->second;
      std::memset(e.value->data(), 0, e.value->size());
      e.run_dirty = false;
      // The restore changes the entry relative to the last snapshot too.
      if (!e.snap_stale) {
        e.snap_stale = true;
        snap_stale_.push_back(it);
      }
    }
    run_dirty_.clear();
  } else {
    // Default hash contents are empty; park every node for reuse.
    while (!data_.empty()) pool_.push_back(data_.extract(data_.begin()));
  }
}

void MapRuntime::snapshot_into(std::map<Bytes, Bytes>& out, bool full) {
  if (!is_array()) {
    // Every live hash entry was (re-)inserted since the last reset; the
    // keysets are small, so a full sorted merge is the simple exact answer.
    merge_live_into(out);
    return;
  }
  if (full) {
    merge_live_into(out);
  } else {
    // `out` holds the previous snapshot verbatim: refresh only what changed.
    for (Table::iterator it : snap_stale_) {
      auto oit = out.find(it->first);
      if (oit != out.end()) oit->second = *it->second.value;
    }
  }
  for (Table::iterator it : snap_stale_) it->second.snap_stale = false;
  snap_stale_.clear();
}

std::map<Bytes, Bytes> MapRuntime::contents() const {
  std::map<Bytes, Bytes> out;
  for (const auto& [k, e] : data_) out[k] = *e.value;
  return out;
}

void MapRuntime::clear() {
  data_.clear();
  run_dirty_.clear();
  snap_stale_.clear();
  pool_.clear();
  out_pool_.clear();
}

}  // namespace k2::interp
