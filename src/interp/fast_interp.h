// The fast interpreter: decode once, execute many (§7 optimization II in
// spirit — the interpreter is the innermost loop of the search, executing
// every proposal against the whole test suite).
//
// Produces RunResults bit-identical to the legacy switch interpreter in
// interpreter.h (enforced by the differential fuzz in
// tests/decoded_interp_test.cc); the speed comes from three structural
// changes, not from semantic shortcuts:
//
//  * Pre-decoded programs (ebpf::DecodedProgram) with computed-goto/table
//    dispatch — per-instruction classification, sign-extension and jump
//    target arithmetic are paid once per proposal, not once per executed
//    instruction. Falls back to a switch when the compiler lacks
//    label-as-value support.
//  * Incremental re-decode: prepare() patches only the instruction range a
//    proposal touched (plus the previous proposal's range, which covers the
//    reject-revert case) instead of re-decoding the whole program.
//  * Arena-backed machine reuse: Machine::bind/reset with dirty-region
//    reset, and a reused RunResult whose map snapshot is maintained
//    incrementally. Steady-state executions perform no heap allocation.
//
// Thread-safety: a SuiteRunner is single-threaded state, one per worker
// (it lives inside pipeline::ExecContext).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>

#include "ebpf/decoded.h"
#include "interp/state.h"

namespace k2::interp {

// One test of a batch: the input plus (optionally) the expected result used
// by until_first_fail pruning. Pointers must stay valid for the batch (the
// shared TestSuite hands out stable references).
struct SuiteTest {
  const InputSpec* input = nullptr;
  const RunResult* expected = nullptr;  // null: never counted as a fail
};

struct SuiteOutcome {
  uint32_t executed = 0;   // tests actually run
  int32_t first_fail = -1; // batch position of the first mismatch, -1 if none
};

// Non-owning callable reference for the per-result batch callback
// (function_ref): run_suite sits in the hottest loop of the search, so
// std::function's type erasure — a possible heap allocation per evaluated
// candidate — is unwelcome. The referenced callable must outlive the
// run_suite call, which is always true for call-site lambdas.
class ResultSink {
 public:
  ResultSink() = default;
  template <class F, class = std::enable_if_t<
                         !std::is_same_v<std::decay_t<F>, ResultSink>>>
  ResultSink(F&& f)  // NOLINT: implicit by design, mirrors function_ref
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, uint32_t i, const RunResult& r) {
          return bool((*static_cast<std::remove_reference_t<F>*>(obj))(i, r));
        }) {}
  explicit operator bool() const { return call_ != nullptr; }
  bool operator()(uint32_t i, const RunResult& r) const {
    return call_(obj_, i, r);
  }

 private:
  void* obj_ = nullptr;
  bool (*call_)(void*, uint32_t, const RunResult&) = nullptr;
};

class SuiteRunner {
 public:
  // Syncs the decoded form to `p`. With `touched` non-null and `p` the same
  // shape as the previously prepared program, only the union of `touched`
  // and the previous call's range is re-decoded (K2 proposals mutate 1-2
  // instructions; consecutive candidates differ from the decoded base only
  // inside those ranges, whether the previous proposal was accepted or
  // rejected). Pass null after any discontinuous program change — or call
  // invalidate() — to force a full decode.
  //
  // Returns the range of decoded slots this call actually re-synced:
  // {0, n} for a full decode, the patched hull otherwise. Execution
  // backends that mirror the decoded form (the JIT) re-translate exactly
  // this range.
  ebpf::InsnRange prepare(const ebpf::Program& p,
                          const ebpf::InsnRange* touched = nullptr);

  // Drops the incremental-decode state (e.g. after a speculative-chain
  // rollback rewound the current program); the next prepare() re-decodes.
  void invalidate() { valid_ = false; }

  // Executes one input against the prepared program. The returned reference
  // points at internal scratch reused by the next run/run_suite call; it is
  // bit-identical to what interp::run(prog, input, opt) would return.
  const RunResult& run_one(const InputSpec& input, const RunOptions& opt);

  // Batched suite execution — the EvalPipeline entry point. Runs each test
  // in order with dirty-region machine reuse. After each execution,
  // `on_result` (if set) observes the batch position and result and returns
  // false to stop the batch (the pipeline's provable-rejection early exit).
  // With until_first_fail, the batch also stops after the first test whose
  // result differs from its expected output (interp::outputs_equal).
  SuiteOutcome run_suite(std::span<const SuiteTest> tests,
                         bool until_first_fail, const RunOptions& opt,
                         ResultSink on_result = {});

  Machine& machine() { return m_; }
  const ebpf::DecodedProgram& decoded() const { return dp_; }

  // ---- exec-backend support (src/jit) -------------------------------------
  // The scratch-result lifecycle, exposed so an alternative execution
  // backend driving machine() directly can share the arena-backed machine
  // reuse and the incremental map-snapshot pooling (including its
  // snapshot-validity bookkeeping — sharing one runner is what keeps the
  // pooling coherent when backends alternate). A backend-run is:
  //   machine().reset(input); scratch_begin(); <execute>;
  // then exactly one of scratch_fault() / scratch_finish().
  RunResult& scratch_begin();                       // clears the header fields
  const RunResult& scratch_fault(Fault f, int at);  // faulting exit
  const RunResult& scratch_finish();                // clean exit (r0 = regs[0])

 private:
  const RunResult& exec(const InputSpec& input, const RunOptions& opt);

  ebpf::DecodedProgram dp_;
  ebpf::InsnRange last_touched_{};
  bool valid_ = false;
  bool snapshot_valid_ = false;  // scratch_.maps_out holds the last snapshot
  Machine m_;
  RunResult scratch_;
};

// Convenience: one-shot decoded execution (decode + bind + run). For hot
// loops use a SuiteRunner so decode and machine state amortize.
RunResult run_decoded(const ebpf::Program& prog, const InputSpec& input,
                      const RunOptions& opt = {});

}  // namespace k2::interp
