#include "interp/helpers.h"

#include <cstring>

#include "ebpf/helpers_def.h"

namespace k2::interp {

uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

namespace {

int map_fd_of(const Machine& m, uint64_t handle) {
  if (handle < Machine::kMapHandleBase) return -1;
  uint64_t fd = handle - Machine::kMapHandleBase;
  if (fd >= m.maps.size()) return -1;
  return static_cast<int>(fd);
}

void clobber_scratch(Machine& m) {
  for (int r = 1; r <= 5; ++r) m.regs[r] = kScratchPoison + r;
}

// Folded 32-bit one's-complement sum over a buffer (bpf_csum_diff building
// block). Buffer length must be a multiple of 4, as the kernel requires.
uint64_t csum_words(const uint8_t* p, uint32_t len) {
  uint64_t sum = 0;
  for (uint32_t i = 0; i + 4 <= len; i += 4) {
    uint32_t w;
    std::memcpy(&w, p + i, 4);
    sum += w;
  }
  return sum;
}

}  // namespace

Fault call_helper(Machine& m, int64_t id) {
  if (!ebpf::helper_proto(id)) return Fault::BAD_HELPER;
  return call_helper_resolved(m, id);
}

Fault call_helper_resolved(Machine& m, int64_t id) {
  m.helper_calls++;
  uint64_t r0 = 0;

  switch (id) {
    case ebpf::HELPER_MAP_LOOKUP: {
      int fd = map_fd_of(m, m.regs[1]);
      if (fd < 0) return Fault::BAD_MAP_FD;
      MapRuntime& map = m.maps[fd];
      uint8_t* key = m.resolve(m.regs[2], map.def().key_size);
      if (!key) return Fault::OOB_ACCESS;
      uint8_t* val = map.lookup(key);
      r0 = val ? m.expose_map_value(fd, val, map.def().value_size) : 0;
      break;
    }
    case ebpf::HELPER_MAP_UPDATE: {
      int fd = map_fd_of(m, m.regs[1]);
      if (fd < 0) return Fault::BAD_MAP_FD;
      MapRuntime& map = m.maps[fd];
      uint8_t* key = m.resolve(m.regs[2], map.def().key_size);
      uint8_t* val = m.resolve(m.regs[3], map.def().value_size);
      if (!key || !val) return Fault::OOB_ACCESS;
      r0 = static_cast<uint64_t>(static_cast<int64_t>(map.update(key, val)));
      break;
    }
    case ebpf::HELPER_MAP_DELETE: {
      int fd = map_fd_of(m, m.regs[1]);
      if (fd < 0) return Fault::BAD_MAP_FD;
      MapRuntime& map = m.maps[fd];
      uint8_t* key = m.resolve(m.regs[2], map.def().key_size);
      if (!key) return Fault::OOB_ACCESS;
      r0 = static_cast<uint64_t>(static_cast<int64_t>(map.erase(key)));
      break;
    }
    case ebpf::HELPER_KTIME_GET_NS:
      r0 = m.ktime_state;
      m.ktime_state += 1000;  // monotone, 1us per observation
      break;
    case ebpf::HELPER_GET_PRANDOM_U32:
      m.rand_state = splitmix64(m.rand_state);
      r0 = m.rand_state & 0xffffffffull;
      break;
    case ebpf::HELPER_GET_SMP_PROC_ID:
      r0 = m.cpu_id;
      break;
    case ebpf::HELPER_CSUM_DIFF: {
      uint32_t from_size = static_cast<uint32_t>(m.regs[2]);
      uint32_t to_size = static_cast<uint32_t>(m.regs[4]);
      if (from_size % 4 || to_size % 4 || from_size > 512 || to_size > 512)
        return Fault::BAD_HELPER;
      uint64_t sum = static_cast<uint32_t>(m.regs[5]);
      if (to_size) {
        uint8_t* to = m.resolve(m.regs[3], to_size);
        if (!to) return Fault::OOB_ACCESS;
        sum += csum_words(to, to_size);
      }
      if (from_size) {
        uint8_t* from = m.resolve(m.regs[1], from_size);
        if (!from) return Fault::OOB_ACCESS;
        sum += ~csum_words(from, from_size) & 0xffffffffull;
      }
      while (sum >> 32) sum = (sum & 0xffffffffull) + (sum >> 32);
      r0 = sum;
      break;
    }
    case ebpf::HELPER_XDP_ADJUST_HEAD: {
      // r1 = ctx (ignored: single-packet machine), r2 = delta.
      int64_t delta = static_cast<int64_t>(m.regs[2]);
      uint64_t new_data = m.pkt_data + delta;
      if (new_data < Machine::kPacketBase ||
          new_data + 14 > m.pkt_data_end) {  // keep room for an Ethernet hdr
        r0 = static_cast<uint64_t>(-1);
        break;
      }
      m.pkt_data = new_data;
      // Update the packet region and the ctx fields.
      for (Region& r : m.regions) {
        if (r.kind == Mem::PACKET) {
          r.base = m.pkt_data;
          r.size = static_cast<uint32_t>(m.pkt_data_end - m.pkt_data);
          r.host = m.pkt_buf.data() + (m.pkt_data - Machine::kPacketBase);
        }
      }
      std::memcpy(m.ctx.data(), &m.pkt_data, 8);
      std::memcpy(m.ctx.data() + 8, &m.pkt_data_end, 8);
      r0 = 0;
      break;
    }
    case ebpf::HELPER_REDIRECT_MAP: {
      int fd = map_fd_of(m, m.regs[1]);
      if (fd < 0) return Fault::BAD_MAP_FD;
      uint64_t key = m.regs[2];
      uint64_t flags = m.regs[3];
      r0 = key < m.maps[fd].def().max_entries ? 4 /*XDP_REDIRECT*/
                                              : (flags & 0xffffffffull);
      break;
    }
    default:
      return Fault::BAD_HELPER;
  }

  clobber_scratch(m);
  m.regs[0] = r0;
  return Fault::NONE;
}

}  // namespace k2::interp
