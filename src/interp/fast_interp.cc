#include "interp/fast_interp.h"

#include <cassert>
#include <cstring>

#include "ebpf/semantics.h"
#include "interp/helpers.h"
#include "interp/interpreter.h"

// Computed-goto (labels-as-values) dispatch when the compiler supports it;
// a plain switch otherwise. Both share the same handler bodies through the
// K2_CASE/K2_NEXT macros, so the two dispatch strategies cannot drift.
#if defined(__GNUC__) || defined(__clang__)
#define K2_COMPUTED_GOTO 1
#else
#define K2_COMPUTED_GOTO 0
#endif

namespace k2::interp {

using ebpf::ExecOp;

ebpf::InsnRange SuiteRunner::prepare(const ebpf::Program& p,
                                     const ebpf::InsnRange* touched) {
  if (!valid_ || !touched || dp_.insns.size() != p.insns.size() ||
      dp_.type != p.type) {
    dp_.decode(p);
    if (m_.bind(p.type, p.maps)) snapshot_valid_ = false;
    valid_ = true;
    // With touched == null, `p` is the chain's base program and the next
    // candidate differs from it only inside its own touched range. With
    // touched non-null (full decode forced by invalidate()), `p` is a
    // *candidate* — base + *touched — and if it gets rejected the next
    // candidate still differs from the decoded form inside *touched, so
    // the range must seed the hull like any other proposal's.
    last_touched_ = touched ? *touched : ebpf::InsnRange{};
    return ebpf::InsnRange{0, static_cast<int>(p.insns.size())};
  }
  // Incremental patch. Consecutive candidates both derive from the chain's
  // current program: the previous candidate differed from it only inside
  // last_touched_ (whether it was accepted or rejected), the new one only
  // inside *touched, so the hull of the two ranges covers every slot where
  // the decoded form can disagree with `p`.
  const ebpf::InsnRange hull = ebpf::InsnRange::hull(last_touched_, *touched);
  dp_.patch(p, hull);
  last_touched_ = *touched;
#ifndef NDEBUG
  for (size_t i = 0; i < p.insns.size(); ++i)
    assert(dp_.insns[i] == ebpf::decode_insn(p.insns[i], int(i)) &&
           "incremental patch diverged from a full re-decode");
#endif
  return hull;
}

RunResult& SuiteRunner::scratch_begin() {
  RunResult& res = scratch_;
  res.fault = Fault::NONE;
  res.fault_pc = -1;
  res.r0 = 0;
  res.insns_executed = 0;
  res.trace.clear();
  return res;
}

const RunResult& SuiteRunner::scratch_fault(Fault f, int at) {
  RunResult& res = scratch_;
  res.fault = f;
  res.fault_pc = at;
  // The legacy interpreter returns a default-constructed result on fault:
  // no packet or map outputs. Park the snapshot nodes in their runtimes'
  // pools rather than freeing them — the next clean run's full merge
  // takes them back.
  res.packet_out.clear();
  for (size_t fd = 0; fd < m_.maps.size(); ++fd) {
    auto it = res.maps_out.find(static_cast<int>(fd));
    if (it != res.maps_out.end()) m_.maps[fd].park_snapshot(it->second);
  }
  res.maps_out.clear();
  snapshot_valid_ = false;
  return res;
}

const RunResult& SuiteRunner::scratch_finish() {
  RunResult& res = scratch_;
  res.r0 = m_.regs[0];
  res.packet_out.assign(
      m_.pkt_buf.data() + (m_.pkt_data - Machine::kPacketBase),
      m_.pkt_buf.data() + (m_.pkt_data_end - Machine::kPacketBase));
  const bool full = !snapshot_valid_;
  // A rebind can shrink the map count; drop snapshot entries for fds the
  // current program does not have.
  while (res.maps_out.size() > m_.maps.size())
    res.maps_out.erase(std::prev(res.maps_out.end()));
  for (size_t fd = 0; fd < m_.maps.size(); ++fd)
    m_.maps[fd].snapshot_into(res.maps_out[static_cast<int>(fd)], full);
  snapshot_valid_ = true;
  return res;
}

const RunResult& SuiteRunner::run_one(const InputSpec& input,
                                      const RunOptions& opt) {
  assert(valid_ && "SuiteRunner::prepare must be called first");
  return exec(input, opt);
}

SuiteOutcome SuiteRunner::run_suite(std::span<const SuiteTest> tests,
                                    bool until_first_fail,
                                    const RunOptions& opt,
                                    ResultSink on_result) {
  assert(valid_ && "SuiteRunner::prepare must be called first");
  SuiteOutcome out;
  for (uint32_t i = 0; i < tests.size(); ++i) {
    const RunResult& r = exec(*tests[i].input, opt);
    out.executed++;
    const bool failed =
        tests[i].expected && !outputs_equal(dp_.type, r, *tests[i].expected);
    if (failed && out.first_fail < 0) out.first_fail = int32_t(i);
    if (on_result && !on_result(i, r)) break;
    if (until_first_fail && failed) break;
  }
  return out;
}

const RunResult& SuiteRunner::exec(const InputSpec& input,
                                   const RunOptions& opt) {
  Machine& m = m_;
  m.reset(input);
  RunResult& res = scratch_begin();

  const ebpf::DecodedInsn* const insns = dp_.insns.data();
  const int n = static_cast<int>(dp_.insns.size());
  const uint64_t max_insns = opt.max_insns;
  const bool rec = opt.record_trace;
  ebpf::ConcreteBackend be;
  const ebpf::DecodedInsn* d = nullptr;
  int pc = 0;

  // The exit paths live in scratch_fault()/scratch_finish() (shared with
  // the JIT backend); these wrappers keep the handler bodies unchanged.
  const auto fault_out = [&](Fault f, int at) -> const RunResult& {
    return scratch_fault(f, at);
  };
  const auto finish = [&]() -> const RunResult& { return scratch_finish(); };

#if K2_COMPUTED_GOTO
  // One entry per ExecOp, in declaration order.
  static const void* const kJump[] = {
      &&L_ALU64_IMM, &&L_ALU64_REG, &&L_ALU32_IMM, &&L_ALU32_REG,
      &&L_ALU_UNARY, &&L_JA,        &&L_JMP_IMM,   &&L_JMP_REG,
      &&L_LDX,       &&L_STX,       &&L_ST,        &&L_XADD,
      &&L_CALL,      &&L_EXIT,      &&L_LDDW,      &&L_LDMAPFD,
      &&L_NOP,       &&L_BAD};
  static_assert(sizeof(kJump) / sizeof(kJump[0]) ==
                size_t(ExecOp::NUM_EXEC_OPS));
#define K2_CASE(name) L_##name:
#define K2_NEXT()                                                  \
  do {                                                             \
    if (pc < 0 || pc >= n) return fault_out(Fault::BAD_INSN, pc);  \
    if (res.insns_executed++ >= max_insns)                         \
      return fault_out(Fault::STEP_LIMIT, pc);                     \
    d = insns + pc;                                                \
    if (rec && d->eop != ExecOp::NOP)                              \
      res.trace.push_back(static_cast<uint32_t>(pc));              \
    goto* kJump[size_t(d->eop)];                                   \
  } while (0)
  K2_NEXT();
#else
#define K2_CASE(name) case ExecOp::name:
#define K2_NEXT() break
  for (;;) {
    if (pc < 0 || pc >= n) return fault_out(Fault::BAD_INSN, pc);
    if (res.insns_executed++ >= max_insns)
      return fault_out(Fault::STEP_LIMIT, pc);
    d = insns + pc;
    if (rec && d->eop != ExecOp::NOP)
      res.trace.push_back(static_cast<uint32_t>(pc));
    switch (d->eop) {
#endif

  K2_CASE(ALU64_IMM) {
    m.regs[d->dst] =
        ebpf::alu_apply(ebpf::AluOp(d->sub), true, m.regs[d->dst], d->imm, be);
    pc++;
    K2_NEXT();
  }
  K2_CASE(ALU64_REG) {
    m.regs[d->dst] = ebpf::alu_apply(ebpf::AluOp(d->sub), true, m.regs[d->dst],
                                     m.regs[d->src], be);
    pc++;
    K2_NEXT();
  }
  K2_CASE(ALU32_IMM) {
    m.regs[d->dst] =
        ebpf::alu_apply(ebpf::AluOp(d->sub), false, m.regs[d->dst], d->imm, be);
    pc++;
    K2_NEXT();
  }
  K2_CASE(ALU32_REG) {
    m.regs[d->dst] = ebpf::alu_apply(ebpf::AluOp(d->sub), false,
                                     m.regs[d->dst], m.regs[d->src], be);
    pc++;
    K2_NEXT();
  }
  K2_CASE(ALU_UNARY) {
    m.regs[d->dst] =
        ebpf::alu_unary_apply(ebpf::Opcode(d->orig_op), m.regs[d->dst], be);
    pc++;
    K2_NEXT();
  }
  K2_CASE(JA) {
    if (d->off < 0) return fault_out(Fault::BACKWARD_JUMP, pc);
    pc = d->target;
    K2_NEXT();
  }
  K2_CASE(JMP_IMM) {
    if (ebpf::jmp_test(ebpf::JmpCond(d->sub), m.regs[d->dst], d->imm, be)) {
      if (d->off < 0) return fault_out(Fault::BACKWARD_JUMP, pc);
      pc = d->target;
    } else {
      pc++;
    }
    K2_NEXT();
  }
  K2_CASE(JMP_REG) {
    if (ebpf::jmp_test(ebpf::JmpCond(d->sub), m.regs[d->dst], m.regs[d->src],
                       be)) {
      if (d->off < 0) return fault_out(Fault::BACKWARD_JUMP, pc);
      pc = d->target;
    } else {
      pc++;
    }
    K2_NEXT();
  }
  K2_CASE(LDX) {
    const uint32_t w = d->sub;
    const uint64_t addr = m.regs[d->src] + static_cast<uint64_t>(
                                               static_cast<int64_t>(d->off));
    if (addr < 0x1000) return fault_out(Fault::NULL_DEREF, pc);
    const uint8_t* p = m.resolve(addr, w);
    if (!p) return fault_out(Fault::OOB_ACCESS, pc);
    uint64_t v = 0;
    std::memcpy(&v, p, w);  // little-endian host, as in the paper setup
    m.regs[d->dst] = v;
    pc++;
    K2_NEXT();
  }
  K2_CASE(STX) {
    const uint32_t w = d->sub;
    const uint64_t addr = m.regs[d->dst] + static_cast<uint64_t>(
                                               static_cast<int64_t>(d->off));
    if (addr < 0x1000) return fault_out(Fault::NULL_DEREF, pc);
    Mem kind;
    uint8_t* p = m.resolve(addr, w, &kind);
    if (!p) return fault_out(Fault::OOB_ACCESS, pc);
    std::memcpy(p, &m.regs[d->src], w);
    if (kind == Mem::STACK) m.note_stack_write(addr, w);
    pc++;
    K2_NEXT();
  }
  K2_CASE(ST) {
    const uint32_t w = d->sub;
    const uint64_t addr = m.regs[d->dst] + static_cast<uint64_t>(
                                               static_cast<int64_t>(d->off));
    if (addr < 0x1000) return fault_out(Fault::NULL_DEREF, pc);
    Mem kind;
    uint8_t* p = m.resolve(addr, w, &kind);
    if (!p) return fault_out(Fault::OOB_ACCESS, pc);
    std::memcpy(p, &d->imm, w);
    if (kind == Mem::STACK) m.note_stack_write(addr, w);
    pc++;
    K2_NEXT();
  }
  K2_CASE(XADD) {
    const uint32_t w = d->sub;
    const uint64_t addr = m.regs[d->dst] + static_cast<uint64_t>(
                                               static_cast<int64_t>(d->off));
    if (addr < 0x1000) return fault_out(Fault::NULL_DEREF, pc);
    Mem kind;
    uint8_t* p = m.resolve(addr, w, &kind);
    if (!p) return fault_out(Fault::OOB_ACCESS, pc);
    uint64_t v = 0;
    std::memcpy(&v, p, w);
    v += m.regs[d->src];
    std::memcpy(p, &v, w);
    if (kind == Mem::STACK) m.note_stack_write(addr, w);
    pc++;
    K2_NEXT();
  }
  K2_CASE(CALL) {
    if (!d->helper) return fault_out(Fault::BAD_HELPER, pc);
    const Fault f = call_helper_resolved(m, static_cast<int64_t>(d->imm));
    if (f != Fault::NONE) return fault_out(f, pc);
    pc++;
    K2_NEXT();
  }
  K2_CASE(EXIT) { return finish(); }
  K2_CASE(LDDW) {
    m.regs[d->dst] = d->imm;
    pc++;
    K2_NEXT();
  }
  K2_CASE(LDMAPFD) {
    m.regs[d->dst] = Machine::kMapHandleBase + d->imm;
    pc++;
    K2_NEXT();
  }
  K2_CASE(NOP) {
    pc++;
    K2_NEXT();
  }
  K2_CASE(BAD) { return fault_out(Fault::BAD_INSN, pc); }

#if !K2_COMPUTED_GOTO
      default:
        return fault_out(Fault::BAD_INSN, pc);
    }
  }
#endif
#undef K2_CASE
#undef K2_NEXT
}

RunResult run_decoded(const ebpf::Program& prog, const InputSpec& input,
                      const RunOptions& opt) {
  SuiteRunner runner;
  runner.prepare(prog);
  return runner.run_one(input, opt);
}

}  // namespace k2::interp
