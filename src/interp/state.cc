#include "interp/state.h"

#include <cassert>
#include <cstring>
#include <sstream>

namespace k2::interp {

std::atomic<uint64_t> g_heap_allocs{0};

const char* mem_name(Mem m) {
  switch (m) {
    case Mem::STACK: return "stack";
    case Mem::CTX: return "ctx";
    case Mem::PACKET: return "packet";
    case Mem::MAP_VALUE: return "map_value";
    default: return "?";
  }
}

const char* fault_name(Fault f) {
  switch (f) {
    case Fault::NONE: return "none";
    case Fault::OOB_ACCESS: return "out-of-bounds access";
    case Fault::NULL_DEREF: return "null dereference";
    case Fault::BAD_HELPER: return "bad helper call";
    case Fault::BAD_MAP_FD: return "bad map handle";
    case Fault::BACKWARD_JUMP: return "backward jump";
    case Fault::STEP_LIMIT: return "step limit exceeded";
    case Fault::BAD_INSN: return "bad instruction / fell off end";
    case Fault::STACK_MISALIGNED: return "misaligned stack access";
    default: return "?";
  }
}

std::string InputSpec::to_string() const {
  std::ostringstream os;
  os << "packet[" << packet.size() << "]=";
  for (size_t i = 0; i < packet.size() && i < 32; ++i) {
    char b[4];
    snprintf(b, sizeof b, "%02x", packet[i]);
    os << b;
  }
  if (packet.size() > 32) os << "...";
  os << " ctx_args={" << ctx_args[0] << "," << ctx_args[1] << "}";
  for (const auto& [fd, entries] : maps) {
    os << " map" << fd << "{";
    for (const auto& e : entries) {
      os << "k:";
      for (uint8_t b : e.key) {
        char h[4];
        snprintf(h, sizeof h, "%02x", b);
        os << h;
      }
      os << "->";
      for (uint8_t b : e.value) {
        char h[4];
        snprintf(h, sizeof h, "%02x", b);
        os << h;
      }
      os << " ";
    }
    os << "}";
  }
  return os.str();
}

void Machine::init(const ebpf::Program& prog, const InputSpec& input) {
  // The legacy path rebuilds everything; whatever the fast path tracked
  // about this machine no longer holds.
  fast_bound = false;
  stack_dirty_lo = 0;
  stack_dirty_hi = 512;
  regs.fill(0);
  stack.fill(0);
  regions.clear();
  maps.clear();
  helper_calls = 0;
  rand_state = input.prandom_seed;
  ktime_state = input.ktime_base;
  cpu_id = input.cpu_id;

  // Stack: [kStackBase - 512, kStackBase), r10 = kStackBase.
  regions.push_back(Region{Mem::STACK, kStackBase - 512, 512, stack.data()});
  regs[10] = kStackBase;

  // Packet with headroom for bpf_xdp_adjust_head.
  pkt_headroom = kHeadroom;
  pkt_buf.assign(pkt_headroom + input.packet.size(), 0);
  if (!input.packet.empty())
    std::memcpy(pkt_buf.data() + pkt_headroom, input.packet.data(),
                input.packet.size());
  pkt_data = kPacketBase + pkt_headroom;
  pkt_data_end = pkt_data + input.packet.size();
  regions.push_back(Region{Mem::PACKET, pkt_data,
                           static_cast<uint32_t>(input.packet.size()),
                           pkt_buf.data() + pkt_headroom});

  // Context. XDP/SOCKET_FILTER: {u64 data, u64 data_end}; TRACEPOINT: two
  // scalar arguments.
  ctx.fill(0);
  if (prog.type == ebpf::ProgType::TRACEPOINT) {
    std::memcpy(ctx.data(), &input.ctx_args[0], 8);
    std::memcpy(ctx.data() + 8, &input.ctx_args[1], 8);
  } else {
    std::memcpy(ctx.data(), &pkt_data, 8);
    std::memcpy(ctx.data() + 8, &pkt_data_end, 8);
  }
  regions.push_back(Region{Mem::CTX, kCtxBase, 16, ctx.data()});
  regs[1] = kCtxBase;

  // Maps.
  maps.reserve(prog.maps.size());
  for (const auto& def : prog.maps) maps.emplace_back(def);
  for (const auto& [fd, entries] : input.maps) {
    if (fd < 0 || fd >= static_cast<int>(maps.size())) continue;
    for (const auto& e : entries) {
      Bytes k = e.key;
      k.resize(maps[fd].def().key_size, 0);
      Bytes v = e.value;
      v.resize(maps[fd].def().value_size, 0);
      maps[fd].update(k.data(), v.data());
    }
  }
}

bool Machine::bind(ebpf::ProgType type, const std::vector<ebpf::MapDef>& defs) {
  if (fast_bound && bound_type == type && bound_defs == defs) return false;
  maps.clear();
  maps.reserve(defs.size());
  for (const auto& def : defs) maps.emplace_back(def);
  bound_type = type;
  bound_defs = defs;
  fast_bound = true;
  // Prior machine state is unknown (fresh machine, or one the legacy path
  // used): force a full stack re-zero on the next reset.
  stack_dirty_lo = 0;
  stack_dirty_hi = 512;
  return true;
}

void Machine::reset(const InputSpec& input) {
#ifndef NDEBUG
  const uint64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
#endif
  regs.fill(0);
  // Re-zero only the stack window the previous run wrote.
  if (stack_dirty_hi > stack_dirty_lo)
    std::memset(stack.data() + stack_dirty_lo, 0,
                stack_dirty_hi - stack_dirty_lo);
  stack_dirty_lo = 512;
  stack_dirty_hi = 0;
  helper_calls = 0;
  rand_state = input.prandom_seed;
  ktime_state = input.ktime_base;
  cpu_id = input.cpu_id;

  // Same region layout and order as init().
  regions.clear();
  regions.push_back(Region{Mem::STACK, kStackBase - 512, 512, stack.data()});
  regs[10] = kStackBase;

  pkt_headroom = kHeadroom;
  const size_t need = pkt_headroom + input.packet.size();
  if (pkt_buf.size() != need) pkt_buf.resize(need);
  // The packet area is fully overwritten below; only the headroom needs
  // re-zeroing (bpf_xdp_adjust_head can expose it to stores).
  std::memset(pkt_buf.data(), 0, pkt_headroom);
  if (!input.packet.empty())
    std::memcpy(pkt_buf.data() + pkt_headroom, input.packet.data(),
                input.packet.size());
  pkt_data = kPacketBase + pkt_headroom;
  pkt_data_end = pkt_data + input.packet.size();
  regions.push_back(Region{Mem::PACKET, pkt_data,
                           static_cast<uint32_t>(input.packet.size()),
                           pkt_buf.data() + pkt_headroom});

  ctx.fill(0);
  if (bound_type == ebpf::ProgType::TRACEPOINT) {
    std::memcpy(ctx.data(), &input.ctx_args[0], 8);
    std::memcpy(ctx.data() + 8, &input.ctx_args[1], 8);
  } else {
    std::memcpy(ctx.data(), &pkt_data, 8);
    std::memcpy(ctx.data() + 8, &pkt_data_end, 8);
  }
  regions.push_back(Region{Mem::CTX, kCtxBase, 16, ctx.data()});
  regs[1] = kCtxBase;

  // Maps: restore defaults for whatever the last run touched, then apply
  // this input's entries through reused padding buffers.
  for (MapRuntime& rt : maps) rt.reset();
  for (const auto& [fd, entries] : input.maps) {
    if (fd < 0 || fd >= static_cast<int>(maps.size())) continue;
    for (const auto& e : entries) {
      key_scratch_.assign(e.key.begin(), e.key.end());
      key_scratch_.resize(maps[size_t(fd)].def().key_size, 0);
      val_scratch_.assign(e.value.begin(), e.value.end());
      val_scratch_.resize(maps[size_t(fd)].def().value_size, 0);
      maps[size_t(fd)].update(key_scratch_.data(), val_scratch_.data());
    }
  }
#ifndef NDEBUG
  if (alloc_guard_armed)
    assert(g_heap_allocs.load(std::memory_order_relaxed) == allocs_before &&
           "Machine::reset allocated on the steady-state path");
#endif
}

uint8_t* Machine::resolve(uint64_t addr, uint32_t size, Mem* kind_out) {
  for (const Region& r : regions) {
    if (addr >= r.base && addr + size <= r.base + r.size &&
        addr + size >= addr) {
      if (kind_out) *kind_out = r.kind;
      return r.host + (addr - r.base);
    }
  }
  return nullptr;
}

uint64_t Machine::expose_map_value(int fd, uint8_t* host, uint32_t size) {
  // Reuse an existing region if this value buffer was exposed before.
  uint64_t count = 0;
  for (const Region& r : regions) {
    if (r.kind != Mem::MAP_VALUE) continue;
    if (r.host == host) return r.base;
    if (r.map_fd == fd) count++;
  }
  // Mirror the encoder's layout: per-fd subrange, 4 KiB aligned buffers.
  uint64_t va = kMapValueBase + (uint64_t(fd) << 32) + ((count + 1) << 12);
  regions.push_back(Region{Mem::MAP_VALUE, va, size, host, fd});
  return va;
}

}  // namespace k2::interp
