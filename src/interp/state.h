// Machine state and program input/output specifications for the BPF
// interpreter. An InputSpec is exactly a "test case" in the paper's sense
// (§3): the program inputs that, together with the bytecode, determine all
// observable outputs. Counterexamples extracted from Z3 models are converted
// into InputSpecs and appended to the test suite.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ebpf/program.h"
#include "interp/maps.h"

namespace k2::interp {

// Region kinds also used by the static type analysis and the FOL encoder.
enum class Mem : uint8_t {
  STACK,
  CTX,
  PACKET,
  MAP_VALUE,
  NUM_KINDS,
};

const char* mem_name(Mem m);

struct MapEntryInit {
  Bytes key;
  Bytes value;
  friend bool operator==(const MapEntryInit&, const MapEntryInit&) = default;
};

// A single test input. Programs are deterministic functions of an InputSpec:
// helper nondeterminism (ktime, prandom) is derived from seeds, mirroring the
// paper's treatment of stateful helpers ("state as part of the inputs").
struct InputSpec {
  std::vector<uint8_t> packet;                // input packet bytes
  std::map<int, std::vector<MapEntryInit>> maps;  // fd -> initial entries
  uint64_t prandom_seed = 0x853c49e6748fea9bull;
  uint64_t ktime_base = 1'000'000'000ull;
  uint32_t cpu_id = 0;
  std::array<uint64_t, 2> ctx_args{0, 0};  // tracepoint/socket scalar args

  std::string to_string() const;
  // Byte-exact equality; scenario-expansion determinism tests compare whole
  // workloads with this.
  friend bool operator==(const InputSpec&, const InputSpec&) = default;
};

enum class Fault : uint8_t {
  NONE = 0,
  OOB_ACCESS,        // load/store outside any accessible region
  NULL_DEREF,        // access through NULL (e.g. unchecked map lookup)
  BAD_HELPER,        // unknown helper id or bad helper arguments
  BAD_MAP_FD,        // register does not hold a valid map handle
  BACKWARD_JUMP,     // executed a jump with a negative target delta
  STEP_LIMIT,        // too many instructions executed
  BAD_INSN,          // NOP-executed/invalid opcode fell off program end
  STACK_MISALIGNED,  // (reserved; alignment is enforced statically)
};

const char* fault_name(Fault f);

// Everything observable about one execution. Which fields count as "output"
// for equivalence depends on the hook type (§7): XDP compares r0 + packet +
// maps; tracepoints compare r0 + maps.
struct RunResult {
  Fault fault = Fault::NONE;
  int fault_pc = -1;
  uint64_t r0 = 0;
  std::vector<uint8_t> packet_out;
  std::map<int, std::map<Bytes, Bytes>> maps_out;  // fd -> contents
  uint64_t insns_executed = 0;
  // Instruction index of every executed (non-NOP) instruction, recorded when
  // RunOptions::record_trace is set; feeds the per-opcode latency model.
  std::vector<uint32_t> trace;

  bool ok() const { return fault == Fault::NONE; }
};

struct RunOptions {
  uint64_t max_insns = 1u << 20;
  bool record_trace = false;
};

// Debug-build allocation guard. Binaries that replace the global operator
// new/delete (tests/alloc_guard_test.cc) bump this on every heap allocation;
// Machine::reset asserts it stays flat while the guard is armed, proving the
// steady-state path re-fills capacity instead of allocating. In binaries
// without the replacement the counter never moves and the assert is inert.
extern std::atomic<uint64_t> g_heap_allocs;

// An addressable memory region in the running machine.
struct Region {
  Mem kind;
  uint64_t base;   // virtual address as seen by the program
  uint32_t size;
  uint8_t* host;   // backing storage
  int map_fd = -1; // for MAP_VALUE regions
};

// The live machine: registers, stack, packet buffer (with headroom for
// bpf_xdp_adjust_head), ctx, map runtimes, and helper-determinism counters.
struct Machine {
  std::array<uint64_t, 11> regs{};
  std::array<uint8_t, 512> stack{};
  std::vector<uint8_t> pkt_buf;      // headroom + packet bytes
  uint32_t pkt_headroom = 0;
  uint64_t pkt_data = 0;             // VA of current data start
  uint64_t pkt_data_end = 0;         // VA one past last packet byte
  std::array<uint8_t, 16> ctx{};     // data/data_end (XDP) or scalar args
  std::vector<MapRuntime> maps;
  std::vector<Region> regions;
  uint64_t helper_calls = 0;         // total helper invocations (stats)
  // Threaded helper state: each ktime call returns the current state and
  // advances it; each prandom call advances the splitmix64 state and returns
  // its low 32 bits. The FOL encoder threads identical state variables, so
  // the two sides agree exactly (App. B.5 "state as part of the inputs").
  uint64_t rand_state = 0;
  uint64_t ktime_state = 0;
  uint32_t cpu_id = 0;

  // Virtual address layout: disjoint, non-zero bases per region kind. The
  // FOL encoder uses the same constants, so pointer values agree bit-exactly
  // between execution and formalization.
  static constexpr uint64_t kStackBase = 0x100000000000ull;   // grows down
  static constexpr uint64_t kCtxBase = 0x200000000000ull;
  static constexpr uint64_t kPacketBase = 0x300000000000ull;
  static constexpr uint64_t kMapValueBase = 0x400000000000ull;
  static constexpr uint64_t kMapHandleBase = 0x6d61700000000000ull;  // "map"
  static constexpr uint32_t kHeadroom = 64;  // bpf_xdp_adjust_head slack

  // Builds machine state for `prog` from `input`, reconstructing the map
  // runtimes from scratch — the legacy per-run path. Invalidates any fast
  // binding (see bind/reset below).
  void init(const ebpf::Program& prog, const InputSpec& input);

  // ---- Decode-once/execute-many path --------------------------------------
  // bind() attaches the machine to a program family (hook type + map
  // definitions), constructing the map runtimes once; reset() then re-fills
  // the machine for each input, undoing only what the previous run dirtied:
  // the written stack window is re-zeroed, the packet headroom is re-zeroed,
  // map runtimes restore just their touched entries, and every buffer reuses
  // its capacity. On the steady-state path reset() performs zero heap
  // allocations (asserted when the allocation guard is armed).
  // Proposals never change a candidate's maps, so bind() is a cheap no-op
  // whenever the definitions match the current binding.
  // Returns true when the binding was (re)built, false for the no-op case.
  bool bind(ebpf::ProgType type, const std::vector<ebpf::MapDef>& defs);
  void reset(const InputSpec& input);

  // Records a store into the stack region so reset() can re-zero exactly the
  // written window (called by the fast interpreter's store handlers).
  void note_stack_write(uint64_t addr, uint32_t size) {
    uint32_t lo = static_cast<uint32_t>(addr - (kStackBase - 512));
    uint32_t hi = lo + size;
    if (lo < stack_dirty_lo) stack_dirty_lo = lo;
    if (hi > stack_dirty_hi) stack_dirty_hi = hi;
  }

  // Arms the debug allocation-count assertion inside reset().
  void arm_alloc_guard(bool on) { alloc_guard_armed = on; }

  bool fast_bound = false;
  ebpf::ProgType bound_type = ebpf::ProgType::XDP;
  std::vector<ebpf::MapDef> bound_defs;
  uint32_t stack_dirty_lo = 0;   // dirty stack window [lo, hi)
  uint32_t stack_dirty_hi = 512;
  bool alloc_guard_armed = false;

  // Resolves a guest VA range to host memory; nullptr if not fully inside
  // one accessible region.
  uint8_t* resolve(uint64_t addr, uint32_t size, Mem* kind_out = nullptr);

  // Registers a map-value region (on successful lookup) and returns its VA.
  uint64_t expose_map_value(int fd, uint8_t* host, uint32_t size);

 private:
  Bytes key_scratch_, val_scratch_;  // reused padding buffers for reset()
};

}  // namespace k2::interp
