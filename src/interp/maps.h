// Runtime implementation of BPF maps (the kernel's persistent key-value
// stores reached through helper calls, §2.1). Value storage is
// pointer-stable: bpf_map_lookup_elem returns a pointer that programs then
// dereference with ordinary load/store instructions, so values must not move
// while a program holds a pointer to them.
//
// Built for the decode-once/execute-many loop: a MapRuntime is constructed
// once per bound program and then *reset* between runs instead of being
// rebuilt. reset() restores the default contents touching only what the
// previous run dirtied (array-like maps re-zero just the entries that were
// looked up or updated; hash maps recycle their nodes through a free pool),
// and snapshot_into() maintains an output snapshot incrementally, copying
// only entries that changed since the previous snapshot. Steady-state runs
// perform no heap allocation (tests/alloc_guard_test.cc enforces this).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "ebpf/program.h"

namespace k2::interp {

using Bytes = std::vector<uint8_t>;

class MapRuntime {
 public:
  explicit MapRuntime(const ebpf::MapDef& def);

  const ebpf::MapDef& def() const { return def_; }

  // Returns a stable pointer to value storage, or nullptr when the key is
  // absent (HASH) / out of range (ARRAY/DEVMAP). The entry is conservatively
  // marked dirty: the caller may write through the returned pointer.
  uint8_t* lookup(const uint8_t* key);

  // 0 on success, negative errno on failure. ARRAY maps reject unknown keys.
  int update(const uint8_t* key, const uint8_t* value);

  // 0 on success, -ENOENT when absent; ARRAY maps reject deletion (-EINVAL).
  int erase(const uint8_t* key);

  // Deterministic snapshot of live entries for output comparison.
  std::map<Bytes, Bytes> contents() const;

  // Restores the default contents (all-zero values for ARRAY/DEVMAP, empty
  // for HASH), undoing only what was dirtied since construction or the last
  // reset. Allocation-free: hash nodes and their value buffers are parked in
  // a pool and recycled by later update() calls.
  void reset();

  // Merge-copies the live contents into `out`, reusing its nodes and value
  // buffers. With full == false, array-like maps refresh only the entries
  // dirtied since the previous snapshot_into() call — valid only when `out`
  // still holds that previous snapshot verbatim. full == true rebuilds the
  // keyset (first snapshot, or `out` was cleared/reused elsewhere).
  void snapshot_into(std::map<Bytes, Bytes>& out, bool full);

  // Empties `out` (a snapshot this runtime produced), parking its nodes in
  // the recycle pool instead of freeing them — the fault path uses this so
  // a faulting run between clean runs does not destroy the pooled
  // allocation-free steady state.
  void park_snapshot(std::map<Bytes, Bytes>& out) {
    while (!out.empty()) out_pool_.push_back(out.extract(out.begin()));
  }

  void clear();

 private:
  struct Entry {
    // unique_ptr keeps value buffers pinned while nodes move through the
    // free pool; the buffer itself is recycled with the node.
    std::unique_ptr<Bytes> value;
    bool run_dirty = false;   // touched since the last reset()
    bool snap_stale = false;  // changed since the last snapshot_into()
  };
  using Table = std::map<Bytes, Entry>;

  void mark(Table::iterator it);
  bool is_array() const { return def_.kind != ebpf::MapKind::HASH; }
  void merge_live_into(std::map<Bytes, Bytes>& out);

  ebpf::MapDef def_;
  Table data_;
  std::vector<Table::iterator> run_dirty_;   // ARRAY: entries to re-zero
  std::vector<Table::iterator> snap_stale_;  // ARRAY: entries to re-copy
  std::vector<Table::node_type> pool_;       // HASH: recycled nodes
  // Recycled nodes of the snapshot map this runtime merges into, so keyset
  // churn across runs (hash entries coming and going) stays allocation-free.
  std::vector<std::map<Bytes, Bytes>::node_type> out_pool_;
};

}  // namespace k2::interp
