// Runtime implementation of BPF maps (the kernel's persistent key-value
// stores reached through helper calls, §2.1). Value storage is
// pointer-stable: bpf_map_lookup_elem returns a pointer that programs then
// dereference with ordinary load/store instructions, so values must not move
// while a program holds a pointer to them.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "ebpf/program.h"

namespace k2::interp {

using Bytes = std::vector<uint8_t>;

class MapRuntime {
 public:
  explicit MapRuntime(const ebpf::MapDef& def);

  const ebpf::MapDef& def() const { return def_; }

  // Returns a stable pointer to value storage, or nullptr when the key is
  // absent (HASH) / out of range (ARRAY/DEVMAP).
  uint8_t* lookup(const uint8_t* key);

  // 0 on success, negative errno on failure. ARRAY maps reject unknown keys.
  int update(const uint8_t* key, const uint8_t* value);

  // 0 on success, -ENOENT when absent; ARRAY maps reject deletion (-EINVAL).
  int erase(const uint8_t* key);

  // Deterministic snapshot of live entries for output comparison.
  std::map<Bytes, Bytes> contents() const;

  void clear();

 private:
  ebpf::MapDef def_;
  // unique_ptr keeps value buffers pinned across rehashing/insertions.
  std::map<Bytes, std::unique_ptr<Bytes>> data_;
};

}  // namespace k2::interp
