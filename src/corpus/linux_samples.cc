// Benchmarks (1)-(13): Linux kernel BPF samples (tracepoints attached to
// XDP internals, socket filters, and the xdp* sample programs).
#include "corpus/corpus.h"
#include "corpus/idioms.h"
#include "ebpf/assembler.h"

namespace k2::corpus {

namespace {

using ebpf::MapDef;
using ebpf::MapKind;
using ebpf::ProgType;
using namespace idioms;

MapDef counters(const std::string& name, uint32_t entries = 4) {
  return MapDef{name, MapKind::ARRAY, 4, 8, entries};
}

Benchmark tp(const std::string& name, const std::string& o1,
             const std::string& o2, std::vector<MapDef> maps, int p1, int p2,
             int pk) {
  Benchmark b;
  b.name = name;
  b.origin = "linux";
  b.o1 = ebpf::assemble(o1, ProgType::TRACEPOINT, maps);
  b.o2 = ebpf::assemble(o2, ProgType::TRACEPOINT, maps);
  b.paper_o1 = p1;
  b.paper_o2 = p2;
  b.paper_k2 = pk;
  return b;
}

Benchmark xdp(const std::string& name, const std::string& o1,
              const std::string& o2, std::vector<MapDef> maps, int p1, int p2,
              int pk, ProgType type = ProgType::XDP) {
  Benchmark b;
  b.name = name;
  b.origin = "linux";
  b.o1 = ebpf::assemble(o1, type, maps);
  b.o2 = ebpf::assemble(o2, type, maps);
  b.paper_o1 = p1;
  b.paper_o2 = p2;
  b.paper_k2 = pk;
  return b;
}

// (1) xdp_exception: count XDP exceptions per action code.
Benchmark xdp_exception() {
  std::string body =
      "  ldxdw r6, [r1+0]\n" +            // action code
      mov_roundtrip("r6", "r8") +          // -O2 leftover
      zero_two_slots("r3", -4) +           // Table-11 coalescable zeroing
      "  mov64 r2, r6\n"
      "  and64 r2, 3\n"
      "  stxw [r10-8], r2\n"
      "  ldmapfd r1, 0\n"
      "  mov64 r2, r10\n"
      "  add64 r2, -8\n"
      "  call 1\n"
      "  jeq r0, 0, out\n"
      "  mov64 r1, 1\n"
      "  xadd64 [r0+0], r1\n"
      "out:\n"
      "  mov64 r0, 0\n"
      "  exit\n";
  return tp("xdp_exception", body, body, {counters("exception_cnt")}, 18, 18,
            16);
}

// (2) xdp_redirect_err: count redirect errors by error class.
Benchmark xdp_redirect_err() {
  std::string o2 =
      "  ldxdw r6, [r1+0]\n"               // errno
      "  ldxdw r7, [r1+8]\n" +             // ifindex (unused)
      zero_two_slots("r3", -4) +
      "  mov64 r2, r6\n"
      "  and64 r2, 1\n"
      "  stxw [r10-8], r2\n"
      "  mov64 r9, r7\n"                   // dead shuffle
      "  ldmapfd r1, 0\n"
      "  mov64 r2, r10\n"
      "  add64 r2, -8\n"
      "  call 1\n"
      "  jeq r0, 0, out\n"
      "  mov64 r1, 1\n"
      "  xadd64 [r0+0], r1\n"
      "out:\n"
      "  mov64 r0, 0\n"
      "  exit\n";
  std::string o1 = "  mov64 r8, r1\n  mov64 r1, r8\n" + o2;
  return tp("xdp_redirect_err", o1, o2, {counters("redirect_err_cnt", 2)}, 19,
            18, 16);
}

// (3) xdp_devmap_xmit: record packets sent / drops per devmap flush.
Benchmark xdp_devmap_xmit() {
  std::string body =
      "  ldxdw r6, [r1+0]\n"               // sent
      "  ldxdw r7, [r1+8]\n" +             // drops
      stack_shuffle("r6", "r7", -16) +     // removable identity block
      zero_two_slots("r3", -4) +
      "  stw [r10-8], 0\n"                 // key 0: sent counter
      "  ldmapfd r1, 0\n"
      "  mov64 r2, r10\n"
      "  add64 r2, -8\n"
      "  call 1\n"
      "  jeq r0, 0, second\n"
      "  xadd64 [r0+0], r6\n"
      "second:\n"
      "  stw [r10-8], 1\n"                 // key 1: drop counter
      "  ldmapfd r1, 0\n"
      "  mov64 r2, r10\n"
      "  add64 r2, -8\n"
      "  call 1\n"
      "  jeq r0, 0, out\n"
      "  xadd64 [r0+0], r7\n"
      "out:\n"
      "  mov64 r0, 0\n"
      "  exit\n";
  return tp("xdp_devmap_xmit", body, body, {counters("devmap_xmit_cnt")}, 36,
            36, 29);
}

// (4) xdp_cpumap_kthread: per-CPU processed-packet counter.
Benchmark xdp_cpumap_kthread() {
  std::string body =
      "  call 8\n"                         // get_smp_processor_id
      "  mov64 r6, r0\n"
      "  and64 r6, 3\n" +
      mov_roundtrip("r6", "r7") +
      zero_two_slots("r3", -4) +
      "  stxw [r10-8], r6\n" +
      counter_bump_naive(0, -8, "out") +   // ldx/add/stx -> xadd headroom
      "  mov64 r0, 0\n"
      "  exit\n";
  // counter_bump_naive needs the map handle loaded before the call; patch
  // its first lines are already self-contained (ldmapfd inside).
  return tp("xdp_cpumap_kthread", body, body, {counters("cpumap_cnt")}, 24,
            24, 18);
}

// (5) xdp_cpumap_enqueue: enqueued + dropped counters per cpu.
Benchmark xdp_cpumap_enqueue() {
  std::string body =
      "  ldxdw r6, [r1+0]\n"               // enqueued
      "  ldxdw r7, [r1+8]\n" +             // dropped
      zero_two_slots("r3", -4) +
      "  stw [r10-8], 0\n"
      "  ldmapfd r1, 0\n"
      "  mov64 r2, r10\n"
      "  add64 r2, -8\n"
      "  call 1\n"
      "  jeq r0, 0, second\n"
      "  xadd64 [r0+0], r6\n"
      "second:\n" +
      mov_roundtrip("r7", "r8") +
      "  stw [r10-8], 1\n"
      "  ldmapfd r1, 0\n"
      "  mov64 r2, r10\n"
      "  add64 r2, -8\n"
      "  call 1\n"
      "  jeq r0, 0, out\n"
      "  xadd64 [r0+0], r7\n"
      "out:\n"
      "  mov64 r0, 0\n"
      "  exit\n";
  return tp("xdp_cpumap_enqueue", body, body, {counters("cpumap_enq_cnt")},
            26, 26, 21);
}

// (6) sys_enter_open: count open() syscalls (load-add-store headroom).
Benchmark sys_enter_open() {
  std::string body =
      "  ldxdw r6, [r1+0]\n"               // flags argument
      "  mov64 r7, 0\n"
      "  stxw [r10-4], r7\n"               // key = 0
      "  jne r6, 0, flagged\n" +
      counter_bump_naive(0, -4, "out0") +
      "  ja out\n"
      "flagged:\n"
      "  stw [r10-4], 1\n" +               // key = 1 for flagged opens
      counter_bump_naive(0, -4, "out1") +
      "out:\n"
      "  mov64 r0, 0\n"
      "  exit\n";
  return tp("sys_enter_open", body, body, {counters("open_cnt", 2)}, 24, 24,
            20);
}

// (7) socket/0: classic socket filter — accept TCP, reject the rest.
Benchmark socket0() {
  std::string o2 =
      xdp_prologue(34, "rej") +
      "  ldxh r2, [r6+12]\n"               // ethertype
      "  be16 r2\n"                        // wire order
      "  jne r2, 0x0800, rej\n" +
      mov_roundtrip("r2", "r8") +
      dead_store("r4", -8) +
      "  ldxb r3, [r6+23]\n"               // ip proto
      "  jne r3, 6, rej\n"                 // TCP
      "  mov64 r0, 1\n"
      "  exit\n"
      "rej:\n"
      "  mov64 r0, 0\n"
      "  exit\n";
  std::string o1 = "  mov64 r9, r1\n  mov64 r1, r9\n  mov64 r8, 0\n" + o2;
  return xdp("socket/0", o1, o2, {}, 32, 29, 27, ProgType::SOCKET_FILTER);
}

// (8) socket/1: TCP destination-port filter.
Benchmark socket1() {
  std::string o2 =
      xdp_prologue(38, "rej") +
      "  ldxh r2, [r6+12]\n"
      "  be16 r2\n"
      "  jne r2, 0x0800, rej\n"
      "  ldxb r3, [r6+23]\n"
      "  jne r3, 6, rej\n" +
      dead_store("r5", -8) +
      "  ldxh r4, [r6+36]\n"               // dst port (no options assumed)
      "  be16 r4\n" +
      mov_roundtrip("r4", "r8") +
      "  jeq r4, 80, acc\n"
      "  jeq r4, 443, acc\n"
      "  mov64 r0, 0\n"
      "  exit\n"
      "acc:\n"
      "  mov64 r0, 1\n"
      "  exit\n"
      "rej:\n"
      "  mov64 r0, 0\n"
      "  exit\n";
  std::string o1 = "  mov64 r9, r1\n  mov64 r1, r9\n  mov64 r8, 0\n" + o2;
  return xdp("socket/1", o1, o2, {}, 35, 32, 30, ProgType::SOCKET_FILTER);
}

// (9) xdp_router_ipv4: route lookup + MAC rewrite + redirect.
Benchmark xdp_router_ipv4() {
  std::string o2 =
      xdp_prologue(34, "pass") +
      "  ldxh r2, [r6+12]\n"
      "  be16 r2\n"
      "  jne r2, 0x0800, pass\n"
      "  ldxb r3, [r6+14]\n"               // version/ihl
      "  and64 r3, 0xf\n"
      "  jne r3, 5, pass\n"
      "  ldxb r3, [r6+22]\n"               // ttl
      "  jle r3, 1, drop\n"
      "  ldxw r8, [r6+30]\n"               // dst ip
      "  mov64 r2, r8\n"
      "  and64 r2, 0xffffff\n"             // /24 prefix key
      "  stxw [r10-4], r2\n" +
      mov_roundtrip("r8", "r9") +
      "  ldmapfd r1, 0\n"                  // route table (hash)
      "  mov64 r2, r10\n"
      "  add64 r2, -4\n"
      "  call 1\n"
      "  jeq r0, 0, pass\n"
      "  ldxw r9, [r0+0]\n"                // nexthop index
      "  stxw [r10-8], r9\n"
      "  ldmapfd r1, 1\n"                  // neighbor table (array)
      "  mov64 r2, r10\n"
      "  add64 r2, -8\n"
      "  call 1\n"
      "  jeq r0, 0, pass\n"
      // Stage new dst MAC on the stack (from neighbor entry), then the
      // byte-wise copies K2 coalesces.
      "  ldxdw r3, [r0+0]\n"
      "  stxdw [r10-24], r3\n" +
      zero_two_slots("r4", -28) +
      mac_copy_bytes(-24, 0) +             // dst MAC
      "  ldxh r3, [r10-24]\n"
      "  stxh [r6+6], r3\n"                // src MAC begins (reuse low bytes)
      "  ldxh r3, [r10-22]\n"
      "  stxh [r6+8], r3\n"
      "  ldxh r3, [r10-20]\n"
      "  stxh [r6+10], r3\n"
      // Decrement TTL with read-modify-write.
      "  ldxb r3, [r6+22]\n"
      "  sub64 r3, 1\n"
      "  stxb [r6+22], r3\n" +
      stack_shuffle("r8", "r9", -40) +
      "  ldmapfd r1, 2\n"                  // devmap
      "  mov64 r2, r9\n"
      "  and64 r2, 7\n"
      "  mov64 r3, 2\n"                    // flags: fallback XDP_PASS
      "  call 51\n"
      "  exit\n"
      "drop:\n"
      "  mov64 r0, 1\n"
      "  exit\n"
      "pass:\n"
      "  mov64 r0, 2\n"
      "  exit\n";
  std::string o1 =
      "  mov64 r9, r1\n  mov64 r1, r9\n" + std::string() +
      xdp_prologue(34, "pass_pre") + "  ja cont\npass_pre:\n  ja pass\ncont:\n" +
      o2;
  Benchmark b;
  b.name = "xdp_router_ipv4";
  b.origin = "linux";
  std::vector<MapDef> maps = {
      MapDef{"route_tbl", MapKind::HASH, 4, 8, 256},
      MapDef{"neigh_tbl", MapKind::ARRAY, 4, 8, 64},
      MapDef{"tx_port", MapKind::DEVMAP, 4, 8, 8},
  };
  b.o1 = ebpf::assemble(o1, ProgType::XDP, maps);
  b.o2 = ebpf::assemble(o2, ProgType::XDP, maps);
  b.paper_o1 = 139;
  b.paper_o2 = 111;
  b.paper_k2 = 99;
  return b;
}

// (10) xdp_redirect: swap MACs and redirect to a fixed port.
Benchmark xdp_redirect() {
  std::string o2 =
      xdp_prologue(14, "drop") +
      mac_swap_bytes() +
      dead_store("r5", -8) +
      "  mov64 r8, 0\n" +
      counter_bump(0, "r8", -4, "r6", "skipcnt") +  // r6 misuse? counter +data
      "  ldmapfd r1, 1\n"
      "  mov64 r2, 0\n"
      "  mov64 r3, 2\n"
      "  call 51\n"
      "  exit\n"
      "drop:\n"
      "  mov64 r0, 1\n"
      "  exit\n";
  // Fix: count packets (add 1), not the data pointer.
  o2 =
      xdp_prologue(14, "drop") +
      mac_swap_bytes() +
      dead_store("r5", -8) +
      "  mov64 r8, 0\n"
      "  mov64 r9, 1\n" +
      counter_bump(0, "r8", -4, "r9", "skipcnt") +
      "  ldmapfd r1, 1\n"
      "  mov64 r2, 0\n"
      "  mov64 r3, 2\n"
      "  call 51\n"
      "  exit\n"
      "drop:\n"
      "  mov64 r0, 1\n"
      "  exit\n";
  std::string o1 = "  mov64 r9, r1\n  mov64 r1, r9\n" + o2;
  Benchmark b;
  b.name = "xdp_redirect";
  b.origin = "linux";
  std::vector<MapDef> maps = {counters("redirect_cnt", 1),
                              MapDef{"tx_port", MapKind::DEVMAP, 4, 8, 8}};
  b.o1 = ebpf::assemble(o1, ProgType::XDP, maps);
  b.o2 = ebpf::assemble(o2, ProgType::XDP, maps);
  b.paper_o1 = 45;
  b.paper_o2 = 43;
  b.paper_k2 = 35;
  return b;
}

// (11) xdp1: protocol counter, then drop.
Benchmark xdp1() {
  std::string o2 =
      xdp_prologue(34, "drop") +
      "  ldxh r2, [r6+12]\n"
      "  be16 r2\n"
      "  mov64 r8, 0\n"                    // default key: not-IP bucket
      "  jne r2, 0x0800, count\n"
      "  ldxb r3, [r6+14]\n"
      "  and64 r3, 0xf\n"
      "  jne r3, 5, count\n"
      "  ldxb r8, [r6+23]\n"               // ip protocol as key
      "count:\n" +
      zero_two_slots("r4", -12) +
      stack_shuffle("r8", "r6", -24) +
      "  and64 r8, 255\n" +
      "  mov64 r9, 1\n" +
      counter_bump(0, "r8", -4, "r9", "skipcnt") +
      mov_roundtrip("r8", "r7") +
      dead_store("r5", -32) +
      "drop:\n"
      "  mov64 r0, 1\n"
      "  exit\n";
  std::string o1 =
      "  mov64 r9, r1\n  mov64 r1, r9\n  mov64 r8, 0\n  mov64 r7, r8\n" + o2;
  Benchmark b;
  b.name = "xdp1_kern/xdp1";
  b.origin = "linux";
  b.o1 = ebpf::assemble(o1, ProgType::XDP, {counters("rxcnt", 256)});
  b.o2 = ebpf::assemble(o2, ProgType::XDP, {counters("rxcnt", 256)});
  b.paper_o1 = 72;
  b.paper_o2 = 61;
  b.paper_k2 = 56;
  return b;
}

// (12) xdp2: xdp1 + MAC swap + TX.
Benchmark xdp2() {
  std::string o2 =
      xdp_prologue(34, "drop") +
      "  ldxh r2, [r6+12]\n"
      "  be16 r2\n"
      "  mov64 r8, 0\n"
      "  jne r2, 0x0800, count\n"
      "  ldxb r3, [r6+14]\n"
      "  and64 r3, 0xf\n"
      "  jne r3, 5, count\n"
      "  ldxb r8, [r6+23]\n"
      "count:\n" +
      "  and64 r8, 255\n"
      "  mov64 r9, 1\n" +
      counter_bump(0, "r8", -4, "r9", "skipcnt") +
      mac_swap_bytes() +                   // Table-11 swap pattern
      dead_store("r5", -16) +
      mov_roundtrip("r8", "r7") +
      "  mov64 r0, 3\n"                    // XDP_TX
      "  exit\n"
      "drop:\n"
      "  mov64 r0, 1\n"
      "  exit\n";
  std::string o1 = "  mov64 r9, r1\n  mov64 r1, r9\n  mov64 r8, 7\n"
                   "  mov64 r7, 9\n" +
                   stack_shuffle("r8", "r7", -48) + o2;
  Benchmark b;
  b.name = "xdp2_kern/xdp1";
  b.origin = "linux";
  b.o1 = ebpf::assemble(o1, ProgType::XDP, {counters("rxcnt", 256)});
  b.o2 = ebpf::assemble(o2, ProgType::XDP, {counters("rxcnt", 256)});
  b.paper_o1 = 93;
  b.paper_o2 = 78;
  b.paper_k2 = 71;
  return b;
}

// (13) xdp_fwd: FIB forward: route + neighbor + TTL/csum + MAC rewrite.
Benchmark xdp_fwd() {
  std::string o2 =
      xdp_prologue(34, "pass") +
      "  ldxh r2, [r6+12]\n"
      "  be16 r2\n"
      "  jne r2, 0x0800, pass\n"
      "  ldxb r3, [r6+14]\n"
      "  and64 r3, 0xf\n"
      "  jne r3, 5, pass\n"
      "  ldxb r3, [r6+22]\n"
      "  jle r3, 1, drop\n"
      "  ldxw r8, [r6+30]\n"               // dst ip
      "  ldxw r9, [r6+26]\n"               // src ip
      "  stxw [r10-4], r8\n"
      "  ldmapfd r1, 0\n"                  // fib (hash)
      "  mov64 r2, r10\n"
      "  add64 r2, -4\n"
      "  call 1\n"
      "  jeq r0, 0, pass\n"
      "  ldxw r8, [r0+0]\n"                // nexthop id
      "  and64 r8, 63\n"
      "  stxw [r10-8], r8\n"
      "  ldmapfd r1, 1\n"                  // neighbors (array)
      "  mov64 r2, r10\n"
      "  add64 r2, -8\n"
      "  call 1\n"
      "  jeq r0, 0, pass\n"
      "  ldxdw r3, [r0+0]\n"               // smac||dmac packed
      "  stxdw [r10-24], r3\n" +
      zero_two_slots("r4", -28) +
      // Old IP word for checksum diff.
      "  ldxw r3, [r6+22]\n"
      "  stxw [r10-32], r3\n"
      // TTL decrement.
      "  ldxb r3, [r6+22]\n"
      "  sub64 r3, 1\n"
      "  stxb [r6+22], r3\n"
      // New IP word; csum_diff(old, 4, new, 4, ~old_csum) idiom.
      "  ldxw r3, [r6+22]\n"
      "  stxw [r10-36], r3\n"
      "  mov64 r1, r10\n"
      "  add64 r1, -32\n"
      "  mov64 r2, 4\n"
      "  mov64 r3, r10\n"
      "  add64 r3, -36\n"
      "  mov64 r4, 4\n"
      "  mov64 r5, 0\n"
      "  call 28\n"
      "  stxh [r6+24], r0\n"               // write new checksum
      + mac_copy_bytes(-24, 0)             // dst MAC byte-wise (Table 11)
      + mac_copy_bytes(-22, 6)             // src MAC byte-wise
      + stack_shuffle("r8", "r9", -48) +
      mov_roundtrip("r8", "r7") +
      "  ldmapfd r1, 2\n"
      "  mov64 r2, r8\n"
      "  and64 r2, 7\n"
      "  mov64 r3, 2\n"
      "  call 51\n"
      "  exit\n"
      "drop:\n"
      "  mov64 r0, 1\n"
      "  exit\n"
      "pass:\n"
      "  mov64 r0, 2\n"
      "  exit\n";
  std::string o1 = "  mov64 r9, r1\n  mov64 r1, r9\n  mov64 r8, 7\n"
                   "  mov64 r7, 9\n" +
                   stack_shuffle("r8", "r7", -56) +
                   dead_store("r8", -60) + o2;
  Benchmark b;
  b.name = "xdp_fwd";
  b.origin = "linux";
  std::vector<MapDef> maps = {
      MapDef{"fib", MapKind::HASH, 4, 8, 256},
      MapDef{"neigh", MapKind::ARRAY, 4, 8, 64},
      MapDef{"tx_port", MapKind::DEVMAP, 4, 8, 8},
  };
  b.o1 = ebpf::assemble(o1, ProgType::XDP, maps);
  b.o2 = ebpf::assemble(o2, ProgType::XDP, maps);
  b.paper_o1 = 170;
  b.paper_o2 = 155;
  b.paper_k2 = 128;
  return b;
}

}  // namespace

std::vector<Benchmark> linux_benchmarks() {
  return {xdp_exception(),      xdp_redirect_err(), xdp_devmap_xmit(),
          xdp_cpumap_kthread(), xdp_cpumap_enqueue(), sys_enter_open(),
          socket0(),            socket1(),          xdp_router_ipv4(),
          xdp_redirect(),       xdp1(),             xdp2(),
          xdp_fwd()};
}

}  // namespace k2::corpus
