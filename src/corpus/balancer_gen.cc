// (19) xdp-balancer: a katran-style L4 load balancer generated to the
// paper's scale (~1800 instructions at -O2).
//
// Structure: bounds-checked Ethernet/IPv4/UDP parse, then one block per VIP
// that matches the destination address, hashes the flow to pick a real
// server from an array map, bumps per-real statistics, and forwards.
//
// The -O1 / -O2 split reproduces the paper's "DNL" (did not load) entry for
// -O1 in Table 1: the -O1 code spills the context pointer to the stack and
// reloads it before use — a pattern lower clang optimization levels emit
// and that the checker cannot track (the reloaded register loses pointer
// provenance), so the program is rejected. The -O2 code also zeroes its
// scratch registers when VIP blocks rejoin, letting the checker's
// state-equivalence pruning collapse path exploration; without that
// convergence a program this size exhausts the 1M-instruction complexity
// budget (kernel_checker.cc).
#include "corpus/corpus.h"
#include "corpus/idioms.h"
#include "ebpf/assembler.h"

namespace k2::corpus {

Benchmark xdp_balancer();

namespace {

using ebpf::MapDef;
using ebpf::MapKind;
using ebpf::ProgType;
using namespace idioms;

std::string balancer_asm(int num_vips, bool spill_ctx) {
  std::string s;
  if (spill_ctx) {
    // -O1: spill/reload of the ctx pointer; the checker loses provenance.
    s += "  stxdw [r10-16], r1\n"
         "  ldxdw r1, [r10-16]\n";
  }
  s += xdp_prologue(42, "pass");
  // Pre-initialize the key slots so every path sees identical stack state.
  s += "  stw [r10-4], 0\n"
       "  stw [r10-8], 0\n";
  s += "  ldxh r2, [r6+12]\n"
       "  be16 r2\n"
       "  jne r2, 0x0800, pass\n"
       "  ldxb r3, [r6+14]\n"
       "  and64 r3, 0xf\n"
       "  jne r3, 5, pass\n"
       "  ldxb r3, [r6+23]\n"
       "  jne r3, 17, pass\n"      // UDP only
       "  ldxw r8, [r6+30]\n"      // dst ip (vip)
       "  ldxw r9, [r6+26]\n";     // src ip (flow entropy)

  for (int i = 0; i < num_vips; ++i) {
    std::string tag = std::to_string(i);
    uint32_t vip = 0x0a000a00u + uint32_t(i);
    s += "vip" + tag + ":\n";
    s += "  mov64 r4, r8\n";
    s += "  lddw r3, " + std::to_string(vip) + "\n";
    s += "  jne r4, r3, next" + tag + "\n";
    // Flow hash: src ^ dst ^ vip index, folded into the reals table size.
    s += "  mov64 r4, r9\n"
         "  xor64 r4, r8\n"
         "  xor64 r4, " + std::to_string(i) + "\n"
         "  and64 r4, 63\n"
         "  stxw [r10-4], r4\n"
         "  ldmapfd r1, 0\n"       // reals (array)
         "  mov64 r2, r10\n"
         "  add64 r2, -4\n"
         "  call 1\n"
         "  jeq r0, 0, next" + tag + "\n"
         "  ldxdw r5, [r0+0]\n"    // real id (stats key)
         "  and64 r5, 3\n"
         "  stxw [r10-8], r5\n"
         "  ldmapfd r1, 1\n"       // per-real stats (array)
         "  mov64 r2, r10\n"
         "  add64 r2, -8\n"
         "  call 1\n"
         "  jeq r0, 0, next" + tag + "\n"
         "  mov64 r1, 1\n"
         "  xadd64 [r0+0], r1\n"
         "  mov64 r0, 3\n"         // XDP_TX towards the real
         "  exit\n";
    s += "next" + tag + ":\n";
    // Scratch rematerialization: makes the verifier states converge at the
    // next block (and gives K2 dead code to harvest).
    s += "  mov64 r0, 0\n"
         "  mov64 r1, 0\n"
         "  mov64 r2, 0\n"
         "  mov64 r3, 0\n"
         "  mov64 r4, 0\n"
         "  mov64 r5, 0\n";
  }
  s += "pass:\n"
       "  mov64 r0, 2\n"
       "  exit\n";
  return s;
}

}  // namespace

Benchmark xdp_balancer() {
  Benchmark b;
  b.name = "xdp-balancer";
  b.origin = "facebook";
  std::vector<MapDef> maps = {MapDef{"reals", MapKind::ARRAY, 4, 8, 64},
                              MapDef{"stats", MapKind::ARRAY, 4, 8, 4}};
  // ~31 instructions per VIP block; 58 blocks ≈ 1.8k instructions.
  b.o1 = ebpf::assemble(balancer_asm(58, /*spill_ctx=*/true), ProgType::XDP,
                        maps);
  b.o2 = ebpf::assemble(balancer_asm(58, /*spill_ctx=*/false), ProgType::XDP,
                        maps);
  b.paper_o1 = -1;  // DNL in the paper
  b.paper_o2 = 1811;
  b.paper_k2 = 1607;
  return b;
}

}  // namespace k2::corpus
