// Benchmarks (17) from-network and (18) recvmsg4, modeled on Cilium's
// datapath programs.
#include "corpus/corpus.h"
#include "corpus/idioms.h"
#include "ebpf/assembler.h"

namespace k2::corpus {

namespace {

using ebpf::MapDef;
using ebpf::MapKind;
using ebpf::ProgType;
using namespace idioms;

// (17) from-network: conntrack-style timestamping of flows entering the
// node. Contains one of the fat stack-swap sequences the paper reports K2
// shrinking from 12 instructions to 4–8 (§9).
Benchmark from_network() {
  std::string o2 =
      xdp_prologue(34, "pass") +
      "  ldxh r2, [r6+12]\n"
      "  be16 r2\n"
      "  jne r2, 0x0800, pass\n"
      "  ldxw r8, [r6+26]\n"                // src ip = conntrack key
      "  call 5\n"                          // ktime_get_ns
      "  mov64 r9, r0\n" +
      stack_shuffle("r8", "r9", -24) +      // removable identity block
      mov_roundtrip("r9", "r7") +
      "  stxw [r10-4], r8\n"
      "  stxdw [r10-16], r9\n"              // value: timestamp
      "  ldmapfd r1, 0\n"                   // ct map (hash)
      "  mov64 r2, r10\n"
      "  add64 r2, -4\n"
      "  mov64 r3, r10\n"
      "  add64 r3, -16\n"
      "  mov64 r4, 0\n"
      "  call 2\n"                          // map_update(ct, &key, &ts)
      "  mov64 r0, 2\n"
      "  exit\n"
      "pass:\n"
      "  mov64 r0, 2\n"
      "  exit\n";
  std::string o1 = "  mov64 r9, r1\n  mov64 r1, r9\n" +
                   dead_store("r8", -32) + o2;
  Benchmark b;
  b.name = "from-network";
  b.origin = "cilium";
  std::vector<MapDef> maps = {MapDef{"ct_map", MapKind::HASH, 4, 8, 512}};
  b.o1 = ebpf::assemble(o1, ProgType::XDP, maps);
  b.o2 = ebpf::assemble(o2, ProgType::XDP, maps);
  b.paper_o1 = 43;
  b.paper_o2 = 39;
  b.paper_k2 = 29;
  return b;
}

// (18) recvmsg4: service → backend address translation for recvmsg(), the
// largest Cilium benchmark. Two map operations with heavy stack staging.
Benchmark recvmsg4() {
  std::string o2 =
      "  ldxdw r6, [r1+0]\n"                // peer ip
      "  ldxdw r7, [r1+8]\n" +              // peer port
      mov_roundtrip("r6", "r8") +
      mov_roundtrip("r7", "r9") +
      zero_two_slots("r3", -20) +
      // Service key: (ip, port) packed 8 bytes.
      "  stxw [r10-8], r6\n"
      "  stxw [r10-4], r7\n" +
      stack_shuffle("r6", "r7", -32) +
      "  ldmapfd r1, 0\n"                   // service map (hash)
      "  mov64 r2, r10\n"
      "  add64 r2, -8\n"
      "  call 1\n"
      "  jeq r0, 0, miss\n"
      // Unpack backend (ip32 | port32) and stage the reverse-NAT entry.
      "  ldxdw r8, [r0+0]\n"
      "  mov64 r2, r8\n"
      "  and64 r2, 0xffffffff\n"            // backend ip
      "  mov64 r3, r8\n"
      "  rsh64 r3, 32\n"                    // backend port
      "  stxw [r10-16], r2\n"
      "  stxw [r10-12], r3\n" +
      stack_shuffle("r8", "r6", -40) +
      mov_roundtrip("r8", "r5") +
      // Reverse entry: key = backend pair, value = original pair.
      "  stxw [r10-28], r6\n"
      "  stxw [r10-24], r7\n"
      "  ldmapfd r1, 1\n"                   // revnat map (hash)
      "  mov64 r2, r10\n"
      "  add64 r2, -16\n"
      "  mov64 r3, r10\n"
      "  add64 r3, -28\n"
      "  mov64 r4, 0\n"
      "  call 2\n" +
      // Count translations.
      "  mov64 r8, 0\n"
      "  mov64 r9, 1\n" +
      counter_bump(2, "r8", -44, "r9", "skipcnt") +
      dead_store("r4", -48) +
      "  mov64 r0, 0\n"
      "  exit\n"
      "miss:\n" +
      zero_two_slots("r5", -52) +
      "  mov64 r8, 1\n"
      "  mov64 r9, 1\n" +
      counter_bump(2, "r8", -44, "r9", "skipmiss") +
      "  mov64 r0, 0\n"
      "  exit\n";
  std::string o1 = "  mov64 r8, r1\n  mov64 r1, r8\n" +
                   dead_store("r9", -56) + o2;
  Benchmark b;
  b.name = "recvmsg4";
  b.origin = "cilium";
  std::vector<MapDef> maps = {
      MapDef{"lb4_services", MapKind::HASH, 8, 8, 256},
      MapDef{"lb4_revnat", MapKind::HASH, 8, 8, 256},
      MapDef{"translate_cnt", MapKind::ARRAY, 4, 8, 4},
  };
  b.o1 = ebpf::assemble(o1, ProgType::TRACEPOINT, maps);
  b.o2 = ebpf::assemble(o2, ProgType::TRACEPOINT, maps);
  b.paper_o1 = 98;
  b.paper_o2 = 94;
  b.paper_k2 = 81;
  return b;
}

}  // namespace

std::vector<Benchmark> cilium_benchmarks() {
  return {from_network(), recvmsg4()};
}

}  // namespace k2::corpus
