// Benchmarks (14) xdp_pktcntr and (19) xdp-balancer, modeled on Facebook's
// katran load balancer repository.
#include "corpus/corpus.h"
#include "corpus/idioms.h"
#include "ebpf/assembler.h"

namespace k2::corpus {

Benchmark xdp_balancer();  // balancer_gen.cc

namespace {

using ebpf::MapDef;
using ebpf::MapKind;
using ebpf::ProgType;
using namespace idioms;

// (14) xdp_pktcntr: the program of the paper's §9 Example 1 — a control
// flag lookup gating a packet counter. The zeroing of two adjacent 32-bit
// stack slots is the exact pattern K2 coalesced into one 64-bit store.
Benchmark xdp_pktcntr() {
  std::string o2 =
      "  mov64 r6, r1\n" +                 // saved ctx (kept live by habit)
      mov_roundtrip("r6", "r7") +
      "  mov64 r1, 0\n"
      "  stxw [r10-4], r1\n"               // u32 ctl_flag_pos = 0
      "  stxw [r10-8], r1\n"               // u32 cntr_pos = 0
      "  ldmapfd r1, 0\n"
      "  mov64 r2, r10\n"
      "  add64 r2, -4\n"
      "  call 1\n"
      "  jeq r0, 0, out\n"
      "  ldxw r3, [r0+0]\n"
      "  jeq r3, 0, out\n"
      "  ldmapfd r1, 1\n"
      "  mov64 r2, r10\n"
      "  add64 r2, -8\n"
      "  call 1\n"
      "  jeq r0, 0, out\n"
      "  mov64 r1, 1\n"
      "  xadd64 [r0+0], r1\n"
      "out:\n"
      "  mov64 r0, 2\n"
      "  exit\n";
  Benchmark b;
  b.name = "xdp_pktcntr";
  b.origin = "facebook";
  std::vector<MapDef> maps = {MapDef{"ctl_array", MapKind::ARRAY, 4, 8, 4},
                              MapDef{"cntr_array", MapKind::ARRAY, 4, 8, 4}};
  b.o1 = ebpf::assemble(o2, ProgType::XDP, maps);
  b.o2 = ebpf::assemble(o2, ProgType::XDP, maps);
  b.paper_o1 = 22;
  b.paper_o2 = 22;
  b.paper_k2 = 19;
  return b;
}

}  // namespace

std::vector<Benchmark> facebook_benchmarks() {
  return {xdp_pktcntr(), xdp_balancer()};
}

}  // namespace k2::corpus
