// Benchmarks (15) xdp_fw and (16) xdp_map_access from the hXDP paper's
// benchmark suite (Brunella et al., OSDI 2020).
#include "corpus/corpus.h"
#include "corpus/idioms.h"
#include "ebpf/assembler.h"

namespace k2::corpus {

namespace {

using ebpf::MapDef;
using ebpf::MapKind;
using ebpf::ProgType;
using namespace idioms;

// (15) xdp_fw: stateful firewall — drop flows present in the blocklist.
Benchmark xdp_fw() {
  std::string o2 =
      xdp_prologue(42, "pass") +
      "  ldxh r2, [r6+12]\n"
      "  be16 r2\n"
      "  jne r2, 0x0800, pass\n"
      "  ldxb r3, [r6+14]\n"
      "  and64 r3, 0xf\n"
      "  jne r3, 5, pass\n"
      "  ldxb r3, [r6+23]\n"
      "  jeq r3, 6, l4ok\n"
      "  jne r3, 17, pass\n"                // TCP or UDP
      "l4ok:\n"
      "  ldxw r8, [r6+26]\n"                // src ip
      "  ldxw r9, [r6+30]\n" +              // dst ip
      mov_roundtrip("r8", "r4") +
      // Flow key: (src ip, dst ip) packed into 8 bytes on the stack.
      "  stxw [r10-8], r8\n"
      "  stxw [r10-4], r9\n" +
      zero_two_slots("r5", -12) +
      stack_shuffle("r8", "r9", -24) +
      "  ldmapfd r1, 0\n"                   // blocklist (hash)
      "  mov64 r2, r10\n"
      "  add64 r2, -8\n"
      "  call 1\n"
      "  jeq r0, 0, allow\n"
      // Blocked: count the drop and drop.
      "  mov64 r1, 1\n"
      "  xadd64 [r0+0], r1\n"
      "  mov64 r0, 1\n"
      "  exit\n"
      "allow:\n" +
      dead_store("r5", -32) +
      "  mov64 r8, 0\n"
      "  mov64 r9, 1\n" +
      counter_bump(1, "r8", -12, "r9", "skipcnt") +
      "pass:\n"
      "  mov64 r0, 2\n"
      "  exit\n";
  std::string o1 = "  mov64 r9, r1\n  mov64 r1, r9\n" +
                   dead_store("r8", -40) + stack_shuffle("r8", "r8", -56) +
                   o2;
  Benchmark b;
  b.name = "xdp_fw";
  b.origin = "hxdp";
  std::vector<MapDef> maps = {MapDef{"flow_block", MapKind::HASH, 8, 8, 256},
                              MapDef{"pass_cnt", MapKind::ARRAY, 4, 8, 4}};
  b.o1 = ebpf::assemble(o1, ProgType::XDP, maps);
  b.o2 = ebpf::assemble(o2, ProgType::XDP, maps);
  b.paper_o1 = 85;
  b.paper_o2 = 72;
  b.paper_k2 = 65;
  return b;
}

// (16) xdp_map_access: per-CPU touch counter (Table 11 dead-store case).
Benchmark xdp_map_access() {
  std::string o2 =
      "  call 8\n"                          // get_smp_processor_id
      "  mov64 r6, r0\n"
      "  and64 r6, 3\n" +
      dead_store("r3", -8) +                // the exact Table-11 dead pair
      mov_roundtrip("r6", "r7") +
      "  stxw [r10-4], r6\n"
      "  ldmapfd r1, 0\n"
      "  mov64 r2, r10\n"
      "  add64 r2, -4\n"
      "  call 1\n"
      "  jeq r0, 0, out\n"
      "  mov64 r1, 1\n"
      "  xadd64 [r0+0], r1\n"
      "out:\n" +
      dead_store("r4", -16) +
      "  mov64 r0, 2\n"
      "  exit\n";
  std::string o1 = o2;
  Benchmark b;
  b.name = "xdp_map_access";
  b.origin = "hxdp";
  b.o1 = ebpf::assemble(
      o1, ProgType::XDP,
      {MapDef{"cpu_touch", MapKind::ARRAY, 4, 8, 4}});
  b.o2 = ebpf::assemble(
      o2, ProgType::XDP,
      {MapDef{"cpu_touch", MapKind::ARRAY, 4, 8, 4}});
  b.paper_o1 = 30;
  b.paper_o2 = 30;
  b.paper_k2 = 26;
  return b;
}

}  // namespace

std::vector<Benchmark> hxdp_benchmarks() { return {xdp_fw(), xdp_map_access()}; }

}  // namespace k2::corpus
