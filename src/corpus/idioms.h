// Internal helpers for composing corpus benchmarks from realistic BPF
// idiom blocks. Each emitter returns assembler text; blocks are chosen so
// the resulting programs (a) pass this repo's safety and kernel checkers
// and (b) contain the optimization headroom the paper's Table 11 documents.
#pragma once

#include <string>

namespace k2::corpus::idioms {

// Bounds-checked XDP prologue: r6 = data, r7 = data_end, verifies
// `need_bytes` of packet are accessible, else jumps to `drop_label`.
// 5 instructions.
inline std::string xdp_prologue(int need_bytes,
                                const std::string& drop_label) {
  return "  ldxdw r6, [r1+0]\n"
         "  ldxdw r7, [r1+8]\n"
         "  mov64 r2, r6\n"
         "  add64 r2, " + std::to_string(need_bytes) + "\n"
         "  jgt r2, r7, " + drop_label + "\n";
}

// The Table-11 xdp_pktcntr pattern: zero a register, then spill it as two
// 32-bit stores K2 coalesces into one 64-bit immediate store. `reg` must be
// a dead-afterwards scratch register. 3 instructions.
inline std::string zero_two_slots(const std::string& reg, int off_hi) {
  return "  mov64 " + reg + ", 0\n"
         "  stxw [r10" + std::to_string(off_hi) + "], " + reg + "\n"
         "  stxw [r10" + std::to_string(off_hi - 4) + "], " + reg + "\n";
}

// Array-map counter bump: writes `key_reg`'s low 32 bits as the key at
// stack slot `key_off` and atomically adds `add_reg` to the value.
// Clobbers r1, r2 (and r0). 7 instructions + label.
inline std::string counter_bump(int map_fd, const std::string& key_reg,
                                int key_off, const std::string& add_reg,
                                const std::string& skip_label) {
  return "  stxw [r10" + std::to_string(key_off) + "], " + key_reg + "\n"
         "  ldmapfd r1, " + std::to_string(map_fd) + "\n"
         "  mov64 r2, r10\n"
         "  add64 r2, " + std::to_string(key_off) + "\n"
         "  call 1\n"
         "  jeq r0, 0, " + skip_label + "\n"
         "  xadd64 [r0+0], " + add_reg + "\n" +
         skip_label + ":\n";
}

// Non-atomic counter bump with the load-add-store shape K2 rewrites into a
// single xadd (Table 11, sys_enter_open). 9 instructions + label.
inline std::string counter_bump_naive(int map_fd, int key_off,
                                      const std::string& skip_label) {
  return "  ldmapfd r1, " + std::to_string(map_fd) + "\n"
         "  mov64 r2, r10\n"
         "  add64 r2, " + std::to_string(key_off) + "\n"
         "  call 1\n"
         "  jeq r0, 0, " + skip_label + "\n"
         "  ldxdw r1, [r0+0]\n"
         "  add64 r1, 1\n"
         "  stxdw [r0+0], r1\n" +
         skip_label + ":\n";
}

// Redundant register shuffle through the stack (identity). The K2 search
// can remove the whole block; rule-based DCE cannot, because the stores
// feed the loads. 8 instructions; uses slots off and off-8 and scratch r2/r3.
inline std::string stack_shuffle(const std::string& rx,
                                 const std::string& ry, int off) {
  std::string o1 = std::to_string(off), o2 = std::to_string(off - 8);
  return "  stxdw [r10" + o1 + "], " + rx + "\n"
         "  stxdw [r10" + o2 + "], " + ry + "\n"
         "  ldxdw r2, [r10" + o1 + "]\n"
         "  ldxdw r3, [r10" + o2 + "]\n"
         "  stxdw [r10" + o1 + "], r3\n"
         "  stxdw [r10" + o2 + "], r2\n"
         "  ldxdw " + ry + ", [r10" + o1 + "]\n"
         "  ldxdw " + rx + ", [r10" + o2 + "]\n";
}

// Byte-wise MAC copy from stack to packet, the Table-11 xdp_fwd pattern:
// three 16-bit loads each expanded into two 8-bit stores; K2 coalesces
// into 32+16-bit moves. 12 instructions. Requires 6 packet bytes at
// [r6+pkt_off, ...) verified accessible and 6 stack bytes at stk_off.
inline std::string mac_copy_bytes(int stk_off, int pkt_off) {
  std::string s;
  for (int half = 0; half < 3; ++half) {
    int so = stk_off + 2 * half;
    int po = pkt_off + 2 * half;
    s += "  ldxh r3, [r10" + std::to_string(so) + "]\n";
    s += "  stxb [r6+" + std::to_string(po) + "], r3\n";
    s += "  rsh64 r3, 8\n";
    s += "  stxb [r6+" + std::to_string(po + 1) + "], r3\n";
  }
  return s;
}

// 6-byte MAC swap in the packet using byte loads/stores (xdp2's Table 11
// pattern, byte-granularity variant). 6 iterations × 4 insns = 24 insns.
// Requires 12 packet bytes accessible.
inline std::string mac_swap_bytes() {
  std::string s;
  for (int i = 0; i < 6; ++i) {
    s += "  ldxb r3, [r6+" + std::to_string(i) + "]\n";
    s += "  ldxb r4, [r6+" + std::to_string(6 + i) + "]\n";
    s += "  stxb [r6+" + std::to_string(i) + "], r4\n";
    s += "  stxb [r6+" + std::to_string(6 + i) + "], r3\n";
  }
  return s;
}

// Dead scratch writes (Table 11, xdp_map_access): a zeroed register stored
// to a stack slot nothing reads. 2 instructions.
inline std::string dead_store(const std::string& reg, int off) {
  return "  mov64 " + reg + ", 0\n"
         "  stxb [r10" + std::to_string(off) + "], " + reg + "\n";
}

// Register round-trip (mov there and back); K2 removes both. 2 insns.
inline std::string mov_roundtrip(const std::string& ra,
                                 const std::string& rb) {
  return "  mov64 " + rb + ", " + ra + "\n"
         "  mov64 " + ra + ", " + rb + "\n";
}

}  // namespace k2::corpus::idioms
