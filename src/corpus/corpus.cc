#include "corpus/corpus.h"

#include <stdexcept>

namespace k2::corpus {

const std::vector<Benchmark>& all_benchmarks() {
  static const std::vector<Benchmark> all = [] {
    std::vector<Benchmark> v;
    // Table 1 order: linux (1-13), facebook xdp_pktcntr (14), hXDP (15-16),
    // cilium (17-18), facebook xdp-balancer (19).
    std::vector<Benchmark> linux = linux_benchmarks();
    std::vector<Benchmark> fb = facebook_benchmarks();
    std::vector<Benchmark> hx = hxdp_benchmarks();
    std::vector<Benchmark> ci = cilium_benchmarks();
    for (auto& b : linux) v.push_back(std::move(b));
    v.push_back(std::move(fb[0]));  // xdp_pktcntr
    for (auto& b : hx) v.push_back(std::move(b));
    for (auto& b : ci) v.push_back(std::move(b));
    v.push_back(std::move(fb[1]));  // xdp-balancer
    return v;
  }();
  return all;
}

const Benchmark& benchmark(const std::string& name) {
  for (const Benchmark& b : all_benchmarks())
    if (b.name == name) return b;
  throw std::out_of_range("no such benchmark: " + name);
}

}  // namespace k2::corpus
