// The 19-benchmark corpus mirroring the paper's Table 1 programs, drawn
// from the Linux kernel samples (1–13), Facebook/katran (14, 19), hXDP
// (15, 16), and Cilium (17, 18).
//
// Substitution note (DESIGN.md §1): we do not have the clang-9-compiled
// object files of the original sources, so each benchmark is authored in
// this repo's BPF assembly with the same program semantics (parse → map
// state → verdict), hook type, and approximate instruction counts, and —
// crucially — the same *redundancy patterns* the paper reports K2
// exploiting (Table 11): coalescable byte stores, dead register/stack
// writes, load-add-store sequences reducible to atomic adds, and
// context-dependent strength reductions. The `-O1` variant layers extra
// spills/moves on the `-O2` variant, as clang does at lower optimization.
#pragma once

#include <string>
#include <vector>

#include "ebpf/program.h"

namespace k2::corpus {

struct Benchmark {
  std::string name;
  std::string origin;     // linux | facebook | hxdp | cilium
  ebpf::Program o1;
  ebpf::Program o2;       // the K2 search starts from this (paper §8)
  // Reference values from the paper's Table 1 for side-by-side reporting.
  int paper_o1 = 0;
  int paper_o2 = 0;
  int paper_k2 = 0;
};

// Individual suites.
std::vector<Benchmark> linux_benchmarks();     // (1)-(13)
std::vector<Benchmark> facebook_benchmarks();  // (14) xdp_pktcntr, (19) xdp-balancer
std::vector<Benchmark> hxdp_benchmarks();      // (15) xdp_fw, (16) xdp_map_access
std::vector<Benchmark> cilium_benchmarks();    // (17) from-network, (18) recvmsg4

// All 19, in the paper's Table 1 order.
const std::vector<Benchmark>& all_benchmarks();

// Lookup by name; throws std::out_of_range for unknown names.
const Benchmark& benchmark(const std::string& name);

}  // namespace k2::corpus
