#include "analysis/dce.h"

#include "analysis/cfg.h"
#include "analysis/liveness.h"
#include "analysis/typeinfer.h"

namespace k2::analysis {

using ebpf::Insn;
using ebpf::InsnClass;
using ebpf::Opcode;

ebpf::Program remove_dead_code(const ebpf::Program& prog, bool aggressive) {
  ebpf::Program out = prog;
  Cfg cfg = build_cfg(prog);
  if (!cfg.loop_free) return out;
  TypeInfo ti = infer_types(prog, cfg);
  if (!ti.ok) return out;
  Liveness lv = compute_liveness(prog, cfg, ti);

  for (size_t i = 0; i < prog.insns.size(); ++i) {
    const Insn& insn = prog.insns[i];
    if (insn.op == Opcode::NOP) continue;
    int b = cfg.block_of[i];
    if (b >= 0 && !cfg.reachable[b]) {
      out.insns[i].op = Opcode::NOP;
      out.insns[i] = Insn{};
      continue;
    }
    InsnClass cls = ebpf::insn_class(insn.op);
    uint16_t defs = ebpf::def_mask(insn);
    bool def_dead = defs != 0 && (defs & lv.live_out[i]) == 0;
    switch (cls) {
      case InsnClass::ALU:
      case InsnClass::LD_IMM:
        if (def_dead) out.insns[i] = Insn{};
        break;
      case InsnClass::LDX:
        if (def_dead && aggressive) out.insns[i] = Insn{};
        break;
      case InsnClass::STX:
      case InsnClass::ST: {
        auto info = access_info(prog, ti, static_cast<int>(i));
        if (info && info->region == Rt::PTR_STACK && info->off_known &&
            info->off >= -kStackSize && info->off + info->width <= 0) {
          bool any_live = false;
          for (int k = 0; k < info->width; ++k)
            if (lv.stack_out[i][static_cast<size_t>(info->off + k +
                                                    kStackSize)])
              any_live = true;
          if (!any_live) out.insns[i] = Insn{};
        }
        break;
      }
      default:
        break;
    }
  }
  return out;
}

ebpf::Program canonicalize(const ebpf::Program& prog) {
  ebpf::Program cur = prog;
  for (int round = 0; round < 8; ++round) {
    ebpf::Program next = remove_dead_code(cur, /*aggressive=*/true);
    if (next.insns == cur.insns) break;
    cur = std::move(next);
  }
  return cur.strip_nops();
}

uint64_t program_hash(const ebpf::Program& prog) {
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  for (const Insn& insn : prog.insns) {
    mix(static_cast<uint64_t>(insn.op));
    mix(insn.dst | (uint64_t(insn.src) << 8) |
        (uint64_t(static_cast<uint16_t>(insn.off)) << 16));
    mix(static_cast<uint64_t>(insn.imm));
  }
  return h;
}

uint64_t program_hash2(const ebpf::Program& prog) {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  auto mix = [&h](uint64_t v) {
    // splitmix64 round over (state ^ value): a different algebra than the
    // byte-wise FNV above, so the two hashes collide independently.
    uint64_t x = h ^ v;
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    h = x ^ (x >> 31);
  };
  for (const Insn& insn : prog.insns) {
    mix(static_cast<uint64_t>(insn.op));
    mix(insn.dst | (uint64_t(insn.src) << 8) |
        (uint64_t(static_cast<uint16_t>(insn.off)) << 16));
    mix(static_cast<uint64_t>(insn.imm));
  }
  return h;
}

}  // namespace k2::analysis
