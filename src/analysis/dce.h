// Dead-code elimination and program canonicalization.
//
// Two uses in the paper: (a) canonicalizing candidates before hashing into
// the equivalence-checking outcome cache ("We canonicalize the program by
// removing dead code", §5 V), and (b) the non-trivial dead-code elimination
// K2 itself discovers ("leverages the liveness of memory addresses", §9).
#pragma once

#include <cstdint>

#include "ebpf/program.h"

namespace k2::analysis {

// Replaces dead instructions with NOPs:
//  * unreachable instructions,
//  * ALU / LDDW / LDMAPFD whose defined register is dead,
//  * stores to provably-in-bounds stack bytes that are never read again.
// Loads are removed only when `aggressive` (a faulting load is observable,
// so the conservative mode keeps them).
ebpf::Program remove_dead_code(const ebpf::Program& prog,
                               bool aggressive = false);

// Cache-key form: iterated aggressive DCE + NOP stripping.
ebpf::Program canonicalize(const ebpf::Program& prog);

// FNV-1a over the canonical instruction stream (cache key).
uint64_t program_hash(const ebpf::Program& prog);

// Second, independent hash (splitmix64 accumulation) over the same stream.
// The equivalence cache stores it as a fingerprint next to each verdict so a
// 64-bit collision in program_hash cannot surface a wrong cached Verdict.
uint64_t program_hash2(const ebpf::Program& prog);

}  // namespace k2::analysis
