#include "analysis/liveness.h"

#include "ebpf/helpers_def.h"

namespace k2::analysis {

using ebpf::Insn;
using ebpf::Opcode;

namespace {

struct InsnEffect {
  uint16_t reg_use = 0;
  uint16_t reg_def = 0;
  StackSet stack_use;
  StackSet stack_def;
  bool stack_use_all = false;  // unknown-offset read
};

// Marks stack bytes [off, off+w) (offsets relative to r10, negative).
void mark(StackSet* set, int64_t off, int64_t w) {
  for (int64_t i = 0; i < w; ++i) {
    int64_t idx = off + i + kStackSize;
    if (idx >= 0 && idx < kStackSize) set->set(static_cast<size_t>(idx));
  }
}

InsnEffect effect(const ebpf::Program& prog, const TypeInfo& ti, int idx) {
  const Insn& insn = prog.insns[idx];
  InsnEffect e;
  e.reg_use = ebpf::use_mask(insn);
  e.reg_def = ebpf::def_mask(insn);

  if (insn.op == Opcode::CALL) {
    const ebpf::HelperProto* proto = ebpf::helper_proto(insn.imm);
    if (proto) {
      uint16_t use = 0;
      for (int r = 1; r <= proto->nargs; ++r) use |= uint16_t(1u << r);
      e.reg_use = use;
      // Pointer arguments make the pointed-to stack bytes live. Map helpers
      // read key/value buffers of statically-known size; csum_diff reads
      // dynamically-sized buffers, so be conservative.
      auto arg_reads = [&](int reg, uint32_t size) {
        const RegState& rs = ti.reg_before(idx, reg);
        if (rs.type == Rt::PTR_STACK) {
          if (rs.off_known)
            mark(&e.stack_use, rs.off, size);
          else
            e.stack_use_all = true;
        }
      };
      switch (insn.imm) {
        case ebpf::HELPER_MAP_LOOKUP:
        case ebpf::HELPER_MAP_DELETE:
          if (!prog.maps.empty()) {
            const RegState& h = ti.reg_before(idx, 1);
            uint32_t ks = h.map_fd >= 0 &&
                                  h.map_fd < static_cast<int>(prog.maps.size())
                              ? prog.maps[h.map_fd].key_size
                              : 8;
            arg_reads(2, ks);
          } else {
            e.stack_use_all = true;
          }
          break;
        case ebpf::HELPER_MAP_UPDATE:
          if (!prog.maps.empty()) {
            const RegState& h = ti.reg_before(idx, 1);
            bool known = h.map_fd >= 0 &&
                         h.map_fd < static_cast<int>(prog.maps.size());
            arg_reads(2, known ? prog.maps[h.map_fd].key_size : 8);
            arg_reads(3, known ? prog.maps[h.map_fd].value_size : 8);
          } else {
            e.stack_use_all = true;
          }
          break;
        case ebpf::HELPER_CSUM_DIFF:
          e.stack_use_all = true;
          break;
        default:
          break;
      }
    }
    return e;
  }

  if (ebpf::is_mem_access(insn.op)) {
    auto info = access_info(prog, ti, idx);
    int w = ebpf::mem_width(insn.op);
    if (info && info->region == Rt::PTR_STACK) {
      if (ebpf::is_mem_load(insn.op) ||
          ebpf::insn_class(insn.op) == ebpf::InsnClass::XADD) {
        if (info->off_known)
          mark(&e.stack_use, info->off, w);
        else
          e.stack_use_all = true;
      }
      if (ebpf::is_mem_store(insn.op) && info->off_known &&
          ebpf::insn_class(insn.op) != ebpf::InsnClass::XADD) {
        mark(&e.stack_def, info->off, w);
      }
    } else if (!info || info->region == Rt::UNKNOWN) {
      // Unknown provenance: could alias the stack.
      if (ebpf::is_mem_load(insn.op)) e.stack_use_all = true;
    }
  }
  return e;
}

}  // namespace

Liveness compute_liveness(const ebpf::Program& prog, const Cfg& cfg,
                          const TypeInfo& ti) {
  const int n = static_cast<int>(prog.insns.size());
  Liveness lv;
  lv.live_in.assign(n, 0);
  lv.live_out.assign(n, 0);
  lv.stack_in.assign(n, {});
  lv.stack_out.assign(n, {});

  // Block-entry liveness; blocks processed in reverse (succs come later in a
  // loop-free CFG, so one pass converges).
  std::vector<uint16_t> block_in_regs(cfg.num_blocks(), 0);
  std::vector<StackSet> block_in_stack(cfg.num_blocks());

  for (int b = cfg.num_blocks() - 1; b >= 0; --b) {
    const BasicBlock& blk = cfg.blocks[b];
    uint16_t regs = 0;
    StackSet stack;
    bool is_exit_block =
        blk.start < blk.end && prog.insns[blk.end - 1].op == Opcode::EXIT;
    if (is_exit_block || blk.succs.empty()) {
      regs = 1;  // r0 is the program output
    }
    for (int s : blk.succs) {
      regs |= block_in_regs[s];
      stack |= block_in_stack[s];
    }
    for (int i = blk.end - 1; i >= blk.start; --i) {
      lv.live_out[i] = regs;
      lv.stack_out[i] = stack;
      InsnEffect e = effect(prog, ti, i);
      regs = static_cast<uint16_t>((regs & ~e.reg_def) | e.reg_use);
      if (e.stack_use_all)
        stack.set();
      else
        stack = (stack & ~e.stack_def) | e.stack_use;
      lv.live_in[i] = regs;
      lv.stack_in[i] = stack;
    }
    block_in_regs[b] = regs;
    block_in_stack[b] = stack;
  }
  return lv;
}

}  // namespace k2::analysis
