// Pointer type / offset / constant-value inference.
//
// This is the paper's static analysis backbone for the equivalence-checking
// accelerations (§5): memory *type* concretization (every pointer's region is
// soundly known — optimization I), memory *offset* concretization (best-
// effort concrete offsets into the region — optimization III), and map
// concretization (the map fd feeding each helper call — optimization II).
// It also feeds window preconditions ("inferred concrete valuations of
// variables", App. C.2) and the safety checker's access typing (§6).
//
// The analysis is a forward abstract interpretation over the loop-free CFG
// with edge-sensitive refinement of map-lookup NULL checks.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/cfg.h"
#include "ebpf/program.h"

namespace k2::analysis {

enum class Rt : uint8_t {
  UNINIT,              // never written (reading is unsafe, §6)
  SCALAR,              // non-pointer value
  PTR_STACK,           // r10-derived; offset relative to stack top (<= 0)
  PTR_CTX,             // context pointer
  PTR_PKT,             // packet data pointer
  PTR_PKT_END,         // packet data_end (comparison-only pointer)
  PTR_MAP_VALUE_OR_NULL,  // result of bpf_map_lookup_elem before NULL check
  PTR_MAP_VALUE,       // proven non-NULL map value pointer
  MAP_HANDLE,          // result of LDMAPFD
  UNKNOWN,             // join of incompatible states / pointer arithmetic
};

const char* rt_name(Rt t);

inline bool is_pointer(Rt t) {
  return t == Rt::PTR_STACK || t == Rt::PTR_CTX || t == Rt::PTR_PKT ||
         t == Rt::PTR_PKT_END || t == Rt::PTR_MAP_VALUE ||
         t == Rt::PTR_MAP_VALUE_OR_NULL;
}

struct RegState {
  Rt type = Rt::UNINIT;
  bool off_known = false;   // concrete offset from region base (pointers)
  int64_t off = 0;
  int map_fd = -1;          // for MAP_HANDLE / PTR_MAP_VALUE*
  bool val_known = false;   // concrete scalar value (SCALAR only)
  uint64_t val = 0;

  bool operator==(const RegState&) const = default;
};

using RegFile = std::array<RegState, 11>;

// Join of two abstract register states (lattice meet towards UNKNOWN).
RegState join(const RegState& a, const RegState& b);

struct TypeInfo {
  // Abstract register file *before* each instruction executes. Entries for
  // unreachable instructions keep all-UNINIT states.
  std::vector<RegFile> before;
  bool ok = false;  // false when the program is not loop-free

  const RegState& reg_before(int insn_idx, int reg) const {
    return before[insn_idx][reg];
  }
};

// `entry` overrides the abstract register file at program entry (used for
// window slices, whose entry state is the enclosing program's state at the
// window boundary); nullptr selects the standard BPF entry state (r1 = ctx,
// r10 = stack).
TypeInfo infer_types(const ebpf::Program& prog, const Cfg& cfg,
                     const RegFile* entry = nullptr);

// Convenience: the memory region and concrete offset accessed by the memory
// instruction at `idx` (base register + displacement), if statically known.
struct AccessInfo {
  Rt region = Rt::UNKNOWN;
  int map_fd = -1;
  bool off_known = false;
  int64_t off = 0;   // byte offset of the access within the region
  int width = 0;
};
std::optional<AccessInfo> access_info(const ebpf::Program& prog,
                                      const TypeInfo& ti, int idx);

}  // namespace k2::analysis
