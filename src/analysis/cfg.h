// Control-flow graph over basic blocks (§6 "K2 constructs the complete
// control flow graph over basic blocks at compile time"), plus the standard
// analyses the rest of the system needs: reachability, topological order,
// dominance.
//
// BPF control flow in synthesized programs only moves forward (loop-free by
// construction, §3.1), so block order is already a topological order; the
// `loop_free` flag reports whether that invariant actually holds for a given
// program.
#pragma once

#include <vector>

#include "ebpf/program.h"

namespace k2::analysis {

struct BasicBlock {
  int start = 0;  // first instruction index
  int end = 0;    // one past last instruction index
  std::vector<int> succs;
  std::vector<int> preds;
};

struct Cfg {
  std::vector<BasicBlock> blocks;
  std::vector<int> block_of;     // instruction index -> block id
  std::vector<bool> reachable;   // per block, from entry
  bool loop_free = true;         // no edge to an earlier (or same) block

  int num_blocks() const { return static_cast<int>(blocks.size()); }
};

Cfg build_cfg(const ebpf::Program& prog);

// Immediate dominator per block (-1 for entry / unreachable blocks).
// Requires a loop-free CFG.
std::vector<int> immediate_dominators(const Cfg& cfg);

// True when block `a` dominates block `b` under `idom`.
bool dominates(const std::vector<int>& idom, int a, int b);

// can_reach[a][b]: a path exists from block a to block b (a != b).
std::vector<std::vector<bool>> reachability_matrix(const Cfg& cfg);

}  // namespace k2::analysis
