#include "analysis/cfg.h"

#include <algorithm>
#include <set>

namespace k2::analysis {

using ebpf::Insn;
using ebpf::Opcode;

Cfg build_cfg(const ebpf::Program& prog) {
  const int n = static_cast<int>(prog.insns.size());
  Cfg cfg;
  cfg.block_of.assign(n, -1);

  // Leaders: entry, jump targets, fall-throughs after jumps/exits.
  std::set<int> leaders{0};
  for (int i = 0; i < n; ++i) {
    const Insn& insn = prog.insns[i];
    if (ebpf::is_jump(insn.op)) {
      leaders.insert(i + 1 + insn.off);
      if (i + 1 < n) leaders.insert(i + 1);
    } else if (insn.op == Opcode::EXIT && i + 1 < n) {
      leaders.insert(i + 1);
    }
  }

  std::vector<int> starts(leaders.begin(), leaders.end());
  for (size_t b = 0; b < starts.size(); ++b) {
    BasicBlock blk;
    blk.start = starts[b];
    blk.end = (b + 1 < starts.size()) ? starts[b + 1] : n;
    cfg.blocks.push_back(blk);
  }
  for (int b = 0; b < cfg.num_blocks(); ++b)
    for (int i = cfg.blocks[b].start; i < cfg.blocks[b].end; ++i)
      cfg.block_of[i] = b;

  // Edges.
  for (int b = 0; b < cfg.num_blocks(); ++b) {
    BasicBlock& blk = cfg.blocks[b];
    if (blk.start == blk.end) continue;  // empty tail block
    const Insn& last = prog.insns[blk.end - 1];
    auto add_edge = [&](int target_insn) {
      if (target_insn < 0 || target_insn >= n) return;
      int t = cfg.block_of[target_insn];
      blk.succs.push_back(t);
      cfg.blocks[t].preds.push_back(b);
      if (t <= b) cfg.loop_free = false;
    };
    if (last.op == Opcode::EXIT) {
      // no successors
    } else if (last.op == Opcode::JA) {
      add_edge(blk.end + last.off);
    } else if (ebpf::is_cond_jump(last.op)) {
      add_edge(blk.end);              // fall-through first (branch untaken)
      add_edge(blk.end + last.off);   // branch taken
    } else {
      add_edge(blk.end);
    }
  }

  // Reachability from entry.
  cfg.reachable.assign(cfg.num_blocks(), false);
  std::vector<int> work{0};
  if (cfg.num_blocks() > 0) cfg.reachable[0] = true;
  while (!work.empty()) {
    int b = work.back();
    work.pop_back();
    for (int s : cfg.blocks[b].succs)
      if (!cfg.reachable[s]) {
        cfg.reachable[s] = true;
        work.push_back(s);
      }
  }
  return cfg;
}

std::vector<int> immediate_dominators(const Cfg& cfg) {
  const int n = cfg.num_blocks();
  std::vector<int> idom(n, -1);
  // Forward-only CFG: block index order is a topological order, so a single
  // pass suffices.
  for (int b = 1; b < n; ++b) {
    if (!cfg.reachable[b]) continue;
    int dom = -1;
    for (int p : cfg.blocks[b].preds) {
      if (!cfg.reachable[p]) continue;
      if (dom == -1) {
        dom = p;
      } else {
        // Intersect: walk both up the dominator tree.
        int a = dom, c = p;
        while (a != c) {
          while (a > c) a = idom[a] == -1 ? 0 : idom[a];
          while (c > a) c = idom[c] == -1 ? 0 : idom[c];
        }
        dom = a;
      }
    }
    idom[b] = dom;
  }
  return idom;
}

bool dominates(const std::vector<int>& idom, int a, int b) {
  if (a == b) return true;
  while (b > 0 && idom[b] != -1) {
    b = idom[b];
    if (b == a) return true;
  }
  return a == 0 && b == 0;
}

std::vector<std::vector<bool>> reachability_matrix(const Cfg& cfg) {
  const int n = cfg.num_blocks();
  std::vector<std::vector<bool>> can(n, std::vector<bool>(n, false));
  // Process in reverse topological (descending index) order.
  for (int b = n - 1; b >= 0; --b) {
    for (int s : cfg.blocks[b].succs) {
      can[b][s] = true;
      for (int t = 0; t < n; ++t)
        if (can[s][t]) can[b][t] = true;
    }
  }
  return can;
}

}  // namespace k2::analysis
