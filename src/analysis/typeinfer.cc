#include "analysis/typeinfer.h"

#include "ebpf/helpers_def.h"
#include "ebpf/semantics.h"

namespace k2::analysis {

using ebpf::AluOp;
using ebpf::AluShape;
using ebpf::Insn;
using ebpf::InsnClass;
using ebpf::JmpShape;
using ebpf::Opcode;

const char* rt_name(Rt t) {
  switch (t) {
    case Rt::UNINIT: return "uninit";
    case Rt::SCALAR: return "scalar";
    case Rt::PTR_STACK: return "ptr_stack";
    case Rt::PTR_CTX: return "ptr_ctx";
    case Rt::PTR_PKT: return "ptr_pkt";
    case Rt::PTR_PKT_END: return "ptr_pkt_end";
    case Rt::PTR_MAP_VALUE_OR_NULL: return "ptr_map_value_or_null";
    case Rt::PTR_MAP_VALUE: return "ptr_map_value";
    case Rt::MAP_HANDLE: return "map_handle";
    case Rt::UNKNOWN: return "unknown";
  }
  return "?";
}

RegState join(const RegState& a, const RegState& b) {
  if (a == b) return a;
  RegState r;
  // A checked map-value pointer merged with the NULL constant is exactly the
  // unchecked lookup result again.
  auto null_scalar = [](const RegState& s) {
    return s.type == Rt::SCALAR && s.val_known && s.val == 0;
  };
  if ((a.type == Rt::PTR_MAP_VALUE || a.type == Rt::PTR_MAP_VALUE_OR_NULL) &&
      null_scalar(b)) {
    r = a;
    r.type = Rt::PTR_MAP_VALUE_OR_NULL;
    r.val_known = false;
    return r;
  }
  if ((b.type == Rt::PTR_MAP_VALUE || b.type == Rt::PTR_MAP_VALUE_OR_NULL) &&
      null_scalar(a)) {
    r = b;
    r.type = Rt::PTR_MAP_VALUE_OR_NULL;
    r.val_known = false;
    return r;
  }
  if (a.type != b.type) {
    // One path uninitialized: stay UNINIT so reads remain flagged unsafe.
    if (a.type == Rt::UNINIT || b.type == Rt::UNINIT) {
      r.type = Rt::UNINIT;
      return r;
    }
    if (a.type == Rt::PTR_MAP_VALUE && b.type == Rt::PTR_MAP_VALUE_OR_NULL &&
        a.map_fd == b.map_fd) {
      r = b;
      r.off_known = a.off_known && b.off_known && a.off == b.off;
      return r;
    }
    if (b.type == Rt::PTR_MAP_VALUE && a.type == Rt::PTR_MAP_VALUE_OR_NULL &&
        a.map_fd == b.map_fd) {
      r = a;
      r.off_known = a.off_known && b.off_known && a.off == b.off;
      return r;
    }
    r.type = Rt::UNKNOWN;
    return r;
  }
  r.type = a.type;
  r.map_fd = a.map_fd == b.map_fd ? a.map_fd : -1;
  if (is_pointer(a.type) && a.map_fd != b.map_fd) {
    // Pointers into different maps cannot be typed to one region.
    r.type = Rt::UNKNOWN;
    return r;
  }
  r.off_known = a.off_known && b.off_known && a.off == b.off;
  r.off = r.off_known ? a.off : 0;
  r.val_known = a.val_known && b.val_known && a.val == b.val;
  r.val = r.val_known ? a.val : 0;
  return r;
}

namespace {

RegState scalar_known(uint64_t v) {
  RegState r;
  r.type = Rt::SCALAR;
  r.val_known = true;
  r.val = v;
  return r;
}

RegState scalar_unknown() {
  RegState r;
  r.type = Rt::SCALAR;
  return r;
}

RegState unknown() {
  RegState r;
  r.type = Rt::UNKNOWN;
  return r;
}

// Applies one instruction's effect on the abstract register file. Returns
// refined states for (fallthrough, taken) edges of conditional jumps.
struct Transfer {
  RegFile out;
  RegFile taken;  // only meaningful for conditional jumps
};

Transfer transfer(const ebpf::Program& prog, const Insn& insn,
                  const RegFile& in) {
  Transfer t{in, in};
  RegFile& out = t.out;
  ebpf::ConcreteBackend be;

  AluShape a;
  JmpShape j;
  if (ebpf::decompose_alu(insn.op, &a)) {
    const RegState& dst = in[insn.dst];
    RegState src_state =
        a.is_imm ? scalar_known(ebpf::sext32(insn.imm)) : in[insn.src];
    RegState& res = out[insn.dst];
    if (a.op == AluOp::MOV) {
      if (a.is64) {
        res = src_state;
      } else if (src_state.type == Rt::SCALAR) {
        res = scalar_unknown();
        if (src_state.val_known) {
          res.val_known = true;
          res.val = src_state.val & 0xffffffffull;
        }
      } else {
        res = unknown();  // truncating a pointer loses provenance
      }
      return t;
    }
    // Pointer arithmetic: only 64-bit ADD/SUB keep pointer provenance.
    if (is_pointer(dst.type)) {
      if (a.is64 && (a.op == AluOp::ADD || a.op == AluOp::SUB) &&
          src_state.type == Rt::SCALAR) {
        res = dst;
        if (src_state.val_known && dst.off_known) {
          int64_t d = static_cast<int64_t>(src_state.val);
          res.off = a.op == AluOp::ADD ? dst.off + d : dst.off - d;
        } else {
          res.off_known = false;
        }
        res.val_known = false;
        return t;
      }
      if (a.is64 && a.op == AluOp::SUB && is_pointer(src_state.type) &&
          src_state.type == dst.type) {
        // ptr - ptr within one region is a scalar (e.g. data_end - data).
        res = scalar_unknown();
        return t;
      }
      res = unknown();
      return t;
    }
    if (src_state.type != Rt::SCALAR && !a.is_imm &&
        is_pointer(src_state.type) && a.is64 && a.op == AluOp::ADD) {
      // scalar + pointer: commutes to pointer arithmetic.
      const RegState& p = src_state;
      res = p;
      if (dst.val_known && p.off_known)
        res.off = p.off + static_cast<int64_t>(dst.val);
      else
        res.off_known = false;
      res.val_known = false;
      return t;
    }
    // Scalar ALU; propagate concrete values when both operands are known.
    res = scalar_unknown();
    if (dst.type == Rt::SCALAR && dst.val_known &&
        (a.is_imm || (src_state.type == Rt::SCALAR && src_state.val_known))) {
      res.val_known = true;
      res.val = ebpf::alu_apply(a.op, a.is64, dst.val, src_state.val, be);
    }
    return t;
  }

  if (ebpf::decompose_jmp(insn.op, &j)) {
    // Edge-sensitive refinement.
    RegFile& fall = t.out;
    RegFile& taken = t.taken;
    const RegState& dst = in[insn.dst];
    if (j.is_imm && insn.imm == 0 &&
        (dst.type == Rt::PTR_MAP_VALUE_OR_NULL)) {
      if (j.cond == ebpf::JmpCond::JEQ) {
        taken[insn.dst] = scalar_known(0);
        fall[insn.dst] = dst;
        fall[insn.dst].type = Rt::PTR_MAP_VALUE;
      } else if (j.cond == ebpf::JmpCond::JNE) {
        taken[insn.dst] = dst;
        taken[insn.dst].type = Rt::PTR_MAP_VALUE;
        fall[insn.dst] = scalar_known(0);
      }
    } else if (j.is_imm && dst.type == Rt::SCALAR &&
               j.cond == ebpf::JmpCond::JEQ) {
      taken[insn.dst] = scalar_known(ebpf::sext32(insn.imm));
    } else if (j.is_imm && dst.type == Rt::SCALAR &&
               j.cond == ebpf::JmpCond::JNE) {
      fall[insn.dst] = scalar_known(ebpf::sext32(insn.imm));
    }
    return t;
  }

  switch (insn.op) {
    case Opcode::NEG64:
    case Opcode::NEG32:
    case Opcode::BE16:
    case Opcode::BE32:
    case Opcode::BE64:
    case Opcode::LE16:
    case Opcode::LE32:
    case Opcode::LE64: {
      const RegState& d = in[insn.dst];
      if (is_pointer(d.type)) {
        out[insn.dst] = unknown();
      } else {
        out[insn.dst] = scalar_unknown();
        if (d.type == Rt::SCALAR && d.val_known) {
          out[insn.dst].val_known = true;
          out[insn.dst].val = ebpf::alu_unary_apply(insn.op, d.val, be);
        }
      }
      break;
    }
    case Opcode::LDXB:
    case Opcode::LDXH:
    case Opcode::LDXW:
    case Opcode::LDXDW: {
      const RegState& base = in[insn.src];
      RegState res = scalar_unknown();
      if (base.type == Rt::PTR_CTX && prog.type != ebpf::ProgType::TRACEPOINT &&
          insn.op == Opcode::LDXDW && base.off_known) {
        int64_t off = base.off + insn.off;
        if (off == 0) {
          res.type = Rt::PTR_PKT;
          res.val_known = false;
          res.off_known = true;
          res.off = 0;
        } else if (off == 8) {
          res.type = Rt::PTR_PKT_END;
          res.off_known = true;
          res.off = 0;
        }
      }
      out[insn.dst] = res;
      break;
    }
    case Opcode::LDDW:
      out[insn.dst] = scalar_known(static_cast<uint64_t>(insn.imm));
      break;
    case Opcode::LDMAPFD: {
      RegState r;
      r.type = Rt::MAP_HANDLE;
      r.map_fd = static_cast<int>(insn.imm);
      out[insn.dst] = r;
      break;
    }
    case Opcode::CALL: {
      const ebpf::HelperProto* proto = ebpf::helper_proto(insn.imm);
      RegState r0 = scalar_unknown();
      if (proto && proto->ret == ebpf::HelperRet::MAP_VALUE_OR_NULL) {
        r0.type = Rt::PTR_MAP_VALUE_OR_NULL;
        r0.map_fd = in[1].type == Rt::MAP_HANDLE ? in[1].map_fd : -1;
        r0.off_known = true;
        r0.off = 0;
      }
      out[0] = r0;
      for (int r = 1; r <= 5; ++r) out[r] = RegState{};  // clobbered: UNINIT
      if (insn.imm == ebpf::HELPER_XDP_ADJUST_HEAD) {
        // The kernel invalidates all packet pointers after adjust_head.
        for (int r = 0; r <= 10; ++r)
          if (out[r].type == Rt::PTR_PKT || out[r].type == Rt::PTR_PKT_END)
            out[r] = unknown();
      }
      break;
    }
    default:
      break;  // stores, JA, EXIT, NOP: no register effects
  }
  return t;
}

}  // namespace

TypeInfo infer_types(const ebpf::Program& prog, const Cfg& cfg,
                     const RegFile* entry_override) {
  TypeInfo ti;
  const int n = static_cast<int>(prog.insns.size());
  ti.before.assign(n, RegFile{});
  if (!cfg.loop_free) return ti;

  // Entry state.
  RegFile entry{};
  if (entry_override) {
    entry = *entry_override;
  } else {
    entry[1].type = Rt::PTR_CTX;
    entry[1].off_known = true;
    entry[10].type = Rt::PTR_STACK;
    entry[10].off_known = true;
  }

  // Per-block incoming state; merged from predecessor edge states.
  std::vector<RegFile> block_in(cfg.num_blocks(), RegFile{});
  std::vector<bool> block_has_in(cfg.num_blocks(), false);
  if (cfg.num_blocks() > 0) {
    block_in[0] = entry;
    block_has_in[0] = true;
  }

  auto merge_into = [&](int block, const RegFile& state) {
    if (!block_has_in[block]) {
      block_in[block] = state;
      block_has_in[block] = true;
    } else {
      for (int r = 0; r <= 10; ++r)
        block_in[block][r] = join(block_in[block][r], state[r]);
    }
  };

  for (int b = 0; b < cfg.num_blocks(); ++b) {
    if (!cfg.reachable[b] || !block_has_in[b]) continue;
    RegFile cur = block_in[b];
    const BasicBlock& blk = cfg.blocks[b];
    for (int i = blk.start; i < blk.end; ++i) {
      ti.before[i] = cur;
      Transfer tr = transfer(prog, prog.insns[i], cur);
      const Insn& insn = prog.insns[i];
      if (i == blk.end - 1) {
        // Distribute edge states to successors.
        if (ebpf::is_cond_jump(insn.op)) {
          int fall_insn = blk.end;
          int taken_insn = blk.end + insn.off;
          if (fall_insn < n) merge_into(cfg.block_of[fall_insn], tr.out);
          if (taken_insn >= 0 && taken_insn < n)
            merge_into(cfg.block_of[taken_insn], tr.taken);
        } else if (insn.op == Opcode::JA) {
          int tgt = blk.end + insn.off;
          if (tgt >= 0 && tgt < n) merge_into(cfg.block_of[tgt], tr.out);
        } else if (insn.op != Opcode::EXIT) {
          if (blk.end < n) merge_into(cfg.block_of[blk.end], tr.out);
        }
      }
      cur = tr.out;
    }
    if (blk.start == blk.end && blk.end < n) {
      // Empty block: pass state through.
      merge_into(cfg.block_of[blk.end], cur);
    }
  }
  ti.ok = true;
  return ti;
}

std::optional<AccessInfo> access_info(const ebpf::Program& prog,
                                      const TypeInfo& ti, int idx) {
  const Insn& insn = prog.insns[idx];
  if (!ebpf::is_mem_access(insn.op)) return std::nullopt;
  int base_reg = ebpf::is_mem_load(insn.op) ? insn.src : insn.dst;
  const RegState& base = ti.reg_before(idx, base_reg);
  AccessInfo info;
  info.region = base.type;
  info.map_fd = base.map_fd;
  info.width = ebpf::mem_width(insn.op);
  info.off_known = base.off_known;
  info.off = base.off + insn.off;
  return info;
}

}  // namespace k2::analysis
