// Live-variable analysis over registers and stack bytes (App. C.2: "We
// specialize the liveness analysis to the BPF context by handling BPF
// registers as well as BPF memory"). Drives window pre/post-conditions and
// dead-code elimination.
#pragma once

#include <bitset>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/typeinfer.h"
#include "ebpf/program.h"

namespace k2::analysis {

constexpr int kStackSize = 512;
using StackSet = std::bitset<kStackSize>;  // bit i = stack byte r10-512+i

struct Liveness {
  std::vector<uint16_t> live_in;   // register mask before each instruction
  std::vector<uint16_t> live_out;  // register mask after each instruction
  std::vector<StackSet> stack_in;
  std::vector<StackSet> stack_out;
};

// Requires a loop-free CFG (the analysis is one backward pass). Stack slots
// accessed at statically-unknown offsets are treated conservatively (reads
// keep everything live, writes kill nothing). Packet / ctx / map memory is
// program output and always live — it is not tracked here.
Liveness compute_liveness(const ebpf::Program& prog, const Cfg& cfg,
                          const TypeInfo& ti);

}  // namespace k2::analysis
