// Pluggable solver backends: where an equivalence query actually runs.
//
// A SolveQuery is the self-contained, serializable form of one equivalence
// question — source program, candidate, optional window, per-query budgets.
// solve_query_local() is the one query policy every backend ultimately
// implements (window-scoped check first when the mutation fits the window,
// whole-program fallback on ENCODE_FAIL); it used to live inline in the
// evaluation pipeline and moved here so the in-process path, the solver
// worker pool, and remote solve-workers all run literally the same code —
// which is what makes the remote backend bit-identical to local solving.
//
// RemoteSolverBackend farms queries out to `k2c solve-worker` processes
// over the k2-solve/v1 NDJSON protocol (verify/solve_protocol.h). Failure
// policy: a worker that dies, answers garbage, or misses its reply deadline
// is marked dead and the query moves to the next live endpoint; when no
// endpoint is left the query degrades to solve_query_local() in the calling
// thread — a lost worker slows solving down, it never wedges a chain or
// changes a verdict. Final re-verification (core/compiler.cc) never goes
// through a backend at all: remote workers are untrusted accelerators, the
// local solver remains the trust anchor for every shipped program.
//
// Portfolio dispatch (opts.portfolio > 1): each query is raced across up to
// N endpoints, each running a different encoder-tactic variation; the first
// EQUAL / NOT_EQUAL verdict wins and the losing replies are discarded when
// they arrive (workers are synchronous, so a too-late cancel is not sent).
// Portfolio mode trades the same-seed determinism contract for latency —
// callers that need bit-identical runs keep portfolio == 1.
//
// Thread-safety: solve() is safe from any thread (dispatcher workers and
// sequential chains alike). One endpoint serves one query at a time (its
// mutex covers the full request/reply exchange); concurrent queries spread
// across endpoints or wait their turn.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "ebpf/program.h"
#include "verify/eqchecker.h"
#include "verify/window.h"

namespace k2::verify {

// One equivalence question, self-contained (owns its programs) so it can be
// queued, serialized, or solved on any thread without aliasing chain state.
struct SolveQuery {
  ebpf::Program src;
  ebpf::Program cand;
  std::optional<WindowSpec> win;
  EqOptions eq;
};

// The one equivalence-query policy: window-scoped check first when the
// candidate differs from the source only inside the window, whole-program
// fallback on ENCODE_FAIL or when it doesn't. Blocking (up to the budgets
// in q.eq); thread-safe — each call owns a private z3::context.
EqResult solve_query_local(const SolveQuery& q);

class SolverBackend {
 public:
  virtual ~SolverBackend() = default;
  virtual const char* name() const = 0;
  // Answers one query. Must be callable from any thread, must respect the
  // budgets carried in q.eq, and must not throw (map failures to UNKNOWN —
  // the dispatcher additionally guards, but sync callers do not).
  virtual EqResult solve(const SolveQuery& q) = 0;
};

// The in-process backend: delegates to solve_query_local. A null backend
// pointer means the same thing everywhere this type appears; this class
// exists so tests can always hold a non-null SolverBackend*.
class LocalSolverBackend final : public SolverBackend {
 public:
  const char* name() const override { return "local"; }
  EqResult solve(const SolveQuery& q) override { return solve_query_local(q); }
};

// Client side of k2-solve/v1: connects lazily to solve-worker endpoints,
// performs the hello handshake, and exchanges one solve line per query.
class RemoteSolverBackend final : public SolverBackend {
 public:
  struct Options {
    // Endpoint syntax: a unix-domain socket path (optionally prefixed
    // "unix:"), or "fd:N" for an already-connected descriptor (tests hand
    // over one end of a socketpair). Order is the retry order.
    std::vector<std::string> endpoints;
    // Race each query across up to this many endpoints with varied encoder
    // tactics; 1 = plain single-endpoint dispatch (deterministic).
    int portfolio = 1;
    // Solve locally when every endpoint is dead (the degrade-don't-wedge
    // policy). Tests disable it to observe pure endpoint failures.
    bool fallback_local = true;
    // Reply deadline = query timeout_ms + this slack (encode time, wire
    // time, worker scheduling). A worker that misses the deadline is dead:
    // its connection can no longer be trusted to stay in sync.
    unsigned reply_slack_ms = 10000;
  };

  struct Stats {
    uint64_t remote_solved = 0;    // queries answered by a worker
    uint64_t remote_failed = 0;    // endpoint failures observed (per attempt)
    uint64_t local_fallbacks = 0;  // queries degraded to solve_query_local
    uint64_t portfolio_races = 0;  // queries raced across >1 endpoint
  };

  explicit RemoteSolverBackend(Options opts);
  ~RemoteSolverBackend() override;  // joins in-flight racer threads

  const char* name() const override { return "remote"; }
  EqResult solve(const SolveQuery& q) override;

  Stats stats() const;
  // Endpoints not (yet) marked dead; counts unconnected-but-untried ones.
  int live_endpoints() const;

 private:
  struct Endpoint {
    std::string spec;
    int fd = -1;         // guarded by mu
    std::string rdbuf;   // reply bytes past the last newline; guarded by mu
    std::atomic<bool> dead{false};
    std::mutex mu;       // held across one full request/reply exchange
  };

  // One request/reply exchange on `ep` (connecting + handshaking first if
  // needed). Returns false on any endpoint failure (ep is then dead).
  bool solve_on(Endpoint& ep, const SolveQuery& q, EqResult* out);
  bool ensure_connected(Endpoint& ep);  // ep.mu held by caller
  void mark_dead(Endpoint& ep);         // ep.mu held by caller
  EqResult solve_single(const SolveQuery& q);
  EqResult solve_portfolio(const SolveQuery& q);

  Options opts_;
  std::vector<std::unique_ptr<Endpoint>> eps_;
  mutable std::mutex stats_mu_;
  Stats stats_;
  uint64_t next_id_ = 1;  // guarded by stats_mu_
  // Portfolio racers are detached (the winner returns before the losers'
  // replies land); the destructor waits for this to reach zero so no racer
  // outlives the backend.
  mutable std::mutex racers_mu_;
  std::condition_variable racers_cv_;
  int active_racers_ = 0;  // guarded by racers_mu_
};

}  // namespace k2::verify
