// First-order-logic encoding of BPF programs in the theory of bit vectors
// (§4), with the paper's domain-specific accelerations (§5):
//   I   memory-type concretization — one read/write table per memory region,
//   II  map-type concretization    — one two-level table per map,
//   III memory-offset concretization — statically-known concrete offsets
//       resolve aliasing clauses at compile time,
//   (IV modular/window verification lives in window.h,
//    V  caching lives in cache.h).
//
// Encoding strategy (§4.2–4.3, App. B): programs are loop-free, so we encode
// bounded-model-checking style over the CFG in topological order. Registers
// and the threaded virtual state (packet-data pointer, ktime state, prandom
// state) are merged at join points with edge-condition ITEs; memory is a set
// of byte-granularity write tables (multi-byte accesses are expanded to
// single-byte entries) guarded by path conditions; map state is a two-level
// structure: memory tables hold the key/value *bytes*, and per-map
// address-write tables map key *valuations* to value addresses, with
// deletion writing the NULL address (App. B.2). Initial map state is a
// shared "oracle": one lazily-instantiated entry per distinct lookup, with
// pairwise consistency axioms — the pure-bitvector equivalent of an
// uninterpreted function, shared between the two programs being compared.
#pragma once

#include <z3++.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/typeinfer.h"
#include "ebpf/program.h"
#include "interp/state.h"

namespace k2::verify {

struct EncoderOpts {
  bool mem_type_concretization = true;   // optimization I
  bool map_type_concretization = true;   // optimization II
  bool offset_concretization = true;     // optimization III
  int max_pkt = 96;                      // modeled packet bytes
  int min_pkt = 14;                      // minimum packet length (Ethernet)
  // Window mode: stack starts as shared symbolic bytes instead of zeros and
  // entry register values are supplied by the caller.
  bool symbolic_stack_init = false;
};

// Shared symbolic inputs for the two programs under comparison: packet
// bytes/length, helper seeds, context scalars, and the map oracles.
class World {
 public:
  World(z3::context& c, const ebpf::Program& shape, const EncoderOpts& opts);

  z3::context& z3;
  EncoderOpts opts;
  ebpf::ProgType prog_type;
  std::vector<ebpf::MapDef> maps;

  z3::expr pkt_len;                 // BV64 in [min_pkt, max_pkt]
  std::vector<z3::expr> pkt_init;   // BV8 input packet bytes
  std::vector<z3::expr> stack_init; // BV8; used when symbolic_stack_init
  z3::expr ktime_base;              // BV64
  z3::expr rand_seed;               // BV64
  z3::expr cpu_id;                  // BV64 (< 1024)
  z3::expr ctx_arg0, ctx_arg1;      // BV64 tracepoint scalars

  // Initial-map oracle entry: lazily instantiated per distinct lookup key.
  struct OracleEntry {
    z3::expr key;      // key valuation (key_size*8 bits)
    z3::expr present;  // Bool
    z3::expr addr;     // BV64 value address (0 when absent)
    std::vector<z3::expr> val_bytes;  // BV8 x value_size
  };
  std::vector<std::vector<OracleEntry>> oracle;  // per map fd
  // Every value address ever minted for a map (oracle + in-program update
  // allocations); used for pairwise-distinctness axioms.
  std::vector<std::vector<z3::expr>> all_addrs;

  std::vector<z3::expr> axioms;

  z3::expr fresh_bv(const std::string& name, unsigned bits);
  z3::expr fresh_bool(const std::string& name);

  // Returns the index of an oracle entry for `key` in map `fd`, creating it
  // (with consistency axioms against prior entries) if no structurally
  // identical key has been seen. With map-type concretization disabled,
  // consistency axioms are emitted across *all* maps (keys are compared with
  // the fd prepended), mimicking the merged-table degradation of §5 II.
  int oracle_entry(int fd, const z3::expr& key);

  // Mints a fresh in-range value address for map `fd` (used by updates that
  // insert a new key), with distinctness axioms.
  z3::expr fresh_value_addr(int fd);

  // Key expression used in cross-map comparisons when optimization II is
  // off: concat(fd, zext(key)).
  z3::expr full_key(int fd, const z3::expr& key) const;

  z3::expr conjoin(const std::vector<z3::expr>& es) const;

 private:
  int counter_ = 0;
};

// One memory access, for the safety checker's bounds queries (§6).
struct AccessRecord {
  int insn_idx;
  analysis::Rt region;
  int map_fd;       // for MAP_VALUE accesses
  z3::expr pc;      // path condition of the access
  z3::expr addr;    // BV64 virtual address
  int width;
  bool is_load;
};

// Per-map final state at a shared witness key.
struct MapFinal {
  z3::expr addr;                   // 0 <=> key absent in final state
  std::vector<z3::expr> bytes;     // value bytes at the witness key
};

// Result of encoding one program against a World.
struct Encoded {
  explicit Encoded(z3::context& c)
      : r0(c), pkt_data_out(c), pkt_len_out(c) {}

  bool ok = false;
  std::string error;           // why encoding failed (untypeable access etc.)
  int error_insn = -1;

  std::vector<z3::expr> defs;  // defining assertions (aux consts, tables)
  z3::expr r0;                 // merged output register
  z3::expr pkt_data_out;       // final packet-data VA (adjust_head)
  z3::expr pkt_len_out;        // final packet length
  bool has_adjust_head = false;

  // Merged machine state at exit: r0..r10 then data/ktime/rand virtual
  // registers (window postconditions compare live-out slots of this).
  std::vector<z3::expr> final_state;

  // Final packet byte at (pkt_data_out + j); size = headroom window when the
  // program can adjust the head, else max_pkt.
  std::vector<z3::expr> final_pkt_bytes;

  std::vector<MapFinal> map_finals;  // per fd, at the caller's witness keys

  // Final stack byte contents (relative offsets -512..-1 mapped to 0..511);
  // populated only in window mode, for live-out stack comparison.
  std::vector<z3::expr> final_stack_bytes;

  std::vector<AccessRecord> accesses;
  // Per stack load: condition "this load reads a byte no prior write
  // covered" (the read-before-write safety query, §6).
  std::vector<std::pair<int, z3::expr>> uncovered_stack_reads;
};

// Encodes `prog`. `witness_keys` supplies one symbolic key per map fd at
// which the final map state is computed (shared between the two programs by
// the equivalence checker). `entry_regs`, when non-null, supplies initial
// register expressions (window mode: 11 registers + data/ktime/rand virtual
// state); otherwise the standard BPF entry state (r1 = ctx, r10 = stack top)
// is used. `entry_types`, when non-null, seeds the pointer-type analysis
// with the enclosing program's state at the window boundary.
Encoded encode_program(World& world, const ebpf::Program& prog,
                       const std::string& tag,
                       const std::vector<z3::expr>& witness_keys,
                       const std::vector<z3::expr>* entry_regs = nullptr,
                       const analysis::RegFile* entry_types = nullptr);

}  // namespace k2::verify
