#include "verify/window.h"

#include <chrono>

#include "analysis/liveness.h"
#include "ebpf/helpers_def.h"
#include "interp/state.h"

namespace k2::verify {

namespace {

using analysis::Rt;
using ebpf::Insn;
using ebpf::Opcode;
using interp::Machine;

bool window_encodable(const ebpf::Program& prog, int start, int end) {
  for (int i = start; i < end; ++i) {
    const Insn& insn = prog.insns[size_t(i)];
    if (ebpf::is_jump(insn.op) || insn.op == Opcode::EXIT) return false;
    if (insn.op == Opcode::CALL &&
        insn.imm == ebpf::HELPER_XDP_ADJUST_HEAD)
      return false;
  }
  return true;
}

}  // namespace

std::vector<WindowSpec> select_windows(const ebpf::Program& prog,
                                       int max_insns) {
  std::vector<WindowSpec> wins;
  analysis::Cfg cfg = analysis::build_cfg(prog);
  for (const auto& blk : cfg.blocks) {
    int i = blk.start;
    int end = blk.end;
    // Trim a trailing jump/exit: windows are straight-line.
    if (end > i && (ebpf::is_jump(prog.insns[size_t(end - 1)].op) ||
                    prog.insns[size_t(end - 1)].op == Opcode::EXIT))
      end--;
    while (i < end) {
      int e = std::min(end, i + max_insns);
      if (window_encodable(prog, i, e) && e - i >= 2)
        wins.push_back(WindowSpec{i, e});
      i = e;
    }
  }
  return wins;
}

EqResult check_window_equivalence(const ebpf::Program& orig,
                                  const WindowSpec& win,
                                  const std::vector<Insn>& replacement,
                                  const EqOptions& opts) {
  using Clock = std::chrono::steady_clock;
  auto t0 = Clock::now();
  EqResult res;

  // Shape checks.
  if (win.end <= win.start || win.end > int(orig.insns.size())) {
    res.verdict = Verdict::ENCODE_FAIL;
    res.detail = "bad window bounds";
    return res;
  }
  for (const Insn& insn : orig.insns)
    if (insn.op == Opcode::CALL && insn.imm == ebpf::HELPER_XDP_ADJUST_HEAD) {
      res.verdict = Verdict::ENCODE_FAIL;
      res.detail = "program adjusts packet head; window mode unsupported";
      return res;
    }
  if (!window_encodable(orig, win.start, win.end)) {
    res.verdict = Verdict::ENCODE_FAIL;
    res.detail = "window contains control flow";
    return res;
  }
  {
    ebpf::Program probe;
    probe.type = orig.type;
    probe.maps = orig.maps;
    probe.insns = replacement;
    probe.insns.push_back(Insn{Opcode::EXIT, 0, 0, 0, 0});
    if (!window_encodable(probe, 0, int(replacement.size()))) {
      res.verdict = Verdict::ENCODE_FAIL;
      res.detail = "replacement contains control flow";
      return res;
    }
  }

  analysis::Cfg cfg = analysis::build_cfg(orig);
  if (!cfg.loop_free) {
    res.verdict = Verdict::ENCODE_FAIL;
    res.detail = "not loop-free";
    return res;
  }
  analysis::TypeInfo ti = analysis::infer_types(orig, cfg);
  if (!ti.ok) {
    res.verdict = Verdict::ENCODE_FAIL;
    res.detail = "type inference failed";
    return res;
  }
  analysis::Liveness lv = analysis::compute_liveness(orig, cfg, ti);

  // Build the window slices as standalone straight-line programs.
  auto slice = [&](const std::vector<Insn>& body) {
    ebpf::Program p;
    p.type = orig.type;
    p.maps = orig.maps;
    p.insns = body;
    p.insns.push_back(Insn{Opcode::EXIT, 0, 0, 0, 0});
    return p;
  };
  std::vector<Insn> orig_body(orig.insns.begin() + win.start,
                              orig.insns.begin() + win.end);
  ebpf::Program w1 = slice(orig_body);
  ebpf::Program w2 = slice(replacement);

  z3::context c;
  EncoderOpts eo = opts.enc;
  eo.symbolic_stack_init = true;  // the prefix may have written the stack
  World world(c, orig, eo);

  std::vector<z3::expr> witness;
  for (size_t fd = 0; fd < orig.maps.size(); ++fd)
    witness.push_back(world.fresh_bv("wwk" + std::to_string(fd),
                                     orig.maps[fd].key_size * 8));

  // Shared entry state: 11 registers + data/ktime/rand.
  const analysis::RegFile& entry_rf = ti.before[size_t(win.start)];
  std::vector<z3::expr> entry;
  std::vector<z3::expr> preconds;
  const uint64_t data0 = Machine::kPacketBase + Machine::kHeadroom;
  for (int r = 0; r <= 10; ++r) {
    z3::expr v = world.fresh_bv("win_r" + std::to_string(r), 64);
    const analysis::RegState& rs = entry_rf[size_t(r)];
    // Stronger preconditions: inferred concrete valuations (App. C.2).
    switch (rs.type) {
      case Rt::SCALAR:
        if (rs.val_known) preconds.push_back(v == c.bv_val(rs.val, 64));
        break;
      case Rt::PTR_STACK:
        if (rs.off_known)
          preconds.push_back(
              v == c.bv_val(Machine::kStackBase + uint64_t(rs.off), 64));
        break;
      case Rt::PTR_CTX:
        if (rs.off_known)
          preconds.push_back(
              v == c.bv_val(Machine::kCtxBase + uint64_t(rs.off), 64));
        break;
      case Rt::PTR_PKT:
        if (rs.off_known)
          preconds.push_back(v == c.bv_val(data0 + uint64_t(rs.off), 64));
        break;
      case Rt::PTR_PKT_END:
        preconds.push_back(v == c.bv_val(data0, 64) + world.pkt_len);
        break;
      case Rt::MAP_HANDLE:
        if (rs.map_fd >= 0)
          preconds.push_back(
              v == c.bv_val(Machine::kMapHandleBase + uint64_t(rs.map_fd),
                            64));
        break;
      case Rt::PTR_MAP_VALUE:
      case Rt::PTR_MAP_VALUE_OR_NULL:
        if (rs.map_fd >= 0 && rs.off_known) {
          // Ground the pointer in an initial-state oracle entry with a fresh
          // key, so value-memory reads resolve consistently on both sides.
          z3::expr k = world.fresh_bv(
              "win_k" + std::to_string(r),
              orig.maps[size_t(rs.map_fd)].key_size * 8);
          int e = world.oracle_entry(rs.map_fd, k);
          const auto& entry_ref = world.oracle[size_t(rs.map_fd)][size_t(e)];
          if (rs.type == Rt::PTR_MAP_VALUE)
            preconds.push_back(entry_ref.present);
          preconds.push_back(
              v == entry_ref.addr + c.bv_val(uint64_t(rs.off), 64));
        }
        break;
      default:
        break;
    }
    entry.push_back(v);
  }
  entry.push_back(c.bv_val(data0, 64));          // data
  entry.push_back(world.fresh_bv("win_kt", 64)); // ktime state
  entry.push_back(world.fresh_bv("win_rn", 64)); // prandom state

  Encoded e1 =
      encode_program(world, w1, "w1", witness, &entry, &entry_rf);
  Encoded e2 =
      encode_program(world, w2, "w2", witness, &entry, &entry_rf);
  res.encode_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  if (!e1.ok || !e2.ok) {
    res.verdict = Verdict::ENCODE_FAIL;
    res.detail = !e1.ok ? "w1: " + e1.error : "w2: " + e2.error;
    return res;
  }

  z3::solver s(c);
  z3::params p(c);
  p.set("timeout", opts.timeout_ms);
  if (opts.memory_max_mb) p.set("max_memory", opts.memory_max_mb);
  s.set(p);
  for (const auto& a : world.axioms) s.add(a);
  for (const auto& pre : preconds) s.add(pre);
  for (const auto& d : e1.defs) s.add(d);
  for (const auto& d : e2.defs) s.add(d);

  // Weaker postcondition: compare live-out registers/stack bytes + external
  // memory only.
  z3::expr equal = c.bool_val(true);
  uint16_t live_regs = lv.live_out[size_t(win.end - 1)];
  for (int r = 0; r <= 10; ++r)
    if (live_regs & (1u << r))
      equal = equal && (e1.final_state[size_t(r)] == e2.final_state[size_t(r)]);
  // Threaded virtual state must match so the suffix observes the same
  // helper sequences.
  for (int slot = 11; slot <= 13; ++slot)
    equal = equal &&
            (e1.final_state[size_t(slot)] == e2.final_state[size_t(slot)]);
  const analysis::StackSet& live_stack = lv.stack_out[size_t(win.end - 1)];
  for (int i = 0; i < analysis::kStackSize; ++i)
    if (live_stack[size_t(i)])
      equal = equal &&
              (e1.final_stack_bytes[size_t(i)] == e2.final_stack_bytes[size_t(i)]);
  // Externally visible memory: packet bytes and final map state.
  for (size_t j = 0; j < e1.final_pkt_bytes.size(); ++j) {
    z3::expr in_range = z3::ult(c.bv_val(uint64_t(j), 64), world.pkt_len);
    equal = equal && z3::implies(in_range, e1.final_pkt_bytes[j] ==
                                               e2.final_pkt_bytes[j]);
  }
  for (size_t fd = 0; fd < orig.maps.size(); ++fd) {
    const MapFinal& m1 = e1.map_finals[fd];
    const MapFinal& m2 = e2.map_finals[fd];
    z3::expr p1 = m1.addr != c.bv_val(uint64_t(0), 64);
    z3::expr p2 = m2.addr != c.bv_val(uint64_t(0), 64);
    equal = equal && (p1 == p2);
    for (size_t j = 0; j < m1.bytes.size(); ++j)
      equal = equal && z3::implies(p1, m1.bytes[j] == m2.bytes[j]);
  }
  s.add(!equal);

  auto t1 = Clock::now();
  z3::check_result r = s.check();
  res.solve_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t1).count();
  switch (r) {
    case z3::unsat:
      res.verdict = Verdict::EQUAL;
      break;
    case z3::sat:
      // Window counterexamples describe an intermediate machine state, not a
      // program input; they are used as a rejection verdict only.
      res.verdict = Verdict::NOT_EQUAL;
      break;
    default:
      res.verdict = Verdict::UNKNOWN;
      res.detail = s.reason_unknown();
      break;
  }
  return res;
}

}  // namespace k2::verify
