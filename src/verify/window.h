// Modular (window-based) verification — optimization IV (§5, App. C.2).
//
// A window is a contiguous straight-line instruction range inside one basic
// block. The candidate program differs from the original only inside the
// window. Verification uses a *stronger precondition* than a peephole
// optimizer — live-in equality plus the concrete valuations inferred by the
// static analysis (register values, pointer region/offsets at the window
// boundary) — and a *weaker postcondition*: only variables live out of the
// window (registers and stack bytes), plus externally-visible memory
// (packet, map state), must agree.
#pragma once

#include "ebpf/insn.h"
#include "verify/eqchecker.h"

namespace k2::verify {

struct WindowSpec {
  int start = 0;  // [start, end) instruction indices in the original program
  int end = 0;
};

// Selects windows for a program: maximal straight-line ranges within basic
// blocks, chopped to at most `max_insns` instructions.
std::vector<WindowSpec> select_windows(const ebpf::Program& prog,
                                       int max_insns);

// Checks whether replacing `win` of `orig` with `replacement` (straight-line
// instructions; jumps/exit/adjust_head unsupported) preserves the program's
// behaviour under the window verification conditions. ENCODE_FAIL is
// returned for unsupported shapes — the caller falls back to full-program
// equivalence checking.
EqResult check_window_equivalence(const ebpf::Program& orig,
                                  const WindowSpec& win,
                                  const std::vector<ebpf::Insn>& replacement,
                                  const EqOptions& opts = {});

}  // namespace k2::verify
