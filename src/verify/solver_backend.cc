#include "verify/solver_backend.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <thread>

#include "api/schema.h"
#include "util/json.h"
#include "verify/solve_protocol.h"

namespace k2::verify {

namespace {

// True when `cand` differs from `orig` only inside [win.start, win.end).
bool differs_only_in(const ebpf::Program& orig, const ebpf::Program& cand,
                     const WindowSpec& win) {
  if (orig.insns.size() != cand.insns.size()) return false;
  for (size_t i = 0; i < orig.insns.size(); ++i) {
    bool inside = int(i) >= win.start && int(i) < win.end;
    if (!inside && !(orig.insns[i] == cand.insns[i])) return false;
  }
  return true;
}

// Writes one NDJSON line. MSG_NOSIGNAL keeps a dead worker from raising
// SIGPIPE; non-socket fds (a test pipe) fall back to plain write().
bool send_line(int fd, const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  size_t off = 0;
  while (off < out.size()) {
    ssize_t n = ::send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK)
      n = ::write(fd, out.data() + off, out.size() - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    off += size_t(n);
  }
  return true;
}

// Reads one NDJSON line into *line with a wall-clock deadline; leftover
// bytes stay in `buf` for the next reply. False on EOF, error, or deadline.
bool recv_line(int fd, std::string& buf, unsigned deadline_ms,
               std::string* line) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(deadline_ms);
  for (;;) {
    size_t nl = buf.find('\n');
    if (nl != std::string::npos) {
      *line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      return true;
    }
    long left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
    if (left <= 0) return false;
    struct pollfd p = {fd, POLLIN, 0};
    int pr = ::poll(&p, 1, int(left));
    if (pr < 0 && errno == EINTR) continue;
    if (pr <= 0) return false;
    char tmp[4096];
    ssize_t n = ::read(fd, tmp, sizeof tmp);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buf.append(tmp, size_t(n));
  }
}

// Encoder-tactic variations for portfolio racers. Index 0 is always the
// caller's unmodified configuration, so its verdict is the one a
// single-endpoint run would have produced.
void apply_tactic(int racer, EncoderOpts* enc) {
  switch (racer % 4) {
    case 1: enc->offset_concretization = false; break;
    case 2: enc->mem_type_concretization = false; break;
    case 3: enc->map_type_concretization = false; break;
    default: break;  // racer 0: unmodified
  }
}

bool definitive(Verdict v) {
  return v == Verdict::EQUAL || v == Verdict::NOT_EQUAL;
}

}  // namespace

EqResult solve_query_local(const SolveQuery& q) {
  if (q.win && differs_only_in(q.src, q.cand, *q.win)) {
    std::vector<ebpf::Insn> repl(q.cand.insns.begin() + q.win->start,
                                 q.cand.insns.begin() + q.win->end);
    EqResult eq = check_window_equivalence(q.src, *q.win, repl, q.eq);
    if (eq.verdict == Verdict::ENCODE_FAIL)
      eq = check_equivalence(q.src, q.cand, q.eq);
    return eq;
  }
  return check_equivalence(q.src, q.cand, q.eq);
}

// ---- RemoteSolverBackend ---------------------------------------------------

RemoteSolverBackend::RemoteSolverBackend(Options opts)
    : opts_(std::move(opts)) {
  for (const std::string& spec : opts_.endpoints) {
    auto ep = std::make_unique<Endpoint>();
    ep->spec = spec;
    eps_.push_back(std::move(ep));
  }
}

RemoteSolverBackend::~RemoteSolverBackend() {
  {
    std::unique_lock<std::mutex> lock(racers_mu_);
    racers_cv_.wait(lock, [this] { return active_racers_ == 0; });
  }
  for (auto& ep : eps_) {
    std::lock_guard<std::mutex> lock(ep->mu);
    if (ep->fd >= 0) ::close(ep->fd);
    ep->fd = -1;
  }
}

void RemoteSolverBackend::mark_dead(Endpoint& ep) {
  if (ep.fd >= 0) ::close(ep.fd);
  ep.fd = -1;
  ep.rdbuf.clear();
  ep.dead.store(true, std::memory_order_relaxed);
}

bool RemoteSolverBackend::ensure_connected(Endpoint& ep) {
  if (ep.dead.load(std::memory_order_relaxed)) return false;
  if (ep.fd >= 0) return true;
  int fd = -1;
  if (ep.spec.rfind("fd:", 0) == 0) {
    fd = std::atoi(ep.spec.c_str() + 3);
  } else {
    std::string path = ep.spec;
    if (path.rfind("unix:", 0) == 0) path = path.substr(5);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      mark_dead(ep);
      return false;
    }
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      ::close(fd);
      mark_dead(ep);
      return false;
    }
    memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      mark_dead(ep);
      return false;
    }
  }
  ep.fd = fd;
  // Handshake: the worker must speak exactly our protocol version.
  std::string line;
  if (!send_line(ep.fd, "{\"op\":\"hello\"}") ||
      !recv_line(ep.fd, ep.rdbuf, opts_.reply_slack_ms, &line)) {
    mark_dead(ep);
    return false;
  }
  try {
    util::Json hello = util::Json::parse(line);
    if (!hello.at("ok").as_bool() ||
        hello.at("protocol").as_string() != api::kSolveProtocol) {
      mark_dead(ep);
      return false;
    }
  } catch (const std::exception&) {
    mark_dead(ep);
    return false;
  }
  return true;
}

bool RemoteSolverBackend::solve_on(Endpoint& ep, const SolveQuery& q,
                                   EqResult* out) {
  if (!ensure_connected(ep)) return false;
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    id = next_id_++;
  }
  util::Json req{util::Json::Object{}};
  req.set("op", "solve");
  req.set("id", id);
  req.set("src", program_to_json(q.src));
  req.set("cand", program_to_json(q.cand));
  if (q.win) {
    util::Json w{util::Json::Object{}};
    w.set("start", int64_t(q.win->start));
    w.set("end", int64_t(q.win->end));
    req.set("win", std::move(w));
  }
  req.set("eq", eq_options_to_json(q.eq));
  std::string line;
  if (!send_line(ep.fd, req.dump()) ||
      !recv_line(ep.fd, ep.rdbuf, q.eq.timeout_ms + opts_.reply_slack_ms,
                 &line)) {
    // Dead or wedged worker: once a reply is missed the connection can no
    // longer be trusted to stay in request/reply sync.
    mark_dead(ep);
    return false;
  }
  try {
    util::Json reply = util::Json::parse(line);
    if (!reply.at("ok").as_bool() || reply.at("id").as_uint() != id) {
      mark_dead(ep);
      return false;
    }
    *out = eq_result_from_json(reply);
  } catch (const std::exception&) {
    mark_dead(ep);
    return false;
  }
  return true;
}

EqResult RemoteSolverBackend::solve_single(const SolveQuery& q) {
  // Keep trying live endpoints until one answers or none are left. An idle
  // endpoint (try_lock) is preferred; otherwise wait for the first live one
  // in order — endpoints serve one query at a time.
  for (;;) {
    Endpoint* picked = nullptr;
    std::unique_lock<std::mutex> picked_lock;
    for (auto& ep : eps_) {
      if (ep->dead.load(std::memory_order_relaxed)) continue;
      std::unique_lock<std::mutex> lock(ep->mu, std::try_to_lock);
      if (lock.owns_lock() && !ep->dead.load(std::memory_order_relaxed)) {
        picked = ep.get();
        picked_lock = std::move(lock);
        break;
      }
    }
    if (!picked) {
      for (auto& ep : eps_) {
        if (ep->dead.load(std::memory_order_relaxed)) continue;
        std::unique_lock<std::mutex> lock(ep->mu);
        if (!ep->dead.load(std::memory_order_relaxed)) {
          picked = ep.get();
          picked_lock = std::move(lock);
          break;
        }
      }
    }
    if (!picked) break;  // every endpoint is dead
    EqResult r;
    if (solve_on(*picked, q, &r)) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.remote_solved++;
      return r;
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.remote_failed++;
  }
  if (opts_.fallback_local) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.local_fallbacks++;
    }
    return solve_query_local(q);
  }
  EqResult r;
  r.verdict = Verdict::UNKNOWN;
  r.detail = "no live solver endpoints";
  return r;
}

EqResult RemoteSolverBackend::solve_portfolio(const SolveQuery& q) {
  // Pick up to `portfolio` distinct non-dead endpoints to race.
  std::vector<Endpoint*> racers;
  for (auto& ep : eps_) {
    if (int(racers.size()) >= opts_.portfolio) break;
    if (!ep->dead.load(std::memory_order_relaxed)) racers.push_back(ep.get());
  }
  if (racers.size() <= 1) return solve_single(q);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.portfolio_races++;
  }

  struct Race {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<EqResult> winner;           // first definitive verdict
    std::vector<std::optional<EqResult>> by_racer;
    int finished = 0;
    int total = 0;
  };
  auto race = std::make_shared<Race>();
  race->by_racer.resize(racers.size());
  race->total = int(racers.size());

  {
    std::lock_guard<std::mutex> lock(racers_mu_);
    active_racers_ += int(racers.size());
  }
  for (size_t i = 0; i < racers.size(); ++i) {
    Endpoint* ep = racers[i];
    SolveQuery qi = q;
    apply_tactic(int(i), &qi.eq.enc);
    std::thread([this, ep, qi = std::move(qi), race, i] {
      EqResult r;
      bool ok;
      {
        std::unique_lock<std::mutex> lock(ep->mu);
        ok = solve_on(*ep, qi, &r);
      }
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        if (ok)
          stats_.remote_solved++;
        else
          stats_.remote_failed++;
      }
      {
        std::lock_guard<std::mutex> lock(race->mu);
        race->finished++;
        if (ok) {
          if (!race->winner && definitive(r.verdict)) race->winner = r;
          race->by_racer[i] = std::move(r);
        }
      }
      race->cv.notify_all();
      {
        std::lock_guard<std::mutex> lock(racers_mu_);
        active_racers_--;
      }
      racers_cv_.notify_all();
    }).detach();
  }

  std::unique_lock<std::mutex> lock(race->mu);
  race->cv.wait(lock, [&race] {
    return race->winner.has_value() || race->finished == race->total;
  });
  if (race->winner) return *race->winner;
  // No racer produced EQUAL / NOT_EQUAL: prefer the primary (unmodified)
  // configuration's result, then any result, then the local fallback.
  if (race->by_racer[0]) return *race->by_racer[0];
  for (const std::optional<EqResult>& r : race->by_racer)
    if (r) return *r;
  lock.unlock();
  if (opts_.fallback_local) {
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      stats_.local_fallbacks++;
    }
    return solve_query_local(q);
  }
  EqResult r;
  r.verdict = Verdict::UNKNOWN;
  r.detail = "portfolio: every endpoint failed";
  return r;
}

EqResult RemoteSolverBackend::solve(const SolveQuery& q) {
  if (opts_.portfolio > 1 && eps_.size() > 1) return solve_portfolio(q);
  return solve_single(q);
}

RemoteSolverBackend::Stats RemoteSolverBackend::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

int RemoteSolverBackend::live_endpoints() const {
  int n = 0;
  for (const auto& ep : eps_)
    if (!ep->dead.load(std::memory_order_relaxed)) n++;
  return n;
}

}  // namespace k2::verify
