// Equivalence-checking outcome cache (optimization V, §5): candidates are
// canonicalized by dead-code elimination, hashed, and looked up before any
// solver call. The paper reports ≥93% of would-be solver queries eliminated
// (Table 6); bench/table6_cache reproduces the measurement.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "ebpf/program.h"
#include "verify/eqchecker.h"

namespace k2::verify {

class EqCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    double hit_rate() const {
      uint64_t total = hits + misses;
      return total == 0 ? 0.0 : double(hits) / double(total);
    }
  };

  // Cache key: hash of the canonicalized candidate mixed with the source
  // program's hash (one logical cache per source program).
  static uint64_t key_for(const ebpf::Program& src, const ebpf::Program& cand);

  std::optional<Verdict> lookup(uint64_t key);
  void insert(uint64_t key, Verdict v);
  Stats stats() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Verdict> map_;
  Stats stats_;
};

}  // namespace k2::verify
