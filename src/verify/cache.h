// Equivalence-checking outcome cache (optimization V, §5): candidates are
// canonicalized by dead-code elimination, hashed, and looked up before any
// solver call. The paper reports ≥93% of would-be solver queries eliminated
// (Table 6); bench/table6_cache reproduces the measurement.
//
// Concurrency: the map is striped across kShards independently-locked
// shards so parallel chains no longer serialize on one global mutex.
// Correctness: every entry stores a second, algebraically-independent
// fingerprint of the canonical program; a lookup whose primary 64-bit key
// collides but whose fingerprint disagrees is reported as a miss instead of
// surfacing another program's Verdict.
//
// Pending verdicts (async solver dispatch): besides resolved Verdicts, an
// entry can hold an in-flight query. `claim()` is the async entry point: it
// returns either a resolved verdict (hit), ownership of a fresh
// PendingVerdict the caller must dispatch and later publish()/abandon(), or
// a shared handle to another chain's in-flight query — so concurrent chains
// hitting the same program hash wait on ONE solver query instead of
// duplicating it. The legacy lookup()/insert() pair is untouched and remains
// the synchronous path (it treats pending entries as misses).
//
// Verdict lifecycle of a PendingVerdict (state guarded by its mutex):
//
//   WAITING ──(worker starts solving)──────────────→ RUNNING ──→ DONE
//      │                                                          ▲
//      └──(every waiter cancelled, worker popped it)→ ABANDONED   │
//                                                     publish() ──┘
//
//   * WAITING: queued behind the dispatcher; join() attaches more waiters,
//     and a join resurrects a cancel that has not yet been acted on.
//   * RUNNING: a solver worker is inside Z3; cancellation no longer stops
//     the query (Z3 is not interruptible mid-check here) but the result is
//     still published — the work is useful to later lookups.
//   * DONE: publish() stored the EqResult and woke all waiters. EQUAL /
//     NOT_EQUAL / ENCODE_FAIL verdicts are promoted to resolved cache
//     entries; UNKNOWN (solver timeout / gave up) deliberately is NOT — a
//     transient budget exhaustion must not poison the cache, so the entry is
//     erased and the key is immediately re-dispatchable.
//   * ABANDONED: all waiters cancelled before a worker picked the query up;
//     the cache entry is erased, so the next claim() re-owns the key.
//
// Thread-safety: every public method is safe to call from any thread. Lock
// order is shard mutex → PendingVerdict mutex; PendingVerdict methods that
// take only their own mutex (poll/wait/join/release) never touch shard state.
#pragma once

#include <array>
#include <bit>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "ebpf/program.h"
#include "verify/eqchecker.h"

namespace k2::verify {

class CacheStore;

// One in-flight (or just-resolved) equivalence query, shared between the
// owning chain, any chains that joined it, and the solver worker.
class PendingVerdict {
 public:
  enum class State : uint8_t { WAITING, RUNNING, DONE, ABANDONED };

  // Non-blocking: the result, once publish() ran; nullopt before that.
  // ABANDONED queries never produce a result (callers that cancelled hold
  // no further interest in the key and must re-claim() to retry).
  std::optional<EqResult> poll() const;

  // Blocks until publish() delivers the result. Must not be called on a
  // query the caller has cancelled (it could block forever once ABANDONED).
  EqResult wait() const;

  State state() const;

 private:
  friend class EqCache;
  friend class AsyncSolverDispatcher;

  // Attach one more waiter; resurrects a not-yet-abandoned cancel.
  void join();
  // Detach one waiter; the last waiter to leave a WAITING query marks it
  // cancelled so the dispatcher skips it (and the key becomes free again).
  void release();

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  State state_ = State::WAITING;  // guarded by mu_
  bool cancelled_ = false;        // guarded by mu_
  int waiters_ = 1;               // guarded by mu_
  std::optional<EqResult> result_;  // set once, at DONE; guarded by mu_
};

using PendingHandle = std::shared_ptr<PendingVerdict>;

class EqCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t collisions = 0;  // primary-key hits rejected by fingerprint
    // Async-path observability:
    uint64_t pending_joins = 0;     // claims that attached to an in-flight query
    uint64_t pending_abandons = 0;  // cancelled queries erased before running
    // Disk-tier observability (attach_store): hits split by which tier the
    // answering entry came from — disk_hits counts hits on entries seeded
    // from the persistent store (the warm-start signal), hits - disk_hits is
    // the memory tier. disk_loaded/disk_writes measure the store traffic.
    uint64_t disk_hits = 0;
    uint64_t disk_loaded = 0;  // entries seeded from the store at attach
    uint64_t disk_writes = 0;  // settled verdicts written through
    double hit_rate() const {
      uint64_t total = hits + misses;
      return total == 0 ? 0.0 : double(hits) / double(total);
    }
  };

  // Cache key: primary hash selects the shard and map slot; fp confirms the
  // entry on hit. Both mix the canonicalized candidate with the source
  // program (one logical cache per source program).
  struct Key {
    uint64_t hash = 0;
    uint64_t fp = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };

  static Key key_for(const ebpf::Program& src, const ebpf::Program& cand);

  // ---- Synchronous path (PR 1 behavior, bit-identical) --------------------
  // lookup() counts a pending entry as a miss; insert() overwrites whatever
  // is there, including a pending marker (the orphaned query still resolves
  // for its waiters but no longer backs the cache slot).
  //
  // Disk tier: when `info` is non-null it reports whether the hit came from
  // a store-seeded entry, and — exactly once per disk-seeded NOT_EQUAL
  // entry — hands back the persisted solver counterexample so the caller
  // can replay its confirmation into the test suite (reproducing the cold
  // run's suite evolution bit-for-bit; see cache_store.h). insert() carries
  // the counterexample for write-through; conclusive verdicts reach the
  // attached store, UNKNOWN stays memory-only (PR 2 invariant).
  struct Hit {
    bool from_disk = false;
    std::shared_ptr<interp::InputSpec> replay_cex;  // replay-once, see above
  };
  std::optional<Verdict> lookup(const Key& key, Hit* info = nullptr);
  void insert(const Key& key, Verdict v,
              const interp::InputSpec* cex = nullptr);

  // ---- Asynchronous path --------------------------------------------------
  // Result of claim(): a resolved hit (verdict set), ownership of a fresh
  // in-flight slot (owner == true, dispatch `pending`), a join of another
  // chain's identical in-flight query (pending set, owner false), or — when
  // the 64-bit slot is busy with a *different* program's in-flight query
  // (fingerprint mismatch) — completely empty: the caller must fall back to
  // solving synchronously without the cache.
  struct Claim {
    std::optional<Verdict> verdict;  // resolved hit
    PendingHandle pending;           // the query to dispatch (owner) or join
    bool owner = false;  // true: caller must dispatch `pending` and ensure
                         // publish() or abandonment eventually happens
    bool from_disk = false;          // resolved hit served by the disk tier
    std::shared_ptr<interp::InputSpec> replay_cex;  // see lookup()
  };
  Claim claim(const Key& key);

  // Resolve `pv` with `r` and wake every waiter. Promotes conclusive
  // verdicts (EQUAL / NOT_EQUAL / ENCODE_FAIL) to resolved entries; erases
  // the entry on UNKNOWN so solver-budget exhaustion never poisons the
  // cache. Safe if the slot was overwritten by a sync insert() meanwhile.
  void publish(const Key& key, const PendingHandle& pv, EqResult r);

  // Worker-side, called exactly once per dequeued query: atomically either
  // moves it WAITING→RUNNING (returns true; the caller must solve and
  // publish()) or abandons a fully-cancelled query and erases its slot so
  // the key becomes claimable again (returns false; skip the solve). One
  // atomic step — a cancel/join racing between "check cancelled" and "mark
  // running" could otherwise strand the slot as pending forever.
  bool acquire_for_solve(const Key& key, const PendingHandle& pv);

  // Wires in the persistent tier (verify/cache_store.h): seeds the in-memory
  // shards with every store record whose options fingerprint matches `ofp`
  // (fingerprints are confirmed again on every hit, so a primary-hash
  // collision on disk can never surface a wrong verdict), and from then on
  // writes settled verdicts through to the store. The store must outlive the
  // cache. Call once, before the cache is shared with other threads.
  void attach_store(CacheStore* store, uint64_t ofp);

  Stats stats() const;

  // Number of entries currently holding an in-flight (pending) verdict —
  // the cancellation-leak observable: after a job is cancelled and the
  // dispatcher drained, this must return to zero (every query either
  // published or was abandoned and erased). O(entries); diagnostics and
  // tests, not hot paths.
  size_t pending_count() const;

  // Stats and the pending count captured under ONE lock of all shards, so
  // the pair is a consistent point-in-time snapshot — a concurrent publish
  // can never be counted in `stats` but missed by `pending` (or vice
  // versa). stats()/pending_count() are wrappers over this; callers that
  // report both numbers together (the serve `stats`/`metrics` ops) must use
  // snapshot() so they never emit torn totals mid-run.
  struct Snapshot {
    Stats stats;
    size_t pending = 0;
  };
  Snapshot snapshot() const;

  void clear();

  static constexpr size_t kShards = 16;

 private:
  struct Entry {
    uint64_t fp;
    Verdict verdict;
    PendingHandle pending;  // non-null ⇒ verdict not yet meaningful
    bool disk = false;      // seeded from the persistent store
    std::shared_ptr<interp::InputSpec> cex;  // disk NOT_EQUAL, until replayed
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Entry> map;
    Stats stats;  // guarded by mu; aggregated by stats()
  };

  Shard& shard_for(const Key& key) {
    // Top bits: the low bits index the unordered_map's buckets.
    static_assert((kShards & (kShards - 1)) == 0, "kShards: power of two");
    constexpr int kShift = 64 - std::countr_zero(kShards);
    return shards_[(key.hash >> kShift) & (kShards - 1)];
  }

  std::array<Shard, kShards> shards_;
  CacheStore* store_ = nullptr;  // null: memory-only (the default)
  uint64_t store_ofp_ = 0;
};

}  // namespace k2::verify
