// Equivalence-checking outcome cache (optimization V, §5): candidates are
// canonicalized by dead-code elimination, hashed, and looked up before any
// solver call. The paper reports ≥93% of would-be solver queries eliminated
// (Table 6); bench/table6_cache reproduces the measurement.
//
// Concurrency: the map is striped across kShards independently-locked
// shards so parallel chains no longer serialize on one global mutex.
// Correctness: every entry stores a second, algebraically-independent
// fingerprint of the canonical program; a lookup whose primary 64-bit key
// collides but whose fingerprint disagrees is reported as a miss instead of
// surfacing another program's Verdict.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "ebpf/program.h"
#include "verify/eqchecker.h"

namespace k2::verify {

class EqCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t collisions = 0;  // primary-key hits rejected by fingerprint
    double hit_rate() const {
      uint64_t total = hits + misses;
      return total == 0 ? 0.0 : double(hits) / double(total);
    }
  };

  // Cache key: primary hash selects the shard and map slot; fp confirms the
  // entry on hit. Both mix the canonicalized candidate with the source
  // program (one logical cache per source program).
  struct Key {
    uint64_t hash = 0;
    uint64_t fp = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };

  static Key key_for(const ebpf::Program& src, const ebpf::Program& cand);

  std::optional<Verdict> lookup(const Key& key);
  void insert(const Key& key, Verdict v);
  Stats stats() const;
  void clear();

  static constexpr size_t kShards = 16;

 private:
  struct Entry {
    uint64_t fp;
    Verdict verdict;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Entry> map;
    Stats stats;  // guarded by mu; aggregated by stats()
  };

  Shard& shard_for(const Key& key) {
    // Top bits: the low bits index the unordered_map's buckets.
    static_assert((kShards & (kShards - 1)) == 0, "kShards: power of two");
    constexpr int kShift = 64 - std::countr_zero(kShards);
    return shards_[(key.hash >> kShift) & (kShards - 1)];
  }

  std::array<Shard, kShards> shards_;
};

}  // namespace k2::verify
