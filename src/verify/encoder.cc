#include "verify/encoder.h"

#include <cassert>

#include "ebpf/helpers_def.h"
#include "ebpf/semantics.h"
#include "interp/helpers.h"
#include "verify/z3backend.h"

namespace k2::verify {

namespace {

using analysis::Rt;
using ebpf::AluShape;
using ebpf::Insn;
using ebpf::JmpShape;
using ebpf::Opcode;
using interp::Machine;

constexpr int64_t kEnoent = -2;
constexpr int64_t kEinval = -22;

}  // namespace

// ---- World ---------------------------------------------------------------

World::World(z3::context& c, const ebpf::Program& shape,
             const EncoderOpts& o)
    : z3(c),
      opts(o),
      prog_type(shape.type),
      maps(shape.maps),
      pkt_len(c.bv_const("pkt_len", 64)),
      ktime_base(c.bv_const("ktime_base", 64)),
      rand_seed(c.bv_const("rand_seed", 64)),
      cpu_id(c.bv_const("cpu_id", 64)),
      ctx_arg0(c.bv_const("ctx_arg0", 64)),
      ctx_arg1(c.bv_const("ctx_arg1", 64)) {
  axioms.push_back(z3::uge(pkt_len, c.bv_val(uint64_t(opts.min_pkt), 64)));
  axioms.push_back(z3::ule(pkt_len, c.bv_val(uint64_t(opts.max_pkt), 64)));
  axioms.push_back(z3::ult(cpu_id, c.bv_val(uint64_t(1024), 64)));
  for (int i = 0; i < opts.max_pkt; ++i)
    pkt_init.push_back(c.bv_const(("pkt_" + std::to_string(i)).c_str(), 8));
  if (opts.symbolic_stack_init)
    for (int i = 0; i < 512; ++i)
      stack_init.push_back(
          c.bv_const(("stk_" + std::to_string(i)).c_str(), 8));
  oracle.resize(maps.size());
  all_addrs.resize(maps.size());
  for (const auto& m : maps) {
    (void)m;
    assert(m.key_size >= 1 && m.key_size <= 8 && "modeled key sizes");
  }
}

z3::expr World::fresh_bv(const std::string& name, unsigned bits) {
  return z3.bv_const((name + "!" + std::to_string(counter_++)).c_str(), bits);
}

z3::expr World::fresh_bool(const std::string& name) {
  return z3.bool_const((name + "!" + std::to_string(counter_++)).c_str());
}

z3::expr World::full_key(int fd, const z3::expr& key) const {
  unsigned max_bits = 8;
  for (const auto& m : maps) max_bits = std::max(max_bits, m.key_size * 8);
  z3::expr k = key.get_sort().bv_size() < max_bits
                   ? z3::zext(key, max_bits - key.get_sort().bv_size())
                   : key;
  return z3::concat(z3.bv_val(uint64_t(fd), 16), k);
}

z3::expr World::conjoin(const std::vector<z3::expr>& es) const {
  z3::expr acc = z3.bool_val(true);
  for (const auto& e : es) acc = acc && e;
  return acc;
}

int World::oracle_entry(int fd, const z3::expr& key) {
  // Structural dedup: the same key expression gets the same entry. This is
  // what makes the witness-key finals of the two programs refer to one
  // shared initial-state entry.
  for (size_t i = 0; i < oracle[fd].size(); ++i)
    if (z3::eq(oracle[fd][i].key, key)) return static_cast<int>(i);

  const ebpf::MapDef& def = maps[fd];
  OracleEntry e{key, fresh_bool("m" + std::to_string(fd) + "_present"),
                fresh_bv("m" + std::to_string(fd) + "_addr", 64),
                {}};
  for (uint32_t j = 0; j < def.value_size; ++j)
    e.val_bytes.push_back(fresh_bv("m" + std::to_string(fd) + "_val", 8));

  // Address range: per-map subranges keep different maps' values disjoint,
  // and 4 KiB alignment makes distinct addresses imply disjoint value
  // buffers (value_size << 4096).
  uint64_t lo = Machine::kMapValueBase + (uint64_t(fd) << 32);
  uint64_t hi = lo + (uint64_t(1) << 32);
  axioms.push_back(
      z3::implies(e.present, z3::uge(e.addr, z3.bv_val(lo, 64)) &&
                                 z3::ult(e.addr, z3.bv_val(hi, 64))));
  axioms.push_back(e.addr.extract(11, 0) == z3.bv_val(0, 12));
  axioms.push_back(z3::implies(!e.present, e.addr == z3.bv_val(uint64_t(0), 64)));
  if (def.kind != ebpf::MapKind::HASH) {
    // Array-like maps: a key is present iff it is a valid index.
    z3::expr idx = z3::zext(key, 64 - key.get_sort().bv_size());
    axioms.push_back(e.present ==
                     z3::ult(idx, z3.bv_val(uint64_t(def.max_entries), 64)));
  }

  // Pairwise consistency with prior entries. With map-type concretization
  // (II), only same-map entries are compared; without it, keys carry the map
  // id and all pairs are compared (merged-table degradation).
  auto pair_axioms = [&](int ofd, const OracleEntry& other) {
    z3::expr keq = opts.map_type_concretization
                       ? (key == other.key)
                       : (full_key(fd, key) == full_key(ofd, other.key));
    if (ofd == fd) {
      std::vector<z3::expr> same;
      same.push_back(e.present == other.present);
      same.push_back(e.addr == other.addr);
      for (uint32_t j = 0; j < def.value_size; ++j)
        same.push_back(e.val_bytes[j] == other.val_bytes[j]);
      axioms.push_back(z3::implies(keq, conjoin(same)));
    } else {
      axioms.push_back(z3::implies(keq, e.present == other.present));
    }
    axioms.push_back(z3::implies(!keq && e.present && other.present,
                                 e.addr != other.addr));
  };
  if (opts.map_type_concretization) {
    for (const auto& other : oracle[fd]) pair_axioms(fd, other);
  } else {
    for (size_t ofd = 0; ofd < oracle.size(); ++ofd)
      for (const auto& other : oracle[ofd]) pair_axioms(int(ofd), other);
  }
  // Distinct from every in-program allocated address of this map.
  for (const auto& a : all_addrs[fd])
    axioms.push_back(z3::implies(e.present, e.addr != a));

  oracle[fd].push_back(e);
  all_addrs[fd].push_back(e.addr);
  return static_cast<int>(oracle[fd].size()) - 1;
}

z3::expr World::fresh_value_addr(int fd) {
  z3::expr a = fresh_bv("m" + std::to_string(fd) + "_newaddr", 64);
  uint64_t lo = Machine::kMapValueBase + (uint64_t(fd) << 32);
  uint64_t hi = lo + (uint64_t(1) << 32);
  axioms.push_back(z3::uge(a, z3.bv_val(lo, 64)));
  axioms.push_back(z3::ult(a, z3.bv_val(hi, 64)));
  axioms.push_back(a.extract(11, 0) == z3.bv_val(0, 12));
  for (const auto& other : all_addrs[fd]) axioms.push_back(a != other);
  all_addrs[fd].push_back(a);
  return a;
}

// ---- Program encoder -------------------------------------------------------

namespace {

// One byte of a store, guarded by its path condition.
struct ByteWrite {
  z3::expr pc;
  z3::expr addr;
  z3::expr byte;
  bool conc;            // concrete absolute address known (optimization III)
  uint64_t conc_addr;
};

// One map-level write: key valuation -> new value address (0 = deletion).
struct MapAddrWrite {
  z3::expr pc;
  z3::expr handle;  // r1 at the call (used when optimization II is off)
  z3::expr key;
  z3::expr addr;
  int fd;
};

class ProgEncoder {
 public:
  ProgEncoder(World& w, const ebpf::Program& prog, std::string tag,
              const std::vector<z3::expr>& witness_keys,
              const std::vector<z3::expr>* entry_regs,
              const analysis::RegFile* entry_types)
      : w_(w),
        c_(w.z3),
        prog_(prog),
        tag_(std::move(tag)),
        witness_(witness_keys),
        entry_regs_(entry_regs),
        entry_types_(entry_types),
        be_(w.z3),
        out_(w.z3) {}

  Encoded run();

 private:
  static constexpr int kData = 11, kKtime = 12, kRand = 13, kNState = 14;
  using State = std::vector<z3::expr>;

  World& w_;
  z3::context& c_;
  const ebpf::Program& prog_;
  std::string tag_;
  const std::vector<z3::expr>& witness_;
  const std::vector<z3::expr>* entry_regs_;
  const analysis::RegFile* entry_types_ = nullptr;
  Z3Backend be_;
  Encoded out_;

  analysis::Cfg cfg_;
  analysis::TypeInfo ti_;
  bool has_adjust_ = false;

  std::map<int, std::vector<ByteWrite>> tables_;
  std::vector<MapAddrWrite> map_writes_;
  struct PendingEdge {
    z3::expr cond;
    State state;
  };
  std::vector<std::vector<PendingEdge>> pending_;
  struct ExitInfo {
    z3::expr pc;
    State state;
  };
  std::vector<ExitInfo> exits_;

  bool failed_ = false;

  // -- small helpers --
  z3::expr bv64(uint64_t v) { return c_.bv_val(v, 64); }
  z3::expr bv8(uint64_t v) { return c_.bv_val(v, 8); }
  z3::expr tru() { return c_.bool_val(true); }
  z3::expr fls() { return c_.bool_val(false); }
  void def(const z3::expr& e) { out_.defs.push_back(e); }
  void fail(int insn, const std::string& why) {
    if (!failed_) {
      failed_ = true;
      out_.error = why;
      out_.error_insn = insn;
    }
  }

  uint64_t pkt_data0() const { return Machine::kPacketBase + Machine::kHeadroom; }
  z3::expr data_end_expr() { return bv64(pkt_data0()) + w_.pkt_len; }

  int table_id(Rt region, int fd) const {
    if (!w_.opts.mem_type_concretization) return 0;
    switch (region) {
      case Rt::PTR_STACK: return 1;
      case Rt::PTR_CTX: return 2;
      case Rt::PTR_PKT: return 3;
      case Rt::PTR_MAP_VALUE:
        return w_.opts.map_type_concretization ? 100 + fd : 99;
      default: return 0;
    }
  }

  // Initial contents of one byte, by region (provenance is statically known
  // even when the write tables are merged).
  z3::expr init_byte(Rt region, int fd, const z3::expr& addr,
                     std::optional<uint64_t> conc);
  z3::expr ctx_init_byte_at(int idx);

  // Read a byte through the region's write table.
  z3::expr read_byte(Rt region, int fd, const z3::expr& addr,
                     std::optional<uint64_t> conc, const z3::expr& pc,
                     bool track_uncovered, int insn_idx);
  void write_byte(Rt region, int fd, const z3::expr& pc, const z3::expr& addr,
                  std::optional<uint64_t> conc, const z3::expr& byte);

  // Multi-byte little-endian load/store through the tables.
  z3::expr read_value(Rt region, int fd, const z3::expr& addr,
                      std::optional<uint64_t> conc, int width,
                      const z3::expr& pc, bool track_uncovered, int insn_idx);
  void write_value(Rt region, int fd, const z3::expr& pc, const z3::expr& addr,
                   std::optional<uint64_t> conc, const z3::expr& value,
                   int width);

  // Map address-level lookup: in-program writes newest-first over the
  // shared oracle.
  z3::expr map_addr_lookup(int fd, const z3::expr& handle, const z3::expr& key);

  void encode_call(int insn_idx, const z3::expr& pc, State& s);

  // Address of a memory operand with optional concretization (III).
  struct Addr {
    z3::expr expr;
    std::optional<uint64_t> conc;
    Rt region;
    int fd;
  };
  std::optional<Addr> mem_addr(int insn_idx, int base_reg, int16_t off,
                               const State& s);

  State merged_entry(int b, const z3::expr& pc_b);
};

z3::expr ProgEncoder::ctx_init_byte_at(int idx) {
  if (w_.prog_type == ebpf::ProgType::TRACEPOINT) {
    const z3::expr& src = idx < 8 ? w_.ctx_arg0 : w_.ctx_arg1;
    int bit = (idx % 8) * 8;
    return src.extract(bit + 7, bit);
  }
  // XDP / socket filter: {u64 data, u64 data_end}. The *initial* data field
  // is a constant; adjust_head rewrites it through the ctx write table.
  z3::expr src = idx < 8 ? bv64(pkt_data0()) : data_end_expr();
  int bit = (idx % 8) * 8;
  return src.extract(bit + 7, bit);
}

z3::expr ProgEncoder::init_byte(Rt region, int fd, const z3::expr& addr,
                                std::optional<uint64_t> conc) {
  switch (region) {
    case Rt::PTR_STACK: {
      if (!w_.opts.symbolic_stack_init) return bv8(0);
      if (conc) {
        int64_t idx = int64_t(*conc) - int64_t(Machine::kStackBase - 512);
        if (idx >= 0 && idx < 512) return w_.stack_init[size_t(idx)];
        return bv8(0);
      }
      z3::expr acc = bv8(0);
      for (int i = 0; i < 512; ++i)
        acc = z3::ite(addr == bv64(Machine::kStackBase - 512 + i),
                      w_.stack_init[size_t(i)], acc);
      return acc;
    }
    case Rt::PTR_CTX: {
      if (conc) {
        int64_t idx = int64_t(*conc) - int64_t(Machine::kCtxBase);
        if (idx >= 0 && idx < 16) return ctx_init_byte_at(int(idx));
        return bv8(0);
      }
      z3::expr acc = bv8(0);
      for (int i = 0; i < 16; ++i)
        acc = z3::ite(addr == bv64(Machine::kCtxBase + i),
                      ctx_init_byte_at(i), acc);
      return acc;
    }
    case Rt::PTR_PKT: {
      if (conc) {
        int64_t idx = int64_t(*conc) - int64_t(Machine::kPacketBase);
        if (idx >= 0 && idx < int64_t(Machine::kHeadroom)) return bv8(0);
        idx -= Machine::kHeadroom;
        if (idx >= 0 && idx < w_.opts.max_pkt) return w_.pkt_init[size_t(idx)];
        return bv8(0);
      }
      z3::expr acc = bv8(0);
      for (int i = 0; i < w_.opts.max_pkt; ++i)
        acc = z3::ite(addr == bv64(pkt_data0() + uint64_t(i)),
                      w_.pkt_init[size_t(i)], acc);
      return acc;  // headroom bytes are zero-initialized
    }
    case Rt::PTR_MAP_VALUE: {
      // Fold over the initial-state oracle: bytes of present entries.
      z3::expr acc = bv8(0);
      for (size_t ofd = 0; ofd < w_.oracle.size(); ++ofd) {
        if (w_.opts.map_type_concretization && int(ofd) != fd) continue;
        for (const auto& e : w_.oracle[ofd]) {
          for (size_t j = 0; j < e.val_bytes.size(); ++j)
            acc = z3::ite(e.present && addr == e.addr + bv64(j),
                          e.val_bytes[j], acc);
        }
      }
      return acc;
    }
    default:
      return bv8(0);
  }
}

z3::expr ProgEncoder::read_byte(Rt region, int fd, const z3::expr& addr,
                                std::optional<uint64_t> conc,
                                const z3::expr& pc, bool track_uncovered,
                                int insn_idx) {
  if (!w_.opts.offset_concretization) conc = std::nullopt;
  int tid = table_id(region, fd);
  z3::expr val = init_byte(region, fd, addr, conc);
  std::vector<z3::expr> covered;  // clauses for the read-before-write query
  auto it = tables_.find(tid);
  if (it != tables_.end()) {
    for (const ByteWrite& bw : it->second) {
      if (conc && bw.conc) {
        if (*conc == bw.conc_addr) {
          val = z3::ite(bw.pc, bw.byte, val);
          covered.push_back(bw.pc);
        }
        // statically distinct addresses: no clause at all
      } else {
        z3::expr match = bw.pc && (bw.addr == addr);
        val = z3::ite(match, bw.byte, val);
        covered.push_back(match);
      }
    }
  }
  if (track_uncovered && region == Rt::PTR_STACK &&
      !w_.opts.symbolic_stack_init) {
    z3::expr any = fls();
    for (const auto& cv : covered) any = any || cv;
    out_.uncovered_stack_reads.emplace_back(insn_idx, pc && !any);
  }
  return val;
}

void ProgEncoder::write_byte(Rt region, int fd, const z3::expr& pc,
                             const z3::expr& addr,
                             std::optional<uint64_t> conc,
                             const z3::expr& byte) {
  if (!w_.opts.offset_concretization) conc = std::nullopt;
  int tid = table_id(region, fd);
  auto [it, inserted] = tables_.try_emplace(tid);
  it->second.push_back(
      ByteWrite{pc, addr, byte, conc.has_value(), conc.value_or(0)});
}

z3::expr ProgEncoder::read_value(Rt region, int fd, const z3::expr& addr,
                                 std::optional<uint64_t> conc, int width,
                                 const z3::expr& pc, bool track_uncovered,
                                 int insn_idx) {
  // Little-endian: byte i is bits [8i, 8i+8).
  std::vector<z3::expr> bytes;
  for (int i = 0; i < width; ++i) {
    std::optional<uint64_t> ci =
        conc ? std::optional<uint64_t>(*conc + uint64_t(i)) : std::nullopt;
    bytes.push_back(read_byte(region, fd, addr + bv64(uint64_t(i)), ci, pc,
                              track_uncovered, insn_idx));
  }
  z3::expr v = bytes[0];
  for (int i = 1; i < width; ++i) v = z3::concat(bytes[size_t(i)], v);
  if (width < 8) v = z3::zext(v, unsigned(64 - width * 8));
  return v;
}

void ProgEncoder::write_value(Rt region, int fd, const z3::expr& pc,
                              const z3::expr& addr,
                              std::optional<uint64_t> conc,
                              const z3::expr& value, int width) {
  for (int i = 0; i < width; ++i) {
    std::optional<uint64_t> ci =
        conc ? std::optional<uint64_t>(*conc + uint64_t(i)) : std::nullopt;
    write_byte(region, fd, pc, addr + bv64(uint64_t(i)), ci,
               value.extract(unsigned(i * 8 + 7), unsigned(i * 8)));
  }
}

z3::expr ProgEncoder::map_addr_lookup(int fd, const z3::expr& handle,
                                      const z3::expr& key) {
  int oe = w_.oracle_entry(fd, key);
  z3::expr addr = w_.oracle[fd][size_t(oe)].addr;
  for (const MapAddrWrite& mw : map_writes_) {
    if (w_.opts.map_type_concretization) {
      if (mw.fd != fd) continue;
      addr = z3::ite(mw.pc && (mw.key == key), mw.addr, addr);
    } else {
      // Map identity resolved by the solver through the handle values.
      z3::expr keq = (mw.handle == handle) &&
                     (w_.full_key(mw.fd, mw.key) == w_.full_key(fd, key));
      addr = z3::ite(mw.pc && keq, mw.addr, addr);
    }
  }
  return addr;
}

std::optional<ProgEncoder::Addr> ProgEncoder::mem_addr(int insn_idx,
                                                       int base_reg,
                                                       int16_t off,
                                                       const State& s) {
  const analysis::RegState& rs = ti_.reg_before(insn_idx, base_reg);
  Rt region = rs.type;
  if (region != Rt::PTR_STACK && region != Rt::PTR_CTX &&
      region != Rt::PTR_PKT && region != Rt::PTR_MAP_VALUE) {
    fail(insn_idx, std::string("untypeable memory access via ") +
                       analysis::rt_name(region));
    return std::nullopt;
  }
  Addr a{s[size_t(base_reg)] + bv64(uint64_t(int64_t(off))), std::nullopt,
         region, rs.map_fd};
  if (rs.off_known) {
    int64_t rel = rs.off + off;
    switch (region) {
      case Rt::PTR_STACK:
        a.conc = uint64_t(int64_t(Machine::kStackBase) + rel);
        break;
      case Rt::PTR_CTX:
        a.conc = uint64_t(int64_t(Machine::kCtxBase) + rel);
        break;
      case Rt::PTR_PKT:
        if (!has_adjust_) a.conc = uint64_t(int64_t(pkt_data0()) + rel);
        break;
      default:
        break;  // map values have symbolic addresses
    }
  }
  return a;
}

void ProgEncoder::encode_call(int insn_idx, const z3::expr& pc, State& s) {
  const Insn& insn = prog_.insns[size_t(insn_idx)];
  const ebpf::HelperProto* proto = ebpf::helper_proto(insn.imm);
  if (!proto) {
    fail(insn_idx, "unknown helper");
    return;
  }
  // Resolve the map argument statically (optimization II relies on this; the
  // handle expression is also kept for the degraded merged-table mode).
  int fd = -1;
  if (proto->reads_map_fd) {
    const analysis::RegState& r1 = ti_.reg_before(insn_idx, 1);
    if (r1.type != Rt::MAP_HANDLE || r1.map_fd < 0 ||
        r1.map_fd >= int(w_.maps.size())) {
      fail(insn_idx, "helper call without statically-known map");
      return;
    }
    fd = r1.map_fd;
  }

  auto read_buf_key = [&](int reg, uint32_t size) -> std::optional<z3::expr> {
    auto a = mem_addr(insn_idx, reg, 0, s);
    if (!a) return std::nullopt;
    out_.accesses.push_back(AccessRecord{insn_idx, a->region, a->fd, pc,
                                         a->expr, int(size), true});
    return read_value(a->region, a->fd, a->expr, a->conc, int(size), pc,
                      /*track_uncovered=*/a->region == Rt::PTR_STACK,
                      insn_idx);
  };

  z3::expr r0 = bv64(0);
  switch (insn.imm) {
    case ebpf::HELPER_MAP_LOOKUP: {
      const ebpf::MapDef& def = w_.maps[size_t(fd)];
      auto key64 = read_buf_key(2, def.key_size);
      if (!key64) return;
      z3::expr key = key64->extract(def.key_size * 8 - 1, 0);
      r0 = map_addr_lookup(fd, s[1], key);
      break;
    }
    case ebpf::HELPER_MAP_UPDATE: {
      const ebpf::MapDef& def = w_.maps[size_t(fd)];
      auto key64 = read_buf_key(2, def.key_size);
      if (!key64) return;
      z3::expr key = key64->extract(def.key_size * 8 - 1, 0);
      // Read the value buffer (may exceed 8 bytes: read bytewise).
      auto va = mem_addr(insn_idx, 3, 0, s);
      if (!va) return;
      out_.accesses.push_back(AccessRecord{insn_idx, va->region, va->fd, pc,
                                           va->expr, int(def.value_size),
                                           true});
      std::vector<z3::expr> val_bytes;
      for (uint32_t j = 0; j < def.value_size; ++j) {
        std::optional<uint64_t> cj =
            va->conc ? std::optional<uint64_t>(*va->conc + j) : std::nullopt;
        val_bytes.push_back(read_byte(va->region, va->fd,
                                      va->expr + bv64(j), cj, pc,
                                      va->region == Rt::PTR_STACK, insn_idx));
      }
      z3::expr prev = map_addr_lookup(fd, s[1], key);
      z3::expr addr_after = prev;
      if (def.kind == ebpf::MapKind::HASH) {
        z3::expr fresh = w_.fresh_value_addr(fd);
        addr_after = z3::ite(prev != bv64(0), prev, fresh);
        r0 = bv64(0);
      } else {
        r0 = z3::ite(prev != bv64(0), bv64(0), bv64(uint64_t(kEnoent)));
      }
      z3::expr wrote = def.kind == ebpf::MapKind::HASH
                           ? pc
                           : (pc && prev != bv64(0));
      map_writes_.push_back(MapAddrWrite{wrote, s[1], key, addr_after, fd});
      for (uint32_t j = 0; j < def.value_size; ++j)
        write_byte(Rt::PTR_MAP_VALUE, fd, wrote, addr_after + bv64(j),
                   std::nullopt, val_bytes[j]);
      break;
    }
    case ebpf::HELPER_MAP_DELETE: {
      const ebpf::MapDef& def = w_.maps[size_t(fd)];
      auto key64 = read_buf_key(2, def.key_size);
      if (!key64) return;
      z3::expr key = key64->extract(def.key_size * 8 - 1, 0);
      if (def.kind == ebpf::MapKind::HASH) {
        z3::expr prev = map_addr_lookup(fd, s[1], key);
        r0 = z3::ite(prev != bv64(0), bv64(0), bv64(uint64_t(kEnoent)));
        map_writes_.push_back(MapAddrWrite{pc, s[1], key, bv64(0), fd});
      } else {
        r0 = bv64(uint64_t(kEinval));
      }
      break;
    }
    case ebpf::HELPER_KTIME_GET_NS:
      r0 = s[kKtime];
      s[kKtime] = s[kKtime] + bv64(1000);
      break;
    case ebpf::HELPER_GET_PRANDOM_U32: {
      z3::expr ns = be_.splitmix(s[kRand]);
      s[kRand] = ns;
      r0 = ns & bv64(0xffffffffull);
      break;
    }
    case ebpf::HELPER_GET_SMP_PROC_ID:
      r0 = w_.cpu_id;
      break;
    case ebpf::HELPER_CSUM_DIFF: {
      const analysis::RegState& r2 = ti_.reg_before(insn_idx, 2);
      const analysis::RegState& r4 = ti_.reg_before(insn_idx, 4);
      if (!r2.val_known || !r4.val_known || r2.val % 4 || r4.val % 4 ||
          r2.val > 512 || r4.val > 512) {
        fail(insn_idx, "csum_diff requires concrete 4-aligned sizes");
        return;
      }
      z3::expr sum = s[5] & bv64(0xffffffffull);
      if (r4.val > 0) {
        auto to64 = mem_addr(insn_idx, 3, 0, s);
        if (!to64) return;
        out_.accesses.push_back(AccessRecord{insn_idx, to64->region, to64->fd,
                                             pc, to64->expr, int(r4.val),
                                             true});
        for (uint64_t j = 0; j + 4 <= r4.val; j += 4) {
          std::optional<uint64_t> cj =
              to64->conc ? std::optional<uint64_t>(*to64->conc + j)
                         : std::nullopt;
          z3::expr word =
              read_value(to64->region, to64->fd, to64->expr + bv64(j), cj, 4,
                         pc, to64->region == Rt::PTR_STACK, insn_idx);
          sum = sum + word;
        }
      }
      if (r2.val > 0) {
        auto from64 = mem_addr(insn_idx, 1, 0, s);
        if (!from64) return;
        out_.accesses.push_back(AccessRecord{insn_idx, from64->region,
                                             from64->fd, pc, from64->expr,
                                             int(r2.val), true});
        for (uint64_t j = 0; j + 4 <= r2.val; j += 4) {
          std::optional<uint64_t> cj =
              from64->conc ? std::optional<uint64_t>(*from64->conc + j)
                           : std::nullopt;
          z3::expr word =
              read_value(from64->region, from64->fd, from64->expr + bv64(j),
                         cj, 4, pc, from64->region == Rt::PTR_STACK, insn_idx);
          sum = sum + ((~word) & bv64(0xffffffffull));
        }
      }
      for (int f = 0; f < 3; ++f)
        sum = (sum & bv64(0xffffffffull)) + z3::lshr(sum, bv64(32));
      r0 = sum;
      break;
    }
    case ebpf::HELPER_XDP_ADJUST_HEAD: {
      has_adjust_ = true;  // set in pre-scan too; defensive
      z3::expr delta = s[2];
      z3::expr nd = s[kData] + delta;
      z3::expr ok = z3::uge(nd, bv64(Machine::kPacketBase)) &&
                    z3::ule(nd + bv64(14), data_end_expr());
      r0 = z3::ite(ok, bv64(0), bv64(uint64_t(int64_t(-1))));
      s[kData] = z3::ite(ok, nd, s[kData]);
      // Rewrite the ctx data field (bytes 0..7).
      for (int j = 0; j < 8; ++j)
        write_byte(Rt::PTR_CTX, -1, pc, bv64(Machine::kCtxBase + uint64_t(j)),
                   std::optional<uint64_t>(Machine::kCtxBase + uint64_t(j)),
                   s[kData].extract(unsigned(j * 8 + 7), unsigned(j * 8)));
      break;
    }
    case ebpf::HELPER_REDIRECT_MAP: {
      const ebpf::MapDef& def = w_.maps[size_t(fd)];
      r0 = z3::ite(z3::ult(s[2], bv64(uint64_t(def.max_entries))), bv64(4),
                   s[3] & bv64(0xffffffffull));
      break;
    }
    default:
      fail(insn_idx, "unmodeled helper");
      return;
  }

  s[0] = r0;
  for (int r = 1; r <= 5; ++r)
    s[size_t(r)] = bv64(interp::kScratchPoison + uint64_t(r));
}

ProgEncoder::State ProgEncoder::merged_entry(int b, const z3::expr& pc_b) {
  (void)pc_b;
  const auto& edges = pending_[size_t(b)];
  assert(!edges.empty());
  if (edges.size() == 1) return edges[0].state;
  State merged;
  for (int i = 0; i < kNState; ++i) {
    z3::expr v = edges.back().state[size_t(i)];
    for (int e = int(edges.size()) - 2; e >= 0; --e)
      v = z3::ite(edges[size_t(e)].cond, edges[size_t(e)].state[size_t(i)], v);
    // Name the merged value to help the solver share structure.
    z3::expr nv = w_.fresh_bv(tag_ + "_b" + std::to_string(b) + "_s" +
                                  std::to_string(i),
                              64);
    def(nv == v);
    merged.push_back(nv);
  }
  return merged;
}

Encoded ProgEncoder::run() {
  cfg_ = analysis::build_cfg(prog_);
  if (!cfg_.loop_free) {
    fail(0, "program has backward control flow");
    return std::move(out_);
  }
  ti_ = analysis::infer_types(prog_, cfg_, entry_types_);
  if (!ti_.ok) {
    fail(0, "type inference failed");
    return std::move(out_);
  }
  for (const Insn& i : prog_.insns)
    if (i.op == Opcode::CALL && i.imm == ebpf::HELPER_XDP_ADJUST_HEAD)
      has_adjust_ = true;
  out_.has_adjust_head = has_adjust_;

  pending_.assign(size_t(cfg_.num_blocks()), {});

  // Entry state.
  State entry;
  if (entry_regs_) {
    for (const auto& e : *entry_regs_) entry.push_back(e);
    assert(int(entry.size()) == kNState);
  } else {
    for (int r = 0; r <= 10; ++r) entry.push_back(bv64(0));
    entry[1] = bv64(Machine::kCtxBase);
    entry[10] = bv64(Machine::kStackBase);
    entry.push_back(bv64(pkt_data0()));  // data
    entry.push_back(w_.ktime_base);      // ktime state
    entry.push_back(w_.rand_seed);       // prandom state
  }

  const int n = int(prog_.insns.size());
  for (int b = 0; b < cfg_.num_blocks() && !failed_; ++b) {
    if (!cfg_.reachable[size_t(b)]) continue;
    z3::expr pc_b = tru();
    State s = entry;
    if (b == 0) {
      // entry block
    } else {
      if (pending_[size_t(b)].empty()) continue;  // dynamically unreachable
      z3::expr disj = fls();
      for (const auto& e : pending_[size_t(b)]) disj = disj || e.cond;
      z3::expr pcv = w_.fresh_bool(tag_ + "_pc" + std::to_string(b));
      def(pcv == disj);
      pc_b = pcv;
      s = merged_entry(b, pc_b);
    }

    const analysis::BasicBlock& blk = cfg_.blocks[size_t(b)];
    auto send_edge = [&](int target_insn, const z3::expr& cond,
                         const State& st) {
      if (target_insn < 0 || target_insn >= n) return;
      pending_[size_t(cfg_.block_of[size_t(target_insn)])].push_back(
          PendingEdge{cond, st});
    };

    bool terminated = false;
    for (int i = blk.start; i < blk.end && !failed_; ++i) {
      const Insn& insn = prog_.insns[size_t(i)];
      AluShape a;
      JmpShape j;
      if (ebpf::decompose_alu(insn.op, &a)) {
        z3::expr src = a.is_imm ? bv64(ebpf::sext32(insn.imm))
                                : s[size_t(insn.src)];
        s[insn.dst] = ebpf::alu_apply(a.op, a.is64, s[insn.dst], src, be_);
        continue;
      }
      if (ebpf::decompose_jmp(insn.op, &j)) {
        z3::expr rhs =
            j.is_imm ? bv64(ebpf::sext32(insn.imm)) : s[size_t(insn.src)];
        z3::expr cond = ebpf::jmp_test(j.cond, s[insn.dst], rhs, be_);
        send_edge(i + 1 + insn.off, pc_b && cond, s);
        send_edge(i + 1, pc_b && !cond, s);
        terminated = true;
        break;
      }
      switch (insn.op) {
        case Opcode::NEG64:
        case Opcode::NEG32:
        case Opcode::BE16:
        case Opcode::BE32:
        case Opcode::BE64:
        case Opcode::LE16:
        case Opcode::LE32:
        case Opcode::LE64:
          s[insn.dst] = ebpf::alu_unary_apply(insn.op, s[insn.dst], be_);
          break;
        case Opcode::JA:
          send_edge(i + 1 + insn.off, pc_b, s);
          terminated = true;
          break;
        case Opcode::LDXB:
        case Opcode::LDXH:
        case Opcode::LDXW:
        case Opcode::LDXDW: {
          auto addr = mem_addr(i, insn.src, insn.off, s);
          if (!addr) break;
          int w = ebpf::mem_width(insn.op);
          out_.accesses.push_back(AccessRecord{i, addr->region, addr->fd,
                                               pc_b, addr->expr, w, true});
          s[insn.dst] =
              read_value(addr->region, addr->fd, addr->expr, addr->conc, w,
                         pc_b, addr->region == Rt::PTR_STACK, i);
          break;
        }
        case Opcode::STXB:
        case Opcode::STXH:
        case Opcode::STXW:
        case Opcode::STXDW:
        case Opcode::STB:
        case Opcode::STH:
        case Opcode::STW:
        case Opcode::STDW: {
          auto addr = mem_addr(i, insn.dst, insn.off, s);
          if (!addr) break;
          int w = ebpf::mem_width(insn.op);
          out_.accesses.push_back(AccessRecord{i, addr->region, addr->fd,
                                               pc_b, addr->expr, w, false});
          z3::expr v = ebpf::insn_class(insn.op) == ebpf::InsnClass::STX
                           ? s[size_t(insn.src)]
                           : bv64(ebpf::sext32(insn.imm));
          write_value(addr->region, addr->fd, pc_b, addr->expr, addr->conc, v,
                      w);
          break;
        }
        case Opcode::XADD32:
        case Opcode::XADD64: {
          auto addr = mem_addr(i, insn.dst, insn.off, s);
          if (!addr) break;
          int w = ebpf::mem_width(insn.op);
          out_.accesses.push_back(AccessRecord{i, addr->region, addr->fd,
                                               pc_b, addr->expr, w, false});
          z3::expr old =
              read_value(addr->region, addr->fd, addr->expr, addr->conc, w,
                         pc_b, addr->region == Rt::PTR_STACK, i);
          z3::expr neu = old + s[size_t(insn.src)];
          if (w == 4) neu = be_.lo32(neu);
          write_value(addr->region, addr->fd, pc_b, addr->expr, addr->conc,
                      neu, w);
          break;
        }
        case Opcode::CALL:
          encode_call(i, pc_b, s);
          break;
        case Opcode::EXIT:
          exits_.push_back(ExitInfo{pc_b, s});
          terminated = true;
          break;
        case Opcode::LDDW:
          s[insn.dst] = bv64(uint64_t(insn.imm));
          break;
        case Opcode::LDMAPFD:
          s[insn.dst] = bv64(Machine::kMapHandleBase + uint64_t(insn.imm));
          break;
        case Opcode::NOP:
          break;
        default:
          fail(i, "unencodable opcode");
          break;
      }
      if (terminated) break;
    }
    if (failed_) break;
    if (!terminated) {
      // Fall-through into the next block, or off the end of the program.
      if (blk.end < n) {
        send_edge(blk.end, pc_b, s);
      } else {
        fail(blk.end - 1, "control flow falls off the end of the program");
      }
    }
  }
  if (failed_) return std::move(out_);
  if (exits_.empty()) {
    fail(n - 1, "no reachable exit");
    return std::move(out_);
  }

  // Merge outputs over all exits.
  for (int slot = 0; slot < kNState; ++slot) {
    z3::expr v = exits_.back().state[size_t(slot)];
    for (int e = int(exits_.size()) - 2; e >= 0; --e)
      v = z3::ite(exits_[size_t(e)].pc, exits_[size_t(e)].state[size_t(slot)],
                  v);
    out_.final_state.push_back(v);
  }
  out_.r0 = out_.final_state[0];
  out_.pkt_data_out = out_.final_state[kData];
  out_.pkt_len_out = data_end_expr() - out_.pkt_data_out;
  z3::expr data = out_.pkt_data_out;

  // Final packet bytes at data_out + j. Without adjust_head the data pointer
  // is the compile-time constant, so the folds concretize fully.
  int npkt = has_adjust_ ? int(Machine::kHeadroom) + w_.opts.max_pkt
                         : w_.opts.max_pkt;
  for (int jb = 0; jb < npkt; ++jb) {
    std::optional<uint64_t> conc =
        has_adjust_ ? std::nullopt
                    : std::optional<uint64_t>(pkt_data0() + uint64_t(jb));
    out_.final_pkt_bytes.push_back(read_byte(
        Rt::PTR_PKT, -1, data + bv64(uint64_t(jb)), conc, tru(), false, -1));
  }

  // Final map state at the shared witness keys.
  for (size_t fd = 0; fd < w_.maps.size(); ++fd) {
    const ebpf::MapDef& def = w_.maps[fd];
    z3::expr key = witness_[fd];
    z3::expr handle = bv64(Machine::kMapHandleBase + fd);
    z3::expr addr = map_addr_lookup(int(fd), handle, key);
    MapFinal mf{addr, {}};
    for (uint32_t j = 0; j < def.value_size; ++j)
      mf.bytes.push_back(read_byte(Rt::PTR_MAP_VALUE, int(fd),
                                   addr + bv64(uint64_t(j)), std::nullopt,
                                   tru(), false, -1));
    out_.map_finals.push_back(std::move(mf));
  }

  // Window mode: expose final stack bytes for live-out comparison.
  if (w_.opts.symbolic_stack_init) {
    for (int i = 0; i < 512; ++i) {
      uint64_t va = Machine::kStackBase - 512 + uint64_t(i);
      out_.final_stack_bytes.push_back(read_byte(
          Rt::PTR_STACK, -1, bv64(va), std::optional<uint64_t>(va), tru(),
          false, -1));
    }
  }

  out_.ok = true;
  return std::move(out_);
}

}  // namespace

Encoded encode_program(World& world, const ebpf::Program& prog,
                       const std::string& tag,
                       const std::vector<z3::expr>& witness_keys,
                       const std::vector<z3::expr>* entry_regs,
                       const analysis::RegFile* entry_types) {
  ProgEncoder enc(world, prog, tag, witness_keys, entry_regs, entry_types);
  return enc.run();
}

}  // namespace k2::verify
