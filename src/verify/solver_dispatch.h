// Asynchronous Z3 dispatch: equivalence queries become tasks on a dedicated
// solver worker pool instead of blocking the Markov chain that issued them.
//
// Why a second pool: the chain ThreadPool (src/pipeline/thread_pool.h) is
// sized to hardware threads and its tasks are CPU-bound interpreter work; a
// Z3 query parks a thread for up to its full timeout budget. Running solver
// calls on the chain pool would let a handful of hard queries starve every
// chain. Solver workers are therefore separate plain threads that only ever
// pop queued queries, run them under the per-query budgets carried in their
// EqOptions (timeout_ms, memory_max_mb), and publish the result into the
// EqCache — waking every chain that joined the query's PendingVerdict.
//
// Cancellation: a chain whose speculation was rolled back releases its
// interest in the query. A WAITING query whose last waiter left is skipped
// when a worker pops it (and its cache slot erased, so the key is
// immediately re-dispatchable); a query that already reached RUNNING cannot
// be interrupted mid-Z3-check, so its result is published anyway — the
// completed work still benefits later cache lookups.
//
// Thread-safety: all public methods are safe from any thread. submit() and
// cancel() never block on solver work; ~AsyncSolverDispatcher drains the
// queue (running or abandoning every task) and joins the workers, so no
// PendingVerdict is left WAITING forever. A dispatcher constructed with
// zero workers is inert (`async() == false`); callers use it as the switch
// between the synchronous PR 1 path and asynchronous dispatch.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "verify/cache.h"
#include "verify/solver_backend.h"

namespace k2::verify {

class AsyncSolverDispatcher {
 public:
  // The deferred solver call. Runs on a solver worker thread; must be
  // self-contained (own its candidate program and options) and must respect
  // the per-query budgets itself (check_equivalence already does).
  using Solve = std::function<EqResult()>;

  struct Stats {
    uint64_t submitted = 0;
    uint64_t completed = 0;   // queries actually solved (incl. timeouts)
    uint64_t abandoned = 0;   // cancelled before any worker picked them up
    uint64_t timeouts = 0;    // completed queries that returned UNKNOWN
    uint64_t queue_depth = 0;  // tasks queued right now
    uint64_t queue_peak = 0;   // high-water mark of queue_depth
  };

  // Spawns `workers` solver threads; 0 means synchronous mode (submit() must
  // not be called — callers check async() first).
  explicit AsyncSolverDispatcher(int workers);
  ~AsyncSolverDispatcher();

  AsyncSolverDispatcher(const AsyncSolverDispatcher&) = delete;
  AsyncSolverDispatcher& operator=(const AsyncSolverDispatcher&) = delete;

  int workers() const { return int(workers_.size()); }
  bool async() const { return !workers_.empty(); }

  // Enqueues the query owned by `pv` (obtained from EqCache::claim() with
  // owner == true). A worker will run `solve` and publish the result into
  // `cache` under `key`. Never blocks on solver work.
  void submit(EqCache& cache, const EqCache::Key& key, PendingHandle pv,
              Solve solve);

  // Same, but with the query in its first-class serializable form: a worker
  // routes it through `backend` (null = solve_query_local). This is the
  // path the evaluation pipeline uses; the closure overload remains for
  // callers with bespoke solve logic.
  void submit(EqCache& cache, const EqCache::Key& key, PendingHandle pv,
              SolveQuery query, SolverBackend* backend);

  // Blocks until every queued task has been run or abandoned and no worker
  // is mid-task — the clean-shutdown barrier (k2c serve drains before
  // exiting so no PendingVerdict outlives the service). Tasks submitted
  // while draining extend the wait.
  void drain();

  // Detaches one waiter from `pv` (the handle a chain got from claim()/
  // submit()). When the last waiter of a still-WAITING query leaves, the
  // query is marked cancelled and will be abandoned instead of solved.
  void cancel(const PendingHandle& pv);

  Stats stats() const;

 private:
  struct Task {
    EqCache* cache;
    EqCache::Key key;
    PendingHandle pv;
    Solve solve;  // empty when `query` carries the work
    std::optional<SolveQuery> query;
    SolverBackend* backend = nullptr;  // only meaningful with `query`
  };

  void worker_loop();
  // Pops the next task or returns false when stopping with an empty queue.
  bool next_task(Task& out);
  void run_task(Task& t);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;  // guarded by mu_
  Stats stats_;             // guarded by mu_
  bool stop_ = false;       // guarded by mu_
  int inflight_ = 0;        // tasks popped but not finished; guarded by mu_
  std::vector<std::thread> workers_;
};

}  // namespace k2::verify
