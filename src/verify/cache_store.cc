#include "verify/cache_store.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <bit>
#include <map>
#include <string_view>
#include <tuple>

#include "api/schema.h"
#include "util/json.h"
#include "verify/solve_protocol.h"

namespace k2::verify {

namespace {

uint64_t fnv1a64(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= uint8_t(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string shard_path(const std::string& dir, size_t idx) {
  char name[32];
  snprintf(name, sizeof(name), "/shard-%02zu", idx);
  return dir + name;
}

std::string header_line() {
  util::Json h{util::Json::Object{}};
  h.set("schema", api::kEqCacheSchema);
  return h.dump();
}

bool write_all(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    off += size_t(n);
  }
  return true;
}

// One serialized record line (checksummed body + trailing newline) — the
// single source of the on-disk record format, shared by append() and
// compact() so a compacted record round-trips byte-identically.
std::string record_line(uint64_t hash, uint64_t fp, uint64_t ofp, Verdict v,
                        const interp::InputSpec* cex) {
  util::Json body{util::Json::Object{}};
  body.set("h", hash);
  body.set("fp", fp);
  body.set("ofp", ofp);
  body.set("v", verdict_name(v));
  if (v == Verdict::NOT_EQUAL && cex) body.set("cex", input_spec_to_json(*cex));
  std::string body_str = body.dump();
  util::Json line{util::Json::Object{}};
  line.set("ck", fnv1a64(body_str));
  line.set("rec", std::move(body));
  std::string out = line.dump();
  out.push_back('\n');
  return out;
}

}  // namespace

size_t CacheStore::shard_index(uint64_t hash) {
  static_assert((kShards & (kShards - 1)) == 0, "kShards: power of two");
  constexpr int kShift = 64 - std::countr_zero(kShards);
  return (hash >> kShift) & (kShards - 1);
}

CacheStore::~CacheStore() {
  if (!shards_) return;
  for (size_t i = 0; i < kShards; ++i)
    if (shards_[i].fd >= 0) ::close(shards_[i].fd);
}

bool CacheStore::open(const std::string& dir, std::string* error) {
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    if (error)
      *error = "cannot create cache dir " + dir + ": " + strerror(errno);
    return false;
  }
  const std::string header = header_line();
  shards_ = std::make_unique<ShardFile[]>(kShards);
  for (size_t i = 0; i < kShards; ++i) {
    const std::string path = shard_path(dir, i);
    // Read the whole shard file and keep the longest valid prefix.
    std::string contents;
    {
      int fd = ::open(path.c_str(), O_RDONLY | O_CREAT, 0666);
      if (fd < 0) {
        if (error)
          *error = "cannot open " + path + ": " + strerror(errno);
        return false;
      }
      char buf[1 << 16];
      ssize_t n;
      while ((n = ::read(fd, buf, sizeof(buf))) > 0)
        contents.append(buf, size_t(n));
      ::close(fd);
    }

    size_t valid_end = 0;  // byte offset one past the last valid line
    bool reset = false;
    size_t pos = 0;
    size_t line_no = 0;
    while (pos < contents.size()) {
      size_t nl = contents.find('\n', pos);
      if (nl == std::string::npos) break;  // torn tail (no newline): drop
      std::string_view line(contents.data() + pos, nl - pos);
      line_no++;
      if (line_no == 1) {
        if (line != header) {
          // Missing or foreign-version header: the whole file is unusable
          // under this schema. Reset it — verdicts are recomputable.
          reset = true;
          std::lock_guard<std::mutex> lock(stats_mu_);
          stats_.reset_shards++;
        }
        pos = nl + 1;
        if (reset) break;
        valid_end = pos;
        continue;
      }
      Record rec;
      bool ok = false;
      try {
        util::Json j = util::Json::parse(line);
        const util::Json& body = j.at("rec");
        // The checksum covers the re-serialized record body; Json preserves
        // field order and integer-ness, so a clean line round-trips to the
        // exact bytes that were summed at append time.
        if (j.at("ck").as_uint() == fnv1a64(body.dump())) {
          rec.hash = body.at("h").as_uint();
          rec.fp = body.at("fp").as_uint();
          rec.ofp = body.at("ofp").as_uint();
          if (verdict_from_name(body.at("v").as_string(), &rec.verdict) &&
              rec.verdict != Verdict::UNKNOWN) {
            if (const util::Json* c = body.get("cex"))
              rec.cex = std::make_shared<interp::InputSpec>(
                  input_spec_from_json(*c));
            ok = true;
          }
        }
      } catch (const std::exception&) {
        ok = false;
      }
      if (!ok) break;  // first bad line: drop it and everything after
      records_.push_back(std::move(rec));
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.loaded++;
      }
      pos = nl + 1;
      valid_end = pos;
    }
    if (!reset && valid_end < contents.size()) {
      // Count the dropped tail (for observability) before healing it away.
      std::lock_guard<std::mutex> lock(stats_mu_);
      for (size_t p = valid_end; p < contents.size(); ++p)
        if (contents[p] == '\n') stats_.dropped++;
      if (contents.back() != '\n') stats_.dropped++;  // torn final line
    }

    // Re-materialize the file: reset (header only), heal (truncate to the
    // valid prefix), or just ensure the header exists in a fresh file.
    if (reset || valid_end == 0) {
      int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
      if (fd < 0 || !write_all(fd, header.c_str(), header.size()) ||
          !write_all(fd, "\n", 1)) {
        if (fd >= 0) ::close(fd);
        if (error)
          *error = "cannot initialize " + path + ": " + strerror(errno);
        return false;
      }
      ::close(fd);
    } else if (valid_end < contents.size()) {
      if (::truncate(path.c_str(), off_t(valid_end)) != 0) {
        if (error)
          *error = "cannot truncate " + path + ": " + strerror(errno);
        return false;
      }
    }

    shards_[i].fd = ::open(path.c_str(), O_WRONLY | O_APPEND, 0666);
    if (shards_[i].fd < 0) {
      if (error)
        *error = "cannot reopen " + path + ": " + strerror(errno);
      return false;
    }
  }
  dir_ = dir;
  return true;
}

void CacheStore::append(uint64_t hash, uint64_t fp, uint64_t ofp, Verdict v,
                        const interp::InputSpec* cex) {
  if (!is_open() || v == Verdict::UNKNOWN) return;
  std::string out = record_line(hash, fp, ofp, v, cex);
  ShardFile& sf = shards_[shard_index(hash)];
  std::lock_guard<std::mutex> lock(sf.mu);
  // One write() per record: O_APPEND makes the offset positioning atomic,
  // so concurrent appenders (other threads or processes sharing the dir)
  // never interleave mid-line.
  if (write_all(sf.fd, out.data(), out.size())) {
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.appended++;
  }
}

CacheStore::Stats CacheStore::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

bool CacheStore::compact(const std::string& dir, CompactionStats* out,
                         std::string* error) {
  // Deduplicate with first-appearance ordering and last-writer-wins
  // content: later duplicates overwrite the earlier record in place, so
  // each key survives exactly once with the newest verdict — the same
  // final map any loader builds from the uncompacted log.
  std::vector<Record> survivors;
  {
    CacheStore store;
    if (!store.open(dir, error)) return false;
    const std::vector<Record>& recs = store.records();
    if (out) out->records_before = recs.size();
    std::map<std::tuple<uint64_t, uint64_t, uint64_t>, size_t> index;
    for (const Record& r : recs) {
      const auto key = std::make_tuple(r.hash, r.fp, r.ofp);
      auto [it, fresh] = index.emplace(key, survivors.size());
      if (fresh)
        survivors.push_back(r);
      else
        survivors[it->second] = r;
    }
  }  // store's O_APPEND descriptors close before the rewrite below
  if (out) out->records_after = survivors.size();

  const std::string header = header_line();
  for (size_t i = 0; i < kShards; ++i) {
    const std::string path = shard_path(dir, i);
    const std::string tmp = path + ".compact";
    std::string contents = header + "\n";
    for (const Record& r : survivors)
      if (shard_index(r.hash) == i)
        contents += record_line(r.hash, r.fp, r.ofp, r.verdict, r.cex.get());
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
    if (fd < 0) {
      if (error) *error = "cannot create " + tmp + ": " + strerror(errno);
      return false;
    }
    const bool ok = write_all(fd, contents.data(), contents.size());
    ::close(fd);
    if (!ok) {
      if (error) *error = "cannot write " + tmp + ": " + strerror(errno);
      ::unlink(tmp.c_str());
      return false;
    }
    // Atomic swap: a reader (or a crash) sees either the old shard or the
    // complete compacted one, never a partial rewrite.
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
      if (error) *error = "cannot replace " + path + ": " + strerror(errno);
      ::unlink(tmp.c_str());
      return false;
    }
  }
  return true;
}

uint64_t CacheStore::options_fingerprint(const EqOptions& eq,
                                         bool window_mode) {
  std::string s = eq_options_to_json(eq).dump();
  s += window_mode ? "|window" : "|whole";
  return fnv1a64(s);
}

}  // namespace k2::verify
