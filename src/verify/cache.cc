#include "verify/cache.h"

#include "analysis/dce.h"

namespace k2::verify {

uint64_t EqCache::key_for(const ebpf::Program& src,
                          const ebpf::Program& cand) {
  uint64_t h1 = analysis::program_hash(src);
  uint64_t h2 = analysis::program_hash(analysis::canonicalize(cand));
  // 64-bit mix (xorshift-multiply) of the two hashes.
  uint64_t x = h1 ^ (h2 + 0x9e3779b97f4a7c15ull + (h1 << 6) + (h1 >> 2));
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return x;
}

std::optional<Verdict> EqCache::lookup(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    stats_.misses++;
    return std::nullopt;
  }
  stats_.hits++;
  return it->second;
}

void EqCache::insert(uint64_t key, Verdict v) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.insertions++;
  map_[key] = v;
}

EqCache::Stats EqCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void EqCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  stats_ = Stats{};
}

}  // namespace k2::verify
