#include "verify/cache.h"

#include "analysis/dce.h"
#include "verify/cache_store.h"

namespace k2::verify {

namespace {

// 64-bit mix (xorshift-multiply) of two hashes.
uint64_t mix64(uint64_t h1, uint64_t h2) {
  uint64_t x = h1 ^ (h2 + 0x9e3779b97f4a7c15ull + (h1 << 6) + (h1 >> 2));
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return x;
}

}  // namespace

// ---- PendingVerdict --------------------------------------------------------

std::optional<EqResult> PendingVerdict::poll() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != State::DONE) return std::nullopt;
  return result_;
}

EqResult PendingVerdict::wait() const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return state_ == State::DONE; });
  return *result_;
}

PendingVerdict::State PendingVerdict::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

void PendingVerdict::join() {
  std::lock_guard<std::mutex> lock(mu_);
  waiters_++;
  cancelled_ = false;  // a fresh waiter revives a not-yet-abandoned cancel
}

void PendingVerdict::release() {
  std::lock_guard<std::mutex> lock(mu_);
  if (waiters_ > 0) waiters_--;
  if (waiters_ == 0 && state_ == State::WAITING) cancelled_ = true;
}

// ---- EqCache ---------------------------------------------------------------

EqCache::Key EqCache::key_for(const ebpf::Program& src,
                              const ebpf::Program& cand) {
  ebpf::Program canon = analysis::canonicalize(cand);
  Key key;
  key.hash = mix64(analysis::program_hash(src), analysis::program_hash(canon));
  key.fp =
      mix64(analysis::program_hash2(src), analysis::program_hash2(canon));
  return key;
}

std::optional<Verdict> EqCache::lookup(const Key& key, Hit* info) {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(key.hash);
  if (it == s.map.end() || it->second.pending != nullptr) {
    // Absent, or still in flight: the synchronous path does not wait.
    s.stats.misses++;
    return std::nullopt;
  }
  if (it->second.fp != key.fp) {
    // Primary-key collision with a different program: answering would hand
    // the caller the other program's verdict.
    s.stats.collisions++;
    s.stats.misses++;
    return std::nullopt;
  }
  s.stats.hits++;
  if (it->second.disk) s.stats.disk_hits++;
  if (info) {
    info->from_disk = it->second.disk;
    // Replay-once: the persisted counterexample is handed to the first hit
    // and cleared, mirroring the single solve that produced it cold.
    info->replay_cex = std::move(it->second.cex);
    it->second.cex = nullptr;
  }
  return it->second.verdict;
}

void EqCache::insert(const Key& key, Verdict v, const interp::InputSpec* cex) {
  Shard& s = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.stats.insertions++;
    s.map[key.hash] = Entry{key.fp, v, nullptr};  // collisions: last writer wins
    if (store_ && v != Verdict::UNKNOWN) s.stats.disk_writes++;
  }
  // Write-through outside the shard lock: the store has its own striping,
  // and a slow disk must not serialize cache readers. UNKNOWN stays
  // memory-only (and the store refuses it anyway).
  if (store_ && v != Verdict::UNKNOWN)
    store_->append(key.hash, key.fp, store_ofp_, v, cex);
}

EqCache::Claim EqCache::claim(const Key& key) {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  Claim cl;
  auto it = s.map.find(key.hash);
  if (it != s.map.end()) {
    if (it->second.pending) {
      if (it->second.fp == key.fp) {
        // The same program's query is in flight: share it.
        it->second.pending->join();
        s.stats.pending_joins++;
        cl.pending = it->second.pending;
        return cl;
      }
      // Primary-key collision with a DIFFERENT program's in-flight query:
      // joining would adopt that program's verdict — the exact wrong-verdict
      // hole the fingerprint exists to close. The slot is busy, so the
      // caller must solve without the cache (empty Claim).
      s.stats.collisions++;
      s.stats.misses++;
      return cl;
    }
    if (it->second.fp == key.fp) {
      s.stats.hits++;
      if (it->second.disk) s.stats.disk_hits++;
      cl.verdict = it->second.verdict;
      cl.from_disk = it->second.disk;
      cl.replay_cex = std::move(it->second.cex);  // replay-once (see lookup)
      it->second.cex = nullptr;
      return cl;
    }
    s.stats.collisions++;
    // Fall through: treat as a miss and take ownership of the slot.
  }
  s.stats.misses++;
  cl.pending = std::make_shared<PendingVerdict>();
  cl.owner = true;
  s.map[key.hash] = Entry{key.fp, Verdict::UNKNOWN, cl.pending};
  return cl;
}

void EqCache::publish(const Key& key, const PendingHandle& pv, EqResult r) {
  Shard& s = shard_for(key);
  // Capture what write-through needs before the result is moved into the
  // PendingVerdict. Persisting does not depend on the slot still backing
  // this query: the verdict is settled either way.
  const bool persist = store_ && r.verdict != Verdict::UNKNOWN;
  const Verdict verdict = r.verdict;
  std::optional<interp::InputSpec> cex_copy;
  if (persist && r.cex) cex_copy = *r.cex;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key.hash);
    // Only touch the slot if it still backs this query (a sync insert() may
    // have overwritten it meanwhile).
    if (it != s.map.end() && it->second.pending == pv) {
      if (r.verdict == Verdict::UNKNOWN) {
        // Solver budget exhausted: transient, do not poison the cache.
        s.map.erase(it);
      } else {
        s.stats.insertions++;
        it->second.verdict = r.verdict;
        it->second.pending = nullptr;
      }
    }
    if (persist) s.stats.disk_writes++;
    std::lock_guard<std::mutex> plock(pv->mu_);
    pv->state_ = PendingVerdict::State::DONE;
    pv->result_ = std::move(r);
  }
  pv->cv_.notify_all();
  if (persist)
    store_->append(key.hash, key.fp, store_ofp_, verdict,
                   cex_copy ? &*cex_copy : nullptr);
}

bool EqCache::acquire_for_solve(const Key& key, const PendingHandle& pv) {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  std::lock_guard<std::mutex> plock(pv->mu_);
  if (pv->state_ == PendingVerdict::State::WAITING && !pv->cancelled_) {
    pv->state_ = PendingVerdict::State::RUNNING;
    return true;
  }
  pv->state_ = PendingVerdict::State::ABANDONED;
  auto it = s.map.find(key.hash);
  if (it != s.map.end() && it->second.pending == pv) s.map.erase(it);
  s.stats.pending_abandons++;
  return false;
}

void EqCache::attach_store(CacheStore* store, uint64_t ofp) {
  store_ = store;
  store_ofp_ = ofp;
  if (!store) return;
  uint64_t loaded = 0;
  for (const CacheStore::Record& rec : store->records()) {
    if (rec.ofp != ofp) continue;  // settled under a different configuration
    Key key{rec.hash, rec.fp};
    Shard& s = shard_for(key);
    std::lock_guard<std::mutex> lock(s.mu);
    // Last writer wins on duplicate hashes, mirroring insert(); the
    // fingerprint stays alongside and is confirmed on every hit.
    s.map[key.hash] = Entry{rec.fp, rec.verdict, nullptr, true, rec.cex};
    loaded++;
  }
  // Attribute the seeded count to shard 0: Stats are only ever aggregated.
  std::lock_guard<std::mutex> lock(shards_[0].mu);
  shards_[0].stats.disk_loaded += loaded;
}

EqCache::Snapshot EqCache::snapshot() const {
  // Hold every shard at once (in index order — the only multi-shard lock
  // path, so no ordering conflict with the single-shard operations) so the
  // stats total and the pending count describe the same instant. A
  // shard-at-a-time walk could count a query as pending in shard 3 after
  // already having missed its publication in shard 3's stats — the torn
  // totals the serve stats/metrics ops must never report.
  std::array<std::unique_lock<std::mutex>, kShards> locks;
  for (size_t i = 0; i < kShards; ++i)
    locks[i] = std::unique_lock<std::mutex>(shards_[i].mu);
  Snapshot snap;
  for (const Shard& s : shards_) {
    snap.stats.hits += s.stats.hits;
    snap.stats.misses += s.stats.misses;
    snap.stats.insertions += s.stats.insertions;
    snap.stats.collisions += s.stats.collisions;
    snap.stats.pending_joins += s.stats.pending_joins;
    snap.stats.pending_abandons += s.stats.pending_abandons;
    snap.stats.disk_hits += s.stats.disk_hits;
    snap.stats.disk_loaded += s.stats.disk_loaded;
    snap.stats.disk_writes += s.stats.disk_writes;
    for (const auto& [hash, entry] : s.map)
      if (entry.pending) snap.pending++;
  }
  return snap;
}

EqCache::Stats EqCache::stats() const { return snapshot().stats; }

size_t EqCache::pending_count() const { return snapshot().pending; }

void EqCache::clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.map.clear();
    s.stats = Stats{};
  }
}

}  // namespace k2::verify
