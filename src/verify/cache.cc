#include "verify/cache.h"

#include "analysis/dce.h"

namespace k2::verify {

namespace {

// 64-bit mix (xorshift-multiply) of two hashes.
uint64_t mix64(uint64_t h1, uint64_t h2) {
  uint64_t x = h1 ^ (h2 + 0x9e3779b97f4a7c15ull + (h1 << 6) + (h1 >> 2));
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return x;
}

}  // namespace

EqCache::Key EqCache::key_for(const ebpf::Program& src,
                              const ebpf::Program& cand) {
  ebpf::Program canon = analysis::canonicalize(cand);
  Key key;
  key.hash = mix64(analysis::program_hash(src), analysis::program_hash(canon));
  key.fp =
      mix64(analysis::program_hash2(src), analysis::program_hash2(canon));
  return key;
}

std::optional<Verdict> EqCache::lookup(const Key& key) {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(key.hash);
  if (it == s.map.end()) {
    s.stats.misses++;
    return std::nullopt;
  }
  if (it->second.fp != key.fp) {
    // Primary-key collision with a different program: answering would hand
    // the caller the other program's verdict.
    s.stats.collisions++;
    s.stats.misses++;
    return std::nullopt;
  }
  s.stats.hits++;
  return it->second.verdict;
}

void EqCache::insert(const Key& key, Verdict v) {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  s.stats.insertions++;
  s.map[key.hash] = Entry{key.fp, v};  // collisions: last writer wins
}

EqCache::Stats EqCache::stats() const {
  Stats total;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    total.hits += s.stats.hits;
    total.misses += s.stats.misses;
    total.insertions += s.stats.insertions;
    total.collisions += s.stats.collisions;
  }
  return total;
}

void EqCache::clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.map.clear();
    s.stats = Stats{};
  }
}

}  // namespace k2::verify
