#include "verify/solver_dispatch.h"

namespace k2::verify {

AsyncSolverDispatcher::AsyncSolverDispatcher(int workers) {
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

AsyncSolverDispatcher::~AsyncSolverDispatcher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  // No workers (sync mode) or tasks submitted after stop: drain here so
  // every queued PendingVerdict still reaches a terminal state.
  Task t;
  while (next_task(t)) run_task(t);
}

void AsyncSolverDispatcher::submit(EqCache& cache, const EqCache::Key& key,
                                   PendingHandle pv, Solve solve) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Task{&cache, key, std::move(pv), std::move(solve)});
    stats_.submitted++;
    stats_.queue_depth = queue_.size();
    if (stats_.queue_depth > stats_.queue_peak)
      stats_.queue_peak = stats_.queue_depth;
  }
  cv_.notify_one();
}

void AsyncSolverDispatcher::submit(EqCache& cache, const EqCache::Key& key,
                                   PendingHandle pv, SolveQuery query,
                                   SolverBackend* backend) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Task{&cache, key, std::move(pv), Solve{},
                          std::move(query), backend});
    stats_.submitted++;
    stats_.queue_depth = queue_.size();
    if (stats_.queue_depth > stats_.queue_peak)
      stats_.queue_peak = stats_.queue_depth;
  }
  cv_.notify_one();
}

void AsyncSolverDispatcher::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return queue_.empty() && inflight_ == 0; });
}

void AsyncSolverDispatcher::cancel(const PendingHandle& pv) {
  if (pv) pv->release();
}

AsyncSolverDispatcher::Stats AsyncSolverDispatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

bool AsyncSolverDispatcher::next_task(Task& out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return false;
  out = std::move(queue_.front());
  queue_.pop_front();
  stats_.queue_depth = queue_.size();
  return true;
}

void AsyncSolverDispatcher::run_task(Task& t) {
  if (!t.cache->acquire_for_solve(t.key, t.pv)) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.abandoned++;
    return;
  }
  EqResult r;
  try {
    if (t.query)
      r = t.backend ? t.backend->solve(*t.query)
                    : solve_query_local(*t.query);
    else
      r = t.solve();
  } catch (const std::exception& e) {
    // A solver exception (e.g. z3::exception on resource exhaustion) must
    // not take down the worker or strand the waiters: map it to UNKNOWN,
    // which is never cached, so the query stays retryable.
    r.verdict = Verdict::UNKNOWN;
    r.detail = e.what();
  }
  bool timed_out = r.verdict == Verdict::UNKNOWN;
  t.cache->publish(t.key, t.pv, std::move(r));
  std::lock_guard<std::mutex> lock(mu_);
  stats_.completed++;
  if (timed_out) stats_.timeouts++;
}

void AsyncSolverDispatcher::worker_loop() {
  for (;;) {
    Task t;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ && drained
      t = std::move(queue_.front());
      queue_.pop_front();
      stats_.queue_depth = queue_.size();
      inflight_++;
    }
    run_task(t);
    {
      std::lock_guard<std::mutex> lock(mu_);
      inflight_--;
    }
    cv_.notify_all();  // wakes drain() (and fellow workers, harmlessly)
  }
}

}  // namespace k2::verify
