// Full-program equivalence checking (§4): dispatches the satisfiability
// query "inputs equal ∧ both programs' input-output behaviour ∧ outputs
// differ" to Z3. SAT yields a counterexample input (converted back to an
// interpreter InputSpec and added to the test suite by the search loop);
// UNSAT proves input-output equivalence.
#pragma once

#include <optional>
#include <string>

#include "ebpf/program.h"
#include "interp/state.h"
#include "verify/encoder.h"

namespace k2::verify {

enum class Verdict : uint8_t {
  EQUAL,
  NOT_EQUAL,
  UNKNOWN,      // solver timeout / gave up
  ENCODE_FAIL,  // candidate not encodable (untypeable access etc.)
};

const char* verdict_name(Verdict v);

struct EqOptions {
  EncoderOpts enc;
  unsigned timeout_ms = 20000;
};

struct EqResult {
  Verdict verdict = Verdict::UNKNOWN;
  std::optional<interp::InputSpec> cex;  // present when NOT_EQUAL
  double encode_ms = 0;
  double solve_ms = 0;
  std::string detail;
};

// Checks input-output equivalence of `src` and `cand`. The two programs must
// share the hook type and map definitions (candidates are rewrites of the
// source, so they always do). Programs are assumed safe — the safety checker
// runs first in the search loop (§6), so faults need not be modeled.
EqResult check_equivalence(const ebpf::Program& src, const ebpf::Program& cand,
                           const EqOptions& opts = {});

// Extracts a concrete InputSpec from a model (also used by the safety
// checker for safety counterexamples).
interp::InputSpec input_from_model(const World& world, z3::model& model);

}  // namespace k2::verify
