// Full-program equivalence checking (§4): dispatches the satisfiability
// query "inputs equal ∧ both programs' input-output behaviour ∧ outputs
// differ" to Z3. SAT yields a counterexample input (converted back to an
// interpreter InputSpec and added to the test suite by the search loop);
// UNSAT proves input-output equivalence.
#pragma once

#include <optional>
#include <string>

#include "ebpf/program.h"
#include "interp/state.h"
#include "verify/encoder.h"

namespace k2::verify {

enum class Verdict : uint8_t {
  EQUAL,
  NOT_EQUAL,
  UNKNOWN,      // solver timeout / gave up
  ENCODE_FAIL,  // candidate not encodable (untypeable access etc.)
};

const char* verdict_name(Verdict v);

// Per-query solver budgets. `timeout_ms` bounds wall-clock time inside one
// Z3 check; `memory_max_mb` bounds that check's Z3 heap (0 = unlimited).
// Exhausting either budget yields Verdict::UNKNOWN, which callers treat as
// "not proven equal". The async dispatch path never caches UNKNOWN (see
// EqCache::publish in verify/cache.h), so a starved query can be retried
// under the same key; the synchronous path deliberately keeps PR 1's
// cache-every-verdict behavior — it is differentially pinned bit-identical
// to the legacy inline evaluation, UNKNOWNs included.
struct EqOptions {
  EncoderOpts enc;
  unsigned timeout_ms = 20000;
  unsigned memory_max_mb = 0;
};

struct EqResult {
  Verdict verdict = Verdict::UNKNOWN;
  std::optional<interp::InputSpec> cex;  // present when NOT_EQUAL
  double encode_ms = 0;
  double solve_ms = 0;
  std::string detail;
};

// Checks input-output equivalence of `src` and `cand`. The two programs must
// share the hook type and map definitions (candidates are rewrites of the
// source, so they always do). Programs are assumed safe — the safety checker
// runs first in the search loop (§6), so faults need not be modeled.
//
// Blocking + thread-safety: blocks the calling thread for up to the
// timeout_ms budget inside one Z3 check. Each call owns a private
// z3::context, so concurrent calls from different threads (the
// AsyncSolverDispatcher workers) are safe and independent.
EqResult check_equivalence(const ebpf::Program& src, const ebpf::Program& cand,
                           const EqOptions& opts = {});

// Extracts a concrete InputSpec from a model (also used by the safety
// checker for safety counterexamples).
interp::InputSpec input_from_model(const World& world, z3::model& model);

}  // namespace k2::verify
