#include "verify/eqchecker.h"

#include <chrono>

namespace k2::verify {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

uint64_t eval_u64(z3::model& m, const z3::expr& e) {
  z3::expr v = m.eval(e, /*model_completion=*/true);
  uint64_t out = 0;
  if (!v.is_numeral()) return 0;
  // get_numeral_uint64 handles up to 64 bits.
  out = v.get_numeral_uint64();
  return out;
}

bool eval_bool(z3::model& m, const z3::expr& e) {
  z3::expr v = m.eval(e, true);
  return v.is_true();
}

}  // namespace

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::EQUAL: return "equal";
    case Verdict::NOT_EQUAL: return "not-equal";
    case Verdict::UNKNOWN: return "unknown";
    case Verdict::ENCODE_FAIL: return "encode-fail";
  }
  return "?";
}

interp::InputSpec input_from_model(const World& world, z3::model& model) {
  interp::InputSpec in;
  uint64_t len = eval_u64(model, world.pkt_len);
  len = std::max<uint64_t>(uint64_t(world.opts.min_pkt),
                           std::min<uint64_t>(len, uint64_t(world.opts.max_pkt)));
  in.packet.resize(len);
  for (uint64_t i = 0; i < len; ++i)
    in.packet[i] = uint8_t(eval_u64(model, world.pkt_init[size_t(i)]));
  in.ktime_base = eval_u64(model, world.ktime_base);
  in.prandom_seed = eval_u64(model, world.rand_seed);
  in.cpu_id = uint32_t(eval_u64(model, world.cpu_id) & 1023);
  in.ctx_args[0] = eval_u64(model, world.ctx_arg0);
  in.ctx_args[1] = eval_u64(model, world.ctx_arg1);
  for (size_t fd = 0; fd < world.oracle.size(); ++fd) {
    const ebpf::MapDef& def = world.maps[fd];
    for (const auto& entry : world.oracle[fd]) {
      if (!eval_bool(model, entry.present)) continue;
      uint64_t key = eval_u64(model, entry.key);
      interp::MapEntryInit e;
      e.key.resize(def.key_size);
      for (uint32_t b = 0; b < def.key_size; ++b)
        e.key[b] = uint8_t((key >> (8 * b)) & 0xff);
      e.value.resize(def.value_size);
      for (uint32_t b = 0; b < def.value_size; ++b)
        e.value[b] = uint8_t(eval_u64(model, entry.val_bytes[b]));
      // Consistency axioms make duplicate keys agree; skip repeats.
      bool dup = false;
      for (const auto& prev : in.maps[int(fd)])
        if (prev.key == e.key) dup = true;
      if (!dup) in.maps[int(fd)].push_back(std::move(e));
    }
  }
  return in;
}

EqResult check_equivalence(const ebpf::Program& src, const ebpf::Program& cand,
                           const EqOptions& opts) {
  EqResult res;
  auto t0 = Clock::now();
  z3::context c;
  World world(c, src, opts.enc);

  // Shared witness keys for final-map-state equality.
  std::vector<z3::expr> witness;
  for (size_t fd = 0; fd < src.maps.size(); ++fd)
    witness.push_back(
        world.fresh_bv("witness_key" + std::to_string(fd),
                       src.maps[fd].key_size * 8));

  Encoded e1 = encode_program(world, src, "src", witness);
  Encoded e2 = encode_program(world, cand, "cand", witness);
  res.encode_ms = ms_since(t0);
  if (!e1.ok || !e2.ok) {
    res.verdict = Verdict::ENCODE_FAIL;
    res.detail = !e1.ok ? "src: " + e1.error : "cand: " + e2.error;
    return res;
  }

  z3::solver s(c);
  z3::params p(c);
  p.set("timeout", opts.timeout_ms);
  if (opts.memory_max_mb) p.set("max_memory", opts.memory_max_mb);
  s.set(p);
  for (const auto& a : world.axioms) s.add(a);
  for (const auto& d : e1.defs) s.add(d);
  for (const auto& d : e2.defs) s.add(d);

  // outputs differ?
  z3::expr outputs_equal = (e1.r0 == e2.r0);
  if (src.type != ebpf::ProgType::TRACEPOINT) {
    outputs_equal = outputs_equal && (e1.pkt_len_out == e2.pkt_len_out);
    size_t npkt = std::max(e1.final_pkt_bytes.size(),
                           e2.final_pkt_bytes.size());
    for (size_t j = 0; j < npkt; ++j) {
      // Bytes past a program's modeled window are zero (no adjust_head).
      z3::expr b1 = j < e1.final_pkt_bytes.size() ? e1.final_pkt_bytes[j]
                                                  : c.bv_val(0, 8);
      z3::expr b2 = j < e2.final_pkt_bytes.size() ? e2.final_pkt_bytes[j]
                                                  : c.bv_val(0, 8);
      z3::expr in_range = z3::ult(c.bv_val(uint64_t(j), 64), e1.pkt_len_out);
      outputs_equal = outputs_equal && z3::implies(in_range, b1 == b2);
    }
  }
  for (size_t fd = 0; fd < src.maps.size(); ++fd) {
    const MapFinal& m1 = e1.map_finals[fd];
    const MapFinal& m2 = e2.map_finals[fd];
    z3::expr p1 = m1.addr != c.bv_val(uint64_t(0), 64);
    z3::expr p2 = m2.addr != c.bv_val(uint64_t(0), 64);
    outputs_equal = outputs_equal && (p1 == p2);
    for (size_t j = 0; j < m1.bytes.size(); ++j)
      outputs_equal =
          outputs_equal && z3::implies(p1, m1.bytes[j] == m2.bytes[j]);
  }
  s.add(!outputs_equal);

  auto t1 = Clock::now();
  z3::check_result r = s.check();
  res.solve_ms = ms_since(t1);
  switch (r) {
    case z3::unsat:
      res.verdict = Verdict::EQUAL;
      break;
    case z3::sat: {
      res.verdict = Verdict::NOT_EQUAL;
      z3::model m = s.get_model();
      res.cex = input_from_model(world, m);
      break;
    }
    default:
      res.verdict = Verdict::UNKNOWN;
      res.detail = s.reason_unknown();
      break;
  }
  return res;
}

}  // namespace k2::verify
