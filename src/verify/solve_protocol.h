// The `k2-solve/v1` wire protocol: newline-delimited JSON spoken between a
// RemoteSolverBackend (client side, src/verify/solver_backend.h) and a
// `k2c solve-worker` process (server side, the SolveWorker below). One
// request object per line in, one reply object per line out, in request
// order — the same NDJSON discipline as `k2c serve` (k2-serve/v1), so both
// protocols ride the same transport pumps (stdio or a unix-domain socket).
//
// Ops:
//   {"op":"hello"}                       → {"ok":true,"protocol":
//                                           "k2-solve/v1","ops":[...]}
//   {"op":"solve","id":N,"src":P,"cand":P,
//    "win":{"start":s,"end":e}?,"eq":O}  → {"ok":true,"id":N,"verdict":
//                                           "equal|not-equal|unknown|
//                                           encode-fail","cex":I?,
//                                           "encode_ms":d,"solve_ms":d,
//                                           "detail":str}
//   {"op":"cancel","id":N}               → {"ok":true,"id":N,
//                                           "cancelled":false}
//   {"op":"shutdown"}                    → {"ok":true} and the loop ends
//
// The worker is synchronous (one query at a time, blocking inside Z3 for up
// to the query's own timeout budget), so by the time a cancel line is read
// the solve it names has already been answered — cancel exists for protocol
// completeness and always acks with "cancelled":false. Malformed lines and
// unknown ops get {"ok":false,"error":...} replies; the loop only ends on
// shutdown or EOF.
//
// Program encoding P: {"type":"xdp|socket|trace","insns":[[op,dst,src,off,
// imm],...],"maps":[{"name",...}]} — or, accepted on parse only, {"asm":
// "...","type":...,"maps":[...]} assembled via ebpf::assemble (hand-written
// protocol smokes want readable programs). InputSpec encoding I uses
// lowercase-hex byte strings. All converters below are exact inverses on
// the canonical (non-asm) encoding and throw std::runtime_error on
// malformed input; they are shared with the on-disk equivalence-cache store
// (verify/cache_store.h), which persists counterexamples in the same
// format.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "ebpf/program.h"
#include "interp/state.h"
#include "util/json.h"
#include "verify/eqchecker.h"

namespace k2::verify {

// ---- JSON converters (wire protocol + cache store) -------------------------

util::Json program_to_json(const ebpf::Program& prog);
ebpf::Program program_from_json(const util::Json& j);

util::Json input_spec_to_json(const interp::InputSpec& in);
interp::InputSpec input_spec_from_json(const util::Json& j);

util::Json eq_options_to_json(const EqOptions& opts);
EqOptions eq_options_from_json(const util::Json& j);

// The full EqResult as reply fields (verdict/cex/encode_ms/solve_ms/detail),
// merged into an existing reply object by the worker.
util::Json eq_result_to_json(const EqResult& r);
EqResult eq_result_from_json(const util::Json& j);

// Inverse of verdict_name(); false on an unknown string.
bool verdict_from_name(std::string_view name, Verdict* out);

// Lowercase-hex byte strings (the byte encoding used on the wire and in the
// cache store). decode throws std::runtime_error on odd length / non-hex.
std::string hex_encode(const std::vector<uint8_t>& bytes);
std::vector<uint8_t> hex_decode(std::string_view hex);

// ---- Worker side -----------------------------------------------------------

// The solve-worker request loop: stateless, one line in → one line out.
// Solving runs in-process via solve_query_local (solver_backend.h) — a
// worker is exactly one remote incarnation of the local solving policy.
class SolveWorker {
 public:
  struct Stats {
    uint64_t solved = 0;  // solve ops answered (any verdict)
    uint64_t errors = 0;  // malformed lines / unknown ops
  };

  // Handles ONE request line and returns the reply line (no trailing
  // newline). Sets *stop on shutdown. Never throws — every failure becomes
  // an {"ok":false,...} reply.
  std::string handle_line(const std::string& line, bool* stop);

  // Reads NDJSON requests from `in`, writes NDJSON replies to `out` (one
  // line per reply, flushed — the client blocks on each reply), until
  // shutdown or EOF. Returns the number of lines handled.
  size_t run(std::istream& in, std::ostream& out);

  const Stats& stats() const { return stats_; }

 private:
  Stats stats_;
};

}  // namespace k2::verify
