// Z3 instantiation of the shared instruction semantics (ebpf/semantics.h).
// The same templated alu_apply/jmp_test that drive the interpreter drive
// this backend, so the interpreter and the verification-condition generator
// cannot drift apart (§7).
#pragma once

#include <z3++.h>

#include <cstdint>

namespace k2::verify {

struct Z3Backend {
  z3::context& c;
  using V = z3::expr;
  using B = z3::expr;

  explicit Z3Backend(z3::context& ctx) : c(ctx) {}

  V const_(uint64_t v) { return c.bv_val(v, 64); }
  V add(V a, V b) { return a + b; }
  V sub(V a, V b) { return a - b; }
  V mul(V a, V b) { return a * b; }
  V udiv_total(V a, V b) {
    return z3::ite(b == const_(0), const_(0), z3::udiv(a, b));
  }
  V urem_total(V a, V b) { return z3::ite(b == const_(0), a, z3::urem(a, b)); }
  V and_(V a, V b) { return a & b; }
  V or_(V a, V b) { return a | b; }
  V xor_(V a, V b) { return a ^ b; }
  V shl(V a, V b) { return z3::shl(a, b); }
  V lshr(V a, V b) { return z3::lshr(a, b); }
  V ashr(V a, V b) { return z3::ashr(a, b); }
  V lo32(V a) { return z3::zext(a.extract(31, 0), 32); }
  V sext_lo32(V a) { return z3::sext(a.extract(31, 0), 32); }
  V bswap16(V a) {
    return z3::zext(z3::concat(a.extract(7, 0), a.extract(15, 8)), 48);
  }
  V bswap32(V a) {
    return z3::zext(
        z3::concat(z3::concat(a.extract(7, 0), a.extract(15, 8)),
                   z3::concat(a.extract(23, 16), a.extract(31, 24))),
        32);
  }
  V bswap64(V a) {
    z3::expr lo = z3::concat(z3::concat(a.extract(7, 0), a.extract(15, 8)),
                             z3::concat(a.extract(23, 16), a.extract(31, 24)));
    z3::expr hi =
        z3::concat(z3::concat(a.extract(39, 32), a.extract(47, 40)),
                   z3::concat(a.extract(55, 48), a.extract(63, 56)));
    return z3::concat(lo, hi);
  }

  B eq(V a, V b) { return a == b; }
  B ne(V a, V b) { return a != b; }
  B ult(V a, V b) { return z3::ult(a, b); }
  B ule(V a, V b) { return z3::ule(a, b); }
  B ugt(V a, V b) { return z3::ugt(a, b); }
  B uge(V a, V b) { return z3::uge(a, b); }
  B slt(V a, V b) { return a < b; }
  B sle(V a, V b) { return a <= b; }
  B sgt(V a, V b) { return a > b; }
  B sge(V a, V b) { return a >= b; }
  B set(V a, V b) { return (a & b) != const_(0); }

  V ite(B cond, V a, V b) { return z3::ite(cond, a, b); }

  // splitmix64, the prandom sequence generator shared with the interpreter.
  V splitmix(V x) {
    x = x + const_(0x9e3779b97f4a7c15ull);
    x = (x ^ lshr(x, const_(30))) * const_(0xbf58476d1ce4e5b9ull);
    x = (x ^ lshr(x, const_(27))) * const_(0x94d049bb133111ebull);
    return x ^ lshr(x, const_(31));
  }
};

}  // namespace k2::verify
