#include "verify/solve_protocol.h"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "api/schema.h"
#include "ebpf/assembler.h"
#include "verify/solver_backend.h"

namespace k2::verify {

namespace {

const char* prog_type_name(ebpf::ProgType t) {
  switch (t) {
    case ebpf::ProgType::SOCKET_FILTER: return "socket";
    case ebpf::ProgType::TRACEPOINT: return "trace";
    default: return "xdp";
  }
}

ebpf::ProgType prog_type_from(const std::string& s) {
  if (s == "xdp") return ebpf::ProgType::XDP;
  if (s == "socket") return ebpf::ProgType::SOCKET_FILTER;
  if (s == "trace") return ebpf::ProgType::TRACEPOINT;
  throw std::runtime_error("unknown program type '" + s + "'");
}

const char* map_kind_name(ebpf::MapKind k) {
  switch (k) {
    case ebpf::MapKind::ARRAY: return "array";
    case ebpf::MapKind::DEVMAP: return "devmap";
    default: return "hash";
  }
}

ebpf::MapKind map_kind_from(const std::string& s) {
  if (s == "hash") return ebpf::MapKind::HASH;
  if (s == "array") return ebpf::MapKind::ARRAY;
  if (s == "devmap") return ebpf::MapKind::DEVMAP;
  throw std::runtime_error("unknown map kind '" + s + "'");
}

std::vector<ebpf::MapDef> maps_from_json(const util::Json& arr) {
  std::vector<ebpf::MapDef> maps;
  for (const util::Json& m : arr.as_array()) {
    ebpf::MapDef def;
    def.name = m.at("name").as_string();
    def.kind = map_kind_from(m.at("kind").as_string());
    def.key_size = uint32_t(m.at("key_size").as_int());
    def.value_size = uint32_t(m.at("value_size").as_int());
    def.max_entries = uint32_t(m.at("max_entries").as_int());
    maps.push_back(std::move(def));
  }
  return maps;
}

// Checked narrowing for instruction fields coming off the wire.
int64_t field_in_range(const util::Json& v, int64_t lo, int64_t hi,
                       const char* what) {
  int64_t x = v.as_int();
  if (x < lo || x > hi)
    throw std::runtime_error(std::string("instruction field ") + what +
                             " out of range");
  return x;
}

}  // namespace

// ---- hex -------------------------------------------------------------------

std::string hex_encode(const std::vector<uint8_t>& bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string s;
  s.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    s.push_back(kHex[b >> 4]);
    s.push_back(kHex[b & 0xf]);
  }
  return s;
}

std::vector<uint8_t> hex_decode(std::string_view hex) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  if (hex.size() % 2 != 0)
    throw std::runtime_error("hex string has odd length");
  std::vector<uint8_t> bytes;
  bytes.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]), lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) throw std::runtime_error("non-hex byte string");
    bytes.push_back(uint8_t(hi << 4 | lo));
  }
  return bytes;
}

// ---- verdict ---------------------------------------------------------------

bool verdict_from_name(std::string_view name, Verdict* out) {
  for (Verdict v : {Verdict::EQUAL, Verdict::NOT_EQUAL, Verdict::UNKNOWN,
                    Verdict::ENCODE_FAIL}) {
    if (name == verdict_name(v)) {
      *out = v;
      return true;
    }
  }
  return false;
}

// ---- Program ---------------------------------------------------------------

util::Json program_to_json(const ebpf::Program& prog) {
  util::Json j{util::Json::Object{}};
  j.set("type", prog_type_name(prog.type));
  util::Json insns{util::Json::Array{}};
  for (const ebpf::Insn& i : prog.insns) {
    util::Json row{util::Json::Array{}};
    row.push_back(int64_t(i.op));
    row.push_back(int64_t(i.dst));
    row.push_back(int64_t(i.src));
    row.push_back(int64_t(i.off));
    row.push_back(i.imm);
    insns.push_back(std::move(row));
  }
  j.set("insns", std::move(insns));
  util::Json maps{util::Json::Array{}};
  for (const ebpf::MapDef& m : prog.maps) {
    util::Json mj{util::Json::Object{}};
    mj.set("name", m.name);
    mj.set("kind", map_kind_name(m.kind));
    mj.set("key_size", int64_t(m.key_size));
    mj.set("value_size", int64_t(m.value_size));
    mj.set("max_entries", int64_t(m.max_entries));
    maps.push_back(std::move(mj));
  }
  j.set("maps", std::move(maps));
  return j;
}

ebpf::Program program_from_json(const util::Json& j) {
  ebpf::ProgType type = ebpf::ProgType::XDP;
  if (const util::Json* t = j.get("type")) type = prog_type_from(t->as_string());
  std::vector<ebpf::MapDef> maps;
  if (const util::Json* m = j.get("maps")) maps = maps_from_json(*m);
  // Alternate encoding for hand-written protocol tests: textual assembly.
  if (const util::Json* a = j.get("asm"))
    return ebpf::assemble(a->as_string(), type, std::move(maps));
  ebpf::Program prog;
  prog.type = type;
  prog.maps = std::move(maps);
  for (const util::Json& row : j.at("insns").as_array()) {
    const util::Json::Array& f = row.as_array();
    if (f.size() != 5)
      throw std::runtime_error("instruction row needs 5 fields");
    ebpf::Insn insn;
    insn.op = ebpf::Opcode(field_in_range(
        f[0], 0, int64_t(ebpf::Opcode::NUM_OPCODES) - 1, "op"));
    insn.dst = uint8_t(field_in_range(f[1], 0, 10, "dst"));
    insn.src = uint8_t(field_in_range(f[2], 0, 10, "src"));
    insn.off = int16_t(field_in_range(f[3], INT16_MIN, INT16_MAX, "off"));
    insn.imm = f[4].as_int();
    prog.insns.push_back(insn);
  }
  return prog;
}

// ---- InputSpec -------------------------------------------------------------

util::Json input_spec_to_json(const interp::InputSpec& in) {
  util::Json j{util::Json::Object{}};
  j.set("packet", hex_encode(in.packet));
  util::Json maps{util::Json::Array{}};
  for (const auto& [fd, entries] : in.maps) {
    util::Json mj{util::Json::Object{}};
    mj.set("fd", int64_t(fd));
    util::Json ej{util::Json::Array{}};
    for (const interp::MapEntryInit& e : entries) {
      util::Json rec{util::Json::Object{}};
      rec.set("key", hex_encode(e.key));
      rec.set("value", hex_encode(e.value));
      ej.push_back(std::move(rec));
    }
    mj.set("entries", std::move(ej));
    maps.push_back(std::move(mj));
  }
  j.set("maps", std::move(maps));
  j.set("prandom_seed", in.prandom_seed);
  j.set("ktime_base", in.ktime_base);
  j.set("cpu_id", uint64_t(in.cpu_id));
  util::Json args{util::Json::Array{}};
  args.push_back(in.ctx_args[0]);
  args.push_back(in.ctx_args[1]);
  j.set("ctx_args", std::move(args));
  return j;
}

interp::InputSpec input_spec_from_json(const util::Json& j) {
  interp::InputSpec in;
  in.packet = hex_decode(j.at("packet").as_string());
  if (const util::Json* maps = j.get("maps")) {
    for (const util::Json& mj : maps->as_array()) {
      std::vector<interp::MapEntryInit>& entries =
          in.maps[int(mj.at("fd").as_int())];
      for (const util::Json& rec : mj.at("entries").as_array())
        entries.push_back(
            interp::MapEntryInit{hex_decode(rec.at("key").as_string()),
                                 hex_decode(rec.at("value").as_string())});
    }
  }
  if (const util::Json* v = j.get("prandom_seed")) in.prandom_seed = v->as_uint();
  if (const util::Json* v = j.get("ktime_base")) in.ktime_base = v->as_uint();
  if (const util::Json* v = j.get("cpu_id")) in.cpu_id = uint32_t(v->as_uint());
  if (const util::Json* v = j.get("ctx_args")) {
    const util::Json::Array& a = v->as_array();
    if (a.size() != 2) throw std::runtime_error("ctx_args needs 2 entries");
    in.ctx_args[0] = a[0].as_uint();
    in.ctx_args[1] = a[1].as_uint();
  }
  return in;
}

// ---- EqOptions -------------------------------------------------------------

util::Json eq_options_to_json(const EqOptions& opts) {
  util::Json j{util::Json::Object{}};
  j.set("timeout_ms", int64_t(opts.timeout_ms));
  j.set("memory_max_mb", int64_t(opts.memory_max_mb));
  j.set("mem_tc", opts.enc.mem_type_concretization);
  j.set("map_tc", opts.enc.map_type_concretization);
  j.set("off_tc", opts.enc.offset_concretization);
  j.set("max_pkt", int64_t(opts.enc.max_pkt));
  j.set("min_pkt", int64_t(opts.enc.min_pkt));
  j.set("symbolic_stack_init", opts.enc.symbolic_stack_init);
  return j;
}

EqOptions eq_options_from_json(const util::Json& j) {
  EqOptions opts;
  if (const util::Json* v = j.get("timeout_ms"))
    opts.timeout_ms = unsigned(v->as_int());
  if (const util::Json* v = j.get("memory_max_mb"))
    opts.memory_max_mb = unsigned(v->as_int());
  if (const util::Json* v = j.get("mem_tc"))
    opts.enc.mem_type_concretization = v->as_bool();
  if (const util::Json* v = j.get("map_tc"))
    opts.enc.map_type_concretization = v->as_bool();
  if (const util::Json* v = j.get("off_tc"))
    opts.enc.offset_concretization = v->as_bool();
  if (const util::Json* v = j.get("max_pkt")) opts.enc.max_pkt = int(v->as_int());
  if (const util::Json* v = j.get("min_pkt")) opts.enc.min_pkt = int(v->as_int());
  if (const util::Json* v = j.get("symbolic_stack_init"))
    opts.enc.symbolic_stack_init = v->as_bool();
  return opts;
}

// ---- EqResult --------------------------------------------------------------

util::Json eq_result_to_json(const EqResult& r) {
  util::Json j{util::Json::Object{}};
  j.set("verdict", verdict_name(r.verdict));
  if (r.cex) j.set("cex", input_spec_to_json(*r.cex));
  j.set("encode_ms", r.encode_ms);
  j.set("solve_ms", r.solve_ms);
  j.set("detail", r.detail);
  return j;
}

EqResult eq_result_from_json(const util::Json& j) {
  EqResult r;
  if (!verdict_from_name(j.at("verdict").as_string(), &r.verdict))
    throw std::runtime_error("unknown verdict '" +
                             j.at("verdict").as_string() + "'");
  if (const util::Json* c = j.get("cex")) r.cex = input_spec_from_json(*c);
  if (const util::Json* v = j.get("encode_ms")) r.encode_ms = v->as_double();
  if (const util::Json* v = j.get("solve_ms")) r.solve_ms = v->as_double();
  if (const util::Json* v = j.get("detail")) r.detail = v->as_string();
  return r;
}

// ---- SolveWorker -----------------------------------------------------------

std::string SolveWorker::handle_line(const std::string& line, bool* stop) {
  util::Json reply{util::Json::Object{}};
  try {
    util::Json req = util::Json::parse(line);
    const std::string& op = req.at("op").as_string();
    if (const util::Json* id = req.get("id")) reply.set("id", *id);
    if (op == "hello") {
      reply.set("ok", true);
      reply.set("protocol", api::kSolveProtocol);
      util::Json ops{util::Json::Array{}};
      for (const char* o : {"hello", "solve", "cancel", "shutdown"})
        ops.push_back(o);
      reply.set("ops", std::move(ops));
      return reply.dump();
    }
    if (op == "shutdown") {
      reply.set("ok", true);
      *stop = true;
      return reply.dump();
    }
    if (op == "cancel") {
      // One query at a time: whatever this cancel names was already
      // answered by the time the line was read.
      reply.set("ok", true);
      reply.set("cancelled", false);
      return reply.dump();
    }
    if (op == "solve") {
      SolveQuery q;
      q.src = program_from_json(req.at("src"));
      q.cand = program_from_json(req.at("cand"));
      if (const util::Json* w = req.get("win"))
        q.win = WindowSpec{int(w->at("start").as_int()),
                           int(w->at("end").as_int())};
      if (const util::Json* e = req.get("eq")) q.eq = eq_options_from_json(*e);
      EqResult r;
      try {
        r = solve_query_local(q);
      } catch (const std::exception& e) {
        // Same guard as the dispatcher workers: a solver exception becomes
        // UNKNOWN (never cached), not a dead worker.
        r.verdict = Verdict::UNKNOWN;
        r.detail = e.what();
      }
      stats_.solved++;
      util::Json body = eq_result_to_json(r);
      reply.set("ok", true);
      for (const auto& [k, v] : body.as_object()) reply.set(k, v);
      return reply.dump();
    }
    throw std::runtime_error("unknown op '" + op + "'");
  } catch (const std::exception& e) {
    stats_.errors++;
    util::Json err{util::Json::Object{}};
    err.set("ok", false);
    err.set("error", e.what());
    return err.dump();
  }
}

size_t SolveWorker::run(std::istream& in, std::ostream& out) {
  size_t handled = 0;
  std::string line;
  bool stop = false;
  while (!stop && std::getline(in, line)) {
    if (line.empty()) continue;
    out << handle_line(line, &stop) << "\n";
    out.flush();
    handled++;
  }
  return handled;
}

}  // namespace k2::verify
