// Persistent tier of the equivalence-outcome cache (k2-eqcache/v1): an
// append-only, sharded NDJSON log on disk, so verdicts survive the process
// and repeated jobs on the same corpus warm-start with zero Z3 invocations
// for previously-settled pairs.
//
// Layout: `dir/shard-NN` for NN in [0, kShards), sharded by the same
// primary-hash bits as EqCache's in-memory shards. Line 1 of every file is
// the versioned header {"schema":"k2-eqcache/v1"}; every following line is
// one record {"ck":<fnv64>,"rec":{"h":…,"fp":…,"ofp":…,"v":"equal|
// not-equal|encode-fail","cex":{…}?}} — primary hash, independent
// fingerprint (confirmed on every disk hit, closing the same 64-bit
// collision hole the in-memory fingerprint closes), an options fingerprint
// binding the verdict to the encoder configuration + verification mode that
// produced it, the verdict, and (NOT_EQUAL only) the solver counterexample.
// UNKNOWN verdicts are never written: a transient budget exhaustion must
// not poison the cache across runs any more than within one (the PR 2
// invariant).
//
// Crash safety: appends are single O_APPEND write()s (atomic end-of-file
// positioning, so concurrent appenders — e.g. batch shards sharing one
// --cache-dir — interleave whole lines). The loader keeps the longest valid
// prefix of each shard file: the first malformed, checksum-failed, or
// truncated line and everything after it is dropped and the file truncated
// back to the valid prefix, self-healing a torn tail from a crash mid-
// append. A header that is missing or names another schema version resets
// the whole shard file — cache contents are always recomputable, so an
// unreadable store costs Z3 time, never correctness.
//
// Thread-safety: open() is single-threaded setup; append() is safe from any
// thread (per-shard-file mutexes). records() is immutable after open().
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "interp/state.h"
#include "verify/eqchecker.h"

namespace k2::verify {

class CacheStore {
 public:
  struct Record {
    uint64_t hash = 0;
    uint64_t fp = 0;
    uint64_t ofp = 0;  // options fingerprint (see options_fingerprint)
    Verdict verdict = Verdict::UNKNOWN;
    std::shared_ptr<interp::InputSpec> cex;  // NOT_EQUAL records only
  };

  struct Stats {
    uint64_t loaded = 0;        // valid records read by open()
    uint64_t dropped = 0;       // torn/corrupt tail lines discarded
    uint64_t appended = 0;      // records written by this process
    uint64_t reset_shards = 0;  // shard files reset (bad/old header)
  };

  CacheStore() = default;
  ~CacheStore();
  CacheStore(const CacheStore&) = delete;
  CacheStore& operator=(const CacheStore&) = delete;

  // Creates `dir` if needed, loads (and self-heals) every shard file, and
  // opens them for appending. False + *error on an unusable directory.
  // Must be called exactly once, before any append().
  bool open(const std::string& dir, std::string* error);

  bool is_open() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  // Everything open() recovered, load order. Duplicate (hash) records are
  // possible (concurrent cold runs); consumers apply last-writer-wins.
  const std::vector<Record>& records() const { return records_; }

  // Appends one settled verdict. UNKNOWN is silently refused (never
  // persisted); `cex` may be null (it only travels with NOT_EQUAL).
  void append(uint64_t hash, uint64_t fp, uint64_t ofp, Verdict v,
              const interp::InputSpec* cex);

  Stats stats() const;

  struct CompactionStats {
    uint64_t records_before = 0;  // valid records on disk pre-compaction
    uint64_t records_after = 0;   // one per distinct (hash, fp, ofp) key
  };

  // Offline compaction (k2c cache-compact): loads the store (self-healing
  // torn tails exactly like open()), keeps one record per cache key —
  // last writer wins, matching what every loader already applies — and
  // rewrites each shard file via temp-file + rename. Warm-starting from the
  // compacted store is bit-identical to warm-starting from the original:
  // the surviving record set is exactly the map a loader would have built.
  // Not safe concurrently with writers sharing the directory.
  static bool compact(const std::string& dir, CompactionStats* out,
                      std::string* error);

  // Fingerprint of everything outside the cache key that a persisted
  // verdict depends on: the full encoder/solver option set and whether
  // window-scoped verification was in use. Records whose fingerprint does
  // not match the current run's are skipped at load — a store populated
  // under different options misses, it never answers wrongly.
  static uint64_t options_fingerprint(const EqOptions& eq, bool window_mode);

  // Must match EqCache::kShards (the shard index is derived from the same
  // hash bits).
  static constexpr size_t kShards = 16;

 private:
  struct ShardFile {
    int fd = -1;  // O_APPEND descriptor; guarded by mu
    std::mutex mu;
  };

  static size_t shard_index(uint64_t hash);

  std::string dir_;
  std::vector<Record> records_;
  std::unique_ptr<ShardFile[]> shards_;
  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace k2::verify
