// Pre-decoded program form for the fast interpreter (§7: the interpreter
// sits in the innermost search loop, so every cycle of per-instruction
// re-classification is paid ~hundreds of thousands of times per proposal
// batch). A DecodedInsn carries everything the execution loop needs,
// resolved once at decode time instead of once per executed instruction:
//
//  * the opcode decomposed into a dense ExecOp dispatch kind plus a `sub`
//    operand (AluOp / JmpCond / memory width),
//  * 32-bit immediates already sign-extended the way the ALU/JMP/ST
//    semantics require,
//  * jump targets resolved to absolute instruction indices,
//  * CALL helper IDs resolved to their HelperProto entry,
//  * LDMAPFD map references kept as direct fd indices.
//
// Because every field of a DecodedInsn depends only on its own Insn and its
// own position (jump targets are pc-relative), a proposal that mutates
// instructions [start, end) invalidates exactly those decoded slots —
// patch() re-decodes just the touched range, which is what makes the
// decode-once/execute-many scheme profitable under MCMC search where each
// candidate differs from its predecessor in 1–2 instructions.
#pragma once

#include <cstdint>
#include <vector>

#include "ebpf/helpers_def.h"
#include "ebpf/program.h"

namespace k2::ebpf {

// Dense dispatch kind: one entry per execution-loop handler.
enum class ExecOp : uint8_t {
  ALU64_IMM,  // sub = AluOp, imm pre-sign-extended
  ALU64_REG,
  ALU32_IMM,
  ALU32_REG,
  ALU_UNARY,  // NEG/endian; orig_op selects the operation
  JA,
  JMP_IMM,  // sub = JmpCond, imm pre-sign-extended, target resolved
  JMP_REG,
  LDX,   // sub = access width in bytes
  STX,
  ST,    // imm pre-sign-extended store value
  XADD,
  CALL,  // imm = helper id, helper = resolved prototype (null: unknown)
  EXIT,
  LDDW,     // imm = raw 64-bit immediate
  LDMAPFD,  // imm = map fd index (the interpreter forms the handle VA)
  NOP,
  BAD,  // invalid opcode: executing it faults, exactly like the legacy
        // interpreter's default case
  NUM_EXEC_OPS,
};

struct DecodedInsn {
  ExecOp eop = ExecOp::BAD;
  uint8_t sub = 0;   // AluOp / JmpCond / memory width in bytes
  uint8_t dst = 0;
  uint8_t src = 0;
  int16_t off = 0;       // memory byte offset; branch delta for jumps
  uint16_t orig_op = 0;  // the ebpf::Opcode this slot was decoded from
  int32_t target = 0;    // absolute branch target (pc + 1 + off) for jumps
  uint64_t imm = 0;      // operand, pre-sign-extended where semantics demand
  const HelperProto* helper = nullptr;  // CALL only

  friend bool operator==(const DecodedInsn&, const DecodedInsn&) = default;
};

// Decode of `insn` at instruction index `pc` (targets are pc-relative).
DecodedInsn decode_insn(const Insn& insn, int pc);

// A program in decoded form. decode() rebuilds everything; patch()
// re-decodes only [r.start, r.end) and requires the instruction count to be
// unchanged (K2 proposals never grow or shrink the slot vector — they
// replace instructions in place, NOP included).
struct DecodedProgram {
  ProgType type = ProgType::XDP;
  std::vector<DecodedInsn> insns;

  void decode(const Program& p);
  void patch(const Program& p, InsnRange r);
  size_t size() const { return insns.size(); }
};

}  // namespace k2::ebpf
