// BPF program container: instruction sequence + attached-map definitions +
// program (hook) type. The hook type fixes the input/output conventions used
// by the interpreter, the equivalence checker, and the safety checker (§7:
// "can work with multiple BPF hooks, fixing the inputs and outputs
// appropriately").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ebpf/insn.h"

namespace k2::ebpf {

// Hooks exercised by the paper's corpus: XDP (network device driver),
// socket filters, and tracepoints (sys_enter_open, the katran counters).
enum class ProgType : uint8_t {
  XDP,
  SOCKET_FILTER,
  TRACEPOINT,
};

enum class MapKind : uint8_t {
  HASH,
  ARRAY,   // keys are u32 indices < max_entries; never absent
  DEVMAP,  // used by redirect_map; behaves like ARRAY here
};

struct MapDef {
  std::string name;
  MapKind kind = MapKind::HASH;
  uint32_t key_size = 4;    // bytes
  uint32_t value_size = 8;  // bytes
  uint32_t max_entries = 256;

  friend bool operator==(const MapDef&, const MapDef&) = default;
};

// Half-open instruction index range [start, end). Proposals report the range
// they mutated so decoded forms (ebpf/decoded.h) can be patched instead of
// rebuilt.
struct InsnRange {
  int start = 0;
  int end = 0;
  bool empty() const { return end <= start; }
  // Smallest range covering both (patching extra in-between slots is always
  // harmless: a decoded slot is a pure function of its Insn and index).
  static InsnRange hull(InsnRange a, InsnRange b) {
    if (a.empty()) return b;
    if (b.empty()) return a;
    return InsnRange{a.start < b.start ? a.start : b.start,
                     a.end > b.end ? a.end : b.end};
  }
};

struct Program {
  ProgType type = ProgType::XDP;
  std::vector<Insn> insns;
  std::vector<MapDef> maps;  // index == map fd used by LDMAPFD

  // Number of wire-format slots occupied by non-NOP instructions — the
  // paper's "number of instructions" metric (Table 1).
  int size_slots() const;

  // Number of non-NOP instructions (logical length).
  int num_real_insns() const;

  // Returns a copy with NOPs removed and jump offsets re-targeted — the
  // final output form handed to the kernel (DESIGN.md §4.2).
  Program strip_nops() const;

  std::string to_string() const;
};

// Structural validity: register indices <= 10, jump targets within program
// bounds, known helper IDs, map fds valid, EXIT present. Returns an error
// description, or nullopt when valid. (Semantic safety lives in k2::safety.)
std::optional<std::string> validate_structure(const Program& prog);

}  // namespace k2::ebpf
