#include "ebpf/decoded.h"

#include "ebpf/semantics.h"

namespace k2::ebpf {

DecodedInsn decode_insn(const Insn& insn, int pc) {
  DecodedInsn d;
  d.dst = insn.dst;
  d.src = insn.src;
  d.off = insn.off;
  d.orig_op = static_cast<uint16_t>(insn.op);

  // Mirror the legacy interpreter's classification order exactly: ALU binop
  // decomposition first, then conditional jumps, then the explicit opcodes;
  // anything left is BAD (the legacy switch's default case).
  AluShape a;
  JmpShape j;
  if (decompose_alu(insn.op, &a)) {
    d.eop = a.is64 ? (a.is_imm ? ExecOp::ALU64_IMM : ExecOp::ALU64_REG)
                   : (a.is_imm ? ExecOp::ALU32_IMM : ExecOp::ALU32_REG);
    d.sub = static_cast<uint8_t>(a.op);
    d.imm = sext32(insn.imm);
    return d;
  }
  if (decompose_jmp(insn.op, &j)) {
    d.eop = j.is_imm ? ExecOp::JMP_IMM : ExecOp::JMP_REG;
    d.sub = static_cast<uint8_t>(j.cond);
    d.imm = sext32(insn.imm);
    d.target = pc + 1 + insn.off;
    return d;
  }

  switch (insn.op) {
    case Opcode::NEG64:
    case Opcode::NEG32:
    case Opcode::BE16:
    case Opcode::BE32:
    case Opcode::BE64:
    case Opcode::LE16:
    case Opcode::LE32:
    case Opcode::LE64:
      d.eop = ExecOp::ALU_UNARY;
      return d;
    case Opcode::JA:
      d.eop = ExecOp::JA;
      d.target = pc + 1 + insn.off;
      return d;
    case Opcode::LDXB:
    case Opcode::LDXH:
    case Opcode::LDXW:
    case Opcode::LDXDW:
      d.eop = ExecOp::LDX;
      d.sub = static_cast<uint8_t>(mem_width(insn.op));
      return d;
    case Opcode::STXB:
    case Opcode::STXH:
    case Opcode::STXW:
    case Opcode::STXDW:
      d.eop = ExecOp::STX;
      d.sub = static_cast<uint8_t>(mem_width(insn.op));
      return d;
    case Opcode::STB:
    case Opcode::STH:
    case Opcode::STW:
    case Opcode::STDW:
      d.eop = ExecOp::ST;
      d.sub = static_cast<uint8_t>(mem_width(insn.op));
      d.imm = sext32(insn.imm);
      return d;
    case Opcode::XADD32:
    case Opcode::XADD64:
      d.eop = ExecOp::XADD;
      d.sub = static_cast<uint8_t>(mem_width(insn.op));
      return d;
    case Opcode::CALL:
      d.eop = ExecOp::CALL;
      d.imm = static_cast<uint64_t>(insn.imm);
      d.helper = helper_proto(insn.imm);
      return d;
    case Opcode::EXIT:
      d.eop = ExecOp::EXIT;
      return d;
    case Opcode::LDDW:
      d.eop = ExecOp::LDDW;
      d.imm = static_cast<uint64_t>(insn.imm);
      return d;
    case Opcode::LDMAPFD:
      d.eop = ExecOp::LDMAPFD;
      d.imm = static_cast<uint64_t>(insn.imm);
      return d;
    case Opcode::NOP:
      d.eop = ExecOp::NOP;
      return d;
    default:
      d.eop = ExecOp::BAD;
      return d;
  }
}

void DecodedProgram::decode(const Program& p) {
  type = p.type;
  insns.resize(p.insns.size());
  for (size_t i = 0; i < p.insns.size(); ++i)
    insns[i] = decode_insn(p.insns[i], static_cast<int>(i));
}

void DecodedProgram::patch(const Program& p, InsnRange r) {
  int n = static_cast<int>(insns.size());
  int lo = r.start < 0 ? 0 : r.start;
  int hi = r.end > n ? n : r.end;
  for (int i = lo; i < hi; ++i)
    insns[size_t(i)] = decode_insn(p.insns[size_t(i)], i);
}

}  // namespace k2::ebpf
