#include "ebpf/assembler.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <sstream>

namespace k2::ebpf {

namespace {

std::string lower(std::string_view s) {
  std::string r(s);
  std::transform(r.begin(), r.end(), r.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return r;
}

struct Token {
  std::string text;
};

// Splits a statement into mnemonic + comma-separated operand strings.
struct Stmt {
  int line;
  std::string mnemonic;
  std::vector<std::string> operands;
  std::optional<std::string> label;  // set when the line is "name:"
};

std::string strip(std::string_view s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string_view::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return std::string(s.substr(b, e - b + 1));
}

[[noreturn]] void fail(int line, const std::string& msg) {
  throw AsmError("asm line " + std::to_string(line) + ": " + msg);
}

std::vector<Stmt> tokenize(std::string_view text) {
  std::vector<Stmt> stmts;
  int lineno = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    std::string_view raw =
        nl == std::string_view::npos ? text.substr(pos) : text.substr(pos, nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    lineno++;
    // Strip comments.
    std::string line(raw);
    for (const char* c : {";", "#", "//"}) {
      size_t p = line.find(c);
      if (p != std::string::npos) line.resize(p);
    }
    line = strip(line);
    if (line.empty()) continue;
    if (line.back() == ':') {
      Stmt s;
      s.line = lineno;
      s.label = strip(line.substr(0, line.size() - 1));
      if (s.label->empty()) fail(lineno, "empty label");
      stmts.push_back(std::move(s));
      continue;
    }
    Stmt s;
    s.line = lineno;
    size_t sp = line.find_first_of(" \t");
    s.mnemonic = lower(line.substr(0, sp));
    if (sp != std::string::npos) {
      std::string rest = strip(line.substr(sp));
      size_t start = 0;
      while (start <= rest.size() && !rest.empty()) {
        size_t comma = rest.find(',', start);
        std::string piece = comma == std::string::npos
                                ? rest.substr(start)
                                : rest.substr(start, comma - start);
        s.operands.push_back(strip(piece));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    }
    stmts.push_back(std::move(s));
  }
  return stmts;
}

bool is_reg(const std::string& s) {
  return s.size() >= 2 && s[0] == 'r' &&
         std::all_of(s.begin() + 1, s.end(),
                     [](unsigned char c) { return std::isdigit(c); });
}

uint8_t parse_reg(int line, const std::string& s) {
  if (!is_reg(s)) fail(line, "expected register, got '" + s + "'");
  int r = std::stoi(s.substr(1));
  if (r > 10) fail(line, "register out of range: " + s);
  return static_cast<uint8_t>(r);
}

int64_t parse_imm(int line, const std::string& s) {
  try {
    size_t used = 0;
    long long v = std::stoll(s, &used, 0);  // handles 0x..., decimal, sign
    if (used != s.size()) fail(line, "bad immediate '" + s + "'");
    return v;
  } catch (const AsmError&) {
    throw;
  } catch (...) {
    fail(line, "bad immediate '" + s + "'");
  }
}

// Parses "[rN+off]" / "[rN-off]" / "[rN]".
void parse_mem(int line, const std::string& s, uint8_t* reg, int16_t* off) {
  if (s.size() < 4 || s.front() != '[' || s.back() != ']')
    fail(line, "expected memory operand [rN+off], got '" + s + "'");
  std::string inner = strip(s.substr(1, s.size() - 2));
  size_t p = inner.find_first_of("+-");
  std::string regpart = strip(p == std::string::npos ? inner : inner.substr(0, p));
  *reg = parse_reg(line, regpart);
  if (p == std::string::npos) {
    *off = 0;
  } else {
    int64_t v = parse_imm(line, strip(inner.substr(p)));
    if (v < INT16_MIN || v > INT16_MAX) fail(line, "offset out of range");
    *off = static_cast<int16_t>(v);
  }
}

// Mnemonic tables.
const std::map<std::string, AluOp>& alu_mnemonics64() {
  static const std::map<std::string, AluOp> m = {
      {"add64", AluOp::ADD}, {"sub64", AluOp::SUB}, {"mul64", AluOp::MUL},
      {"div64", AluOp::DIV}, {"mod64", AluOp::MOD}, {"or64", AluOp::OR},
      {"and64", AluOp::AND}, {"xor64", AluOp::XOR}, {"lsh64", AluOp::LSH},
      {"rsh64", AluOp::RSH}, {"arsh64", AluOp::ARSH}, {"mov64", AluOp::MOV},
  };
  return m;
}
const std::map<std::string, AluOp>& alu_mnemonics32() {
  static const std::map<std::string, AluOp> m = {
      {"add32", AluOp::ADD}, {"sub32", AluOp::SUB}, {"mul32", AluOp::MUL},
      {"div32", AluOp::DIV}, {"mod32", AluOp::MOD}, {"or32", AluOp::OR},
      {"and32", AluOp::AND}, {"xor32", AluOp::XOR}, {"lsh32", AluOp::LSH},
      {"rsh32", AluOp::RSH}, {"arsh32", AluOp::ARSH}, {"mov32", AluOp::MOV},
  };
  return m;
}
const std::map<std::string, JmpCond>& jmp_mnemonics() {
  static const std::map<std::string, JmpCond> m = {
      {"jeq", JmpCond::JEQ},   {"jne", JmpCond::JNE},
      {"jgt", JmpCond::JGT},   {"jge", JmpCond::JGE},
      {"jlt", JmpCond::JLT},   {"jle", JmpCond::JLE},
      {"jsgt", JmpCond::JSGT}, {"jsge", JmpCond::JSGE},
      {"jslt", JmpCond::JSLT}, {"jsle", JmpCond::JSLE},
      {"jset", JmpCond::JSET},
  };
  return m;
}
const std::map<std::string, Opcode>& unary_mnemonics() {
  static const std::map<std::string, Opcode> m = {
      {"neg64", Opcode::NEG64}, {"neg32", Opcode::NEG32},
      {"be16", Opcode::BE16},   {"be32", Opcode::BE32},
      {"be64", Opcode::BE64},   {"le16", Opcode::LE16},
      {"le32", Opcode::LE32},   {"le64", Opcode::LE64},
  };
  return m;
}
const std::map<std::string, Opcode>& ld_mnemonics() {
  static const std::map<std::string, Opcode> m = {
      {"ldxb", Opcode::LDXB},
      {"ldxh", Opcode::LDXH},
      {"ldxw", Opcode::LDXW},
      {"ldxdw", Opcode::LDXDW},
  };
  return m;
}
const std::map<std::string, Opcode>& stx_mnemonics() {
  static const std::map<std::string, Opcode> m = {
      {"stxb", Opcode::STXB},     {"stxh", Opcode::STXH},
      {"stxw", Opcode::STXW},     {"stxdw", Opcode::STXDW},
      {"xadd32", Opcode::XADD32}, {"xadd64", Opcode::XADD64},
  };
  return m;
}
const std::map<std::string, Opcode>& st_mnemonics() {
  static const std::map<std::string, Opcode> m = {
      {"stb", Opcode::STB},
      {"sth", Opcode::STH},
      {"stw", Opcode::STW},
      {"stdw", Opcode::STDW},
  };
  return m;
}

}  // namespace

Program assemble(std::string_view text, ProgType type,
                 std::vector<MapDef> maps, const AsmOptions& opts) {
  std::vector<Stmt> stmts = tokenize(text);

  // Pass 1: assign instruction indices and record labels.
  std::map<std::string, int> labels;
  int index = 0;
  for (const Stmt& s : stmts) {
    if (s.label) {
      if (labels.count(*s.label)) fail(s.line, "duplicate label " + *s.label);
      labels[*s.label] = index;
    } else {
      index++;
    }
  }
  const int total = index;

  // Pass 2: emit instructions.
  Program prog;
  prog.type = type;
  prog.maps = std::move(maps);
  index = 0;
  for (const Stmt& s : stmts) {
    if (s.label) continue;
    const auto need = [&](size_t n) {
      if (s.operands.size() != n)
        fail(s.line, s.mnemonic + " expects " + std::to_string(n) +
                         " operands, got " + std::to_string(s.operands.size()));
    };
    // Resolves a jump target operand (label or +N/-N) to a relative offset.
    const auto jump_off = [&](const std::string& t) -> int16_t {
      int target;
      if (!t.empty() && (t[0] == '+' || t[0] == '-' || std::isdigit(
                                                           (unsigned char)t[0]))) {
        target = index + 1 + static_cast<int>(parse_imm(s.line, t));
      } else {
        auto it = labels.find(t);
        if (it == labels.end()) fail(s.line, "unknown label '" + t + "'");
        target = it->second;
      }
      if (!opts.lenient && (target < 0 || target > total))
        fail(s.line, "jump target out of bounds");
      int off = target - index - 1;
      if (off < INT16_MIN || off > INT16_MAX)
        fail(s.line, "jump offset out of range");
      return static_cast<int16_t>(off);
    };

    Insn insn;
    const std::string& m = s.mnemonic;
    if (auto it = alu_mnemonics64().find(m); it != alu_mnemonics64().end()) {
      need(2);
      insn.dst = parse_reg(s.line, s.operands[0]);
      if (is_reg(s.operands[1])) {
        insn.op = compose_alu(it->second, /*is64=*/true, /*is_imm=*/false);
        insn.src = parse_reg(s.line, s.operands[1]);
      } else {
        insn.op = compose_alu(it->second, true, true);
        insn.imm = parse_imm(s.line, s.operands[1]);
      }
    } else if (auto it32 = alu_mnemonics32().find(m);
               it32 != alu_mnemonics32().end()) {
      need(2);
      insn.dst = parse_reg(s.line, s.operands[0]);
      if (is_reg(s.operands[1])) {
        insn.op = compose_alu(it32->second, false, false);
        insn.src = parse_reg(s.line, s.operands[1]);
      } else {
        insn.op = compose_alu(it32->second, false, true);
        insn.imm = parse_imm(s.line, s.operands[1]);
      }
    } else if (auto itu = unary_mnemonics().find(m);
               itu != unary_mnemonics().end()) {
      need(1);
      insn.op = itu->second;
      insn.dst = parse_reg(s.line, s.operands[0]);
    } else if (auto itj = jmp_mnemonics().find(m); itj != jmp_mnemonics().end()) {
      need(3);
      insn.dst = parse_reg(s.line, s.operands[0]);
      if (is_reg(s.operands[1])) {
        insn.op = compose_jmp(itj->second, /*is_imm=*/false);
        insn.src = parse_reg(s.line, s.operands[1]);
      } else {
        insn.op = compose_jmp(itj->second, true);
        insn.imm = parse_imm(s.line, s.operands[1]);
      }
      insn.off = jump_off(s.operands[2]);
    } else if (m == "ja") {
      need(1);
      insn.op = Opcode::JA;
      insn.off = jump_off(s.operands[0]);
    } else if (auto itl = ld_mnemonics().find(m); itl != ld_mnemonics().end()) {
      need(2);
      insn.op = itl->second;
      insn.dst = parse_reg(s.line, s.operands[0]);
      parse_mem(s.line, s.operands[1], &insn.src, &insn.off);
    } else if (auto itsx = stx_mnemonics().find(m);
               itsx != stx_mnemonics().end()) {
      need(2);
      insn.op = itsx->second;
      parse_mem(s.line, s.operands[0], &insn.dst, &insn.off);
      insn.src = parse_reg(s.line, s.operands[1]);
    } else if (auto itst = st_mnemonics().find(m);
               itst != st_mnemonics().end()) {
      need(2);
      insn.op = itst->second;
      parse_mem(s.line, s.operands[0], &insn.dst, &insn.off);
      insn.imm = parse_imm(s.line, s.operands[1]);
    } else if (m == "call") {
      need(1);
      insn.op = Opcode::CALL;
      insn.imm = parse_imm(s.line, s.operands[0]);
    } else if (m == "exit") {
      need(0);
      insn.op = Opcode::EXIT;
    } else if (m == "lddw") {
      need(2);
      insn.op = Opcode::LDDW;
      insn.dst = parse_reg(s.line, s.operands[0]);
      insn.imm = parse_imm(s.line, s.operands[1]);
    } else if (m == "ldmapfd") {
      need(2);
      insn.op = Opcode::LDMAPFD;
      insn.dst = parse_reg(s.line, s.operands[0]);
      insn.imm = parse_imm(s.line, s.operands[1]);
    } else if (m == "nop") {
      need(0);
      insn.op = Opcode::NOP;
    } else {
      fail(s.line, "unknown mnemonic '" + m + "'");
    }
    // Canonicalize: non-LDDW immediates are 32 bits on the wire and
    // sign-extended at use; store the sign-extended form so programs
    // round-trip bit-exactly through the wire codec.
    if (insn.op != Opcode::LDDW && insn.op != Opcode::LDMAPFD)
      insn.imm = static_cast<int64_t>(static_cast<int32_t>(insn.imm));
    prog.insns.push_back(insn);
    index++;
  }

  if (!opts.lenient)
    if (auto err = validate_structure(prog)) throw AsmError(*err);
  return prog;
}

std::string disassemble(const Program& prog) {
  // Collect jump targets needing labels. A target outside [0, size] has no
  // printable line to label — it is emitted as a raw offset instead (the
  // resulting text needs AsmOptions::lenient to reassemble, like the
  // invalid program it came from).
  const int total = static_cast<int>(prog.insns.size());
  std::map<int, std::string> target_labels;
  for (size_t i = 0; i < prog.insns.size(); ++i) {
    const Insn& insn = prog.insns[i];
    if (is_jump(insn.op)) {
      int t = static_cast<int>(i) + 1 + insn.off;
      if (t >= 0 && t <= total && !target_labels.count(t))
        target_labels[t] = "L" + std::to_string(target_labels.size());
    }
  }
  std::ostringstream os;
  for (size_t i = 0; i <= prog.insns.size(); ++i) {
    if (auto it = target_labels.find(static_cast<int>(i));
        it != target_labels.end())
      os << it->second << ":\n";
    if (i == prog.insns.size()) break;
    const Insn& insn = prog.insns[i];
    if (is_jump(insn.op)) {
      int t = static_cast<int>(i) + 1 + insn.off;
      auto target = [&]() -> std::string {
        if (auto it = target_labels.find(t); it != target_labels.end())
          return it->second;
        return (insn.off >= 0 ? "+" : "") + std::to_string(insn.off);
      };
      JmpShape j;
      std::ostringstream line;
      if (insn.op == Opcode::JA) {
        line << "ja " << target();
      } else {
        decompose_jmp(insn.op, &j);
        std::string base = to_string(insn);
        // to_string prints "jeq r1, X, +off" — replace the trailing offset.
        base.resize(base.rfind(", "));
        line << base << ", " << target();
      }
      os << "  " << line.str() << "\n";
    } else {
      os << "  " << to_string(insn) << "\n";
    }
  }
  return os.str();
}

}  // namespace k2::ebpf
