#include "ebpf/bytecode.h"

#include <cstring>

namespace k2::ebpf {

namespace {

// Instruction classes (linux/bpf_common.h).
constexpr uint8_t BPF_LD = 0x00, BPF_LDX = 0x01, BPF_ST = 0x02,
                  BPF_STX = 0x03, BPF_ALU = 0x04, BPF_JMP = 0x05,
                  BPF_ALU64 = 0x07;
// Size field.
constexpr uint8_t BPF_W = 0x00, BPF_H = 0x08, BPF_B = 0x10, BPF_DW = 0x18;
// Mode field.
constexpr uint8_t BPF_IMM = 0x00, BPF_MEM = 0x60, BPF_XADD = 0xc0;
// Source field.
constexpr uint8_t BPF_K = 0x00, BPF_X = 0x08;
// ALU ops.
constexpr uint8_t BPF_ADD = 0x00, BPF_SUB = 0x10, BPF_MUL = 0x20,
                  BPF_DIV = 0x30, BPF_OR = 0x40, BPF_AND = 0x50,
                  BPF_LSH = 0x60, BPF_RSH = 0x70, BPF_NEG = 0x80,
                  BPF_MOD = 0x90, BPF_XOR = 0xa0, BPF_MOV = 0xb0,
                  BPF_ARSH = 0xc0, BPF_END = 0xd0;
// JMP ops.
constexpr uint8_t BPF_JA = 0x00, BPF_JEQ = 0x10, BPF_JGT = 0x20,
                  BPF_JGE = 0x30, BPF_JSET = 0x40, BPF_JNE = 0x50,
                  BPF_JSGT = 0x60, BPF_JSGE = 0x70, BPF_CALL = 0x80,
                  BPF_EXIT = 0x90, BPF_JLT = 0xa0, BPF_JLE = 0xb0,
                  BPF_JSLT = 0xc0, BPF_JSLE = 0xd0;
// Endianness conversions: BPF_END with TO_LE (K) / TO_BE (X).
constexpr uint8_t BPF_TO_LE = 0x00, BPF_TO_BE = 0x08;
// Pseudo source register marking a map-fd immediate load.
constexpr uint8_t BPF_PSEUDO_MAP_FD = 1;

uint8_t alu_op_byte(AluOp op) {
  switch (op) {
    case AluOp::ADD: return BPF_ADD;
    case AluOp::SUB: return BPF_SUB;
    case AluOp::MUL: return BPF_MUL;
    case AluOp::DIV: return BPF_DIV;
    case AluOp::OR: return BPF_OR;
    case AluOp::AND: return BPF_AND;
    case AluOp::XOR: return BPF_XOR;
    case AluOp::LSH: return BPF_LSH;
    case AluOp::RSH: return BPF_RSH;
    case AluOp::ARSH: return BPF_ARSH;
    case AluOp::MOV: return BPF_MOV;
    case AluOp::MOD: return BPF_MOD;
  }
  return 0;
}

std::optional<AluOp> alu_op_from(uint8_t b) {
  switch (b & 0xf0) {
    case BPF_ADD: return AluOp::ADD;
    case BPF_SUB: return AluOp::SUB;
    case BPF_MUL: return AluOp::MUL;
    case BPF_DIV: return AluOp::DIV;
    case BPF_OR: return AluOp::OR;
    case BPF_AND: return AluOp::AND;
    case BPF_XOR: return AluOp::XOR;
    case BPF_LSH: return AluOp::LSH;
    case BPF_RSH: return AluOp::RSH;
    case BPF_ARSH: return AluOp::ARSH;
    case BPF_MOV: return AluOp::MOV;
    case BPF_MOD: return AluOp::MOD;
    default: return std::nullopt;
  }
}

uint8_t jmp_op_byte(JmpCond c) {
  switch (c) {
    case JmpCond::JEQ: return BPF_JEQ;
    case JmpCond::JNE: return BPF_JNE;
    case JmpCond::JGT: return BPF_JGT;
    case JmpCond::JGE: return BPF_JGE;
    case JmpCond::JLT: return BPF_JLT;
    case JmpCond::JLE: return BPF_JLE;
    case JmpCond::JSGT: return BPF_JSGT;
    case JmpCond::JSGE: return BPF_JSGE;
    case JmpCond::JSLT: return BPF_JSLT;
    case JmpCond::JSLE: return BPF_JSLE;
    case JmpCond::JSET: return BPF_JSET;
  }
  return 0;
}

std::optional<JmpCond> jmp_op_from(uint8_t b) {
  switch (b & 0xf0) {
    case BPF_JEQ: return JmpCond::JEQ;
    case BPF_JNE: return JmpCond::JNE;
    case BPF_JGT: return JmpCond::JGT;
    case BPF_JGE: return JmpCond::JGE;
    case BPF_JLT: return JmpCond::JLT;
    case BPF_JLE: return JmpCond::JLE;
    case BPF_JSGT: return JmpCond::JSGT;
    case BPF_JSGE: return JmpCond::JSGE;
    case BPF_JSLT: return JmpCond::JSLT;
    case BPF_JSLE: return JmpCond::JSLE;
    case BPF_JSET: return JmpCond::JSET;
    default: return std::nullopt;
  }
}

uint8_t size_byte(int width) {
  switch (width) {
    case 1: return BPF_B;
    case 2: return BPF_H;
    case 4: return BPF_W;
    default: return BPF_DW;
  }
}

int width_from_size(uint8_t b) {
  switch (b & 0x18) {
    case BPF_B: return 1;
    case BPF_H: return 2;
    case BPF_W: return 4;
    default: return 8;
  }
}

Opcode ld_opcode(int width) {
  switch (width) {
    case 1: return Opcode::LDXB;
    case 2: return Opcode::LDXH;
    case 4: return Opcode::LDXW;
    default: return Opcode::LDXDW;
  }
}
Opcode stx_opcode(int width) {
  switch (width) {
    case 1: return Opcode::STXB;
    case 2: return Opcode::STXH;
    case 4: return Opcode::STXW;
    default: return Opcode::STXDW;
  }
}
Opcode st_opcode(int width) {
  switch (width) {
    case 1: return Opcode::STB;
    case 2: return Opcode::STH;
    case 4: return Opcode::STW;
    default: return Opcode::STDW;
  }
}

}  // namespace

std::vector<WireInsn> encode_wire(const Program& prog) {
  // Jump offsets count *slots* on the wire but logical instructions in our
  // IR; LDDW/LDMAPFD take two slots, so offsets must be retargeted.
  const size_t n = prog.insns.size();
  std::vector<int> slot_of(n + 1, 0);
  {
    int slot = 0;
    for (size_t i = 0; i < n; ++i) {
      slot_of[i] = slot;
      slot += prog.insns[i].size_slots();
    }
    slot_of[n] = slot;
  }

  std::vector<WireInsn> out;
  for (size_t idx = 0; idx < n; ++idx) {
    const Insn& insn = prog.insns[idx];
    WireInsn w;
    w.dst_reg = insn.dst & 0xf;
    w.src_reg = insn.src & 0xf;
    w.off = insn.off;
    w.imm = int32_t(insn.imm);
    if (is_jump(insn.op)) {
      size_t target = idx + 1 + size_t(int64_t(insn.off));
      w.off = int16_t(slot_of[target] - (slot_of[idx] + 1));
    }

    AluShape a;
    JmpShape j;
    if (decompose_alu(insn.op, &a)) {
      w.opcode = uint8_t((a.is64 ? BPF_ALU64 : BPF_ALU) |
                         (a.is_imm ? BPF_K : BPF_X) | alu_op_byte(a.op));
      if (a.is_imm) w.src_reg = 0;
      out.push_back(w);
      continue;
    }
    if (decompose_jmp(insn.op, &j)) {
      w.opcode = uint8_t(BPF_JMP | (j.is_imm ? BPF_K : BPF_X) |
                         jmp_op_byte(j.cond));
      if (j.is_imm) w.src_reg = 0;
      out.push_back(w);
      continue;
    }
    switch (insn.op) {
      case Opcode::NEG64:
        w.opcode = BPF_ALU64 | BPF_NEG;
        break;
      case Opcode::NEG32:
        w.opcode = BPF_ALU | BPF_NEG;
        break;
      case Opcode::BE16:
      case Opcode::BE32:
      case Opcode::BE64:
        w.opcode = BPF_ALU | BPF_END | BPF_TO_BE;
        w.imm = insn.op == Opcode::BE16 ? 16 : insn.op == Opcode::BE32 ? 32
                                                                       : 64;
        break;
      case Opcode::LE16:
      case Opcode::LE32:
      case Opcode::LE64:
        w.opcode = BPF_ALU | BPF_END | BPF_TO_LE;
        w.imm = insn.op == Opcode::LE16 ? 16 : insn.op == Opcode::LE32 ? 32
                                                                       : 64;
        break;
      case Opcode::JA:
        w.opcode = BPF_JMP | BPF_JA;
        break;
      case Opcode::LDXB:
      case Opcode::LDXH:
      case Opcode::LDXW:
      case Opcode::LDXDW:
        w.opcode = uint8_t(BPF_LDX | BPF_MEM | size_byte(mem_width(insn.op)));
        break;
      case Opcode::STXB:
      case Opcode::STXH:
      case Opcode::STXW:
      case Opcode::STXDW:
        w.opcode = uint8_t(BPF_STX | BPF_MEM | size_byte(mem_width(insn.op)));
        break;
      case Opcode::STB:
      case Opcode::STH:
      case Opcode::STW:
      case Opcode::STDW:
        w.opcode = uint8_t(BPF_ST | BPF_MEM | size_byte(mem_width(insn.op)));
        break;
      case Opcode::XADD32:
        w.opcode = BPF_STX | BPF_XADD | BPF_W;
        break;
      case Opcode::XADD64:
        w.opcode = BPF_STX | BPF_XADD | BPF_DW;
        break;
      case Opcode::CALL:
        w.opcode = BPF_JMP | BPF_CALL;
        break;
      case Opcode::EXIT:
        w.opcode = BPF_JMP | BPF_EXIT;
        break;
      case Opcode::LDDW:
      case Opcode::LDMAPFD: {
        // Double-slot: imm64 split low/high; pseudo-src marks map fds.
        w.opcode = BPF_LD | BPF_IMM | BPF_DW;
        if (insn.op == Opcode::LDMAPFD) w.src_reg = BPF_PSEUDO_MAP_FD;
        uint64_t v = uint64_t(insn.imm);
        w.imm = int32_t(v & 0xffffffffull);
        out.push_back(w);
        WireInsn hi;
        hi.imm = int32_t(v >> 32);
        out.push_back(hi);
        continue;
      }
      case Opcode::NOP:
        throw std::invalid_argument(
            "encode_wire: strip NOPs before encoding");
      default:
        throw std::invalid_argument("encode_wire: unencodable opcode");
    }
    out.push_back(w);
  }
  return out;
}

Program decode_wire(const std::vector<WireInsn>& slots, ProgType type,
                    std::vector<MapDef> maps) {
  Program prog;
  prog.type = type;
  prog.maps = std::move(maps);
  // Wire slot index -> logical instruction index (LDDW compresses 2 -> 1),
  // needed to retarget jump offsets.
  std::vector<int> logical_at(slots.size() + 1, 0);
  {
    int logical = 0;
    size_t i = 0;
    while (i < slots.size()) {
      logical_at[i] = logical;
      uint8_t cls = slots[i].opcode & 0x07;
      uint8_t mode = slots[i].opcode & 0xe0;
      uint8_t size = slots[i].opcode & 0x18;
      size_t step = (cls == BPF_LD && mode == BPF_IMM && size == BPF_DW) ? 2 : 1;
      if (step == 2 && i + 1 < slots.size()) logical_at[i + 1] = logical;
      i += step;
      logical++;
    }
    logical_at[slots.size()] = logical;
  }

  for (size_t i = 0; i < slots.size(); ++i) {
    const WireInsn& w = slots[i];
    Insn insn;
    insn.dst = w.dst_reg;
    insn.src = w.src_reg;
    insn.off = w.off;
    insn.imm = w.imm;
    uint8_t cls = w.opcode & 0x07;
    bool is_x = (w.opcode & BPF_X) != 0;

    if (cls == BPF_ALU64 || cls == BPF_ALU) {
      uint8_t opbits = w.opcode & 0xf0;
      if (opbits == BPF_NEG) {
        insn.op = cls == BPF_ALU64 ? Opcode::NEG64 : Opcode::NEG32;
      } else if (opbits == BPF_END) {
        bool to_be = is_x;
        switch (w.imm) {
          case 16: insn.op = to_be ? Opcode::BE16 : Opcode::LE16; break;
          case 32: insn.op = to_be ? Opcode::BE32 : Opcode::LE32; break;
          case 64: insn.op = to_be ? Opcode::BE64 : Opcode::LE64; break;
          default: throw DecodeError("bad endian width");
        }
        insn.imm = 0;
      } else {
        auto op = alu_op_from(w.opcode);
        if (!op) throw DecodeError("unknown ALU op");
        insn.op = compose_alu(*op, cls == BPF_ALU64, !is_x);
      }
    } else if (cls == BPF_JMP) {
      uint8_t opbits = w.opcode & 0xf0;
      if (opbits == BPF_JA) {
        insn.op = Opcode::JA;
      } else if (opbits == BPF_CALL) {
        insn.op = Opcode::CALL;
      } else if (opbits == BPF_EXIT) {
        insn.op = Opcode::EXIT;
      } else {
        auto c = jmp_op_from(w.opcode);
        if (!c) throw DecodeError("unknown JMP op");
        insn.op = compose_jmp(*c, !is_x);
      }
    } else if (cls == BPF_LDX) {
      insn.op = ld_opcode(width_from_size(w.opcode));
    } else if (cls == BPF_STX) {
      if ((w.opcode & 0xe0) == BPF_XADD)
        insn.op = width_from_size(w.opcode) == 4 ? Opcode::XADD32
                                                 : Opcode::XADD64;
      else
        insn.op = stx_opcode(width_from_size(w.opcode));
    } else if (cls == BPF_ST) {
      insn.op = st_opcode(width_from_size(w.opcode));
    } else if (cls == BPF_LD) {
      if ((w.opcode & 0xe0) != BPF_IMM || (w.opcode & 0x18) != BPF_DW)
        throw DecodeError("unsupported BPF_LD form");
      if (i + 1 >= slots.size()) throw DecodeError("truncated LDDW pair");
      uint64_t lo = uint32_t(w.imm);
      uint64_t hi = uint32_t(slots[i + 1].imm);
      insn.imm = int64_t(lo | (hi << 32));
      insn.op = w.src_reg == BPF_PSEUDO_MAP_FD ? Opcode::LDMAPFD
                                               : Opcode::LDDW;
      insn.src = 0;
      ++i;
    } else {
      throw DecodeError("unknown instruction class");
    }

    // Retarget jump offsets from slot space to logical space.
    if (is_jump(insn.op)) {
      size_t target_slot = i + 1 + size_t(int64_t(w.off));
      if (target_slot > slots.size()) throw DecodeError("jump out of range");
      insn.off = int16_t(logical_at[target_slot] -
                         (logical_at[i] + 1));
    }
    prog.insns.push_back(insn);
  }
  return prog;
}

std::vector<uint8_t> to_bytes(const std::vector<WireInsn>& slots) {
  std::vector<uint8_t> out;
  out.reserve(slots.size() * 8);
  for (const WireInsn& w : slots) {
    out.push_back(w.opcode);
    out.push_back(uint8_t(w.dst_reg | (w.src_reg << 4)));
    out.push_back(uint8_t(w.off & 0xff));
    out.push_back(uint8_t((w.off >> 8) & 0xff));
    for (int b = 0; b < 4; ++b)
      out.push_back(uint8_t((uint32_t(w.imm) >> (8 * b)) & 0xff));
  }
  return out;
}

std::vector<WireInsn> from_bytes(const std::vector<uint8_t>& bytes) {
  if (bytes.size() % 8 != 0) throw DecodeError("byte stream not slot-sized");
  std::vector<WireInsn> out;
  for (size_t i = 0; i < bytes.size(); i += 8) {
    WireInsn w;
    w.opcode = bytes[i];
    w.dst_reg = bytes[i + 1] & 0xf;
    w.src_reg = bytes[i + 1] >> 4;
    w.off = int16_t(uint16_t(bytes[i + 2]) | (uint16_t(bytes[i + 3]) << 8));
    uint32_t imm = 0;
    for (int b = 0; b < 4; ++b) imm |= uint32_t(bytes[i + 4 + b]) << (8 * b);
    w.imm = int32_t(imm);
    out.push_back(w);
  }
  return out;
}

}  // namespace k2::ebpf
