// BPF instruction set definition.
//
// The instruction set mirrors the kernel's eBPF ISA (64-bit RISC, eleven
// registers r0..r10, r10 = read-only stack pointer) for the subset exercised
// by packet-processing programs: 32/64-bit ALU with immediate and register
// operands, endianness conversions, loads/stores of 1/2/4/8 bytes, atomic
// adds, forward jumps, helper calls, 64-bit immediate loads and map-fd loads.
//
// Two deliberate deviations from the wire format (documented in DESIGN.md):
//  * LDDW / LDMAPFD occupy one logical slot here (two 8-byte slots on the
//    wire); Insn::size_slots() accounts for the difference in size metrics.
//  * An explicit NOP opcode exists so the synthesizer can shrink programs by
//    nop-ing slots (the paper's rewrite rule 3); NOPs are stripped on output.
#pragma once

#include <cstdint>
#include <string>

namespace k2::ebpf {

// The twelve ALU binary operations (MOV is unary-ish but shares the shape).
#define K2_ALU_BINOPS(X) \
  X(ADD) X(SUB) X(MUL) X(DIV) X(MOD) X(OR) X(AND) X(XOR) X(LSH) X(RSH) \
  X(ARSH) X(MOV)

// The eleven conditional-jump predicates.
#define K2_JCONDS(X) \
  X(JEQ) X(JNE) X(JGT) X(JGE) X(JLT) X(JLE) X(JSGT) X(JSGE) X(JSLT) \
  X(JSLE) X(JSET)

// Opcode layout (relied upon by the decomposition helpers below):
//   [0, 48)  ALU binops, 4 consecutive per op: 64_IMM, 64_REG, 32_IMM, 32_REG
//   then unary ALU, endian ops, JA, conditional jumps (IMM, REG pairs),
//   memory ops, and the rest.
enum class Opcode : uint16_t {
#define K2_A(op) op##64_IMM, op##64_REG, op##32_IMM, op##32_REG,
  K2_ALU_BINOPS(K2_A)
#undef K2_A
  NEG64,
  NEG32,
  BE16,
  BE32,
  BE64,
  LE16,
  LE32,
  LE64,
  JA,
#define K2_J(op) op##_IMM, op##_REG,
  K2_JCONDS(K2_J)
#undef K2_J
  LDXB,
  LDXH,
  LDXW,
  LDXDW,
  STXB,
  STXH,
  STXW,
  STXDW,
  STB,
  STH,
  STW,
  STDW,
  XADD32,
  XADD64,
  CALL,
  EXIT,
  LDDW,
  LDMAPFD,
  NOP,
  NUM_OPCODES,
};

// Semantic ALU operation, independent of width / operand kind.
enum class AluOp : uint8_t {
#define K2_A(op) op,
  K2_ALU_BINOPS(K2_A)
#undef K2_A
};

// Semantic jump predicate, independent of operand kind.
enum class JmpCond : uint8_t {
#define K2_J(op) op,
  K2_JCONDS(K2_J)
#undef K2_J
};

// Coarse opcode class.
enum class InsnClass : uint8_t {
  ALU,       // binary/unary ALU including endian ops
  JMP,       // JA and conditional jumps
  LDX,       // register load from memory
  STX,       // register store to memory
  ST,        // immediate store to memory
  XADD,      // atomic memory add
  CALL,
  EXIT,
  LD_IMM,    // LDDW / LDMAPFD
  NOP,
};

// A single BPF instruction. `off` is a branch offset in instructions for
// jumps and a byte offset for memory accesses; `imm` is 64-bit wide so LDDW
// needs no second slot.
struct Insn {
  Opcode op = Opcode::NOP;
  uint8_t dst = 0;
  uint8_t src = 0;
  int16_t off = 0;
  int64_t imm = 0;

  friend bool operator==(const Insn&, const Insn&) = default;

  // Number of 8-byte slots this instruction occupies in the kernel wire
  // format (LDDW and LDMAPFD are double-slot instructions).
  int size_slots() const {
    return (op == Opcode::LDDW || op == Opcode::LDMAPFD) ? 2 : 1;
  }
};

// ---- Classification ---------------------------------------------------

InsnClass insn_class(Opcode op);

// Decomposition of ALU binops. Returns false for non-binop opcodes
// (NEG/endian ops are classified as ALU but are not binops).
struct AluShape {
  AluOp op;
  bool is64;
  bool is_imm;
};
bool decompose_alu(Opcode op, AluShape* shape);

// Decomposition of conditional jumps (JA excluded).
struct JmpShape {
  JmpCond cond;
  bool is_imm;
};
bool decompose_jmp(Opcode op, JmpShape* shape);

// Compose the opcode back from its shape (inverse of decompose_*).
Opcode compose_alu(AluOp op, bool is64, bool is_imm);
Opcode compose_jmp(JmpCond cond, bool is_imm);

// Width in bytes of a memory access (LDX/STX/ST/XADD); 0 for non-memory ops.
int mem_width(Opcode op);

inline bool is_jump(Opcode op) { return insn_class(op) == InsnClass::JMP; }
inline bool is_cond_jump(Opcode op) {
  return is_jump(op) && op != Opcode::JA;
}
inline bool is_mem_load(Opcode op) { return insn_class(op) == InsnClass::LDX; }
inline bool is_mem_store(Opcode op) {
  InsnClass c = insn_class(op);
  return c == InsnClass::STX || c == InsnClass::ST || c == InsnClass::XADD;
}
inline bool is_mem_access(Opcode op) {
  return is_mem_load(op) || is_mem_store(op);
}

// Register def/use sets, as bitmasks over r0..r10. CALL defs/uses depend on
// the helper signature; these return the conservative ISA-level convention
// (uses r1..r5, defs r0 and clobbers r1..r5). The liveness analysis refines
// CALL uses via the helper prototype table.
uint16_t def_mask(const Insn& insn);
uint16_t use_mask(const Insn& insn);

const char* mnemonic(Opcode op);
std::string to_string(const Insn& insn);

}  // namespace k2::ebpf
