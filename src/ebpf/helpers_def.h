// BPF helper function prototypes (IDs mirror the Linux UAPI where they
// exist). The prototype table drives argument-count-aware liveness of CALL
// instructions, the interpreter's dispatch, and the encoder's axioms.
#pragma once

#include <cstdint>

namespace k2::ebpf {

// Helper IDs (subset used by the corpus; values follow
// include/uapi/linux/bpf.h).
enum Helper : int32_t {
  HELPER_MAP_LOOKUP = 1,   // void* bpf_map_lookup_elem(map, key*)
  HELPER_MAP_UPDATE = 2,   // int bpf_map_update_elem(map, key*, value*, flags)
  HELPER_MAP_DELETE = 3,   // int bpf_map_delete_elem(map, key*)
  HELPER_KTIME_GET_NS = 5,       // u64 bpf_ktime_get_ns()
  HELPER_GET_PRANDOM_U32 = 7,    // u32 bpf_get_prandom_u32()
  HELPER_GET_SMP_PROC_ID = 8,    // u32 bpf_get_smp_processor_id()
  HELPER_CSUM_DIFF = 28,         // s64 bpf_csum_diff(from*,fs,to*,ts,seed)
  HELPER_XDP_ADJUST_HEAD = 44,   // int bpf_xdp_adjust_head(ctx, delta)
  HELPER_REDIRECT_MAP = 51,      // int bpf_redirect_map(map, key, flags)
};

// What a helper returns, for pointer-type inference (§5 I) and the safety
// checker's NULL-check enforcement (§6).
enum class HelperRet : uint8_t {
  INTEGER,             // scalar
  MAP_VALUE_OR_NULL,   // pointer into the map's value memory, or NULL
};

struct HelperProto {
  int32_t id;
  const char* name;
  int nargs;           // number of argument registers consumed (r1..rN)
  HelperRet ret;
  bool reads_map_fd;   // r1 must hold a map handle (from LDMAPFD)
};

// Returns nullptr for unknown helper IDs.
inline const HelperProto* helper_proto(int64_t id) {
  static constexpr HelperProto kProtos[] = {
      {HELPER_MAP_LOOKUP, "bpf_map_lookup_elem", 2,
       HelperRet::MAP_VALUE_OR_NULL, true},
      {HELPER_MAP_UPDATE, "bpf_map_update_elem", 4, HelperRet::INTEGER, true},
      {HELPER_MAP_DELETE, "bpf_map_delete_elem", 2, HelperRet::INTEGER, true},
      {HELPER_KTIME_GET_NS, "bpf_ktime_get_ns", 0, HelperRet::INTEGER, false},
      {HELPER_GET_PRANDOM_U32, "bpf_get_prandom_u32", 0, HelperRet::INTEGER,
       false},
      {HELPER_GET_SMP_PROC_ID, "bpf_get_smp_processor_id", 0,
       HelperRet::INTEGER, false},
      {HELPER_CSUM_DIFF, "bpf_csum_diff", 5, HelperRet::INTEGER, false},
      {HELPER_XDP_ADJUST_HEAD, "bpf_xdp_adjust_head", 2, HelperRet::INTEGER,
       false},
      {HELPER_REDIRECT_MAP, "bpf_redirect_map", 3, HelperRet::INTEGER, true},
  };
  for (const auto& p : kProtos)
    if (p.id == id) return &p;
  return nullptr;
}

}  // namespace k2::ebpf
