// Kernel wire-format codec: translates between this repo's instruction
// representation and the 8-byte `struct bpf_insn` encoding used by the
// Linux UAPI (opcode byte = class | size/source | operation; LDDW and map-fd
// loads occupy two slots with the immediate split across them).
//
// K2 consumes clang-compiled object code and emits drop-in replacements
// (§7); this codec is the byte-level boundary. The paper notes that binary
// encode/decode is "a significant source of compiler bugs" — hence the
// exhaustive round-trip tests in tests/bytecode_test.cc.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "ebpf/program.h"

namespace k2::ebpf {

// One wire-format instruction slot (matches struct bpf_insn's layout
// semantically; serialized little-endian).
struct WireInsn {
  uint8_t opcode = 0;
  uint8_t dst_reg : 4;
  uint8_t src_reg : 4;
  int16_t off = 0;
  int32_t imm = 0;

  WireInsn() : dst_reg(0), src_reg(0) {}
};

struct DecodeError : std::runtime_error {
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

// Encodes to wire slots. NOPs must be stripped first (the kernel has no
// NOP); throws std::invalid_argument if any remain.
std::vector<WireInsn> encode_wire(const Program& prog);

// Decodes wire slots back into a Program (maps/type supplied by caller).
// Throws DecodeError on unknown opcodes or truncated LDDW pairs.
Program decode_wire(const std::vector<WireInsn>& slots,
                    ProgType type = ProgType::XDP,
                    std::vector<MapDef> maps = {});

// Flat byte serialization (8 bytes per slot, little-endian) — the contents
// of an ELF .text section for a BPF program.
std::vector<uint8_t> to_bytes(const std::vector<WireInsn>& slots);
std::vector<WireInsn> from_bytes(const std::vector<uint8_t>& bytes);

}  // namespace k2::ebpf
