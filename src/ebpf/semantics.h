// Shared, backend-parameterized semantics of the BPF ALU and jump
// instructions.
//
// The paper (§7) encodes each instruction's semantics once and generates both
// the interpreter and the verification-condition generator from that single
// spec, "akin to solver-aided languages". We achieve the same by templating
// the semantics over a Backend that supplies a 64-bit value type V, a boolean
// type B, and primitive operations. Two backends exist:
//   * ConcreteBackend (below): V = uint64_t, B = bool — drives the
//     interpreter.
//   * Z3Backend (verify/encoder.cc): V = z3::expr (bitvector 64), B =
//     z3::expr (Bool) — drives the first-order-logic formula generator.
//
// Any divergence between execution and formalization is therefore a bug in
// exactly one place. tests/semantics_soundness_test.cc cross-checks the two
// backends on random programs/inputs, mirroring the paper's soundness suite.
#pragma once

#include <cstdint>

#include "ebpf/insn.h"

namespace k2::ebpf {

// BPF sign-extends 32-bit immediates to 64 bits for ALU64/JMP64 operands.
inline uint64_t sext32(int64_t imm) {
  return static_cast<uint64_t>(static_cast<int64_t>(static_cast<int32_t>(imm)));
}

// ---- Concrete backend --------------------------------------------------

struct ConcreteBackend {
  using V = uint64_t;
  using B = bool;

  V const_(uint64_t c) { return c; }
  V add(V a, V b) { return a + b; }
  V sub(V a, V b) { return a - b; }
  V mul(V a, V b) { return a * b; }
  // BPF semantics: division by zero yields 0; modulo by zero leaves the
  // dividend unchanged (the kernel JIT emits exactly these run-time guards).
  V udiv_total(V a, V b) { return b == 0 ? 0 : a / b; }
  V urem_total(V a, V b) { return b == 0 ? a : a % b; }
  V and_(V a, V b) { return a & b; }
  V or_(V a, V b) { return a | b; }
  V xor_(V a, V b) { return a ^ b; }
  V shl(V a, V amt) { return a << amt; }
  V lshr(V a, V amt) { return a >> amt; }
  V ashr(V a, V amt) {
    return static_cast<uint64_t>(static_cast<int64_t>(a) >>
                                 static_cast<int64_t>(amt));
  }
  V lo32(V a) { return a & 0xffffffffull; }
  V sext_lo32(V a) {
    return static_cast<uint64_t>(
        static_cast<int64_t>(static_cast<int32_t>(a & 0xffffffffull)));
  }
  V bswap16(V a) {
    uint16_t x = static_cast<uint16_t>(a);
    return static_cast<uint64_t>(static_cast<uint16_t>((x >> 8) | (x << 8)));
  }
  V bswap32(V a) { return __builtin_bswap32(static_cast<uint32_t>(a)); }
  V bswap64(V a) { return __builtin_bswap64(a); }

  B eq(V a, V b) { return a == b; }
  B ne(V a, V b) { return a != b; }
  B ult(V a, V b) { return a < b; }
  B ule(V a, V b) { return a <= b; }
  B ugt(V a, V b) { return a > b; }
  B uge(V a, V b) { return a >= b; }
  B slt(V a, V b) { return static_cast<int64_t>(a) < static_cast<int64_t>(b); }
  B sle(V a, V b) {
    return static_cast<int64_t>(a) <= static_cast<int64_t>(b);
  }
  B sgt(V a, V b) { return static_cast<int64_t>(a) > static_cast<int64_t>(b); }
  B sge(V a, V b) {
    return static_cast<int64_t>(a) >= static_cast<int64_t>(b);
  }
  B set(V a, V b) { return (a & b) != 0; }

  V ite(B c, V a, V b) { return c ? a : b; }
};

// ---- Generic semantics -------------------------------------------------

// Result of `op(dst, src)` with BPF width semantics (32-bit ops compute on
// the low halves and zero-extend the 32-bit result).
template <class BE>
typename BE::V alu_apply(AluOp op, bool is64, typename BE::V dst,
                         typename BE::V src, BE& be) {
  using V = typename BE::V;
  if (is64) {
    V amt6 = be.and_(src, be.const_(63));
    switch (op) {
      case AluOp::ADD: return be.add(dst, src);
      case AluOp::SUB: return be.sub(dst, src);
      case AluOp::MUL: return be.mul(dst, src);
      case AluOp::DIV: return be.udiv_total(dst, src);
      case AluOp::MOD: return be.urem_total(dst, src);
      case AluOp::OR: return be.or_(dst, src);
      case AluOp::AND: return be.and_(dst, src);
      case AluOp::XOR: return be.xor_(dst, src);
      case AluOp::LSH: return be.shl(dst, amt6);
      case AluOp::RSH: return be.lshr(dst, amt6);
      case AluOp::ARSH: return be.ashr(dst, amt6);
      case AluOp::MOV: return src;
    }
  } else {
    V a = be.lo32(dst);
    V b = be.lo32(src);
    V amt5 = be.and_(src, be.const_(31));
    switch (op) {
      case AluOp::ADD: return be.lo32(be.add(a, b));
      case AluOp::SUB: return be.lo32(be.sub(a, b));
      case AluOp::MUL: return be.lo32(be.mul(a, b));
      case AluOp::DIV: return be.lo32(be.udiv_total(a, b));
      // mod32 by zero leaves the *truncated* dividend (zero-extended).
      case AluOp::MOD: return be.lo32(be.urem_total(a, b));
      case AluOp::OR: return be.or_(a, b);
      case AluOp::AND: return be.and_(a, b);
      case AluOp::XOR: return be.xor_(a, b);
      case AluOp::LSH: return be.lo32(be.shl(a, amt5));
      case AluOp::RSH: return be.lshr(a, amt5);
      // arsh32: arithmetic shift of the signed low half, then zero-extend.
      case AluOp::ARSH: return be.lo32(be.ashr(be.sext_lo32(a), amt5));
      case AluOp::MOV: return b;
    }
  }
  return be.const_(0);  // unreachable
}

// NEG and endianness conversions (unary ALU ops).
template <class BE>
typename BE::V alu_unary_apply(Opcode op, typename BE::V a, BE& be) {
  switch (op) {
    case Opcode::NEG64: return be.sub(be.const_(0), a);
    case Opcode::NEG32: return be.lo32(be.sub(be.const_(0), be.lo32(a)));
    // Host is little-endian (x86_64), as in the paper's testbed: to-BE swaps
    // bytes, to-LE truncates to the operand width.
    case Opcode::BE16: return be.bswap16(a);
    case Opcode::BE32: return be.bswap32(a);
    case Opcode::BE64: return be.bswap64(a);
    case Opcode::LE16: return be.and_(a, be.const_(0xffff));
    case Opcode::LE32: return be.lo32(a);
    case Opcode::LE64: return a;
    default: return a;
  }
}

// Truth value of a conditional jump predicate over 64-bit operands.
template <class BE>
typename BE::B jmp_test(JmpCond c, typename BE::V a, typename BE::V b,
                        BE& be) {
  switch (c) {
    case JmpCond::JEQ: return be.eq(a, b);
    case JmpCond::JNE: return be.ne(a, b);
    case JmpCond::JGT: return be.ugt(a, b);
    case JmpCond::JGE: return be.uge(a, b);
    case JmpCond::JLT: return be.ult(a, b);
    case JmpCond::JLE: return be.ule(a, b);
    case JmpCond::JSGT: return be.sgt(a, b);
    case JmpCond::JSGE: return be.sge(a, b);
    case JmpCond::JSLT: return be.slt(a, b);
    case JmpCond::JSLE: return be.sle(a, b);
    case JmpCond::JSET: return be.set(a, b);
  }
  return be.eq(a, a);  // unreachable
}

}  // namespace k2::ebpf
