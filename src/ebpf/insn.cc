#include "ebpf/insn.h"

#include <array>
#include <cassert>
#include <sstream>

namespace k2::ebpf {

namespace {

constexpr int kNumAluBinops = 12;
constexpr int kAluRegionEnd = kNumAluBinops * 4;  // 48

constexpr uint16_t reg_bit(int r) { return static_cast<uint16_t>(1u << r); }

}  // namespace

InsnClass insn_class(Opcode op) {
  int v = static_cast<int>(op);
  if (v < kAluRegionEnd) return InsnClass::ALU;
  switch (op) {
    case Opcode::NEG64:
    case Opcode::NEG32:
    case Opcode::BE16:
    case Opcode::BE32:
    case Opcode::BE64:
    case Opcode::LE16:
    case Opcode::LE32:
    case Opcode::LE64:
      return InsnClass::ALU;
    case Opcode::JA:
      return InsnClass::JMP;
    case Opcode::LDXB:
    case Opcode::LDXH:
    case Opcode::LDXW:
    case Opcode::LDXDW:
      return InsnClass::LDX;
    case Opcode::STXB:
    case Opcode::STXH:
    case Opcode::STXW:
    case Opcode::STXDW:
      return InsnClass::STX;
    case Opcode::STB:
    case Opcode::STH:
    case Opcode::STW:
    case Opcode::STDW:
      return InsnClass::ST;
    case Opcode::XADD32:
    case Opcode::XADD64:
      return InsnClass::XADD;
    case Opcode::CALL:
      return InsnClass::CALL;
    case Opcode::EXIT:
      return InsnClass::EXIT;
    case Opcode::LDDW:
    case Opcode::LDMAPFD:
      return InsnClass::LD_IMM;
    case Opcode::NOP:
      return InsnClass::NOP;
    default:
      break;
  }
  // Conditional jumps occupy the contiguous region after JA.
  int ja = static_cast<int>(Opcode::JA);
  int jend = ja + 1 + 11 * 2;
  if (v > ja && v < jend) return InsnClass::JMP;
  assert(false && "unknown opcode");
  return InsnClass::NOP;
}

bool decompose_alu(Opcode op, AluShape* shape) {
  int v = static_cast<int>(op);
  if (v >= kAluRegionEnd) return false;
  shape->op = static_cast<AluOp>(v / 4);
  int variant = v % 4;
  shape->is64 = variant < 2;
  shape->is_imm = (variant % 2) == 0;
  return true;
}

bool decompose_jmp(Opcode op, JmpShape* shape) {
  int v = static_cast<int>(op);
  int base = static_cast<int>(Opcode::JEQ_IMM);
  int end = base + 11 * 2;
  if (v < base || v >= end) return false;
  shape->cond = static_cast<JmpCond>((v - base) / 2);
  shape->is_imm = ((v - base) % 2) == 0;
  return true;
}

Opcode compose_alu(AluOp op, bool is64, bool is_imm) {
  int variant = (is64 ? 0 : 2) + (is_imm ? 0 : 1);
  return static_cast<Opcode>(static_cast<int>(op) * 4 + variant);
}

Opcode compose_jmp(JmpCond cond, bool is_imm) {
  int base = static_cast<int>(Opcode::JEQ_IMM);
  return static_cast<Opcode>(base + static_cast<int>(cond) * 2 +
                             (is_imm ? 0 : 1));
}

int mem_width(Opcode op) {
  switch (op) {
    case Opcode::LDXB:
    case Opcode::STXB:
    case Opcode::STB:
      return 1;
    case Opcode::LDXH:
    case Opcode::STXH:
    case Opcode::STH:
      return 2;
    case Opcode::LDXW:
    case Opcode::STXW:
    case Opcode::STW:
    case Opcode::XADD32:
      return 4;
    case Opcode::LDXDW:
    case Opcode::STXDW:
    case Opcode::STDW:
    case Opcode::XADD64:
      return 8;
    default:
      return 0;
  }
}

uint16_t def_mask(const Insn& insn) {
  AluShape a;
  if (decompose_alu(insn.op, &a)) return reg_bit(insn.dst);
  switch (insn_class(insn.op)) {
    case InsnClass::ALU:  // NEG / endian
      return reg_bit(insn.dst);
    case InsnClass::LDX:
    case InsnClass::LD_IMM:
      return reg_bit(insn.dst);
    case InsnClass::CALL:
      // r0 defined; r1..r5 clobbered (scratch) per the BPF calling convention.
      return reg_bit(0) | reg_bit(1) | reg_bit(2) | reg_bit(3) | reg_bit(4) |
             reg_bit(5);
    default:
      return 0;
  }
}

uint16_t use_mask(const Insn& insn) {
  AluShape a;
  if (decompose_alu(insn.op, &a)) {
    uint16_t m = 0;
    if (a.op != AluOp::MOV) m |= reg_bit(insn.dst);
    if (!a.is_imm) m |= reg_bit(insn.src);
    return m;
  }
  JmpShape j;
  if (decompose_jmp(insn.op, &j)) {
    uint16_t m = reg_bit(insn.dst);
    if (!j.is_imm) m |= reg_bit(insn.src);
    return m;
  }
  switch (insn.op) {
    case Opcode::NEG64:
    case Opcode::NEG32:
    case Opcode::BE16:
    case Opcode::BE32:
    case Opcode::BE64:
    case Opcode::LE16:
    case Opcode::LE32:
    case Opcode::LE64:
      return reg_bit(insn.dst);
    case Opcode::JA:
    case Opcode::NOP:
    case Opcode::LDDW:
    case Opcode::LDMAPFD:
      return 0;
    case Opcode::LDXB:
    case Opcode::LDXH:
    case Opcode::LDXW:
    case Opcode::LDXDW:
      return reg_bit(insn.src);
    case Opcode::STXB:
    case Opcode::STXH:
    case Opcode::STXW:
    case Opcode::STXDW:
    case Opcode::XADD32:
    case Opcode::XADD64:
      return reg_bit(insn.dst) | reg_bit(insn.src);
    case Opcode::STB:
    case Opcode::STH:
    case Opcode::STW:
    case Opcode::STDW:
      return reg_bit(insn.dst);
    case Opcode::CALL:
      // Conservative: all five argument registers. The liveness pass narrows
      // this with the helper prototype's argument count.
      return reg_bit(1) | reg_bit(2) | reg_bit(3) | reg_bit(4) | reg_bit(5);
    case Opcode::EXIT:
      return reg_bit(0);
    default:
      return 0;
  }
}

const char* mnemonic(Opcode op) {
  static const std::array<const char*, static_cast<size_t>(
                                           Opcode::NUM_OPCODES)>
      kNames = [] {
        std::array<const char*, static_cast<size_t>(Opcode::NUM_OPCODES)> n{};
        auto set = [&n](Opcode o, const char* s) {
          n[static_cast<size_t>(o)] = s;
        };
#define K2_A(op_)                                        \
  set(Opcode::op_##64_IMM, #op_ "64");                   \
  set(Opcode::op_##64_REG, #op_ "64");                   \
  set(Opcode::op_##32_IMM, #op_ "32");                   \
  set(Opcode::op_##32_REG, #op_ "32");
        K2_ALU_BINOPS(K2_A)
#undef K2_A
#define K2_J(op_)                                        \
  set(Opcode::op_##_IMM, #op_);                          \
  set(Opcode::op_##_REG, #op_);
        K2_JCONDS(K2_J)
#undef K2_J
        set(Opcode::NEG64, "NEG64");
        set(Opcode::NEG32, "NEG32");
        set(Opcode::BE16, "BE16");
        set(Opcode::BE32, "BE32");
        set(Opcode::BE64, "BE64");
        set(Opcode::LE16, "LE16");
        set(Opcode::LE32, "LE32");
        set(Opcode::LE64, "LE64");
        set(Opcode::JA, "JA");
        set(Opcode::LDXB, "LDXB");
        set(Opcode::LDXH, "LDXH");
        set(Opcode::LDXW, "LDXW");
        set(Opcode::LDXDW, "LDXDW");
        set(Opcode::STXB, "STXB");
        set(Opcode::STXH, "STXH");
        set(Opcode::STXW, "STXW");
        set(Opcode::STXDW, "STXDW");
        set(Opcode::STB, "STB");
        set(Opcode::STH, "STH");
        set(Opcode::STW, "STW");
        set(Opcode::STDW, "STDW");
        set(Opcode::XADD32, "XADD32");
        set(Opcode::XADD64, "XADD64");
        set(Opcode::CALL, "CALL");
        set(Opcode::EXIT, "EXIT");
        set(Opcode::LDDW, "LDDW");
        set(Opcode::LDMAPFD, "LDMAPFD");
        set(Opcode::NOP, "NOP");
        return n;
      }();
  const char* s = kNames[static_cast<size_t>(op)];
  return s ? s : "?";
}

std::string to_string(const Insn& insn) {
  std::ostringstream os;
  auto lower = [](const char* s) {
    std::string r;
    for (const char* p = s; *p; ++p) r += static_cast<char>(tolower(*p));
    return r;
  };
  std::string m = lower(mnemonic(insn.op));
  AluShape a;
  JmpShape j;
  if (decompose_alu(insn.op, &a)) {
    os << m << " r" << int(insn.dst) << ", ";
    if (a.is_imm)
      os << insn.imm;
    else
      os << "r" << int(insn.src);
  } else if (decompose_jmp(insn.op, &j)) {
    os << m << " r" << int(insn.dst) << ", ";
    if (j.is_imm)
      os << insn.imm;
    else
      os << "r" << int(insn.src);
    os << ", " << (insn.off >= 0 ? "+" : "") << insn.off;
  } else {
    switch (insn.op) {
      case Opcode::NEG64:
      case Opcode::NEG32:
      case Opcode::BE16:
      case Opcode::BE32:
      case Opcode::BE64:
      case Opcode::LE16:
      case Opcode::LE32:
      case Opcode::LE64:
        os << m << " r" << int(insn.dst);
        break;
      case Opcode::JA:
        os << m << " " << (insn.off >= 0 ? "+" : "") << insn.off;
        break;
      case Opcode::LDXB:
      case Opcode::LDXH:
      case Opcode::LDXW:
      case Opcode::LDXDW:
        os << m << " r" << int(insn.dst) << ", [r" << int(insn.src)
           << (insn.off >= 0 ? "+" : "") << insn.off << "]";
        break;
      case Opcode::STXB:
      case Opcode::STXH:
      case Opcode::STXW:
      case Opcode::STXDW:
      case Opcode::XADD32:
      case Opcode::XADD64:
        os << m << " [r" << int(insn.dst) << (insn.off >= 0 ? "+" : "")
           << insn.off << "], r" << int(insn.src);
        break;
      case Opcode::STB:
      case Opcode::STH:
      case Opcode::STW:
      case Opcode::STDW:
        os << m << " [r" << int(insn.dst) << (insn.off >= 0 ? "+" : "")
           << insn.off << "], " << insn.imm;
        break;
      case Opcode::CALL:
        os << m << " " << insn.imm;
        break;
      case Opcode::EXIT:
      case Opcode::NOP:
        os << m;
        break;
      case Opcode::LDDW:
        os << m << " r" << int(insn.dst) << ", " << insn.imm;
        break;
      case Opcode::LDMAPFD:
        os << m << " r" << int(insn.dst) << ", " << insn.imm;
        break;
      default:
        os << "?";
    }
  }
  return os.str();
}

}  // namespace k2::ebpf
