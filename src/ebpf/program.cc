#include "ebpf/program.h"

#include <sstream>

#include "ebpf/helpers_def.h"

namespace k2::ebpf {

int Program::size_slots() const {
  int n = 0;
  for (const auto& i : insns)
    if (i.op != Opcode::NOP) n += i.size_slots();
  return n;
}

int Program::num_real_insns() const {
  int n = 0;
  for (const auto& i : insns)
    if (i.op != Opcode::NOP) n++;
  return n;
}

Program Program::strip_nops() const {
  Program out;
  out.type = type;
  out.maps = maps;
  // new_index[i] = index of instruction i in the stripped program; NOPs map
  // to the next real instruction (fall-through target).
  std::vector<int> new_index(insns.size() + 1, 0);
  int n = 0;
  for (size_t i = 0; i < insns.size(); ++i) {
    new_index[i] = n;
    if (insns[i].op != Opcode::NOP) n++;
  }
  new_index[insns.size()] = n;
  for (size_t i = 0; i < insns.size(); ++i) {
    const Insn& in = insns[i];
    if (in.op == Opcode::NOP) continue;
    Insn out_insn = in;
    if (is_jump(in.op)) {
      int old_target = static_cast<int>(i) + 1 + in.off;
      out_insn.off =
          static_cast<int16_t>(new_index[old_target] - (new_index[i] + 1));
    }
    out.insns.push_back(out_insn);
  }
  return out;
}

std::string Program::to_string() const {
  std::ostringstream os;
  for (size_t i = 0; i < insns.size(); ++i)
    os << i << ": " << k2::ebpf::to_string(insns[i]) << "\n";
  return os.str();
}

std::optional<std::string> validate_structure(const Program& prog) {
  const int n = static_cast<int>(prog.insns.size());
  if (n == 0) return "empty program";
  bool has_exit = false;
  for (int i = 0; i < n; ++i) {
    const Insn& insn = prog.insns[i];
    if (insn.dst > 10) return "bad dst register at " + std::to_string(i);
    if (insn.src > 10) return "bad src register at " + std::to_string(i);
    if (is_jump(insn.op)) {
      int t = i + 1 + insn.off;
      if (t < 0 || t >= n) return "jump out of bounds at " + std::to_string(i);
    }
    if (insn.op == Opcode::CALL) {
      if (!helper_proto(insn.imm))
        return "unknown helper " + std::to_string(insn.imm) + " at " +
               std::to_string(i);
    }
    if (insn.op == Opcode::LDMAPFD) {
      if (insn.imm < 0 || insn.imm >= static_cast<int64_t>(prog.maps.size()))
        return "bad map fd at " + std::to_string(i);
    }
    if (insn.op == Opcode::EXIT) has_exit = true;
    if (is_mem_access(insn.op) == false && insn.op != Opcode::NOP &&
        insn.op != Opcode::JA && !is_jump(insn.op)) {
      // nothing further
    }
  }
  if (!has_exit) return "no exit instruction";
  return std::nullopt;
}

}  // namespace k2::ebpf
