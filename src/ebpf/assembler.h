// Textual BPF assembler / disassembler.
//
// Syntax (one instruction per line; ';', '#', and '//' start comments):
//   mov64 r1, 0            ; ALU imm form
//   add64 r1, r2           ; ALU reg form
//   neg64 r1 / be16 r1     ; unary ALU
//   ldxw r2, [r1+4]        ; loads
//   stxdw [r10-8], r3      ; register stores
//   stw [r10-4], 7         ; immediate stores
//   xadd64 [r1+0], r2      ; atomic add
//   jeq r1, 0, out         ; conditional jump to label (or +N offset)
//   ja out
//   call 1                 ; helper call by ID
//   lddw r1, 0x1122334455  ; 64-bit immediate
//   ldmapfd r1, 0          ; load map handle for map fd 0
//   exit
//   out:                   ; label definition
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "ebpf/program.h"

namespace k2::ebpf {

struct AsmError : std::runtime_error {
  explicit AsmError(const std::string& what) : std::runtime_error(what) {}
};

struct AsmOptions {
  // Accept structurally invalid programs: jump targets may land outside the
  // program and validate_structure is not enforced. The conformance fuzzer
  // uses this to round-trip "wild" (deliberately broken) programs and to
  // reload mismatch repros that encode a faulting candidate.
  bool lenient = false;
};

// Assembles `text` into a program of hook type `type` with map definitions
// `maps` (fd = index). Throws AsmError with a line-numbered message on
// malformed input.
Program assemble(std::string_view text, ProgType type = ProgType::XDP,
                 std::vector<MapDef> maps = {}, const AsmOptions& opts = {});

// Disassembles back to assembler-compatible text. Labels are synthesized
// for in-range jump targets; a target outside [0, size] (possible in raw
// candidate programs) is printed as a raw +N/-N offset, which reassembles
// bit-exactly under AsmOptions::lenient.
std::string disassemble(const Program& prog);

}  // namespace k2::ebpf
