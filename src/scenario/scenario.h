// Traffic scenarios (k2-scenario/v1): declarative, seedable workload models
// that the cost stage expands into concrete test inputs. K2 prices a
// candidate by running it over a traffic workload (the TRACE_LATENCY
// perf-model backend); before this subsystem the workload was one
// hard-coded synthetic mix (sim::make_workload). A Scenario makes that mix
// a first-class, versioned request parameter: packet-size distributions
// (uniform / bimodal / heavy-tail / IMIX), arrival-pattern shaping (steady,
// ktime-clustered bursts, incast-like flow-key concentration), and
// map-state regimes (cold / warm / hot / full, per-map hit rates,
// adversarial collision keys) — so "optimize for *this* traffic" is
// expressible and Table 7-style estimation fidelity can be swept per
// scenario (bench_scenarios).
//
// Layering: this subsystem sits between the corpus and the cost function —
// it depends on util/ebpf/interp/sim (and the dependency-free constants
// header api/schema.h); src/core and src/api depend on it, never the
// reverse.
//
// Determinism contract: expand(scenario, program, seed) is a pure function
// — byte-identical std::vector<interp::InputSpec> for equal arguments, on
// every thread, in every process. Batch-report determinism across shard
// orders and --threads values (core::BatchCompiler) depends on this, the
// same way it depends on the perf-model backends being deterministic.
//
// Back-compat anchor: the built-in `default` scenario (a value-initialized
// Scenario) expands bit-for-bit identically to the legacy
// sim::make_workload(prog, n, seed) — enforced by a differential test in
// tests/scenario_test.cc — so requests that name no scenario price
// candidates exactly as before this subsystem existed.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "ebpf/program.h"
#include "interp/state.h"
#include "util/json.h"

namespace k2::scenario {

// The map hit rate of the default scenario — THE centralized constant for
// the two historical call sites that disagreed (core/compiler.cc passed
// 0.7 to make_workload while sim/perf_eval.h declared a 0.75 default).
// 0.7 wins because it is the value the search has always used to generate
// its initial test suite, so same-seed winners stay bit-identical; the
// TRACE_LATENCY workload now uses the same value (sim/perf_eval.h's
// declared default was aligned to it). tests/scenario_test.cc pins the
// agreement.
inline constexpr double kDefaultMapHitRate = 0.7;

// Packet-length distributions.
enum class SizeDist : uint8_t {
  UNIFORM,     // uniform in [min_len, max_len] (default: the legacy 60..94)
  BIMODAL,     // small_len with probability small_frac, else large_len
  HEAVY_TAIL,  // bounded Pareto(tail_alpha) truncated to [min_len, max_len]
  IMIX,        // the classic 7:4:1 mix of 64 / 594 / 1518-byte frames
};

// Arrival-pattern shaping. Programs observe arrival structure through
// ktime (bursts cluster timestamps) and through flow keys written into the
// IPv4 address/port bytes (incast concentrates them).
enum class Arrival : uint8_t {
  STEADY,  // independent packets, legacy ktime jitter
  BURST,   // ktime advances in bursts of burst_len spaced burst_gap_ns
  INCAST,  // hot_flow_frac of packets carry flow key 0 (plus `flows` others)
};

// Map-state regimes: what candidate programs find in their maps.
enum class MapRegime : uint8_t {
  COLD,  // every map empty — all lookups miss
  WARM,  // each HASH map pre-populated with probability hit_rate (legacy)
  HOT,   // every map pre-populated — lookups for seeded keys hit
  FULL,  // HASH maps filled to max_entries — full-table behavior
};

const char* to_string(SizeDist d);
const char* to_string(Arrival a);
const char* to_string(MapRegime r);
bool size_dist_from_string(const std::string& s, SizeDist* out);
bool arrival_from_string(const std::string& s, Arrival* out);
bool map_regime_from_string(const std::string& s, MapRegime* out);

struct PacketModel {
  SizeDist size_dist = SizeDist::UNIFORM;
  int min_len = 60;         // uniform lower bound / heavy-tail minimum
  int max_len = 94;         // uniform upper bound / heavy-tail truncation
  int small_len = 64;       // bimodal small peak
  int large_len = 1500;     // bimodal large peak
  double small_frac = 0.5;  // bimodal P(small)
  double tail_alpha = 1.3;  // heavy-tail shape (smaller = heavier tail)
  friend bool operator==(const PacketModel&, const PacketModel&) = default;
};

struct ArrivalModel {
  Arrival pattern = Arrival::STEADY;
  // > 0: draw the IPv4 source/destination address and UDP port bytes from
  // this many distinct flow keys instead of leaving them fully random.
  int flows = 0;
  double hot_flow_frac = 0.0;        // INCAST: P(packet belongs to flow 0)
  int burst_len = 8;                 // BURST: packets per burst
  uint64_t burst_gap_ns = 1'000'000; // BURST: ktime gap between bursts
  friend bool operator==(const ArrivalModel&, const ArrivalModel&) = default;
};

struct MapModel {
  MapRegime regime = MapRegime::WARM;
  double hit_rate = kDefaultMapHitRate;  // WARM: P(a HASH map is populated)
  int entries_per_map = 4;               // entries seeded when populated
  // Seed HASH-map keys that collide in their low byte (plus the all-ones
  // boundary key) to model bucket-collision-heavy tables. Array-like maps
  // are unaffected (collisions are a hash phenomenon; arrays keep index
  // keys so the regime still seeds live values).
  bool adversarial_keys = false;
  friend bool operator==(const MapModel&, const MapModel&) = default;
};

// One diagnostic from strict scenario parsing/validation: a JSON-pointer
// path ("$.packet.min_len") plus a message. Mirrors api::Diagnostic, which
// cannot be used here because src/api sits above this layer; the api layer
// converts (prefixing paths with the request field that carried the
// scenario).
struct Diag {
  std::string path;
  std::string message;
  std::string str() const { return path + ": " + message; }
};

// Thrown by Scenario::from_json and validate_or_throw; carries every
// diagnostic found (not just the first), joined in what().
class ScenarioError : public std::runtime_error {
 public:
  explicit ScenarioError(std::vector<Diag> diags);
  const std::vector<Diag>& diagnostics() const { return diags_; }

 private:
  std::vector<Diag> diags_;
};

struct Scenario {
  // Identity. `name` travels into CompileResult / batch reports / serve
  // metrics for provenance; neither name nor description participates in
  // the content fingerprint (two scenarios with equal semantics fingerprint
  // identically whatever they are called).
  std::string name = "default";
  std::string description;

  int inputs = 32;           // workload size when no caller override is given
  uint64_t seed_offset = 0;  // added to the expansion seed (wrapping)

  PacketModel packet;
  ArrivalModel arrival;
  MapModel maps;

  friend bool operator==(const Scenario&, const Scenario&) = default;

  // Structural/range validation. Empty result = valid. from_json()
  // additionally rejects unknown fields and unknown enum strings.
  std::vector<Diag> validate() const;
  void validate_or_throw() const;  // throws ScenarioError

  // Canonical JSON (schema k2-scenario/v1); to_json()/from_json() are
  // exact inverses and round-trip every field.
  util::Json to_json() const;
  // Strict parse: schema version, field names (at every nesting level),
  // types, enum strings and ranges are all enforced; throws ScenarioError
  // listing every problem with its $.path.
  static Scenario from_json(const util::Json& j);

  // Content fingerprint: 16 hex digits of FNV-1a 64 over the canonical
  // JSON of the semantic fields (everything except name/description).
  // Recorded next to `name` wherever the scenario is reported.
  std::string fingerprint() const;
};

// ---- built-in catalog -------------------------------------------------------

// The `default` scenario: a value-initialized Scenario, expanding
// bit-for-bit as the legacy sim::make_workload.
const Scenario& default_scenario();

// All built-in scenarios, `default` first. Shipped as JSON under
// examples/scenarios/ (generated from these definitions) and listed by
// `k2c scenario list`.
const std::vector<Scenario>& catalog();

// Lookup by name; nullptr for unknown names (callers make that a hard
// error — there is no silent fall-back to `default`).
const Scenario* find_scenario(const std::string& name);

// "default|imix_hot_maps|..." for error messages.
std::string catalog_names();

// ---- expansion --------------------------------------------------------------

// Compiles a scenario into `n` concrete test inputs for `prog` (its maps
// decide what map pre-population means). Pure and deterministic: equal
// (scenario-semantics, prog, n, seed) always yields byte-identical specs.
// The effective RNG seed is seed + scenario.seed_offset.
std::vector<interp::InputSpec> expand(const Scenario& scn,
                                      const ebpf::Program& prog, int n,
                                      uint64_t seed);

// Same, with n = scn.inputs.
std::vector<interp::InputSpec> expand(const Scenario& scn,
                                      const ebpf::Program& prog,
                                      uint64_t seed);

}  // namespace k2::scenario
