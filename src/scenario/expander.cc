// Scenario expansion: turn a declarative traffic model into concrete
// interp::InputSpec workloads.
//
// BIT-IDENTITY INVARIANT: for the default scenario (value-initialized
// Scenario — UNIFORM 60..94, STEADY with no flow keys, WARM maps at
// kDefaultMapHitRate with 4 entries) this function must consume its
// mt19937_64 in EXACTLY the order the legacy sim::make_workload did, so
// the expansion is byte-for-byte the legacy workload and pre-scenario
// TRACE_LATENCY costs / same-seed winners are preserved. The load-bearing
// details, each pinned by the differential test in tests/scenario_test.cc:
//
//  * all distributions are constructed once, outside the packet loop;
//  * the map-skip unit(rng) draw happens for EVERY map (ARRAY/DEVMAP
//    included), even though only HASH maps can actually be skipped;
//  * hash-entry 0 uses key 0 without drawing from the RNG; entries > 0
//    draw rng() % 256;
//  * non-default branches may consume the RNG differently — only the
//    default path carries the legacy contract.
#include "scenario/expander.h"

#include <algorithm>
#include <cmath>
#include <random>

namespace k2::scenario {

namespace {

// Classic IMIX: 64/594/1518-byte frames in a 7:4:1 ratio.
constexpr int kImixLens[3] = {64, 594, 1518};
constexpr double kImixCum[3] = {7.0 / 12.0, 11.0 / 12.0, 1.0};

int draw_len(const PacketModel& pm, std::mt19937_64& rng,
             std::uniform_int_distribution<int>& uniform_len,
             std::uniform_real_distribution<double>& unit) {
  switch (pm.size_dist) {
    case SizeDist::UNIFORM:
      return uniform_len(rng);
    case SizeDist::BIMODAL:
      return unit(rng) < pm.small_frac ? pm.small_len : pm.large_len;
    case SizeDist::HEAVY_TAIL: {
      // Bounded Pareto via inverse CDF: L / (1 - u*(1 - (L/H)^a))^(1/a).
      double u = unit(rng);
      double lo = double(pm.min_len), hi = double(pm.max_len);
      double ratio = std::pow(lo / hi, pm.tail_alpha);
      double x = lo / std::pow(1.0 - u * (1.0 - ratio), 1.0 / pm.tail_alpha);
      return std::clamp(int(x), pm.min_len, pm.max_len);
    }
    case SizeDist::IMIX: {
      double u = unit(rng);
      int len = kImixLens[u < kImixCum[0] ? 0 : (u < kImixCum[1] ? 1 : 2)];
      return std::clamp(len, pm.min_len, pm.max_len);
    }
  }
  return pm.min_len;
}

// Stamps flow `f`'s identity into the IPv4 address/port bytes (offsets
// 26..37 of an Ethernet+IPv4+UDP frame): many sources, one destination —
// the shape a flow-keyed program actually hashes on under incast.
void stamp_flow_key(std::vector<uint8_t>& pkt, int f) {
  if (pkt.size() < 38) return;
  pkt[26] = 10;  // src 10.0.f_hi.f_lo
  pkt[27] = 0;
  pkt[28] = uint8_t((f >> 8) & 0xff);
  pkt[29] = uint8_t(f & 0xff);
  pkt[30] = 10;  // dst 10.1.0.1 (the single incast receiver)
  pkt[31] = 1;
  pkt[32] = 0;
  pkt[33] = 1;
  uint16_t sport = uint16_t(0xC000 + (f & 0x3fff));
  pkt[34] = uint8_t(sport >> 8);
  pkt[35] = uint8_t(sport & 0xff);
  pkt[36] = 0x1f;  // dst port 8080
  pkt[37] = 0x90;
}

// How many entries to seed into map `def` under `mm`, and whether a WARM
// skip draw applies. Entry count 0 with populate=true still performs no
// writes, matching the legacy ARRAY/DEVMAP behavior.
int seeded_entries(const MapModel& mm, const ebpf::MapDef& def) {
  int cap = int(std::min<uint32_t>(def.max_entries, 65536));
  switch (mm.regime) {
    case MapRegime::COLD:
      return 0;
    case MapRegime::WARM:
      // Legacy shape: hash maps get entries_per_map, others nothing.
      return def.kind == ebpf::MapKind::HASH
                 ? std::min(mm.entries_per_map, cap)
                 : 0;
    case MapRegime::HOT:
      return std::min(mm.entries_per_map, cap);
    case MapRegime::FULL:
      return def.kind == ebpf::MapKind::HASH
                 ? std::min(cap, 64)
                 : std::min(mm.entries_per_map, cap);
  }
  return 0;
}

// Key for seeded entry `e`. Legacy path (WARM, non-adversarial): entry 0 is
// key 0 with NO rng draw, later entries draw rng() % 256. HOT/FULL use the
// entry index so seeded keys are distinct and deterministic. Adversarial
// keys collide in their low byte (index carried in the second byte), with
// entry 0 as the all-ones boundary key — a hash-bucket phenomenon, so they
// apply to HASH maps only: for array-like maps those keys are out-of-range
// indices the kernel would reject, and seeding nothing would silently turn
// the regime off, so arrays keep their index keys (what HOT/FULL mean for
// an array is "entries 0..k-1 hold live, nonzero values").
uint64_t entry_key(const MapModel& mm, ebpf::MapKind kind,
                   std::mt19937_64& rng, int e) {
  if (mm.adversarial_keys && kind == ebpf::MapKind::HASH)
    return e == 0 ? ~0ull : (uint64_t(e) << 8);
  if (mm.regime == MapRegime::HOT || mm.regime == MapRegime::FULL)
    return uint64_t(e);
  return e == 0 ? 0 : rng() % 256;
}

}  // namespace

std::vector<interp::InputSpec> expand(const Scenario& scn,
                                      const ebpf::Program& prog, int n,
                                      uint64_t seed) {
  // Out-of-range fields would be UB below (uniform_int_distribution with
  // max < min), so expansion refuses rather than trusting every caller to
  // have validated.
  scn.validate_or_throw();
  const PacketModel& pm = scn.packet;
  const ArrivalModel& am = scn.arrival;
  const MapModel& mm = scn.maps;

  std::vector<interp::InputSpec> out;
  out.reserve(size_t(std::max(0, n)));
  std::mt19937_64 rng(seed + scn.seed_offset);
  std::uniform_int_distribution<int> uniform_len(pm.min_len, pm.max_len);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  for (int i = 0; i < n; ++i) {
    interp::InputSpec in;
    int len = draw_len(pm, rng, uniform_len, unit);
    in.packet.resize(size_t(len));
    // Plausible Ethernet/IPv4/UDP scaffold with randomized addresses/ports.
    for (auto& b : in.packet) b = uint8_t(byte_dist(rng));
    in.packet[12] = 0x08;  // ethertype IPv4
    in.packet[13] = 0x00;
    in.packet[14] = 0x45;  // IPv4, IHL 5
    in.packet[23] = 17;    // UDP
    if (am.flows > 0) {
      int flow;
      if (am.pattern == Arrival::INCAST) {
        flow = unit(rng) < am.hot_flow_frac
                   ? 0
                   : (am.flows > 1 ? 1 + int(rng() % uint64_t(am.flows - 1))
                                   : 0);
      } else {
        flow = int(rng() % uint64_t(am.flows));
      }
      stamp_flow_key(in.packet, flow);
    }
    in.prandom_seed = rng();
    if (am.pattern == Arrival::BURST) {
      // Bursts of burst_len back-to-back packets (1us apart) separated by
      // burst_gap_ns. Deterministic — no rng draw on this branch.
      in.ktime_base = 1'000'000'000ull +
                      uint64_t(i / am.burst_len) * am.burst_gap_ns +
                      uint64_t(i % am.burst_len) * 1000;
    } else {
      in.ktime_base = 1'000'000'000ull + (rng() & 0xffffff);
    }
    in.cpu_id = uint32_t(rng() % 8);
    in.ctx_args[0] = rng() & 0xffff;
    in.ctx_args[1] = rng() & 0xffff;

    for (size_t fd = 0; fd < prog.maps.size(); ++fd) {
      const ebpf::MapDef& def = prog.maps[fd];
      if (mm.regime == MapRegime::COLD) continue;  // no draws at all
      // The WARM skip draw is consumed for EVERY map kind (legacy quirk);
      // only HASH maps can actually be skipped.
      if (mm.regime == MapRegime::WARM && unit(rng) > mm.hit_rate &&
          def.kind == ebpf::MapKind::HASH)
        continue;
      int entries = seeded_entries(mm, def);
      for (int e = 0; e < entries; ++e) {
        interp::MapEntryInit me;
        me.key.resize(def.key_size);
        uint64_t kv = entry_key(mm, def.kind, rng, e);
        bool adv = mm.adversarial_keys && def.kind == ebpf::MapKind::HASH;
        for (uint32_t b = 0; b < def.key_size; ++b)
          me.key[b] = b < 8 ? uint8_t((kv >> (8 * b)) & 0xff)
                            : uint8_t(adv && e == 0 ? 0xff : 0);
        me.value.resize(def.value_size);
        for (auto& b : me.value) b = uint8_t(byte_dist(rng));
        in.maps[int(fd)].push_back(std::move(me));
      }
    }
    out.push_back(std::move(in));
  }
  return out;
}

std::vector<interp::InputSpec> expand(const Scenario& scn,
                                      const ebpf::Program& prog,
                                      uint64_t seed) {
  return expand(scn, prog, scn.inputs, seed);
}

}  // namespace k2::scenario
