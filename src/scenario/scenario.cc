#include "scenario/scenario.h"

#include <algorithm>
#include <cstdio>

#include "api/schema.h"

namespace k2::scenario {

namespace {

using util::Json;

std::string join_diags(const std::vector<Diag>& diags) {
  std::string s = "invalid scenario";
  for (const Diag& d : diags) s += "\n  " + d.str();
  return s;
}

}  // namespace

ScenarioError::ScenarioError(std::vector<Diag> diags)
    : std::runtime_error(join_diags(diags)), diags_(std::move(diags)) {}

const char* to_string(SizeDist d) {
  switch (d) {
    case SizeDist::UNIFORM: return "uniform";
    case SizeDist::BIMODAL: return "bimodal";
    case SizeDist::HEAVY_TAIL: return "heavy_tail";
    case SizeDist::IMIX: return "imix";
  }
  return "?";
}

const char* to_string(Arrival a) {
  switch (a) {
    case Arrival::STEADY: return "steady";
    case Arrival::BURST: return "burst";
    case Arrival::INCAST: return "incast";
  }
  return "?";
}

const char* to_string(MapRegime r) {
  switch (r) {
    case MapRegime::COLD: return "cold";
    case MapRegime::WARM: return "warm";
    case MapRegime::HOT: return "hot";
    case MapRegime::FULL: return "full";
  }
  return "?";
}

bool size_dist_from_string(const std::string& s, SizeDist* out) {
  for (SizeDist d : {SizeDist::UNIFORM, SizeDist::BIMODAL, SizeDist::HEAVY_TAIL,
                     SizeDist::IMIX}) {
    if (s == to_string(d)) { *out = d; return true; }
  }
  return false;
}

bool arrival_from_string(const std::string& s, Arrival* out) {
  for (Arrival a : {Arrival::STEADY, Arrival::BURST, Arrival::INCAST}) {
    if (s == to_string(a)) { *out = a; return true; }
  }
  return false;
}

bool map_regime_from_string(const std::string& s, MapRegime* out) {
  for (MapRegime r :
       {MapRegime::COLD, MapRegime::WARM, MapRegime::HOT, MapRegime::FULL}) {
    if (s == to_string(r)) { *out = r; return true; }
  }
  return false;
}

// ---- validation -------------------------------------------------------------

std::vector<Diag> Scenario::validate() const {
  std::vector<Diag> out;
  auto bad = [&out](const char* path, std::string msg) {
    out.push_back({path, std::move(msg)});
  };
  if (inputs < 1 || inputs > 65536)
    bad("$.inputs", "must be in [1, 65536]");
  // 24 keeps the fixed header bytes (ethertype at offset 12/13, IP header
  // at 14, protocol at 23) inside every packet; 9000 = jumbo-frame cap.
  if (packet.min_len < 24 || packet.min_len > 9000)
    bad("$.packet.min_len", "must be in [24, 9000]");
  if (packet.max_len < packet.min_len || packet.max_len > 9000)
    bad("$.packet.max_len", "must be in [min_len, 9000]");
  if (packet.small_len < 24 || packet.small_len > 9000)
    bad("$.packet.small_len", "must be in [24, 9000]");
  if (packet.large_len < 24 || packet.large_len > 9000)
    bad("$.packet.large_len", "must be in [24, 9000]");
  if (!(packet.small_frac >= 0.0 && packet.small_frac <= 1.0))
    bad("$.packet.small_frac", "must be in [0, 1]");
  if (!(packet.tail_alpha > 0.0 && packet.tail_alpha <= 16.0))
    bad("$.packet.tail_alpha", "must be in (0, 16]");
  if (arrival.flows < 0 || arrival.flows > 1'000'000)
    bad("$.arrival.flows", "must be in [0, 1000000]");
  if (!(arrival.hot_flow_frac >= 0.0 && arrival.hot_flow_frac <= 1.0))
    bad("$.arrival.hot_flow_frac", "must be in [0, 1]");
  if (arrival.burst_len < 1 || arrival.burst_len > 65536)
    bad("$.arrival.burst_len", "must be in [1, 65536]");
  if (arrival.pattern == Arrival::INCAST && arrival.flows == 0)
    bad("$.arrival.flows", "incast requires flows >= 1");
  if (!(maps.hit_rate >= 0.0 && maps.hit_rate <= 1.0))
    bad("$.maps.hit_rate", "must be in [0, 1]");
  if (maps.entries_per_map < 0 || maps.entries_per_map > 65536)
    bad("$.maps.entries_per_map", "must be in [0, 65536]");
  return out;
}

void Scenario::validate_or_throw() const {
  std::vector<Diag> diags = validate();
  if (!diags.empty()) throw ScenarioError(std::move(diags));
}

// ---- JSON -------------------------------------------------------------------

util::Json Scenario::to_json() const {
  Json packet_j{Json::Object{}};
  packet_j.set("size_dist", to_string(packet.size_dist));
  packet_j.set("min_len", int64_t(packet.min_len));
  packet_j.set("max_len", int64_t(packet.max_len));
  packet_j.set("small_len", int64_t(packet.small_len));
  packet_j.set("large_len", int64_t(packet.large_len));
  packet_j.set("small_frac", packet.small_frac);
  packet_j.set("tail_alpha", packet.tail_alpha);

  Json arrival_j{Json::Object{}};
  arrival_j.set("pattern", to_string(arrival.pattern));
  arrival_j.set("flows", int64_t(arrival.flows));
  arrival_j.set("hot_flow_frac", arrival.hot_flow_frac);
  arrival_j.set("burst_len", int64_t(arrival.burst_len));
  arrival_j.set("burst_gap_ns", arrival.burst_gap_ns);

  Json maps_j{Json::Object{}};
  maps_j.set("regime", to_string(maps.regime));
  maps_j.set("hit_rate", maps.hit_rate);
  maps_j.set("entries_per_map", int64_t(maps.entries_per_map));
  maps_j.set("adversarial_keys", maps.adversarial_keys);

  Json j{Json::Object{}};
  j.set("schema", api::kScenarioSchema);
  j.set("name", name);
  j.set("description", description);
  j.set("inputs", int64_t(inputs));
  j.set("seed_offset", seed_offset);
  j.set("packet", std::move(packet_j));
  j.set("arrival", std::move(arrival_j));
  j.set("maps", std::move(maps_j));
  return j;
}

namespace {

// Strict object reader in the style of api/request.cc's FieldReader, with
// scenario-local diagnostics. Every problem is collected (not just the
// first) so a lint pass reports the whole file at once.
class Reader {
 public:
  Reader(const Json& j, std::string path, std::vector<Diag>* diags)
      : j_(j), path_(std::move(path)), diags_(diags) {}

  bool ok() const { return j_.is_object(); }

  void require_object() {
    if (!j_.is_object()) fail("", "expected an object");
  }

  void check_unknown(const std::vector<std::string>& known) {
    if (!j_.is_object()) return;
    for (const auto& [key, value] : j_.as_object()) {
      (void)value;
      if (std::find(known.begin(), known.end(), key) == known.end())
        fail("." + key, "unknown field");
    }
  }

  void read_string(const char* key, std::string* out) {
    const Json* v = field(key);
    if (!v) return;
    if (!v->is_string()) return fail_key(key, "expected a string");
    *out = v->as_string();
  }

  void read_int(const char* key, int* out) {
    const Json* v = field(key);
    if (!v) return;
    if (!v->is_int()) return fail_key(key, "expected an integer");
    *out = int(v->as_int());
  }

  void read_uint(const char* key, uint64_t* out) {
    const Json* v = field(key);
    if (!v) return;
    if (!v->is_int()) return fail_key(key, "expected an integer");
    *out = v->as_uint();
  }

  void read_double(const char* key, double* out) {
    const Json* v = field(key);
    if (!v) return;
    if (!v->is_number()) return fail_key(key, "expected a number");
    *out = v->as_double();
  }

  void read_bool(const char* key, bool* out) {
    const Json* v = field(key);
    if (!v) return;
    if (!v->is_bool()) return fail_key(key, "expected a boolean");
    *out = v->as_bool();
  }

  template <typename T, typename Parse>
  void read_enum(const char* key, T* out, Parse parse, const char* values) {
    const Json* v = field(key);
    if (!v) return;
    if (!v->is_string()) return fail_key(key, "expected a string");
    if (!parse(v->as_string(), out))
      fail_key(key, "unknown value '" + v->as_string() + "' (expected " +
                        values + ")");
  }

  const Json* field(const char* key) const {
    return j_.is_object() ? j_.get(key) : nullptr;
  }

  void fail(const std::string& suffix, std::string msg) {
    diags_->push_back({path_ + suffix, std::move(msg)});
  }
  void fail_key(const char* key, std::string msg) {
    fail(std::string(".") + key, std::move(msg));
  }

 private:
  const Json& j_;
  std::string path_;
  std::vector<Diag>* diags_;
};

}  // namespace

Scenario Scenario::from_json(const util::Json& j) {
  std::vector<Diag> diags;
  Scenario s;
  Reader top(j, "$", &diags);
  top.require_object();
  if (top.ok()) {
    // docs:scenario-fields-begin — the k2-scenario/v1 field whitelist.
    // Every name listed here (and in the nested packet/arrival/maps
    // whitelists below) must have a row in docs/SCENARIOS.md; enforced by
    // scripts/check_docs.py.
    top.check_unknown({"schema", "name", "description", "inputs",
                       "seed_offset", "packet", "arrival", "maps"});
    const Json* schema = top.field("schema");
    if (!schema) {
      top.fail(".schema", "missing (expected \"" +
                              std::string(api::kScenarioSchema) + "\")");
    } else if (!schema->is_string() ||
               schema->as_string() != api::kScenarioSchema) {
      top.fail(".schema", "unsupported schema (expected \"" +
                              std::string(api::kScenarioSchema) + "\")");
    }
    top.read_string("name", &s.name);
    top.read_string("description", &s.description);
    top.read_int("inputs", &s.inputs);
    top.read_uint("seed_offset", &s.seed_offset);

    if (const Json* p = top.field("packet")) {
      Reader r(*p, "$.packet", &diags);
      r.require_object();
      r.check_unknown({"size_dist", "min_len", "max_len", "small_len",
                       "large_len", "small_frac", "tail_alpha"});
      r.read_enum("size_dist", &s.packet.size_dist, size_dist_from_string,
                  "uniform|bimodal|heavy_tail|imix");
      r.read_int("min_len", &s.packet.min_len);
      r.read_int("max_len", &s.packet.max_len);
      r.read_int("small_len", &s.packet.small_len);
      r.read_int("large_len", &s.packet.large_len);
      r.read_double("small_frac", &s.packet.small_frac);
      r.read_double("tail_alpha", &s.packet.tail_alpha);
    }
    if (const Json* a = top.field("arrival")) {
      Reader r(*a, "$.arrival", &diags);
      r.require_object();
      r.check_unknown(
          {"pattern", "flows", "hot_flow_frac", "burst_len", "burst_gap_ns"});
      r.read_enum("pattern", &s.arrival.pattern, arrival_from_string,
                  "steady|burst|incast");
      r.read_int("flows", &s.arrival.flows);
      r.read_double("hot_flow_frac", &s.arrival.hot_flow_frac);
      r.read_int("burst_len", &s.arrival.burst_len);
      r.read_uint("burst_gap_ns", &s.arrival.burst_gap_ns);
    }
    if (const Json* m = top.field("maps")) {
      Reader r(*m, "$.maps", &diags);
      r.require_object();
      r.check_unknown(
          {"regime", "hit_rate", "entries_per_map", "adversarial_keys"});
      r.read_enum("regime", &s.maps.regime, map_regime_from_string,
                  "cold|warm|hot|full");
      r.read_double("hit_rate", &s.maps.hit_rate);
      r.read_int("entries_per_map", &s.maps.entries_per_map);
      r.read_bool("adversarial_keys", &s.maps.adversarial_keys);
    }
    // docs:scenario-fields-end
  }
  if (diags.empty()) {
    std::vector<Diag> range = s.validate();
    diags.insert(diags.end(), range.begin(), range.end());
  }
  if (!diags.empty()) throw ScenarioError(std::move(diags));
  return s;
}

std::string Scenario::fingerprint() const {
  // Canonical form of the semantic fields only: serialize the full
  // scenario, drop name/description, FNV-1a 64 the compact dump. Catalog
  // entries and files with equal semantics fingerprint identically.
  Json full = to_json();
  Json canon{Json::Object{}};
  for (const auto& [key, value] : full.as_object()) {
    if (key == "name" || key == "description") continue;
    canon.set(key, value);
  }
  std::string bytes = canon.dump();
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", (unsigned long long)h);
  return buf;
}

// ---- built-in catalog -------------------------------------------------------

namespace {

std::vector<Scenario> build_catalog() {
  std::vector<Scenario> cat;

  Scenario def;  // value-initialized == the legacy make_workload mix
  def.description =
      "Legacy synthetic mix: uniform 60-94B UDP packets, warm hash maps at "
      "hit rate 0.7. Expands bit-identically to the pre-scenario "
      "sim::make_workload.";
  cat.push_back(def);

  Scenario imix;
  imix.name = "imix_hot_maps";
  imix.description =
      "Classic 7:4:1 IMIX frame mix (64/594/1518B) against fully "
      "pre-populated maps: every lookup of a seeded key hits.";
  imix.packet.size_dist = SizeDist::IMIX;
  imix.packet.min_len = 64;
  imix.packet.max_len = 1518;
  imix.maps.regime = MapRegime::HOT;
  cat.push_back(imix);

  Scenario incast;
  incast.name = "incast_cold_maps";
  incast.description =
      "Incast-like concentration: 90% of small packets (24-128B, including "
      "runts below parseable headers) carry one hot flow key (32 flows "
      "total) and every map starts empty, so flow-state lookups miss.";
  incast.packet.min_len = 24;
  incast.packet.max_len = 128;
  incast.arrival.pattern = Arrival::INCAST;
  incast.arrival.flows = 32;
  incast.arrival.hot_flow_frac = 0.9;
  incast.maps.regime = MapRegime::COLD;
  cat.push_back(incast);

  Scenario tail;
  tail.name = "heavy_tail_bursts";
  tail.description =
      "Bounded-Pareto packet sizes (alpha 1.2, 24-1514B: mostly mice, "
      "occasional elephants) arriving in 8-packet bursts 1ms apart; maps "
      "warm at a degraded 0.5 hit rate.";
  tail.packet.size_dist = SizeDist::HEAVY_TAIL;
  tail.packet.min_len = 24;
  tail.packet.max_len = 1514;
  tail.packet.tail_alpha = 1.2;
  tail.arrival.pattern = Arrival::BURST;
  tail.maps.hit_rate = 0.5;
  cat.push_back(tail);

  Scenario adv;
  adv.name = "adversarial_full";
  adv.description =
      "Worst-case state: hash maps filled toward max_entries with keys "
      "colliding in their low byte plus the all-ones boundary key; "
      "array-like maps hold live nonzero entries (control flags set).";
  adv.maps.regime = MapRegime::FULL;
  adv.maps.adversarial_keys = true;
  cat.push_back(adv);

  return cat;
}

}  // namespace

const std::vector<Scenario>& catalog() {
  static const std::vector<Scenario> cat = build_catalog();
  return cat;
}

const Scenario& default_scenario() { return catalog().front(); }

const Scenario* find_scenario(const std::string& name) {
  for (const Scenario& s : catalog())
    if (s.name == name) return &s;
  return nullptr;
}

std::string catalog_names() {
  std::string out;
  for (const Scenario& s : catalog()) {
    if (!out.empty()) out += "|";
    out += s.name;
  }
  return out;
}

}  // namespace k2::scenario
