// ScenarioExpander: compiles a validated Scenario into concrete
// interp::InputSpec workloads. A thin, immutable wrapper over the free
// scenario::expand() functions for callers that expand one scenario many
// times (the batch compiler expands once per benchmark program) and want
// validation hoisted to construction time.
#pragma once

#include <vector>

#include "scenario/scenario.h"

namespace k2::scenario {

class ScenarioExpander {
 public:
  // Validates; throws ScenarioError on out-of-range fields.
  explicit ScenarioExpander(Scenario scn) : scn_(std::move(scn)) {
    scn_.validate_or_throw();
  }

  const Scenario& scenario() const { return scn_; }

  // Deterministic: byte-identical specs for equal (scenario semantics,
  // prog, n, seed) — see scenario.h for the full contract.
  std::vector<interp::InputSpec> expand(const ebpf::Program& prog, int n,
                                        uint64_t seed) const {
    return scenario::expand(scn_, prog, n, seed);
  }
  std::vector<interp::InputSpec> expand(const ebpf::Program& prog,
                                        uint64_t seed) const {
    return scenario::expand(scn_, prog, scn_.inputs, seed);
  }

 private:
  Scenario scn_;
};

}  // namespace k2::scenario
