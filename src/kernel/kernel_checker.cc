#include "kernel/kernel_checker.h"

#include <array>
#include <limits>
#include <unordered_set>
#include <vector>

#include "ebpf/helpers_def.h"
#include "ebpf/semantics.h"

namespace k2::kernel {

namespace {

using ebpf::AluOp;
using ebpf::AluShape;
using ebpf::Insn;
using ebpf::InsnClass;
using ebpf::JmpCond;
using ebpf::JmpShape;
using ebpf::Opcode;

constexpr uint64_t kU64Max = std::numeric_limits<uint64_t>::max();

// Verifier-style abstract register value.
struct KReg {
  enum Kind : uint8_t {
    UNINIT,
    SCALAR,
    STACK_PTR,
    CTX_PTR,
    PKT_PTR,
    PKT_END,
    MAP_PTR_OR_NULL,
    MAP_PTR,
    MAP_FD,
  } kind = UNINIT;
  int64_t off = 0;    // pointer offset
  int map_fd = -1;
  uint64_t umin = 0;  // scalar unsigned bounds
  uint64_t umax = kU64Max;

  static KReg scalar(uint64_t lo, uint64_t hi) {
    KReg r;
    r.kind = SCALAR;
    r.umin = lo;
    r.umax = hi;
    return r;
  }
  static KReg unknown_scalar() { return scalar(0, kU64Max); }
  bool is_const() const { return kind == SCALAR && umin == umax; }
};

struct KState {
  std::array<KReg, 11> regs;
  std::array<bool, 512> stack_written{};  // byte granularity
  int64_t pkt_safe = 0;  // bytes from pkt data proven accessible
};

struct Rejection {
  std::string reason;
  int insn;
};

class Checker {
 public:
  Checker(const ebpf::Program& prog, const CheckerOptions& opts)
      : prog_(prog), opts_(opts) {}

  CheckResult run();

 private:
  const ebpf::Program& prog_;
  const CheckerOptions& opts_;
  uint64_t visited_ = 0;
  std::optional<Rejection> rej_;
  // State-equivalence pruning, as in the kernel verifier: a (pc, state)
  // pair already explored need not be explored again. Without this, the
  // path count is exponential in the number of rejoining branches — the
  // pruning only collapses paths whose abstract states actually converge,
  // which is what makes some real programs exceed the complexity limit
  // while semantically similar ones verify quickly (Table 1's "DNL").
  std::unordered_set<uint64_t> seen_;

  static uint64_t state_hash(int pc, const KState& st) {
    uint64_t h = 0xcbf29ce484222325ull ^ uint64_t(pc);
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ull;
      h ^= h >> 29;
    };
    for (const KReg& r : st.regs) {
      mix(uint64_t(r.kind) | (uint64_t(uint16_t(r.map_fd)) << 8));
      mix(uint64_t(r.off));
      mix(r.umin);
      mix(r.umax);
    }
    uint64_t bits = 0;
    for (int i = 0; i < 512; ++i) {
      bits = (bits << 1) | (st.stack_written[size_t(i)] ? 1 : 0);
      if ((i & 63) == 63) {
        mix(bits);
        bits = 0;
      }
    }
    mix(uint64_t(st.pkt_safe));
    return h;
  }

  void reject(const std::string& why, int insn) {
    if (!rej_) rej_ = Rejection{why, insn};
  }

  // Explores from instruction `pc` with state `st`; returns false once
  // rejected or over budget.
  bool explore(int pc, KState st);

  bool check_mem(const KState& st, const Insn& insn, int pc, bool is_store,
                 KState* next);
  bool check_call(KState& st, const Insn& insn, int pc);
};

bool Checker::check_mem(const KState& st, const Insn& insn, int pc,
                        bool is_store, KState* next) {
  int w = ebpf::mem_width(insn.op);
  int base = ebpf::is_mem_load(insn.op) ? insn.src : insn.dst;
  const KReg& b = st.regs[size_t(base)];
  int64_t off = b.off + insn.off;
  switch (b.kind) {
    case KReg::STACK_PTR: {
      if (off < -512 || off + w > 0)
        return reject("invalid stack access", pc), false;
      if (off % w != 0)
        return reject("misaligned stack access", pc), false;
      if (is_store && ebpf::insn_class(insn.op) != InsnClass::XADD) {
        for (int i = 0; i < w; ++i)
          next->stack_written[size_t(off + i + 512)] = true;
      } else {
        for (int i = 0; i < w; ++i)
          if (!st.stack_written[size_t(off + i + 512)])
            return reject("invalid read from uninitialized stack", pc), false;
      }
      return true;
    }
    case KReg::CTX_PTR:
      if (is_store)
        return reject("write into context memory", pc), false;
      if (off < 0 || off + w > 16 || off % w != 0)
        return reject("invalid context access", pc), false;
      return true;
    case KReg::PKT_PTR:
      if (prog_.type == ebpf::ProgType::TRACEPOINT)
        return reject("packet access from tracepoint", pc), false;
      if (off < 0 || off + w > st.pkt_safe)
        return reject("packet access outside verified bounds", pc), false;
      return true;
    case KReg::MAP_PTR: {
      int vs = b.map_fd >= 0 && b.map_fd < int(prog_.maps.size())
                   ? int(prog_.maps[size_t(b.map_fd)].value_size)
                   : 0;
      if (off < 0 || off + w > vs)
        return reject("map value access out of bounds", pc), false;
      return true;
    }
    case KReg::MAP_PTR_OR_NULL:
      return reject("dereference of possibly-NULL map value", pc), false;
    default:
      return reject("memory access via non-pointer register", pc), false;
  }
}

bool Checker::check_call(KState& st, const Insn& insn, int pc) {
  const ebpf::HelperProto* proto = ebpf::helper_proto(insn.imm);
  if (!proto) return reject("invalid helper id", pc), false;
  for (int r = 1; r <= proto->nargs; ++r)
    if (st.regs[size_t(r)].kind == KReg::UNINIT)
      return reject("helper argument r" + std::to_string(r) +
                        " is uninitialized",
                    pc),
             false;
  int fd = -1;
  if (proto->reads_map_fd) {
    if (st.regs[1].kind != KReg::MAP_FD)
      return reject("helper expects map fd in r1", pc), false;
    fd = st.regs[1].map_fd;
    if (fd < 0 || fd >= int(prog_.maps.size()))
      return reject("bad map fd", pc), false;
  }
  auto check_buf = [&](int r, uint32_t size) -> bool {
    const KReg& a = st.regs[size_t(r)];
    if (a.kind == KReg::STACK_PTR) {
      if (a.off < -512 || a.off + int64_t(size) > 0)
        return reject("helper buffer outside stack", pc), false;
      for (uint32_t i = 0; i < size; ++i)
        if (!st.stack_written[size_t(a.off + int64_t(i) + 512)])
          return reject("helper reads uninitialized stack", pc), false;
      return true;
    }
    if (a.kind == KReg::PKT_PTR)
      return a.off >= 0 && a.off + int64_t(size) <= st.pkt_safe
                 ? true
                 : (reject("helper packet buffer out of bounds", pc), false);
    if (a.kind == KReg::MAP_PTR) {
      uint32_t vs = prog_.maps[size_t(a.map_fd)].value_size;
      return a.off >= 0 && a.off + int64_t(size) <= int64_t(vs)
                 ? true
                 : (reject("helper map buffer out of bounds", pc), false);
    }
    return reject("helper buffer argument has wrong type", pc), false;
  };

  switch (insn.imm) {
    case ebpf::HELPER_MAP_LOOKUP:
    case ebpf::HELPER_MAP_DELETE:
      if (!check_buf(2, prog_.maps[size_t(fd)].key_size)) return false;
      break;
    case ebpf::HELPER_MAP_UPDATE:
      if (!check_buf(2, prog_.maps[size_t(fd)].key_size)) return false;
      if (!check_buf(3, prog_.maps[size_t(fd)].value_size)) return false;
      break;
    case ebpf::HELPER_CSUM_DIFF: {
      const KReg& fs = st.regs[2];
      const KReg& ts = st.regs[4];
      if (!fs.is_const() || !ts.is_const())
        return reject("csum_diff with variable sizes", pc), false;
      if (fs.umin % 4 || ts.umin % 4 || fs.umin > 512 || ts.umin > 512)
        return reject("csum_diff with invalid sizes", pc), false;
      if (fs.umin > 0 && !check_buf(1, uint32_t(fs.umin))) return false;
      if (ts.umin > 0 && !check_buf(3, uint32_t(ts.umin))) return false;
      break;
    }
    case ebpf::HELPER_XDP_ADJUST_HEAD:
      if (st.regs[1].kind != KReg::CTX_PTR)
        return reject("adjust_head without ctx", pc), false;
      break;
    default:
      break;
  }

  // Effects: r0 = return value, r1..r5 clobbered; adjust_head invalidates
  // every packet pointer.
  KReg r0 = KReg::unknown_scalar();
  if (proto->ret == ebpf::HelperRet::MAP_VALUE_OR_NULL) {
    r0 = KReg{};
    r0.kind = KReg::MAP_PTR_OR_NULL;
    r0.map_fd = fd;
    r0.off = 0;
  }
  st.regs[0] = r0;
  for (int r = 1; r <= 5; ++r) st.regs[size_t(r)] = KReg{};
  if (insn.imm == ebpf::HELPER_XDP_ADJUST_HEAD) {
    for (auto& r : st.regs)
      if (r.kind == KReg::PKT_PTR || r.kind == KReg::PKT_END)
        r = KReg::unknown_scalar();
    st.pkt_safe = 0;
  }
  return true;
}

bool Checker::explore(int pc, KState st) {
  const int n = int(prog_.insns.size());
  while (true) {
    if (rej_) return false;
    if (pc < 0 || pc >= n)
      return reject("control flow out of program bounds", pc), false;
    if (++visited_ > opts_.complexity_limit)
      return reject("BPF program is too large. Processed " +
                        std::to_string(opts_.complexity_limit) +
                        " insn limit",
                    pc),
             false;
    const Insn& insn = prog_.insns[size_t(pc)];

    // r10 is read-only everywhere.
    if (insn.op != Opcode::NOP && (ebpf::def_mask(insn) & (1u << 10)))
      return reject("frame pointer is read only", pc), false;

    AluShape a;
    JmpShape j;
    if (ebpf::decompose_alu(insn.op, &a)) {
      KReg& dst = st.regs[insn.dst];
      const KReg* srcp = a.is_imm ? nullptr : &st.regs[insn.src];
      if (a.op != AluOp::MOV && dst.kind == KReg::UNINIT)
        return reject("read of uninitialized register", pc), false;
      if (srcp && srcp->kind == KReg::UNINIT)
        return reject("read of uninitialized register", pc), false;
      bool dst_ptr = dst.kind != KReg::SCALAR && dst.kind != KReg::UNINIT;
      bool src_ptr = srcp && srcp->kind != KReg::SCALAR;
      if (a.op == AluOp::MOV) {
        if (a.is64) {
          dst = a.is_imm ? KReg::scalar(ebpf::sext32(insn.imm),
                                        ebpf::sext32(insn.imm))
                         : *srcp;
        } else {
          if (src_ptr) return reject("32-bit mov of a pointer", pc), false;
          uint64_t lo = a.is_imm ? (uint64_t(insn.imm) & 0xffffffffull)
                                 : (srcp->is_const()
                                        ? (srcp->umin & 0xffffffffull)
                                        : 0);
          dst = a.is_imm || srcp->is_const()
                    ? KReg::scalar(lo, lo)
                    : KReg::scalar(0, 0xffffffffull);
        }
        pc++;
        continue;
      }
      if (dst_ptr || src_ptr) {
        bool ok64addsub = a.is64 && (a.op == AluOp::ADD || a.op == AluOp::SUB);
        if (!ok64addsub)
          return reject("forbidden ALU op on pointer", pc), false;
        if (dst_ptr && src_ptr) {
          if (a.op == AluOp::SUB && dst.kind == srcp->kind) {
            st.regs[insn.dst] = KReg::unknown_scalar();
            pc++;
            continue;
          }
          return reject("arithmetic between pointers", pc), false;
        }
        // pointer +/- scalar: the scalar must have known constant value for
        // trackable offsets (the verifier tracks var_off; we require const).
        int64_t delta;
        if (a.is_imm) {
          delta = int64_t(ebpf::sext32(insn.imm));
        } else if (srcp->is_const()) {
          delta = int64_t(srcp->umin);
        } else if (dst.kind == KReg::PKT_PTR && a.op == AluOp::ADD && srcp &&
                   srcp->umax <= 0xffff) {
          // bounded variable packet offset: conservatively keep the pointer
          // but invalidate verified bounds at the access site.
          dst.off += int64_t(srcp->umax);  // pessimistic
          pc++;
          continue;
        } else {
          return reject("pointer arithmetic with unbounded register", pc),
                 false;
        }
        if (dst_ptr) {
          dst.off += (a.op == AluOp::ADD) ? delta : -delta;
        } else {
          // scalar + pointer commutes only for ADD
          if (a.op != AluOp::ADD)
            return reject("scalar - pointer arithmetic", pc), false;
          KReg np = *srcp;
          np.off += delta;
          st.regs[insn.dst] = np;
        }
        pc++;
        continue;
      }
      // scalar ALU: constant-fold when possible, else widen.
      if ((a.is_imm || srcp->is_const()) && dst.is_const()) {
        ebpf::ConcreteBackend be;
        uint64_t sv = a.is_imm ? ebpf::sext32(insn.imm) : srcp->umin;
        uint64_t v = ebpf::alu_apply(a.op, a.is64, dst.umin, sv, be);
        dst = KReg::scalar(v, v);
      } else {
        dst = a.is64 ? KReg::unknown_scalar()
                     : KReg::scalar(0, 0xffffffffull);
      }
      pc++;
      continue;
    }

    if (ebpf::decompose_jmp(insn.op, &j)) {
      const KReg& lhs = st.regs[insn.dst];
      const KReg* rhs = j.is_imm ? nullptr : &st.regs[insn.src];
      if (lhs.kind == KReg::UNINIT || (rhs && rhs->kind == KReg::UNINIT))
        return reject("jump on uninitialized register", pc), false;
      if (insn.off < 0) return reject("back-edge in control flow", pc), false;

      KState taken = st, fall = st;
      // Packet-bounds refinement: compare PKT_PTR+k against PKT_END.
      auto refine_pkt = [&](const KReg& p, bool fall_accessible_ge,
                            int64_t k) {
        // fall_accessible_ge: on the fall-through edge, data+k <= data_end.
        if (fall_accessible_ge)
          fall.pkt_safe = std::max(fall.pkt_safe, k);
        else
          taken.pkt_safe = std::max(taken.pkt_safe, k);
        (void)p;
      };
      if (rhs && lhs.kind == KReg::PKT_PTR && rhs->kind == KReg::PKT_END) {
        if (j.cond == JmpCond::JGT) refine_pkt(lhs, true, lhs.off);
        if (j.cond == JmpCond::JGE) refine_pkt(lhs, true, lhs.off + 1);
        if (j.cond == JmpCond::JLE) refine_pkt(lhs, false, lhs.off);
        if (j.cond == JmpCond::JLT) refine_pkt(lhs, false, lhs.off + 1);
      }
      if (rhs && lhs.kind == KReg::PKT_END && rhs->kind == KReg::PKT_PTR) {
        if (j.cond == JmpCond::JLT) refine_pkt(*rhs, true, rhs->off);
        if (j.cond == JmpCond::JLE) refine_pkt(*rhs, true, rhs->off + 1);
        if (j.cond == JmpCond::JGE) refine_pkt(*rhs, false, rhs->off);
        if (j.cond == JmpCond::JGT) refine_pkt(*rhs, false, rhs->off + 1);
      }
      // NULL-check refinement for map lookups.
      if (j.is_imm && insn.imm == 0 && lhs.kind == KReg::MAP_PTR_OR_NULL) {
        if (j.cond == JmpCond::JEQ) {
          taken.regs[insn.dst] = KReg::scalar(0, 0);
          fall.regs[insn.dst].kind = KReg::MAP_PTR;
        } else if (j.cond == JmpCond::JNE) {
          taken.regs[insn.dst].kind = KReg::MAP_PTR;
          fall.regs[insn.dst] = KReg::scalar(0, 0);
        }
      }
      // Scalar range refinement (unsigned) against immediates.
      if (j.is_imm && lhs.kind == KReg::SCALAR) {
        uint64_t k = ebpf::sext32(insn.imm);
        auto& t = taken.regs[insn.dst];
        auto& f = fall.regs[insn.dst];
        switch (j.cond) {
          case JmpCond::JEQ: t.umin = t.umax = k; break;
          case JmpCond::JNE: f.umin = f.umax = k; break;
          case JmpCond::JGT: t.umin = std::max(t.umin, k + 1);
                             f.umax = std::min(f.umax, k); break;
          case JmpCond::JGE: t.umin = std::max(t.umin, k);
                             if (k > 0) f.umax = std::min(f.umax, k - 1);
                             break;
          case JmpCond::JLT: if (k > 0) t.umax = std::min(t.umax, k - 1);
                             f.umin = std::max(f.umin, k); break;
          case JmpCond::JLE: t.umax = std::min(t.umax, k);
                             f.umin = std::max(f.umin, k + 1); break;
          default: break;
        }
      }
      // Statically-decided branches take one edge only.
      if (j.is_imm && lhs.is_const()) {
        ebpf::ConcreteBackend be;
        bool res = ebpf::jmp_test(j.cond, lhs.umin, ebpf::sext32(insn.imm), be);
        if (res) return explore(pc + 1 + insn.off, std::move(taken));
        return explore(pc + 1, std::move(fall));
      }
      // Prune already-explored (pc, state) pairs on each edge.
      int tpc = pc + 1 + insn.off;
      if (seen_.insert(state_hash(tpc, taken)).second) {
        if (!explore(tpc, std::move(taken))) return false;
      }
      if (!seen_.insert(state_hash(pc + 1, fall)).second) return true;
      pc = pc + 1;
      st = std::move(fall);
      continue;
    }

    switch (insn.op) {
      case Opcode::NEG64:
      case Opcode::NEG32:
      case Opcode::BE16:
      case Opcode::BE32:
      case Opcode::BE64:
      case Opcode::LE16:
      case Opcode::LE32:
      case Opcode::LE64: {
        KReg& d = st.regs[insn.dst];
        if (d.kind == KReg::UNINIT)
          return reject("read of uninitialized register", pc), false;
        if (d.kind != KReg::SCALAR)
          return reject("unary ALU on pointer", pc), false;
        if (d.is_const()) {
          ebpf::ConcreteBackend be;
          uint64_t v = ebpf::alu_unary_apply(insn.op, d.umin, be);
          d = KReg::scalar(v, v);
        } else {
          d = KReg::unknown_scalar();
        }
        pc++;
        break;
      }
      case Opcode::JA:
        if (insn.off < 0)
          return reject("back-edge in control flow", pc), false;
        pc = pc + 1 + insn.off;
        break;
      case Opcode::LDXB:
      case Opcode::LDXH:
      case Opcode::LDXW:
      case Opcode::LDXDW: {
        if (!check_mem(st, insn, pc, false, &st)) return false;
        const KReg& b = st.regs[insn.src];
        KReg res = KReg::unknown_scalar();
        if (ebpf::mem_width(insn.op) < 8)
          res.umax = (1ull << (8 * ebpf::mem_width(insn.op))) - 1;
        if (b.kind == KReg::CTX_PTR &&
            prog_.type != ebpf::ProgType::TRACEPOINT &&
            insn.op == Opcode::LDXDW) {
          int64_t o = b.off + insn.off;
          if (o == 0) {
            res = KReg{};
            res.kind = KReg::PKT_PTR;
            res.off = 0;
          } else if (o == 8) {
            res = KReg{};
            res.kind = KReg::PKT_END;
          }
        }
        st.regs[insn.dst] = res;
        pc++;
        break;
      }
      case Opcode::STXB:
      case Opcode::STXH:
      case Opcode::STXW:
      case Opcode::STXDW:
      case Opcode::XADD32:
      case Opcode::XADD64:
        if (st.regs[insn.src].kind == KReg::UNINIT)
          return reject("store of uninitialized register", pc), false;
        if (st.regs[insn.src].kind != KReg::SCALAR &&
            ebpf::insn_class(insn.op) == InsnClass::XADD)
          return reject("xadd with pointer source", pc), false;
        if (!check_mem(st, insn, pc, true, &st)) return false;
        pc++;
        break;
      case Opcode::STB:
      case Opcode::STH:
      case Opcode::STW:
      case Opcode::STDW: {
        // Immediate store into ctx is explicitly rejected (§2.2 example 1).
        if (st.regs[insn.dst].kind == KReg::CTX_PTR)
          return reject("BPF_ST stores into R" + std::to_string(insn.dst) +
                            " ctx is not allowed",
                        pc),
                 false;
        if (!check_mem(st, insn, pc, true, &st)) return false;
        pc++;
        break;
      }
      case Opcode::CALL:
        if (!check_call(st, insn, pc)) return false;
        pc++;
        break;
      case Opcode::EXIT: {
        const KReg& r0 = st.regs[0];
        if (r0.kind == KReg::UNINIT)
          return reject("R0 !read_ok at exit", pc), false;
        if (r0.kind != KReg::SCALAR)
          return reject("pointer leak: R0 holds a pointer at exit", pc), false;
        return true;  // this path is done
      }
      case Opcode::LDDW:
        st.regs[insn.dst] =
            KReg::scalar(uint64_t(insn.imm), uint64_t(insn.imm));
        pc++;
        break;
      case Opcode::LDMAPFD: {
        if (insn.imm < 0 || insn.imm >= int64_t(prog_.maps.size()))
          return reject("bad map fd", pc), false;
        KReg r;
        r.kind = KReg::MAP_FD;
        r.map_fd = int(insn.imm);
        st.regs[insn.dst] = r;
        pc++;
        break;
      }
      case Opcode::NOP:
        pc++;
        break;
      default:
        return reject("unknown opcode", pc), false;
    }
  }
}

CheckResult Checker::run() {
  CheckResult res;
  if (int(prog_.insns.size()) > opts_.max_insns) {
    res.reason = "program too large";
    return res;
  }
  if (auto err = ebpf::validate_structure(prog_)) {
    res.reason = *err;
    return res;
  }
  KState entry;
  entry.regs[1] = KReg{};
  entry.regs[1].kind = KReg::CTX_PTR;
  entry.regs[10] = KReg{};
  entry.regs[10].kind = KReg::STACK_PTR;
  bool ok = explore(0, std::move(entry));
  res.insns_visited = visited_;
  if (!ok || rej_) {
    res.accepted = false;
    if (rej_) {
      res.reason = rej_->reason;
      res.insn = rej_->insn;
    }
    return res;
  }
  res.accepted = true;
  return res;
}

}  // namespace

CheckResult kernel_check(const ebpf::Program& prog,
                         const CheckerOptions& opts) {
  Checker c(prog, opts);
  return c.run();
}

}  // namespace k2::kernel
