// A model of the Linux in-kernel BPF verifier ("the kernel checker", §2).
//
// This is the acceptance oracle for K2's post-processing pass (§6) and for
// the Table-5 experiment: it is *deliberately implemented independently* of
// K2's own safety checker — a path-exploring abstract interpreter in the
// style of kernel/bpf/verifier.c, with per-register scalar ranges, stack
// initialization tracking, packet-bounds refinement from data_end
// comparisons, and the verifier's complexity budget (the 1M
// visited-instruction limit that makes real programs "DNL", Table 1).
#pragma once

#include <cstdint>
#include <string>

#include "ebpf/program.h"

namespace k2::kernel {

struct CheckerOptions {
  uint64_t complexity_limit = 1'000'000;  // visited instructions (fn. 2)
  int max_insns = 4096;                   // classic program-size limit
};

struct CheckResult {
  bool accepted = false;
  std::string reason;        // rejection reason, empty when accepted
  int insn = -1;
  uint64_t insns_visited = 0;
};

CheckResult kernel_check(const ebpf::Program& prog,
                         const CheckerOptions& opts = {});

}  // namespace k2::kernel
