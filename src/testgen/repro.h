// Self-contained `.k2asm` repro files (`k2-repro/v1`) for conformance
// mismatches: the full disassembly of the disagreeing program plus
// `; key: value` directive comments carrying everything else a re-run
// needs — hook type, map definitions, run options, and the exact input
// (packet bytes, map pre-state, helper seeds). Directives are assembler
// comments, so the body of a repro file is also valid standalone
// assembly.
//
//   ; k2-repro/v1
//   ; type: xdp
//   ; map: h hash 4 8 8
//   ; run: max_insns=1048576 trace=0
//   ; input: packet=0a0b prandom=1 ktime=0 cpu=0 ctx=0,0
//   ; input-map: 0 key=01000000 val=0000000000000000
//     mov64 r0, 0
//     exit
//
// Mismatch programs are frequently invalid by construction (wild fuzz
// candidates), so loading uses the assembler's lenient mode.
#pragma once

#include <string>
#include <string_view>

#include "ebpf/program.h"
#include "interp/state.h"

namespace k2::testgen {

struct Repro {
  ebpf::Program program;
  interp::InputSpec input;
  interp::RunOptions opt;
};

// Serializes program + input + options to k2-repro/v1 text.
std::string write_repro(const ebpf::Program& prog,
                        const interp::InputSpec& input,
                        const interp::RunOptions& opt);

// Parses k2-repro/v1 text (throws std::runtime_error on malformed input;
// a missing version line is an error so stale formats fail loudly).
Repro parse_repro(std::string_view text);

}  // namespace k2::testgen
