#include "testgen/differential.h"

#include <algorithm>
#include <sstream>

#include "interp/interpreter.h"
#include "pipeline/exec_context.h"
#include "testgen/repro.h"

namespace k2::conformance {

namespace {

constexpr uint64_t kDefaultMaxInsns = interp::RunOptions{}.max_insns;

ebpf::Insn nop_insn() {
  ebpf::Insn i;
  i.op = ebpf::Opcode::NOP;
  i.dst = 0;
  i.src = 0;
  i.off = 0;
  i.imm = 0;
  return i;
}

}  // namespace

std::string diff_results(const interp::RunResult& want,
                         const interp::RunResult& got, bool compare_trace) {
  std::ostringstream os;
  if (want.fault != got.fault) {
    os << "fault: " << int(want.fault) << " vs " << int(got.fault);
    return os.str();
  }
  if (want.fault_pc != got.fault_pc) {
    os << "fault_pc: " << want.fault_pc << " vs " << got.fault_pc;
    return os.str();
  }
  if (want.r0 != got.r0) {
    os << "r0: 0x" << std::hex << want.r0 << " vs 0x" << got.r0;
    return os.str();
  }
  if (want.insns_executed != got.insns_executed) {
    os << "insns_executed: " << want.insns_executed << " vs "
       << got.insns_executed;
    return os.str();
  }
  if (want.packet_out != got.packet_out) {
    os << "packet_out differs (" << want.packet_out.size() << " vs "
       << got.packet_out.size() << " bytes)";
    return os.str();
  }
  if (want.maps_out != got.maps_out) return "maps_out differ";
  if (compare_trace && want.trace != got.trace) {
    os << "trace differs (" << want.trace.size() << " vs "
       << got.trace.size() << " entries)";
    return os.str();
  }
  return "";
}

std::string Report::summary() const {
  std::ostringstream os;
  os << programs << " programs (" << typed_programs << " typed, "
     << wild_programs << " wild), " << pairs << " result pairs, " << clean
     << " clean / " << faulted << " faulted reference runs, " << jit_native
     << " jit-native / " << jit_bailout_programs << " jit-bailout programs, "
     << gen_rejects << " generator rejects, " << mismatches.size()
     << " mismatches";
  return os.str();
}

DifferentialHarness::DifferentialHarness(const HarnessConfig& cfg)
    : cfg_(cfg), gen_(cfg.gen) {
  for (jit::ExecBackend be : cfg_.backends) {
    auto ctx = std::make_unique<pipeline::ExecContext>();
    ctx->runner.select(be);
    ctxs_.push_back(std::move(ctx));
  }
}

DifferentialHarness::~DifferentialHarness() = default;

interp::RunOptions DifferentialHarness::next_run_options() {
  interp::RunOptions opt;
  if (!cfg_.vary_run_options) return opt;
  auto& rng = gen_.rng();
  if (rng() % 8 == 0) opt.max_insns = 1 + rng() % 64;  // step-limit path
  if (rng() % 4 == 0) opt.record_trace = true;         // trace path
  return opt;
}

const interp::RunResult& DifferentialHarness::run_reference(
    const ebpf::Program& prog, const interp::InputSpec& in,
    const interp::RunOptions& opt) {
  ref_result_ = interp::run(prog, in, opt, ref_machine_);
  return ref_result_;
}

void DifferentialHarness::check_program(const ebpf::Program& prog, bool typed,
                                        Report& rep) {
  rep.programs++;
  (typed ? rep.typed_programs : rep.wild_programs)++;

  std::vector<interp::InputSpec> inputs;
  for (int i = 0; i < cfg_.inputs_per_program; ++i)
    inputs.push_back(gen_.next_input(prog));

  // Prepare every backend once; the pass loop then re-runs the prepared
  // program, which is exactly the suite-execution shape the pipeline uses.
  for (auto& ctx : ctxs_) {
    ctx->runner.invalidate();
    ctx->runner.prepare(prog);
  }
  for (size_t b = 0; b < ctxs_.size(); ++b) {
    if (cfg_.backends[b] != jit::ExecBackend::JIT) continue;
    (ctxs_[b]->runner.jit_active() ? rep.jit_native
                                   : rep.jit_bailout_programs)++;
  }

  for (int pass = 0; pass < cfg_.passes; ++pass) {
    for (const interp::InputSpec& in : inputs) {
      interp::RunOptions opt = next_run_options();
      const interp::RunResult& ref = run_reference(prog, in, opt);
      (ref.ok() ? rep.clean : rep.faulted)++;
      if (typed && cfg_.typed_fault_oracle && !ref.ok() &&
          opt.max_insns >= kDefaultMaxInsns) {
        record_mismatch_named("oracle:typed-fault",
                              "typed program faulted: fault=" +
                                  std::to_string(int(ref.fault)) + " at pc " +
                                  std::to_string(ref.fault_pc),
                              prog, in, opt, rep);
        return;
      }
      for (size_t b = 0; b < ctxs_.size(); ++b) {
        const interp::RunResult& got = ctxs_[b]->runner.run_one(in, opt);
        rep.pairs++;
        std::string d = diff_results(ref, got, opt.record_trace);
        if (!d.empty()) {
          record_mismatch(cfg_.backends[b], d, prog, in, opt, rep);
          return;  // one mismatch per program; move on
        }
      }
    }
  }
}

Report DifferentialHarness::replay(const ebpf::Program& prog,
                                   const interp::InputSpec& in,
                                   const interp::RunOptions& opt) {
  Report rep;
  rep.programs = 1;
  rep.wild_programs = 1;
  for (auto& ctx : ctxs_) {
    ctx->runner.invalidate();
    ctx->runner.prepare(prog);
  }
  const interp::RunResult& ref = run_reference(prog, in, opt);
  (ref.ok() ? rep.clean : rep.faulted)++;
  for (size_t b = 0; b < ctxs_.size(); ++b) {
    const interp::RunResult& got = ctxs_[b]->runner.run_one(in, opt);
    rep.pairs++;
    std::string d = diff_results(ref, got, opt.record_trace);
    if (!d.empty()) {
      record_mismatch(cfg_.backends[b], d, prog, in, opt, rep);
      break;
    }
  }
  return rep;
}

Report DifferentialHarness::run() {
  Report rep;
  for (uint64_t i = 0; i < cfg_.iters; ++i) {
    bool typed = false;
    ebpf::Program prog = gen_.next(&typed);
    check_program(prog, typed, rep);
    if (int(rep.mismatches.size()) >= cfg_.max_mismatches) break;
  }
  rep.gen_rejects = gen_.rejects();
  return rep;
}

Report DifferentialHarness::run_incremental(uint64_t iters) {
  Report rep;
  auto& rng = gen_.rng();

  // Start from a typed program: a structurally sound base makes mutations
  // explore the interesting boundary between valid and faulting programs.
  bool typed = false;
  ebpf::Program prog = gen_.next(&typed);
  for (int tries = 0; tries < 8 && !typed && cfg_.gen.typed_percent > 0;
       ++tries)
    prog = gen_.next(&typed);
  rep.programs++;
  (typed ? rep.typed_programs : rep.wild_programs)++;

  // Per backend: one long-lived runner taking only incremental patches, and
  // one control runner doing a full invalidate+prepare every iteration.
  std::vector<std::unique_ptr<pipeline::ExecContext>> full;
  for (size_t b = 0; b < ctxs_.size(); ++b) {
    ctxs_[b]->runner.invalidate();
    ctxs_[b]->runner.prepare(prog);
    auto ctx = std::make_unique<pipeline::ExecContext>();
    ctx->runner.select(cfg_.backends[b]);
    ctx->runner.prepare(prog);
    full.push_back(std::move(ctx));
  }

  for (uint64_t it = 0; it < iters; ++it) {
    int idx = int(rng() % prog.insns.size());
    ebpf::Program cand = prog;
    cand.insns[size_t(idx)] = gen_.wild_insn(int(prog.insns.size()));
    ebpf::InsnRange touched{idx, idx + 1};

    for (size_t b = 0; b < ctxs_.size(); ++b) {
      ctxs_[b]->runner.prepare(cand, &touched);
      full[b]->runner.invalidate();
      full[b]->runner.prepare(cand);
    }

    int n_inputs = 1 + int(rng() % 2);
    for (int i = 0; i < n_inputs; ++i) {
      interp::InputSpec in = gen_.next_input(cand);
      interp::RunOptions opt = next_run_options();
      const interp::RunResult& ref = run_reference(cand, in, opt);
      (ref.ok() ? rep.clean : rep.faulted)++;
      for (size_t b = 0; b < ctxs_.size(); ++b) {
        const interp::RunResult inc = ctxs_[b]->runner.run_one(in, opt);
        rep.pairs++;
        std::string d = diff_results(ref, inc, opt.record_trace);
        if (!d.empty()) {
          record_mismatch(cfg_.backends[b], "incremental: " + d, cand, in,
                          opt, rep);
          return rep;
        }
        const interp::RunResult& fl = full[b]->runner.run_one(in, opt);
        rep.pairs++;
        d = diff_results(ref, fl, opt.record_trace);
        if (!d.empty()) {
          record_mismatch(cfg_.backends[b], "full: " + d, cand, in, opt, rep);
          return rep;
        }
      }
    }

    if (rng() % 8 == 0) {
      // Speculative-rollback shape: revert the mutation through the same
      // incremental patch path (the control runners re-prepare fully).
      for (size_t b = 0; b < ctxs_.size(); ++b) {
        ctxs_[b]->runner.prepare(prog, &touched);
        full[b]->runner.invalidate();
        full[b]->runner.prepare(prog);
      }
    } else {
      prog = std::move(cand);
    }
    if (rng() % 16 == 0) {
      // Force one runner through the cold full-decode path, then re-prime
      // every runner so incremental patches have a valid base again.
      ctxs_[rng() % ctxs_.size()]->runner.invalidate();
      for (auto& ctx : ctxs_) ctx->runner.prepare(prog);
    }
  }
  return rep;
}

void DifferentialHarness::record_mismatch(jit::ExecBackend be,
                                          const std::string& detail,
                                          const ebpf::Program& prog,
                                          const interp::InputSpec& in,
                                          const interp::RunOptions& opt,
                                          Report& rep) {
  Mismatch mm;
  mm.backend = jit::to_string(be);
  mm.detail = detail;
  mm.program = prog;
  mm.input = in;
  mm.opt = opt;
  mm.shrunk = cfg_.shrink ? shrink_program(prog, in, opt, be, rep) : prog;
  mm.repro = testgen::write_repro(mm.shrunk, in, opt);
  rep.mismatches.push_back(std::move(mm));
}

void DifferentialHarness::record_mismatch_named(const std::string& name,
                                                const std::string& detail,
                                                const ebpf::Program& prog,
                                                const interp::InputSpec& in,
                                                const interp::RunOptions& opt,
                                                Report& rep) {
  Mismatch mm;
  mm.backend = name;
  mm.detail = detail;
  mm.program = prog;
  mm.shrunk = prog;  // no backend to disagree with: nothing to minimize
  mm.input = in;
  mm.opt = opt;
  mm.repro = testgen::write_repro(prog, in, opt);
  rep.mismatches.push_back(std::move(mm));
}

ebpf::Program DifferentialHarness::shrink_program(const ebpf::Program& prog,
                                                  const interp::InputSpec& in,
                                                  const interp::RunOptions& opt,
                                                  jit::ExecBackend be,
                                                  Report& rep) {
  size_t which = 0;
  for (size_t b = 0; b < cfg_.backends.size(); ++b)
    if (cfg_.backends[b] == be) which = b;
  jit::BackendRunner& runner = ctxs_[which]->runner;

  // The minimization predicate: does this candidate still disagree with the
  // reference on the captured input/options, from a fresh prepare?
  auto disagrees = [&](const ebpf::Program& p) {
    if (rep.shrink_execs >= cfg_.max_shrink_execs) return false;
    rep.shrink_execs++;
    interp::RunResult ref = interp::run(p, in, opt, ref_machine_);
    runner.invalidate();
    runner.prepare(p);
    const interp::RunResult& got = runner.run_one(in, opt);
    return !diff_results(ref, got, opt.record_trace).empty();
  };

  // Delta-debug by NOP substitution: replacing a chunk with NOPs keeps
  // every slot index and jump target stable, so any subset of the original
  // program is a well-formed candidate.
  ebpf::Program cur = prog;
  const int n = int(cur.insns.size());
  for (int chunk = std::max(1, n / 2); chunk >= 1; chunk /= 2) {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (int start = 0; start < n; start += chunk) {
        ebpf::Program cand = cur;
        bool changed = false;
        for (int i = start; i < std::min(n, start + chunk); ++i) {
          if (cand.insns[size_t(i)].op != ebpf::Opcode::NOP) {
            cand.insns[size_t(i)] = nop_insn();
            changed = true;
          }
        }
        if (!changed) continue;
        if (disagrees(cand)) {
          cur = std::move(cand);
          progressed = true;
        }
      }
      if (chunk > 1) break;  // one sweep per chunk size; fixpoint at 1
    }
  }

  // Compact: strip the NOPs (retargets jumps); keep only if the compact
  // form still reproduces — stripping changes indices, which occasionally
  // matters (fault_pc, jump semantics at the boundary).
  ebpf::Program stripped = cur.strip_nops();
  if (stripped.insns.size() < cur.insns.size() && disagrees(stripped))
    cur = std::move(stripped);
  return cur;
}

}  // namespace k2::conformance
