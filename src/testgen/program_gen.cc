#include "testgen/program_gen.h"

#include <algorithm>
#include <array>
#include <vector>

#include "ebpf/helpers_def.h"
#include "safety/safety.h"

namespace k2::testgen {

namespace {

using ebpf::AluOp;
using ebpf::Insn;
using ebpf::JmpCond;
using ebpf::MapDef;
using ebpf::MapKind;
using ebpf::Opcode;
using ebpf::ProgType;

// The assembler's immediate canonicalization: non-LDDW immediates are 32
// bits on the wire and sign-extended at use; generating them pre-extended
// makes every generated program round-trip bit-exactly through
// disassemble/assemble.
int64_t canon_imm(Opcode op, int64_t imm) {
  if (op == Opcode::LDDW || op == Opcode::LDMAPFD) return imm;
  return static_cast<int64_t>(static_cast<int32_t>(imm));
}

Insn make(Opcode op, uint8_t dst = 0, uint8_t src = 0, int16_t off = 0,
          int64_t imm = 0) {
  Insn i;
  i.op = op;
  i.dst = dst;
  i.src = src;
  i.off = off;
  i.imm = canon_imm(op, imm);
  return i;
}

std::vector<MapDef> random_maps(std::mt19937_64& rng) {
  MapDef hash;
  hash.name = "h";
  hash.kind = MapKind::HASH;
  hash.max_entries = 8;
  MapDef arr;
  arr.name = "a";
  arr.kind = MapKind::ARRAY;
  arr.max_entries = 8;
  switch (rng() % 4) {
    case 0: return {hash};
    case 1: return {arr, hash, arr};
    default: return {hash, arr};
  }
}

// ---------------------------------------------------------------------------
// Typed generation: a small abstract machine mirroring the safety checker's
// register-type lattice. Every pattern leaves the tracked state consistent
// with what analysis::infer_types will conclude, so the emitted program
// passes the §6 static checks by construction.
// ---------------------------------------------------------------------------

class TypedBuilder {
 public:
  TypedBuilder(const GenConfig& cfg, std::mt19937_64& rng)
      : cfg_(cfg), rng_(rng) {}

  ebpf::Program build() {
    prog_ = ebpf::Program{};
    prog_.maps = random_maps(rng_);
    switch (rng_() % 4) {
      case 0: prog_.type = ProgType::SOCKET_FILTER; break;
      case 1: prog_.type = ProgType::TRACEPOINT; break;
      default: prog_.type = ProgType::XDP; break;
    }
    reg_.fill(K::UNINIT);
    stack_init_ = 0;
    pkt_reg_ = pkt_end_reg_ = -1;
    pkt_verified_ = 0;
    exit_jumps_.clear();

    // Prologue: preserve the context pointer across helper calls (CALL
    // clobbers r1..r5).
    emit(make(Opcode::MOV64_REG, 6, 1));
    reg_[1] = K::CTX;  // still ctx until the first call
    reg_[6] = K::CTX;

    const int lo = std::max(2, cfg_.min_insns);
    const int hi = std::max(lo, cfg_.max_insns);
    const int target = lo + int(rng_() % uint64_t(hi - lo + 1));
    struct WeightedPattern {
      int weight;
      void (TypedBuilder::*fn)();
    };
    const WeightedPattern table[] = {
        {cfg_.w_alu, &TypedBuilder::pat_alu},
        {cfg_.w_branch, &TypedBuilder::pat_branch},
        {cfg_.w_mem, &TypedBuilder::pat_mem},
        {cfg_.w_helper, &TypedBuilder::pat_helper},
        {cfg_.w_map, &TypedBuilder::pat_map},
    };
    int total = 0;
    for (const auto& w : table) total += std::max(0, w.weight);
    while (int(prog_.insns.size()) < target) {
      if (total == 0) {
        pat_alu();  // all weights zero: degenerate but still well-typed
        continue;
      }
      int pick = int(rng_() % uint64_t(total));
      for (const auto& w : table) {
        pick -= std::max(0, w.weight);
        if (pick < 0) {
          (this->*w.fn)();
          break;
        }
      }
    }

    // Shared epilogue: every guard-to-exit jump lands here; r0 is written
    // on both the fall-through and jump paths, so it is an initialized
    // scalar at EXIT on every path (no pointer leak, no uninit read).
    const int done = int(prog_.insns.size());
    emit(make(Opcode::MOV64_IMM, 0, 0, 0, int64_t(rng_() % 5)));
    emit(make(Opcode::EXIT));
    for (size_t idx : exit_jumps_)
      prog_.insns[idx].off = int16_t(done - int(idx) - 1);
    return prog_;
  }

 private:
  // Conservative register kinds — exactly the distinctions the patterns
  // need. DIRTY marks a live pointer-ish value we must not read again
  // (still overwritable: 64-bit MOV is legal on any pointer).
  enum class K : uint8_t { UNINIT, SCALAR, CTX, PKT, PKT_END, DIRTY };

  void emit(const Insn& i) { prog_.insns.push_back(i); }

  void set_reg(int r, K k) {
    if (r == pkt_reg_ && k != K::PKT) {
      pkt_reg_ = -1;
      pkt_verified_ = 0;
    }
    if (r == pkt_end_reg_ && k != K::PKT_END) pkt_end_reg_ = -1;
    reg_[size_t(r)] = k;
  }

  int64_t small_imm() {
    static const int64_t vals[] = {0, 1, 2, 7, -1, 8, 14, 64, 255, 0x1000,
                                   -4096, 0x7fffffff};
    return vals[rng_() % (sizeof(vals) / sizeof(vals[0]))];
  }

  // Emits `mov64 r, imm` unless r is already a scalar.
  void ensure_scalar(int r) {
    if (reg_[size_t(r)] == K::SCALAR) return;
    emit(make(Opcode::MOV64_IMM, uint8_t(r), 0, 0, small_imm()));
    set_reg(r, K::SCALAR);
  }

  // A random scalar register (materializing one when none exists).
  // Excludes r6 (ctx copy) and r10.
  int pick_scalar() {
    std::array<int, 10> cand{};
    int n = 0;
    for (int r = 0; r <= 9; ++r)
      if (r != 6 && reg_[size_t(r)] == K::SCALAR) cand[size_t(n++)] = r;
    if (n > 0) return cand[rng_() % uint64_t(n)];
    static const int pool[] = {0, 1, 2, 3, 4, 5, 7, 8, 9};
    int r = pool[rng_() % 9];
    ensure_scalar(r);
    return r;
  }

  // A register the next pattern may freely overwrite (never r6/r10, and
  // never the live packet-pointer pair).
  int pick_overwritable(bool durable_only) {
    static const int durable[] = {7, 8, 9};
    static const int any[] = {0, 1, 2, 3, 4, 5, 7, 8, 9};
    for (int tries = 0; tries < 8; ++tries) {
      int r = durable_only ? durable[rng_() % 3] : any[rng_() % 9];
      if (r == pkt_reg_ || r == pkt_end_reg_) continue;
      return r;
    }
    return durable_only ? 7 : 0;
  }

  void clobber_call_regs() {
    for (int r = 1; r <= 5; ++r) set_reg(r, K::UNINIT);
  }

  void mark_stack_init(int off, int w) {
    for (int b = 0; b < w; ++b) stack_init_ |= 1ull << uint32_t(off + 64 + b);
  }
  bool stack_initialized(int off, int w) const {
    for (int b = 0; b < w; ++b)
      if (!(stack_init_ & (1ull << uint32_t(off + 64 + b)))) return false;
    return true;
  }

  // Writes `imm32` words covering [r10+off, r10+off+w) — the helper-argument
  // buffers (map keys, csum windows) are always built this way so solver-
  // checked stack reads are covered by unconditional writes.
  void fill_stack(int off, int w) {
    for (int b = 0; b < w; b += 4)
      emit(make(Opcode::STW, 10, 0, int16_t(off + b), small_imm()));
    mark_stack_init(off, w);
  }

  // ---- Patterns ----------------------------------------------------------

  void pat_alu() {
    if (rng_() % 5 == 0) {
      // Unary: neg / endian swap on a scalar.
      int r = pick_scalar();
      static const Opcode un[] = {Opcode::NEG64, Opcode::NEG32, Opcode::BE16,
                                  Opcode::BE32,  Opcode::BE64,  Opcode::LE16,
                                  Opcode::LE32,  Opcode::LE64};
      emit(make(un[rng_() % 8], uint8_t(r)));
      return;
    }
    if (rng_() % 6 == 0) {
      // Fresh 64-bit constant (LDDW exercises the double-slot form).
      int r = pick_overwritable(false);
      emit(make(Opcode::LDDW, uint8_t(r), 0, 0, int64_t(rng_())));
      set_reg(r, K::SCALAR);
      return;
    }
    int dst = pick_scalar();
    AluOp op = static_cast<AluOp>(rng_() % 12);
    bool is64 = rng_() % 2;
    if (rng_() % 2) {
      emit(make(ebpf::compose_alu(op, is64, /*is_imm=*/true), uint8_t(dst), 0,
                0, small_imm()));
    } else {
      int src = pick_scalar();
      emit(make(ebpf::compose_alu(op, is64, false), uint8_t(dst),
                uint8_t(src)));
    }
  }

  void pat_branch() {
    int x = pick_scalar();
    JmpCond cond = static_cast<JmpCond>(rng_() % 11);
    bool is_imm = rng_() % 2;
    int y = is_imm ? 0 : pick_scalar();

    if (rng_() % 3 == 0) {
      // Guard-to-exit: jump straight to the shared epilogue.
      exit_jumps_.push_back(prog_.insns.size());
      emit(make(ebpf::compose_jmp(cond, is_imm), uint8_t(x), uint8_t(y), 0,
                is_imm ? small_imm() : 0));
      return;
    }
    if (rng_() % 4 == 0) {
      // JA over NOPs (the stripped-on-output form rewrite rule 3 leaves
      // behind); an all-NOP block may be unreachable.
      int len = 1 + int(rng_() % 2);
      emit(make(Opcode::JA, 0, 0, int16_t(len)));
      for (int i = 0; i < len; ++i) emit(make(Opcode::NOP));
      return;
    }
    // Forward skip over a benign block: the block only runs scalar ALU on
    // registers that are scalars *before* the branch, so the type join at
    // the merge point stays SCALAR on every register.
    std::array<int, 10> scalars{};
    int n = 0;
    for (int r = 0; r <= 9; ++r)
      if (r != 6 && reg_[size_t(r)] == K::SCALAR) scalars[size_t(n++)] = r;
    if (n == 0) {
      scalars[size_t(n++)] = pick_scalar();
    }
    int len = 1 + int(rng_() % 3);
    emit(make(ebpf::compose_jmp(cond, is_imm), uint8_t(x), uint8_t(y),
              int16_t(len), is_imm ? small_imm() : 0));
    for (int i = 0; i < len; ++i) {
      int dst = scalars[rng_() % uint64_t(n)];
      AluOp op = static_cast<AluOp>(rng_() % 12);
      bool is64 = rng_() % 2;
      if (rng_() % 2) {
        emit(make(ebpf::compose_alu(op, is64, true), uint8_t(dst), 0, 0,
                  small_imm()));
      } else {
        int src = scalars[rng_() % uint64_t(n)];
        emit(make(ebpf::compose_alu(op, is64, false), uint8_t(dst),
                  uint8_t(src)));
      }
    }
  }

  void pat_mem() {
    switch (rng_() % 4) {
      case 0: stack_store(); break;
      case 1: stack_load(); break;
      case 2:
        if (prog_.type != ProgType::TRACEPOINT) {
          packet_access();
          break;
        }
        [[fallthrough]];
      default: ctx_load(); break;
    }
  }

  void stack_store() {
    int w = 1 << (rng_() % 4);
    int off = -w * (1 + int(rng_() % uint64_t(64 / w)));  // aligned, in range
    int variant = int(rng_() % 3);
    if (variant == 2 && (w < 4 || !stack_initialized(off, w)))
      variant = int(rng_() % 2);  // XADD reads memory: needs prior writes
    if (variant == 0) {
      static const Opcode st[] = {Opcode::STB, Opcode::STH, Opcode::STW,
                                  Opcode::STDW};
      emit(make(st[w == 1   ? 0
                   : w == 2 ? 1
                   : w == 4 ? 2
                            : 3],
                10, 0, int16_t(off), small_imm()));
    } else if (variant == 1) {
      int src = pick_scalar();
      static const Opcode stx[] = {Opcode::STXB, Opcode::STXH, Opcode::STXW,
                                   Opcode::STXDW};
      emit(make(stx[w == 1   ? 0
                    : w == 2 ? 1
                    : w == 4 ? 2
                             : 3],
                10, uint8_t(src), int16_t(off)));
    } else {
      int src = pick_scalar();
      emit(make(w == 4 ? Opcode::XADD32 : Opcode::XADD64, 10, uint8_t(src),
                int16_t(off)));
    }
    mark_stack_init(off, w);
  }

  void stack_load() {
    // Pick an initialized, aligned window; fall back to a store when the
    // stack is still untouched.
    for (int tries = 0; tries < 8; ++tries) {
      int w = 1 << (rng_() % 4);
      int off = -w * (1 + int(rng_() % uint64_t(64 / w)));
      if (!stack_initialized(off, w)) continue;
      static const Opcode ldx[] = {Opcode::LDXB, Opcode::LDXH, Opcode::LDXW,
                                   Opcode::LDXDW};
      int dst = pick_overwritable(false);
      emit(make(ldx[w == 1   ? 0
                    : w == 2 ? 1
                    : w == 4 ? 2
                             : 3],
                uint8_t(dst), 10, int16_t(off)));
      set_reg(dst, K::SCALAR);
      return;
    }
    stack_store();
  }

  void ctx_load() {
    // 1/2/4-byte context loads produce scalars under both hook families
    // (only 8-byte loads at offsets 0/8 turn into packet pointers).
    int w = 1 << (rng_() % 3);
    int slots = 16 / w;
    int off = w * int(rng_() % uint64_t(slots));
    static const Opcode ldx[] = {Opcode::LDXB, Opcode::LDXH, Opcode::LDXW};
    int dst = pick_overwritable(false);
    emit(make(ldx[w == 1 ? 0 : w == 2 ? 1 : 2], uint8_t(dst), 6,
              int16_t(off)));
    set_reg(dst, K::SCALAR);
  }

  void packet_access() {
    if (pkt_reg_ < 0) {
      // The bounds-guard idiom every real XDP program opens with:
      //   rA = ctx->data; rB = ctx->data_end;
      //   if (rA + need > rB) goto out;
      // After the guard, accesses within [rA, rA+need) are provably in
      // bounds on the fall-through path.
      int ra = pick_overwritable(/*durable_only=*/true);
      int rb;
      do {
        rb = pick_overwritable(true);
      } while (rb == ra);
      int need = 8 << (rng_() % 3);  // 8 / 16 / 32 verified bytes
      int rt = 1 + int(rng_() % 5);  // volatile scratch r1..r5
      emit(make(Opcode::LDXDW, uint8_t(ra), 6, 0));
      emit(make(Opcode::LDXDW, uint8_t(rb), 6, 8));
      emit(make(Opcode::MOV64_REG, uint8_t(rt), uint8_t(ra)));
      emit(make(Opcode::ADD64_IMM, uint8_t(rt), 0, 0, need));
      exit_jumps_.push_back(prog_.insns.size());
      emit(make(Opcode::JGT_REG, uint8_t(rt), uint8_t(rb), 0));
      reg_[size_t(ra)] = K::PKT;
      reg_[size_t(rb)] = K::PKT_END;
      reg_[size_t(rt)] = K::DIRTY;
      pkt_reg_ = ra;
      pkt_end_reg_ = rb;
      pkt_verified_ = need;
      return;
    }
    int w = 1 << (rng_() % 4);
    int off = w * int(rng_() % uint64_t(pkt_verified_ / w));
    switch (rng_() % 4) {
      case 0: {
        int dst = pick_overwritable(false);
        static const Opcode ldx[] = {Opcode::LDXB, Opcode::LDXH, Opcode::LDXW,
                                     Opcode::LDXDW};
        emit(make(ldx[w == 1   ? 0
                      : w == 2 ? 1
                      : w == 4 ? 2
                               : 3],
                  uint8_t(dst), uint8_t(pkt_reg_), int16_t(off)));
        set_reg(dst, K::SCALAR);
        break;
      }
      case 1: {
        int src = pick_scalar();
        static const Opcode stx[] = {Opcode::STXB, Opcode::STXH, Opcode::STXW,
                                     Opcode::STXDW};
        emit(make(stx[w == 1   ? 0
                      : w == 2 ? 1
                      : w == 4 ? 2
                               : 3],
                  uint8_t(pkt_reg_), uint8_t(src), int16_t(off)));
        break;
      }
      case 2: {
        static const Opcode st[] = {Opcode::STB, Opcode::STH, Opcode::STW,
                                    Opcode::STDW};
        emit(make(st[w == 1   ? 0
                     : w == 2 ? 1
                     : w == 4 ? 2
                              : 3],
                  uint8_t(pkt_reg_), 0, int16_t(off), small_imm()));
        break;
      }
      default: {
        int src = pick_scalar();
        emit(make(w >= 8 ? Opcode::XADD64 : Opcode::XADD32,
                  uint8_t(pkt_reg_), uint8_t(src),
                  int16_t(w >= 8 ? off & ~7 : off & ~3)));
        break;
      }
    }
  }

  void pat_helper() {
    switch (rng_() % 4) {
      case 0: {
        static const int64_t ids[] = {ebpf::HELPER_KTIME_GET_NS,
                                      ebpf::HELPER_GET_PRANDOM_U32,
                                      ebpf::HELPER_GET_SMP_PROC_ID};
        emit(make(Opcode::CALL, 0, 0, 0, ids[rng_() % 3]));
        break;
      }
      case 1: {
        // bpf_csum_diff over two stack windows — the helper deliberately
        // outside the JIT support set, so typed programs keep the
        // per-program bailout ladder exercised. Sizes are 4-multiples
        // <= 512 and both windows are written first: no runtime fault.
        int from = 4 << (rng_() % 2);
        int to = 4 << (rng_() % 2);
        fill_stack(-8, from);
        fill_stack(-16, to);
        emit(make(Opcode::MOV64_REG, 1, 10));
        emit(make(Opcode::ADD64_IMM, 1, 0, 0, -8));
        emit(make(Opcode::MOV64_IMM, 2, 0, 0, from));
        emit(make(Opcode::MOV64_REG, 3, 10));
        emit(make(Opcode::ADD64_IMM, 3, 0, 0, -16));
        emit(make(Opcode::MOV64_IMM, 4, 0, 0, to));
        emit(make(Opcode::MOV64_IMM, 5, 0, 0, int64_t(rng_() % 0xffff)));
        emit(make(Opcode::CALL, 0, 0, 0, ebpf::HELPER_CSUM_DIFF));
        break;
      }
      case 2: {
        if (prog_.type != ProgType::XDP) {
          pat_helper_simple();
          return;
        }
        // bpf_xdp_adjust_head moves data/data_end: every packet pointer
        // (and its verified window) is dead afterwards, mirroring the
        // type-inference invalidation.
        static const int64_t deltas[] = {0, 8, 16, -8};
        emit(make(Opcode::MOV64_REG, 1, 6));
        emit(make(Opcode::MOV64_IMM, 2, 0, 0, deltas[rng_() % 4]));
        emit(make(Opcode::CALL, 0, 0, 0, ebpf::HELPER_XDP_ADJUST_HEAD));
        if (pkt_reg_ >= 0) set_reg(pkt_reg_, K::DIRTY);
        if (pkt_end_reg_ >= 0) set_reg(pkt_end_reg_, K::DIRTY);
        break;
      }
      default:
        pat_helper_simple();
        return;
    }
    clobber_call_regs();
    set_reg(0, K::SCALAR);
  }

  void pat_helper_simple() {
    static const int64_t ids[] = {ebpf::HELPER_KTIME_GET_NS,
                                  ebpf::HELPER_GET_PRANDOM_U32,
                                  ebpf::HELPER_GET_SMP_PROC_ID};
    emit(make(Opcode::CALL, 0, 0, 0, ids[rng_() % 3]));
    clobber_call_regs();
    set_reg(0, K::SCALAR);
  }

  // Stack key immediates stay small so next_input()'s map pre-population
  // can produce both hits and misses.
  int64_t key_imm() { return int64_t(rng_() % 10); }

  int pick_fd() { return int(rng_() % uint64_t(prog_.maps.size())); }

  void pat_map() {
    int fd = pick_fd();
    int koff = -4 * (1 + int(rng_() % 16));
    switch (rng_() % 4) {
      case 0: {
        // Null-checked lookup, then 1-2 dereferences of the proven value.
        int rv = pick_overwritable(/*durable_only=*/true);
        ensure_scalar(rv);
        emit(make(Opcode::STW, 10, 0, int16_t(koff), key_imm()));
        mark_stack_init(koff, 4);
        emit(make(Opcode::LDMAPFD, 1, 0, 0, fd));
        emit(make(Opcode::MOV64_REG, 2, 10));
        emit(make(Opcode::ADD64_IMM, 2, 0, 0, koff));
        emit(make(Opcode::CALL, 0, 0, 0, ebpf::HELPER_MAP_LOOKUP));
        clobber_call_regs();
        // Build the use-block first so the null-check knows how far to
        // jump; value_size is 8, so offsets stay within [0, 8).
        std::vector<Insn> uses;
        int n_uses = 1 + int(rng_() % 2);
        for (int u = 0; u < n_uses; ++u) {
          int w = 1 << (rng_() % 4);
          int off = w * int(rng_() % uint64_t(8 / w));
          switch (rng_() % 4) {
            case 0: {
              static const Opcode ldx[] = {Opcode::LDXB, Opcode::LDXH,
                                           Opcode::LDXW, Opcode::LDXDW};
              uses.push_back(make(ldx[w == 1   ? 0
                                      : w == 2 ? 1
                                      : w == 4 ? 2
                                               : 3],
                                  uint8_t(rv), 0, int16_t(off)));
              break;
            }
            case 1: {
              static const Opcode stx[] = {Opcode::STXB, Opcode::STXH,
                                           Opcode::STXW, Opcode::STXDW};
              uses.push_back(make(stx[w == 1   ? 0
                                      : w == 2 ? 1
                                      : w == 4 ? 2
                                               : 3],
                                  0, uint8_t(rv), int16_t(off)));
              break;
            }
            case 2: {
              static const Opcode st[] = {Opcode::STB, Opcode::STH,
                                          Opcode::STW, Opcode::STDW};
              uses.push_back(make(st[w == 1   ? 0
                                     : w == 2 ? 1
                                     : w == 4 ? 2
                                              : 3],
                                  0, 0, int16_t(off), small_imm()));
              break;
            }
            default:
              uses.push_back(make(w >= 8 ? Opcode::XADD64 : Opcode::XADD32,
                                  0, uint8_t(rv),
                                  int16_t(w >= 8 ? 0 : off & ~3)));
              break;
          }
        }
        emit(make(Opcode::JEQ_IMM, 0, 0, int16_t(uses.size()), 0));
        for (const Insn& u : uses) emit(u);
        // Merge point: r0 joins {map value, NULL}; overwrite it so the
        // tracked state (and the type join) is a plain scalar again.
        emit(make(Opcode::MOV64_IMM, 0, 0, 0, 0));
        set_reg(0, K::SCALAR);
        break;
      }
      case 1: {
        int voff = -8 * (1 + int(rng_() % 8));
        emit(make(Opcode::STW, 10, 0, int16_t(koff), key_imm()));
        mark_stack_init(koff, 4);
        fill_stack(voff, 8);
        emit(make(Opcode::LDMAPFD, 1, 0, 0, fd));
        emit(make(Opcode::MOV64_REG, 2, 10));
        emit(make(Opcode::ADD64_IMM, 2, 0, 0, koff));
        emit(make(Opcode::MOV64_REG, 3, 10));
        emit(make(Opcode::ADD64_IMM, 3, 0, 0, voff));
        emit(make(Opcode::MOV64_IMM, 4, 0, 0, 0));
        emit(make(Opcode::CALL, 0, 0, 0, ebpf::HELPER_MAP_UPDATE));
        clobber_call_regs();
        set_reg(0, K::SCALAR);
        break;
      }
      case 2: {
        emit(make(Opcode::STW, 10, 0, int16_t(koff), key_imm()));
        mark_stack_init(koff, 4);
        emit(make(Opcode::LDMAPFD, 1, 0, 0, fd));
        emit(make(Opcode::MOV64_REG, 2, 10));
        emit(make(Opcode::ADD64_IMM, 2, 0, 0, koff));
        emit(make(Opcode::CALL, 0, 0, 0, ebpf::HELPER_MAP_DELETE));
        clobber_call_regs();
        set_reg(0, K::SCALAR);
        break;
      }
      default: {
        emit(make(Opcode::LDMAPFD, 1, 0, 0, fd));
        emit(make(Opcode::MOV64_IMM, 2, 0, 0, int64_t(rng_() % 12)));
        emit(make(Opcode::MOV64_IMM, 3, 0, 0, int64_t(rng_() % 3)));
        emit(make(Opcode::CALL, 0, 0, 0, ebpf::HELPER_REDIRECT_MAP));
        clobber_call_regs();
        set_reg(0, K::SCALAR);
        break;
      }
    }
  }

  const GenConfig& cfg_;
  std::mt19937_64& rng_;
  ebpf::Program prog_;
  std::array<K, 11> reg_{};
  uint64_t stack_init_ = 0;  // byte b of [r10-64, r10) written => bit b set
  int pkt_reg_ = -1;
  int pkt_end_reg_ = -1;
  int pkt_verified_ = 0;            // provably-in-bounds packet bytes
  std::vector<size_t> exit_jumps_;  // indices jumping to the epilogue
};

}  // namespace

// ---------------------------------------------------------------------------
// Wild generation — the legacy fuzz-loop distribution, canonicalized.
// ---------------------------------------------------------------------------

namespace {

// Zeroes the fields an opcode does not use. No executor or check reads
// them, but the disassembler cannot print them either — sanitized programs
// round-trip bit-exactly through disassemble/assemble, which is the
// property the generated-program roundtrip test asserts.
void sanitize_unused_fields(Insn& insn) {
  ebpf::AluShape a;
  ebpf::JmpShape j;
  if (ebpf::decompose_alu(insn.op, &a)) {
    insn.off = 0;
    if (a.is_imm)
      insn.src = 0;
    else
      insn.imm = 0;
    return;
  }
  if (ebpf::decompose_jmp(insn.op, &j)) {
    if (j.is_imm)
      insn.src = 0;
    else
      insn.imm = 0;
    return;
  }
  switch (insn.op) {
    case Opcode::NEG64:
    case Opcode::NEG32:
    case Opcode::BE16:
    case Opcode::BE32:
    case Opcode::BE64:
    case Opcode::LE16:
    case Opcode::LE32:
    case Opcode::LE64:
      insn.src = 0;
      insn.off = 0;
      insn.imm = 0;
      break;
    case Opcode::JA:
      insn.dst = 0;
      insn.src = 0;
      insn.imm = 0;
      break;
    case Opcode::LDXB:
    case Opcode::LDXH:
    case Opcode::LDXW:
    case Opcode::LDXDW:
      insn.imm = 0;
      break;
    case Opcode::STXB:
    case Opcode::STXH:
    case Opcode::STXW:
    case Opcode::STXDW:
    case Opcode::XADD32:
    case Opcode::XADD64:
      insn.imm = 0;
      break;
    case Opcode::STB:
    case Opcode::STH:
    case Opcode::STW:
    case Opcode::STDW:
      insn.src = 0;
      break;
    case Opcode::CALL:
      insn.dst = 0;
      insn.src = 0;
      insn.off = 0;
      break;
    case Opcode::EXIT:
    case Opcode::NOP:
      insn.dst = 0;
      insn.src = 0;
      insn.off = 0;
      insn.imm = 0;
      break;
    case Opcode::LDDW:
    case Opcode::LDMAPFD:
      insn.src = 0;
      insn.off = 0;
      break;
    default:
      break;
  }
}

}  // namespace

ebpf::Insn ProgramGen::wild_insn(int program_len) {
  const int n = program_len;
  static const int64_t kImms[] = {0,   1,      2,
                                  -1,  8,      14,
                                  64,  255,    0x1000,
                                  int64_t(0x80000000ull), -4096};
  static const int64_t kHelpers[] = {
      ebpf::HELPER_MAP_LOOKUP,      ebpf::HELPER_MAP_UPDATE,
      ebpf::HELPER_MAP_DELETE,      ebpf::HELPER_KTIME_GET_NS,
      ebpf::HELPER_GET_PRANDOM_U32, ebpf::HELPER_GET_SMP_PROC_ID,
      ebpf::HELPER_CSUM_DIFF,       ebpf::HELPER_XDP_ADJUST_HEAD,
      ebpf::HELPER_REDIRECT_MAP,    9999 /* unknown id */};
  Insn insn;
  insn.op = static_cast<Opcode>(rng_() % uint64_t(Opcode::NUM_OPCODES));
  insn.dst = uint8_t(rng_() % 11);
  insn.src = uint8_t(rng_() % 11);
  switch (rng_() % 4) {
    case 0: insn.off = int16_t(rng_() % 16); break;
    case 1: insn.off = int16_t(-(int(rng_() % 24))); break;
    case 2: insn.off = int16_t(rng_() % uint64_t(n + 2)); break;
    default: insn.off = int16_t(int(rng_() % 64) - 16); break;
  }
  insn.imm = kImms[rng_() % (sizeof(kImms) / sizeof(kImms[0]))];
  if (insn.op == Opcode::CALL)
    insn.imm = kHelpers[rng_() % (sizeof(kHelpers) / sizeof(kHelpers[0]))];
  if (insn.op == Opcode::LDMAPFD) insn.imm = int64_t(rng_() % 3);  // 2: bad
  if (insn.op == Opcode::LDDW && (rng_() % 2))
    insn.imm = int64_t(rng_());  // full 64-bit immediates
  sanitize_unused_fields(insn);
  insn.imm = canon_imm(insn.op, insn.imm);
  return insn;
}

ebpf::Program ProgramGen::gen_wild() {
  ebpf::Program p;
  p.type = (rng_() % 3) ? ProgType::XDP : ProgType::TRACEPOINT;
  p.maps = random_maps(rng_);
  const int lo = std::max(1, cfg_.min_insns);
  const int hi = std::max(lo, cfg_.max_insns);
  int n = lo + int(rng_() % uint64_t(hi - lo + 1));
  for (int i = 0; i < n; ++i) p.insns.push_back(wild_insn(n));
  if (rng_() % 2) p.insns.push_back(make(Opcode::EXIT));
  return p;
}

ebpf::Program ProgramGen::gen_typed() {
  for (int attempt = 0; attempt < 64; ++attempt) {
    TypedBuilder builder(cfg_, rng_);
    ebpf::Program p = builder.build();
    if (!cfg_.validate_typed) return p;
    safety::SafetyOptions opts;
    opts.run_solver_checks = cfg_.solver_validate;
    if (safety::check_safety(p, opts).safe) return p;
    rejects_++;
  }
  // Unreachable by construction; keep the sequence going regardless.
  ebpf::Program p;
  p.type = ProgType::XDP;
  p.insns = {make(Opcode::MOV64_IMM, 0, 0, 0, 2), make(Opcode::EXIT)};
  return p;
}

ebpf::Program ProgramGen::next(bool* out_typed) {
  bool typed = int(rng_() % 100) < cfg_.typed_percent;
  if (out_typed) *out_typed = typed;
  return typed ? gen_typed() : gen_wild();
}

interp::InputSpec ProgramGen::next_input(const ebpf::Program& p) {
  interp::InputSpec in;
  in.packet.resize(rng_() % 65);
  for (uint8_t& b : in.packet) b = uint8_t(rng_());
  in.prandom_seed = rng_();
  in.ktime_base = rng_() % 2 ? 0 : rng_();
  in.cpu_id = uint32_t(rng_() % 4);
  in.ctx_args = {rng_(), rng_()};
  for (int fd = 0; fd < int(p.maps.size()); ++fd) {
    int entries = int(rng_() % 3);
    for (int e = 0; e < entries; ++e) {
      interp::MapEntryInit init;
      init.key.resize(p.maps[size_t(fd)].key_size);
      if (rng_() % 2) {
        // Little-endian small key — the form typed programs' stw key
        // slots produce, so lookups/deletes genuinely hit.
        if (!init.key.empty()) init.key[0] = uint8_t(rng_() % 10);
      } else {
        for (uint8_t& b : init.key) b = uint8_t(rng_() % 10);
      }
      init.value.resize(p.maps[size_t(fd)].value_size);
      for (uint8_t& b : init.value) b = uint8_t(rng_());
      in.maps[fd].push_back(init);
    }
  }
  return in;
}

}  // namespace k2::testgen
