#include "testgen/repro.h"

#include <sstream>
#include <stdexcept>
#include <vector>

#include "ebpf/assembler.h"

namespace k2::testgen {

namespace {

const char* prog_type_name(ebpf::ProgType t) {
  switch (t) {
    case ebpf::ProgType::SOCKET_FILTER: return "socket";
    case ebpf::ProgType::TRACEPOINT: return "trace";
    default: return "xdp";
  }
}

ebpf::ProgType prog_type_from(const std::string& s) {
  if (s == "xdp") return ebpf::ProgType::XDP;
  if (s == "socket") return ebpf::ProgType::SOCKET_FILTER;
  if (s == "trace") return ebpf::ProgType::TRACEPOINT;
  throw std::runtime_error("k2-repro: unknown program type '" + s + "'");
}

const char* map_kind_name(ebpf::MapKind k) {
  switch (k) {
    case ebpf::MapKind::ARRAY: return "array";
    case ebpf::MapKind::DEVMAP: return "devmap";
    default: return "hash";
  }
}

ebpf::MapKind map_kind_from(const std::string& s) {
  if (s == "hash") return ebpf::MapKind::HASH;
  if (s == "array") return ebpf::MapKind::ARRAY;
  if (s == "devmap") return ebpf::MapKind::DEVMAP;
  throw std::runtime_error("k2-repro: unknown map kind '" + s + "'");
}

std::string hex(const std::vector<uint8_t>& bytes) {
  if (bytes.empty()) return "-";
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out += digits[b >> 4];
    out += digits[b & 0xf];
  }
  return out;
}

std::vector<uint8_t> unhex(const std::string& s) {
  if (s == "-") return {};
  if (s.size() % 2 != 0)
    throw std::runtime_error("k2-repro: odd-length hex string '" + s + "'");
  auto nibble = [&](char c) -> uint8_t {
    if (c >= '0' && c <= '9') return uint8_t(c - '0');
    if (c >= 'a' && c <= 'f') return uint8_t(c - 'a' + 10);
    if (c >= 'A' && c <= 'F') return uint8_t(c - 'A' + 10);
    throw std::runtime_error("k2-repro: bad hex digit in '" + s + "'");
  };
  std::vector<uint8_t> out(s.size() / 2);
  for (size_t i = 0; i < out.size(); ++i)
    out[i] = uint8_t(nibble(s[2 * i]) << 4 | nibble(s[2 * i + 1]));
  return out;
}

// Splits "key=value" tokens off a directive payload.
std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

uint64_t parse_u64(const std::string& s) {
  try {
    size_t used = 0;
    uint64_t v = std::stoull(s, &used, 0);
    if (used != s.size()) throw std::runtime_error("");
    return v;
  } catch (...) {
    throw std::runtime_error("k2-repro: bad number '" + s + "'");
  }
}

// "name=value" → value, enforcing the expected name.
std::string expect_kv(const std::string& tok, const std::string& name) {
  size_t eq = tok.find('=');
  if (eq == std::string::npos || tok.substr(0, eq) != name)
    throw std::runtime_error("k2-repro: expected '" + name + "=...', got '" +
                             tok + "'");
  return tok.substr(eq + 1);
}

}  // namespace

std::string write_repro(const ebpf::Program& prog,
                        const interp::InputSpec& input,
                        const interp::RunOptions& opt) {
  std::ostringstream os;
  os << "; k2-repro/v1\n";
  os << "; type: " << prog_type_name(prog.type) << "\n";
  for (const ebpf::MapDef& m : prog.maps)
    os << "; map: " << (m.name.empty() ? "m" : m.name) << " "
       << map_kind_name(m.kind) << " " << m.key_size << " " << m.value_size
       << " " << m.max_entries << "\n";
  os << "; run: max_insns=" << opt.max_insns
     << " trace=" << (opt.record_trace ? 1 : 0) << "\n";
  os << "; input: packet=" << hex(input.packet)
     << " prandom=" << input.prandom_seed << " ktime=" << input.ktime_base
     << " cpu=" << input.cpu_id << " ctx=" << input.ctx_args[0] << ","
     << input.ctx_args[1] << "\n";
  for (const auto& [fd, entries] : input.maps)
    for (const interp::MapEntryInit& e : entries)
      os << "; input-map: " << fd << " key=" << hex(e.key)
         << " val=" << hex(e.value) << "\n";
  os << disassemble(prog);
  return os.str();
}

Repro parse_repro(std::string_view text) {
  Repro r;
  std::vector<ebpf::MapDef> maps;
  ebpf::ProgType type = ebpf::ProgType::XDP;
  bool versioned = false;

  std::istringstream is{std::string(text)};
  std::string line;
  while (std::getline(is, line)) {
    size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos || line[b] != ';') continue;
    std::string body = line.substr(b + 1);
    size_t nb = body.find_first_not_of(" \t");
    if (nb == std::string::npos) continue;
    body = body.substr(nb);
    if (body.rfind("k2-repro/v1", 0) == 0) {
      versioned = true;
      continue;
    }
    size_t colon = body.find(':');
    if (colon == std::string::npos) continue;  // ordinary comment
    std::string key = body.substr(0, colon);
    std::vector<std::string> toks = split_ws(body.substr(colon + 1));
    if (key == "type") {
      if (toks.size() != 1)
        throw std::runtime_error("k2-repro: bad type directive");
      type = prog_type_from(toks[0]);
    } else if (key == "map") {
      if (toks.size() != 5)
        throw std::runtime_error("k2-repro: bad map directive");
      ebpf::MapDef m;
      m.name = toks[0];
      m.kind = map_kind_from(toks[1]);
      m.key_size = uint32_t(parse_u64(toks[2]));
      m.value_size = uint32_t(parse_u64(toks[3]));
      m.max_entries = uint32_t(parse_u64(toks[4]));
      maps.push_back(m);
    } else if (key == "run") {
      for (const std::string& t : toks) {
        size_t eq = t.find('=');
        if (eq == std::string::npos)
          throw std::runtime_error("k2-repro: bad run directive '" + t + "'");
        std::string name = t.substr(0, eq), val = t.substr(eq + 1);
        if (name == "max_insns")
          r.opt.max_insns = parse_u64(val);
        else if (name == "trace")
          r.opt.record_trace = parse_u64(val) != 0;
        else
          throw std::runtime_error("k2-repro: unknown run option '" + name +
                                   "'");
      }
    } else if (key == "input") {
      if (toks.size() != 5)
        throw std::runtime_error("k2-repro: bad input directive");
      r.input.packet = unhex(expect_kv(toks[0], "packet"));
      r.input.prandom_seed = parse_u64(expect_kv(toks[1], "prandom"));
      r.input.ktime_base = parse_u64(expect_kv(toks[2], "ktime"));
      r.input.cpu_id = uint32_t(parse_u64(expect_kv(toks[3], "cpu")));
      std::string ctx = expect_kv(toks[4], "ctx");
      size_t comma = ctx.find(',');
      if (comma == std::string::npos)
        throw std::runtime_error("k2-repro: bad ctx '" + ctx + "'");
      r.input.ctx_args[0] = parse_u64(ctx.substr(0, comma));
      r.input.ctx_args[1] = parse_u64(ctx.substr(comma + 1));
    } else if (key == "input-map") {
      if (toks.size() != 3)
        throw std::runtime_error("k2-repro: bad input-map directive");
      int fd = int(parse_u64(toks[0]));
      interp::MapEntryInit e;
      e.key = unhex(expect_kv(toks[1], "key"));
      e.value = unhex(expect_kv(toks[2], "val"));
      r.input.maps[fd].push_back(std::move(e));
    }
  }
  if (!versioned)
    throw std::runtime_error("k2-repro: missing '; k2-repro/v1' header");

  ebpf::AsmOptions lenient;
  lenient.lenient = true;
  r.program = ebpf::assemble(text, type, std::move(maps), lenient);
  return r;
}

}  // namespace k2::testgen
