// Seedable random BPF program generator for the conformance harness
// (ROADMAP open item 4: an auto-generated stress corpus of random
// well-typed programs, validated by the safety checker).
//
// Two generation modes, mixed by GenConfig::typed_percent:
//
//  * "wild" programs — unconstrained instruction soup (the distribution the
//    old hand-rolled fuzz loops in tests/jit_backend_test.cc and
//    tests/decoded_interp_test.cc used): register indices stay in [0, 10]
//    but opcodes, offsets, immediates, helper ids and jump targets are free
//    to be garbage, so a large fraction of programs fault — and every
//    executor must fault identically. Immediates are emitted in the
//    assembler's canonical form (non-LDDW/LDMAPFD values sign-extended to
//    32 bits) so wild programs round-trip bit-exactly through
//    disassemble/assemble.
//
//  * "typed" programs — structure-aware generation that tracks the safety
//    checker's register-type state machine while emitting weighted
//    ALU/branch/mem/helper/map patterns: forward-only control flow ending
//    in a shared epilogue, stack accesses aligned and write-before-read,
//    packet accesses behind the data/data_end guard idiom, map lookups
//    null-checked before dereference, helper calls with correctly typed
//    arguments. Construction guarantees the §6 properties; each program is
//    additionally validated through safety::check_safety (static checks by
//    default; GenConfig::solver_validate adds the Z3-backed packet-bounds
//    and stack-read proofs) and regenerated on the rare rejection. Typed
//    programs never fault at runtime — the harness uses that as an oracle.
//
// Determinism: one ProgramGen is a pure function of its GenConfig; the
// same seed yields the same program and input sequence on every platform.
#pragma once

#include <cstdint>
#include <random>

#include "ebpf/program.h"
#include "interp/state.h"

namespace k2::testgen {

struct GenConfig {
  uint64_t seed = 1;

  // Typed-mode body budget (instructions before the epilogue); wild
  // programs draw their length from the same range.
  int min_insns = 8;
  int max_insns = 40;

  // Typed-mode pattern weights (relative; 0 disables the class).
  int w_alu = 6;     // scalar ALU / endian / neg
  int w_branch = 3;  // forward skips and guard-to-exit jumps
  int w_mem = 4;     // stack, packet (guarded) and ctx accesses
  int w_helper = 2;  // ktime/prandom/smp_id/csum_diff/adjust_head
  int w_map = 3;     // lookup (null-checked) / update / delete / redirect

  // Percentage of typed programs; the rest are wild. 0 = all wild,
  // 100 = all typed.
  int typed_percent = 60;

  // Validate typed programs through safety::check_safety before returning
  // them (static checks; regenerate on rejection).
  bool validate_typed = true;
  // Also run the solver-backed safety checks (packet bounds, stack
  // read-before-write) during validation. Expensive; off by default since
  // typed construction already guarantees these properties.
  bool solver_validate = false;
};

class ProgramGen {
 public:
  explicit ProgramGen(const GenConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {}

  // Next program in the sequence. `out_typed` (optional) reports whether
  // the typed generator produced it.
  ebpf::Program next(bool* out_typed = nullptr);

  // A random input for `p`: packet bytes, map pre-state (keyed so typed
  // programs' stack-immediate lookups get both hits and misses), helper
  // seeds and ctx scalars.
  interp::InputSpec next_input(const ebpf::Program& p);

  // One wild-mode instruction for a program of length `program_len` (jump
  // offsets are drawn relative to it). The incremental-path fuzz uses this
  // as its mutation source: replacing one instruction keeps the slot count
  // unchanged, which is the DecodedProgram::patch contract.
  ebpf::Insn wild_insn(int program_len);

  // Typed candidates the safety checker rejected (each was regenerated;
  // construction should keep this at 0 — the harness reports it).
  uint64_t rejects() const { return rejects_; }

  std::mt19937_64& rng() { return rng_; }

 private:
  ebpf::Program gen_wild();
  ebpf::Program gen_typed();

  GenConfig cfg_;
  std::mt19937_64 rng_;
  uint64_t rejects_ = 0;
};

}  // namespace k2::testgen
