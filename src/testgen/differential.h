// Cross-backend differential conformance harness.
//
// The correctness story has one reference semantics — the legacy switch
// interpreter (`interp::run`), kept deliberately simple — and faster
// executors that must be observably identical to it: the decode-once
// computed-goto interpreter and the x86-64 template JIT, both behind
// `jit::BackendRunner` exactly as `pipeline::ExecContext` holds them. The
// harness drives generated programs (testgen::ProgramGen) and random
// inputs through every configured backend and cross-checks the complete
// RunResult bit-for-bit: fault code, faulting pc, r0, packet bytes, final
// map contents, executed-instruction count, and (when tracing) the trace.
//
// On disagreement it delta-debugs the program down (NOP substitution, so
// slot indices and jump targets stay put, then Program::strip_nops), and
// emits a self-contained `.k2asm` repro (testgen/repro.h) that replays the
// exact input. Used as a library by tests/ and exposed as `k2c fuzz`.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "interp/state.h"
#include "jit/exec_backend.h"
#include "testgen/program_gen.h"

namespace k2::pipeline {
struct ExecContext;
}

namespace k2::conformance {

struct HarnessConfig {
  testgen::GenConfig gen;
  uint64_t iters = 1000;       // programs to generate
  int inputs_per_program = 5;  // fresh inputs per program
  int passes = 2;              // re-run passes over a prepared program
  std::vector<jit::ExecBackend> backends = {jit::ExecBackend::FAST_INTERP,
                                            jit::ExecBackend::JIT};
  // Vary RunOptions occasionally (tiny max_insns, record_trace) so the
  // step-limit and trace paths are compared too.
  bool vary_run_options = true;
  // Typed programs are constructed never to fault; a fault under default
  // run options is reported as an oracle violation of the generator.
  bool typed_fault_oracle = true;
  // Minimize disagreeing programs before reporting them.
  bool shrink = true;
  // Execution budget for the shrinker (re-runs across all mismatches).
  uint64_t max_shrink_execs = 4000;
  // Stop after this many mismatches (each is shrunk; one is usually all
  // a human needs, CI keeps a couple for context).
  int max_mismatches = 4;
};

struct Mismatch {
  std::string backend;  // "fast" / "jit" / "oracle:typed-fault" / ...
  std::string detail;   // first differing RunResult field, both values
  ebpf::Program program;
  ebpf::Program shrunk;  // == program when shrinking is off or failed
  interp::InputSpec input;
  interp::RunOptions opt;
  std::string repro;  // k2-repro/v1 text of the shrunk program
};

struct Report {
  uint64_t programs = 0;
  uint64_t typed_programs = 0;
  uint64_t wild_programs = 0;
  uint64_t pairs = 0;    // reference-vs-backend result comparisons
  uint64_t clean = 0;    // reference executions with no fault
  uint64_t faulted = 0;  // reference executions that faulted
  uint64_t jit_native = 0;            // programs the JIT ran natively
  uint64_t jit_bailout_programs = 0;  // programs that fell back
  uint64_t gen_rejects = 0;   // typed candidates the safety checker refused
  uint64_t shrink_execs = 0;  // executions spent minimizing
  std::vector<Mismatch> mismatches;

  bool ok() const { return mismatches.empty(); }
  std::string summary() const;  // one-line human summary
};

// Empty when the results are observably identical; otherwise a description
// of the first differing field with both values.
std::string diff_results(const interp::RunResult& want,
                         const interp::RunResult& got, bool compare_trace);

class DifferentialHarness {
 public:
  explicit DifferentialHarness(const HarnessConfig& cfg);
  ~DifferentialHarness();

  // Generates cfg.iters programs and differentially checks each; stops
  // early after cfg.max_mismatches disagreements.
  Report run();

  // Incremental-path variant (one program, `iters` single-instruction
  // mutations): every mutation is applied three ways — incremental
  // prepare(touched) on a long-lived runner, full invalidate()+prepare()
  // on a second runner, and the reference interpreter — and all three
  // must agree. Covers DecodedProgram::patch and JIT re-translation
  // against full re-decode/re-translate, with occasional rollbacks.
  Report run_incremental(uint64_t iters);

  // Differentially checks one program (library entry for tests). Appends
  // to `rep`.
  void check_program(const ebpf::Program& prog, bool typed, Report& rep);

  // Replays one exact (program, input, options) capture — e.g. a loaded
  // .k2asm repro — across the configured backends.
  Report replay(const ebpf::Program& prog, const interp::InputSpec& in,
                const interp::RunOptions& opt);

  testgen::ProgramGen& gen() { return gen_; }

 private:
  interp::RunOptions next_run_options();
  const interp::RunResult& run_reference(const ebpf::Program& prog,
                                         const interp::InputSpec& in,
                                         const interp::RunOptions& opt);
  void record_mismatch(jit::ExecBackend be, const std::string& detail,
                       const ebpf::Program& prog,
                       const interp::InputSpec& in,
                       const interp::RunOptions& opt, Report& rep);
  // Oracle violations (no backend to minimize against).
  void record_mismatch_named(const std::string& name,
                             const std::string& detail,
                             const ebpf::Program& prog,
                             const interp::InputSpec& in,
                             const interp::RunOptions& opt, Report& rep);
  ebpf::Program shrink_program(const ebpf::Program& prog,
                               const interp::InputSpec& in,
                               const interp::RunOptions& opt,
                               jit::ExecBackend be, Report& rep);

  HarnessConfig cfg_;
  testgen::ProgramGen gen_;
  interp::Machine ref_machine_;
  interp::RunResult ref_result_;
  // One ExecContext per configured backend, exactly the shape the
  // evaluation pipeline uses (heap-held: ExecContext is move-averse).
  std::vector<std::unique_ptr<pipeline::ExecContext>> ctxs_;
};

}  // namespace k2::conformance
