// Progress observation for long-running compiles: a small event vocabulary
// the search driver emits through an injected callback, consumed by the
// service layer (src/api) to build per-job event streams. Deliberately a
// leaf header (no dependency above util) so every layer from core up can
// speak it without inverting the layer stack.
//
// Determinism contract: emitting progress events never changes search
// decisions — events are pure observations (no RNG draws, no mutation of
// chain state), so a run with a progress sink attached produces bit-identical
// results to the same run without one. Enforced by the service differential
// test (tests/api_service_test.cc).
//
// Thread-safety contract for sinks: chains run concurrently (unless
// CompileServices::sequential), so a ProgressFn must be safe to invoke from
// any number of threads at once. It must also be fast and non-blocking —
// it runs inline on the chain hot path, once per `tick_every` iterations.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace k2::core {

struct ProgressEvent {
  enum class Kind : uint8_t {
    CHAIN_TICK,  // a chain passed an iteration checkpoint
    NEW_BEST,    // a chain found a new best verified candidate
    JOB_DONE,    // a batch benchmark×setting job finished (batch mode only)
  };
  Kind kind = Kind::CHAIN_TICK;

  // CHAIN_TICK / NEW_BEST: which chain, where it is, what it has done.
  int chain = -1;
  uint64_t iter = 0;
  uint64_t proposals = 0;  // retired proposals so far (this chain)
  double perf = 0;         // NEW_BEST: relative perf of the new best
                           // (negative = better than source); JOB_DONE:
                           // absolute best_perf of the finished job

  // JOB_DONE: identity and stats delta of the finished batch job.
  std::string benchmark;
  std::string setting;
  bool improved = false;
  double wall_secs = 0;
  uint64_t cache_hits = 0;    // this job's cache-stats delta
  uint64_t cache_misses = 0;
  uint64_t solver_calls = 0;
};

using ProgressFn = std::function<void(const ProgressEvent&)>;

}  // namespace k2::core
