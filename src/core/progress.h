// Progress observation for long-running compiles: a small event vocabulary
// the search driver emits through an injected callback, consumed by the
// service layer (src/api) to build per-job event streams. Deliberately a
// leaf header (no dependency above util) so every layer from core up can
// speak it without inverting the layer stack.
//
// Determinism contract: emitting progress events never changes search
// decisions — events are pure observations (no RNG draws, no mutation of
// chain state), so a run with a progress sink attached produces bit-identical
// results to the same run without one. Enforced by the service differential
// test (tests/api_service_test.cc).
//
// Thread-safety contract for sinks: chains run concurrently (unless
// CompileServices::sequential), so a ProgressFn must be safe to invoke from
// any number of threads at once. It must also be fast and non-blocking —
// it runs inline on the chain hot path, once per `tick_every` iterations.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

namespace k2::core {

// Per-job resource budget (ISSUE 7), shared by every chain of a compile run
// (or every job of a batch run): a wall-clock cap and a total-iteration cap,
// either 0 = unlimited. Chains call charge() once per iteration checkpoint;
// once either cap is hit the exhausted flag latches and every chain stops at
// its next checkpoint, exactly like cooperative cancellation — EXCEPT that
// final whole-program re-verification of the candidates found so far still
// runs, so a budget-capped job finishes DONE with a verified best program
// and CompileResult::budget_exhausted == true, never a silently-partial or
// unverified result. (The wall cap bounds the search; the final verification
// tail is bounded separately by eq.timeout_ms per candidate.)
//
// Determinism: the iteration cap is charged at deterministic points, so a
// sequential same-seed run exhausts at the same iteration every time; the
// wall cap is inherently timing-dependent. Thread-safe; shared by chains
// running concurrently. Lives here (the leaf header) so both core and the
// service layer can name it without inverting the layer stack.
struct JobBudget {
  // Configure and start the clock. Call once, before the run observes the
  // budget; the wall window starts now (a job's queue time is not charged).
  void arm(uint64_t wall_ms, uint64_t iters) {
    max_wall_ms_ = wall_ms;
    max_iters_ = iters;
    if (wall_ms > 0)
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(wall_ms);
  }

  // One iteration's charge; returns true once the budget is exhausted
  // (latched — every later call returns true immediately).
  bool charge() {
    if (exhausted_.load(std::memory_order_relaxed)) return true;
    if (max_iters_ > 0 &&
        iters_used_.fetch_add(1, std::memory_order_relaxed) + 1 >= max_iters_)
      exhausted_.store(true, std::memory_order_relaxed);
    else if (max_wall_ms_ > 0 &&
             std::chrono::steady_clock::now() >= deadline_)
      exhausted_.store(true, std::memory_order_relaxed);
    return exhausted_.load(std::memory_order_relaxed);
  }

  bool exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }
  uint64_t iters_used() const {
    return iters_used_.load(std::memory_order_relaxed);
  }

 private:
  uint64_t max_wall_ms_ = 0;
  uint64_t max_iters_ = 0;
  std::chrono::steady_clock::time_point deadline_{};
  std::atomic<uint64_t> iters_used_{0};
  std::atomic<bool> exhausted_{false};
};

struct ProgressEvent {
  enum class Kind : uint8_t {
    CHAIN_TICK,  // a chain passed an iteration checkpoint
    NEW_BEST,    // a chain found a new best verified candidate
    JOB_DONE,    // a batch benchmark×setting job finished (batch mode only)
  };
  Kind kind = Kind::CHAIN_TICK;

  // CHAIN_TICK / NEW_BEST: which chain, where it is, what it has done.
  int chain = -1;
  uint64_t iter = 0;
  uint64_t proposals = 0;  // retired proposals so far (this chain)
  double perf = 0;         // NEW_BEST: relative perf of the new best
                           // (negative = better than source); JOB_DONE:
                           // absolute best_perf of the finished job

  // JOB_DONE: identity and stats delta of the finished batch job.
  std::string benchmark;
  std::string setting;
  bool improved = false;
  double wall_secs = 0;
  uint64_t cache_hits = 0;    // this job's cache-stats delta
  uint64_t cache_misses = 0;
  uint64_t solver_calls = 0;
};

using ProgressFn = std::function<void(const ProgressEvent&)>;

}  // namespace k2::core
