// Corpus-sharded batch compilation (the Table 1 sweep as one process): takes
// a set of corpus benchmarks (or all 19) × a set of parameter settings,
// shards the benchmark tasks across ONE shared work-stealing ThreadPool and
// ONE shared AsyncSolverDispatcher (instead of per-run pools), shares the
// sharded equivalence cache across jobs of the same benchmark, and emits a
// structured JSON report. This is what turns the single-program research
// harness into a many-workload compilation service: `k2c --corpus --report
// out.json` reproduces the paper's whole-corpus evaluation in one command.
//
// Sharding model (and why it is shaped this way):
//
//  * The unit of parallelism is the *benchmark task*. Jobs of the same
//    benchmark (one per parameter setting) run sequentially inside their
//    task in sweep order, each in CompileServices::sequential mode, sharing
//    that benchmark's EqCache — so setting #2 starts with every equivalence
//    verdict setting #1 already paid Z3 for (same source program, same
//    query keys). Benchmark tasks share nothing but the solver pool, so
//    work-stealing across them is contention-free.
//  * Chains inside a job do NOT parallelize (sequential mode); the batch
//    has benchmark×setting-level parallelism to saturate the pool instead.
//    This is what buys the determinism guarantee below.
//
// Determinism: with solver_workers == 0, a same-seed batch produces
// bit-identical results — per-benchmark best programs, per-job decisions,
// and every counter — regardless of BatchOptions::threads, the order
// benchmarks are listed in, or what else runs concurrently. (Each benchmark
// task is single-threaded and touches only its own suite/cache; cross-task
// state is read-only.) Wall-clock fields (*_secs) are exempt. With
// solver_workers > 0, chains speculate on verdict-arrival timing and the
// guarantee is traded for solver-pool throughput, exactly as in standalone
// async compiles. Enforced by tests/batch_compiler_test.cc.
//
// Thread-safety: a BatchCompiler instance is single-use and not itself
// thread-safe; run() blocks the calling thread until the whole batch
// completes (the caller's thread helps drain the pool). The report it
// returns is a plain value.
#pragma once

#include <string>
#include <vector>

#include "api/schema.h"
#include "core/compiler.h"
#include "util/json.h"

namespace k2::pipeline {
class ThreadPool;
}

namespace k2::core {

struct BatchOptions {
  // Corpus benchmarks to compile (Table 1 names). Empty = the whole corpus.
  // Unknown names make run() throw std::out_of_range before any job runs.
  std::vector<std::string> benchmarks;
  // Per-job template: goal, perf_model, iters_per_chain, num_chains, seed,
  // eq/safety budgets, max_insns... `base.solver_workers` sizes the one
  // shared dispatcher (0 = synchronous + deterministic). `base.threads` is
  // ignored — jobs are internally sequential; `threads` below is the knob.
  CompileOptions base;
  // Parameter-setting sweep: one job per benchmark×setting, where a job
  // runs `base` with settings = {sweep[i]}. Empty = one job per benchmark
  // using base.settings as-is.
  std::vector<SearchParams> sweep;
  // Width of the shared work-stealing pool the benchmark tasks shard over.
  int threads = 4;
};

// One benchmark×setting job (CompileResult plus report-level extras).
struct BatchJobResult {
  std::string setting;  // sweep entry name ("" for the base job)
  CompileResult result;
  int best_slots = 0;  // result.best.size_slots() (NOP-stripped)
};

struct BatchBenchmarkResult {
  std::string name, origin;
  int paper_o2 = 0, paper_k2 = 0;  // Table 1 reference numbers
  int src_slots = 0;               // -O2 source, NOPs included
  std::vector<BatchJobResult> jobs;  // sweep order
  // Winner across this benchmark's jobs (strictly best best_perf, first
  // job on ties — deterministic). best_job == -1 when nothing improved.
  int best_job = -1;
  bool improved = false;
  double src_perf = 0, best_perf = 0;
  int best_slots = 0;
  std::string best_asm;  // disassembly of the winning (or source) program
  std::string error;     // non-empty: the task failed and jobs is partial
  double wall_secs = 0;
};

// Batch-wide aggregates. Dispatcher-level counters (queue peak, timeouts,
// abandoned) live here and only here: the dispatcher is shared, so per-job
// CompileResults carry zeros for them (see CompileServices::dispatcher).
struct BatchTotals {
  uint64_t proposals = 0;
  uint64_t solver_calls = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t tests_executed = 0;
  uint64_t tests_skipped = 0;
  uint64_t early_exits = 0;
  uint64_t speculations = 0;
  uint64_t rollbacks = 0;
  uint64_t pending_joins = 0;
  uint64_t solver_queue_peak = 0;
  uint64_t solver_timeouts = 0;
  uint64_t solver_abandoned = 0;
  uint64_t jit_bailouts = 0;
  int64_t kernel_accepted = 0;
  int64_t kernel_rejected = 0;
  // Persistent-cache (disk tier) aggregates; all zero without a cache_dir.
  uint64_t disk_hits = 0;    // cache hits answered by store-seeded entries
  uint64_t disk_loaded = 0;  // entries seeded from disk across all caches
  uint64_t disk_writes = 0;  // verdicts written through to the store
};

// The structured report (--report out.json). to_json()/from_json() are
// inverses over everything to_json() writes — enforced round-trip by
// tests/batch_compiler_test.cc — so downstream tooling can re-read reports
// it finds on disk. from_json() restores metrics and the disassembly text,
// not executable ebpf::Program objects (programs travel as best_asm).
struct BatchReport {
  // The version every report stamps and from_json enforces; the constant
  // itself lives in the one schema-version header (src/api/schema.h).
  static constexpr const char* kSchema = api::kBatchReportSchema;

  std::string perf_model;  // sim::to_string of the backend used
  // Workload provenance: name and content fingerprint of the traffic
  // scenario every job of the batch priced under (CompileOptions::scenario;
  // "default" when none was requested).
  std::string scenario;
  std::string scenario_fingerprint;
  int threads = 1;
  uint64_t seed = 0;
  double wall_secs = 0;
  // True when the batch was stopped by BatchServices::cancel: benchmarks
  // that never ran (or were stopped mid-run) carry error == "cancelled" and
  // possibly partial job lists.
  bool cancelled = false;
  BatchTotals totals;
  std::vector<BatchBenchmarkResult> benchmarks;

  util::Json to_json() const;
  // Throws std::runtime_error naming the expected and found versions on a
  // schema mismatch (never best-effort parses another version), and on
  // missing or mistyped fields. Fields added to v1 after its first release
  // (cancelled, per-job solver counters) parse as optional with zero
  // defaults so older same-version reports keep parsing.
  static BatchReport from_json(const util::Json& j);
};

// CompileResult <-> JSON, shared by the batch report's per-job entries and
// the service layer's single-job CompileResponse so the two stay one
// schema. to_json()/from_json() are exact inverses over everything written
// (metrics and counters; programs are not serialized here — they travel as
// disassembly at the layer above).
util::Json compile_result_to_json(const CompileResult& r);
CompileResult compile_result_from_json(const util::Json& j);

// Externally-owned services a batch run plugs into — how the service layer
// (api::CompilerService) runs many batch jobs over ONE pool and ONE solver
// dispatcher. Null members are replaced by run-local instances, so a
// default-constructed BatchServices reproduces standalone run() exactly.
// Every non-null member must outlive the run() call.
struct BatchServices {
  // Shared work-stealing pool the benchmark tasks shard over; replaces the
  // run-local pool of BatchOptions::threads workers. run() still blocks its
  // caller (which lends a hand draining), so nesting inside a pool worker
  // is safe — the pool supports re-entrant run_all.
  pipeline::ThreadPool* pool = nullptr;
  // Shared async Z3 pool; replaces the run-local dispatcher sized by
  // base.solver_workers. Dispatcher-level counters in BatchTotals
  // (queue peak, timeouts, abandoned) are left at zero when external —
  // they aggregate across every sharing run and belong to the owner.
  verify::AsyncSolverDispatcher* dispatcher = nullptr;
  // Shared solver backend routing chain-level equivalence queries of every
  // job (verify/solver_backend.h); replaces the run-local backend built
  // from base.solver_endpoints. Final re-verification stays local either
  // way.
  verify::SolverBackend* backend = nullptr;
  // Shared persistent cache store, already opened by the owner; replaces
  // the run-local store built from base.cache_dir. Attached to every
  // per-benchmark cache (with that benchmark's options fingerprint).
  verify::CacheStore* store = nullptr;
  // Cooperative cancellation: checked before every benchmark job and
  // propagated into each compile (see CompileServices::cancel). Benchmarks
  // stopped or skipped record error == "cancelled".
  const std::atomic<bool>* cancel = nullptr;
  // Progress observation: per-chain CHAIN_TICK/NEW_BEST events from inside
  // jobs (tagged with benchmark/setting) plus one JOB_DONE per finished
  // benchmark×setting job carrying its stats delta and wall time. Must be
  // thread-safe; exempt from the determinism guarantee only in timing.
  ProgressFn progress;
  uint64_t tick_every = 1024;
  // Per-JOB (whole batch) resource budget shared by every benchmark×setting
  // compile of the run (see CompileServices::budget): once exhausted,
  // remaining compiles stop their search at the first checkpoint and finish
  // with budget_exhausted == true in their per-job results — the batch
  // itself still completes normally (not `cancelled`). Null = unlimited.
  JobBudget* budget = nullptr;
};

class BatchCompiler {
 public:
  explicit BatchCompiler(BatchOptions opts);

  // Runs the whole batch; blocks until every job finished (the calling
  // thread helps drain the pool). Single-use: call run() once. A failing
  // benchmark task (e.g. a Z3 exception) is recorded in its
  // BatchBenchmarkResult::error instead of aborting the batch.
  BatchReport run() { return run(BatchServices{}); }

  // Same, but plugging into externally-owned services (see BatchServices).
  BatchReport run(const BatchServices& svc);

 private:
  BatchOptions opts_;
  bool ran_ = false;
};

}  // namespace k2::core
