#include "core/proposals.h"

#include <algorithm>
#include <set>

namespace k2::core {

namespace {

using ebpf::AluOp;
using ebpf::Insn;
using ebpf::InsnClass;
using ebpf::JmpCond;
using ebpf::Opcode;

template <typename T>
const T& pick(const std::vector<T>& v, std::mt19937_64& rng) {
  return v[rng() % v.size()];
}

uint8_t random_reg(std::mt19937_64& rng, bool allow_r10) {
  return uint8_t(rng() % (allow_r10 ? 11 : 10));
}

int random_width_shift(std::mt19937_64& rng) { return int(rng() % 4); }

Opcode load_of_width(int shift) {
  static const Opcode ops[4] = {Opcode::LDXB, Opcode::LDXH, Opcode::LDXW,
                                Opcode::LDXDW};
  return ops[shift];
}
Opcode stx_of_width(int shift) {
  static const Opcode ops[4] = {Opcode::STXB, Opcode::STXH, Opcode::STXW,
                                Opcode::STXDW};
  return ops[shift];
}
Opcode st_of_width(int shift) {
  static const Opcode ops[4] = {Opcode::STB, Opcode::STH, Opcode::STW,
                                Opcode::STDW};
  return ops[shift];
}
int width_shift_of(Opcode op) {
  switch (ebpf::mem_width(op)) {
    case 1: return 0;
    case 2: return 1;
    case 4: return 2;
    default: return 3;
  }
}

}  // namespace

ProposalGen::ProposalGen(const ebpf::Program& src, const SearchParams& params,
                         const ProposalRules& rules,
                         std::optional<verify::WindowSpec> window)
    : params_(params), rules_(rules), window_(window) {
  std::set<int64_t> imms{0, 1, 2, 3, 4, 8, 14, 16, 32, 64, 255, -1};
  std::set<int16_t> offs{0, -4, -8, -16};
  for (const Insn& insn : src.insns) {
    ebpf::AluShape a;
    if ((ebpf::decompose_alu(insn.op, &a) && a.is_imm) ||
        ebpf::insn_class(insn.op) == InsnClass::ST ||
        insn.op == Opcode::LDDW)
      imms.insert(insn.imm);
    ebpf::JmpShape j;
    if (ebpf::decompose_jmp(insn.op, &j) && j.is_imm) imms.insert(insn.imm);
    if (ebpf::is_mem_access(insn.op)) offs.insert(insn.off);
  }
  imm_pool_.assign(imms.begin(), imms.end());
  off_pool_.assign(offs.begin(), offs.end());
}

int ProposalGen::random_position(const ebpf::Program& cur,
                                 std::mt19937_64& rng) const {
  int lo = window_ ? window_->start : 0;
  int hi = window_ ? window_->end : int(cur.insns.size());
  hi = std::min(hi, int(cur.insns.size()));
  if (hi <= lo) return -1;
  // Avoid mutating EXITs so candidates keep terminating paths; the search
  // wastes fewer iterations on structurally-invalid programs.
  for (int attempt = 0; attempt < 8; ++attempt) {
    int pos = lo + int(rng() % uint64_t(hi - lo));
    if (cur.insns[size_t(pos)].op != Opcode::EXIT) return pos;
  }
  return -1;
}

Insn ProposalGen::random_insn(const ebpf::Program& cur, int pos,
                              std::mt19937_64& rng) const {
  Insn insn;
  const int n = int(cur.insns.size());
  // Category weights: ALU 55%, memory 25%, jump 12% (full-program mode
  // only), NOP 8%.
  uint64_t r = rng() % 100;
  bool allow_jump = !window_.has_value();
  if (r < 55 || (!allow_jump && r < 67)) {
    AluOp op = static_cast<AluOp>(rng() % 12);
    bool is64 = (rng() % 4) != 0;
    bool is_imm = (rng() % 2) != 0;
    insn.op = ebpf::compose_alu(op, is64, is_imm);
    insn.dst = random_reg(rng, false);
    if (is_imm)
      insn.imm = pick(imm_pool_, rng);
    else
      insn.src = random_reg(rng, true);
  } else if (r < 80) {
    int shift = random_width_shift(rng);
    uint64_t kind = rng() % 4;
    insn.off = pick(off_pool_, rng);
    if (kind == 0) {
      insn.op = load_of_width(shift);
      insn.dst = random_reg(rng, false);
      insn.src = random_reg(rng, true);
    } else if (kind == 1) {
      insn.op = stx_of_width(shift);
      insn.dst = random_reg(rng, true);
      insn.src = random_reg(rng, false);
    } else if (kind == 2) {
      insn.op = st_of_width(shift);
      insn.dst = random_reg(rng, true);
      insn.imm = pick(imm_pool_, rng);
    } else {
      insn.op = (rng() % 2) ? Opcode::XADD64 : Opcode::XADD32;
      insn.dst = random_reg(rng, true);
      insn.src = random_reg(rng, false);
    }
  } else if (allow_jump && r < 92) {
    JmpCond cond = static_cast<JmpCond>(rng() % 11);
    bool is_imm = (rng() % 2) != 0;
    insn.op = ebpf::compose_jmp(cond, is_imm);
    insn.dst = random_reg(rng, false);
    if (is_imm)
      insn.imm = pick(imm_pool_, rng);
    else
      insn.src = random_reg(rng, false);
    int max_fwd = n - 2 - pos;
    insn.off = max_fwd > 0 ? int16_t(rng() % uint64_t(max_fwd + 1)) : 0;
  } else {
    insn.op = Opcode::NOP;
  }
  return insn;
}

ebpf::Program ProposalGen::propose(const ebpf::Program& cur,
                                   std::mt19937_64& rng,
                                   ebpf::InsnRange* touched) const {
  ebpf::Program next = cur;
  if (touched) *touched = ebpf::InsnRange{};
  int pos = random_position(cur, rng);
  if (pos < 0) return next;
  // Every rule below rewrites the slot at `pos`; rule 6 may extend to the
  // next slot and widens the range when it does.
  if (touched) *touched = ebpf::InsnRange{pos, pos + 1};
  Insn& insn = next.insns[size_t(pos)];

  // Pick a rule by the configured probabilities; disabled domain-specific
  // rules fold their mass into instruction replacement (Table 10 setup).
  double pr_me1 = rules_.mem_exchange1 ? params_.p_mem_exchange1 : 0;
  double pr_me2 = rules_.mem_exchange2 ? params_.p_mem_exchange2 : 0;
  double pr_cont = rules_.contiguous ? params_.p_contiguous : 0;
  double total = params_.p_insn_replace + params_.p_operand_replace +
                 params_.p_nop_replace + pr_me1 + pr_me2 + pr_cont;
  double x = std::uniform_real_distribution<double>(0, total)(rng);

  auto in_rule = [&x](double p) {
    if (x < p) return true;
    x -= p;
    return false;
  };

  if (in_rule(params_.p_insn_replace)) {  // rule 1
    insn = random_insn(next, pos, rng);
    return next;
  }
  if (in_rule(params_.p_operand_replace)) {  // rule 2
    ebpf::AluShape a;
    ebpf::JmpShape j;
    if (ebpf::decompose_alu(insn.op, &a)) {
      switch (rng() % 2) {
        case 0: insn.dst = random_reg(rng, false); break;
        default:
          if (a.is_imm)
            insn.imm = pick(imm_pool_, rng);
          else
            insn.src = random_reg(rng, true);
      }
    } else if (ebpf::decompose_jmp(insn.op, &j)) {
      switch (rng() % 3) {
        case 0: insn.dst = random_reg(rng, false); break;
        case 1:
          if (j.is_imm)
            insn.imm = pick(imm_pool_, rng);
          else
            insn.src = random_reg(rng, false);
          break;
        default: {
          int max_fwd = int(next.insns.size()) - 2 - pos;
          insn.off =
              max_fwd > 0 ? int16_t(rng() % uint64_t(max_fwd + 1)) : 0;
        }
      }
    } else if (ebpf::is_mem_access(insn.op)) {
      switch (rng() % 3) {
        case 0:
          if (ebpf::is_mem_load(insn.op))
            insn.dst = random_reg(rng, false);
          else if (ebpf::insn_class(insn.op) == InsnClass::ST)
            insn.imm = pick(imm_pool_, rng);
          else
            insn.src = random_reg(rng, false);
          break;
        case 1: insn.off = pick(off_pool_, rng); break;
        default:
          if (ebpf::is_mem_load(insn.op))
            insn.src = random_reg(rng, true);
          else
            insn.dst = random_reg(rng, true);
      }
    } else if (insn.op == Opcode::LDDW) {
      insn.imm = pick(imm_pool_, rng);
    } else {
      insn = random_insn(next, pos, rng);
    }
    return next;
  }
  if (in_rule(params_.p_nop_replace)) {  // rule 3
    insn = Insn{};
    return next;
  }
  if (in_rule(pr_me1)) {  // rule 4: new width + new value operand
    if (ebpf::is_mem_access(insn.op)) {
      int shift = random_width_shift(rng);
      if (ebpf::is_mem_load(insn.op)) {
        insn.op = load_of_width(shift);
        insn.dst = random_reg(rng, false);
      } else if (ebpf::insn_class(insn.op) == InsnClass::ST ||
                 (rng() % 2) == 0) {
        insn.op = st_of_width(shift);
        insn.imm = pick(imm_pool_, rng);
      } else {
        insn.op = stx_of_width(shift);
        insn.src = random_reg(rng, false);
      }
    } else {
      insn = random_insn(next, pos, rng);
    }
    return next;
  }
  if (in_rule(pr_me2)) {  // rule 5: new width only
    if (ebpf::is_mem_access(insn.op) &&
        ebpf::insn_class(insn.op) != InsnClass::XADD) {
      int shift = random_width_shift(rng);
      if (ebpf::is_mem_load(insn.op))
        insn.op = load_of_width(shift);
      else if (ebpf::insn_class(insn.op) == InsnClass::ST)
        insn.op = st_of_width(shift);
      else
        insn.op = stx_of_width(shift);
      (void)width_shift_of(insn.op);
    } else {
      insn = random_insn(next, pos, rng);
    }
    return next;
  }
  // rule 6: replace k = 2 contiguous instructions
  insn = random_insn(next, pos, rng);
  int hi = window_ ? std::min(window_->end, int(next.insns.size()))
                   : int(next.insns.size());
  if (pos + 1 < hi && next.insns[size_t(pos + 1)].op != Opcode::EXIT) {
    next.insns[size_t(pos + 1)] = random_insn(next, pos + 1, rng);
    if (touched) touched->end = pos + 2;
  }
  return next;
}

}  // namespace k2::core
