#include "core/batch_compiler.h"

#include <chrono>
#include <stdexcept>

#include "corpus/corpus.h"
#include "ebpf/assembler.h"
#include "pipeline/thread_pool.h"
#include "sim/perf_model.h"
#include "verify/cache_store.h"

namespace k2::core {

namespace {

using Clock = std::chrono::steady_clock;

// ---- JSON schema ----------------------------------------------------------
// to_json/from_json below are maintained as exact inverses; every field one
// writes, the other reads. The round-trip test in
// tests/batch_compiler_test.cc fails on any asymmetry.

util::Json job_to_json(const BatchJobResult& jr) {
  util::Json j;
  j.set("setting", jr.setting);
  j.set("best_slots", int64_t(jr.best_slots));
  const util::Json result = compile_result_to_json(jr.result);
  for (const auto& [key, value] : result.as_object()) j.set(key, value);
  return j;
}

BatchJobResult job_from_json(const util::Json& j) {
  BatchJobResult jr;
  jr.setting = j.at("setting").as_string();
  jr.best_slots = int(j.at("best_slots").as_int());
  jr.result = compile_result_from_json(j);
  return jr;
}

util::Json benchmark_to_json(const BatchBenchmarkResult& b) {
  util::Json j;
  j.set("name", b.name);
  j.set("origin", b.origin);
  j.set("paper_o2", int64_t(b.paper_o2));
  j.set("paper_k2", int64_t(b.paper_k2));
  j.set("src_slots", int64_t(b.src_slots));
  j.set("best_job", int64_t(b.best_job));
  j.set("improved", b.improved);
  j.set("src_perf", b.src_perf);
  j.set("best_perf", b.best_perf);
  j.set("best_slots", int64_t(b.best_slots));
  j.set("best_asm", b.best_asm);
  j.set("error", b.error);
  j.set("wall_secs", b.wall_secs);
  util::Json jobs;
  for (const BatchJobResult& jr : b.jobs) jobs.push_back(job_to_json(jr));
  if (b.jobs.empty()) jobs = util::Json(util::Json::Array{});
  j.set("jobs", std::move(jobs));
  return j;
}

BatchBenchmarkResult benchmark_from_json(const util::Json& j) {
  BatchBenchmarkResult b;
  b.name = j.at("name").as_string();
  b.origin = j.at("origin").as_string();
  b.paper_o2 = int(j.at("paper_o2").as_int());
  b.paper_k2 = int(j.at("paper_k2").as_int());
  b.src_slots = int(j.at("src_slots").as_int());
  b.best_job = int(j.at("best_job").as_int());
  b.improved = j.at("improved").as_bool();
  b.src_perf = j.at("src_perf").as_double();
  b.best_perf = j.at("best_perf").as_double();
  b.best_slots = int(j.at("best_slots").as_int());
  b.best_asm = j.at("best_asm").as_string();
  b.error = j.at("error").as_string();
  b.wall_secs = j.at("wall_secs").as_double();
  for (const util::Json& jj : j.at("jobs").as_array())
    b.jobs.push_back(job_from_json(jj));
  return b;
}

util::Json totals_to_json(const BatchTotals& t) {
  util::Json j;
  j.set("proposals", t.proposals);
  j.set("solver_calls", t.solver_calls);
  j.set("cache_hits", t.cache_hits);
  j.set("cache_misses", t.cache_misses);
  j.set("tests_executed", t.tests_executed);
  j.set("tests_skipped", t.tests_skipped);
  j.set("early_exits", t.early_exits);
  j.set("speculations", t.speculations);
  j.set("rollbacks", t.rollbacks);
  j.set("pending_joins", t.pending_joins);
  j.set("solver_queue_peak", t.solver_queue_peak);
  j.set("solver_timeouts", t.solver_timeouts);
  j.set("solver_abandoned", t.solver_abandoned);
  j.set("jit_bailouts", t.jit_bailouts);
  j.set("kernel_accepted", t.kernel_accepted);
  j.set("kernel_rejected", t.kernel_rejected);
  j.set("disk_hits", t.disk_hits);
  j.set("disk_loaded", t.disk_loaded);
  j.set("disk_writes", t.disk_writes);
  return j;
}

BatchTotals totals_from_json(const util::Json& j) {
  BatchTotals t;
  t.proposals = j.at("proposals").as_uint();
  t.solver_calls = j.at("solver_calls").as_uint();
  t.cache_hits = j.at("cache_hits").as_uint();
  t.cache_misses = j.at("cache_misses").as_uint();
  t.tests_executed = j.at("tests_executed").as_uint();
  t.tests_skipped = j.at("tests_skipped").as_uint();
  t.early_exits = j.at("early_exits").as_uint();
  t.speculations = j.at("speculations").as_uint();
  t.rollbacks = j.at("rollbacks").as_uint();
  t.pending_joins = j.at("pending_joins").as_uint();
  t.solver_queue_peak = j.at("solver_queue_peak").as_uint();
  t.solver_timeouts = j.at("solver_timeouts").as_uint();
  t.solver_abandoned = j.at("solver_abandoned").as_uint();
  if (const util::Json* v = j.get("jit_bailouts"))
    t.jit_bailouts = v->as_uint();
  t.kernel_accepted = j.at("kernel_accepted").as_int();
  t.kernel_rejected = j.at("kernel_rejected").as_int();
  if (const util::Json* v = j.get("disk_hits")) t.disk_hits = v->as_uint();
  if (const util::Json* v = j.get("disk_loaded")) t.disk_loaded = v->as_uint();
  if (const util::Json* v = j.get("disk_writes")) t.disk_writes = v->as_uint();
  return t;
}

}  // namespace

util::Json compile_result_to_json(const CompileResult& r) {
  util::Json j;
  j.set("improved", r.improved);
  j.set("cancelled", r.cancelled);
  j.set("budget_exhausted", r.budget_exhausted);
  j.set("src_perf", r.src_perf);
  j.set("best_perf", r.best_perf);
  j.set("iters_to_best", r.iters_to_best);
  j.set("secs_to_best", r.secs_to_best);
  j.set("wall_secs", r.total_secs);
  j.set("final_tests", uint64_t(r.final_tests));
  j.set("proposals", r.total_proposals);
  j.set("solver_calls", r.solver_calls);
  util::Json cache;
  cache.set("hits", r.cache.hits);
  cache.set("misses", r.cache.misses);
  cache.set("insertions", r.cache.insertions);
  cache.set("collisions", r.cache.collisions);
  cache.set("pending_joins", r.cache.pending_joins);
  cache.set("pending_abandons", r.cache.pending_abandons);
  cache.set("disk_hits", r.cache.disk_hits);
  cache.set("disk_loaded", r.cache.disk_loaded);
  cache.set("disk_writes", r.cache.disk_writes);
  j.set("cache", std::move(cache));
  j.set("early_exits", r.early_exits);
  j.set("tests_executed", r.tests_executed);
  j.set("tests_skipped", r.tests_skipped);
  j.set("speculations", r.speculations);
  j.set("pending_joins", r.pending_joins);
  j.set("rollbacks", r.rollbacks);
  j.set("discarded_proposals", r.discarded_proposals);
  j.set("solver_queue_peak", r.solver_queue_peak);
  j.set("solver_timeouts", r.solver_timeouts);
  j.set("solver_abandoned", r.solver_abandoned);
  j.set("jit_bailouts", r.jit_bailouts);
  j.set("kernel_accepted", int64_t(r.kernel_accepted));
  j.set("kernel_rejected", int64_t(r.kernel_rejected));
  j.set("scenario", r.scenario);
  j.set("scenario_fingerprint", r.scenario_fingerprint);
  return j;
}

// Fields added to the schema after its first release parse as optional
// with their zero defaults, so reports written by older builds that stamp
// the same version keep parsing (additive evolution); to_json always
// writes them, so round-trips stay exact.
CompileResult compile_result_from_json(const util::Json& j) {
  CompileResult r;
  r.improved = j.at("improved").as_bool();
  if (const util::Json* c = j.get("cancelled")) r.cancelled = c->as_bool();
  if (const util::Json* b = j.get("budget_exhausted"))
    r.budget_exhausted = b->as_bool();
  r.src_perf = j.at("src_perf").as_double();
  r.best_perf = j.at("best_perf").as_double();
  r.iters_to_best = j.at("iters_to_best").as_uint();
  r.secs_to_best = j.at("secs_to_best").as_double();
  r.total_secs = j.at("wall_secs").as_double();
  r.final_tests = size_t(j.at("final_tests").as_uint());
  r.total_proposals = j.at("proposals").as_uint();
  r.solver_calls = j.at("solver_calls").as_uint();
  const util::Json& cache = j.at("cache");
  r.cache.hits = cache.at("hits").as_uint();
  r.cache.misses = cache.at("misses").as_uint();
  r.cache.insertions = cache.at("insertions").as_uint();
  r.cache.collisions = cache.at("collisions").as_uint();
  r.cache.pending_joins = cache.at("pending_joins").as_uint();
  r.cache.pending_abandons = cache.at("pending_abandons").as_uint();
  if (const util::Json* v = cache.get("disk_hits"))
    r.cache.disk_hits = v->as_uint();
  if (const util::Json* v = cache.get("disk_loaded"))
    r.cache.disk_loaded = v->as_uint();
  if (const util::Json* v = cache.get("disk_writes"))
    r.cache.disk_writes = v->as_uint();
  r.early_exits = j.at("early_exits").as_uint();
  r.tests_executed = j.at("tests_executed").as_uint();
  r.tests_skipped = j.at("tests_skipped").as_uint();
  r.speculations = j.at("speculations").as_uint();
  r.pending_joins = j.at("pending_joins").as_uint();
  r.rollbacks = j.at("rollbacks").as_uint();
  r.discarded_proposals = j.at("discarded_proposals").as_uint();
  if (const util::Json* v = j.get("solver_queue_peak"))
    r.solver_queue_peak = v->as_uint();
  if (const util::Json* v = j.get("solver_timeouts"))
    r.solver_timeouts = v->as_uint();
  if (const util::Json* v = j.get("solver_abandoned"))
    r.solver_abandoned = v->as_uint();
  if (const util::Json* v = j.get("jit_bailouts"))
    r.jit_bailouts = v->as_uint();
  r.kernel_accepted = int(j.at("kernel_accepted").as_int());
  r.kernel_rejected = int(j.at("kernel_rejected").as_int());
  if (const util::Json* v = j.get("scenario")) r.scenario = v->as_string();
  if (const util::Json* v = j.get("scenario_fingerprint"))
    r.scenario_fingerprint = v->as_string();
  return r;
}

util::Json BatchReport::to_json() const {
  util::Json j;
  j.set("schema", kSchema);
  j.set("perf_model", perf_model);
  j.set("scenario", scenario);
  j.set("scenario_fingerprint", scenario_fingerprint);
  j.set("threads", int64_t(threads));
  j.set("seed", seed);
  j.set("wall_secs", wall_secs);
  j.set("cancelled", cancelled);
  j.set("totals", totals_to_json(totals));
  util::Json bs;
  for (const BatchBenchmarkResult& b : benchmarks)
    bs.push_back(benchmark_to_json(b));
  if (benchmarks.empty()) bs = util::Json(util::Json::Array{});
  j.set("benchmarks", std::move(bs));
  return j;
}

BatchReport BatchReport::from_json(const util::Json& j) {
  if (j.at("schema").as_string() != kSchema)
    throw std::runtime_error("BatchReport: schema version mismatch: found '" +
                             j.at("schema").as_string() + "', this build " +
                             "reads only '" + std::string(kSchema) + "'");
  BatchReport r;
  r.perf_model = j.at("perf_model").as_string();
  if (const util::Json* v = j.get("scenario")) r.scenario = v->as_string();
  if (const util::Json* v = j.get("scenario_fingerprint"))
    r.scenario_fingerprint = v->as_string();
  r.threads = int(j.at("threads").as_int());
  r.seed = j.at("seed").as_uint();
  r.wall_secs = j.at("wall_secs").as_double();
  if (const util::Json* c = j.get("cancelled")) r.cancelled = c->as_bool();
  r.totals = totals_from_json(j.at("totals"));
  for (const util::Json& b : j.at("benchmarks").as_array())
    r.benchmarks.push_back(benchmark_from_json(b));
  return r;
}

BatchCompiler::BatchCompiler(BatchOptions opts) : opts_(std::move(opts)) {}

BatchReport BatchCompiler::run(const BatchServices& bsvc) {
  if (ran_) throw std::logic_error("BatchCompiler::run() is single-use");
  ran_ = true;
  auto t0 = Clock::now();

  auto is_cancelled = [&bsvc]() {
    return bsvc.cancel && bsvc.cancel->load(std::memory_order_relaxed);
  };

  // Resolve every benchmark up front so an unknown name fails fast, before
  // any solver time is spent.
  std::vector<const corpus::Benchmark*> selected;
  if (opts_.benchmarks.empty()) {
    for (const corpus::Benchmark& b : corpus::all_benchmarks())
      selected.push_back(&b);
  } else {
    for (const std::string& name : opts_.benchmarks)
      selected.push_back(&corpus::benchmark(name));  // throws out_of_range
  }

  BatchReport report;
  report.threads = std::max(1, opts_.threads);
  report.seed = opts_.base.seed;
  report.perf_model = sim::to_string(resolved_perf_model(opts_.base));
  opts_.base.scenario.validate_or_throw();  // fail fast, before any job
  report.scenario = opts_.base.scenario.name;
  report.scenario_fingerprint = opts_.base.scenario.fingerprint();
  report.benchmarks.resize(selected.size());

  // Persistent cache store: ONE store shared by every per-benchmark cache
  // (records from different benchmarks never share a key; the options
  // fingerprint additionally pins each record to the window-mode resolution
  // of the benchmark that produced it). Declared before the dispatcher so
  // write-through appends from late-publishing workers cannot dangle.
  std::optional<verify::CacheStore> local_store;
  verify::CacheStore* store = bsvc.store;
  if (!store && !opts_.base.cache_dir.empty()) {
    local_store.emplace();
    std::string err;
    if (!local_store->open(opts_.base.cache_dir, &err))
      throw std::runtime_error("cache_dir '" + opts_.base.cache_dir +
                               "': " + err);
    store = &*local_store;
  }

  // Remote solver backend: ONE connection set shared by every job, so the
  // per-endpoint sockets are dialed once per batch, not once per job.
  std::optional<verify::RemoteSolverBackend> local_backend;
  verify::SolverBackend* backend = bsvc.backend;
  if (!backend && !opts_.base.solver_endpoints.empty()) {
    verify::RemoteSolverBackend::Options bo;
    bo.endpoints = opts_.base.solver_endpoints;
    bo.portfolio = std::max(1, opts_.base.portfolio);
    local_backend.emplace(bo);
    backend = &*local_backend;
  }

  // The two shared services — run-local unless the caller injected its own
  // (BatchServices): one Z3 worker pool for the whole batch, one
  // equivalence cache per benchmark (jobs of a benchmark share source
  // program and therefore query keys; different benchmarks never collide
  // usefully, and separate caches keep benchmark tasks contention-free).
  std::optional<verify::AsyncSolverDispatcher> local_dispatcher;
  if (!bsvc.dispatcher)
    local_dispatcher.emplace(std::max(0, opts_.base.solver_workers));
  verify::AsyncSolverDispatcher& dispatcher =
      bsvc.dispatcher ? *bsvc.dispatcher : *local_dispatcher;
  std::vector<std::unique_ptr<verify::EqCache>> caches;
  for (size_t i = 0; i < selected.size(); ++i) {
    caches.push_back(std::make_unique<verify::EqCache>());
    if (store) {
      // The fingerprint binds persisted verdicts to the encoder options AND
      // the window-mode resolution — the same rule compile() applies.
      bool uw = opts_.base.force_windows
                    ? *opts_.base.force_windows
                    : selected[i]->o2.num_real_insns() >
                          opts_.base.window_threshold;
      caches.back()->attach_store(
          store, verify::CacheStore::options_fingerprint(opts_.base.eq, uw));
    }
  }

  auto run_benchmark = [&](size_t bi) {
    auto bt0 = Clock::now();
    const corpus::Benchmark& b = *selected[bi];
    BatchBenchmarkResult& out = report.benchmarks[bi];
    out.name = b.name;
    out.origin = b.origin;
    out.paper_o2 = b.paper_o2;
    out.paper_k2 = b.paper_k2;
    out.src_slots = b.o2.size_slots();
    try {
      size_t njobs = opts_.sweep.empty() ? 1 : opts_.sweep.size();
      for (size_t ji = 0; ji < njobs; ++ji) {
        if (is_cancelled()) {
          out.error = "cancelled";
          break;
        }
        CompileOptions o = opts_.base;
        BatchJobResult jr;
        if (!opts_.sweep.empty()) {
          o.settings = {opts_.sweep[ji]};
          jr.setting = opts_.sweep[ji].name;
        }
        CompileServices svc;
        svc.dispatcher = &dispatcher;
        svc.cache = caches[bi].get();
        svc.backend = backend;
        svc.sequential = true;
        svc.cancel = bsvc.cancel;
        svc.tick_every = bsvc.tick_every;
        svc.budget = bsvc.budget;
        if (bsvc.progress) {
          // Tag chain-level events with the job they belong to.
          svc.progress = [&bsvc, &b, &jr](const ProgressEvent& e) {
            ProgressEvent tagged = e;
            tagged.benchmark = b.name;
            tagged.setting = jr.setting;
            bsvc.progress(tagged);
          };
        }
        jr.result = compile(b.o2, o, svc);
        jr.best_slots = jr.result.best.size_slots();
        bool job_cancelled = jr.result.cancelled;
        if (bsvc.progress && !job_cancelled) {
          ProgressEvent done;
          done.kind = ProgressEvent::Kind::JOB_DONE;
          done.benchmark = b.name;
          done.setting = jr.setting;
          done.improved = jr.result.improved;
          done.perf = jr.result.best_perf;
          done.wall_secs = jr.result.total_secs;
          done.cache_hits = jr.result.cache.hits;
          done.cache_misses = jr.result.cache.misses;
          done.solver_calls = jr.result.solver_calls;
          bsvc.progress(done);
        }
        out.jobs.push_back(std::move(jr));
        if (job_cancelled) {
          out.error = "cancelled";
          break;
        }
      }
    } catch (const std::exception& e) {
      out.error = e.what();
    }
    // Winner across jobs: strictly better best_perf, first job on ties —
    // a deterministic pick for a deterministic report.
    if (!out.jobs.empty()) {
      out.src_perf = out.jobs.front().result.src_perf;
      out.best_perf = out.src_perf;
      out.best_slots = out.jobs.front().result.best.size_slots();
      const ebpf::Program* best_prog = nullptr;
      for (size_t ji = 0; ji < out.jobs.size(); ++ji) {
        const CompileResult& r = out.jobs[ji].result;
        if (r.improved && r.best_perf < out.best_perf) {
          out.best_job = int(ji);
          out.best_perf = r.best_perf;
          out.best_slots = out.jobs[ji].best_slots;
          out.improved = true;
          best_prog = &r.best;
        }
      }
      out.best_asm = ebpf::disassemble(best_prog ? *best_prog
                                                 : out.jobs[0].result.best);
    }
    out.wall_secs = std::chrono::duration<double>(Clock::now() - bt0).count();
  };

  // Shard the benchmark tasks over the one shared pool (run-local unless
  // injected). run_all's caller helps drain, so threads=1 still gets the
  // driver thread working, and calling from inside a pool worker (the
  // service layer's batch jobs) cannot deadlock.
  {
    std::optional<pipeline::ThreadPool> local_pool;
    if (!bsvc.pool) local_pool.emplace(report.threads);
    pipeline::ThreadPool& pool = bsvc.pool ? *bsvc.pool : *local_pool;
    if (bsvc.pool) report.threads = pool.size();
    std::vector<std::function<void()>> tasks;
    for (size_t bi = 0; bi < selected.size(); ++bi)
      tasks.push_back([&run_benchmark, bi]() { run_benchmark(bi); });
    pool.run_all(std::move(tasks));
  }

  // Aggregate. Per-job CompileResults carry zeros for the dispatcher-level
  // counters (shared dispatcher — see CompileServices), so the batch-wide
  // dispatcher stats are read once here.
  for (const BatchBenchmarkResult& b : report.benchmarks) {
    for (const BatchJobResult& jr : b.jobs) {
      const CompileResult& r = jr.result;
      report.totals.proposals += r.total_proposals;
      report.totals.solver_calls += r.solver_calls;
      report.totals.cache_hits += r.cache.hits;
      report.totals.cache_misses += r.cache.misses;
      report.totals.tests_executed += r.tests_executed;
      report.totals.tests_skipped += r.tests_skipped;
      report.totals.early_exits += r.early_exits;
      report.totals.speculations += r.speculations;
      report.totals.rollbacks += r.rollbacks;
      report.totals.pending_joins += r.pending_joins;
      report.totals.jit_bailouts += r.jit_bailouts;
      report.totals.kernel_accepted += r.kernel_accepted;
      report.totals.kernel_rejected += r.kernel_rejected;
      report.totals.disk_hits += r.cache.disk_hits;
      report.totals.disk_writes += r.cache.disk_writes;
    }
  }
  // disk_loaded is counted at attach time — before any job's delta window
  // opens — so it is read from the caches, not summed over jobs.
  for (const auto& c : caches)
    report.totals.disk_loaded += c->stats().disk_loaded;
  // Settle every still-queued solver task (cancelled speculations included)
  // while the per-benchmark caches — and the batch-local store/backend —
  // are still alive. Unconditional: with a shared dispatcher a queued task
  // holding pointers into this run must not outlive it.
  dispatcher.drain();
  if (!bsvc.dispatcher) {
    // Dispatcher-level counters are per-batch only when the dispatcher is
    // run-local; a shared one aggregates across every sharing run and is
    // reported by its owner (see BatchServices).
    verify::AsyncSolverDispatcher::Stats ds = dispatcher.stats();
    report.totals.solver_queue_peak = ds.queue_peak;
    report.totals.solver_timeouts = ds.timeouts;
    report.totals.solver_abandoned = ds.abandoned;
  }

  report.cancelled = is_cancelled();
  report.wall_secs = std::chrono::duration<double>(Clock::now() - t0).count();
  return report;
}

}  // namespace k2::core
