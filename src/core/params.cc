#include "core/params.h"

namespace k2::core {

std::vector<SearchParams> table8_settings() {
  // Columns of Table 8 (settings 1..5).
  std::vector<SearchParams> out(5);
  out[0].diff = SearchParams::Diff::ABS;
  out[0].avg_by_tests = false;
  out[0].alpha = 0.5;
  out[0].beta = 5;
  out[0].p_insn_replace = 0.2;
  out[0].p_operand_replace = 0.4;
  out[0].p_nop_replace = 0.15;
  out[0].p_mem_exchange1 = 0.2;
  out[0].p_mem_exchange2 = 0.0;
  out[0].p_contiguous = 0.05;
  out[0].name = "set1";

  out[1].diff = SearchParams::Diff::POP;
  out[1].avg_by_tests = false;
  out[1].alpha = 0.5;
  out[1].beta = 5;
  out[1].p_insn_replace = 0.17;
  out[1].p_operand_replace = 0.33;
  out[1].p_nop_replace = 0.15;
  out[1].p_mem_exchange1 = 0.17;
  out[1].p_mem_exchange2 = 0.0;
  out[1].p_contiguous = 0.18;
  out[1].name = "set2";

  out[2] = out[0];
  out[2].diff = SearchParams::Diff::POP;
  out[2].name = "set3";

  out[3] = out[1];
  out[3].diff = SearchParams::Diff::ABS;
  out[3].p_mem_exchange1 = 0.0;
  out[3].p_mem_exchange2 = 0.17;
  out[3].name = "set4";

  out[4] = out[3];
  out[4].avg_by_tests = true;
  out[4].beta = 1.5;
  out[4].name = "set5";
  return out;
}

std::vector<SearchParams> default_settings() {
  std::vector<SearchParams> out = table8_settings();
  // Expand with the remaining error-cost variants (diff × avg × counted)
  // over the two probability profiles, yielding 16 total.
  const SearchParams profA = out[0];
  const SearchParams profB = out[1];
  int idx = int(out.size()) + 1;
  for (const SearchParams& base : {profA, profB}) {
    for (int diff = 0; diff < 2; ++diff) {
      for (int avg = 0; avg < 2; ++avg) {
        for (int counted = 0; counted < 2; ++counted) {
          if (int(out.size()) >= 16) break;
          SearchParams s = base;
          s.diff = diff ? SearchParams::Diff::POP : SearchParams::Diff::ABS;
          s.avg_by_tests = avg != 0;
          s.count_passed = counted != 0;
          // Skip exact duplicates of the Table 8 five.
          bool dup = false;
          for (const auto& e : out)
            if (e.diff == s.diff && e.avg_by_tests == s.avg_by_tests &&
                e.count_passed == s.count_passed &&
                e.p_contiguous == s.p_contiguous && e.beta == s.beta)
              dup = true;
          if (dup) continue;
          s.name = "set" + std::to_string(idx++);
          out.push_back(s);
        }
      }
    }
  }
  return out;
}

}  // namespace k2::core
