// Cost function over candidate programs (§3.2):
//   f(p) = α·err(p) + β·perf(p) + γ·safe(p)
// err combines test-case output distances with the formal equivalence
// verdict; perf is either instruction count or the static latency estimate;
// safe is 0 / ERR_MAX.
#pragma once

#include <deque>
#include <mutex>
#include <vector>

#include "core/params.h"
#include "ebpf/program.h"
#include "interp/interpreter.h"

namespace k2::core {

enum class Goal : uint8_t {
  INST_COUNT,  // perf_inst: program size in wire slots
  LATENCY,     // perf_lat: Σ exec(i) over the program's opcodes
};

// The shared, growing test suite (§3, Fig. 1): counterexamples from the
// equivalence checker and the safety checker are appended during search.
// Source-program outputs are computed once per test and cached.
class TestSuite {
 public:
  TestSuite(const ebpf::Program& src, std::vector<interp::InputSpec> tests);

  // Appends a test (no-op for duplicates); thread-safe.
  void add(const interp::InputSpec& test);

  // Snapshot accessors (tests are append-only; indexes remain valid).
  size_t size() const;
  // Runs `cand` on test i and returns the paper's diff(o_synth, o_src)
  // distance (0 when outputs match). Faults map to a large penalty.
  double diff_on(size_t i, const interp::RunResult& cand_result,
                 SearchParams::Diff kind) const;
  const interp::InputSpec& test(size_t i) const;

  const ebpf::Program& src() const { return src_; }

  static constexpr double kFaultPenalty = 4096.0;

 private:
  ebpf::Program src_;
  mutable std::mutex mu_;
  // Deques, not vectors: the suite is append-only and grows concurrently
  // with readers, so element references handed out by test() must survive
  // other threads' add() calls.
  std::deque<interp::InputSpec> tests_;
  std::deque<interp::RunResult> src_out_;
};

// Performance cost of `p` relative to `src` under the goal (§3.2: number of
// extra instructions / extra estimated nanoseconds; negative = better).
double perf_cost(Goal goal, const ebpf::Program& p, const ebpf::Program& src);

// Error cost from test execution (equation 1, minus the `unequal` term which
// the search adds after consulting the equivalence checker).
struct TestEval {
  double diff_sum = 0;     // Σ diff over tests
  int failed = 0;
  int passed = 0;
  bool all_passed = false;
};
TestEval run_tests(const TestSuite& suite, const ebpf::Program& cand,
                   SearchParams::Diff kind);

double error_cost(const SearchParams& params, const TestEval& ev,
                  bool unequal);

}  // namespace k2::core
