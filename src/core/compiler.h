// The K2 compiler driver (§8 setup): parallel Markov chains over the
// parameter settings, shared test suite + equivalence cache, top-k
// selection, final whole-program re-verification, and the kernel-checker
// post-processing pass (§6).
#pragma once

#include <atomic>
#include <optional>

#include "core/mcmc.h"
#include "core/progress.h"
#include "jit/exec_backend.h"
#include "kernel/kernel_checker.h"
#include "scenario/scenario.h"

namespace k2::sim {
enum class PerfModelKind : uint8_t;
}

namespace k2::pipeline {
class ThreadPool;
}

namespace k2::core {

struct CompileOptions {
  Goal goal = Goal::INST_COUNT;
  std::vector<SearchParams> settings;  // defaults to default_settings()
  int num_chains = 4;                  // paper uses 16 (one per setting)
  uint64_t iters_per_chain = 10'000;
  int top_k = 1;
  int num_initial_tests = 24;
  uint64_t seed = 0x6b32;  // "k2"
  // Window-based search for programs above this many instructions; set
  // force_windows to override (Table 4's optimization IV ablation).
  int window_threshold = 40;
  std::optional<bool> force_windows;
  ProposalRules rules;
  verify::EqOptions eq;
  safety::SafetyOptions safety;
  // Interpreter step budget per candidate test execution
  // (RunOptions::max_insns; k2c --max-insns=N). Applies to candidate
  // evaluation; the suite's cached source outputs use the interpreter
  // default so a budget change cannot silently redefine expected outputs.
  uint64_t max_insns = 1u << 20;
  // Execution engine for candidate test runs (jit/exec_backend.h; k2c
  // --exec-backend=fast|jit). The JIT is decision-neutral: bit-identical
  // RunResults, so same-seed compiles pick the same winners either way.
  // Programs the JIT cannot translate fall back per-program to the fast
  // interpreter (counted in CompileResult::jit_bailouts).
  jit::ExecBackend exec_backend = jit::ExecBackend::FAST_INTERP;
  int threads = 4;
  // Evaluation-pipeline knobs, forwarded to every chain (see ChainConfig).
  bool reorder_tests = true;
  bool early_exit = true;
  // Async solver dispatch (ISSUE 2): number of dedicated Z3 worker threads
  // shared by all chains. 0 = synchronous equivalence checking, bit-identical
  // to PR 1. With workers, chains speculate past in-flight verdicts under a
  // bounded undo-log (speculation_depth frames per chain; see core/mcmc.h).
  int solver_workers = 0;
  int speculation_depth = 4;
  // Performance-model backend for the cost stage (sim/perf_model.h). Unset
  // derives the backend from `goal` — INST_COUNT for Goal::INST_COUNT,
  // STATIC_LATENCY for Goal::LATENCY — which is bit-identical to the
  // pre-backend perf_cost path. PerfModelKind::TRACE_LATENCY selects the
  // interpreter-traced workload estimator (k2c --perf-model=latency) and
  // should be paired with Goal::LATENCY.
  std::optional<sim::PerfModelKind> perf_model;
  // Traffic scenario for the TRACE_LATENCY cost stage (src/scenario; k2c
  // --scenario=<name|file>, CompileRequest.scenario). The scenario is
  // expanded into the trace workload the estimator prices candidates
  // against; the initial *test suite* (generate_tests) always uses the
  // default scenario so correctness testing and equivalence outcomes stay
  // scenario-independent — a scenario steers which candidate wins, never
  // what counts as equivalent. The default-constructed value (the `default`
  // catalog scenario) is bit-identical to the legacy make_workload mix, so
  // leaving this untouched preserves pre-scenario behavior exactly.
  scenario::Scenario scenario = scenario::default_scenario();
  // Persistent equivalence-cache directory (k2c --cache-dir). Non-empty:
  // settled verdicts are loaded from disk at start and written through on
  // every solve, so a repeated identical run warm-starts with zero Z3
  // queries for already-settled pairs. Ignored when CompileServices::cache
  // is external — the cache's owner decides whether/where it persists.
  // A store that fails to open is an error (compile() throws): an explicit
  // cache request silently falling back to cold solving would be the worst
  // of both worlds.
  std::string cache_dir;
  // Remote solver farm (k2c --solver-endpoints): unix-socket paths (or
  // "fd:N" for tests) of k2-solve/v1 workers. Empty = all equivalence
  // queries solve in-process, bit-identical to earlier PRs. Ignored when
  // CompileServices::backend is external.
  std::vector<std::string> solver_endpoints;
  // Portfolio width for the remote backend: race each query on up to this
  // many endpoints with varied Z3 tactic configs; first definitive verdict
  // wins. > 1 trades run-to-run determinism for latency.
  int portfolio = 1;
};

// Externally-owned services a compile run plugs into instead of building
// its own — how core::BatchCompiler shares one solver pool and one
// per-benchmark equivalence cache across many benchmark×setting jobs.
// Null members are replaced by run-local instances, so a
// default-constructed CompileServices reproduces the standalone
// compile(src, opts) behavior exactly.
//
// Lifetime: every non-null service must outlive the compile() call; the
// dispatcher must outlive every in-flight query it was handed (it joins its
// workers on destruction).
struct CompileServices {
  // Shared async Z3 pool. When external, the dispatcher-level counters
  // (CompileResult::solver_queue_peak/solver_timeouts/solver_abandoned)
  // are left at zero — they aggregate across every sharing run and are
  // reported batch-wide by the owner instead.
  verify::AsyncSolverDispatcher* dispatcher = nullptr;
  // Shared equivalence-outcome cache. CompileResult::cache reports this
  // run's delta (stats-after minus stats-before), so sharing runs that
  // execute sequentially still get exact per-run numbers.
  verify::EqCache* cache = nullptr;
  // Shared solver backend (verify/solver_backend.h) routing chain-level
  // equivalence queries, e.g. one RemoteSolverBackend over a solver farm.
  // Null + empty opts.solver_endpoints = in-process solve_query_local.
  // Final re-verification always solves locally regardless — remote
  // workers are untrusted accelerators, not part of the trust anchor.
  verify::SolverBackend* backend = nullptr;
  // Shared persistent cache store already opened by the owner. When set it
  // is attached to the run-local cache (no-op if `cache` is also external —
  // the external cache's owner attaches stores itself). Overrides
  // opts.cache_dir.
  verify::CacheStore* store = nullptr;
  // Shared work-stealing pool for parallel-mode chain execution and final
  // re-verification, replacing the run-local pool of `opts.threads`
  // workers — so a service hosting many jobs keeps ONE pool process-wide
  // instead of nesting pools. Ignored in sequential mode. run_all is
  // re-entrant, so a compile() running *on* a worker of this pool is safe.
  pipeline::ThreadPool* pool = nullptr;
  // Deterministic single-threaded mode: chains run in index order on the
  // calling thread and final re-verification runs inline (no thread pool is
  // created), so a same-seed run produces bit-identical decisions, programs
  // and counters on every invocation — regardless of how many such runs
  // execute concurrently on other threads. This is what makes batch results
  // reproducible across shard orders and --threads values; the trade is
  // that one run no longer parallelizes internally (the batch layer shards
  // *across* runs instead). Wall-clock fields (total_secs, secs_to_best)
  // are exempt from the determinism guarantee. Requires solver_workers ==
  // 0 for full determinism: speculative async verdict timing is inherently
  // scheduling-dependent.
  bool sequential = false;
  // Cooperative cancellation (api::CompilerService::cancel). Non-null: the
  // run checks the flag at chain-iteration checkpoints, before each
  // candidate evaluation, and between final-verification candidates; once
  // set, chains stop within one iteration, in-flight speculative solver
  // queries are released, and compile() returns a partial CompileResult
  // with `cancelled == true` (best-so-far NOT re-verified — callers must
  // treat a cancelled result as unverified). Checking the flag consumes no
  // randomness, so an unset flag leaves results bit-identical.
  const std::atomic<bool>* cancel = nullptr;
  // Progress observation (core/progress.h): CHAIN_TICK every `tick_every`
  // chain iterations plus NEW_BEST on best-candidate improvements. Must be
  // thread-safe (chains run concurrently unless `sequential`) and is exempt
  // from the determinism guarantee only in its own invocation timing —
  // attaching it never changes search results. Empty = no events.
  ProgressFn progress;
  uint64_t tick_every = 1024;
  // Per-job resource budget (core/progress.h), armed by the owner before
  // the run. Exhaustion stops the search like `cancel` — chains halt within
  // one iteration checkpoint — but UNLIKE cancel the final whole-program
  // re-verification of candidates found so far still runs, so the result is
  // verified and truthful: the job finishes normally (not `cancelled`) with
  // CompileResult::budget_exhausted == true. One budget may be shared
  // across every compile of a batch run (the caps are job-wide totals).
  // Null = unlimited.
  JobBudget* budget = nullptr;
};

struct CompileResult {
  ebpf::Program best;          // NOP-stripped; == src when nothing improved
  bool improved = false;
  // True when the run was stopped by CompileServices::cancel before
  // completing. Counters are the partial totals at the stop point; `best`
  // falls back to the (stripped) source and `top_k` holds only candidates
  // that finished full re-verification before the stop — never unverified
  // programs.
  bool cancelled = false;
  // True when CompileServices::budget ran out before the search completed.
  // Unlike `cancelled`, the result IS fully re-verified — budget exhaustion
  // stops the search early but never skips final verification — so `best`
  // and `top_k` are trustworthy; only the search was truncated.
  bool budget_exhausted = false;
  std::vector<ebpf::Program> top_k;  // fully re-verified, checker-accepted

  double src_perf = 0;   // absolute metric of the source (slots or est. ns)
  double best_perf = 0;  // absolute metric of `best`
  uint64_t iters_to_best = 0;
  double secs_to_best = 0;
  double total_secs = 0;

  verify::EqCache::Stats cache;
  uint64_t solver_calls = 0;
  uint64_t total_proposals = 0;
  size_t final_tests = 0;
  // Evaluation-pipeline totals across chains.
  uint64_t early_exits = 0;
  uint64_t tests_executed = 0;
  uint64_t tests_skipped = 0;
  // Async solver dispatch totals (all zero when solver_workers == 0).
  uint64_t speculations = 0;        // chain decisions made on pending verdicts
  uint64_t pending_joins = 0;       // queries deduplicated across chains
  uint64_t rollbacks = 0;           // speculations contradicted by the solver
  uint64_t discarded_proposals = 0; // proposals undone by those rollbacks
  uint64_t solver_queue_peak = 0;   // high-water mark of the dispatch queue
  uint64_t solver_timeouts = 0;     // async queries that returned UNKNOWN
  uint64_t solver_abandoned = 0;    // cancelled queries skipped before solving
  // JIT backend: prepared candidates that fell back to the interpreter
  // (unsupported helper / oversized / no executable memory). Always 0 under
  // FAST_INTERP.
  uint64_t jit_bailouts = 0;

  // Kernel-checker post-processing statistics (Table 5).
  int kernel_accepted = 0;
  int kernel_rejected = 0;

  // Workload provenance: the scenario this run priced candidates under
  // (CompileOptions::scenario's name) and its content fingerprint
  // (scenario::Scenario::fingerprint — semantic fields only, so a catalog
  // entry and an identical file fingerprint the same). Recorded in the
  // CompileResult JSON, batch reports, and serve metrics.
  std::string scenario;
  std::string scenario_fingerprint;
};

// The perf-model backend a compile with these options actually uses: the
// explicit CompileOptions::perf_model when set, else derived from the goal
// (INST_COUNT for Goal::INST_COUNT, STATIC_LATENCY for Goal::LATENCY — the
// bit-identical pre-backend behavior). The single source of truth shared by
// compile(), the batch report's perf_model field, and the k2c banner.
sim::PerfModelKind resolved_perf_model(const CompileOptions& opts);

// Deterministic initial test generation (§3: "evaluated against a suite of
// automatically-generated test cases").
std::vector<interp::InputSpec> generate_tests(const ebpf::Program& src, int n,
                                              uint64_t seed);

CompileResult compile(const ebpf::Program& src,
                      const CompileOptions& opts = {});

// Same, but running against externally-owned shared services (see
// CompileServices). compile(src, opts) is compile(src, opts, {}).
CompileResult compile(const ebpf::Program& src, const CompileOptions& opts,
                      const CompileServices& svc);

}  // namespace k2::core
