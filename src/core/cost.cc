#include "core/cost.h"

#include <bit>
#include <cmath>

#include "sim/latency_model.h"

namespace k2::core {

namespace {

double diff_values(uint64_t a, uint64_t b, SearchParams::Diff kind) {
  if (kind == SearchParams::Diff::POP)
    return double(std::popcount(a ^ b));
  // diff_abs: |a - b| as unsigned distance, saturated to keep costs sane.
  uint64_t d = a > b ? a - b : b - a;
  return double(std::min<uint64_t>(d, 1u << 20));
}

}  // namespace

TestSuite::TestSuite(const ebpf::Program& src,
                     std::vector<interp::InputSpec> tests)
    : src_(src) {
  for (auto& t : tests) {
    src_out_.push_back(interp::run(src_, t));
    tests_.push_back(std::move(t));
  }
}

void TestSuite::add(const interp::InputSpec& test) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& t : tests_)
    if (t.packet == test.packet && t.maps == test.maps &&
        t.ctx_args == test.ctx_args && t.prandom_seed == test.prandom_seed)
      return;
  src_out_.push_back(interp::run(src_, test));
  tests_.push_back(test);
}

size_t TestSuite::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tests_.size();
}

const interp::InputSpec& TestSuite::test(size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tests_[i];
}

double TestSuite::diff_on(size_t i, const interp::RunResult& cand,
                          SearchParams::Diff kind) const {
  // Elements are append-only and never mutated after insertion, and the
  // deque keeps references stable across concurrent add() calls — only the
  // indexing itself needs the lock, not a copy of the result.
  const interp::RunResult& src_res = [&]() -> const interp::RunResult& {
    std::lock_guard<std::mutex> lock(mu_);
    return src_out_[i];
  }();
  if (!cand.ok()) return kFaultPenalty;
  if (!src_res.ok()) return cand.ok() ? kFaultPenalty : 0;

  double d = diff_values(cand.r0, src_res.r0, kind);
  // Side effects: packet bytes and map contents contribute per-byte
  // distances so "almost correct" programs rank above wildly wrong ones.
  if (src_.type != ebpf::ProgType::TRACEPOINT) {
    size_t n = std::max(cand.packet_out.size(), src_res.packet_out.size());
    for (size_t b = 0; b < n; ++b) {
      uint8_t x = b < cand.packet_out.size() ? cand.packet_out[b] : 0;
      uint8_t y = b < src_res.packet_out.size() ? src_res.packet_out[b] : 0;
      d += diff_values(x, y, kind);
    }
    if (cand.packet_out.size() != src_res.packet_out.size()) d += 64;
  }
  for (const auto& [fd, src_map] : src_res.maps_out) {
    auto it = cand.maps_out.find(fd);
    if (it == cand.maps_out.end()) {
      d += 256;
      continue;
    }
    const auto& cand_map = it->second;
    for (const auto& [k, v] : src_map) {
      auto cit = cand_map.find(k);
      if (cit == cand_map.end()) {
        d += 8.0 * v.size() + 8;
        continue;
      }
      for (size_t b = 0; b < v.size(); ++b)
        d += diff_values(v[b], b < cit->second.size() ? cit->second[b] : 0,
                         kind);
    }
    for (const auto& [k, v] : cand_map)
      if (!src_map.count(k)) d += 8.0 * v.size() + 8;
  }
  return d;
}

double perf_cost(Goal goal, const ebpf::Program& p, const ebpf::Program& src) {
  if (goal == Goal::INST_COUNT)
    return double(p.size_slots()) - double(src.size_slots());
  return sim::static_program_cost_ns(p) - sim::static_program_cost_ns(src);
}

TestEval run_tests(const TestSuite& suite, const ebpf::Program& cand,
                   SearchParams::Diff kind) {
  TestEval ev;
  size_t n = suite.size();
  for (size_t i = 0; i < n; ++i) {
    interp::RunResult r = interp::run(cand, suite.test(i));
    double d = suite.diff_on(i, r, kind);
    ev.diff_sum += d;
    if (d == 0)
      ev.passed++;
    else
      ev.failed++;
  }
  ev.all_passed = ev.failed == 0;
  return ev;
}

double error_cost(const SearchParams& params, const TestEval& ev,
                  bool unequal) {
  double total_tests = double(ev.passed + ev.failed);
  double c = params.avg_by_tests && total_tests > 0 ? 1.0 / total_tests : 1.0;
  double num_tests =
      params.count_passed ? double(ev.passed) : double(ev.failed);
  return c * ev.diff_sum + (unequal ? 1.0 : 0.0) * num_tests +
         (unequal ? 1.0 : 0.0);  // keep nonzero even with 0 counted tests
}

}  // namespace k2::core
