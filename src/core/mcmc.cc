#include "core/mcmc.h"

#include <chrono>
#include <cmath>

#include "pipeline/eval_pipeline.h"

namespace k2::core {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

ChainResult run_chain(const ebpf::Program& src, TestSuite& suite,
                      verify::EqCache& cache, const ChainConfig& cfg) {
  ChainResult result;
  ChainStats& st = result.stats;
  auto t0 = Clock::now();
  std::mt19937_64 rng(cfg.seed);

  std::vector<verify::WindowSpec> windows;
  if (cfg.use_windows) {
    windows = verify::select_windows(src, cfg.window_max_insns);
    if (windows.empty()) windows.push_back(verify::WindowSpec{0, 0});
  }

  // The propose→test→safety→cache→eqcheck→cost sequence lives in the
  // evaluation pipeline; this loop owns only proposal generation and the
  // Metropolis–Hastings accept decision.
  pipeline::EvalConfig ecfg;
  ecfg.params = cfg.params;
  ecfg.goal = cfg.goal;
  ecfg.eq = cfg.eq;
  ecfg.safety = cfg.safety;
  ecfg.window_mode = cfg.use_windows;
  ecfg.reorder_tests = cfg.reorder_tests;
  ecfg.early_exit = cfg.early_exit;
  pipeline::EvalPipeline pipe(src, suite, cache, ecfg);
  pipeline::ExecContext& ctx = pipeline::worker_context();

  auto consider_best = [&](const ebpf::Program& cand, uint64_t iter) {
    double perf = perf_cost(cfg.goal, cand, src);
    if (!result.best || perf < result.best_perf) {
      result.best = cand;
      result.best_perf = perf;
      st.best_iter = iter;
      st.best_time_sec =
          std::chrono::duration<double>(Clock::now() - t0).count();
      result.candidates.emplace_back(perf, cand);
      if (result.candidates.size() > 16)
        result.candidates.erase(result.candidates.begin());
    }
  };

  ebpf::Program cur = src;
  std::optional<verify::WindowSpec> cur_win;
  size_t win_idx = 0;
  uint64_t iters_per_window =
      windows.empty() ? cfg.iterations
                      : std::max<uint64_t>(1, cfg.iterations / windows.size());

  if (cfg.use_windows && !windows.empty() && windows[0].end > 0)
    cur_win = windows[0];
  ProposalGen gen(src, cfg.params, cfg.rules, cur_win);
  pipeline::Eval cur_eval =
      pipe.evaluate(cur, cur_win, pipeline::RejectGate{}, ctx);

  for (uint64_t iter = 0; iter < cfg.iterations; ++iter) {
    if (cfg.use_windows && !windows.empty() && windows[0].end > 0 &&
        iter > 0 && iter % iters_per_window == 0 &&
        win_idx + 1 < windows.size()) {
      win_idx++;
      cur_win = windows[win_idx];
      gen = ProposalGen(src, cfg.params, cfg.rules, cur_win);
      // `cur` carries accepted rewrites of earlier windows forward.
    }
    st.proposals++;
    ebpf::Program cand = gen.propose(cur, rng);
    if (cand.insns == cur.insns) continue;
    // Draw the acceptance uniform before evaluating: evaluation consumes no
    // randomness, so the RNG stream matches the legacy order, and the
    // pipeline can prove mid-evaluation that this draw must reject.
    double u = std::uniform_real_distribution<double>(0, 1)(rng);
    pipeline::Eval cand_eval = pipe.evaluate(
        cand, cur_win,
        pipeline::RejectGate{cur_eval.cost, u, cfg.params.mcmc_beta}, ctx);
    if (cand_eval.verified) consider_best(cand, iter);

    double accept_prob =
        std::min(1.0, std::exp(-cfg.params.mcmc_beta *
                               (cand_eval.cost - cur_eval.cost)));
    if (u < accept_prob) {
      cur = std::move(cand);
      cur_eval = cand_eval;
      st.accepted++;
    }
  }
  const pipeline::EvalStats& ps = pipe.stats();
  st.test_prunes = ps.test_prunes;
  st.safety_rejects = ps.safety_rejects;
  st.solver_calls = ps.solver_calls;
  st.cache_hits = ps.cache_hits;
  st.early_exits = ps.early_exits;
  st.tests_executed = ps.tests_executed;
  st.tests_skipped = ps.tests_skipped;
  st.total_time_sec = std::chrono::duration<double>(Clock::now() - t0).count();
  return result;
}

}  // namespace k2::core
