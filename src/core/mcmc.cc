#include "core/mcmc.h"

#include <chrono>
#include <cmath>

#include "interp/interpreter.h"
#include "kernel/kernel_checker.h"

namespace k2::core {

namespace {

using Clock = std::chrono::steady_clock;

constexpr double kErrMax = 100.0;  // safety cost of unsafe programs (§3.2)

// True when `cand` differs from `orig` only inside [win.start, win.end).
bool differs_only_in(const ebpf::Program& orig, const ebpf::Program& cand,
                     const verify::WindowSpec& win) {
  if (orig.insns.size() != cand.insns.size()) return false;
  for (size_t i = 0; i < orig.insns.size(); ++i) {
    bool inside = int(i) >= win.start && int(i) < win.end;
    if (!inside && !(orig.insns[i] == cand.insns[i])) return false;
  }
  return true;
}

}  // namespace

ChainResult run_chain(const ebpf::Program& src, TestSuite& suite,
                      verify::EqCache& cache, const ChainConfig& cfg) {
  ChainResult result;
  ChainStats& st = result.stats;
  auto t0 = Clock::now();
  std::mt19937_64 rng(cfg.seed);

  std::vector<verify::WindowSpec> windows;
  if (cfg.use_windows) {
    windows = verify::select_windows(src, cfg.window_max_insns);
    if (windows.empty()) windows.push_back(verify::WindowSpec{0, 0});
  }

  // Evaluates a candidate; returns (total_cost, verified_ok).
  struct Eval {
    double cost = 0;
    bool verified = false;  // safe && formally equivalent
  };
  auto evaluate = [&](const ebpf::Program& cand,
                      const std::optional<verify::WindowSpec>& win) -> Eval {
    Eval ev;
    TestEval te = run_tests(suite, cand, cfg.params.diff);
    bool unequal = true;
    double safe_cost = 0;
    if (!te.all_passed) {
      st.test_prunes++;
    } else {
      // Static safety first (cheap); solver-backed checks in full mode.
      safety::SafetyOptions sopt = cfg.safety;
      sopt.run_solver_checks = cfg.safety.run_solver_checks && !cfg.use_windows;
      safety::SafetyResult sres = safety::check_safety(cand, sopt);
      // Checker-specific constraints (§6): K2's FOL safety is more precise
      // than the kernel checker (e.g. it knows packets are >= 14 bytes and
      // that an uninitialized stack read whose value is dead is harmless),
      // so a candidate can be K2-safe yet unloadable. Folding the checker's
      // static rules into the safety cost here is the paper's "we added
      // these checks on-demand, as we encountered programs that failed to
      // load" — and it is what makes all final outputs pass the checker
      // without post-filtering (Table 5).
      if (sres.safe && !kernel::kernel_check(cand).accepted) {
        sres.safe = false;
        sres.reason = "rejected by checker-specific constraints";
      }
      if (!sres.safe) {
        st.safety_rejects++;
        safe_cost = kErrMax;
        if (sres.cex) suite.add(*sres.cex);  // prune similar ones cheaply
      } else {
        uint64_t key = verify::EqCache::key_for(src, cand);
        if (auto hit = cache.lookup(key)) {
          st.cache_hits++;
          unequal = *hit != verify::Verdict::EQUAL;
        } else {
          st.solver_calls++;
          verify::EqResult eq;
          if (win && differs_only_in(src, cand, *win)) {
            std::vector<ebpf::Insn> repl(
                cand.insns.begin() + win->start,
                cand.insns.begin() + win->end);
            eq = verify::check_window_equivalence(src, *win, repl, cfg.eq);
            if (eq.verdict == verify::Verdict::ENCODE_FAIL)
              eq = verify::check_equivalence(src, cand, cfg.eq);
          } else {
            eq = verify::check_equivalence(src, cand, cfg.eq);
          }
          cache.insert(key, eq.verdict);
          unequal = eq.verdict != verify::Verdict::EQUAL;
          if (eq.cex) {
            // Only keep counterexamples the interpreter confirms, guarding
            // against encoder/interpreter drift.
            interp::RunResult r1 = interp::run(src, *eq.cex);
            interp::RunResult r2 = interp::run(cand, *eq.cex);
            if (!interp::outputs_equal(src.type, r1, r2)) suite.add(*eq.cex);
          }
        }
        ev.verified = !unequal;
      }
    }
    double err = error_cost(cfg.params, te, unequal);
    double perf = perf_cost(cfg.goal, cand, src);
    ev.cost = cfg.params.alpha * err + cfg.params.beta * perf +
              cfg.params.gamma * safe_cost;
    return ev;
  };

  auto consider_best = [&](const ebpf::Program& cand, uint64_t iter) {
    double perf = perf_cost(cfg.goal, cand, src);
    if (!result.best || perf < result.best_perf) {
      result.best = cand;
      result.best_perf = perf;
      st.best_iter = iter;
      st.best_time_sec =
          std::chrono::duration<double>(Clock::now() - t0).count();
      result.candidates.emplace_back(perf, cand);
      if (result.candidates.size() > 16)
        result.candidates.erase(result.candidates.begin());
    }
  };

  ebpf::Program cur = src;
  std::optional<verify::WindowSpec> cur_win;
  size_t win_idx = 0;
  uint64_t iters_per_window =
      windows.empty() ? cfg.iterations
                      : std::max<uint64_t>(1, cfg.iterations / windows.size());

  if (cfg.use_windows && !windows.empty() && windows[0].end > 0)
    cur_win = windows[0];
  ProposalGen gen(src, cfg.params, cfg.rules, cur_win);
  Eval cur_eval = evaluate(cur, cur_win);

  for (uint64_t iter = 0; iter < cfg.iterations; ++iter) {
    if (cfg.use_windows && !windows.empty() && windows[0].end > 0 &&
        iter > 0 && iter % iters_per_window == 0 &&
        win_idx + 1 < windows.size()) {
      win_idx++;
      cur_win = windows[win_idx];
      gen = ProposalGen(src, cfg.params, cfg.rules, cur_win);
      // `cur` carries accepted rewrites of earlier windows forward.
    }
    st.proposals++;
    ebpf::Program cand = gen.propose(cur, rng);
    if (cand.insns == cur.insns) continue;
    Eval cand_eval = evaluate(cand, cur_win);
    if (cand_eval.verified) consider_best(cand, iter);

    double accept_prob =
        std::min(1.0, std::exp(-cfg.params.mcmc_beta *
                               (cand_eval.cost - cur_eval.cost)));
    if (std::uniform_real_distribution<double>(0, 1)(rng) < accept_prob) {
      cur = std::move(cand);
      cur_eval = cand_eval;
      st.accepted++;
    }
  }
  st.total_time_sec = std::chrono::duration<double>(Clock::now() - t0).count();
  return result;
}

}  // namespace k2::core
