#include "core/mcmc.h"

#include <chrono>
#include <cmath>
#include <deque>

#include "pipeline/eval_pipeline.h"
#include "sim/perf_model.h"

namespace k2::core {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

ChainResult run_chain(const ebpf::Program& src, TestSuite& suite,
                      verify::EqCache& cache, const ChainConfig& cfg) {
  ChainResult result;
  ChainStats& st = result.stats;
  auto t0 = Clock::now();
  std::mt19937_64 rng(cfg.seed);

  std::vector<verify::WindowSpec> windows;
  if (cfg.use_windows) {
    windows = verify::select_windows(src, cfg.window_max_insns);
    if (windows.empty()) windows.push_back(verify::WindowSpec{0, 0});
  }

  // The propose→test→safety→cache→eqcheck→cost sequence lives in the
  // evaluation pipeline; this loop owns only proposal generation, the
  // Metropolis–Hastings accept decision, and (in async mode) the undo-log
  // that lets the chain run ahead of in-flight solver verdicts.
  pipeline::EvalConfig ecfg;
  ecfg.params = cfg.params;
  ecfg.goal = cfg.goal;
  ecfg.eq = cfg.eq;
  ecfg.safety = cfg.safety;
  ecfg.window_mode = cfg.use_windows;
  ecfg.reorder_tests = cfg.reorder_tests;
  ecfg.early_exit = cfg.early_exit;
  ecfg.max_insns = cfg.max_insns;
  ecfg.exec_backend = cfg.exec_backend;
  ecfg.dispatcher = cfg.dispatcher;
  ecfg.backend = cfg.backend;
  ecfg.perf_model = cfg.perf_model;
  ecfg.cancel = cfg.cancel;
  pipeline::EvalPipeline pipe(src, suite, cache, ecfg);
  pipeline::ExecContext& ctx = pipeline::worker_context();

  // Max in-flight speculated verdicts. Zero = fully synchronous chain,
  // bit-identical to PR 1 (the pipeline never sees a PendingEq slot).
  const size_t spec_depth =
      cfg.dispatcher && cfg.dispatcher->async() && cfg.speculation_depth > 0
          ? size_t(cfg.speculation_depth)
          : 0;

  auto consider_best = [&](const ebpf::Program& cand, uint64_t iter) {
    double perf = cfg.perf_model
                      ? cfg.perf_model->relative(cand, src, &ctx.machine)
                      : perf_cost(cfg.goal, cand, src);
    if (!result.best || perf < result.best_perf) {
      result.best = cand;
      result.best_perf = perf;
      st.best_iter = iter;
      st.best_time_sec =
          std::chrono::duration<double>(Clock::now() - t0).count();
      result.candidates.emplace_back(perf, cand);
      if (result.candidates.size() > 16)
        result.candidates.erase(result.candidates.begin());
      if (cfg.progress && *cfg.progress) {
        ProgressEvent ev;
        ev.kind = ProgressEvent::Kind::NEW_BEST;
        ev.chain = cfg.chain_index;
        ev.iter = iter;
        ev.proposals = st.proposals;
        ev.perf = perf;
        (*cfg.progress)(ev);
      }
    }
  };

  ebpf::Program cur = src;
  std::optional<verify::WindowSpec> cur_win;
  size_t win_idx = 0;
  uint64_t iters_per_window =
      windows.empty() ? cfg.iterations
                      : std::max<uint64_t>(1, cfg.iterations / windows.size());

  if (cfg.use_windows && !windows.empty() && windows[0].end > 0)
    cur_win = windows[0];
  ProposalGen gen(src, cfg.params, cfg.rules, cur_win);
  pipeline::Eval cur_eval =
      pipe.evaluate(cur, cur_win, pipeline::RejectGate{}, ctx);

  // One undo-log entry: the speculated decision plus a snapshot of every
  // piece of chain state that decision (and everything after it) may have
  // touched. The candidate itself lives in pending.cand.
  struct SpecFrame {
    uint64_t iter;  // iteration index of the speculated decision
    double u;       // its pre-drawn acceptance uniform
    pipeline::PendingEq pending;
    // Snapshot taken immediately before applying the speculative decision:
    ebpf::Program cur;
    pipeline::Eval cur_eval;
    std::mt19937_64 rng;  // post-draw, so the replay consumes no randomness
    size_t win_idx;
    std::optional<verify::WindowSpec> cur_win;
    std::optional<ebpf::Program> best;
    double best_perf;
    std::vector<std::pair<double, ebpf::Program>> candidates;
    uint64_t proposals, accepted, best_iter;
    double best_time_sec;
  };
  std::deque<SpecFrame> frames;  // in-flight speculations, oldest first

  uint64_t iter = 0;
  uint64_t last_tick = 0;  // dedupes ticks while the undo-log drains

  // Retires the oldest speculation given its corrected evaluation. When the
  // solver confirmed the not-equal assumption the decision already made is
  // exactly the decision the verdict implies (same test results, same cost),
  // so the frame is simply dropped. When the solver says EQUAL the chain is
  // rolled back to the frame's snapshot, the decision is replayed with the
  // true (lower) cost, and every younger in-flight query is cancelled —
  // their issuing states no longer exist.
  auto retire_head = [&](pipeline::Eval fin) {
    SpecFrame f = std::move(frames.front());
    frames.pop_front();
    if (!fin.verified) return;
    st.rollbacks++;
    st.discarded_proposals += st.proposals - f.proposals;
    for (auto& g : frames) pipe.cancel(g.pending);
    frames.clear();
    // The chain's current program jumps back to an older snapshot: the
    // worker's incrementally-patched decoded program no longer tracks it.
    ctx.runner.invalidate();
    cur = std::move(f.cur);
    cur_eval = f.cur_eval;
    rng = f.rng;
    win_idx = f.win_idx;
    cur_win = f.cur_win;
    gen = ProposalGen(src, cfg.params, cfg.rules, cur_win);
    result.best = std::move(f.best);
    result.best_perf = f.best_perf;
    result.candidates = std::move(f.candidates);
    st.proposals = f.proposals;
    st.accepted = f.accepted;
    st.best_iter = f.best_iter;
    st.best_time_sec = f.best_time_sec;
    // Replay the retired iteration's tail with the real verdict.
    consider_best(f.pending.cand, f.iter);
    double accept_prob = std::min(
        1.0, std::exp(-cfg.params.mcmc_beta * (fin.cost - cur_eval.cost)));
    if (f.u < accept_prob) {
      cur = std::move(f.pending.cand);
      cur_eval = fin;
      st.accepted++;
    }
    iter = f.iter + 1;
  };

  while (iter < cfg.iterations || !frames.empty()) {
    // Cooperative cancellation / budget checkpoint: once per iteration.
    // Every in-flight speculative query is released (the dispatcher
    // abandons still-queued ones, so no PendingVerdict is left waiting),
    // the speculated tail of the trajectory is discarded, and the chain
    // returns its last non-speculative state. A never-set flag costs one
    // relaxed atomic load and changes nothing; the budget charge is one
    // relaxed fetch_add per checkpoint (see core/progress.h).
    if ((cfg.cancel && cfg.cancel->load(std::memory_order_relaxed)) ||
        (cfg.budget && cfg.budget->charge())) {
      if (!frames.empty()) {
        for (auto& g : frames) pipe.cancel(g.pending);
        SpecFrame& oldest = frames.front();
        ctx.runner.invalidate();
        cur = std::move(oldest.cur);
        cur_eval = oldest.cur_eval;
        result.best = std::move(oldest.best);
        result.best_perf = oldest.best_perf;
        result.candidates = std::move(oldest.candidates);
        st.proposals = oldest.proposals;
        st.accepted = oldest.accepted;
        st.best_iter = oldest.best_iter;
        st.best_time_sec = oldest.best_time_sec;
        frames.clear();
      }
      break;
    }
    if (cfg.progress && *cfg.progress && cfg.tick_every > 0 && iter > 0 &&
        iter < cfg.iterations && iter % cfg.tick_every == 0 &&
        iter != last_tick) {
      last_tick = iter;
      ProgressEvent ev;
      ev.kind = ProgressEvent::Kind::CHAIN_TICK;
      ev.chain = cfg.chain_index;
      ev.iter = iter;
      ev.proposals = st.proposals;
      ev.perf = result.best ? result.best_perf : 0;
      (*cfg.progress)(ev);
    }
    // Retire whatever resolved, oldest first, without blocking.
    while (!frames.empty()) {
      std::optional<pipeline::Eval> fin =
          pipe.poll(frames.front().pending, ctx);
      if (!fin) break;
      retire_head(std::move(*fin));
    }
    // Undo-log full, or out of fresh proposals: block on the oldest
    // verdict (backpressure toward the solver pool).
    if (!frames.empty() &&
        (frames.size() >= spec_depth || iter >= cfg.iterations)) {
      retire_head(pipe.resolve(frames.front().pending, ctx));
      continue;  // a rollback may have rewound iter; re-check everything
    }
    if (iter >= cfg.iterations) continue;

    if (cfg.use_windows && !windows.empty() && windows[0].end > 0 &&
        iter > 0 && iter % iters_per_window == 0 &&
        win_idx + 1 < windows.size()) {
      win_idx++;
      cur_win = windows[win_idx];
      gen = ProposalGen(src, cfg.params, cfg.rules, cur_win);
      // `cur` carries accepted rewrites of earlier windows forward.
    }
    st.proposals++;
    ebpf::InsnRange touched;
    ebpf::Program cand = gen.propose(cur, rng, &touched);
    if (cand.insns == cur.insns) {
      iter++;
      continue;
    }
    // Draw the acceptance uniform before evaluating: evaluation consumes no
    // randomness, so the RNG stream matches the legacy order, and the
    // pipeline can prove mid-evaluation that this draw must reject.
    double u = std::uniform_real_distribution<double>(0, 1)(rng);
    pipeline::PendingEq pending;
    pipeline::Eval cand_eval = pipe.evaluate(
        cand, cur_win,
        pipeline::RejectGate{cur_eval.cost, u, cfg.params.mcmc_beta}, ctx,
        spec_depth > 0 ? &pending : nullptr, &touched);
    if (cand_eval.pending) {
      // Verdict in flight: snapshot, then decide under the not-equal
      // assumption and keep going.
      SpecFrame f;
      f.iter = iter;
      f.u = u;
      f.pending = std::move(pending);
      f.cur = cur;
      f.cur_eval = cur_eval;
      f.rng = rng;
      f.win_idx = win_idx;
      f.cur_win = cur_win;
      f.best = result.best;
      f.best_perf = result.best_perf;
      f.candidates = result.candidates;
      f.proposals = st.proposals;
      f.accepted = st.accepted;
      f.best_iter = st.best_iter;
      f.best_time_sec = st.best_time_sec;
      double accept_prob = std::min(
          1.0,
          std::exp(-cfg.params.mcmc_beta * (cand_eval.cost - cur_eval.cost)));
      if (u < accept_prob) {
        cur = std::move(cand);  // f.pending.cand keeps the rollback copy
        cur_eval = cand_eval;
        st.accepted++;
      }
      frames.push_back(std::move(f));
    } else {
      if (cand_eval.verified) consider_best(cand, iter);
      double accept_prob = std::min(
          1.0,
          std::exp(-cfg.params.mcmc_beta * (cand_eval.cost - cur_eval.cost)));
      if (u < accept_prob) {
        cur = std::move(cand);
        cur_eval = cand_eval;
        st.accepted++;
      }
    }
    iter++;
  }
  const pipeline::EvalStats& ps = pipe.stats();
  st.test_prunes = ps.test_prunes;
  st.safety_rejects = ps.safety_rejects;
  st.solver_calls = ps.solver_calls;
  st.cache_hits = ps.cache_hits;
  st.early_exits = ps.early_exits;
  st.tests_executed = ps.tests_executed;
  st.tests_skipped = ps.tests_skipped;
  st.speculations = ps.speculations;
  st.pending_joins = ps.pending_joins;
  st.jit_bailouts = ps.jit_bailouts;
  st.total_time_sec = std::chrono::duration<double>(Clock::now() - t0).count();
  return result;
}

}  // namespace k2::core
