// The Metropolis–Hastings search loop (§3): propose → test-case pruning →
// safety checking → (cached) equivalence checking → cost → accept/reject.
// Counterexamples from both the equivalence checker and the safety checker
// flow back into the shared test suite (Fig. 1).
//
// Speculative solver dispatch (ISSUE 2): with an AsyncSolverDispatcher
// wired in, a candidate whose equivalence verdict is still in flight does
// not stall the chain. The chain decides speculatively under the rejected
// (not-equal) assumption — the statistically common outcome — and pushes an
// undo-log frame snapshotting everything the decision touched (current
// program, cost, RNG state, window cursor, best-candidate trajectory,
// decision counters). Frames retire strictly in issue order: a verdict of
// "not equal" confirms the speculation and the frame is dropped; a verdict
// of EQUAL rolls the chain back to the frame's snapshot, replays the
// decision with the true verdict, and cancels every younger in-flight
// query. The undo-log is bounded by speculation_depth; a full log blocks
// the chain on its oldest verdict (backpressure toward the solver pool).
#pragma once

#include <atomic>
#include <optional>

#include "core/cost.h"
#include "core/params.h"
#include "core/progress.h"
#include "core/proposals.h"
#include "jit/exec_backend.h"
#include "safety/safety.h"
#include "verify/cache.h"
#include "verify/solver_dispatch.h"
#include "verify/window.h"

namespace k2::sim {
class PerfModel;
}

namespace k2::core {

struct ChainConfig {
  SearchParams params;
  Goal goal = Goal::INST_COUNT;
  ProposalRules rules;
  uint64_t iterations = 10'000;
  uint64_t seed = 1;
  verify::EqOptions eq;
  safety::SafetyOptions safety;
  // Interpreter step budget per test execution (RunOptions::max_insns).
  uint64_t max_insns = 1u << 20;
  // Execution engine for candidate test runs (jit/exec_backend.h). The JIT
  // backend is decision-neutral — bit-identical RunResults — so same-seed
  // chains pick the same winners under either engine.
  jit::ExecBackend exec_backend = jit::ExecBackend::FAST_INTERP;
  // Modular verification (§5 IV): mutate and verify within windows. Final
  // outputs are re-verified whole-program by the compiler driver.
  bool use_windows = false;
  int window_max_insns = 6;
  // Evaluation-pipeline execution-order optimizations. Both are
  // decision-preserving (same-seed chains make bit-identical accept/reject
  // decisions); disabling them reproduces the legacy inline evaluation
  // exactly, which the differential tests rely on.
  bool reorder_tests = true;
  bool early_exit = true;
  // Async solver dispatch: null or a zero-worker dispatcher keeps the chain
  // fully synchronous (bit-identical to PR 1). With workers, equivalence
  // queries overlap chain progress under speculation (see file comment);
  // speculation_depth bounds the undo-log (in-flight verdicts per chain).
  verify::AsyncSolverDispatcher* dispatcher = nullptr;
  int speculation_depth = 4;
  // Solver backend for equivalence queries (verify/solver_backend.h): null
  // solves in-process (bit-identical to the inline policy); a remote
  // backend farms queries to solve-worker processes. Shared by every chain;
  // must outlive the run.
  verify::SolverBackend* backend = nullptr;
  // Pluggable perf(p) backend (sim/perf_model.h), shared read-only by every
  // chain of a compile run; must outlive the chain and match `goal`. Null
  // falls back to core::perf_cost(goal, ...), which is bit-identical for
  // the INST_COUNT and STATIC_LATENCY kinds.
  const sim::PerfModel* perf_model = nullptr;
  // Cooperative cancellation + progress (see CompileServices). The chain
  // checks `cancel` once per iteration and stops within one checkpoint,
  // cancelling its in-flight speculative queries; `progress` (shared
  // read-only across chains, must be thread-safe) gets a CHAIN_TICK every
  // `tick_every` iterations and a NEW_BEST per best-candidate improvement,
  // tagged with `chain_index`. Neither consumes randomness or alters
  // decisions. Null/empty = inert.
  const std::atomic<bool>* cancel = nullptr;
  const ProgressFn* progress = nullptr;
  uint64_t tick_every = 0;  // 0 = no ticks
  int chain_index = -1;
  // Per-job resource budget shared by every chain of the run (see
  // core/progress.h). The chain charges one iteration at each checkpoint;
  // an exhausted budget stops the chain exactly like `cancel` (in-flight
  // speculative queries released, last non-speculative state returned).
  // Null = unlimited.
  JobBudget* budget = nullptr;
};

struct ChainStats {
  uint64_t proposals = 0;  // retired proposals (mis-speculated work excluded)
  uint64_t accepted = 0;
  uint64_t test_prunes = 0;     // proposals killed by the test suite
  uint64_t safety_rejects = 0;
  // Equivalence queries sent to the solver: solved inline in sync mode;
  // counted at submit time in async mode, where a few may later be
  // cancelled and abandoned unsolved (CompileResult::solver_abandoned).
  uint64_t solver_calls = 0;
  uint64_t cache_hits = 0;
  // Pipeline observability (not part of the legacy-comparable set: the
  // legacy inline evaluation by construction has zero early exits). These
  // count work actually performed, including work later rolled back.
  uint64_t early_exits = 0;
  uint64_t tests_executed = 0;
  uint64_t tests_skipped = 0;
  // Speculation observability (async mode only; all zero in sync mode).
  uint64_t speculations = 0;        // decisions made on a pending verdict
  uint64_t pending_joins = 0;       // queries shared with another chain
  uint64_t rollbacks = 0;           // speculations the solver contradicted
  // JIT backend observability: prepared candidates that fell back to the
  // interpreter (always 0 under FAST_INTERP).
  uint64_t jit_bailouts = 0;
  uint64_t discarded_proposals = 0; // proposals undone by those rollbacks
  uint64_t best_iter = 0;
  double best_time_sec = 0;
  double total_time_sec = 0;
};

struct ChainResult {
  // Best verified (safe + equivalent) improvement over the source, if any;
  // still in slot form (NOPs not yet stripped).
  std::optional<ebpf::Program> best;
  double best_perf = 0;  // perf_cost of `best` relative to the source
  // Top verified candidates discovered along the way (perf_cost, program).
  std::vector<std::pair<double, ebpf::Program>> candidates;
  ChainStats stats;
};

ChainResult run_chain(const ebpf::Program& src, TestSuite& suite,
                      verify::EqCache& cache, const ChainConfig& cfg);

}  // namespace k2::core
