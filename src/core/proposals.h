// Proposal generation for the Markov chain (§3.1): six rewrite rules chosen
// with fixed probabilities. Rules 1–3 are STOKE-style generic rules; rules
// 4–6 (memory-exchange type 1/2 and contiguous-instruction replacement) are
// K2's domain-specific accelerations, individually toggleable for the
// Table 10 ablation.
#pragma once

#include <optional>
#include <random>

#include "core/params.h"
#include "ebpf/program.h"
#include "verify/window.h"

namespace k2::core {

struct ProposalRules {
  bool mem_exchange1 = true;  // rule 4
  bool mem_exchange2 = true;  // rule 5
  bool contiguous = true;     // rule 6
};

class ProposalGen {
 public:
  // Operand pools (immediates, memory offsets) are harvested from the
  // source program, as in STOKE: mutations draw from values the program
  // plausibly needs.
  ProposalGen(const ebpf::Program& src, const SearchParams& params,
              const ProposalRules& rules,
              std::optional<verify::WindowSpec> window = std::nullopt);

  // Returns a mutated copy of `cur`. Proposals are symmetric, so the
  // Metropolis–Hastings transition-probability ratio is 1 (§3.3).
  // When `touched` is non-null it receives the instruction range this
  // proposal mutated (1–2 slots; empty when no mutation happened), which
  // lets the execution layer patch its pre-decoded program instead of
  // re-decoding the whole candidate.
  ebpf::Program propose(const ebpf::Program& cur, std::mt19937_64& rng,
                        ebpf::InsnRange* touched = nullptr) const;

 private:
  ebpf::Insn random_insn(const ebpf::Program& cur, int pos,
                         std::mt19937_64& rng) const;
  int random_position(const ebpf::Program& cur, std::mt19937_64& rng) const;

  SearchParams params_;
  ProposalRules rules_;
  std::optional<verify::WindowSpec> window_;
  std::vector<int64_t> imm_pool_;
  std::vector<int16_t> off_pool_;
};

}  // namespace k2::core
