// Search parameter settings (§3.2, App. F.1 / Table 8): the error-cost
// variants (8 = diff{abs,pop} × c{full,avg} × num_tests{failed,passed}),
// the (α, β) cost weights, and the per-rule proposal probabilities. K2 runs
// parallel Markov chains, one per setting, and returns the best programs
// found across all of them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace k2::core {

struct SearchParams {
  // ---- error cost variants (equation 1) ----
  enum class Diff : uint8_t { ABS, POP };
  Diff diff = Diff::ABS;
  bool avg_by_tests = false;       // c = 1/|T| instead of 1
  bool count_passed = false;       // num_tests = #passed instead of #failed

  // ---- cost weights ----
  double alpha = 0.5;   // error weight
  double beta = 5.0;    // performance weight
  double gamma = 30.0;  // safety weight (multiplies the ERR_MAX indicator)

  // ---- proposal probabilities (§3.1; must sum to 1) ----
  double p_insn_replace = 0.2;     // rule 1
  double p_operand_replace = 0.4;  // rule 2
  double p_nop_replace = 0.15;     // rule 3
  double p_mem_exchange1 = 0.2;    // rule 4 (domain-specific)
  double p_mem_exchange2 = 0.0;    // rule 5 (domain-specific)
  double p_contiguous = 0.05;      // rule 6 (domain-specific), k = 2

  // MCMC temperature (equation 2).
  double mcmc_beta = 1.0;

  std::string name;
};

// The five best-performing settings from Table 8 (App. F.1).
std::vector<SearchParams> table8_settings();

// The full set of 16 settings K2 runs in parallel: the Table 8 five plus
// the remaining error-cost/probability combinations.
std::vector<SearchParams> default_settings();

}  // namespace k2::core
