#include "core/compiler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "analysis/dce.h"
#include "sim/perf_eval.h"
#include "sim/latency_model.h"

namespace k2::core {

namespace {

using Clock = std::chrono::steady_clock;

double absolute_perf(Goal goal, const ebpf::Program& p) {
  return goal == Goal::INST_COUNT ? double(p.size_slots())
                                  : sim::static_program_cost_ns(p);
}

}  // namespace

std::vector<interp::InputSpec> generate_tests(const ebpf::Program& src, int n,
                                              uint64_t seed) {
  // Random packet workload plus deterministic edge cases: a minimum-size
  // packet, an all-zero packet, and empty maps.
  std::vector<interp::InputSpec> tests =
      sim::make_workload(src, std::max(1, n - 3), seed, /*hit_rate=*/0.7);
  interp::InputSpec tiny;
  tiny.packet.assign(14, 0);
  tests.push_back(tiny);
  interp::InputSpec zeros;
  zeros.packet.assign(64, 0);
  zeros.prandom_seed = 0;
  zeros.ktime_base = 0;
  tests.push_back(zeros);
  interp::InputSpec ones;
  ones.packet.assign(64, 0xff);
  ones.ctx_args = {~0ull, 1};
  tests.push_back(ones);
  return tests;
}

CompileResult compile(const ebpf::Program& src, const CompileOptions& opts) {
  auto t0 = Clock::now();
  CompileResult res;
  res.best = src.strip_nops();
  res.src_perf = absolute_perf(opts.goal, src);
  res.best_perf = res.src_perf;

  TestSuite suite(src, generate_tests(src, opts.num_initial_tests, opts.seed));
  verify::EqCache cache;

  std::vector<SearchParams> settings =
      opts.settings.empty() ? default_settings() : opts.settings;

  bool use_windows = opts.force_windows
                         ? *opts.force_windows
                         : src.num_real_insns() > opts.window_threshold;

  std::vector<ChainConfig> configs;
  for (int i = 0; i < opts.num_chains; ++i) {
    ChainConfig cfg;
    cfg.params = settings[size_t(i) % settings.size()];
    cfg.goal = opts.goal;
    cfg.rules = opts.rules;
    cfg.iterations = opts.iters_per_chain;
    cfg.seed = opts.seed * 1000003u + uint64_t(i) * 7919u + 17;
    cfg.eq = opts.eq;
    cfg.safety = opts.safety;
    cfg.use_windows = use_windows;
    configs.push_back(cfg);
  }

  std::vector<ChainResult> chain_results(configs.size());
  std::vector<std::thread> workers;
  std::atomic<size_t> next{0};
  int nthreads = std::max(1, std::min<int>(opts.threads, int(configs.size())));
  for (int t = 0; t < nthreads; ++t) {
    workers.emplace_back([&]() {
      while (true) {
        size_t i = next.fetch_add(1);
        if (i >= configs.size()) break;
        chain_results[i] = run_chain(src, suite, cache, configs[i]);
      }
    });
  }
  for (auto& w : workers) w.join();

  // Gather verified candidates across chains, best first.
  std::vector<std::pair<double, ebpf::Program>> all;
  for (const auto& cr : chain_results) {
    res.total_proposals += cr.stats.proposals;
    res.solver_calls += cr.stats.solver_calls;
    for (const auto& c : cr.candidates) all.push_back(c);
    if (cr.best &&
        (res.iters_to_best == 0 || cr.stats.best_iter < res.iters_to_best)) {
      // time/iterations of the chain that found the best program overall is
      // fixed up below once the winner is known
    }
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Final verification: whole-program equivalence + solver-backed safety on
  // the NOP-stripped output, then the kernel checker (post-processing, §6).
  std::vector<uint64_t> seen_hashes;
  for (const auto& [perf, cand] : all) {
    if (int(res.top_k.size()) >= opts.top_k) break;
    ebpf::Program out = analysis::remove_dead_code(cand).strip_nops();
    if (out.size_slots() >= res.src_perf && opts.goal == Goal::INST_COUNT &&
        !res.top_k.empty())
      continue;
    uint64_t h = analysis::program_hash(out);
    if (std::find(seen_hashes.begin(), seen_hashes.end(), h) !=
        seen_hashes.end())
      continue;
    seen_hashes.push_back(h);

    safety::SafetyOptions sopt = opts.safety;
    sopt.run_solver_checks = true;
    if (!safety::check_safety(out, sopt).safe) continue;
    verify::EqResult eq = verify::check_equivalence(src, out, opts.eq);
    if (eq.verdict != verify::Verdict::EQUAL) continue;
    kernel::CheckResult kc = kernel::kernel_check(out);
    if (!kc.accepted) {
      res.kernel_rejected++;
      continue;
    }
    res.kernel_accepted++;
    res.top_k.push_back(out);
  }

  if (!res.top_k.empty()) {
    double bp = absolute_perf(opts.goal, res.top_k[0]);
    if (bp < res.src_perf) {
      res.best = res.top_k[0];
      res.best_perf = bp;
      res.improved = true;
      // Attribute time/iterations to the chain that found this program.
      for (const auto& cr : chain_results) {
        if (!cr.best) continue;
        for (const auto& [perf, cand] : cr.candidates) {
          (void)perf;
          if (analysis::program_hash(
                  analysis::remove_dead_code(cand).strip_nops()) ==
              analysis::program_hash(res.best)) {
            res.iters_to_best = cr.stats.best_iter;
            res.secs_to_best = cr.stats.best_time_sec;
          }
        }
      }
    }
  }

  res.cache = cache.stats();
  res.final_tests = suite.size();
  res.total_secs = std::chrono::duration<double>(Clock::now() - t0).count();
  return res;
}

}  // namespace k2::core
