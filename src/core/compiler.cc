#include "core/compiler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <stdexcept>
#include <unordered_map>

#include "analysis/dce.h"
#include "pipeline/thread_pool.h"
#include "sim/perf_eval.h"
#include "sim/perf_model.h"
#include "verify/cache_store.h"

namespace k2::core {

namespace {

using Clock = std::chrono::steady_clock;

// Outcome of the final whole-program re-verification of one candidate.
struct FinalVerify {
  bool safe = false;
  verify::Verdict verdict = verify::Verdict::UNKNOWN;
  kernel::CheckResult kc;
};

// Final verification of one NOP-stripped candidate: solver-backed safety,
// whole-program equivalence, then the kernel checker (post-processing, §6).
// Pure function of its arguments — memoizable by program hash and safe to
// run on any thread.
FinalVerify final_verify(const ebpf::Program& src, const ebpf::Program& out,
                         const CompileOptions& opts) {
  FinalVerify fv;
  safety::SafetyOptions sopt = opts.safety;
  sopt.run_solver_checks = true;
  fv.safe = safety::check_safety(out, sopt).safe;
  if (!fv.safe) return fv;
  fv.verdict = verify::check_equivalence(src, out, opts.eq).verdict;
  if (fv.verdict != verify::Verdict::EQUAL) return fv;
  fv.kc = kernel::kernel_check(out);
  return fv;
}

// This run's contribution to a (possibly shared) cache: counters are
// monotone, so the delta against the entry snapshot is exact as long as no
// other run touches the cache concurrently (the batch layer serializes
// same-cache jobs; a run-local cache starts at zero so the delta is the
// full stats).
verify::EqCache::Stats stats_delta(const verify::EqCache::Stats& after,
                                   const verify::EqCache::Stats& before) {
  verify::EqCache::Stats d;
  d.hits = after.hits - before.hits;
  d.misses = after.misses - before.misses;
  d.insertions = after.insertions - before.insertions;
  d.collisions = after.collisions - before.collisions;
  d.pending_joins = after.pending_joins - before.pending_joins;
  d.pending_abandons = after.pending_abandons - before.pending_abandons;
  d.disk_hits = after.disk_hits - before.disk_hits;
  d.disk_loaded = after.disk_loaded - before.disk_loaded;
  d.disk_writes = after.disk_writes - before.disk_writes;
  return d;
}

}  // namespace

sim::PerfModelKind resolved_perf_model(const CompileOptions& opts) {
  return opts.perf_model.value_or(opts.goal == Goal::LATENCY
                                      ? sim::PerfModelKind::STATIC_LATENCY
                                      : sim::PerfModelKind::INST_COUNT);
}

std::vector<interp::InputSpec> generate_tests(const ebpf::Program& src, int n,
                                              uint64_t seed) {
  // Random packet workload plus deterministic edge cases: a minimum-size
  // packet, an all-zero packet, and empty maps. Always the *default*
  // scenario (bit-identical to the legacy make_workload mix at
  // scenario::kDefaultMapHitRate), never the compile's scenario: the test
  // suite defines correctness, and correctness must not depend on which
  // traffic model the cost stage prices under.
  std::vector<interp::InputSpec> tests = scenario::expand(
      scenario::default_scenario(), src, std::max(1, n - 3), seed);
  interp::InputSpec tiny;
  tiny.packet.assign(14, 0);
  tests.push_back(tiny);
  interp::InputSpec zeros;
  zeros.packet.assign(64, 0);
  zeros.prandom_seed = 0;
  zeros.ktime_base = 0;
  tests.push_back(zeros);
  interp::InputSpec ones;
  ones.packet.assign(64, 0xff);
  ones.ctx_args = {~0ull, 1};
  tests.push_back(ones);
  return tests;
}

CompileResult compile(const ebpf::Program& src, const CompileOptions& opts) {
  return compile(src, opts, CompileServices{});
}

CompileResult compile(const ebpf::Program& src, const CompileOptions& opts,
                      const CompileServices& svc) {
  auto t0 = Clock::now();
  CompileResult res;
  res.best = src.strip_nops();

  sim::PerfModelKind pm_kind = resolved_perf_model(opts);
  opts.scenario.validate_or_throw();
  // TRACE_LATENCY prices candidates against the compile's scenario,
  // expanded here (scenario sits above sim, so the workload is injected
  // rather than built inside the backend). The static backends ignore the
  // workload; the scenario is still recorded for provenance either way.
  std::unique_ptr<sim::PerfModel> perf_model = sim::make_perf_model(
      pm_kind, src,
      scenario::expand(opts.scenario, src, opts.scenario.inputs, opts.seed));
  res.scenario = opts.scenario.name;
  res.scenario_fingerprint = opts.scenario.fingerprint();
  res.src_perf = perf_model->absolute(src);
  res.best_perf = res.src_perf;

  TestSuite suite(src, generate_tests(src, opts.num_initial_tests, opts.seed));

  std::vector<SearchParams> settings =
      opts.settings.empty() ? default_settings() : opts.settings;

  bool use_windows = opts.force_windows
                         ? *opts.force_windows
                         : src.num_real_insns() > opts.window_threshold;

  // Persistent equivalence-cache store (cache_dir). Declared before the
  // cache so write-through appends can never outlive the store. An explicit
  // --cache-dir that cannot be opened fails loudly: silently degrading to
  // cold solving would mask the very misconfiguration the flag exists to
  // catch. An externally-shared cache persists (or not) under its owner's
  // policy — its store was attached before this run began.
  std::optional<verify::CacheStore> local_store;
  verify::CacheStore* store = svc.store;
  if (!store && !svc.cache && !opts.cache_dir.empty()) {
    local_store.emplace();
    std::string err;
    if (!local_store->open(opts.cache_dir, &err))
      throw std::runtime_error("cache_dir '" + opts.cache_dir + "': " + err);
    store = &*local_store;
  }

  // Shared-or-local services (see CompileServices).
  verify::EqCache local_cache;
  verify::EqCache& cache = svc.cache ? *svc.cache : local_cache;
  const verify::EqCache::Stats cache_before = cache.stats();
  if (store && !svc.cache)
    cache.attach_store(
        store, verify::CacheStore::options_fingerprint(opts.eq, use_windows));

  // Remote solver backend (solver_endpoints). Declared before the
  // dispatcher so the backend outlives every in-flight query routed
  // through it (the run-local dispatcher drains on destruction first).
  std::optional<verify::RemoteSolverBackend> local_backend;
  verify::SolverBackend* backend = svc.backend;
  if (!backend && !opts.solver_endpoints.empty()) {
    verify::RemoteSolverBackend::Options bo;
    bo.endpoints = opts.solver_endpoints;
    bo.portfolio = std::max(1, opts.portfolio);
    local_backend.emplace(bo);
    backend = &*local_backend;
  }

  // Dedicated Z3 worker pool (async mode only): separate from the chain
  // thread pool below, because a solver call parks its thread for up to the
  // full per-query budget. Declared before the chains so it outlives every
  // in-flight query; with 0 workers it is inert and chains run the
  // synchronous PR 1 path. An externally-shared dispatcher (batch mode)
  // already outlives the whole batch.
  std::optional<verify::AsyncSolverDispatcher> local_dispatcher;
  if (!svc.dispatcher)
    local_dispatcher.emplace(std::max(0, opts.solver_workers));
  verify::AsyncSolverDispatcher& dispatcher =
      svc.dispatcher ? *svc.dispatcher : *local_dispatcher;

  std::vector<ChainConfig> configs;
  for (int i = 0; i < opts.num_chains; ++i) {
    ChainConfig cfg;
    cfg.params = settings[size_t(i) % settings.size()];
    cfg.goal = opts.goal;
    cfg.rules = opts.rules;
    cfg.iterations = opts.iters_per_chain;
    cfg.seed = opts.seed * 1000003u + uint64_t(i) * 7919u + 17;
    cfg.eq = opts.eq;
    cfg.safety = opts.safety;
    cfg.max_insns = opts.max_insns;
    cfg.exec_backend = opts.exec_backend;
    cfg.use_windows = use_windows;
    cfg.reorder_tests = opts.reorder_tests;
    cfg.early_exit = opts.early_exit;
    cfg.dispatcher = dispatcher.async() ? &dispatcher : nullptr;
    cfg.backend = backend;
    cfg.speculation_depth = opts.speculation_depth;
    cfg.perf_model = perf_model.get();
    cfg.cancel = svc.cancel;
    cfg.progress = svc.progress ? &svc.progress : nullptr;
    cfg.tick_every = svc.tick_every;
    cfg.chain_index = i;
    cfg.budget = svc.budget;
    configs.push_back(cfg);
  }

  // Chain execution. Parallel mode: one work-stealing pool drives both the
  // Markov chains and the final top-k re-verification below. Sequential
  // mode (batch jobs): chains run in index order on this thread, so the
  // shared suite and cache evolve identically on every same-seed run — the
  // batch layer parallelizes across jobs instead.
  std::vector<ChainResult> chain_results(configs.size());
  std::optional<pipeline::ThreadPool> local_pool;
  pipeline::ThreadPool* pool = nullptr;
  int nthreads = 1;
  if (svc.sequential) {
    for (size_t i = 0; i < configs.size(); ++i) {
      if (svc.cancel && svc.cancel->load(std::memory_order_relaxed)) break;
      if (svc.budget && svc.budget->exhausted()) break;
      chain_results[i] = run_chain(src, suite, cache, configs[i]);
    }
  } else {
    if (svc.pool) {
      pool = svc.pool;
    } else {
      local_pool.emplace(
          std::max(1, std::min<int>(opts.threads, int(configs.size()))));
      pool = &*local_pool;
    }
    nthreads = pool->size();
    std::vector<std::function<void()>> tasks;
    for (size_t i = 0; i < configs.size(); ++i)
      tasks.push_back([&, i]() {
        chain_results[i] = run_chain(src, suite, cache, configs[i]);
      });
    pool->run_all(std::move(tasks));
  }

  // Gather verified candidates across chains, best first.
  std::vector<std::pair<double, ebpf::Program>> all;
  for (const auto& cr : chain_results) {
    res.total_proposals += cr.stats.proposals;
    res.solver_calls += cr.stats.solver_calls;
    res.early_exits += cr.stats.early_exits;
    res.tests_executed += cr.stats.tests_executed;
    res.tests_skipped += cr.stats.tests_skipped;
    res.speculations += cr.stats.speculations;
    res.pending_joins += cr.stats.pending_joins;
    res.rollbacks += cr.stats.rollbacks;
    res.discarded_proposals += cr.stats.discarded_proposals;
    res.jit_bailouts += cr.stats.jit_bailouts;
    for (const auto& c : cr.candidates) all.push_back(c);
  }
  if (!svc.dispatcher) {
    // Dispatcher-level counters are only meaningful per run when the
    // dispatcher is run-local; a shared dispatcher aggregates across every
    // sharing run and is reported batch-wide by its owner.
    verify::AsyncSolverDispatcher::Stats ds = dispatcher.stats();
    res.solver_queue_peak = ds.queue_peak;
    res.solver_timeouts = ds.timeouts;
    res.solver_abandoned = ds.abandoned;
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Final verification of the gathered candidates. The consumer loop below
  // replays the exact sequential control flow (skip filter, dedup, early
  // break at top_k) in both modes; fetch(i) hides where the FinalVerify
  // comes from:
  //
  //  * Parallel mode: expensive checks are dispatched to the pool
  //    speculatively, a bounded window ahead of the consumer, and memoized
  //    by program hash — results and counters match a serial run,
  //    speculation only moves solver time onto idle workers.
  //  * Sequential mode: computed inline (memoized by hash), keeping the
  //    run single-threaded and deterministic.
  //
  // Canonicalization is lazy and memoized: the consumer usually breaks at
  // top_k after a few candidates, so most entries are never needed.
  std::vector<std::optional<ebpf::Program>> outs(all.size());
  std::vector<uint64_t> hashes(all.size(), 0);
  auto ensure_out = [&](size_t idx) -> const ebpf::Program& {
    if (!outs[idx]) {
      outs[idx] = analysis::remove_dead_code(all[idx].second).strip_nops();
      hashes[idx] = analysis::program_hash(*outs[idx]);
    }
    return *outs[idx];
  };

  // Parallel-mode machinery. `cancelled` turns still-queued speculative
  // tasks into no-ops, and the drain guard keeps every submitted task's
  // referents (`outs`, `src`, `opts`) alive until the task has actually run
  // — the pool's destructor executes leftover queued work, which must not
  // touch freed locals. An RAII guard rather than straight-line code so the
  // drain also happens when a task exception (e.g. z3::exception) unwinds
  // through get(). Both are inert in sequential mode.
  std::atomic<bool> cancelled{false};
  std::unordered_map<uint64_t, std::shared_future<FinalVerify>> memo;
  std::unordered_map<uint64_t, FinalVerify> seq_memo;
  struct MemoDrain {
    std::atomic<bool>& cancelled;
    std::unordered_map<uint64_t, std::shared_future<FinalVerify>>& memo;
    ~MemoDrain() {
      cancelled.store(true, std::memory_order_release);
      for (auto& [h, fut] : memo)
        if (fut.valid()) fut.wait();
    }
  } drain{cancelled, memo};
  auto ensure_submitted = [&](size_t idx) {
    ensure_out(idx);
    uint64_t h = hashes[idx];
    if (memo.count(h)) return;
    const ebpf::Program& out = *outs[idx];
    memo.emplace(h, pool->submit([&src, &out, &opts, &cancelled]() {
                        if (cancelled.load(std::memory_order_acquire))
                          return FinalVerify{};
                        return final_verify(src, out, opts);
                      }).share());
  };

  const size_t lookahead = size_t(nthreads);
  auto fetch = [&](size_t idx) -> FinalVerify {
    if (svc.sequential) {
      uint64_t h = hashes[idx];
      auto it = seq_memo.find(h);
      if (it == seq_memo.end())
        it = seq_memo.emplace(h, final_verify(src, *outs[idx], opts)).first;
      return it->second;
    }
    ensure_submitted(idx);
    for (size_t j = idx + 1, ahead = 1; j < all.size() && ahead < lookahead;
         ++j, ++ahead)
      ensure_submitted(j);
    return memo.at(hashes[idx]).get();
  };

  std::vector<uint64_t> seen_hashes;
  for (size_t i = 0; i < all.size(); ++i) {
    // Cancellation checkpoint: each remaining candidate costs up to a full
    // Z3 re-verification. top_k keeps only candidates already verified.
    if (svc.cancel && svc.cancel->load(std::memory_order_relaxed)) break;
    if (int(res.top_k.size()) >= opts.top_k) break;
    const ebpf::Program& out = ensure_out(i);
    if (out.size_slots() >= res.src_perf &&
        pm_kind == sim::PerfModelKind::INST_COUNT && !res.top_k.empty())
      continue;
    uint64_t h = hashes[i];
    if (std::find(seen_hashes.begin(), seen_hashes.end(), h) !=
        seen_hashes.end())
      continue;
    seen_hashes.push_back(h);

    FinalVerify fv = fetch(i);
    if (!fv.safe) continue;
    if (fv.verdict != verify::Verdict::EQUAL) continue;
    if (!fv.kc.accepted) {
      res.kernel_rejected++;
      continue;
    }
    res.kernel_accepted++;
    res.top_k.push_back(out);
  }

  if (!res.top_k.empty()) {
    double bp = perf_model->absolute(res.top_k[0]);
    if (bp < res.src_perf) {
      res.best = res.top_k[0];
      res.best_perf = bp;
      res.improved = true;
      // Attribute time/iterations to the chain that found this program.
      for (const auto& cr : chain_results) {
        if (!cr.best) continue;
        for (const auto& [perf, cand] : cr.candidates) {
          (void)perf;
          if (analysis::program_hash(
                  analysis::remove_dead_code(cand).strip_nops()) ==
              analysis::program_hash(res.best)) {
            res.iters_to_best = cr.stats.best_iter;
            res.secs_to_best = cr.stats.best_time_sec;
          }
        }
      }
    }
  }

  res.cancelled =
      svc.cancel && svc.cancel->load(std::memory_order_relaxed);
  res.budget_exhausted = svc.budget && svc.budget->exhausted();
  res.cache = stats_delta(cache.stats(), cache_before);
  res.final_tests = suite.size();
  res.total_secs = std::chrono::duration<double>(Clock::now() - t0).count();
  return res;
}

}  // namespace k2::core
