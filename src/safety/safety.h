// K2's internal safety checker (§6): static control-flow and typing checks
// plus first-order-logic queries for path-sensitive properties (packet
// bounds, stack read-before-write). Unsafe programs come back with a safety
// *counterexample* input whenever the violation was established by the
// solver — the search loop adds it to the test suite so similar candidates
// are pruned by the interpreter instead of the solver (§6, "to our
// knowledge, K2 is the first to leverage counterexamples for both
// correctness and safety during synthesis").
#pragma once

#include <optional>
#include <string>

#include "ebpf/program.h"
#include "interp/state.h"
#include "verify/encoder.h"

namespace k2::safety {

struct SafetyOptions {
  verify::EncoderOpts enc;
  unsigned timeout_ms = 10000;
  bool run_solver_checks = true;  // static-only mode for quick pruning
};

struct SafetyResult {
  bool safe = false;
  std::string reason;   // first violation, empty when safe
  int insn = -1;
  std::optional<interp::InputSpec> cex;  // input exhibiting the violation
};

SafetyResult check_safety(const ebpf::Program& prog,
                          const SafetyOptions& opts = {});

}  // namespace k2::safety
