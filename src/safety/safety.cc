#include "safety/safety.h"

#include "analysis/cfg.h"
#include "analysis/liveness.h"
#include "analysis/typeinfer.h"
#include "ebpf/helpers_def.h"
#include "verify/eqchecker.h"

namespace k2::safety {

namespace {

using analysis::Rt;
using ebpf::AluOp;
using ebpf::AluShape;
using ebpf::Insn;
using ebpf::InsnClass;
using ebpf::Opcode;
using interp::Machine;

struct Violation {
  std::string reason;
  int insn;
};

// ---- Static checks (§6: control flow safety, typing, alignment,
// checker-specific constraints) ------------------------------------------

std::optional<Violation> static_checks(const ebpf::Program& prog,
                                       const analysis::Cfg& cfg,
                                       const analysis::TypeInfo& ti) {
  const int n = int(prog.insns.size());

  if (auto err = ebpf::validate_structure(prog))
    return Violation{*err, 0};
  if (!cfg.loop_free)
    return Violation{"control flow contains a back-edge (potential loop)", 0};
  for (int b = 0; b < cfg.num_blocks(); ++b) {
    const auto& blk = cfg.blocks[size_t(b)];
    if (blk.start == blk.end) continue;
    if (!cfg.reachable[size_t(b)]) {
      // NOPs are stripped from outputs; a block of pure NOPs is not "code".
      bool all_nop = true;
      for (int i = blk.start; i < blk.end; ++i)
        if (prog.insns[size_t(i)].op != Opcode::NOP) all_nop = false;
      if (!all_nop)
        return Violation{"unreachable basic block", blk.start};
      continue;
    }
    // Every path must terminate at an EXIT: falling off the end is unsafe.
    const Insn& last = prog.insns[size_t(blk.end - 1)];
    if (blk.end == n && last.op != Opcode::EXIT && last.op != Opcode::JA &&
        !ebpf::is_cond_jump(last.op))
      return Violation{"control flow falls off the end", blk.end - 1};
    if (blk.end == n && ebpf::is_cond_jump(last.op))
      return Violation{"conditional fall-through off the end", blk.end - 1};
  }

  for (int i = 0; i < n; ++i) {
    const Insn& insn = prog.insns[size_t(i)];
    if (insn.op == Opcode::NOP) continue;
    int b = cfg.block_of[size_t(i)];
    if (b < 0 || !cfg.reachable[size_t(b)]) continue;
    const analysis::RegFile& rf = ti.before[size_t(i)];

    // r10 is read-only.
    if (ebpf::def_mask(insn) & (1u << 10))
      return Violation{"write to read-only register r10", i};

    // Uninitialized register reads (covers r1..r5 after helper calls, §6
    // checker-specific property 3).
    uint16_t uses = ebpf::use_mask(insn);
    if (insn.op == Opcode::CALL) {
      const ebpf::HelperProto* proto = ebpf::helper_proto(insn.imm);
      if (!proto) return Violation{"unknown helper", i};
      uses = 0;
      for (int r = 1; r <= proto->nargs; ++r) uses |= uint16_t(1u << r);
    }
    for (int r = 0; r <= 10; ++r)
      if ((uses & (1u << r)) && rf[size_t(r)].type == Rt::UNINIT)
        return Violation{
            "read of uninitialized register r" + std::to_string(r), i};

    // ALU restrictions on pointers (§6 checker-specific property 1): only
    // 64-bit ADD/SUB/MOV may touch pointer values.
    AluShape a;
    if (ebpf::decompose_alu(insn.op, &a)) {
      bool dst_ptr = analysis::is_pointer(rf[insn.dst].type);
      bool src_ptr = !a.is_imm && analysis::is_pointer(rf[insn.src].type);
      bool allowed64 = a.is64 && (a.op == AluOp::ADD || a.op == AluOp::SUB ||
                                  a.op == AluOp::MOV);
      if ((dst_ptr || src_ptr) && !allowed64)
        return Violation{"forbidden ALU operation on pointer", i};
      // Pointer arithmetic must keep a trackable offset; adding two pointers
      // or subtracting pointers of different regions is rejected.
      if (dst_ptr && src_ptr && a.op == AluOp::ADD)
        return Violation{"pointer + pointer arithmetic", i};
      if (dst_ptr && src_ptr && a.op == AluOp::SUB &&
          rf[insn.dst].type != rf[insn.src].type)
        return Violation{"subtraction of pointers to different regions", i};
    }
    if ((insn.op == Opcode::NEG64 || insn.op == Opcode::NEG32 ||
         ebpf::insn_class(insn.op) == InsnClass::ALU) &&
        !ebpf::decompose_alu(insn.op, &a)) {
      if (analysis::is_pointer(rf[insn.dst].type))
        return Violation{"unary ALU on pointer", i};
    }

    // Memory access typing.
    if (ebpf::is_mem_access(insn.op)) {
      auto info = analysis::access_info(prog, ti, i);
      int w = ebpf::mem_width(insn.op);
      switch (info->region) {
        case Rt::PTR_STACK:
          if (!info->off_known)
            return Violation{"stack access at unknown offset", i};
          if (info->off < -analysis::kStackSize || info->off + w > 0)
            return Violation{"stack access out of bounds", i};
          // The checker mandates size-aligned stack accesses (§2.2 ex. 2).
          if (info->off % w != 0)
            return Violation{"misaligned stack access", i};
          break;
        case Rt::PTR_CTX:
          if (ebpf::is_mem_store(insn.op))
            return Violation{"store to context memory", i};  // §6 property 2
          if (!info->off_known || info->off < 0 || info->off + w > 16 ||
              info->off % w != 0)
            return Violation{"bad context access", i};
          break;
        case Rt::PTR_PKT:
          if (prog.type == ebpf::ProgType::TRACEPOINT)
            return Violation{"packet access in tracepoint program", i};
          break;  // bounds checked by the solver (path-sensitive)
        case Rt::PTR_MAP_VALUE: {
          if (!info->off_known)
            return Violation{"map value access at unknown offset", i};
          int vsize = info->map_fd >= 0 &&
                              info->map_fd < int(prog.maps.size())
                          ? int(prog.maps[size_t(info->map_fd)].value_size)
                          : 0;
          if (info->off < 0 || info->off + w > vsize)
            return Violation{"map value access out of bounds", i};
          break;
        }
        case Rt::PTR_MAP_VALUE_OR_NULL:
          return Violation{"possibly-NULL map value dereference", i};
        default:
          return Violation{std::string("memory access via ") +
                               analysis::rt_name(info->region),
                           i};
      }
    }

    // Helper argument typing.
    if (insn.op == Opcode::CALL) {
      const ebpf::HelperProto* proto = ebpf::helper_proto(insn.imm);
      if (proto->reads_map_fd) {
        if (rf[1].type != Rt::MAP_HANDLE || rf[1].map_fd < 0 ||
            rf[1].map_fd >= int(prog.maps.size()))
          return Violation{"helper requires a map handle in r1", i};
      }
      auto ptr_arg = [&](int r) -> std::optional<Violation> {
        const analysis::RegState& rs = rf[size_t(r)];
        if (rs.type != Rt::PTR_STACK && rs.type != Rt::PTR_PKT &&
            rs.type != Rt::PTR_MAP_VALUE)
          return Violation{"helper pointer argument r" + std::to_string(r) +
                               " has wrong type",
                           i};
        if (rs.type == Rt::PTR_STACK && !rs.off_known)
          return Violation{"helper stack argument at unknown offset", i};
        return std::nullopt;
      };
      switch (insn.imm) {
        case ebpf::HELPER_MAP_LOOKUP:
        case ebpf::HELPER_MAP_DELETE:
          if (auto v = ptr_arg(2)) return v;
          break;
        case ebpf::HELPER_MAP_UPDATE:
          if (auto v = ptr_arg(2)) return v;
          if (auto v = ptr_arg(3)) return v;
          break;
        case ebpf::HELPER_CSUM_DIFF: {
          if (auto v = ptr_arg(1)) return v;
          if (auto v = ptr_arg(3)) return v;
          break;
        }
        case ebpf::HELPER_XDP_ADJUST_HEAD:
          if (rf[1].type != Rt::PTR_CTX)
            return Violation{"adjust_head requires ctx in r1", i};
          break;
        default:
          break;
      }
    }

    // Pointer leak: r0 must be a scalar at exit (§6).
    if (insn.op == Opcode::EXIT && analysis::is_pointer(rf[0].type))
      return Violation{"pointer leak: r0 holds a pointer at exit", i};
  }
  return std::nullopt;
}

}  // namespace

SafetyResult check_safety(const ebpf::Program& prog,
                          const SafetyOptions& opts) {
  SafetyResult res;
  analysis::Cfg cfg = analysis::build_cfg(prog);
  analysis::TypeInfo ti = analysis::infer_types(prog, cfg);
  if (!ti.ok) {
    res.reason = "type inference failed (backward control flow?)";
    return res;
  }

  if (auto v = static_checks(prog, cfg, ti)) {
    res.reason = v->reason;
    res.insn = v->insn;
    return res;
  }
  if (!opts.run_solver_checks) {
    res.safe = true;
    return res;
  }

  // ---- Solver-backed checks: packet bounds (path-sensitive) and stack
  // read-before-write (§6). ------------------------------------------------
  z3::context c;
  verify::World world(c, prog, opts.enc);
  std::vector<z3::expr> witness;
  for (size_t fd = 0; fd < prog.maps.size(); ++fd)
    witness.push_back(world.fresh_bv("sk" + std::to_string(fd),
                                     prog.maps[fd].key_size * 8));
  verify::Encoded enc = verify::encode_program(world, prog, "safety", witness);
  if (!enc.ok) {
    res.reason = "not encodable: " + enc.error;
    res.insn = enc.error_insn;
    return res;
  }

  z3::solver s(c);
  z3::params p(c);
  p.set("timeout", opts.timeout_ms);
  s.set(p);
  for (const auto& a : world.axioms) s.add(a);
  for (const auto& d : enc.defs) s.add(d);

  const uint64_t data0 = Machine::kPacketBase + Machine::kHeadroom;
  z3::expr data_end = c.bv_val(data0, 64) + world.pkt_len;
  auto check_violation = [&](const z3::expr& cond, const std::string& why,
                             int insn) -> bool {
    s.push();
    s.add(cond);
    z3::check_result r = s.check();
    if (r == z3::sat) {
      res.reason = why;
      res.insn = insn;
      z3::model m = s.get_model();
      res.cex = verify::input_from_model(world, m);
      s.pop();
      return true;
    }
    if (r == z3::unknown) {
      res.reason = why + " (solver gave up; rejecting conservatively)";
      res.insn = insn;
      s.pop();
      return true;
    }
    s.pop();
    return false;
  };

  for (const verify::AccessRecord& ar : enc.accesses) {
    if (ar.region != Rt::PTR_PKT) continue;  // others are statically checked
    z3::expr lo = enc.has_adjust_head ? c.bv_val(Machine::kPacketBase, 64)
                                      : c.bv_val(data0, 64);
    z3::expr in_bounds =
        z3::uge(ar.addr, lo) &&
        z3::ule(ar.addr + c.bv_val(uint64_t(ar.width), 64), data_end);
    if (check_violation(ar.pc && !in_bounds,
                        "packet access may be out of bounds", ar.insn_idx))
      return res;
  }
  for (const auto& [insn, cond] : enc.uncovered_stack_reads) {
    if (check_violation(cond, "stack read before write", insn)) return res;
  }

  res.safe = true;
  return res;
}

}  // namespace k2::safety
