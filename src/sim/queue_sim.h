// Discrete-event simulation of the single-core XDP datapath — the repo's
// substitute for the paper's CloudLab testbed (T-Rex traffic generator +
// Mellanox CX-4 DUT, Fig. 2 of the paper; see DESIGN.md §1).
//
// Model: Poisson packet arrivals at an offered load, a finite RX descriptor
// ring (drop-tail), and deterministic per-packet service time obtained from
// the interpreter + latency model. This is an M/D/1/K queue; it reproduces
// the latency-vs-load curve shape the paper measures (flat at low load, a
// knee near capacity, saturation at the ring-bound latency) and the MLFFR
// (RFC 2544) methodology: the largest offered load with (near-)zero loss.
#pragma once

#include <cstdint>

namespace k2::sim {

struct LoadPoint {
  double offered_mpps = 0;
  double throughput_mpps = 0;
  double avg_latency_us = 0;
  double drop_rate = 0;  // fraction of packets dropped
};

struct QueueSimOptions {
  uint32_t ring_size = 512;       // RX descriptor ring (drop-tail)
  uint64_t packets = 200'000;     // simulated packets per measurement
  uint64_t warmup = 10'000;       // ignored for statistics
  uint64_t seed = 0x5eed;
};

// Simulates one offered load (millions of packets per second) against a
// deterministic per-packet service time (nanoseconds).
LoadPoint simulate_load(double service_ns, double offered_mpps,
                        const QueueSimOptions& opts = {});

// Maximum loss-free forwarding rate (RFC 2544): binary search for the
// largest offered load whose drop rate stays below `loss_tolerance`.
double find_mlffr(double service_ns, double loss_tolerance = 0.001,
                  const QueueSimOptions& opts = {});

}  // namespace k2::sim
