#include "sim/queue_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <random>

namespace k2::sim {

LoadPoint simulate_load(double service_ns, double offered_mpps,
                        const QueueSimOptions& opts) {
  LoadPoint res;
  res.offered_mpps = offered_mpps;
  if (offered_mpps <= 0 || service_ns <= 0) return res;

  std::mt19937_64 rng(opts.seed);
  const double mean_interarrival_ns = 1000.0 / offered_mpps;  // ns per pkt
  std::exponential_distribution<double> exp_dist(1.0 / mean_interarrival_ns);

  // FIFO single server with a drop-tail ring: a packet arriving when
  // `ring_size` packets are still in the system is dropped.
  std::deque<double> departures;  // departure times of in-flight packets
  double now = 0;
  double server_free_at = 0;
  uint64_t arrived = 0, dropped = 0, served = 0;
  double latency_sum = 0;
  uint64_t measured = 0;

  for (uint64_t i = 0; i < opts.packets; ++i) {
    now += exp_dist(rng);
    arrived++;
    while (!departures.empty() && departures.front() <= now)
      departures.pop_front();
    if (departures.size() >= opts.ring_size) {
      dropped++;
      continue;
    }
    double start = std::max(now, server_free_at);
    double depart = start + service_ns;
    server_free_at = depart;
    departures.push_back(depart);
    served++;
    if (i >= opts.warmup) {
      latency_sum += depart - now;
      measured++;
    }
  }

  res.drop_rate = arrived ? double(dropped) / double(arrived) : 0;
  res.throughput_mpps = now > 0 ? double(served) * 1000.0 / now : 0;
  res.avg_latency_us = measured ? latency_sum / double(measured) / 1000.0 : 0;
  return res;
}

double find_mlffr(double service_ns, double loss_tolerance,
                  const QueueSimOptions& opts) {
  // Capacity bound: 1/service. Binary-search offered load below it.
  double hi = 1000.0 / service_ns * 1.05;
  double lo = 0.01;
  for (int iter = 0; iter < 18; ++iter) {
    double mid = 0.5 * (lo + hi);
    LoadPoint p = simulate_load(service_ns, mid, opts);
    if (p.drop_rate <= loss_tolerance)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace k2::sim
