// Trace-based per-packet cost: run a program over a workload in the
// interpreter, price every executed instruction with the latency model, and
// average. This is the "measured" side of the evaluation (Tables 2/3,
// Fig. 2): where the paper runs the XDP program on hardware under T-Rex
// load, we run it in the interpreter under a synthetic packet workload.
#pragma once

#include <vector>

#include "ebpf/program.h"
#include "interp/state.h"

namespace k2::sim {

// Deterministic synthetic workload for a program: `n` packet inputs with
// varying sizes/headers plus map pre-population so lookups hit ~hit_rate.
std::vector<interp::InputSpec> make_workload(const ebpf::Program& prog,
                                             int n, uint64_t seed,
                                             double hit_rate = 0.75);

// Average per-packet service time (ns), including the fixed driver
// overhead. Faulting inputs are skipped (safe programs never fault).
double avg_packet_cost_ns(const ebpf::Program& prog,
                          const std::vector<interp::InputSpec>& workload);

}  // namespace k2::sim
