// Trace-based per-packet cost: run a program over a workload in the
// interpreter, price every executed instruction with the latency model, and
// average. This is the "measured" side of the evaluation (Tables 2/3,
// Fig. 2): where the paper runs the XDP program on hardware under T-Rex
// load, we run it in the interpreter under a synthetic packet workload.
#pragma once

#include <vector>

#include "ebpf/program.h"
#include "interp/state.h"

namespace k2::sim {

// Deterministic synthetic workload for a program: `n` packet inputs with
// varying sizes/headers plus map pre-population so lookups hit ~hit_rate.
std::vector<interp::InputSpec> make_workload(const ebpf::Program& prog,
                                             int n, uint64_t seed,
                                             double hit_rate = 0.75);

// Average per-packet service time (ns), including the fixed driver
// overhead. Faulting inputs are skipped (safe programs never fault).
double avg_packet_cost_ns(const ebpf::Program& prog,
                          const std::vector<interp::InputSpec>& workload);

// Same, but reusing caller-owned machine state across the workload runs so
// hot-path callers (the TRACE_LATENCY perf-model backend) pay no per-call
// machine construction.
double avg_packet_cost_ns(const ebpf::Program& prog,
                          const std::vector<interp::InputSpec>& workload,
                          interp::Machine& m);

// Same, but charging `fault_cost_ns` for every faulting input instead of
// skipping it. The skip-faults variants above assume verified programs
// (Tables 2/3: faults cannot happen); this one is for pricing *unverified*
// candidates — skipping faults there would reward fault-introducing
// mutations with a lower (even zero) average.
double avg_packet_cost_ns(const ebpf::Program& prog,
                          const std::vector<interp::InputSpec>& workload,
                          interp::Machine& m, double fault_cost_ns);

}  // namespace k2::sim
