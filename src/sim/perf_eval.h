// Trace-based per-packet cost: run a program over a workload in the
// interpreter, price every executed instruction with the latency model, and
// average. This is the "measured" side of the evaluation (Tables 2/3,
// Fig. 2): where the paper runs the XDP program on hardware under T-Rex
// load, we run it in the interpreter under a synthetic packet workload.
#pragma once

#include <vector>

#include "ebpf/program.h"
#include "interp/state.h"

namespace k2::sim {

// Deterministic synthetic workload for a program: `n` packet inputs with
// varying sizes/headers plus map pre-population so lookups hit ~hit_rate.
// The default matches scenario::kDefaultMapHitRate (0.7): historically this
// header declared 0.75 while the test-suite generator in core/compiler.cc
// passed 0.7, so the search and the TRACE_LATENCY estimator disagreed about
// map state. The constant is centralized in the scenario subsystem (the
// `default` scenario expands bit-identically to this function) and 0.7 won
// because it is what the search always used; tests/scenario_test.cc pins
// the agreement.
std::vector<interp::InputSpec> make_workload(const ebpf::Program& prog,
                                             int n, uint64_t seed,
                                             double hit_rate = 0.7);

// Average per-packet service time (ns), including the fixed driver
// overhead. Faulting inputs are skipped (safe programs never fault).
double avg_packet_cost_ns(const ebpf::Program& prog,
                          const std::vector<interp::InputSpec>& workload);

// Same, but reusing caller-owned machine state across the workload runs so
// hot-path callers (the TRACE_LATENCY perf-model backend) pay no per-call
// machine construction.
double avg_packet_cost_ns(const ebpf::Program& prog,
                          const std::vector<interp::InputSpec>& workload,
                          interp::Machine& m);

// Same, but charging `fault_cost_ns` for every faulting input instead of
// skipping it. The skip-faults variants above assume verified programs
// (Tables 2/3: faults cannot happen); this one is for pricing *unverified*
// candidates — skipping faults there would reward fault-introducing
// mutations with a lower (even zero) average.
double avg_packet_cost_ns(const ebpf::Program& prog,
                          const std::vector<interp::InputSpec>& workload,
                          interp::Machine& m, double fault_cost_ns);

}  // namespace k2::sim
