// Per-opcode latency model (§3.2): the paper profiles every BPF opcode by
// executing it millions of times on the target and uses the per-opcode
// average exec(i) to estimate candidate latency (running candidates in the
// kernel is impossible — the checker would reject most of them).
//
// We calibrate the table to x86_64-JIT-like costs on the paper's 2.4 GHz
// Broadwell DUT (1 cycle ≈ 0.42 ns): single-cycle ALU, multi-cycle
// multiply/divide, L1-hit loads, and measured-scale helper costs (hash-map
// lookup dominated by hashing + bucket walk, etc.). Absolute numbers are
// synthetic; the *relative* ordering across opcodes matches the hardware,
// which is what the latency cost function needs.
#pragma once

#include "ebpf/program.h"

namespace k2::sim {

// Estimated execution cost of one instruction in nanoseconds. CALL costs
// depend on the helper (imm).
double insn_cost_ns(const ebpf::Insn& insn);

// The paper's perf_lat(p): sum of exec(i) over all (non-NOP) instructions,
// a purely static estimate used inside the search loop.
double static_program_cost_ns(const ebpf::Program& prog);

// Fixed per-packet driver/XDP dispatch overhead added on top of program
// execution when simulating the testbed (RX descriptor handling, ...).
constexpr double kDriverOverheadNs = 180.0;

}  // namespace k2::sim
