#include "sim/perf_eval.h"

#include <random>

#include "interp/interpreter.h"
#include "sim/latency_model.h"

namespace k2::sim {

std::vector<interp::InputSpec> make_workload(const ebpf::Program& prog,
                                             int n, uint64_t seed,
                                             double hit_rate) {
  std::vector<interp::InputSpec> out;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> len_dist(60, 94);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int i = 0; i < n; ++i) {
    interp::InputSpec in;
    int len = len_dist(rng);
    in.packet.resize(size_t(len));
    // Plausible Ethernet/IPv4/UDP scaffold with randomized addresses/ports.
    for (auto& b : in.packet) b = uint8_t(byte_dist(rng));
    in.packet[12] = 0x08;  // ethertype IPv4
    in.packet[13] = 0x00;
    in.packet[14] = 0x45;  // IPv4, IHL 5
    in.packet[23] = 17;    // UDP
    in.prandom_seed = rng();
    in.ktime_base = 1'000'000'000ull + (rng() & 0xffffff);
    in.cpu_id = uint32_t(rng() % 8);
    in.ctx_args[0] = rng() & 0xffff;
    in.ctx_args[1] = rng() & 0xffff;
    // Pre-populate maps so roughly hit_rate of lookups succeed. Keys are
    // drawn from the bytes programs typically use (packet header fields /
    // small indices); seeding both small indices and random keys covers
    // array and hash maps.
    for (size_t fd = 0; fd < prog.maps.size(); ++fd) {
      const ebpf::MapDef& def = prog.maps[fd];
      if (unit(rng) > hit_rate && def.kind == ebpf::MapKind::HASH) continue;
      int entries = def.kind == ebpf::MapKind::HASH ? 4 : 0;
      for (int e = 0; e < entries; ++e) {
        interp::MapEntryInit me;
        me.key.resize(def.key_size);
        uint64_t kv = (e == 0) ? 0 : rng() % 256;
        // kv < 256, so bytes past the first are zero; the b < 8 guard keeps
        // the shift defined for key_size > 8 (scenario::expand matches).
        for (uint32_t b = 0; b < def.key_size; ++b)
          me.key[b] = b < 8 ? uint8_t((kv >> (8 * b)) & 0xff) : 0;
        me.value.resize(def.value_size);
        for (auto& b : me.value) b = uint8_t(byte_dist(rng));
        in.maps[int(fd)].push_back(std::move(me));
      }
    }
    out.push_back(std::move(in));
  }
  return out;
}

namespace {

// fault_cost_ns < 0 skips faulting inputs (verified-program averaging);
// >= 0 charges them that cost (unverified-candidate pricing).
template <typename RunFn>
double avg_packet_cost_impl(const ebpf::Program& prog,
                            const std::vector<interp::InputSpec>& workload,
                            RunFn&& run_one, double fault_cost_ns) {
  double total = 0;
  uint64_t counted = 0;
  for (const auto& in : workload) {
    interp::RunResult r = run_one(in);
    if (!r.ok()) {
      if (fault_cost_ns < 0) continue;
      total += fault_cost_ns;
      counted++;
      continue;
    }
    double cost = kDriverOverheadNs;
    for (uint32_t idx : r.trace) cost += insn_cost_ns(prog.insns[idx]);
    total += cost;
    counted++;
  }
  if (counted == 0) return 0;
  return total / double(counted);
}

}  // namespace

double avg_packet_cost_ns(const ebpf::Program& prog,
                          const std::vector<interp::InputSpec>& workload) {
  interp::RunOptions ropt;
  ropt.record_trace = true;
  return avg_packet_cost_impl(
      prog, workload,
      [&](const interp::InputSpec& in) { return interp::run(prog, in, ropt); },
      /*fault_cost_ns=*/-1);
}

double avg_packet_cost_ns(const ebpf::Program& prog,
                          const std::vector<interp::InputSpec>& workload,
                          interp::Machine& m) {
  interp::RunOptions ropt;
  ropt.record_trace = true;
  return avg_packet_cost_impl(
      prog, workload,
      [&](const interp::InputSpec& in) {
        return interp::run(prog, in, ropt, m);
      },
      /*fault_cost_ns=*/-1);
}

double avg_packet_cost_ns(const ebpf::Program& prog,
                          const std::vector<interp::InputSpec>& workload,
                          interp::Machine& m, double fault_cost_ns) {
  interp::RunOptions ropt;
  ropt.record_trace = true;
  return avg_packet_cost_impl(
      prog, workload,
      [&](const interp::InputSpec& in) {
        return interp::run(prog, in, ropt, m);
      },
      fault_cost_ns);
}

}  // namespace k2::sim
