#include "sim/latency_model.h"

#include "ebpf/helpers_def.h"

namespace k2::sim {

namespace {

constexpr double kCycle = 0.42;  // ns per cycle at 2.4 GHz

double helper_cost_ns(int64_t id) {
  switch (id) {
    case ebpf::HELPER_MAP_LOOKUP: return 28.0;   // hash + bucket walk
    case ebpf::HELPER_MAP_UPDATE: return 42.0;
    case ebpf::HELPER_MAP_DELETE: return 35.0;
    case ebpf::HELPER_KTIME_GET_NS: return 14.0; // clock read
    case ebpf::HELPER_GET_PRANDOM_U32: return 9.0;
    case ebpf::HELPER_GET_SMP_PROC_ID: return 3.0;
    case ebpf::HELPER_CSUM_DIFF: return 18.0;
    case ebpf::HELPER_XDP_ADJUST_HEAD: return 11.0;
    case ebpf::HELPER_REDIRECT_MAP: return 22.0;
    default: return 20.0;
  }
}

}  // namespace

double insn_cost_ns(const ebpf::Insn& insn) {
  using ebpf::AluOp;
  using ebpf::Opcode;
  ebpf::AluShape a;
  if (ebpf::decompose_alu(insn.op, &a)) {
    switch (a.op) {
      case AluOp::MUL: return 3 * kCycle;
      case AluOp::DIV:
      case AluOp::MOD: return 22 * kCycle;
      default: return 1 * kCycle;
    }
  }
  if (ebpf::is_cond_jump(insn.op)) return 1.5 * kCycle;  // branch + predictor
  switch (insn.op) {
    case Opcode::JA: return 1 * kCycle;
    case Opcode::NEG64:
    case Opcode::NEG32:
    case Opcode::LE16:
    case Opcode::LE32:
    case Opcode::LE64: return 1 * kCycle;
    case Opcode::BE16:
    case Opcode::BE32:
    case Opcode::BE64: return 1.5 * kCycle;  // bswap
    case Opcode::LDXB:
    case Opcode::LDXH:
    case Opcode::LDXW:
    case Opcode::LDXDW: return 4 * kCycle;   // L1 hit
    case Opcode::STXB:
    case Opcode::STXH:
    case Opcode::STXW:
    case Opcode::STXDW:
    case Opcode::STB:
    case Opcode::STH:
    case Opcode::STW:
    case Opcode::STDW: return 2 * kCycle;    // store buffer
    case Opcode::XADD32:
    case Opcode::XADD64: return 17 * kCycle; // locked RMW
    case Opcode::CALL: return helper_cost_ns(insn.imm);
    case Opcode::LDDW:
    case Opcode::LDMAPFD: return 1 * kCycle;
    case Opcode::EXIT: return 2 * kCycle;
    case Opcode::NOP: return 0;
    default: return 1 * kCycle;
  }
}

double static_program_cost_ns(const ebpf::Program& prog) {
  double total = 0;
  for (const auto& insn : prog.insns) total += insn_cost_ns(insn);
  return total;
}

}  // namespace k2::sim
