#include "sim/perf_model.h"

#include <cstring>
#include <stdexcept>

#include "interp/interpreter.h"
#include "sim/latency_model.h"
#include "sim/perf_eval.h"

namespace k2::sim {

const char* to_string(PerfModelKind kind) {
  switch (kind) {
    case PerfModelKind::INST_COUNT:
      return "insts";
    case PerfModelKind::STATIC_LATENCY:
      return "static-latency";
    case PerfModelKind::TRACE_LATENCY:
      return "latency";
  }
  return "?";
}

bool perf_model_kind_from_string(const char* name, PerfModelKind* out) {
  if (!name || !out) return false;
  for (PerfModelKind k : {PerfModelKind::INST_COUNT,
                          PerfModelKind::STATIC_LATENCY,
                          PerfModelKind::TRACE_LATENCY}) {
    if (strcmp(name, to_string(k)) == 0) {
      *out = k;
      return true;
    }
  }
  return false;
}

namespace {

// perf_inst: the candidate's size in wire slots. The double(size) -
// double(size) arithmetic in relative() is exactly core::perf_cost's, which
// is what keeps this backend bit-identical to the pre-refactor path.
class InstCountModel final : public PerfModel {
 public:
  PerfModelKind kind() const override { return PerfModelKind::INST_COUNT; }
  double absolute(const ebpf::Program& p, interp::Machine*) const override {
    return double(p.size_slots());
  }
};

// perf_lat: the static per-opcode sum of the latency table.
class StaticLatencyModel final : public PerfModel {
 public:
  PerfModelKind kind() const override {
    return PerfModelKind::STATIC_LATENCY;
  }
  double absolute(const ebpf::Program& p, interp::Machine*) const override {
    return static_program_cost_ns(p);
  }
};

// Trace-based estimate over a workload fixed at construction: the workload
// is derived from the *source* program (its maps and typical packet shapes)
// so every candidate is priced against identical inputs, and the source's
// own cost is precomputed so relative() executes only the candidate.
//
// Unlike the Tables 2/3 usage of avg_packet_cost_ns (verified programs,
// faults impossible), this backend prices arbitrary unverified candidates
// mid-search — a faulting run must be charged, not skipped, or mutations
// that introduce faults would be rewarded with a lower (even zero)
// average. kFaultCostNs dominates any real per-packet cost by orders of
// magnitude, so a candidate faulting on even one input prices worse than
// every fault-free one.
class TraceLatencyModel final : public PerfModel {
 public:
  static constexpr double kFaultCostNs = 1e6;

  TraceLatencyModel(const ebpf::Program& src, uint64_t seed, int n)
      : TraceLatencyModel(src, make_workload(src, n, seed)) {}

  // Caller-supplied workload (the scenario subsystem expands one and hands
  // it over here); the backend stays immutable after construction.
  TraceLatencyModel(const ebpf::Program& src,
                    std::vector<interp::InputSpec> workload)
      : workload_(std::move(workload)), src_cost_([&] {
          interp::Machine m;
          return avg_packet_cost_ns(src, workload_, m, kFaultCostNs);
        }()) {}

  PerfModelKind kind() const override { return PerfModelKind::TRACE_LATENCY; }

  double absolute(const ebpf::Program& p,
                  interp::Machine* scratch) const override {
    if (scratch) return avg_packet_cost_ns(p, workload_, *scratch, kFaultCostNs);
    interp::Machine local;
    return avg_packet_cost_ns(p, workload_, local, kFaultCostNs);
  }

  double relative(const ebpf::Program& cand, const ebpf::Program&,
                  interp::Machine* scratch) const override {
    return absolute(cand, scratch) - src_cost_;
  }

 private:
  const std::vector<interp::InputSpec> workload_;
  const double src_cost_;
};

}  // namespace

std::unique_ptr<PerfModel> make_perf_model(PerfModelKind kind,
                                           const ebpf::Program& src,
                                           uint64_t seed, int workload_size) {
  switch (kind) {
    case PerfModelKind::INST_COUNT:
      return std::make_unique<InstCountModel>();
    case PerfModelKind::STATIC_LATENCY:
      return std::make_unique<StaticLatencyModel>();
    case PerfModelKind::TRACE_LATENCY:
      return std::make_unique<TraceLatencyModel>(
          src, seed, workload_size > 0 ? workload_size : 32);
  }
  throw std::invalid_argument("unknown PerfModelKind");
}

std::unique_ptr<PerfModel> make_perf_model(
    PerfModelKind kind, const ebpf::Program& src,
    std::vector<interp::InputSpec> workload) {
  switch (kind) {
    case PerfModelKind::INST_COUNT:
      return std::make_unique<InstCountModel>();
    case PerfModelKind::STATIC_LATENCY:
      return std::make_unique<StaticLatencyModel>();
    case PerfModelKind::TRACE_LATENCY:
      return std::make_unique<TraceLatencyModel>(src, std::move(workload));
  }
  throw std::invalid_argument("unknown PerfModelKind");
}

}  // namespace k2::sim
