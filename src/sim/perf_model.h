// Pluggable performance-model backends for the candidate cost stage (§3.2,
// perf(p)). The paper's cost function prices a candidate either by its
// instruction count (perf_inst) or by an estimated latency; this interface
// makes the estimator a first-class backend that the evaluation pipeline
// consumes through its cost stage instead of hard-coding the two formulas in
// core/cost.cc, so new estimators (cycle-accurate models, hardware counters,
// learned predictors) plug in without touching the search loop.
//
// Backends:
//
//  * INST_COUNT      — program size in wire slots (the paper's perf_inst).
//                      Bit-identical to the pre-refactor
//                      core::perf_cost(Goal::INST_COUNT, ...) path; the
//                      differential tests in tests/perf_model_test.cc
//                      enforce this.
//  * STATIC_LATENCY  — Σ exec(i) over all non-NOP instructions using the
//                      per-opcode latency table (the paper's perf_lat, and
//                      the pre-refactor Goal::LATENCY path — also enforced
//                      bit-identical).
//  * TRACE_LATENCY   — trace-based estimate: run the candidate over a fixed
//                      synthetic workload (sim::make_workload seeded from
//                      the *source* program) in the interpreter and price
//                      every executed instruction (sim::avg_packet_cost_ns).
//                      This is the "measured" estimator of Tables 2/3: it
//                      sees branches actually taken, so dead-but-present
//                      code is free and hot loops cost what they execute.
//                      Faulting runs are charged a dominating penalty
//                      (candidates are unverified mid-search; skipping
//                      faults would reward fault-introducing mutations).
//
// Contracts (required of every backend, relied on by the pipeline):
//
//  * Thread-safety: absolute()/relative() are const and safe to call
//    concurrently from any number of chain workers. Backends are immutable
//    after construction (TRACE_LATENCY precomputes its workload and the
//    source program's cost in the factory).
//  * Blocking: absolute() never blocks on locks or I/O. INST_COUNT and
//    STATIC_LATENCY are O(|p|) arithmetic; TRACE_LATENCY executes the
//    candidate |workload| times in the bounded interpreter (microseconds,
//    not milliseconds — still cheap next to a Z3 query, but callers on the
//    per-proposal hot path should prefer the static backends).
//  * Determinism: for a fixed (kind, source program, seed), absolute(p)
//    returns bit-identical doubles for equal programs on every call, on
//    every thread, in every process — batch-report determinism across
//    shard orders and thread counts (core::BatchCompiler) depends on this.
//    No backend may read wall-clock time, global RNGs, or hardware state.
//
// The optional interp::Machine parameter lets per-worker callers
// (pipeline::ExecContext) lend their reusable interpreter state to
// trace-based backends so steady-state costing performs no per-call
// machine construction; passing nullptr is always correct, merely slower.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ebpf/program.h"
#include "interp/state.h"

namespace k2::interp {
struct Machine;
}

namespace k2::sim {

// Top-level (not nested) so headers can forward-declare it.
enum class PerfModelKind : uint8_t {
  INST_COUNT,      // wire slots (paper perf_inst)
  STATIC_LATENCY,  // static per-opcode sum (paper perf_lat)
  TRACE_LATENCY,   // interpreter-traced workload average (Tables 2/3 style)
};

// Canonical CLI/report names: "insts", "static-latency", "latency".
const char* to_string(PerfModelKind kind);
// Inverse of to_string; returns false on unknown names.
bool perf_model_kind_from_string(const char* name, PerfModelKind* out);

class PerfModel {
 public:
  virtual ~PerfModel() = default;

  virtual PerfModelKind kind() const = 0;
  const char* name() const { return to_string(kind()); }

  // Absolute metric of `p` (slots, or estimated nanoseconds per packet).
  // `scratch` optionally lends caller-owned interpreter state to
  // trace-based backends; see the file comment for the contract.
  virtual double absolute(const ebpf::Program& p,
                          interp::Machine* scratch = nullptr) const = 0;

  // The pipeline's perf term: absolute(cand) - absolute(src) (negative =
  // candidate better), matching core::perf_cost's convention. Backends that
  // fix the source at construction time (TRACE_LATENCY) use their cached
  // source cost, so `src` must be the program the model was built for.
  virtual double relative(const ebpf::Program& cand, const ebpf::Program& src,
                          interp::Machine* scratch = nullptr) const {
    return absolute(cand, scratch) - absolute(src, scratch);
  }
};

// Builds a backend for optimizing `src`. `seed` and `workload_size` only
// affect TRACE_LATENCY (the synthetic workload is make_workload(src,
// workload_size, seed)); the static backends ignore them. Never returns
// null; the result is immutable and safe to share across threads.
std::unique_ptr<PerfModel> make_perf_model(PerfModelKind kind,
                                           const ebpf::Program& src,
                                           uint64_t seed,
                                           int workload_size = 32);

// Same, with a caller-supplied workload for TRACE_LATENCY instead of the
// built-in make_workload mix. This is how the scenario subsystem
// (src/scenario, a layer *above* sim) injects expanded traffic models into
// the cost stage without sim depending on it: the caller expands, sim only
// consumes inputs. The static backends ignore the workload.
std::unique_ptr<PerfModel> make_perf_model(
    PerfModelKind kind, const ebpf::Program& src,
    std::vector<interp::InputSpec> workload);

}  // namespace k2::sim
