#include "util/flags.h"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace k2::util {

namespace {

bool parse_int(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  long long v = strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_uint(const std::string& s, uint64_t* out) {
  if (s.empty() || s[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  double v = strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool enum_allows(const std::string& values, const std::string& v) {
  if (values.empty()) return true;
  size_t start = 0;
  while (start <= values.size()) {
    size_t bar = values.find('|', start);
    size_t end = bar == std::string::npos ? values.size() : bar;
    if (values.compare(start, end - start, v) == 0) return true;
    if (bar == std::string::npos) break;
    start = bar + 1;
  }
  return false;
}

}  // namespace

Flags::Flags(std::vector<FlagSpec> specs) : specs_(std::move(specs)) {}

const FlagSpec* Flags::spec_for(const std::string& name) const {
  for (const FlagSpec& s : specs_)
    if (s.name == name) return &s;
  return nullptr;
}

bool Flags::set_value(const FlagSpec& spec, const std::string& value,
                      std::string* error) {
  switch (spec.type) {
    case FlagSpec::Type::INT: {
      int64_t v;
      if (!parse_int(value, &v)) {
        *error = "--" + spec.name + ": expected an integer, got '" + value +
                 "'";
        return false;
      }
      break;
    }
    case FlagSpec::Type::UINT: {
      uint64_t v;
      if (!parse_uint(value, &v)) {
        *error = "--" + spec.name + ": expected a non-negative integer, " +
                 "got '" + value + "'";
        return false;
      }
      break;
    }
    case FlagSpec::Type::DOUBLE: {
      double v;
      if (!parse_double(value, &v)) {
        *error = "--" + spec.name + ": expected a number, got '" + value +
                 "'";
        return false;
      }
      break;
    }
    case FlagSpec::Type::BOOL:
      *error = "--" + spec.name + " takes no value";
      return false;
    case FlagSpec::Type::STRING:
    case FlagSpec::Type::OPT_STRING:
      break;
  }
  if (!enum_allows(spec.values, value) &&
      (spec.type == FlagSpec::Type::STRING ||
       spec.type == FlagSpec::Type::OPT_STRING)) {
    *error = "--" + spec.name + ": unknown value '" + value + "' (expected " +
             spec.values + ")";
    return false;
  }
  record(spec.name, value);
  return true;
}

// Repeated flags are last-wins (the shell convention: append an override
// to the end of a long command line and it takes effect).
void Flags::record(const std::string& name, std::string value) {
  for (auto& [n, v] : set_) {
    if (n == name) {
      v = std::move(value);
      return;
    }
  }
  set_.emplace_back(name, std::move(value));
}

bool Flags::parse(int argc, char** argv, std::string* error) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    if (arg == "--help" || arg == "-h" || arg == "--h") {
      help_requested_ = true;
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const FlagSpec* spec = spec_for(name);
    if (!spec) {
      *error = "unknown flag --" + name + " (see --help)";
      return false;
    }
    if (!has_value) {
      switch (spec->type) {
        case FlagSpec::Type::BOOL:
        case FlagSpec::Type::OPT_STRING:
          record(name, "");
          continue;
        default:
          // `--name value` form: take the next argv entry.
          if (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0) {
            *error = "--" + name + " needs a value";
            return false;
          }
          value = argv[++i];
          break;
      }
    }
    if (!set_value(*spec, value, error)) return false;
  }
  return true;
}

bool Flags::has(const std::string& name) const {
  for (const auto& [n, v] : set_)
    if (n == name) return true;
  return false;
}

std::string Flags::str(const std::string& name) const {
  const FlagSpec* spec = spec_for(name);
  if (!spec) throw std::logic_error("Flags: undeclared flag --" + name);
  for (const auto& [n, v] : set_)
    if (n == name) return v;
  return spec->def;
}

int64_t Flags::num(const std::string& name) const {
  std::string v = str(name);
  int64_t out = 0;
  if (!v.empty()) parse_int(v, &out);
  return out;
}

uint64_t Flags::unum(const std::string& name) const {
  std::string v = str(name);
  uint64_t out = 0;
  if (!v.empty()) parse_uint(v, &out);
  return out;
}

double Flags::dnum(const std::string& name) const {
  std::string v = str(name);
  double out = 0;
  if (!v.empty()) parse_double(v, &out);
  return out;
}

bool Flags::flag(const std::string& name) const {
  const FlagSpec* spec = spec_for(name);
  if (!spec) throw std::logic_error("Flags: undeclared flag --" + name);
  return has(name);
}

std::string Flags::help(const std::string& usage) const {
  std::string out = usage;
  if (!out.empty() && out.back() != '\n') out += '\n';
  out += "\noptions:\n";
  for (const FlagSpec& s : specs_) {
    std::string left = "  --" + s.name;
    if (!s.values.empty())
      left += "=" + s.values;
    else
      switch (s.type) {
        case FlagSpec::Type::INT:
        case FlagSpec::Type::UINT: left += "=N"; break;
        case FlagSpec::Type::DOUBLE: left += "=X"; break;
        case FlagSpec::Type::STRING: left += "=<value>"; break;
        case FlagSpec::Type::OPT_STRING: left += "[=<value>]"; break;
        case FlagSpec::Type::BOOL: break;
      }
    if (left.size() < 34)
      left.resize(34, ' ');
    else
      left += ' ';
    out += left + s.help;
    if (!s.def.empty()) out += " (default " + s.def + ")";
    out += '\n';
  }
  out += "  --help                          show this help\n";
  return out;
}

}  // namespace k2::util
