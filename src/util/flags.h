// Table-driven command-line flag parsing, shared by tools/k2c and the
// bench binaries: each option is declared ONCE (name, type, default, help,
// allowed enum values) and the table drives parsing, strict validation and
// generated --help output. Replaces the hand-rolled `--flag=value` string
// scans that had three copies and two footguns: unknown flags were silently
// ignored (a `--iter=` typo ran 10k default iterations) and some bad enum
// values silently fell back to defaults. Both are hard errors here.
//
// Accepted syntax: `--name=value`, `--name value`, bare `--name` for BOOL
// and OPT_STRING flags, and `--help`. Anything starting with `--` that is
// not in the table is an error; anything else is a positional argument.
// Repeated flags are last-wins (the shell convention). Note: OPT_STRING
// never consumes a following bare word (`--corpus xdp_fw` leaves `xdp_fw`
// positional), so mode drivers must reject unexpected positionals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace k2::util {

struct FlagSpec {
  enum class Type {
    BOOL,        // present/absent; no value accepted
    INT,         // int64, strict full-string parse
    UINT,        // uint64, strict full-string parse
    DOUBLE,      // double, strict full-string parse
    STRING,      // required value
    OPT_STRING,  // value optional: bare `--corpus` or `--corpus=a,b`
  };
  std::string name;  // without the leading "--"
  Type type = Type::STRING;
  std::string def;   // default, as text (shown in --help; "" = none)
  std::string help;  // one-line description
  // ENUM restriction for STRING/OPT_STRING: "a|b|c" means the value must
  // be one of a, b, c — anything else is a parse error, never a fallback.
  std::string values;
};

class Flags {
 public:
  explicit Flags(std::vector<FlagSpec> specs);

  // Parses argv[1..). Returns false and fills *error on: an undeclared
  // --flag, a missing value, a value that does not parse as the declared
  // type, or an enum value outside `values`. `--help` parses successfully;
  // check help_requested().
  bool parse(int argc, char** argv, std::string* error);

  bool has(const std::string& name) const;   // explicitly set on the line
  bool help_requested() const { return help_requested_; }

  // Typed accessors: the parsed value when set, else the declared default
  // ("" / 0 / false when the default is empty). Throw std::logic_error for
  // names not in the table — a misspelled lookup is a programming bug.
  std::string str(const std::string& name) const;
  int64_t num(const std::string& name) const;
  uint64_t unum(const std::string& name) const;
  double dnum(const std::string& name) const;
  bool flag(const std::string& name) const;  // BOOL: present?

  const std::vector<std::string>& positional() const { return positional_; }

  // Generated --help text: usage head, then one aligned row per flag with
  // its values/type, default and description.
  std::string help(const std::string& usage) const;

 private:
  const FlagSpec* spec_for(const std::string& name) const;
  bool set_value(const FlagSpec& spec, const std::string& value,
                 std::string* error);
  void record(const std::string& name, std::string value);  // last-wins

  std::vector<FlagSpec> specs_;
  std::vector<std::pair<std::string, std::string>> set_;  // name → raw value
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace k2::util
