// Minimal JSON value type with a serializer and a strict recursive-descent
// parser — just enough for structured machine-readable reports
// (core::BatchCompiler's --report output, the bench --json files) to be
// emitted AND re-read without an external dependency, so report schemas can
// be round-trip tested.
//
// Representation choices that matter to report fidelity:
//
//  * Numbers keep integer-ness: a value written from int64_t/uint64_t
//    serializes without a decimal point and parses back as an integer, so
//    64-bit counters round-trip bit-exactly (doubles would silently lose
//    precision past 2^53). Caveat: integers are stored as int64_t, so a
//    uint64_t >= 2^63 serializes as its two's-complement negative — it
//    still round-trips through as_uint(), but external readers see a
//    negative number. Doubles serialize with max_digits10 precision, so
//    finite doubles also round-trip bit-exactly. NaN/Inf are not
//    representable in JSON and serialize as null.
//  * Objects preserve insertion order (vector of pairs, not a map): report
//    diffs stay stable and schema-ordered.
//
// Thread-safety: Json is a value type with no global state; distinct values
// are independent. parse()/dump() do not block. parse() throws
// std::runtime_error with a byte offset on malformed input; it accepts
// exactly the JSON grammar (no comments, no trailing commas), with
// containers nested at most 256 levels deep — deeper input is a parse
// error, not a stack overflow, because serve-mode feeds this parser
// untrusted bytes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace k2::util {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(int i) : v_(int64_t(i)) {}
  Json(int64_t i) : v_(i) {}
  // Values >= 2^63 wrap to negative on the wire; see the file comment.
  Json(uint64_t u) : v_(int64_t(u)) {}
  Json(double d) : v_(d) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(Array a) : v_(std::move(a)) {}
  Json(Object o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  // Typed accessors; throw std::runtime_error on kind mismatch (as_double
  // accepts integers, as_int accepts only integers).
  bool as_bool() const;
  int64_t as_int() const;
  uint64_t as_uint() const { return uint64_t(as_int()); }
  double as_double() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  // Object field lookup (first match); throws std::runtime_error when the
  // value is not an object or the key is absent. get() returns nullptr
  // instead of throwing.
  const Json& at(std::string_view key) const;
  const Json* get(std::string_view key) const;

  // Object/array builders.
  void set(std::string key, Json value);  // appends (no key dedup)
  void push_back(Json value);

  // Serialization. indent < 0: compact one-line form; indent >= 0: pretty,
  // `indent` spaces per level.
  std::string dump(int indent = -1) const;

  // Strict parser; throws std::runtime_error (message includes the byte
  // offset) on any deviation from the JSON grammar or trailing garbage.
  static Json parse(std::string_view text);

  bool operator==(const Json& other) const { return v_ == other.v_; }

 private:
  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array,
               Object>
      v_;
};

}  // namespace k2::util
