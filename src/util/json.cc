#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace k2::util {

namespace {

[[noreturn]] void fail(const char* what) {
  throw std::runtime_error(std::string("json: ") + what);
}

[[noreturn]] void fail_at(const char* what, size_t pos) {
  throw std::runtime_error(std::string("json: ") + what + " at byte " +
                           std::to_string(pos));
}

void escape_to(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (uint8_t(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out.push_back('"');
}

void number_to(double d, std::string& out) {
  if (!std::isfinite(d)) {  // not representable in JSON
    out += "null";
    return;
  }
  char buf[64];
  snprintf(buf, sizeof buf, "%.*g",
           std::numeric_limits<double>::max_digits10, d);
  out += buf;
  // Keep a marker of double-ness so the value parses back as a double.
  if (out.find_first_of(".eE", out.size() - strlen(buf)) == std::string::npos)
    out += ".0";
}

// ---- parser ---------------------------------------------------------------

struct Parser {
  std::string_view s;
  size_t pos = 0;
  // Containers may nest at most this deep. The recursive-descent parser
  // burns one stack frame per level, so without a bound a hostile line of
  // "[[[[..." overflows the stack instead of returning a parse error —
  // fatal for anything that feeds it untrusted input (the k2c serve loop).
  static constexpr int kMaxDepth = 256;
  int depth = 0;

  bool eof() const { return pos >= s.size(); }
  char peek() const { return s[pos]; }

  void skip_ws() {
    while (!eof() && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                      s[pos] == '\r'))
      pos++;
  }

  void expect(char c) {
    if (eof() || s[pos] != c)
      fail_at("expected character", pos);
    pos++;
  }

  bool consume_lit(std::string_view lit) {
    if (s.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    if (eof()) fail_at("unexpected end of input", pos);
    char c = peek();
    if (c == '{' || c == '[') {
      if (depth >= kMaxDepth) fail_at("nesting too deep", pos);
      depth++;
      Json j = c == '{' ? parse_object() : parse_array();
      depth--;
      return j;
    }
    if (c == '"') return Json(parse_string());
    if (c == 't') {
      if (!consume_lit("true")) fail_at("bad literal", pos);
      return Json(true);
    }
    if (c == 'f') {
      if (!consume_lit("false")) fail_at("bad literal", pos);
      return Json(false);
    }
    if (c == 'n') {
      if (!consume_lit("null")) fail_at("bad literal", pos);
      return Json(nullptr);
    }
    return parse_number();
  }

  Json parse_object() {
    expect('{');
    Json::Object obj;
    skip_ws();
    if (!eof() && peek() == '}') {
      pos++;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (eof()) fail_at("unterminated object", pos);
      if (peek() == ',') {
        pos++;
        continue;
      }
      expect('}');
      return Json(std::move(obj));
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array arr;
    skip_ws();
    if (!eof() && peek() == ']') {
      pos++;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (eof()) fail_at("unterminated array", pos);
      if (peek() == ',') {
        pos++;
        continue;
      }
      expect(']');
      return Json(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (eof()) fail_at("unterminated string", pos);
      char c = s[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        if (uint8_t(c) < 0x20) fail_at("raw control character", pos - 1);
        out.push_back(c);
        continue;
      }
      if (eof()) fail_at("unterminated escape", pos);
      char e = s[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos + 4 > s.size()) fail_at("truncated \\u escape", pos);
          uint32_t cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s[pos++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= uint32_t(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= uint32_t(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= uint32_t(h - 'A' + 10);
            else fail_at("bad \\u escape", pos - 1);
          }
          // Encode the code point as UTF-8 (surrogate pairs: decode the
          // low half when present; a lone surrogate becomes U+FFFD).
          if (cp >= 0xd800 && cp <= 0xdbff && pos + 6 <= s.size() &&
              s[pos] == '\\' && s[pos + 1] == 'u') {
            uint32_t lo = 0;
            bool ok = true;
            for (int i = 0; i < 4 && ok; ++i) {
              char h = s[pos + 2 + size_t(i)];
              lo <<= 4;
              if (h >= '0' && h <= '9') lo |= uint32_t(h - '0');
              else if (h >= 'a' && h <= 'f') lo |= uint32_t(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') lo |= uint32_t(h - 'A' + 10);
              else ok = false;
            }
            if (ok && lo >= 0xdc00 && lo <= 0xdfff) {
              cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
              pos += 6;
            }
          }
          if (cp >= 0xd800 && cp <= 0xdfff) cp = 0xfffd;
          if (cp < 0x80) {
            out.push_back(char(cp));
          } else if (cp < 0x800) {
            out.push_back(char(0xc0 | (cp >> 6)));
            out.push_back(char(0x80 | (cp & 0x3f)));
          } else if (cp < 0x10000) {
            out.push_back(char(0xe0 | (cp >> 12)));
            out.push_back(char(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(char(0x80 | (cp & 0x3f)));
          } else {
            out.push_back(char(0xf0 | (cp >> 18)));
            out.push_back(char(0x80 | ((cp >> 12) & 0x3f)));
            out.push_back(char(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(char(0x80 | (cp & 0x3f)));
          }
          break;
        }
        default:
          fail_at("bad escape", pos - 1);
      }
    }
  }

  Json parse_number() {
    // Exactly the JSON grammar: -? (0 | [1-9][0-9]*) ('.' [0-9]+)?
    // ([eE] [+-]? [0-9]+)? — no leading zeros, no bare '.', no empty
    // exponent.
    size_t start = pos;
    if (!eof() && peek() == '-') pos++;
    if (eof() || !isdigit(uint8_t(peek()))) fail_at("bad number", start);
    if (peek() == '0') {
      pos++;
      if (!eof() && isdigit(uint8_t(peek())))
        fail_at("leading zero in number", start);
    } else {
      while (!eof() && isdigit(uint8_t(peek()))) pos++;
    }
    bool is_double = false;
    if (!eof() && peek() == '.') {
      is_double = true;
      pos++;
      if (eof() || !isdigit(uint8_t(peek())))
        fail_at("digit required after decimal point", pos);
      while (!eof() && isdigit(uint8_t(peek()))) pos++;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      is_double = true;
      pos++;
      if (!eof() && (peek() == '+' || peek() == '-')) pos++;
      if (eof() || !isdigit(uint8_t(peek())))
        fail_at("digit required in exponent", pos);
      while (!eof() && isdigit(uint8_t(peek()))) pos++;
    }
    std::string_view tok = s.substr(start, pos - start);
    if (!is_double) {
      int64_t i = 0;
      auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), i);
      if (ec == std::errc() && p == tok.data() + tok.size()) return Json(i);
      // Integer overflow: fall through to double.
    }
    double d = 0;
    auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc() || p != tok.data() + tok.size())
      fail_at("bad number", start);
    return Json(d);
  }
};

void dump_to(const Json& j, std::string& out, int indent, int depth);

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out.push_back('\n');
  out.append(size_t(indent) * size_t(depth), ' ');
}

void dump_to(const Json& j, std::string& out, int indent, int depth) {
  if (j.is_null()) {
    out += "null";
  } else if (j.is_bool()) {
    out += j.as_bool() ? "true" : "false";
  } else if (j.is_int()) {
    out += std::to_string(j.as_int());
  } else if (j.is_double()) {
    number_to(j.as_double(), out);
  } else if (j.is_string()) {
    escape_to(j.as_string(), out);
  } else if (j.is_array()) {
    const Json::Array& a = j.as_array();
    if (a.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (size_t i = 0; i < a.size(); ++i) {
      if (i) out.push_back(',');
      newline_indent(out, indent, depth + 1);
      dump_to(a[i], out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push_back(']');
  } else {
    const Json::Object& o = j.as_object();
    if (o.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    for (size_t i = 0; i < o.size(); ++i) {
      if (i) out.push_back(',');
      newline_indent(out, indent, depth + 1);
      escape_to(o[i].first, out);
      out.push_back(':');
      if (indent >= 0) out.push_back(' ');
      dump_to(o[i].second, out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push_back('}');
  }
}

}  // namespace

bool Json::as_bool() const {
  if (!is_bool()) fail("not a bool");
  return std::get<bool>(v_);
}

int64_t Json::as_int() const {
  if (!is_int()) fail("not an integer");
  return std::get<int64_t>(v_);
}

double Json::as_double() const {
  if (is_int()) return double(std::get<int64_t>(v_));
  if (!is_double()) fail("not a number");
  return std::get<double>(v_);
}

const std::string& Json::as_string() const {
  if (!is_string()) fail("not a string");
  return std::get<std::string>(v_);
}

const Json::Array& Json::as_array() const {
  if (!is_array()) fail("not an array");
  return std::get<Array>(v_);
}

const Json::Object& Json::as_object() const {
  if (!is_object()) fail("not an object");
  return std::get<Object>(v_);
}

const Json& Json::at(std::string_view key) const {
  if (const Json* j = get(key)) return *j;
  fail(("missing key: " + std::string(key)).c_str());
}

const Json* Json::get(std::string_view key) const {
  if (!is_object()) fail("not an object");
  for (const auto& [k, v] : std::get<Object>(v_))
    if (k == key) return &v;
  return nullptr;
}

void Json::set(std::string key, Json value) {
  if (is_null()) v_ = Object{};
  if (!is_object()) fail("set() on non-object");
  std::get<Object>(v_).emplace_back(std::move(key), std::move(value));
}

void Json::push_back(Json value) {
  if (is_null()) v_ = Array{};
  if (!is_array()) fail("push_back() on non-array");
  std::get<Array>(v_).push_back(std::move(value));
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(*this, out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) {
  Parser p{text};
  Json j = p.parse_value();
  p.skip_ws();
  if (!p.eof()) fail_at("trailing garbage", p.pos);
  return j;
}

}  // namespace k2::util
