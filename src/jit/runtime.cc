#include "jit/runtime.h"

#include <cstring>

#include "ebpf/semantics.h"
#include "interp/helpers.h"

using k2::interp::Fault;
using k2::interp::Machine;
using k2::interp::Mem;

extern "C" {

uint32_t k2_jit_ldx(Machine* m, uint64_t addr, uint32_t w, uint32_t dst) {
  if (addr < 0x1000) return static_cast<uint32_t>(Fault::NULL_DEREF);
  const uint8_t* p = m->resolve(addr, w);
  if (!p) return static_cast<uint32_t>(Fault::OOB_ACCESS);
  uint64_t v = 0;
  std::memcpy(&v, p, w);
  m->regs[dst] = v;
  return static_cast<uint32_t>(Fault::NONE);
}

uint32_t k2_jit_store(Machine* m, uint64_t addr, uint32_t w, uint64_t val) {
  if (addr < 0x1000) return static_cast<uint32_t>(Fault::NULL_DEREF);
  Mem kind;
  uint8_t* p = m->resolve(addr, w, &kind);
  if (!p) return static_cast<uint32_t>(Fault::OOB_ACCESS);
  std::memcpy(p, &val, w);
  if (kind == Mem::STACK) m->note_stack_write(addr, w);
  return static_cast<uint32_t>(Fault::NONE);
}

uint32_t k2_jit_xadd(Machine* m, uint64_t addr, uint32_t w, uint64_t add) {
  if (addr < 0x1000) return static_cast<uint32_t>(Fault::NULL_DEREF);
  Mem kind;
  uint8_t* p = m->resolve(addr, w, &kind);
  if (!p) return static_cast<uint32_t>(Fault::OOB_ACCESS);
  uint64_t v = 0;
  std::memcpy(&v, p, w);
  v += add;
  std::memcpy(p, &v, w);
  if (kind == Mem::STACK) m->note_stack_write(addr, w);
  return static_cast<uint32_t>(Fault::NONE);
}

uint32_t k2_jit_call_helper(Machine* m, int64_t id) {
  return static_cast<uint32_t>(k2::interp::call_helper_resolved(*m, id));
}

uint64_t k2_jit_alu(uint32_t packed, uint64_t dst, uint64_t src) {
  k2::ebpf::ConcreteBackend be;
  return k2::ebpf::alu_apply(static_cast<k2::ebpf::AluOp>(packed & 0xff),
                             (packed >> 8) != 0, dst, src, be);
}

uint64_t k2_jit_alu_unary(uint32_t orig_op, uint64_t a) {
  k2::ebpf::ConcreteBackend be;
  return k2::ebpf::alu_unary_apply(static_cast<k2::ebpf::Opcode>(orig_op), a,
                                   be);
}

}  // extern "C"
