// The JIT runtime boundary: the state block emitted code addresses through
// a pinned register, and the extern "C" trampolines it calls back into the
// C++ helper/map runtime with.
//
// Trampoline ABI (SysV x86-64): emitted code pins
//
//   rbx = JitState*      r12 = Machine::regs.data()
//   r13 = insns_executed r14 = RunOptions::max_insns
//
// (all callee-saved, so trampolines need no spills around them), passes
// operands in the normal argument registers, and receives a Fault code in
// eax (0 = NONE; any other value routes to the shared fault stub, which
// records fault/fault_pc in the JitState and unwinds). Memory trampolines
// replicate the interpreter's access sequence exactly — NULL window check
// below 0x1000, Machine::resolve for region lookup (regions are dynamic:
// helpers expose map values mid-run), stack-write tracking — and the ALU
// trampolines are alu_apply/alu_unary_apply over ConcreteBackend itself,
// so the slow-path semantics cannot drift from the interpreter by
// construction.
#pragma once

#include <cstddef>
#include <cstdint>

#include "interp/state.h"

namespace k2::jit {

// Everything a native run needs, addressed off rbx with 8-bit displacements
// (hence the static_asserts: the emitter hard-codes these offsets).
struct JitState {
  interp::Machine* machine = nullptr;  // trampoline argument
  uint64_t* regs = nullptr;            // loaded into r12 by the prologue
  uint64_t max_insns = 0;              // loaded into r14 by the prologue
  uint64_t insns_executed = 0;         // stored from r13 by the epilogue
  uint32_t fault = 0;                  // interp::Fault, 0 = NONE
  int32_t fault_pc = -1;
};

static_assert(offsetof(JitState, machine) == 0);
static_assert(offsetof(JitState, regs) == 8);
static_assert(offsetof(JitState, max_insns) == 16);
static_assert(offsetof(JitState, insns_executed) == 24);
static_assert(offsetof(JitState, fault) == 32);
static_assert(offsetof(JitState, fault_pc) == 36);

}  // namespace k2::jit

// Trampolines live outside any namespace: the emitter embeds their
// addresses as 64-bit immediates, and extern "C" keeps the symbols stable.
extern "C" {

// LDX: load `w` bytes at addr into regs[dst]. Returns a Fault code.
uint32_t k2_jit_ldx(k2::interp::Machine* m, uint64_t addr, uint32_t w,
                    uint32_t dst);
// STX and ST share one trampoline: store the low `w` bytes of `val`.
uint32_t k2_jit_store(k2::interp::Machine* m, uint64_t addr, uint32_t w,
                      uint64_t val);
// XADD: read-modify-write add of `add` at addr.
uint32_t k2_jit_xadd(k2::interp::Machine* m, uint64_t addr, uint32_t w,
                     uint64_t add);
// CALL: dispatch helper `id` against the machine (argument and result
// registers live in machine->regs, which r12 also points at — memory is
// the single source of truth for register state).
uint32_t k2_jit_call_helper(k2::interp::Machine* m, int64_t id);
// ALU slow path (DIV/MOD, both widths): packed = AluOp | (is64 << 8).
uint64_t k2_jit_alu(uint32_t packed, uint64_t dst, uint64_t src);
// NEG / endianness conversions, keyed by the original ebpf::Opcode.
uint64_t k2_jit_alu_unary(uint32_t orig_op, uint64_t a);

}  // extern "C"
