// BackendRunner — the execution seam pipeline::ExecContext holds: the
// SuiteRunner interface (prepare / run_one / run_suite / invalidate) with a
// selectable engine behind it.
//
//  * FAST_INTERP delegates every call straight to the embedded
//    interp::SuiteRunner — zero new state touched, so the default backend
//    is bit-for-bit the pre-JIT pipeline.
//  * JIT keeps the embedded runner prepared (it owns the decoded form, the
//    machine and the scratch-result pooling) and additionally maintains a
//    native translation in a per-runner executable arena. prepare() feeds
//    the range the interpreter actually re-decoded into
//    Translator::patch(), so incremental proposal patches re-emit only the
//    touched slots; invalidate() drops both the decoded form and the
//    translation (the speculative-rollback hook).
//
// Fallback ladder (never an error): a program outside the JIT support set
// — unsupported helper, oversized, or no executable memory on this host —
// executes on the interpreter and bumps jit_bailouts() once per prepared
// candidate; a run that needs record_trace delegates per-run (the template
// JIT does not instrument traces). Because both engines share one
// SuiteRunner (one machine, one scratch result, one snapshot-validity
// flag), alternating between them keeps the incremental map-snapshot
// pooling coherent.
//
// Thread-safety: single-threaded, one per worker context, exactly like
// SuiteRunner.
#pragma once

#include <span>

#include "interp/fast_interp.h"
#include "jit/exec_backend.h"
#include "jit/translator.h"

namespace k2::jit {

class BackendRunner {
 public:
  // Selecting a backend is cheap; a switch takes effect at the next
  // prepare() (JIT code, if any, is simply unused while FAST_INTERP is
  // selected).
  void select(ExecBackend be) {
    if (backend_ != be) trans_.invalidate();
    backend_ = be;
  }
  ExecBackend backend() const { return backend_; }

  // SuiteRunner-compatible surface (pipeline::EvalPipeline and core::mcmc
  // call exactly these four, plus machine()/decoded()).
  ebpf::InsnRange prepare(const ebpf::Program& p,
                          const ebpf::InsnRange* touched = nullptr);
  void invalidate() {
    interp_.invalidate();
    trans_.invalidate();
  }
  const interp::RunResult& run_one(const interp::InputSpec& input,
                                   const interp::RunOptions& opt);
  interp::SuiteOutcome run_suite(std::span<const interp::SuiteTest> tests,
                                 bool until_first_fail,
                                 const interp::RunOptions& opt,
                                 interp::ResultSink on_result = {});

  interp::Machine& machine() { return interp_.machine(); }
  const ebpf::DecodedProgram& decoded() const { return interp_.decoded(); }

  // Prepared candidates that fell back to the interpreter while JIT was
  // selected (cumulative; the eval pipeline snapshots deltas into
  // EvalStats::jit_bailouts).
  uint64_t jit_bailouts() const { return bailouts_; }
  // True when the current program runs natively (test observability).
  bool jit_active() const { return backend_ == ExecBackend::JIT &&
                                   trans_.valid(); }
  const Translator& translator() const { return trans_; }

 private:
  const interp::RunResult& exec_native(const interp::InputSpec& input,
                                       const interp::RunOptions& opt);

  interp::SuiteRunner interp_;
  Translator trans_;
  ExecBackend backend_ = ExecBackend::FAST_INTERP;
  uint64_t bailouts_ = 0;
};

}  // namespace k2::jit
