// ExecBackend — which engine executes candidate programs against the test
// suite inside the search loop. Kept in its own dependency-free header so
// config structs across the layer stack (EvalConfig / ChainConfig /
// CompileOptions / api::CompileRequest) can name the enum without pulling
// in the JIT itself.
//
//  * FAST_INTERP — the decode-once/execute-many interpreter
//    (interp::SuiteRunner). The default, and the reference semantics every
//    other backend is differentially fuzzed against.
//  * JIT — the baseline x86-64 template JIT (src/jit/translator.h), with
//    automatic per-program fallback to FAST_INTERP for anything outside its
//    support set (counted as jit_bailouts, never an error). On non-x86-64
//    hosts every program takes the fallback, so selecting JIT is always
//    safe — it is a performance hint, not a semantics switch.
#pragma once

#include <string>

namespace k2::jit {

enum class ExecBackend : uint8_t { FAST_INTERP = 0, JIT = 1 };

// Wire names ("fast" / "jit"), used by k2c --exec-backend and the
// k2-compile/v1 `exec_backend` field.
inline const char* to_string(ExecBackend b) {
  return b == ExecBackend::JIT ? "jit" : "fast";
}

inline bool exec_backend_from_string(const std::string& s, ExecBackend* out) {
  if (s == "fast") {
    *out = ExecBackend::FAST_INTERP;
    return true;
  }
  if (s == "jit") {
    *out = ExecBackend::JIT;
    return true;
  }
  return false;
}

}  // namespace k2::jit
