// CodeArena — one mmap'd executable region per worker context, holding the
// JIT translation of the currently prepared program. Strict W^X: the
// mapping is writable (PROT_READ|PROT_WRITE) only between make_writable()
// and make_executable(), and executable (PROT_READ|PROT_EXEC) only in
// between runs — never both at once. The arena is reused across programs
// and across Machine::bind/reset cycles; it only remaps when a program
// needs more capacity than any before it (growth moves the base address,
// so the translator must re-emit everything after ensure() reports a
// move — absolute slot addresses are baked into the code).
#pragma once

#include <cstddef>
#include <cstdint>

namespace k2::jit {

class CodeArena {
 public:
  CodeArena() = default;
  CodeArena(const CodeArena&) = delete;
  CodeArena& operator=(const CodeArena&) = delete;
  ~CodeArena();

  // Guarantees capacity() >= bytes (page-rounded). Returns false when the
  // platform cannot provide executable memory (mmap failure or an OS
  // without POSIX mprotect) — the caller falls back to the interpreter.
  // Sets *moved when the base address changed (initial map or regrow).
  bool ensure(size_t bytes, bool* moved);

  uint8_t* base() const { return base_; }
  size_t capacity() const { return cap_; }
  bool writable() const { return writable_; }

  // W^X flips. No-ops on an empty arena.
  void make_writable();
  void make_executable();

  void release();

 private:
  uint8_t* base_ = nullptr;
  size_t cap_ = 0;
  bool writable_ = false;
};

}  // namespace k2::jit
