#include "jit/code_arena.h"

#if defined(__unix__) || defined(__APPLE__)
#define K2_JIT_HAVE_MMAP 1
#include <sys/mman.h>
#include <unistd.h>
#else
#define K2_JIT_HAVE_MMAP 0
#endif

namespace k2::jit {

CodeArena::~CodeArena() { release(); }

void CodeArena::release() {
#if K2_JIT_HAVE_MMAP
  if (base_) ::munmap(base_, cap_);
#endif
  base_ = nullptr;
  cap_ = 0;
  writable_ = false;
}

bool CodeArena::ensure(size_t bytes, bool* moved) {
  *moved = false;
  if (bytes <= cap_ && base_) return true;
#if K2_JIT_HAVE_MMAP
  const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  const size_t cap = (bytes + page - 1) / page * page;
  void* p = ::mmap(nullptr, cap, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) return false;
  release();
  base_ = static_cast<uint8_t*>(p);
  cap_ = cap;
  writable_ = true;  // fresh anonymous mapping starts RW
  *moved = true;
  return true;
#else
  return false;
#endif
}

void CodeArena::make_writable() {
#if K2_JIT_HAVE_MMAP
  if (!base_ || writable_) return;
  ::mprotect(base_, cap_, PROT_READ | PROT_WRITE);
  writable_ = true;
#endif
}

void CodeArena::make_executable() {
#if K2_JIT_HAVE_MMAP
  if (!base_ || !writable_) return;
  ::mprotect(base_, cap_, PROT_READ | PROT_EXEC);
  writable_ = false;
#endif
}

}  // namespace k2::jit
