#include "jit/backend_runner.h"

#include "interp/interpreter.h"

namespace k2::jit {

ebpf::InsnRange BackendRunner::prepare(const ebpf::Program& p,
                                       const ebpf::InsnRange* touched) {
  // The interpreter runner syncs first — it owns the decoded form — and
  // reports the slot range it actually re-decoded.
  const ebpf::InsnRange r = interp_.prepare(p, touched);
  if (backend_ != ExecBackend::JIT) return r;

  const ebpf::DecodedProgram& dp = interp_.decoded();
  const bool full = !trans_.valid() || trans_.size() != dp.insns.size() ||
                    (r.start == 0 && r.end == static_cast<int>(dp.size()));
  const bool ok = full ? trans_.translate(dp) : trans_.patch(dp, r);
  if (!ok) ++bailouts_;  // this candidate executes on the interpreter
  return r;
}

const interp::RunResult& BackendRunner::run_one(
    const interp::InputSpec& input, const interp::RunOptions& opt) {
  if (!jit_active() || opt.record_trace) return interp_.run_one(input, opt);
  return exec_native(input, opt);
}

interp::SuiteOutcome BackendRunner::run_suite(
    std::span<const interp::SuiteTest> tests, bool until_first_fail,
    const interp::RunOptions& opt, interp::ResultSink on_result) {
  if (!jit_active() || opt.record_trace)
    return interp_.run_suite(tests, until_first_fail, opt, on_result);
  // Same loop shape as SuiteRunner::run_suite, over the native entry.
  interp::SuiteOutcome out;
  for (uint32_t i = 0; i < tests.size(); ++i) {
    const interp::RunResult& r = exec_native(*tests[i].input, opt);
    out.executed++;
    const bool failed =
        tests[i].expected &&
        !interp::outputs_equal(decoded().type, r, *tests[i].expected);
    if (failed && out.first_fail < 0) out.first_fail = int32_t(i);
    if (on_result && !on_result(i, r)) break;
    if (until_first_fail && failed) break;
  }
  return out;
}

const interp::RunResult& BackendRunner::exec_native(
    const interp::InputSpec& input, const interp::RunOptions& opt) {
  interp::Machine& m = interp_.machine();
  m.reset(input);
  interp::RunResult& res = interp_.scratch_begin();

  JitState st;
  st.machine = &m;
  st.regs = m.regs.data();
  st.max_insns = opt.max_insns;
  trans_.entry()(&st);

  res.insns_executed = st.insns_executed;
  if (st.fault != 0)
    return interp_.scratch_fault(static_cast<interp::Fault>(st.fault),
                                 st.fault_pc);
  return interp_.scratch_finish();
}

}  // namespace k2::jit
