// The baseline (template) x86-64 JIT translator: one fixed-size native code
// slot per BPF instruction. No register allocation, no block fusion — BPF
// registers live in Machine::regs memory (r12 points at them) and every
// slot is a self-contained translation of one DecodedInsn. What the layout
// buys is *incremental re-translation*: because slot i's code depends only
// on insns[i], its own pc, the program size and the fixed stub addresses,
// patching instructions [start, end) re-emits exactly those slots — the
// native mirror of DecodedProgram::patch() — and every jump target stays a
// stable absolute slot address.
//
// Arena layout (per CodeArena):
//
//   [ prologue | fault/exit stubs | slot 0 | slot 1 | ... | slot n ]
//
// Slot n (one past the last instruction) is the fall-off-the-end slot: it
// faults BAD_INSN at pc == n without bumping the step counter, exactly
// like the interpreter's bounds check. Each real slot opens with the step
// gate (increment + limit check → STEP_LIMIT) and then the translated
// instruction; jumps whose target lies outside [0, n) fault BAD_INSN at
// the target pc from the jump site, and taken backward jumps fault
// BACKWARD_JUMP — all mirroring interp::SuiteRunner's K2_NEXT ordering
// bit-for-bit (enforced by tests/jit_backend_test.cc).
//
// Support set: everything decode_insn produces, except CALLs to helpers
// outside jit_supported_helper(). translate()/patch() return false for
// those (and on any platform without executable-memory support), which the
// BackendRunner turns into a counted per-program interpreter fallback.
#pragma once

#include <cstdint>

#include "ebpf/decoded.h"
#include "jit/code_arena.h"
#include "jit/runtime.h"

namespace k2::jit {

// The template's helper support set. bpf_csum_diff is deliberately outside
// it: a helper the translator declines keeps the per-program bailout path
// (and its jit_bailouts accounting) permanently exercised by real programs
// in the tests and the corpus, rather than only by synthetic cases. Its
// variable-length buffer walk is interpreter-bound anyway, so excluding it
// costs nothing measurable.
bool jit_supported_helper(uint64_t id);

// True when every instruction of `dp` is inside the template's support set.
bool jit_supports(const ebpf::DecodedProgram& dp);

// Test-only fault injection: while enabled, the translator deliberately
// miscompiles 64-bit MOV-immediate (emits imm+1). Exists to prove the
// differential conformance harness catches and shrinks a real JIT
// miscompile (tests/conformance_test.cc, `k2c fuzz --inject-jit-bug`);
// never enable outside tests. Affects future translate()/patch() calls
// only — pair with invalidate()/prepare to retranslate.
void set_test_miscompile(bool enabled);
bool test_miscompile_enabled();

class Translator {
 public:
  using EntryFn = void (*)(JitState*);

  // Full translation of `dp` into the arena (grows it as needed). Leaves
  // the arena executable on success. Returns false — and invalidates any
  // previous translation — when the program is unsupported or executable
  // memory is unavailable.
  bool translate(const ebpf::DecodedProgram& dp);

  // Re-emits only slots [r.start, r.end) (clamped), mirroring
  // DecodedProgram::patch. Requires a valid previous translate() of a
  // same-sized program; returns false (invalidating the translation) when
  // the patched range became unsupported.
  bool patch(const ebpf::DecodedProgram& dp, ebpf::InsnRange r);

  bool valid() const { return valid_; }
  size_t size() const { return n_; }
  void invalidate() { valid_ = false; }

  // Entry point of the current translation; call with a fully initialized
  // JitState. Only meaningful while valid().
  EntryFn entry() const;

  const CodeArena& arena() const { return arena_; }

 private:
  bool emit_slot(const ebpf::DecodedInsn& d, int pc);
  uint8_t* slot_ptr(int pc) const;

  CodeArena arena_;
  size_t n_ = 0;
  bool valid_ = false;
  uint8_t* fault_stub_ = nullptr;
  uint8_t* exit_stub_ = nullptr;
};

}  // namespace k2::jit
