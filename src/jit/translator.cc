#include "jit/translator.h"

#include <cstring>

#include "ebpf/helpers_def.h"
#include "interp/state.h"

namespace k2::jit {

bool jit_supported_helper(uint64_t id) {
  return id != static_cast<uint64_t>(ebpf::HELPER_CSUM_DIFF);
}

bool jit_supports(const ebpf::DecodedProgram& dp) {
  for (const ebpf::DecodedInsn& d : dp.insns)
    if (d.eop == ebpf::ExecOp::CALL && d.helper &&
        !jit_supported_helper(d.imm))
      return false;
  return true;
}

namespace {
// Test-only fault injection (see translator.h). Plain global: translators
// are single-threaded per worker and tests flip this around a local
// translate.
bool g_test_miscompile = false;
}  // namespace

void set_test_miscompile(bool enabled) { g_test_miscompile = enabled; }
bool test_miscompile_enabled() { return g_test_miscompile; }

#if defined(__x86_64__)

namespace {

using ebpf::AluOp;
using ebpf::DecodedInsn;
using ebpf::ExecOp;
using ebpf::JmpCond;
using interp::Fault;
using interp::Machine;

// Arena geometry. The prologue and the fault/exit stubs sit in front of the
// slot array; every address is absolute, so the whole arena re-emits when
// the mapping moves.
constexpr size_t kPrologueBytes = 32;
constexpr size_t kStubBytes = 32;
constexpr size_t kSlotBytes = 96;
constexpr size_t kMaxJitInsns = size_t(1) << 16;

// x86-64 register numbers (REX-extended encoding).
enum : int { RAX = 0, RCX = 1, RDX = 2, RBX = 3, RSI = 6, RDI = 7,
             R12 = 12, R13 = 13, R14 = 14 };

// Bounded little-endian byte writer over one slot (or stub) window. An
// overflow trips a sticky flag instead of writing out of bounds; the
// translator treats it as "unsupported" and bails out.
struct Code {
  uint8_t* p;
  uint8_t* end;
  bool ovf = false;

  void b(uint8_t v) {
    if (p < end)
      *p++ = v;
    else
      ovf = true;
  }
  void d32(uint32_t v) {
    b(uint8_t(v));
    b(uint8_t(v >> 8));
    b(uint8_t(v >> 16));
    b(uint8_t(v >> 24));
  }
  void d64(uint64_t v) {
    d32(uint32_t(v));
    d32(uint32_t(v >> 32));
  }
};

// mov reg64, [base + disp8] (0x8B) / mov [base + disp8], reg64 (0x89).
// base is rbx or r12; r12 needs a SIB byte. disp must fit in disp8.
void mov_mem64(Code& c, uint8_t opcode, int reg, int base, int disp) {
  c.b(uint8_t(0x48 | ((reg >> 3) << 2) | (base >> 3)));
  c.b(opcode);
  if ((base & 7) == 4) {  // r12: SIB with no index
    c.b(uint8_t(0x40 | ((reg & 7) << 3) | 4));
    c.b(0x24);
  } else {
    c.b(uint8_t(0x40 | ((reg & 7) << 3) | (base & 7)));
  }
  c.b(uint8_t(disp));
}
void load64(Code& c, int reg, int base, int disp) {
  mov_mem64(c, 0x8B, reg, base, disp);
}
void store64(Code& c, int base, int disp, int reg) {
  mov_mem64(c, 0x89, reg, base, disp);
}
// mov [base + disp8], reg32 — used by the stubs for fault / fault_pc.
void store32(Code& c, int base, int disp, int reg) {
  uint8_t rex = uint8_t(((reg >> 3) << 2) | (base >> 3));
  if (rex) c.b(uint8_t(0x40 | rex));
  c.b(0x89);
  if ((base & 7) == 4) {
    c.b(uint8_t(0x40 | ((reg & 7) << 3) | 4));
    c.b(0x24);
  } else {
    c.b(uint8_t(0x40 | ((reg & 7) << 3) | (base & 7)));
  }
  c.b(uint8_t(disp));
}

void mov_ri32(Code& c, int reg, uint32_t imm) {  // zero-extends
  if (reg >= 8) c.b(0x41);
  c.b(uint8_t(0xB8 + (reg & 7)));
  c.d32(imm);
}
void mov_ri32s(Code& c, int reg, int32_t imm) {  // sign-extends to 64
  c.b(uint8_t(0x48 | (reg >> 3)));
  c.b(0xC7);
  c.b(uint8_t(0xC0 | (reg & 7)));
  c.d32(uint32_t(imm));
}
void mov_ri64(Code& c, int reg, uint64_t imm) {
  c.b(uint8_t(0x48 | (reg >> 3)));
  c.b(uint8_t(0xB8 + (reg & 7)));
  c.d64(imm);
}

// Two-operand ALU in the "op r/m, reg" form: add(01) sub(29) and(21)
// or(09) xor(31) cmp(39) test(85) mov(89).
void alu_rr(Code& c, uint8_t opcode, int rm, int reg, bool w64) {
  uint8_t rex = uint8_t((w64 ? 8 : 0) | ((reg >> 3) << 2) | (rm >> 3));
  if (rex) c.b(uint8_t(0x40 | rex));
  c.b(opcode);
  c.b(uint8_t(0xC0 | ((reg & 7) << 3) | (rm & 7)));
}
void imul_rr(Code& c, int reg, int rm, bool w64) {
  uint8_t rex = uint8_t((w64 ? 8 : 0) | ((reg >> 3) << 2) | (rm >> 3));
  if (rex) c.b(uint8_t(0x40 | rex));
  c.b(0x0F);
  c.b(0xAF);
  c.b(uint8_t(0xC0 | ((reg & 7) << 3) | (rm & 7)));
}
// shl(/4) shr(/5) sar(/7) by cl.
void shift_cl(Code& c, int rm, int ext, bool w64) {
  uint8_t rex = uint8_t((w64 ? 8 : 0) | (rm >> 3));
  if (rex) c.b(uint8_t(0x40 | rex));
  c.b(0xD3);
  c.b(uint8_t(0xC0 | (ext << 3) | (rm & 7)));
}
void add_ri32(Code& c, int rm, int32_t imm) {  // add r64, sign-extended imm32
  c.b(uint8_t(0x48 | (rm >> 3)));
  c.b(0x81);
  c.b(uint8_t(0xC0 | (rm & 7)));
  c.d32(uint32_t(imm));
}

// jmp rel32 to an absolute arena address.
void jmp_abs(Code& c, const uint8_t* target) {
  c.b(0xE9);
  // The displacement is relative to the end of this instruction. On
  // overflow p stops advancing, but the emission is discarded anyway.
  int64_t rel = target - (c.p + 4);
  c.d32(uint32_t(int32_t(rel)));
}
// jcc rel8 with a fixup: returns the displacement byte to patch.
uint8_t* jcc8(Code& c, uint8_t cc) {
  c.b(uint8_t(0x70 | cc));
  uint8_t* at = c.p;
  c.b(0);
  return at;
}
void fix8(Code& c, uint8_t* at) {
  if (c.ovf || at >= c.end) return;
  *at = uint8_t(c.p - (at + 1));
}

// movabs rax, fn; call rax. Trampolines preserve rbx/r12-r14 (SysV
// callee-saved) and the prologue's five pushes keep rsp 16-byte aligned at
// every call site.
void call_tramp(Code& c, uintptr_t fn) {
  mov_ri64(c, RAX, uint64_t(fn));
  c.b(0xFF);
  c.b(0xD0);
}

// Fault exit: eax = fault code, edx = faulting pc, shared stub unwinds.
void emit_fault(Code& c, Fault f, int at, uint8_t* fault_stub) {
  mov_ri32(c, RAX, uint32_t(f));
  mov_ri32(c, RDX, uint32_t(at));
  jmp_abs(c, fault_stub);
}

// Post-trampoline check: a nonzero return value in eax is the fault code.
void emit_fault_check(Code& c, int pc, uint8_t* fault_stub) {
  c.b(0x85);  // test eax, eax
  c.b(0xC0);
  uint8_t* ok = jcc8(c, 0x4);  // je: no fault
  mov_ri32(c, RDX, uint32_t(pc));
  jmp_abs(c, fault_stub);
  fix8(c, ok);
}

// The step gate every real slot opens with, replicating the interpreter's
// `insns_executed++ >= max_insns` (post-increment: the faulting step is
// already counted).
void emit_gate(Code& c, int pc, uint8_t* fault_stub) {
  c.b(0x49);  // inc r13
  c.b(0xFF);
  c.b(0xC5);
  c.b(0x4D);  // cmp r13, r14
  c.b(0x39);
  c.b(0xF5);
  uint8_t* ok = jcc8(c, 0x6);  // jbe: within budget
  emit_fault(c, Fault::STEP_LIMIT, pc, fault_stub);
  fix8(c, ok);
}

// Inverse condition code: the jcc that *skips* the taken branch.
uint8_t not_taken_cc(JmpCond cond) {
  switch (cond) {
    case JmpCond::JEQ: return 0x5;   // jne
    case JmpCond::JNE: return 0x4;   // je
    case JmpCond::JGT: return 0x6;   // jbe
    case JmpCond::JGE: return 0x2;   // jb
    case JmpCond::JLT: return 0x3;   // jae
    case JmpCond::JLE: return 0x7;   // ja
    case JmpCond::JSGT: return 0xE;  // jle
    case JmpCond::JSGE: return 0xC;  // jl
    case JmpCond::JSLT: return 0xD;  // jge
    case JmpCond::JSLE: return 0xF;  // jg
    case JmpCond::JSET: return 0x4;  // je (after test)
  }
  return 0x5;
}

}  // namespace

uint8_t* Translator::slot_ptr(int pc) const {
  return arena_.base() + kPrologueBytes + kStubBytes +
         size_t(pc) * kSlotBytes;
}

Translator::EntryFn Translator::entry() const {
  return reinterpret_cast<EntryFn>(
      reinterpret_cast<uintptr_t>(arena_.base()));
}

bool Translator::emit_slot(const DecodedInsn& d, int pc) {
  uint8_t* slot = slot_ptr(pc);
  Code c{slot, slot + kSlotBytes};
  const int n = static_cast<int>(n_);
  bool flows_to_next = true;

  emit_gate(c, pc, fault_stub_);

  switch (d.eop) {
    case ExecOp::ALU64_IMM:
    case ExecOp::ALU64_REG:
    case ExecOp::ALU32_IMM:
    case ExecOp::ALU32_REG: {
      const bool is64 =
          d.eop == ExecOp::ALU64_IMM || d.eop == ExecOp::ALU64_REG;
      const bool imm =
          d.eop == ExecOp::ALU64_IMM || d.eop == ExecOp::ALU32_IMM;
      const AluOp op = static_cast<AluOp>(d.sub);
      if (op == AluOp::DIV || op == AluOp::MOD) {
        // Total-division semantics via the alu_apply trampoline.
        mov_ri32(c, RDI, uint32_t(d.sub) | (is64 ? 0x100u : 0u));
        load64(c, RSI, R12, 8 * d.dst);
        if (imm)
          mov_ri32s(c, RDX, int32_t(uint32_t(d.imm)));
        else
          load64(c, RDX, R12, 8 * d.src);
        call_tramp(c, reinterpret_cast<uintptr_t>(&k2_jit_alu));
        store64(c, R12, 8 * d.dst, RAX);
        break;
      }
      if (op == AluOp::MOV) {
        if (imm) {
          if (is64)
            mov_ri32s(c, RAX,
                      int32_t(uint32_t(d.imm) + (g_test_miscompile ? 1u : 0u)));
          else
            mov_ri32(c, RAX, uint32_t(d.imm));  // lo32 of the sext: zext
        } else {
          load64(c, RAX, R12, 8 * d.src);
          if (!is64) alu_rr(c, 0x89, RAX, RAX, false);  // mov eax, eax
        }
        store64(c, R12, 8 * d.dst, RAX);
        break;
      }
      load64(c, RAX, R12, 8 * d.dst);
      if (imm)
        mov_ri32s(c, RCX, int32_t(uint32_t(d.imm)));
      else
        load64(c, RCX, R12, 8 * d.src);
      switch (op) {
        case AluOp::ADD: alu_rr(c, 0x01, RAX, RCX, is64); break;
        case AluOp::SUB: alu_rr(c, 0x29, RAX, RCX, is64); break;
        case AluOp::MUL: imul_rr(c, RAX, RCX, is64); break;
        case AluOp::OR: alu_rr(c, 0x09, RAX, RCX, is64); break;
        case AluOp::AND: alu_rr(c, 0x21, RAX, RCX, is64); break;
        case AluOp::XOR: alu_rr(c, 0x31, RAX, RCX, is64); break;
        // Hardware masks the cl count by 63/31 per operand size — exactly
        // the amt6/amt5 masking in alu_apply. 32-bit shifts operate on eax
        // (= lo32) and zero-extend, matching the lo32 wrappers.
        case AluOp::LSH: shift_cl(c, RAX, 4, is64); break;
        case AluOp::RSH: shift_cl(c, RAX, 5, is64); break;
        case AluOp::ARSH: shift_cl(c, RAX, 7, is64); break;
        default: return false;  // DIV/MOD/MOV handled above
      }
      store64(c, R12, 8 * d.dst, RAX);
      break;
    }

    case ExecOp::ALU_UNARY:
      mov_ri32(c, RDI, d.orig_op);
      load64(c, RSI, R12, 8 * d.dst);
      call_tramp(c, reinterpret_cast<uintptr_t>(&k2_jit_alu_unary));
      store64(c, R12, 8 * d.dst, RAX);
      break;

    case ExecOp::JA:
      if (d.off < 0)
        emit_fault(c, Fault::BACKWARD_JUMP, pc, fault_stub_);
      else if (d.target >= n)
        emit_fault(c, Fault::BAD_INSN, d.target, fault_stub_);
      else
        jmp_abs(c, slot_ptr(d.target));
      flows_to_next = false;
      break;

    case ExecOp::JMP_IMM:
    case ExecOp::JMP_REG: {
      const JmpCond cond = static_cast<JmpCond>(d.sub);
      load64(c, RAX, R12, 8 * d.dst);
      if (d.eop == ExecOp::JMP_IMM)
        mov_ri32s(c, RCX, int32_t(uint32_t(d.imm)));
      else
        load64(c, RCX, R12, 8 * d.src);
      alu_rr(c, cond == JmpCond::JSET ? 0x85 : 0x39, RAX, RCX, true);
      uint8_t* skip = jcc8(c, not_taken_cc(cond));
      if (d.off < 0)
        emit_fault(c, Fault::BACKWARD_JUMP, pc, fault_stub_);
      else if (d.target >= n)
        emit_fault(c, Fault::BAD_INSN, d.target, fault_stub_);
      else
        jmp_abs(c, slot_ptr(d.target));
      fix8(c, skip);
      break;
    }

    case ExecOp::LDX:
    case ExecOp::STX:
    case ExecOp::ST:
    case ExecOp::XADD:
      load64(c, RAX, R12,
             8 * (d.eop == ExecOp::LDX ? d.src : d.dst));
      add_ri32(c, RAX, int32_t(d.off));
      load64(c, RDI, RBX, 0);  // Machine*
      alu_rr(c, 0x89, RSI, RAX, true);
      mov_ri32(c, RDX, d.sub);  // width
      if (d.eop == ExecOp::LDX) {
        mov_ri32(c, RCX, d.dst);
        call_tramp(c, reinterpret_cast<uintptr_t>(&k2_jit_ldx));
      } else if (d.eop == ExecOp::ST) {
        mov_ri32s(c, RCX, int32_t(uint32_t(d.imm)));
        call_tramp(c, reinterpret_cast<uintptr_t>(&k2_jit_store));
      } else {
        load64(c, RCX, R12, 8 * d.src);
        call_tramp(c, reinterpret_cast<uintptr_t>(
                          d.eop == ExecOp::STX ? &k2_jit_store
                                               : &k2_jit_xadd));
      }
      emit_fault_check(c, pc, fault_stub_);
      break;

    case ExecOp::CALL:
      if (!d.helper) {
        emit_fault(c, Fault::BAD_HELPER, pc, fault_stub_);
        flows_to_next = false;
        break;
      }
      if (!jit_supported_helper(d.imm)) return false;
      load64(c, RDI, RBX, 0);
      mov_ri64(c, RSI, d.imm);  // the exact id the interpreter dispatches on
      call_tramp(c, reinterpret_cast<uintptr_t>(&k2_jit_call_helper));
      emit_fault_check(c, pc, fault_stub_);
      break;

    case ExecOp::EXIT:
      jmp_abs(c, exit_stub_);  // fault stays NONE: clean return
      flows_to_next = false;
      break;

    case ExecOp::LDDW:
      mov_ri64(c, RAX, d.imm);
      store64(c, R12, 8 * d.dst, RAX);
      break;

    case ExecOp::LDMAPFD:
      mov_ri64(c, RAX, Machine::kMapHandleBase + d.imm);
      store64(c, R12, 8 * d.dst, RAX);
      break;

    case ExecOp::NOP:
      break;

    case ExecOp::BAD:
    default:
      emit_fault(c, Fault::BAD_INSN, pc, fault_stub_);
      flows_to_next = false;
      break;
  }

  if (flows_to_next) jmp_abs(c, slot_ptr(pc + 1));
  if (c.ovf) return false;
  while (c.p < c.end) *c.p++ = 0xCC;  // int3: trap on any emitter bug
  return true;
}

bool Translator::translate(const ebpf::DecodedProgram& dp) {
  valid_ = false;
  n_ = dp.insns.size();
  if (n_ + 1 > kMaxJitInsns) return false;
  if (!jit_supports(dp)) return false;

  const size_t bytes =
      kPrologueBytes + kStubBytes + (n_ + 1) * kSlotBytes;
  bool moved = false;
  if (!arena_.ensure(bytes, &moved)) return false;
  arena_.make_writable();

  // Stubs first (slots jump to them). fault path expects eax = fault code,
  // edx = fault pc; the clean path enters at exit_stub_ with fault
  // untouched (the caller pre-sets NONE).
  {
    uint8_t* stub = arena_.base() + kPrologueBytes;
    Code c{stub, stub + kStubBytes};
    fault_stub_ = c.p;
    store32(c, RBX, 32, RAX);  // JitState::fault
    store32(c, RBX, 36, RDX);  // JitState::fault_pc
    exit_stub_ = c.p;
    store64(c, RBX, 24, R13);  // JitState::insns_executed
    c.b(0x41); c.b(0x5F);      // pop r15
    c.b(0x41); c.b(0x5E);      // pop r14
    c.b(0x41); c.b(0x5D);      // pop r13
    c.b(0x41); c.b(0x5C);      // pop r12
    c.b(0x5B);                 // pop rbx
    c.b(0xC3);                 // ret
    if (c.ovf) return false;
    while (c.p < c.end) *c.p++ = 0xCC;
  }

  // Prologue at the arena base = the entry function. Five pushes keep rsp
  // 16-byte aligned at trampoline call sites.
  {
    uint8_t* pro = arena_.base();
    Code c{pro, pro + kPrologueBytes};
    c.b(0x53);                 // push rbx
    c.b(0x41); c.b(0x54);      // push r12
    c.b(0x41); c.b(0x55);      // push r13
    c.b(0x41); c.b(0x56);      // push r14
    c.b(0x41); c.b(0x57);      // push r15
    c.b(0x48); c.b(0x89); c.b(0xFB);  // mov rbx, rdi (JitState*)
    load64(c, R12, RBX, 8);    // regs base
    c.b(0x4D); c.b(0x31); c.b(0xED);  // xor r13, r13 (insns_executed)
    load64(c, R14, RBX, 16);   // max_insns
    jmp_abs(c, slot_ptr(0));
    if (c.ovf) return false;
    while (c.p < c.end) *c.p++ = 0xCC;
  }

  for (size_t i = 0; i < n_; ++i)
    if (!emit_slot(dp.insns[i], static_cast<int>(i))) return false;

  // The fall-off-the-end slot: pc == n faults BAD_INSN *without* passing a
  // step gate, exactly like the interpreter's bounds check.
  {
    uint8_t* slot = slot_ptr(static_cast<int>(n_));
    Code c{slot, slot + kSlotBytes};
    emit_fault(c, Fault::BAD_INSN, static_cast<int>(n_), fault_stub_);
    if (c.ovf) return false;
    while (c.p < c.end) *c.p++ = 0xCC;
  }

  arena_.make_executable();
  valid_ = true;
  return true;
}

bool Translator::patch(const ebpf::DecodedProgram& dp, ebpf::InsnRange r) {
  if (!valid_ || dp.insns.size() != n_) return translate(dp);
  const int n = static_cast<int>(n_);
  int lo = r.start < 0 ? 0 : r.start;
  int hi = r.end > n ? n : r.end;
  arena_.make_writable();
  for (int i = lo; i < hi; ++i) {
    if (!emit_slot(dp.insns[size_t(i)], i)) {
      valid_ = false;  // stale slots: the next use must fully re-translate
      arena_.make_executable();
      return false;
    }
  }
  arena_.make_executable();
  return true;
}

#else  // !defined(__x86_64__)

// Non-x86-64 hosts: the JIT backend exists but every program takes the
// interpreter fallback (translate/patch report "unsupported").
uint8_t* Translator::slot_ptr(int) const { return nullptr; }
Translator::EntryFn Translator::entry() const { return nullptr; }
bool Translator::emit_slot(const ebpf::DecodedInsn&, int) { return false; }
bool Translator::translate(const ebpf::DecodedProgram&) {
  valid_ = false;
  return false;
}
bool Translator::patch(const ebpf::DecodedProgram&, ebpf::InsnRange) {
  valid_ = false;
  return false;
}

#endif

}  // namespace k2::jit
