// k2c — the K2 compiler command-line driver, a thin client of the
// service-facing compilation API (src/api). Every mode builds a validated
// api::CompileRequest and goes through api::CompilerService — there is
// exactly one way into the engine.
//
//   k2c <input.s> [options]              one-shot single-program mode: read
//                                        BPF assembly (or --bench=<name>),
//                                        optimize, print the optimized
//                                        assembly (§7's drop-in workflow)
//   k2c --corpus[=n1,n2] [options]       batch mode: the corpus-sharded
//                                        orchestrator; --report writes the
//                                        k2-batch-report/v1 JSON
//   k2c serve --stdio|--socket=<path>    long-running service mode speaking
//                                        newline-delimited JSON (see
//                                        docs/API.md for the wire protocol)
//
// Flags are declared once in the table below (util::Flags): unknown flags,
// malformed values and unknown enum strings are hard errors — nothing
// silently falls back to a default. `k2c --help` prints the generated
// reference.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "api/request.h"
#include "api/serve.h"
#include "api/service.h"
#include "corpus/corpus.h"
#include "ebpf/bytecode.h"
#include "scenario/scenario.h"
#include "jit/exec_backend.h"
#include "jit/translator.h"
#include "sim/perf_model.h"
#include "testgen/differential.h"
#include "testgen/repro.h"
#include "util/flags.h"
#include "verify/cache_store.h"
#include "verify/solve_protocol.h"

namespace {

using namespace k2;

util::Flags make_flags() {
  using T = util::FlagSpec::Type;
  return util::Flags({
      {"goal", T::STRING, "size", "optimization objective", "size|latency"},
      {"perf-model", T::STRING, "",
       "perf(p) backend: insts = wire slots (goal size), latency = "
       "interpreter-traced estimate, static-latency = per-opcode sum "
       "(both goal latency)",
       "insts|latency|static-latency"},
      {"iters", T::UINT, "10000", "iterations per chain", ""},
      {"chains", T::INT, "4", "parallel Markov chains", ""},
      {"threads", T::INT, "4",
       "worker threads (chain pool in single mode with --parallel, "
       "benchmark-shard pool in batch mode)",
       ""},
      {"type", T::STRING, "xdp", "hook type for assembly input",
       "xdp|socket|trace"},
      {"wire", T::STRING, "", "also emit wire-format bytecode here", ""},
      {"bench", T::STRING, "",
       "optimize one corpus benchmark instead of a file", ""},
      {"corpus", T::OPT_STRING, "",
       "batch mode: compile the named corpus benchmarks (no value = all 19)",
       ""},
      {"sweep", T::STRING, "",
       "batch mode: one job per benchmark x setting (5 Table 8 settings / "
       "all 16)",
       "table8|full"},
      {"settings", T::STRING, "default",
       "search-parameter settings the chains cycle through",
       "default|table8"},
      {"report", T::STRING, "", "batch mode: write the JSON report here",
       ""},
      {"seed", T::UINT, "27442", "search seed (same seed = same result)",
       ""},
      {"top-k", T::INT, "1", "fully re-verified candidates to keep", ""},
      {"solver-workers", T::INT, "0",
       "dedicated Z3 threads for async equivalence dispatch (0 = "
       "synchronous)",
       ""},
      {"cache-dir", T::STRING, "",
       "persistent equivalence-cache directory: load settled verdicts at "
       "start, write through on every solve (warm-starts repeated runs)",
       ""},
      {"solver-endpoints", T::STRING, "",
       "comma-separated unix-socket paths of k2c solve-worker processes; "
       "equivalence queries are farmed out instead of solved in-process",
       ""},
      {"portfolio", T::INT, "1",
       "race each remote query on up to N endpoints with varied Z3 tactics; "
       "first definitive verdict wins (N>1 trades determinism for latency)",
       ""},
      {"max-insns", T::UINT, "1048576",
       "interpreter step budget per test execution", ""},
      {"scenario", T::STRING, "",
       "traffic scenario for the latency cost stage: a built-in catalog "
       "name (see `k2c scenario list`) or a k2-scenario/v1 JSON file path "
       "(pair with --perf-model=latency)",
       ""},
      {"lint", T::STRING, "",
       "scenario mode: lint this k2-scenario/v1 file (exit 2 with $.field "
       "diagnostics when malformed)",
       ""},
      {"exec-backend", T::STRING, "fast",
       "execution engine for candidate test runs: the fast interpreter or "
       "the x86-64 template JIT (bit-identical results; unsupported "
       "programs fall back per-program to the interpreter)",
       "fast|jit"},
      {"parallel", T::BOOL, "",
       "single mode: run chains on a thread pool (faster, gives up same-"
       "seed determinism)",
       ""},
      {"progress", T::BOOL, "",
       "stream progress events (ticks, new bests) to stderr", ""},
      {"stdio", T::BOOL, "", "serve mode: speak NDJSON on stdin/stdout", ""},
      {"socket", T::STRING, "",
       "serve mode: listen on this unix-domain socket path", ""},
      {"max-queued-jobs", T::UINT, "0",
       "serve mode: reject submits once this many jobs sit QUEUED "
       "(0 = unbounded)",
       ""},
      {"max-active-jobs", T::UINT, "0",
       "serve mode: reject submits once this many jobs are queued or "
       "running (0 = unbounded)",
       ""},
      {"max-events-per-job", T::UINT, "4096",
       "serve mode: per-job event-ring bound; oldest events age out when a "
       "consumer polls too slowly",
       ""},
      {"backends", T::STRING, "fast,jit",
       "fuzz mode: comma-separated executors to cross-check against the "
       "reference interpreter",
       ""},
      {"shrink", T::BOOL, "",
       "fuzz mode: delta-debug any disagreeing program down to a minimal "
       "repro before reporting it",
       ""},
      {"repro", T::STRING, "",
       "fuzz mode: replay one k2-repro/v1 .k2asm file instead of "
       "generating programs",
       ""},
      {"repro-out", T::STRING, "",
       "fuzz mode: write the (minimized) .k2asm repro of the first "
       "mismatch here",
       ""},
      {"inject-jit-bug", T::BOOL, "",
       "fuzz mode: deliberately miscompile mov64-immediate in the JIT "
       "(harness self-test; the run must report the planted mismatch)",
       ""},
  });
}

const char* kUsage =
    "usage: k2c <input.s> [options]            one-shot single-program mode\n"
    "       k2c --bench=<name> [options]       one-shot on a corpus benchmark\n"
    "       k2c --corpus[=n1,n2,...] [options] batch mode (JSON report)\n"
    "       k2c serve --stdio|--socket=<path>  long-running NDJSON service\n"
    "       k2c solve-worker --stdio|--socket=<path>\n"
    "                                          k2-solve/v1 equivalence "
    "worker\n"
    "       k2c cache-compact --cache-dir=<d>  deduplicate a persistent\n"
    "                                          equivalence-cache directory\n"
    "       k2c fuzz --seed=N --iters=M [--backends=fast,jit] [--shrink]\n"
    "                                          differential conformance fuzz\n"
    "                                          of the execution backends\n"
    "       k2c scenario list                  built-in traffic scenarios\n"
    "       k2c scenario lint <file>           validate a k2-scenario/v1 "
    "file\n"
    "       k2c scenario describe <name|file>  print canonical JSON + "
    "fingerprint\n"
    "       k2c scenario expand <name|file> --bench=<b> [--seed=N]\n"
    "                                          preview the expanded "
    "workload\n";

std::vector<std::string> split_endpoints(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string tok;
  while (std::getline(ss, tok, ','))
    if (!tok.empty()) out.push_back(tok);
  return out;
}

// Shared search knobs → request fields (both modes).
void apply_common(const util::Flags& f, api::CompileRequest* req) {
  req->goal = f.str("goal") == "latency" ? core::Goal::LATENCY
                                         : core::Goal::INST_COUNT;
  if (f.has("perf-model")) {
    sim::PerfModelKind kind;
    // The table already validated the enum string; the backend implies the
    // goal: slot counting is the size objective, both latency estimators
    // are the latency objective.
    sim::perf_model_kind_from_string(f.str("perf-model").c_str(), &kind);
    req->perf_model = kind;
    req->goal = kind == sim::PerfModelKind::INST_COUNT
                    ? core::Goal::INST_COUNT
                    : core::Goal::LATENCY;
  }
  if (f.str("settings") == "table8")
    req->settings = api::CompileRequest::Settings::TABLE8;
  req->iters_per_chain = f.unum("iters");
  req->num_chains = int(f.num("chains"));
  req->threads = int(f.num("threads"));
  req->seed = f.unum("seed");
  req->top_k = int(f.num("top-k"));
  req->solver_workers = int(f.num("solver-workers"));
  req->max_insns = f.unum("max-insns");
  // The table already validated the enum string.
  jit::exec_backend_from_string(f.str("exec-backend"), &req->exec_backend);
  req->cache_dir = f.str("cache-dir");
  req->solver_endpoints = split_endpoints(f.str("solver-endpoints"));
  req->portfolio = int(f.num("portfolio"));
  if (f.has("scenario")) {
    // A value that names a readable file is a scenario file; anything else
    // is treated as a catalog name (and an unknown name is a hard
    // validation error — never a silent fall-back to `default`).
    const std::string v = f.str("scenario");
    if (std::ifstream(v).good())
      req->scenario_file = v;
    else
      req->scenario = v;
  }
}

// Progress events → human-readable stderr lines (--progress).
void print_event(const api::Event& e) {
  if (e.type == "tick") {
    fprintf(stderr, "k2c: [%s] chain %lld iter %llu (%llu proposals)\n",
            e.job_id.c_str(),
            static_cast<long long>(e.data.at("chain").as_int()),
            static_cast<unsigned long long>(e.data.at("iter").as_uint()),
            static_cast<unsigned long long>(e.data.at("proposals").as_uint()));
  } else if (e.type == "best") {
    fprintf(stderr, "k2c: [%s] new best at iter %llu (perf %+.1f)\n",
            e.job_id.c_str(),
            static_cast<unsigned long long>(e.data.at("iter").as_uint()),
            e.data.at("perf").as_double());
  } else if (e.type == "job_done") {
    fprintf(stderr, "k2c: [%s] job %s/%s done in %.1fs%s\n", e.job_id.c_str(),
            e.data.get("benchmark") ? e.data.at("benchmark").as_string().c_str()
                                    : "-",
            e.data.get("setting") && !e.data.at("setting").as_string().empty()
                ? e.data.at("setting").as_string().c_str()
                : "base",
            e.data.at("wall_secs").as_double(),
            e.data.at("improved").as_bool() ? "" : " (no improvement)");
  }
}

int run_single(const util::Flags& f) {
  api::CompileRequest req;
  if (f.has("bench")) {
    req = api::CompileRequest::for_benchmark(f.str("bench"));
  } else {
    if (f.positional().empty()) {
      fputs(kUsage, stderr);
      return 2;
    }
    std::ifstream in(f.positional()[0]);
    if (!in) {
      fprintf(stderr, "k2c: cannot open %s\n", f.positional()[0].c_str());
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    req = api::CompileRequest::for_program(ss.str(), f.str("type"));
  }
  apply_common(f, &req);
  req.deterministic = !f.flag("parallel");
  const bool latency_goal = req.goal == core::Goal::LATENCY;

  api::CompilerService service({/*threads=*/req.threads,
                                /*solver_workers=*/req.solver_workers});
  api::JobHandle job;
  try {
    job = service.submit(std::move(req),
                         f.flag("progress") ? print_event : api::EventFn{});
  } catch (const api::ValidationError& e) {
    fprintf(stderr, "k2c: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    fprintf(stderr, "k2c: %s\n", e.what());
    return 2;
  }
  job.wait();
  api::CompileResponse resp = job.response();
  if (resp.state == api::JobState::FAILED) {
    fprintf(stderr, "k2c: %s\n", resp.error.c_str());
    return 2;
  }
  const core::CompileResult& res = *resp.single;

  fprintf(stderr,
          "k2c: %s: %.0f -> %.0f %s (%llu proposals, %.1fs, cache %.0f%%)\n",
          res.improved ? "improved" : "no improvement", res.src_perf,
          res.best_perf, latency_goal ? "est. ns" : "slots",
          static_cast<unsigned long long>(res.total_proposals),
          res.total_secs, res.cache.hit_rate() * 100);
  fprintf(stderr,
          "k2c: pipeline: %llu tests run, %llu skipped by early exit "
          "(%llu exits)\n",
          static_cast<unsigned long long>(res.tests_executed),
          static_cast<unsigned long long>(res.tests_skipped),
          static_cast<unsigned long long>(res.early_exits));
  if (res.speculations > 0)
    fprintf(stderr,
            "k2c: async dispatch: %llu speculations (%llu rollbacks, "
            "%llu shared queries), solver queue peak %llu\n",
            static_cast<unsigned long long>(res.speculations),
            static_cast<unsigned long long>(res.rollbacks),
            static_cast<unsigned long long>(res.pending_joins),
            static_cast<unsigned long long>(res.solver_queue_peak));
  if (res.jit_bailouts > 0)
    fprintf(stderr,
            "k2c: jit: %llu candidates fell back to the interpreter\n",
            static_cast<unsigned long long>(res.jit_bailouts));
  if (res.cache.disk_loaded > 0 || res.cache.disk_writes > 0)
    fprintf(stderr,
            "k2c: persistent cache: %llu verdicts loaded, %llu disk-tier "
            "hits, %llu written through\n",
            static_cast<unsigned long long>(res.cache.disk_loaded),
            static_cast<unsigned long long>(res.cache.disk_hits),
            static_cast<unsigned long long>(res.cache.disk_writes));
  fprintf(stderr, "k2c: kernel checker: %d accepted, %d rejected during "
                  "final verification\n",
          res.kernel_accepted, res.kernel_rejected);
  if (!res.scenario.empty() && res.scenario != "default")
    fprintf(stderr, "k2c: scenario: %s (fingerprint %s)\n",
            res.scenario.c_str(), res.scenario_fingerprint.c_str());

  printf("%s", resp.best_asm.c_str());

  if (f.has("wire")) {
    // The in-process response still carries the verified program (with its
    // map table and hook type — disassembly alone loses both), so the wire
    // bytes derive from exactly the program that was re-verified.
    std::vector<uint8_t> bytes =
        ebpf::to_bytes(ebpf::encode_wire(res.best));
    std::ofstream out(f.str("wire"), std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              std::streamsize(bytes.size()));
    fprintf(stderr, "k2c: wrote %zu wire bytes to %s\n", bytes.size(),
            f.str("wire").c_str());
  }
  return 0;
}

int run_batch(const util::Flags& f) {
  std::vector<std::string> names;
  {
    std::stringstream ss(f.str("corpus"));
    std::string tok;
    while (std::getline(ss, tok, ','))
      if (!tok.empty()) names.push_back(tok);
  }
  api::CompileRequest req = api::CompileRequest::for_corpus(std::move(names));
  apply_common(f, &req);
  if (f.has("sweep"))
    req.sweep = f.str("sweep") == "table8"
                    ? api::CompileRequest::Sweep::TABLE8
                    : api::CompileRequest::Sweep::FULL;

  size_t nbench = req.corpus.empty() ? corpus::all_benchmarks().size()
                                     : req.corpus.size();
  size_t njobs =
      nbench * (req.sweep == api::CompileRequest::Sweep::NONE
                    ? 1
                    : (req.sweep == api::CompileRequest::Sweep::TABLE8
                           ? core::table8_settings().size()
                           : core::default_settings().size()));
  // Derive the banner's perf model without full request lowering —
  // to_compile_options() resolves the scenario (possibly reading a file)
  // and its validation errors belong to submit()'s error path, not here.
  core::CompileOptions pm_probe;
  pm_probe.goal = req.goal;
  pm_probe.perf_model = req.perf_model;
  fprintf(stderr,
          "k2c: batch: %zu jobs (%zu benchmarks), %d shard threads, "
          "%d solver workers, perf model %s\n",
          njobs, nbench, req.threads, req.solver_workers,
          sim::to_string(core::resolved_perf_model(pm_probe)));
  if (!req.scenario.empty() || !req.scenario_file.empty())
    fprintf(stderr, "k2c: scenario: %s\n",
            (req.scenario_file.empty() ? req.scenario : req.scenario_file)
                .c_str());

  api::CompilerService service({/*threads=*/req.threads,
                                /*solver_workers=*/req.solver_workers});
  api::JobHandle job;
  try {
    job = service.submit(std::move(req),
                         f.flag("progress") ? print_event : api::EventFn{});
  } catch (const std::exception& e) {
    fprintf(stderr, "k2c: %s\n", e.what());
    return 2;
  }
  job.wait();
  api::CompileResponse resp = job.response();
  if (resp.state == api::JobState::FAILED) {
    fprintf(stderr, "k2c: batch failed: %s\n", resp.error.c_str());
    return 2;
  }
  const core::BatchReport& report = *resp.batch;

  // Human-readable summary on stderr; the machine-readable report on disk.
  for (const core::BatchBenchmarkResult& b : report.benchmarks) {
    if (!b.error.empty()) {
      fprintf(stderr, "k2c:   %-22s ERROR: %s\n", b.name.c_str(),
              b.error.c_str());
      continue;
    }
    fprintf(stderr,
            "k2c:   %-22s %4d -> %4d slots (paper K2 %d)%s  [%.1fs]\n",
            b.name.c_str(), b.src_slots, b.best_slots, b.paper_k2,
            b.improved ? "" : "  no improvement", b.wall_secs);
  }
  fprintf(stderr,
          "k2c: batch done in %.1fs: %llu proposals, %llu solver calls, "
          "cache %llu/%llu hits\n",
          report.wall_secs,
          static_cast<unsigned long long>(report.totals.proposals),
          static_cast<unsigned long long>(report.totals.solver_calls),
          static_cast<unsigned long long>(report.totals.cache_hits),
          static_cast<unsigned long long>(report.totals.cache_hits +
                                          report.totals.cache_misses));
  if (report.totals.disk_loaded > 0 || report.totals.disk_writes > 0)
    fprintf(stderr,
            "k2c: persistent cache: %llu verdicts loaded, %llu disk-tier "
            "hits, %llu written through\n",
            static_cast<unsigned long long>(report.totals.disk_loaded),
            static_cast<unsigned long long>(report.totals.disk_hits),
            static_cast<unsigned long long>(report.totals.disk_writes));

  std::string json = report.to_json().dump(2);
  if (f.has("report")) {
    std::ofstream out(f.str("report"));
    if (!out) {
      fprintf(stderr, "k2c: cannot write %s\n", f.str("report").c_str());
      return 2;
    }
    out << json << "\n";
    fprintf(stderr, "k2c: wrote report to %s\n", f.str("report").c_str());
  } else {
    printf("%s\n", json.c_str());
  }
  return 0;
}

int run_serve(const util::Flags& f) {
  api::ServiceOptions sopts;
  sopts.threads = int(f.num("threads"));
  sopts.solver_workers = int(f.num("solver-workers"));
  sopts.cache_dir = f.str("cache-dir");
  sopts.solver_endpoints = split_endpoints(f.str("solver-endpoints"));
  sopts.max_queued_jobs = size_t(f.num("max-queued-jobs"));
  sopts.max_active_jobs = size_t(f.num("max-active-jobs"));
  sopts.max_events_per_job = size_t(f.num("max-events-per-job"));
  sopts.portfolio = int(f.num("portfolio"));
  std::optional<api::CompilerService> service;
  try {
    service.emplace(sopts);  // throws on an unopenable --cache-dir
  } catch (const std::exception& e) {
    fprintf(stderr, "k2c: serve: %s\n", e.what());
    return 2;
  }

  if (f.has("socket")) {
    fprintf(stderr, "k2c: serving NDJSON on unix socket %s (%d threads)\n",
            f.str("socket").c_str(), sopts.threads);
    int err = api::serve_unix_socket(*service, f.str("socket"));
    if (err != 0) {
      fprintf(stderr, "k2c: serve: socket error: %s\n", strerror(err));
      return 2;
    }
    return 0;
  }
  if (!f.flag("stdio")) {
    fprintf(stderr, "k2c: serve needs --stdio or --socket=<path>\n");
    return 2;
  }
  fprintf(stderr, "k2c: serving NDJSON on stdio (%d threads); send "
                  "{\"op\":\"shutdown\"} to stop\n",
          sopts.threads);
  api::ServeLoop loop(*service);
  loop.run(std::cin, std::cout);
  return 0;
}

// `k2c cache-compact --cache-dir=<d>` — offline last-writer-wins
// deduplication of a persistent equivalence-cache directory. Concurrent
// cold runs sharing one --cache-dir each append their own copy of a
// verdict; compaction rewrites every shard keeping one record per key, so
// warm-starts read (and re-verify checksums over) far fewer lines while
// behaving bit-identically.
int run_cache_compact(const util::Flags& f) {
  const std::string dir = f.str("cache-dir");
  if (dir.empty()) {
    fprintf(stderr, "k2c: cache-compact needs --cache-dir=<dir>\n");
    return 2;
  }
  verify::CacheStore::CompactionStats cs;
  std::string error;
  if (!verify::CacheStore::compact(dir, &cs, &error)) {
    fprintf(stderr, "k2c: cache-compact: %s\n", error.c_str());
    return 2;
  }
  fprintf(stderr,
          "k2c: cache-compact: %s: %llu records -> %llu "
          "(%llu duplicates removed)\n",
          dir.c_str(), static_cast<unsigned long long>(cs.records_before),
          static_cast<unsigned long long>(cs.records_after),
          static_cast<unsigned long long>(cs.records_before -
                                          cs.records_after));
  return 0;
}

// `k2c solve-worker` — one k2-solve/v1 equivalence worker: the process a
// RemoteSolverBackend (--solver-endpoints) farms Z3 queries to. Same
// transports as serve mode, same line pump.
int run_solve_worker(const util::Flags& f) {
  verify::SolveWorker worker;
  if (f.has("socket")) {
    fprintf(stderr, "k2c: solve-worker serving k2-solve/v1 on unix socket "
                    "%s\n",
            f.str("socket").c_str());
    int err = api::serve_lines_on_unix_socket(
        f.str("socket"), [&worker](const std::string& line, bool* stop) {
          return worker.handle_line(line, stop);
        });
    if (err != 0) {
      fprintf(stderr, "k2c: solve-worker: socket error: %s\n", strerror(err));
      return 2;
    }
    return 0;
  }
  if (!f.flag("stdio")) {
    fprintf(stderr, "k2c: solve-worker needs --stdio or --socket=<path>\n");
    return 2;
  }
  fprintf(stderr, "k2c: solve-worker serving k2-solve/v1 on stdio; send "
                  "{\"op\":\"shutdown\"} to stop\n");
  worker.run(std::cin, std::cout);
  return 0;
}

// `k2c fuzz` — the cross-backend differential conformance harness
// (src/testgen): generated programs + random inputs through the legacy
// interpreter (reference) and every --backends executor, cross-checked
// bit-for-bit. Exit 0 = all pairs agreed, 3 = mismatch (repro printed and,
// with --repro-out, written to disk), 2 = usage error.
int run_fuzz(const util::Flags& f) {
  conformance::HarnessConfig cfg;
  cfg.gen.seed = f.unum("seed");
  cfg.iters = f.unum("iters");
  cfg.shrink = f.flag("shrink");
  cfg.backends.clear();
  for (const std::string& tok : split_endpoints(f.str("backends"))) {
    jit::ExecBackend be;
    if (!jit::exec_backend_from_string(tok, &be)) {
      fprintf(stderr, "k2c: fuzz: unknown backend '%s' (want fast|jit)\n",
              tok.c_str());
      return 2;
    }
    cfg.backends.push_back(be);
  }
  if (cfg.backends.empty()) {
    fprintf(stderr, "k2c: fuzz: --backends must name at least one backend\n");
    return 2;
  }
  if (f.flag("inject-jit-bug")) jit::set_test_miscompile(true);

  conformance::Report rep;
  if (f.has("repro")) {
    std::ifstream in(f.str("repro"));
    if (!in) {
      fprintf(stderr, "k2c: cannot open %s\n", f.str("repro").c_str());
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    testgen::Repro repro;
    try {
      repro = testgen::parse_repro(ss.str());
    } catch (const std::exception& e) {
      fprintf(stderr, "k2c: fuzz: %s\n", e.what());
      return 2;
    }
    conformance::DifferentialHarness harness(cfg);
    rep = harness.replay(repro.program, repro.input, repro.opt);
  } else {
    conformance::DifferentialHarness harness(cfg);
    rep = harness.run();
  }

  fprintf(stderr, "k2c: fuzz: %s\n", rep.summary().c_str());
  if (rep.ok()) return 0;

  for (const conformance::Mismatch& mm : rep.mismatches)
    fprintf(stderr,
            "k2c: fuzz: MISMATCH backend=%s %s (program %d insns, "
            "shrunk to %d)\n",
            mm.backend.c_str(), mm.detail.c_str(),
            int(mm.program.insns.size()), int(mm.shrunk.insns.size()));
  const conformance::Mismatch& first = rep.mismatches.front();
  if (f.has("repro-out")) {
    std::ofstream out(f.str("repro-out"));
    if (!out) {
      fprintf(stderr, "k2c: cannot write %s\n", f.str("repro-out").c_str());
      return 2;
    }
    out << first.repro;
    fprintf(stderr, "k2c: fuzz: wrote repro to %s\n",
            f.str("repro-out").c_str());
  } else {
    fputs(first.repro.c_str(), stderr);
  }
  return 3;
}

// Loads + strictly parses a k2-scenario/v1 file, printing one `$.path:
// message` diagnostic line per problem on failure.
bool load_scenario_file_cli(const std::string& path, scenario::Scenario* out) {
  std::ifstream in(path);
  if (!in) {
    fprintf(stderr, "k2c: scenario: cannot open %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  try {
    *out = scenario::Scenario::from_json(util::Json::parse(ss.str()));
  } catch (const scenario::ScenarioError& e) {
    for (const scenario::Diag& d : e.diagnostics())
      fprintf(stderr, "k2c: scenario: %s: %s: %s\n", path.c_str(),
              d.path.c_str(), d.message.c_str());
    return false;
  } catch (const std::exception& e) {
    fprintf(stderr, "k2c: scenario: %s: $: %s\n", path.c_str(), e.what());
    return false;
  }
  return true;
}

// Catalog name or file path -> Scenario (file wins when the path is
// readable, mirroring --scenario's resolution).
bool resolve_scenario_arg(const std::string& arg, scenario::Scenario* out) {
  if (std::ifstream(arg).good()) return load_scenario_file_cli(arg, out);
  const scenario::Scenario* s = scenario::find_scenario(arg);
  if (!s) {
    fprintf(stderr,
            "k2c: scenario: unknown scenario '%s' (expected %s, or a "
            "readable file path)\n",
            arg.c_str(), scenario::catalog_names().c_str());
    return false;
  }
  *out = *s;
  return true;
}

// `k2c scenario <list|lint|describe|expand>` — inspect and validate
// traffic scenarios without running a compile. `k2c scenario --lint=<file>`
// is an alias for the lint verb.
int run_scenario(const util::Flags& f) {
  const std::vector<std::string>& pos = f.positional();
  std::string verb = pos.size() > 1 ? pos[1] : "";
  std::string target = pos.size() > 2 ? pos[2] : "";
  if (f.has("lint")) {
    if (!verb.empty()) {
      fprintf(stderr, "k2c: scenario: --lint and a verb are exclusive\n");
      return 2;
    }
    verb = "lint";
    target = f.str("lint");
  }

  if (verb == "list" || verb.empty()) {
    for (const scenario::Scenario& s : scenario::catalog())
      printf("%-20s %s  %s\n", s.name.c_str(), s.fingerprint().c_str(),
             s.description.c_str());
    return 0;
  }
  if (verb == "lint") {
    if (target.empty()) {
      fprintf(stderr, "k2c: scenario lint needs a file path\n");
      return 2;
    }
    scenario::Scenario s;
    if (!load_scenario_file_cli(target, &s)) return 2;
    fprintf(stderr, "k2c: scenario: %s OK: name=%s fingerprint=%s\n",
            target.c_str(), s.name.c_str(), s.fingerprint().c_str());
    return 0;
  }
  if (verb == "describe") {
    scenario::Scenario s;
    if (target.empty() || !resolve_scenario_arg(target, &s)) return 2;
    printf("%s\n", s.to_json().dump(2).c_str());
    fprintf(stderr, "k2c: scenario: fingerprint=%s\n", s.fingerprint().c_str());
    return 0;
  }
  if (verb == "expand") {
    scenario::Scenario s;
    if (target.empty() || !resolve_scenario_arg(target, &s)) return 2;
    if (!f.has("bench")) {
      fprintf(stderr,
              "k2c: scenario expand needs --bench=<corpus benchmark> (its "
              "maps shape the workload)\n");
      return 2;
    }
    const ebpf::Program* prog;
    try {
      prog = &corpus::benchmark(f.str("bench")).o2;
    } catch (const std::out_of_range&) {
      fprintf(stderr, "k2c: scenario: unknown benchmark '%s'\n",
              f.str("bench").c_str());
      return 2;
    }
    std::vector<interp::InputSpec> workload =
        scenario::expand(s, *prog, f.unum("seed"));
    fprintf(stderr,
            "k2c: scenario %s (fingerprint %s): %zu inputs for %s, "
            "seed %llu\n",
            s.name.c_str(), s.fingerprint().c_str(), workload.size(),
            f.str("bench").c_str(),
            static_cast<unsigned long long>(f.unum("seed")));
    for (size_t i = 0; i < workload.size(); ++i) {
      const interp::InputSpec& in = workload[i];
      size_t entries = 0;
      for (const auto& [fd, es] : in.maps) entries += es.size();
      printf("input %3zu: packet %4zu B, %zu map entries in %zu maps, "
             "ktime %llu, cpu %u\n",
             i, in.packet.size(), entries, in.maps.size(),
             static_cast<unsigned long long>(in.ktime_base), in.cpu_id);
    }
    return 0;
  }
  fprintf(stderr,
          "k2c: scenario: unknown verb '%s' (expected "
          "list|lint|describe|expand)\n",
          verb.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags f = make_flags();
  std::string error;
  if (!f.parse(argc, argv, &error)) {
    fprintf(stderr, "k2c: %s\n", error.c_str());
    return 2;
  }
  if (f.help_requested()) {
    fputs(f.help(kUsage).c_str(), stdout);
    return 0;
  }
  // Stray arguments are hard errors, same as unknown flags: `--corpus
  // xdp_fw` (value-less OPT_STRING followed by a positional) must not
  // silently run the full 19-benchmark corpus.
  auto reject_positionals = [&](size_t allowed, const char* mode) {
    if (f.positional().size() <= allowed) return false;
    fprintf(stderr, "k2c: unexpected argument '%s' in %s mode (see --help)\n",
            f.positional()[allowed].c_str(), mode);
    return true;
  };
  if (!f.positional().empty() && f.positional()[0] == "serve") {
    if (reject_positionals(1, "serve")) return 2;
    return run_serve(f);
  }
  if (!f.positional().empty() && f.positional()[0] == "solve-worker") {
    if (reject_positionals(1, "solve-worker")) return 2;
    return run_solve_worker(f);
  }
  if (!f.positional().empty() && f.positional()[0] == "cache-compact") {
    if (reject_positionals(1, "cache-compact")) return 2;
    return run_cache_compact(f);
  }
  if (!f.positional().empty() && f.positional()[0] == "fuzz") {
    if (reject_positionals(1, "fuzz")) return 2;
    return run_fuzz(f);
  }
  if (!f.positional().empty() && f.positional()[0] == "scenario") {
    if (reject_positionals(3, "scenario")) return 2;
    return run_scenario(f);
  }
  if (f.has("corpus")) {
    if (reject_positionals(0, "batch")) return 2;
    return run_batch(f);
  }
  if (f.has("bench")) {
    if (reject_positionals(0, "--bench")) return 2;
    return run_single(f);
  }
  if (f.positional().empty()) {
    fputs(kUsage, stderr);
    return 2;
  }
  if (reject_positionals(1, "single-program")) return 2;
  return run_single(f);
}
