// k2c — the K2 compiler command-line driver.
//
// Reads a BPF assembly file, optimizes it with the synthesis pipeline, and
// writes the optimized assembly (and optionally the kernel wire-format
// bytes) — the "drop-in replacement" workflow of §7.
//
// Usage:
//   k2c <input.s> [options]
//     --goal=size|latency      optimization objective (default size)
//     --iters=N                iterations per chain (default 10000)
//     --chains=N               parallel Markov chains (default 4)
//     --type=xdp|socket|trace  hook type (default xdp)
//     --wire=<out.bin>         also emit wire-format bytecode
//     --bench=<name>           optimize a corpus benchmark instead of a file
//     --solver-workers=N       dedicated Z3 threads for async equivalence
//                              dispatch (default 0 = synchronous)
//     --max-insns=N            interpreter step budget per test execution
//                              (default 1048576)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/compiler.h"
#include "corpus/corpus.h"
#include "ebpf/assembler.h"
#include "ebpf/bytecode.h"
#include "kernel/kernel_checker.h"

namespace {

const char* arg_value(int argc, char** argv, const char* key) {
  size_t n = strlen(key);
  for (int i = 1; i < argc; ++i)
    if (strncmp(argv[i], key, n) == 0 && argv[i][n] == '=')
      return argv[i] + n + 1;
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace k2;
  if (argc < 2) {
    fprintf(stderr,
            "usage: k2c <input.s> [--goal=size|latency] [--iters=N] "
            "[--chains=N] [--type=xdp|socket|trace] [--wire=out.bin] "
            "[--bench=name]\n");
    return 2;
  }

  ebpf::Program src;
  try {
    if (const char* bench = arg_value(argc, argv, "--bench")) {
      src = corpus::benchmark(bench).o2;
    } else {
      std::ifstream in(argv[1]);
      if (!in) {
        fprintf(stderr, "k2c: cannot open %s\n", argv[1]);
        return 2;
      }
      std::stringstream ss;
      ss << in.rdbuf();
      ebpf::ProgType type = ebpf::ProgType::XDP;
      if (const char* t = arg_value(argc, argv, "--type")) {
        if (strcmp(t, "socket") == 0) type = ebpf::ProgType::SOCKET_FILTER;
        if (strcmp(t, "trace") == 0) type = ebpf::ProgType::TRACEPOINT;
      }
      src = ebpf::assemble(ss.str(), type);
    }
  } catch (const std::exception& e) {
    fprintf(stderr, "k2c: %s\n", e.what());
    return 2;
  }

  core::CompileOptions opts;
  if (const char* g = arg_value(argc, argv, "--goal"))
    opts.goal = strcmp(g, "latency") == 0 ? core::Goal::LATENCY
                                          : core::Goal::INST_COUNT;
  if (const char* it = arg_value(argc, argv, "--iters"))
    opts.iters_per_chain = strtoull(it, nullptr, 10);
  else
    opts.iters_per_chain = 10000;
  if (const char* ch = arg_value(argc, argv, "--chains"))
    opts.num_chains = atoi(ch);
  opts.threads = opts.num_chains;
  if (const char* sw = arg_value(argc, argv, "--solver-workers"))
    opts.solver_workers = atoi(sw);
  if (const char* mi = arg_value(argc, argv, "--max-insns")) {
    opts.max_insns = strtoull(mi, nullptr, 10);
    if (opts.max_insns == 0) {
      fprintf(stderr, "k2c: --max-insns must be positive\n");
      return 2;
    }
  }

  fprintf(stderr, "k2c: input %d instructions; searching (%d chains x %llu "
                  "iterations)...\n",
          src.size_slots(), opts.num_chains,
          static_cast<unsigned long long>(opts.iters_per_chain));
  core::CompileResult res = core::compile(src, opts);
  fprintf(stderr,
          "k2c: %s: %.0f -> %.0f %s (%llu proposals, %.1fs, cache %.0f%%)\n",
          res.improved ? "improved" : "no improvement",
          res.src_perf, res.best_perf,
          opts.goal == core::Goal::INST_COUNT ? "slots" : "est. ns",
          static_cast<unsigned long long>(res.total_proposals),
          res.total_secs, res.cache.hit_rate() * 100);
  fprintf(stderr,
          "k2c: pipeline: %llu tests run, %llu skipped by early exit "
          "(%llu exits)\n",
          static_cast<unsigned long long>(res.tests_executed),
          static_cast<unsigned long long>(res.tests_skipped),
          static_cast<unsigned long long>(res.early_exits));
  if (opts.solver_workers > 0)
    fprintf(stderr,
            "k2c: async dispatch: %llu speculations (%llu rollbacks, "
            "%llu shared queries), solver queue peak %llu\n",
            static_cast<unsigned long long>(res.speculations),
            static_cast<unsigned long long>(res.rollbacks),
            static_cast<unsigned long long>(res.pending_joins),
            static_cast<unsigned long long>(res.solver_queue_peak));

  kernel::CheckResult kc = kernel::kernel_check(res.best);
  fprintf(stderr, "k2c: kernel checker: %s\n",
          kc.accepted ? "ACCEPT" : kc.reason.c_str());

  printf("%s", ebpf::disassemble(res.best).c_str());

  if (const char* wire_path = arg_value(argc, argv, "--wire")) {
    std::vector<uint8_t> bytes =
        ebpf::to_bytes(ebpf::encode_wire(res.best));
    std::ofstream out(wire_path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              std::streamsize(bytes.size()));
    fprintf(stderr, "k2c: wrote %zu wire bytes to %s\n", bytes.size(),
            wire_path);
  }
  return 0;
}
