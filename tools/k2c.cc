// k2c — the K2 compiler command-line driver.
//
// Single-program mode reads a BPF assembly file (or a corpus benchmark),
// optimizes it with the synthesis pipeline, and writes the optimized
// assembly (and optionally the kernel wire-format bytes) — the "drop-in
// replacement" workflow of §7. Batch mode (--corpus) drives the
// corpus-sharded orchestrator over many benchmarks in one process, sharing
// one thread pool, one solver dispatcher and per-benchmark equivalence
// caches, and emits a structured JSON report (--report).
//
// Usage:
//   k2c <input.s> [options]            single-program mode
//   k2c --corpus[=name1,name2] [options]   batch mode
//     --goal=size|latency      optimization objective (default size)
//     --perf-model=insts|latency|static-latency
//                              perf(p) backend for the cost stage: insts =
//                              wire slots (implies --goal=size), latency =
//                              interpreter-traced workload estimate,
//                              static-latency = per-opcode static sum (both
//                              imply --goal=latency); overrides --goal
//     --iters=N                iterations per chain (default 10000)
//     --chains=N               parallel Markov chains (default 4)
//     --threads=N              worker threads (chain pool in single mode,
//                              benchmark-shard pool in batch mode; batch
//                              results are bit-identical across values)
//     --type=xdp|socket|trace  hook type (default xdp)
//     --wire=<out.bin>         also emit wire-format bytecode
//     --bench=<name>           optimize one corpus benchmark instead of a file
//     --corpus[=n1,n2,...]     batch mode: compile the named corpus
//                              benchmarks (no value = all 19)
//     --sweep=table8|full      batch mode: one job per benchmark×setting
//                              (5 Table 8 settings / all 16; default: one
//                              job per benchmark)
//     --report=<out.json>      batch mode: write the JSON report here
//     --solver-workers=N       dedicated Z3 threads for async equivalence
//                              dispatch (default 0 = synchronous)
//     --max-insns=N            interpreter step budget per test execution
//                              (default 1048576)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/batch_compiler.h"
#include "core/compiler.h"
#include "corpus/corpus.h"
#include "ebpf/assembler.h"
#include "ebpf/bytecode.h"
#include "kernel/kernel_checker.h"
#include "sim/perf_model.h"

namespace {

const char* arg_value(int argc, char** argv, const char* key) {
  size_t n = strlen(key);
  for (int i = 1; i < argc; ++i)
    if (strncmp(argv[i], key, n) == 0 && argv[i][n] == '=')
      return argv[i] + n + 1;
  return nullptr;
}

// True when `key` is present, bare or with a =value.
bool has_flag(int argc, char** argv, const char* key) {
  size_t n = strlen(key);
  for (int i = 1; i < argc; ++i)
    if (strncmp(argv[i], key, n) == 0 &&
        (argv[i][n] == '\0' || argv[i][n] == '='))
      return true;
  return false;
}

std::vector<std::string> split_csv(const char* s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ','))
    if (!tok.empty()) out.push_back(tok);
  return out;
}

void usage() {
  fprintf(stderr,
          "usage: k2c <input.s> [--goal=size|latency] "
          "[--perf-model=insts|latency|static-latency] [--iters=N] "
          "[--chains=N] [--threads=N] [--type=xdp|socket|trace] "
          "[--wire=out.bin] [--bench=name]\n"
          "       k2c --corpus[=n1,n2] [--sweep=table8|full] "
          "[--report=out.json] [options]\n");
}

// Shared search knobs for both modes. Returns false on a bad value.
bool parse_common(int argc, char** argv, k2::core::CompileOptions* opts) {
  using namespace k2;
  if (const char* g = arg_value(argc, argv, "--goal"))
    opts->goal = strcmp(g, "latency") == 0 ? core::Goal::LATENCY
                                           : core::Goal::INST_COUNT;
  if (const char* pm = arg_value(argc, argv, "--perf-model")) {
    sim::PerfModelKind kind;
    if (!sim::perf_model_kind_from_string(pm, &kind)) {
      fprintf(stderr,
              "k2c: unknown --perf-model '%s' (insts, latency, "
              "static-latency)\n",
              pm);
      return false;
    }
    opts->perf_model = kind;
    // The backend implies the goal: slot counting is the size objective,
    // both latency estimators are the latency objective.
    opts->goal = kind == sim::PerfModelKind::INST_COUNT
                     ? core::Goal::INST_COUNT
                     : core::Goal::LATENCY;
  }
  if (const char* it = arg_value(argc, argv, "--iters"))
    opts->iters_per_chain = strtoull(it, nullptr, 10);
  else
    opts->iters_per_chain = 10000;
  if (const char* ch = arg_value(argc, argv, "--chains"))
    opts->num_chains = atoi(ch);
  if (const char* sw = arg_value(argc, argv, "--solver-workers"))
    opts->solver_workers = atoi(sw);
  if (const char* mi = arg_value(argc, argv, "--max-insns")) {
    opts->max_insns = strtoull(mi, nullptr, 10);
    if (opts->max_insns == 0) {
      fprintf(stderr, "k2c: --max-insns must be positive\n");
      return false;
    }
  }
  return true;
}

int run_batch(int argc, char** argv) {
  using namespace k2;
  core::BatchOptions bopts;
  if (!parse_common(argc, argv, &bopts.base)) return 2;
  if (const char* names = arg_value(argc, argv, "--corpus"))
    bopts.benchmarks = split_csv(names);
  if (const char* sweep = arg_value(argc, argv, "--sweep")) {
    if (strcmp(sweep, "table8") == 0)
      bopts.sweep = core::table8_settings();
    else if (strcmp(sweep, "full") == 0)
      bopts.sweep = core::default_settings();
    else {
      fprintf(stderr, "k2c: unknown --sweep '%s' (table8, full)\n", sweep);
      return 2;
    }
  }
  bopts.threads = 4;
  if (const char* th = arg_value(argc, argv, "--threads"))
    bopts.threads = atoi(th);

  size_t njobs = (bopts.benchmarks.empty() ? corpus::all_benchmarks().size()
                                           : bopts.benchmarks.size()) *
                 (bopts.sweep.empty() ? 1 : bopts.sweep.size());
  fprintf(stderr,
          "k2c: batch: %zu jobs (%zu benchmarks), %d shard threads, "
          "%d solver workers, perf model %s\n",
          njobs,
          bopts.benchmarks.empty() ? corpus::all_benchmarks().size()
                                   : bopts.benchmarks.size(),
          bopts.threads, bopts.base.solver_workers,
          sim::to_string(core::resolved_perf_model(bopts.base)));

  core::BatchReport report;
  try {
    report = core::BatchCompiler(bopts).run();
  } catch (const std::exception& e) {
    fprintf(stderr, "k2c: batch failed: %s\n", e.what());
    return 2;
  }

  // Human-readable summary on stderr; the machine-readable report on disk.
  for (const core::BatchBenchmarkResult& b : report.benchmarks) {
    if (!b.error.empty()) {
      fprintf(stderr, "k2c:   %-22s ERROR: %s\n", b.name.c_str(),
              b.error.c_str());
      continue;
    }
    fprintf(stderr,
            "k2c:   %-22s %4d -> %4d slots (paper K2 %d)%s  [%.1fs]\n",
            b.name.c_str(), b.src_slots, b.best_slots, b.paper_k2,
            b.improved ? "" : "  no improvement", b.wall_secs);
  }
  fprintf(stderr,
          "k2c: batch done in %.1fs: %llu proposals, %llu solver calls, "
          "cache %llu/%llu hits\n",
          report.wall_secs,
          static_cast<unsigned long long>(report.totals.proposals),
          static_cast<unsigned long long>(report.totals.solver_calls),
          static_cast<unsigned long long>(report.totals.cache_hits),
          static_cast<unsigned long long>(report.totals.cache_hits +
                                          report.totals.cache_misses));

  std::string json = report.to_json().dump(2);
  if (const char* path = arg_value(argc, argv, "--report")) {
    std::ofstream out(path);
    if (!out) {
      fprintf(stderr, "k2c: cannot write %s\n", path);
      return 2;
    }
    out << json << "\n";
    fprintf(stderr, "k2c: wrote report to %s\n", path);
  } else {
    printf("%s\n", json.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace k2;
  if (argc < 2) {
    usage();
    return 2;
  }
  if (has_flag(argc, argv, "--corpus")) return run_batch(argc, argv);

  ebpf::Program src;
  try {
    if (const char* bench = arg_value(argc, argv, "--bench")) {
      src = corpus::benchmark(bench).o2;
    } else {
      std::ifstream in(argv[1]);
      if (!in) {
        fprintf(stderr, "k2c: cannot open %s\n", argv[1]);
        return 2;
      }
      std::stringstream ss;
      ss << in.rdbuf();
      ebpf::ProgType type = ebpf::ProgType::XDP;
      if (const char* t = arg_value(argc, argv, "--type")) {
        if (strcmp(t, "socket") == 0) type = ebpf::ProgType::SOCKET_FILTER;
        if (strcmp(t, "trace") == 0) type = ebpf::ProgType::TRACEPOINT;
      }
      src = ebpf::assemble(ss.str(), type);
    }
  } catch (const std::exception& e) {
    fprintf(stderr, "k2c: %s\n", e.what());
    return 2;
  }

  core::CompileOptions opts;
  if (!parse_common(argc, argv, &opts)) return 2;
  opts.threads = opts.num_chains;
  if (const char* th = arg_value(argc, argv, "--threads"))
    opts.threads = atoi(th);

  fprintf(stderr, "k2c: input %d instructions; searching (%d chains x %llu "
                  "iterations)...\n",
          src.size_slots(), opts.num_chains,
          static_cast<unsigned long long>(opts.iters_per_chain));
  core::CompileResult res = core::compile(src, opts);
  fprintf(stderr,
          "k2c: %s: %.0f -> %.0f %s (%llu proposals, %.1fs, cache %.0f%%)\n",
          res.improved ? "improved" : "no improvement",
          res.src_perf, res.best_perf,
          opts.goal == core::Goal::INST_COUNT ? "slots" : "est. ns",
          static_cast<unsigned long long>(res.total_proposals),
          res.total_secs, res.cache.hit_rate() * 100);
  fprintf(stderr,
          "k2c: pipeline: %llu tests run, %llu skipped by early exit "
          "(%llu exits)\n",
          static_cast<unsigned long long>(res.tests_executed),
          static_cast<unsigned long long>(res.tests_skipped),
          static_cast<unsigned long long>(res.early_exits));
  if (opts.solver_workers > 0)
    fprintf(stderr,
            "k2c: async dispatch: %llu speculations (%llu rollbacks, "
            "%llu shared queries), solver queue peak %llu\n",
            static_cast<unsigned long long>(res.speculations),
            static_cast<unsigned long long>(res.rollbacks),
            static_cast<unsigned long long>(res.pending_joins),
            static_cast<unsigned long long>(res.solver_queue_peak));

  kernel::CheckResult kc = kernel::kernel_check(res.best);
  fprintf(stderr, "k2c: kernel checker: %s\n",
          kc.accepted ? "ACCEPT" : kc.reason.c_str());

  printf("%s", ebpf::disassemble(res.best).c_str());

  if (const char* wire_path = arg_value(argc, argv, "--wire")) {
    std::vector<uint8_t> bytes =
        ebpf::to_bytes(ebpf::encode_wire(res.best));
    std::ofstream out(wire_path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              std::streamsize(bytes.size()));
    fprintf(stderr, "k2c: wrote %zu wire bytes to %s\n", bytes.size(),
            wire_path);
  }
  return 0;
}
