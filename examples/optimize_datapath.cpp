// Optimize a production-style XDP datapath program end to end and measure
// the packet-level effect on the simulated single-core datapath: the full
// Table-1 + Table-2 pipeline on one benchmark.
//
//   $ ./examples/optimize_datapath [benchmark-name] [iterations]
//   (default: xdp2_kern/xdp1, 8000 iterations per chain)
#include <cstdio>
#include <cstdlib>

#include "core/compiler.h"
#include "corpus/corpus.h"
#include "kernel/kernel_checker.h"
#include "sim/perf_eval.h"
#include "sim/queue_sim.h"

int main(int argc, char** argv) {
  using namespace k2;
  std::string name = argc > 1 ? argv[1] : "xdp2_kern/xdp1";
  uint64_t iters = argc > 2 ? strtoull(argv[2], nullptr, 10) : 8000;

  const corpus::Benchmark& bench = corpus::benchmark(name);
  printf("benchmark %s (%s): %d instructions at -O2\n", bench.name.c_str(),
         bench.origin.c_str(), bench.o2.size_slots());

  // Search with the instruction-count goal across 4 parallel chains.
  core::CompileOptions opts;
  opts.goal = core::Goal::INST_COUNT;
  opts.num_chains = 4;
  opts.threads = 4;
  opts.iters_per_chain = iters;
  opts.top_k = 3;
  core::CompileResult res = core::compile(bench.o2, opts);

  printf("search: %llu proposals, %llu solver calls, cache hit rate %.0f%%, "
         "%.1fs total\n",
         static_cast<unsigned long long>(res.total_proposals),
         static_cast<unsigned long long>(res.solver_calls),
         res.cache.hit_rate() * 100, res.total_secs);
  if (!res.improved) {
    printf("no smaller equivalent program found at this budget; try more "
           "iterations\n");
    return 0;
  }
  printf("K2: %d -> %d instructions (paper: %d -> %d)\n",
         bench.o2.size_slots(), res.best.size_slots(), bench.paper_o2,
         bench.paper_k2);

  // The output must load: run the kernel-checker model over every variant.
  for (size_t i = 0; i < res.top_k.size(); ++i) {
    kernel::CheckResult kc = kernel::kernel_check(res.top_k[i]);
    printf("variant %zu: %d insns, kernel checker: %s\n", i,
           res.top_k[i].size_slots(), kc.accepted ? "ACCEPT" : kc.reason.c_str());
  }

  // Packet-level effect on the simulated datapath.
  auto workload = sim::make_workload(bench.o2, 64, 0xfeed);
  double s_before = sim::avg_packet_cost_ns(bench.o2, workload);
  double s_after = sim::avg_packet_cost_ns(res.best, workload);
  double m_before = sim::find_mlffr(s_before);
  double m_after = sim::find_mlffr(s_after);
  printf("per-packet cost: %.1f -> %.1f ns; MLFFR: %.3f -> %.3f Mpps "
         "(%+.2f%%)\n",
         s_before, s_after, m_before, m_after,
         (m_after / m_before - 1) * 100);
  return 0;
}
