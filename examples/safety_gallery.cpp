// A gallery of unsafe BPF programs and what K2's safety checker (§6) and
// the kernel-checker model say about each — including the paper's §2.2
// phase-ordering examples, which are semantically fine but rejected.
//
//   $ ./examples/safety_gallery
#include <cstdio>

#include "ebpf/assembler.h"
#include "kernel/kernel_checker.h"
#include "safety/safety.h"

namespace {

void show(const char* title, const std::string& body,
          std::vector<k2::ebpf::MapDef> maps = {}) {
  using namespace k2;
  ebpf::Program p = ebpf::assemble(body, ebpf::ProgType::XDP, maps);
  safety::SafetyResult s = safety::check_safety(p);
  kernel::CheckResult kc = kernel::kernel_check(p);
  printf("%-52s | K2: %-34s | kernel: %s\n", title,
         s.safe ? "safe" : s.reason.c_str(),
         kc.accepted ? "ACCEPT" : kc.reason.c_str());
}

}  // namespace

int main() {
  using k2::ebpf::MapDef;
  using k2::ebpf::MapKind;

  printf("safety gallery: K2 safety checker vs kernel checker\n\n");

  show("ok: bounds-checked packet read",
       "ldxdw r2, [r1+0]\n"
       "ldxdw r3, [r1+8]\n"
       "mov64 r4, r2\n"
       "add64 r4, 14\n"
       "jgt r4, r3, out\n"
       "ldxb r0, [r2+13]\n"
       "exit\n"
       "out:\nmov64 r0, 0\nexit\n");

  show("unchecked packet read (crash on short packets)",
       "ldxdw r2, [r1+0]\n"
       "ldxw r0, [r2+16]\n"
       "exit\n");

  show("uninitialized register read",
       "mov64 r0, r7\nexit\n");

  show("stack read before write",
       "ldxdw r0, [r10-8]\nexit\n");

  show("misaligned stack store (paper section 2.2, ex.2)",
       "stw [r10-6], 0\nmov64 r0, 0\nexit\n");

  show("immediate store to ctx (paper section 2.2, ex.1)",
       "stw [r1+0], 0\nmov64 r0, 0\nexit\n");

  show("pointer leak through r0",
       "mov64 r0, r10\nexit\n");

  show("scratch register read after helper call",
       "call 7\nmov64 r0, r2\nexit\n");

  show("32-bit ALU on a pointer",
       "add32 r10, 4\nmov64 r0, 0\nexit\n");

  show("unchecked map-lookup dereference",
       "stw [r10-4], 0\n"
       "ldmapfd r1, 0\n"
       "mov64 r2, r10\n"
       "add64 r2, -4\n"
       "call 1\n"
       "ldxdw r0, [r0+0]\n"
       "exit\n",
       {MapDef{"m", MapKind::HASH, 4, 8, 16}});

  show("ok: NULL-checked map access",
       "stw [r10-4], 0\n"
       "ldmapfd r1, 0\n"
       "mov64 r2, r10\n"
       "add64 r2, -4\n"
       "call 1\n"
       "jeq r0, 0, out\n"
       "ldxdw r0, [r0+0]\n"
       "out:\nmov64 r0, 0\nexit\n",
       {MapDef{"m", MapKind::HASH, 4, 8, 16}});

  printf("\n(any disagreement between the two columns is exactly the gap "
         "the paper's post-processing pass guards, §6)\n");
  return 0;
}
