// Quickstart: assemble a BPF program, execute it, optimize it with K2, and
// verify the result — the 60-second tour of the public API.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/compiler.h"
#include "ebpf/assembler.h"
#include "interp/interpreter.h"
#include "verify/eqchecker.h"

int main() {
  using namespace k2;

  // 1. Write a packet-processing program in BPF assembly. This one zeroes
  //    two adjacent counters on the stack the verbose way (the exact
  //    pattern from the paper's §9 Example 1), then returns XDP_PASS.
  ebpf::Program prog = ebpf::assemble(R"(
    mov64 r1, 0
    stxw [r10-4], r1        ; u32 ctl_flag_pos = 0
    stxw [r10-8], r1        ; u32 cntr_pos   = 0
    ldxdw r0, [r10-8]
    and64 r0, 1
    add64 r0, 2             ; XDP_PASS
    exit
  )");
  printf("source program (%d instructions):\n%s\n", prog.size_slots(),
         prog.to_string().c_str());

  // 2. Execute it in the interpreter on a test input.
  interp::InputSpec input;
  input.packet.assign(64, 0xab);
  interp::RunResult result = interp::run(prog, input);
  printf("interpreter: r0 = %llu (%s)\n\n",
         static_cast<unsigned long long>(result.r0),
         result.ok() ? "ok" : interp::fault_name(result.fault));

  // 3. Optimize with K2: stochastic search + formal equivalence + safety.
  core::CompileOptions opts;
  opts.goal = core::Goal::INST_COUNT;
  opts.num_chains = 2;
  opts.threads = 2;
  opts.iters_per_chain = 5000;
  core::CompileResult compiled = core::compile(prog, opts);
  printf("K2: %d -> %d instructions (%llu proposals, %zu tests, "
         "cache hit rate %.0f%%)\n",
         int(compiled.src_perf), int(compiled.best_perf),
         static_cast<unsigned long long>(compiled.total_proposals),
         compiled.final_tests, compiled.cache.hit_rate() * 100);
  printf("optimized program:\n%s\n", compiled.best.to_string().c_str());

  // 4. Independently verify the output is a drop-in replacement.
  verify::EqResult eq = verify::check_equivalence(prog, compiled.best);
  printf("formal equivalence: %s\n", verify::verdict_name(eq.verdict));
  return eq.verdict == verify::Verdict::EQUAL ? 0 : 1;
}
