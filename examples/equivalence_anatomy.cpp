// Anatomy of an equivalence check: two near-identical programs, the
// counterexample Z3 produces, its replay in the interpreter, and the same
// query through window-based modular verification — §4/§5 in action.
//
//   $ ./examples/equivalence_anatomy
#include <cstdio>

#include "ebpf/assembler.h"
#include "interp/interpreter.h"
#include "verify/eqchecker.h"
#include "verify/window.h"

int main() {
  using namespace k2;

  // A program that reads the first packet byte and classifies it, and a
  // buggy rewrite that mishandles exactly the value 0x80.
  ebpf::Program good = ebpf::assemble(R"(
    ldxdw r2, [r1+0]
    ldxdw r3, [r1+8]
    mov64 r4, r2
    add64 r4, 1
    jgt r4, r3, short_pkt
    ldxb r5, [r2+0]
    jge r5, 0x80, high
    mov64 r0, 1
    exit
  high:
    mov64 r0, 2
    exit
  short_pkt:
    mov64 r0, 0
    exit
  )");
  ebpf::Program buggy = ebpf::assemble(R"(
    ldxdw r2, [r1+0]
    ldxdw r3, [r1+8]
    mov64 r4, r2
    add64 r4, 1
    jgt r4, r3, short_pkt
    ldxb r5, [r2+0]
    jgt r5, 0x80, high      ; off by one: jge became jgt
    mov64 r0, 1
    exit
  high:
    mov64 r0, 2
    exit
  short_pkt:
    mov64 r0, 0
    exit
  )");

  verify::EqResult r = verify::check_equivalence(good, buggy);
  printf("verdict: %s (encode %.1f ms, solve %.1f ms)\n",
         verify::verdict_name(r.verdict), r.encode_ms, r.solve_ms);
  if (r.cex) {
    printf("counterexample input: %s\n", r.cex->to_string().c_str());
    interp::RunResult a = interp::run(good, *r.cex);
    interp::RunResult b = interp::run(buggy, *r.cex);
    printf("replay: good -> r0=%llu, buggy -> r0=%llu  (byte0 = 0x%02x)\n",
           static_cast<unsigned long long>(a.r0),
           static_cast<unsigned long long>(b.r0), r.cex->packet[0]);
  }

  // The same program against itself is UNSAT — formally equivalent.
  verify::EqResult self = verify::check_equivalence(good, good);
  printf("\nself-check verdict: %s (solve %.1f ms)\n",
         verify::verdict_name(self.verdict), self.solve_ms);

  // Windowed verification of a local rewrite: replace "r4 = r2; r4 += 1"
  // with a NOP-padded equivalent under the window's live-out set.
  ebpf::Program repl_holder = ebpf::assemble(R"(
    mov64 r4, 1
    add64 r4, r2
    exit
  )");
  std::vector<ebpf::Insn> repl(repl_holder.insns.begin(),
                               repl_holder.insns.end() - 1);
  verify::EqResult w = verify::check_window_equivalence(
      good, verify::WindowSpec{2, 4}, repl);
  printf("window [2,4) rewrite verdict: %s (solve %.1f ms — note how much "
         "smaller than the full check)\n",
         verify::verdict_name(w.verdict), w.solve_ms);
  return 0;
}
