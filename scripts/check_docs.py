#!/usr/bin/env python3
"""Documentation checks, run by the CI docs job and locally.

1. Dead-link check: every relative link in every tracked *.md file must
   point at an existing file or directory (anchors are stripped; absolute
   URLs and mailto: are ignored).
2. Reproduction-table coverage: every bench/table*.cc and bench/fig*.cc
   binary must be mentioned in README.md's table (as bench_<name>), so the
   paper-reproduction map can never silently rot.
3. CLI-flag coverage: every k2c flag — both --flag string literals and
   names declared in the util::Flags table — must appear in README.md, so
   a new flag cannot land undocumented.
4. Request-schema coverage: every CompileRequest JSON field declared in
   src/api/ (the kRequestFields whitelist between the
   docs:request-fields-begin/end markers) must appear in docs/API.md, so
   the wire schema reference can never silently rot.
5. Serve-op coverage: every op the serve loop advertises in its hello
   reply (the list between the docs:serve-ops-begin/end markers in
   src/api/serve.cc) must appear as `op` in docs/API.md, so a new wire op
   cannot land undocumented.
6. Scenario-schema coverage: every k2-scenario/v1 field the strict parser
   whitelists (between the docs:scenario-fields-begin/end markers in
   src/scenario/scenario.cc) must appear in docs/SCENARIOS.md, so the
   scenario schema reference can never silently rot.

Exit code 0 = clean; 1 = problems (each printed on its own line).
"""
import os
import re
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# [text](target) — excluding images is unnecessary; they obey the same rule.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def tracked_markdown():
    out = subprocess.run(
        ["git", "ls-files", "--cached", "--others", "--exclude-standard",
         "*.md", "**/*.md"],
        cwd=ROOT, capture_output=True, text=True, check=True)
    return sorted(set(out.stdout.split()))


def check_links(md_files):
    problems = []
    for md in md_files:
        base = os.path.dirname(os.path.join(ROOT, md))
        with open(os.path.join(ROOT, md), encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                for target in LINK_RE.findall(line):
                    if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # URL scheme
                        continue
                    path = target.split("#", 1)[0]
                    if not path:  # pure in-page anchor
                        continue
                    if not os.path.exists(os.path.normpath(
                            os.path.join(base, path))):
                        problems.append(
                            f"{md}:{lineno}: dead relative link: {target}")
    return problems


def check_bench_coverage():
    problems = []
    readme_path = os.path.join(ROOT, "README.md")
    if not os.path.exists(readme_path):
        return ["README.md is missing"]
    with open(readme_path, encoding="utf-8") as f:
        readme = f.read()
    bench_dir = os.path.join(ROOT, "bench")
    for fn in sorted(os.listdir(bench_dir)):
        m = re.match(r"(table\d+_\w+|fig\d+_\w+|scenarios)\.cc$", fn)
        if not m:
            continue
        binary = f"bench_{m.group(1)}"
        if binary not in readme:
            problems.append(
                f"README.md: reproduction table is missing {binary} "
                f"(from bench/{fn})")
    return problems


def k2c_flags():
    """Flags tools/k2c.cc actually parses.

    Two sources: --names inside string literals (usage text; harmless
    over-collection because usage and parsing share names) and the
    util::Flags declaration table, where each spec's first string literal
    is the flag name (``{"goal", T::STRING, ...}``).
    """
    src_path = os.path.join(ROOT, "tools", "k2c.cc")
    with open(src_path, encoding="utf-8") as f:
        src = f.read()
    flags = set()
    for literal in re.findall(r'"((?:[^"\\]|\\.)*)"', src):
        flags.update(re.findall(r"--[a-z][a-z0-9-]*", literal))
    for name in re.findall(r'\{"([a-z][a-z0-9-]*)",\s*T::', src):
        flags.add("--" + name)
    return sorted(flags)


def request_fields():
    """CompileRequest JSON fields: the kRequestFields whitelist in src/api.

    The markers scope the scan to the single source of truth the strict
    parser itself checks unknown fields against, so this list cannot drift
    from the code.
    """
    fields = []
    api_dir = os.path.join(ROOT, "src", "api")
    for fn in sorted(os.listdir(api_dir)):
        if not fn.endswith((".cc", ".h")):
            continue
        with open(os.path.join(api_dir, fn), encoding="utf-8") as f:
            src = f.read()
        m = re.search(r"docs:request-fields-begin(.*?)docs:request-fields-end",
                      src, re.S)
        if m:
            fields.extend(re.findall(r'"([a-z_][a-z0-9_]*)"', m.group(1)))
    return fields


def check_request_field_coverage():
    fields = request_fields()
    if not fields:
        return ["src/api: no docs:request-fields-begin/end block found "
                "(the CompileRequest field whitelist must be marker-scoped)"]
    api_md_path = os.path.join(ROOT, "docs", "API.md")
    if not os.path.exists(api_md_path):
        return ["docs/API.md is missing"]
    with open(api_md_path, encoding="utf-8") as f:
        api_md = f.read()
    problems = []
    for field in fields:
        if f"`{field}`" not in api_md:
            problems.append(
                f"docs/API.md: CompileRequest field `{field}` (declared in "
                f"src/api/) is undocumented")
    return problems


def serve_ops():
    """Wire ops the serve loop advertises: the hello ops list in serve.cc.

    Marker-scoped for the same reason as request_fields(): the scanned
    list IS the list hello replies with, so docs coverage tracks the
    protocol itself.
    """
    src_path = os.path.join(ROOT, "src", "api", "serve.cc")
    with open(src_path, encoding="utf-8") as f:
        src = f.read()
    m = re.search(r"docs:serve-ops-begin(.*?)docs:serve-ops-end", src, re.S)
    if not m:
        return None
    return re.findall(r'"([a-z_][a-z0-9_]*)"', m.group(1))


def check_serve_op_coverage():
    ops = serve_ops()
    if ops is None:
        return ["src/api/serve.cc: no docs:serve-ops-begin/end block found "
                "(the hello ops list must be marker-scoped)"]
    api_md_path = os.path.join(ROOT, "docs", "API.md")
    if not os.path.exists(api_md_path):
        return ["docs/API.md is missing"]
    with open(api_md_path, encoding="utf-8") as f:
        api_md = f.read()
    problems = []
    for op in ops:
        if f"`{op}`" not in api_md:
            problems.append(
                f"docs/API.md: serve op `{op}` (advertised by the hello "
                f"reply in src/api/serve.cc) is undocumented")
    return problems


def scenario_fields():
    """k2-scenario/v1 fields: the strict-parse whitelists in scenario.cc.

    Marker-scoped to the from_json whitelist block — the same list the
    parser rejects unknown fields against — so the docs check tracks the
    schema itself. Enum-alternative strings ("uniform|bimodal|...") and
    message literals contain characters outside [a-z0-9_] and fall out of
    the match naturally.
    """
    src_path = os.path.join(ROOT, "src", "scenario", "scenario.cc")
    with open(src_path, encoding="utf-8") as f:
        src = f.read()
    m = re.search(r"docs:scenario-fields-begin(.*?)docs:scenario-fields-end",
                  src, re.S)
    if not m:
        return None
    return sorted(set(re.findall(r'"([a-z_][a-z0-9_]*)"', m.group(1))))


def check_scenario_field_coverage():
    fields = scenario_fields()
    if fields is None:
        return ["src/scenario/scenario.cc: no docs:scenario-fields-begin/end "
                "block found (the k2-scenario/v1 field whitelist must be "
                "marker-scoped)"]
    md_path = os.path.join(ROOT, "docs", "SCENARIOS.md")
    if not os.path.exists(md_path):
        return ["docs/SCENARIOS.md is missing"]
    with open(md_path, encoding="utf-8") as f:
        md = f.read()
    problems = []
    for field in fields:
        if f"`{field}`" not in md:
            problems.append(
                f"docs/SCENARIOS.md: scenario field `{field}` (whitelisted in "
                f"src/scenario/scenario.cc) is undocumented")
    return problems


def check_flag_coverage():
    problems = []
    readme_path = os.path.join(ROOT, "README.md")
    if not os.path.exists(readme_path):
        return ["README.md is missing"]
    with open(readme_path, encoding="utf-8") as f:
        readme = f.read()
    for flag in k2c_flags():
        if flag not in readme:
            problems.append(
                f"README.md: k2c flag {flag} (parsed in tools/k2c.cc) is "
                f"undocumented")
    return problems


def main():
    problems = check_links(tracked_markdown())
    problems += check_bench_coverage()
    problems += check_flag_coverage()
    problems += check_request_field_coverage()
    problems += check_serve_op_coverage()
    problems += check_scenario_field_coverage()
    for p in problems:
        print(p)
    if problems:
        print(f"\n{len(problems)} documentation problem(s)")
        return 1
    print("docs OK: links resolve, README covers every bench table binary "
          "and every k2c flag, docs/API.md covers every CompileRequest "
          "field and every serve op, docs/SCENARIOS.md covers every "
          "scenario field")
    return 0


if __name__ == "__main__":
    sys.exit(main())
