#!/usr/bin/env python3
"""CI smoke for bench_serve_load: a short closed-loop soak with fault
injection, then a determinism differential.

Phase 1 (soak): ~8 jobs through an in-process service with cancels,
malformed request lines and slow consumers injected, an event-ring bound
small enough to force drops, and max_active_jobs below the concurrency so
admission control must reject at least once. Asserts the k2-loadreport/v1
schema, conservation (submitted + rejected == accounted outcomes), every
malformed line rejected, and the final-state invariants: zero active jobs,
zero pending equivalence verdicts, clean shutdown.

Phase 2 (determinism): two identical runs with --deterministic
--threads=1 --solver-workers=0 --cancel-pct=0 and a fixed seed must emit
BYTE-IDENTICAL reports — the load report is a pure function of the seed
once timing fields are zeroed.

Usage: serve_load_smoke.py [path/to/bench_serve_load]
       (default ./build/bench_serve_load)
Exit 0 = healthy; non-zero with a message otherwise.
"""
import json
import subprocess
import sys

BIN = sys.argv[1] if len(sys.argv) > 1 else "./build/bench_serve_load"


def fail(msg):
    print(f"serve_load smoke FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def run(args, check_exit=True):
    proc = subprocess.run([BIN] + args + ["--json"], capture_output=True,
                          text=True, timeout=900)
    if check_exit and proc.returncode != 0:
        fail(f"{BIN} {' '.join(args)} exited {proc.returncode}:\n"
             f"{proc.stderr}")
    try:
        return json.loads(proc.stdout), proc.stdout
    except json.JSONDecodeError as e:
        fail(f"report is not valid JSON ({e}):\n{proc.stdout[:2000]}")


def soak():
    report, _ = run([
        "--mode=closed", "--jobs=8", "--concurrency=4", "--threads=2",
        "--seed=7", "--cancel-pct=25", "--malformed-pct=20", "--slow-pct=15",
        "--max-events-per-job=16", "--tick-every=8", "--max-active-jobs=2",
    ])
    if report.get("schema") != "k2-loadreport/v1":
        fail(f"bad schema: {report.get('schema')}")

    submitted = report["submitted"]
    rejected = report["rejected"]
    outcomes = report["outcomes"]
    accounted = outcomes["done"] + outcomes["failed"] + outcomes["cancelled"]
    if submitted != accounted:
        fail(f"conservation: submitted={submitted} but outcomes sum to "
             f"{accounted}: {outcomes}")
    # max_active_jobs=2 < concurrency=4: the window must overrun the bound.
    if rejected == 0:
        fail("admission control never rejected despite max_active_jobs=2 "
             "< concurrency=4")
    mal = report["malformed"]
    if mal["injected"] == 0:
        fail("no malformed lines injected at --malformed-pct=20 (seed 7)")
    if mal["rejected"] != mal["injected"]:
        fail(f"malformed lines accepted: {mal}")

    final = report["final"]
    if final["active_jobs"] != 0:
        fail(f"leaked jobs after drain: {final}")
    if final["pending_eq"] != 0:
        fail(f"leaked pending verdicts: {final}")
    if not final["clean_shutdown"]:
        fail(f"shutdown was not clean: {final}")

    ops = report["ops"]
    for op in ("submit", "wait", "result"):
        if op not in ops:
            fail(f"ops table is missing '{op}': {sorted(ops)}")
        for key in ("count", "errors", "p50_ms", "p90_ms", "p99_ms",
                    "max_ms"):
            if key not in ops[op]:
                fail(f"ops.{op} is missing '{key}': {ops[op]}")
    return submitted, rejected, mal["injected"]


def determinism():
    args = ["--mode=closed", "--jobs=6", "--concurrency=2", "--threads=1",
            "--solver-workers=0", "--cancel-pct=0", "--seed=1234",
            "--tick-every=32", "--deterministic"]
    _, text_a = run(args)
    _, text_b = run(args)
    if text_a != text_b:
        for a, b in zip(text_a.splitlines(), text_b.splitlines()):
            if a != b:
                fail(f"deterministic reports differ:\n  A: {a}\n  B: {b}")
        fail("deterministic reports differ in length")


def main():
    submitted, rejected, malformed = soak()
    determinism()
    print(f"serve_load smoke OK: soak submitted={submitted} "
          f"rejected={rejected} malformed={malformed} all rejected, "
          f"drained clean; deterministic reports byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
