#!/usr/bin/env python3
"""Experiment driver for bench_serve_load: runs a small matrix of load
shapes against the serve stack and writes one k2-loadreport/v1 JSON per
cell (plus a summary table to stdout).

Two transports per shape when --socket-dir is given: in-process (service
stack only) and unix-socket against a `k2c serve --socket` child process
this script spawns and shuts down — the delta between the two is the wire
cost. Without --socket-dir only the in-process cells run.

Usage:
  run_serve_load.py [--bench PATH] [--k2c PATH] [--out DIR]
                    [--socket-dir DIR] [--jobs N] [--seed N]

Reports land in --out (default bench_out/serve_load) as
<shape>_<transport>.json.
"""
import argparse
import json
import os
import subprocess
import sys
import time

SHAPES = [
    ("closed_light", ["--mode=closed", "--concurrency=2", "--threads=2"]),
    ("closed_wide", ["--mode=closed", "--concurrency=8", "--threads=4"]),
    ("closed_faulty", ["--mode=closed", "--concurrency=4", "--threads=4",
                       "--cancel-pct=20", "--malformed-pct=15",
                       "--slow-pct=20", "--max-events-per-job=32",
                       "--tick-every=16"]),
    ("open_overload", ["--mode=open", "--rate=50", "--threads=2",
                       "--max-active-jobs=4"]),
    ("closed_budgeted", ["--mode=closed", "--concurrency=4", "--threads=4",
                         "--budget-iters=200"]),
]


def run_cell(bench, name, args, jobs, seed, out_dir, socket=None):
    argv = [bench] + args + [f"--jobs={jobs}", f"--seed={seed}", "--json"]
    transport = "inproc"
    if socket:
        argv.append(f"--socket={socket}")
        transport = "socket"
    proc = subprocess.run(argv, capture_output=True, text=True, timeout=1800)
    if proc.returncode != 0:
        print(f"  {name}/{transport}: FAILED (exit {proc.returncode})\n"
              f"{proc.stderr}", file=sys.stderr)
        return None
    report = json.loads(proc.stdout)
    path = os.path.join(out_dir, f"{name}_{transport}.json")
    with open(path, "w", encoding="utf-8") as f:
        f.write(proc.stdout)
    return report


def summarize(name, transport, r):
    ops = r.get("ops", {})
    sub = ops.get("submit", {})
    wait = ops.get("wait", {})
    print(f"  {name:16s} {transport:7s} submitted={r['submitted']:<4d} "
          f"rejected={r['rejected']:<3d} "
          f"done={r['outcomes']['done']:<4d} "
          f"cancelled={r['outcomes']['cancelled']:<3d} "
          f"submit_p99={sub.get('p99_ms', 0):7.2f}ms "
          f"wait_p99={wait.get('p99_ms', 0):8.2f}ms "
          f"wall={r['wall_secs']:6.2f}s")


def spawn_server(k2c, socket_path, shape_args):
    """k2c serve --socket with limits mirrored from the shape flags."""
    argv = [k2c, "serve", f"--socket={socket_path}"]
    mirror = ("--threads=", "--solver-workers=", "--max-queued-jobs=",
              "--max-active-jobs=", "--max-events-per-job=")
    for a in shape_args:
        if a.startswith(mirror):
            argv.append(a)
    proc = subprocess.Popen(argv, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    for _ in range(100):  # wait for the socket file
        if os.path.exists(socket_path):
            return proc
        if proc.poll() is not None:
            raise RuntimeError(f"k2c serve died (exit {proc.returncode})")
        time.sleep(0.05)
    proc.terminate()
    raise RuntimeError("k2c serve never bound its socket")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bench", default="./build/bench_serve_load")
    ap.add_argument("--k2c", default="./build/k2c")
    ap.add_argument("--out", default="bench_out/serve_load")
    ap.add_argument("--socket-dir", default="",
                    help="also run each shape over a unix socket, using "
                         "sockets created in this directory")
    ap.add_argument("--jobs", type=int, default=40)
    ap.add_argument("--seed", type=int, default=42)
    args = ap.parse_args()

    os.makedirs(args.out, exist_ok=True)
    print(f"serve_load matrix: {len(SHAPES)} shapes x "
          f"{2 if args.socket_dir else 1} transport(s), "
          f"{args.jobs} jobs each -> {args.out}/")

    failures = 0
    for name, shape_args in SHAPES:
        r = run_cell(args.bench, name, shape_args, args.jobs, args.seed,
                     args.out)
        if r is None:
            failures += 1
        else:
            summarize(name, "inproc", r)

        if args.socket_dir:
            os.makedirs(args.socket_dir, exist_ok=True)
            socket_path = os.path.join(args.socket_dir, f"{name}.sock")
            try:
                server = spawn_server(args.k2c, socket_path, shape_args)
            except RuntimeError as e:
                print(f"  {name}/socket: {e}", file=sys.stderr)
                failures += 1
                continue
            try:
                # The load gen's shutdown op stops the server cleanly.
                r = run_cell(args.bench, name, shape_args, args.jobs,
                             args.seed, args.out, socket=socket_path)
                if r is None:
                    failures += 1
                else:
                    summarize(name, "socket", r)
            finally:
                try:
                    server.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    server.terminate()
                    failures += 1
                    print(f"  {name}/socket: server did not exit on "
                          f"shutdown", file=sys.stderr)
                if os.path.exists(socket_path):
                    os.unlink(socket_path)

    if failures:
        print(f"{failures} cell(s) failed", file=sys.stderr)
        return 1
    print("all cells completed; reports written")
    return 0


if __name__ == "__main__":
    sys.exit(main())
