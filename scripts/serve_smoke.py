#!/usr/bin/env python3
"""CI smoke for `k2c serve --stdio`: pipes a submit/status/events/cancel/
shutdown conversation into the serve loop and asserts every reply and
every event is schema-valid JSON with the contracts docs/API.md states
(monotonic seq, QUEUED->RUNNING->terminal, cancel lands in CANCELLED).

Usage: serve_smoke.py [path/to/k2c]   (default ./build/k2c)
Exit 0 = protocol healthy; non-zero with a message otherwise.
"""
import json
import subprocess
import sys

K2C = sys.argv[1] if len(sys.argv) > 1 else "./build/k2c"

SCRIPT = [
    {"op": "hello"},
    # Job 1: small, runs to completion.
    {"op": "submit", "request": {
        "schema": "k2-compile/v1", "mode": "single",
        "benchmark": "xdp_pktcntr", "iters_per_chain": 300,
        "num_chains": 2, "eq_timeout_ms": 10000}},
    {"op": "wait", "job": "job-1"},
    {"op": "status", "job": "job-1"},
    {"op": "events", "job": "job-1", "after": 0},
    {"op": "result", "job": "job-1"},
    # Job 2: effectively unbounded -> must be cancellable promptly.
    {"op": "submit", "request": {
        "schema": "k2-compile/v1", "mode": "single",
        "benchmark": "xdp_map_access", "iters_per_chain": 50000000,
        "num_chains": 2}},
    {"op": "cancel", "job": "job-2"},
    {"op": "wait", "job": "job-2"},
    # Validation must reject bad enum strings with $.paths, not default.
    {"op": "submit", "request": {
        "schema": "k2-compile/v1", "mode": "single",
        "benchmark": "xdp_pktcntr", "perf_model": "bogus"}},
    {"op": "stats"},
    {"op": "shutdown"},
]


def fail(msg):
    print(f"serve smoke FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    stdin = "".join(json.dumps(line) + "\n" for line in SCRIPT)
    proc = subprocess.run([K2C, "serve", "--stdio"], input=stdin,
                          capture_output=True, text=True, timeout=600)
    if proc.returncode != 0:
        fail(f"k2c serve exited {proc.returncode}:\n{proc.stderr}")

    replies = []
    for lineno, line in enumerate(proc.stdout.splitlines(), 1):
        try:
            replies.append(json.loads(line))
        except json.JSONDecodeError as e:
            fail(f"reply line {lineno} is not valid JSON ({e}): {line!r}")
    if len(replies) != len(SCRIPT):
        fail(f"expected {len(SCRIPT)} replies, got {len(replies)}")

    (hello, submit1, wait1, status1, events1, result1,
     submit2, cancel2, wait2, badsubmit, stats, shutdown) = replies

    if not hello.get("ok") or hello.get("protocol") != "k2-serve/v1":
        fail(f"hello: {hello}")
    if not submit1.get("ok") or submit1.get("job") != "job-1":
        fail(f"submit1: {submit1}")
    if wait1.get("state") != "DONE":
        fail(f"job-1 should finish DONE: {wait1}")
    if status1.get("state") != "DONE" or status1.get("events", 0) < 3:
        fail(f"status1: {status1}")

    events = events1.get("events", [])
    if len(events) < 3:
        fail(f"job-1 produced too few events: {events1}")
    last_seq = 0
    for ev in events:
        if ev.get("schema") != "k2-event/v1":
            fail(f"event without schema stamp: {ev}")
        if ev.get("job") != "job-1":
            fail(f"event for wrong job: {ev}")
        if ev.get("seq", 0) <= last_seq:
            fail(f"event seq not monotonic at {ev}")
        last_seq = ev["seq"]
        if ev.get("type") not in ("state", "tick", "best", "job_done"):
            fail(f"unknown event type: {ev}")
    states = [e["state"] for e in events if e["type"] == "state"]
    if states[:2] != ["QUEUED", "RUNNING"] or states[-1] != "DONE":
        fail(f"job-1 state trajectory: {states}")

    result = result1.get("result", {})
    if result.get("schema") != "k2-compile/v1" or result.get("state") != "DONE":
        fail(f"result1: {result1}")
    if result.get("single", {}).get("proposals", 0) <= 0:
        fail(f"job-1 did no work: {result1}")

    if not submit2.get("ok") or submit2.get("job") != "job-2":
        fail(f"submit2: {submit2}")
    if not cancel2.get("ok") or not cancel2.get("cancel_accepted"):
        fail(f"cancel2: {cancel2}")
    if wait2.get("state") != "CANCELLED":
        fail(f"job-2 should land CANCELLED: {wait2}")

    if badsubmit.get("ok"):
        fail(f"bogus perf_model must be rejected: {badsubmit}")
    paths = [d.get("path") for d in badsubmit.get("diagnostics", [])]
    if "$.perf_model" not in paths:
        fail(f"diagnostics must carry $.perf_model: {badsubmit}")

    if not stats.get("ok"):
        fail(f"stats: {stats}")
    if stats.get("jobs", {}).get("total") != 2:
        fail(f"stats must count the two accepted jobs: {stats}")
    for section in ("jobs", "solver", "cache"):
        if section not in stats:
            fail(f"stats is missing its '{section}' section: {stats}")
    if "workers" not in stats["solver"] or "hits" not in stats["cache"]:
        fail(f"stats sections missing counters: {stats}")

    if not shutdown.get("ok") or not shutdown.get("shutdown"):
        fail(f"shutdown: {shutdown}")
    # The no-leaked-verdicts invariant: a clean shutdown drained the solver
    # queue, so no job cache may still hold an in-flight verdict.
    if shutdown.get("pending_eq") != 0:
        fail(f"shutdown must drain to pending_eq == 0: {shutdown}")

    print(f"serve smoke OK: {len(replies)} replies, {len(events)} "
          f"schema-valid events, cancel landed CANCELLED, "
          f"shutdown drained clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
