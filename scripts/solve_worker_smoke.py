#!/usr/bin/env python3
"""CI smoke for `k2c solve-worker --stdio`: drives one k2-solve/v1
conversation through the worker and asserts the protocol contracts from
docs/API.md — hello advertises the protocol, solve answers with a verdict
(and a counterexample for inequivalent pairs), malformed lines get error
replies instead of killing the loop, and shutdown ends the session.

Programs ride the parse-only "asm" form so the smoke stays readable.

Usage: solve_worker_smoke.py [path/to/k2c]   (default ./build/k2c)
Exit 0 = protocol healthy; non-zero with a message otherwise.
"""
import json
import subprocess
import sys

K2C = sys.argv[1] if len(sys.argv) > 1 else "./build/k2c"

EQ = {"timeout_ms": 10000}

SCRIPT = [
    json.dumps({"op": "hello"}),
    # Equivalent pair: mul-by-4 vs shift-by-2.
    json.dumps({"op": "solve", "id": 1,
                "src": {"asm": "ldxdw r0, [r1+0]\nmul64 r0, 4\nexit\n",
                        "type": "xdp"},
                "cand": {"asm": "ldxdw r0, [r1+0]\nlsh64 r0, 2\nexit\n",
                         "type": "xdp"},
                "eq": EQ}),
    # Inequivalent pair: must come back NOT_EQUAL with a counterexample.
    json.dumps({"op": "solve", "id": 2,
                "src": {"asm": "mov64 r0, 1\nexit\n", "type": "xdp"},
                "cand": {"asm": "mov64 r0, 2\nexit\n", "type": "xdp"},
                "eq": EQ}),
    "this line is not JSON",
    json.dumps({"op": "no_such_op"}),
    json.dumps({"op": "cancel", "id": 2}),
    json.dumps({"op": "shutdown"}),
]


def fail(msg):
    print(f"solve-worker smoke FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    stdin = "".join(line + "\n" for line in SCRIPT)
    proc = subprocess.run([K2C, "solve-worker", "--stdio"], input=stdin,
                          capture_output=True, text=True, timeout=600)
    if proc.returncode != 0:
        fail(f"k2c solve-worker exited {proc.returncode}:\n{proc.stderr}")

    replies = []
    for lineno, line in enumerate(proc.stdout.splitlines(), 1):
        try:
            replies.append(json.loads(line))
        except json.JSONDecodeError as e:
            fail(f"reply line {lineno} is not valid JSON ({e}): {line!r}")
    if len(replies) != len(SCRIPT):
        fail(f"expected {len(SCRIPT)} replies, got {len(replies)}")

    hello, eq, ne, malformed, unknown, cancel, shutdown = replies

    if not hello.get("ok") or hello.get("protocol") != "k2-solve/v1":
        fail(f"hello: {hello}")
    if "solve" not in hello.get("ops", []):
        fail(f"hello must advertise the solve op: {hello}")

    if not eq.get("ok") or eq.get("id") != 1 or eq.get("verdict") != "equal":
        fail(f"equivalent pair: {eq}")
    if not ne.get("ok") or ne.get("id") != 2:
        fail(f"inequivalent pair: {ne}")
    if ne.get("verdict") != "not-equal" or "cex" not in ne:
        fail(f"NOT_EQUAL must carry a counterexample: {ne}")
    if not isinstance(ne["cex"].get("packet"), str):
        fail(f"counterexample packet must be a hex byte string: {ne}")

    if malformed.get("ok") or "error" not in malformed:
        fail(f"malformed line must get an error reply: {malformed}")
    if unknown.get("ok") or "error" not in unknown:
        fail(f"unknown op must get an error reply: {unknown}")
    if not cancel.get("ok") or cancel.get("cancelled") is not False:
        fail(f"cancel acks with cancelled=false: {cancel}")
    if not shutdown.get("ok"):
        fail(f"shutdown: {shutdown}")

    print("solve-worker smoke OK: verdicts equal/not_equal with cex, "
          "errors survived, shutdown clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
