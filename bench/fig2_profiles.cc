// Appendix H (Fig. 2): throughput, average latency, and drop rate versus
// offered load for the clang and K2 variants. Prints one series per
// (benchmark, variant) in CSV-ish rows for plotting; the shape targets are
// the paper's: throughput linear until the MLFFR knee then flat; latency
// flat, then a sharp rise near capacity, then saturation at the ring
// bound; drop rate zero until the knee then climbing.
#include <cstdio>

#include "bench_util.h"
#include "sim/perf_eval.h"
#include "sim/queue_sim.h"

using namespace k2;

int main() {
  const char* names[] = {"xdp2_kern/xdp1", "xdp_router_ipv4", "xdp_fwd",
                         "xdp1_kern/xdp1", "xdp_map_access"};

  printf("Fig. 2: throughput / avg latency / drop rate vs offered load\n");
  printf("%-18s %-8s %10s %12s %12s %10s\n", "benchmark", "variant",
         "offered", "throughput", "latency_us", "drop_rate");
  bench::hr('=');

  for (const char* name : names) {
    const corpus::Benchmark& b = corpus::benchmark(name);
    auto workload = sim::make_workload(b.o2, 64, 0x4444);

    ebpf::Program k2v = b.o2;
    core::CompileResult res =
        bench::quick_compile(b.o2, core::Goal::LATENCY, 4000, 2);
    if (res.improved) k2v = res.best;

    struct Variant {
      const char* name;
      double service_ns;
    } variants[] = {
        {"-O2", sim::avg_packet_cost_ns(b.o2, workload)},
        {"K2", sim::avg_packet_cost_ns(k2v, workload)},
    };
    for (const Variant& v : variants) {
      double capacity = 1000.0 / v.service_ns;
      for (double frac :
           {0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 1.0, 1.05, 1.2, 1.5}) {
        sim::LoadPoint p = sim::simulate_load(v.service_ns, capacity * frac);
        printf("%-18s %-8s %10.3f %12.3f %12.3f %10.4f\n", name, v.name,
               p.offered_mpps, p.throughput_mpps, p.avg_latency_us,
               p.drop_rate);
      }
    }
    bench::hr();
  }
  return 0;
}
