// bench_serve_load — load/soak generator for the k2-serve/v1 service mode.
//
// Drives a ServeLoop with a deterministic, seeded schedule of mixed-size
// compile jobs plus configurable fault injection (cancels, malformed
// request lines, slow event consumers), either against an in-process
// CompilerService (the default — exercises the full service stack with no
// transport noise) or over a unix socket to an externally started
// `k2c serve --socket=<path>` (adds the wire). Two arrival models:
//
//   closed  a sliding window of --concurrency in-flight jobs; a new job is
//           submitted only when the oldest finishes (blocking `wait`).
//           With --threads=1 --solver-workers=0 --cancel-pct=0 the op
//           sequence — and hence the whole report minus timing — is a pure
//           function of the seed; --deterministic zeroes the timing fields
//           so two same-seed runs emit BYTE-IDENTICAL reports (pinned by
//           tests/serve_load_test.cc and scripts/serve_load_smoke.py).
//   open    seeded exponential inter-arrival times at --rate jobs/sec,
//           submitting regardless of completions — the model that drives
//           admission control into rejecting (OverloadError replies are
//           counted, never errors).
//
// The report (stdout with --json, or a summary table) is schema
// k2-loadreport/v1: per-op latency percentiles, outcome counts, fault
// accounting, and the service's final-state invariants (zero pending
// verdicts, zero active jobs, clean shutdown). Exit code 0 only when every
// invariant held: malformed lines all rejected, every submitted job reached
// a terminal state, every reply parsed.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/schema.h"
#include "api/serve.h"
#include "api/service.h"
#include "util/flags.h"
#include "util/json.h"

namespace k2 {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// splitmix64: tiny, seedable, and identical everywhere — the whole schedule
// (job mix, victims, fault injection, inter-arrivals) derives from it so a
// seed fully determines the run.
struct Rng {
  uint64_t s;
  explicit Rng(uint64_t seed) : s(seed) {}
  uint64_t next() {
    uint64_t z = (s += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  // [0, n)
  uint64_t below(uint64_t n) { return n ? next() % n : 0; }
  // [0, 1)
  double uniform() { return double(next() >> 11) * 0x1.0p-53; }
  // true with probability pct/100
  bool pct(uint64_t p) { return below(100) < p; }
};

// ---- transports ------------------------------------------------------------

// One request line in, one reply line out. Both transports speak exactly
// the ServeLoop line protocol; the bench never cares which is underneath.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual std::string rpc(const std::string& line) = 0;
  virtual const char* name() const = 0;
};

class InProcessTransport : public Transport {
 public:
  explicit InProcessTransport(api::ServiceOptions opts)
      : service_(std::move(opts)), loop_(service_) {}
  std::string rpc(const std::string& line) override {
    return loop_.handle(line, &stop_);
  }
  const char* name() const override { return "inproc"; }

 private:
  api::CompilerService service_;
  api::ServeLoop loop_;
  bool stop_ = false;
};

class SocketTransport : public Transport {
 public:
  explicit SocketTransport(const std::string& path) {
    fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("socket(): " + err());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
      throw std::runtime_error("socket path too long: " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
      throw std::runtime_error("connect(" + path + "): " + err());
  }
  ~SocketTransport() override {
    if (fd_ >= 0) close(fd_);
  }
  std::string rpc(const std::string& line) override {
    std::string out = line + "\n";
    size_t off = 0;
    while (off < out.size()) {
      ssize_t w = send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
      if (w < 0 && errno == EINTR) continue;
      if (w <= 0) throw std::runtime_error("send(): " + err());
      off += size_t(w);
    }
    size_t pos;
    while ((pos = buf_.find('\n')) == std::string::npos) {
      char chunk[4096];
      ssize_t n = read(fd_, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) throw std::runtime_error("server closed the connection");
      buf_.append(chunk, size_t(n));
    }
    std::string reply = buf_.substr(0, pos);
    buf_.erase(0, pos + 1);
    return reply;
  }
  const char* name() const override { return "socket"; }

 private:
  static std::string err() { return std::strerror(errno); }
  int fd_ = -1;
  std::string buf_;
};

// ---- per-op latency accounting ---------------------------------------------

struct OpStats {
  uint64_t count = 0;
  uint64_t errors = 0;  // ok:false replies (excluding counted rejections)
  std::vector<double> lat_ms;
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = size_t(std::ceil(p / 100.0 * double(v.size())));
  return v[std::min(v.size() - 1, idx ? idx - 1 : 0)];
}

// ---- the load generator ----------------------------------------------------

struct Config {
  std::string mode = "closed";
  uint64_t jobs = 50;
  uint64_t concurrency = 4;
  double rate = 20.0;  // open loop: jobs/sec
  int threads = 4;
  int solver_workers = 0;
  uint64_t max_queued_jobs = 0;
  uint64_t max_active_jobs = 0;
  uint64_t max_events_per_job = 4096;
  uint64_t tick_every = 64;
  uint64_t seed = 42;
  uint64_t cancel_pct = 0;
  uint64_t malformed_pct = 0;
  uint64_t slow_pct = 0;
  uint64_t budget_wall_ms = 0;
  uint64_t budget_iters = 0;
  bool deterministic = false;
  std::string socket_path;
};

class LoadGen {
 public:
  LoadGen(Transport& t, const Config& cfg)
      : t_(t), cfg_(cfg), rng_(cfg.seed), fault_rng_(cfg.seed ^ 0xfa017) {}

  // Sends one line, times it, parses the reply (every reply MUST parse and
  // carry "ok" — anything else is a harness failure), and returns it.
  util::Json rpc(const std::string& op, const util::Json& req) {
    OpStats& st = ops_[op];
    Clock::time_point t0 = Clock::now();
    std::string reply = t_.rpc(req.dump());
    st.lat_ms.push_back(ms_since(t0));
    st.count++;
    util::Json j;
    try {
      j = util::Json::parse(reply);
    } catch (const std::exception& e) {
      fail("reply to op '" + op + "' is not JSON: " + e.what());
      return j;
    }
    if (!j.is_object() || !j.get("ok") || !j.at("ok").is_bool()) {
      fail("reply to op '" + op + "' has no boolean 'ok'");
      return j;
    }
    if (!j.at("ok").as_bool()) {
      const util::Json* kind = j.get("error_kind");
      if (kind && kind->is_string() && kind->as_string() == "overloaded")
        rejected_++;
      else
        st.errors++;
    }
    return j;
  }

  // A seeded malformed line: the serve loop must answer EVERY one with a
  // parseable {"ok":false,...} reply and keep going. Variant 7 is the
  // deep-nesting bomb the parser's depth bound exists for.
  void inject_malformed() {
    static const char* fixed[] = {
        "{\"op\":\"sub",                                    // truncated JSON
        "42",                                               // not an object
        "{\"op\":7}",                                       // op not a string
        "{\"op\":\"frobnicate\"}",                          // unknown op
        "{\"op\":\"submit\"}",                              // missing request
        "{\"op\":\"submit\",\"request\":"
        "{\"schema\":\"k2-compile/v99\"}}",                 // bad schema
    };
    uint64_t variant = fault_rng_.below(8);
    std::string line;
    if (variant < 6) {
      line = fixed[variant];
    } else if (variant == 6) {
      line = "{\"op\":\"" + std::string(64 * 1024, 'x');   // oversized, cut
    } else {
      line.assign(5000, '[');                              // nesting bomb
    }
    malformed_injected_++;
    Clock::time_point t0 = Clock::now();
    std::string reply = t_.rpc(line);
    ops_["malformed"].lat_ms.push_back(ms_since(t0));
    ops_["malformed"].count++;
    try {
      util::Json j = util::Json::parse(reply);
      if (j.is_object() && j.get("ok") && j.at("ok").is_bool() &&
          !j.at("ok").as_bool())
        malformed_rejected_++;
      else
        fail("malformed line was ACCEPTED (variant " +
             std::to_string(variant) + ")");
    } catch (const std::exception& e) {
      fail(std::string("reply to malformed line is not JSON: ") + e.what());
    }
  }

  // The seeded job mix: three corpus benchmarks x a small spread of
  // iteration budgets. Victims get a huge budget so a cancel always lands
  // mid-search.
  util::Json make_submit(bool victim) {
    static const char* benches[] = {"xdp_pktcntr", "xdp_fw",
                                    "xdp_map_access"};
    util::Json req;
    req.set("schema", api::kCompileSchema);
    req.set("benchmark", benches[rng_.below(3)]);
    req.set("iters_per_chain",
            victim ? uint64_t(50'000'000) : 100 + rng_.below(4) * 100);
    req.set("num_chains", int64_t(1 + rng_.below(2)));
    req.set("num_initial_tests", int64_t(4));
    req.set("settings", "table8");
    req.set("eq_timeout_ms", uint64_t(10'000));
    req.set("seed", cfg_.seed * 7919 + rng_.below(1000));
    req.set("threads", int64_t(1));
    req.set("solver_workers", int64_t(cfg_.solver_workers));
    if (!victim && cfg_.budget_wall_ms)
      req.set("budget_wall_ms", cfg_.budget_wall_ms);
    if (!victim && cfg_.budget_iters)
      req.set("budget_iters", cfg_.budget_iters);
    util::Json line;
    line.set("op", "submit");
    line.set("request", std::move(req));
    return line;
  }

  struct Flight {
    std::string id;
    bool victim = false;
    bool slow = false;  // never polls events mid-run → ring may drop
  };

  // Draws this job's fault decisions and builds its submit line — exactly
  // one RNG draw sequence per planned job, so overload retries replay the
  // identical request.
  Flight plan_one(util::Json* line) {
    if (cfg_.malformed_pct && fault_rng_.pct(cfg_.malformed_pct))
      inject_malformed();
    Flight f;
    f.victim = cfg_.cancel_pct && fault_rng_.pct(cfg_.cancel_pct);
    f.slow = !f.victim && cfg_.slow_pct && fault_rng_.pct(cfg_.slow_pct);
    *line = make_submit(f.victim);
    return f;
  }

  // One submit attempt; fills in the job id on acceptance.
  bool try_submit(const util::Json& line, Flight* f, bool* overloaded) {
    util::Json reply = rpc("submit", line);
    if (reply.at("ok").as_bool()) {
      f->id = reply.at("job").as_string();
      submitted_++;
      if (f->victim) {
        util::Json c;
        c.set("op", "cancel");
        c.set("job", f->id);
        rpc("cancel", c);
      }
      return true;
    }
    const util::Json* kind = reply.get("error_kind");
    *overloaded =
        kind && kind->is_string() && kind->as_string() == "overloaded";
    return false;
  }

  // Open-loop submit: one attempt, a rejection is dropped (already counted
  // by rpc()).
  std::optional<Flight> submit_one() {
    util::Json line;
    Flight f = plan_one(&line);
    bool overloaded = false;
    if (!try_submit(line, &f, &overloaded)) return std::nullopt;
    return f;
  }

  // Drain one in-flight job: blocking wait, then (for non-victim,
  // non-slow consumers) an events poll, then the result. Victims never see
  // an events op so a cancelled-early run stays schedule-deterministic.
  void drain_one(const Flight& f) {
    util::Json w;
    w.set("op", "wait");
    w.set("job", f.id);
    util::Json status = rpc("wait", w);
    const std::string& state = status.at("state").as_string();
    if (state == "DONE")
      done_++;
    else if (state == "CANCELLED")
      cancelled_++;
    else
      failed_++;

    if (!f.victim) {
      util::Json e;
      e.set("op", "events");
      e.set("job", f.id);
      e.set("after", uint64_t(0));
      util::Json ev = rpc("events", e);
      if (ev.at("ok").as_bool()) {
        const util::Json::Array& arr = ev.at("events").as_array();
        events_observed_ += arr.size();
        // Drop-oldest detection: the first seq still in the ring tells how
        // many aged out before we polled.
        if (!arr.empty()) {
          uint64_t first = arr.front().at("seq").as_uint();
          if (first > 1) events_dropped_observed_ += first - 1;
        }
      }
    }
    util::Json r;
    r.set("op", "result");
    r.set("job", f.id);
    util::Json res = rpc("result", r);
    if (res.at("ok").as_bool()) {
      const util::Json* single = res.at("result").get("single");
      if (single) {
        const util::Json* be = single->get("budget_exhausted");
        if (be && be->is_bool() && be->as_bool()) budget_exhausted_++;
      }
    }
  }

  // Closed loop with backpressure: an overload rejection drains the
  // oldest in-flight job and retries the SAME request, so every planned
  // job eventually runs while the rejection path still gets exercised
  // whenever the admission bound is tighter than the window.
  void run_closed() {
    std::vector<Flight> window;
    auto drain_oldest = [&] {
      drain_one(window.front());
      window.erase(window.begin());
    };
    for (uint64_t i = 0; i < cfg_.jobs; ++i) {
      util::Json line;
      Flight f = plan_one(&line);
      for (;;) {
        bool overloaded = false;
        if (try_submit(line, &f, &overloaded)) {
          window.push_back(f);
          break;
        }
        if (!overloaded || window.empty()) break;  // invalid, or nothing
        drain_oldest();                            // to shed — drop the job
      }
      while (window.size() >= cfg_.concurrency) drain_oldest();
    }
    while (!window.empty()) drain_oldest();
  }

  void run_open() {
    std::vector<Flight> inflight;
    for (uint64_t i = 0; i < cfg_.jobs; ++i) {
      if (i > 0 && cfg_.rate > 0) {
        double gap_s = -std::log(1.0 - rng_.uniform()) / cfg_.rate;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(std::min(gap_s, 1.0)));
      }
      if (std::optional<Flight> f = submit_one()) inflight.push_back(*f);
      if (i % 8 == 7) rpc("metrics", op_only("metrics"));  // sample gauges
    }
    for (const Flight& f : inflight) drain_one(f);
  }

  static util::Json op_only(const char* op) {
    util::Json j;
    j.set("op", op);
    return j;
  }

  // Post-drain invariants + shutdown. The service must be visibly idle
  // (nothing active, nothing pending) BEFORE shutdown, and shutdown must
  // report zero leaked verdicts.
  util::Json finish() {
    util::Json m = rpc("metrics", op_only("metrics"));
    uint64_t active = m.at("jobs").at("active").as_uint();
    uint64_t pending = m.at("cache").at("pending").as_uint();
    if (active != 0)
      fail("after drain: " + std::to_string(active) + " jobs still active");
    uint64_t m_submitted = m.at("jobs").at("submitted").as_uint();
    if (m_submitted != submitted_)
      fail("metrics.jobs.submitted=" + std::to_string(m_submitted) +
           " but harness submitted " + std::to_string(submitted_));
    rpc("stats", op_only("stats"));
    util::Json s = rpc("shutdown", op_only("shutdown"));
    bool clean = s.at("ok").as_bool() &&
                 s.at("pending_eq").as_uint() == 0 && pending == 0;
    if (!clean) fail("shutdown was not clean (pending verdicts)");

    util::Json fin;
    fin.set("active_jobs", active);
    fin.set("pending_eq", pending);
    fin.set("clean_shutdown", clean);
    if (!cfg_.deterministic) fin.set("metrics", std::move(m));
    return fin;
  }

  util::Json report(const char* transport, double wall_secs) {
    util::Json j;
    j.set("schema", api::kLoadReportSchema);
    j.set("mode", cfg_.mode);
    j.set("transport", transport);

    util::Json c;
    c.set("jobs", cfg_.jobs);
    c.set("concurrency", cfg_.concurrency);
    c.set("threads", int64_t(cfg_.threads));
    c.set("solver_workers", int64_t(cfg_.solver_workers));
    c.set("seed", cfg_.seed);
    c.set("cancel_pct", cfg_.cancel_pct);
    c.set("malformed_pct", cfg_.malformed_pct);
    c.set("slow_pct", cfg_.slow_pct);
    c.set("budget_wall_ms", cfg_.budget_wall_ms);
    c.set("budget_iters", cfg_.budget_iters);
    c.set("max_queued_jobs", cfg_.max_queued_jobs);
    c.set("max_active_jobs", cfg_.max_active_jobs);
    c.set("max_events_per_job", cfg_.max_events_per_job);
    c.set("tick_every", cfg_.tick_every);
    c.set("deterministic", cfg_.deterministic);
    j.set("config", std::move(c));

    j.set("submitted", submitted_);
    j.set("rejected", rejected_);
    util::Json out;
    out.set("done", done_);
    out.set("failed", failed_);
    out.set("cancelled", cancelled_);
    j.set("outcomes", std::move(out));
    j.set("budget_exhausted", budget_exhausted_);
    util::Json mal;
    mal.set("injected", malformed_injected_);
    mal.set("rejected", malformed_rejected_);
    j.set("malformed", std::move(mal));
    util::Json ev;
    ev.set("observed", events_observed_);
    ev.set("dropped_observed", events_dropped_observed_);
    j.set("events", std::move(ev));

    // Per-op latency percentiles. --deterministic zeroes every
    // timing-derived number (latencies, wall time, throughput) so the
    // whole report is a pure function of the seed and schedule.
    util::Json ops;
    for (auto& [name, st] : ops_) {
      util::Json o;
      o.set("count", st.count);
      o.set("errors", st.errors);
      bool det = cfg_.deterministic;
      o.set("p50_ms", det ? 0.0 : percentile(st.lat_ms, 50));
      o.set("p90_ms", det ? 0.0 : percentile(st.lat_ms, 90));
      o.set("p99_ms", det ? 0.0 : percentile(st.lat_ms, 99));
      o.set("max_ms", det ? 0.0 : percentile(st.lat_ms, 100));
      ops.set(name, std::move(o));
    }
    j.set("ops", std::move(ops));

    j.set("wall_secs", cfg_.deterministic ? 0.0 : wall_secs);
    j.set("throughput_jobs_per_sec",
          cfg_.deterministic || wall_secs <= 0
              ? 0.0
              : double(submitted_) / wall_secs);
    return j;
  }

  void fail(const std::string& msg) {
    fprintf(stderr, "bench_serve_load: FAIL: %s\n", msg.c_str());
    failures_++;
  }

  uint64_t failures() const { return failures_; }
  uint64_t submitted() const { return submitted_; }

 private:
  Transport& t_;
  const Config& cfg_;
  Rng rng_;        // schedule: job mix, inter-arrivals
  Rng fault_rng_;  // fault decisions: victims, malformed, slow consumers
  std::map<std::string, OpStats> ops_;  // ordered → stable report
  uint64_t submitted_ = 0, rejected_ = 0;
  uint64_t done_ = 0, failed_ = 0, cancelled_ = 0;
  uint64_t budget_exhausted_ = 0;
  uint64_t malformed_injected_ = 0, malformed_rejected_ = 0;
  uint64_t events_observed_ = 0, events_dropped_observed_ = 0;
  uint64_t failures_ = 0;
};

util::Flags make_flags() {
  using T = util::FlagSpec::Type;
  return util::Flags({
      {"mode", T::STRING, "closed", "arrival model", "closed|open"},
      {"jobs", T::UINT, "50", "total jobs to submit", ""},
      {"concurrency", T::UINT, "4",
       "closed loop: in-flight window before blocking on the oldest", ""},
      {"rate", T::DOUBLE, "20", "open loop: mean arrival rate (jobs/sec)",
       ""},
      {"threads", T::INT, "4", "service pool width (in-process only)", ""},
      {"solver-workers", T::INT, "0",
       "service async Z3 workers (in-process only)", ""},
      {"max-queued-jobs", T::UINT, "0",
       "admission bound on QUEUED jobs (0 = unbounded; in-process only)",
       ""},
      {"max-active-jobs", T::UINT, "0",
       "admission bound on queued+running jobs (0 = unbounded; in-process "
       "only)",
       ""},
      {"max-events-per-job", T::UINT, "4096",
       "per-job event-ring bound (in-process only)", ""},
      {"tick-every", T::UINT, "64",
       "chain iterations between tick events (in-process only)", ""},
      {"seed", T::UINT, "42",
       "schedule seed: job mix, faults, arrivals (same seed = same "
       "schedule)",
       ""},
      {"cancel-pct", T::UINT, "0",
       "percent of jobs submitted as cancel victims (huge budget, then "
       "cancel)",
       ""},
      {"malformed-pct", T::UINT, "0",
       "percent chance of a malformed line before each submit", ""},
      {"slow-pct", T::UINT, "0",
       "percent of jobs whose events are never polled mid-run (ring-drop "
       "pressure)",
       ""},
      {"budget-wall-ms", T::UINT, "0",
       "per-job wall-clock budget forwarded in each request (0 = none)",
       ""},
      {"budget-iters", T::UINT, "0",
       "per-job iteration budget forwarded in each request (0 = none)", ""},
      {"socket", T::STRING, "",
       "drive an external `k2c serve --socket=<path>` instead of in-process",
       ""},
      {"deterministic", T::BOOL, "",
       "zero all timing fields so same-seed reports are byte-identical "
       "(use with --threads=1 --solver-workers=0 --cancel-pct=0)",
       ""},
      {"smoke", T::BOOL, "", "tiny schedule (a few jobs) for CI", ""},
      {"json", T::BOOL, "", "emit the k2-loadreport/v1 JSON on stdout", ""},
  });
}

}  // namespace
}  // namespace k2

int main(int argc, char** argv) {
  using namespace k2;
  util::Flags f = make_flags();
  std::string err;
  if (!f.parse(argc, argv, &err)) {
    fprintf(stderr, "bench_serve_load: %s\n", err.c_str());
    return 2;
  }
  if (f.help_requested()) {
    printf("%s", f.help("bench_serve_load [options]").c_str());
    return 0;
  }

  Config cfg;
  cfg.mode = f.str("mode");
  cfg.jobs = f.unum("jobs");
  cfg.concurrency = std::max<uint64_t>(1, f.unum("concurrency"));
  cfg.rate = f.dnum("rate");
  cfg.threads = int(f.num("threads"));
  cfg.solver_workers = int(f.num("solver-workers"));
  cfg.max_queued_jobs = f.unum("max-queued-jobs");
  cfg.max_active_jobs = f.unum("max-active-jobs");
  cfg.max_events_per_job = f.unum("max-events-per-job");
  cfg.tick_every = f.unum("tick-every");
  cfg.seed = f.unum("seed");
  cfg.cancel_pct = f.unum("cancel-pct");
  cfg.malformed_pct = f.unum("malformed-pct");
  cfg.slow_pct = f.unum("slow-pct");
  cfg.budget_wall_ms = f.unum("budget-wall-ms");
  cfg.budget_iters = f.unum("budget-iters");
  cfg.deterministic = f.flag("deterministic");
  cfg.socket_path = f.str("socket");
  if (f.flag("smoke")) cfg.jobs = std::min<uint64_t>(cfg.jobs, 8);

  std::unique_ptr<Transport> transport;
  try {
    if (!cfg.socket_path.empty()) {
      transport = std::make_unique<SocketTransport>(cfg.socket_path);
    } else {
      api::ServiceOptions sopts;
      sopts.threads = cfg.threads;
      sopts.solver_workers = cfg.solver_workers;
      sopts.tick_every = cfg.tick_every;
      sopts.max_events_per_job = size_t(cfg.max_events_per_job);
      sopts.max_queued_jobs = size_t(cfg.max_queued_jobs);
      sopts.max_active_jobs = size_t(cfg.max_active_jobs);
      transport = std::make_unique<InProcessTransport>(std::move(sopts));
    }
  } catch (const std::exception& e) {
    fprintf(stderr, "bench_serve_load: %s\n", e.what());
    return 2;
  }

  LoadGen gen(*transport, cfg);
  Clock::time_point t0 = Clock::now();
  try {
    gen.rpc("hello", LoadGen::op_only("hello"));
    if (cfg.mode == "open")
      gen.run_open();
    else
      gen.run_closed();
  } catch (const std::exception& e) {
    fprintf(stderr, "bench_serve_load: transport error: %s\n", e.what());
    return 2;
  }
  util::Json fin = gen.finish();
  double wall = ms_since(t0) / 1000.0;

  util::Json report = gen.report(transport->name(), wall);
  report.set("final", std::move(fin));

  if (f.flag("json")) {
    printf("%s\n", report.dump(2).c_str());
  } else {
    printf("serve_load: mode=%s transport=%s submitted=%llu rejected=%llu\n",
           cfg.mode.c_str(), transport->name(),
           (unsigned long long)report.at("submitted").as_uint(),
           (unsigned long long)report.at("rejected").as_uint());
    printf("  outcomes: done=%llu failed=%llu cancelled=%llu "
           "budget_exhausted=%llu\n",
           (unsigned long long)report.at("outcomes").at("done").as_uint(),
           (unsigned long long)report.at("outcomes").at("failed").as_uint(),
           (unsigned long long)
               report.at("outcomes").at("cancelled").as_uint(),
           (unsigned long long)report.at("budget_exhausted").as_uint());
    printf("  malformed: injected=%llu rejected=%llu  events: observed=%llu "
           "dropped=%llu\n",
           (unsigned long long)report.at("malformed").at("injected").as_uint(),
           (unsigned long long)report.at("malformed").at("rejected").as_uint(),
           (unsigned long long)report.at("events").at("observed").as_uint(),
           (unsigned long long)
               report.at("events").at("dropped_observed").as_uint());
    for (const auto& [op, st] : report.at("ops").as_object())
      printf("  op %-10s count=%-5llu errors=%-3llu p50=%.2fms p99=%.2fms\n",
             op.c_str(), (unsigned long long)st.at("count").as_uint(),
             (unsigned long long)st.at("errors").as_uint(),
             st.at("p50_ms").as_double(), st.at("p99_ms").as_double());
    printf("  wall=%.2fs clean_shutdown=%s\n",
           report.at("wall_secs").as_double(),
           report.at("final").at("clean_shutdown").as_bool() ? "yes" : "no");
  }
  return gen.failures() == 0 ? 0 : 1;
}
