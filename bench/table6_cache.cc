// Table 6 (App. F.3): the equivalence-cache hit rate — the fraction of
// would-be solver queries eliminated by canonicalize-then-hash caching
// (optimization V, §5). Paper: >= 92-96% across benchmarks.
#include <cstdio>

#include "bench_util.h"

using namespace k2;

int main() {
  // Paper's Table 6 rows: benchmarks (1)-(4), (14), (17), (18).
  struct Row {
    const char* name;
    double paper_rate;
  } rows[] = {{"xdp_exception", 0.93},      {"xdp_redirect_err", 0.93},
              {"xdp_devmap_xmit", 0.96},    {"xdp_cpumap_kthread", 0.95},
              {"xdp_pktcntr", 0.96},        {"from-network", 0.96},
              {"recvmsg4", 0.92}};

  printf("Table 6: programs hitting the verification cache (§5 V)\n");
  bench::hr('=');
  printf("%-20s | %10s %10s %8s | %10s\n", "benchmark", "cache hits",
         "calls", "rate", "paper rate");
  bench::hr();

  for (const Row& row : rows) {
    const corpus::Benchmark& b = corpus::benchmark(row.name);
    core::CompileResult res =
        bench::quick_compile(b.o2, core::Goal::INST_COUNT, 6000, 4);
    uint64_t calls = res.cache.hits + res.cache.misses;
    double rate = res.cache.hit_rate();
    printf("%-20s | %10llu %10llu %7.1f%% | %9.0f%%\n", row.name,
           static_cast<unsigned long long>(res.cache.hits),
           static_cast<unsigned long long>(calls), rate * 100,
           row.paper_rate * 100);
  }
  bench::hr();
  printf("shape target: high double-digit hit rates (the chain revisits "
         "canonically-identical candidates constantly)\n");
  return 0;
}
