// Table 7 (App. E): improvements in K2's *estimated* program runtime (the
// latency cost function perf_lat) under the latency goal.
#include <cstdio>

#include "bench_util.h"
#include "sim/latency_model.h"

using namespace k2;

int main() {
  struct Row {
    const char* name;
    double paper_gain;
  } rows[] = {{"xdp_router_ipv4", 0.0622}, {"xdp_redirect", 0.0970},
              {"xdp1_kern/xdp1", 0.0399},  {"xdp2_kern/xdp1", 0.0654},
              {"xdp_fwd", 0.1519},         {"xdp_pktcntr", 0.0381},
              {"xdp_fw", 0.0343},          {"xdp_map_access", 0.0243},
              {"from-network", 0.0578},    {"recvmsg4", 0.0630}};

  printf("Table 7: K2-estimated program runtime (latency cost fn), ns\n");
  bench::hr('=');
  printf("%-18s | %9s %9s %9s | %8s | %10s\n", "benchmark", "-O1", "-O2",
         "K2", "gain", "paper gain");
  bench::hr();

  double gain_sum = 0;
  int n = 0;
  for (const Row& row : rows) {
    const corpus::Benchmark& b = corpus::benchmark(row.name);
    core::CompileResult res =
        bench::quick_compile(b.o2, core::Goal::LATENCY, 6000, 3);
    double e_o1 = sim::static_program_cost_ns(b.o1);
    double e_o2 = sim::static_program_cost_ns(b.o2);
    double e_k2 = res.improved ? sim::static_program_cost_ns(res.best) : e_o2;
    double gain = e_o2 > 0 ? 1.0 - e_k2 / e_o2 : 0;
    gain_sum += gain;
    n++;
    printf("%-18s | %9.1f %9.1f %9.1f | %8s | %10s\n", row.name, e_o1, e_o2,
           e_k2, bench::pct(gain).c_str(), bench::pct(row.paper_gain).c_str());
  }
  bench::hr();
  printf("mean gain: %s (paper mean: 6.19%%)\n",
         bench::pct(gain_sum / n).c_str());
  return 0;
}
