// Solver-farm / persistent-cache benchmark: cold vs. warm wall-clock and
// Z3-invocation counts for the on-disk equivalence cache (k2-eqcache/v1),
// plus a remote-worker row exercising the k2-solve/v1 backend against an
// in-process solve-worker over a socketpair.
//
//   bench_solver_farm                 default budgets
//   bench_solver_farm --smoke         short CI mode
//   bench_solver_farm --json out.json machine-readable results
//
// Shape target: the warm run issues ZERO solver calls for settled pairs
// (every would-be query is a disk-tier hit) and lands on the bit-identical
// winner, and the remote row's winner matches the local rows (the remote
// backend runs literally the same solve_query_local policy).
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "util/flags.h"
#include "verify/solve_protocol.h"
#include "verify/solver_backend.h"

namespace {

using namespace k2;

struct Row {
  const char* label;
  double wall_ms = 0;
  core::CompileResult res;
};

core::CompileOptions base_options(uint64_t iters) {
  core::CompileOptions o;
  o.goal = core::Goal::INST_COUNT;
  o.iters_per_chain = iters;
  o.num_chains = 2;
  o.top_k = 1;
  o.eq.timeout_ms = 10000;
  o.settings = core::table8_settings();
  return o;
}

Row run_once(const char* label, const ebpf::Program& src,
             const core::CompileOptions& opts,
             verify::SolverBackend* backend = nullptr) {
  Row row;
  row.label = label;
  core::CompileServices svc;
  svc.sequential = true;  // bit-identical decisions across the rows
  svc.backend = backend;
  auto t0 = std::chrono::steady_clock::now();
  row.res = core::compile(src, opts, svc);
  row.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return row;
}

void print_row(const Row& r) {
  printf("%-24s %10.0f %8llu %8llu %8llu %9llu %9llu %8llu\n", r.label,
         r.wall_ms, (unsigned long long)r.res.solver_calls,
         (unsigned long long)r.res.cache.hits,
         (unsigned long long)r.res.cache.misses,
         (unsigned long long)r.res.cache.disk_hits,
         (unsigned long long)r.res.cache.disk_loaded,
         (unsigned long long)r.res.cache.disk_writes);
}

std::string winner_key(const core::CompileResult& r) {
  return verify::program_to_json(r.best).dump();
}

}  // namespace

int main(int argc, char** argv) {
  using T = util::FlagSpec::Type;
  util::Flags f({
      {"smoke", T::BOOL, "", "short CI mode", ""},
      {"json", T::STRING, "", "write machine-readable results here", ""},
  });
  std::string error;
  if (!f.parse(argc, argv, &error)) {
    fprintf(stderr, "bench_solver_farm: %s\n", error.c_str());
    return 2;
  }
  if (f.help_requested()) {
    fputs(f.help("usage: bench_solver_farm [options]").c_str(), stdout);
    return 0;
  }
  bool smoke = f.flag("smoke");
  std::string json_path = f.str("json");
  uint64_t iters = bench::scaled(smoke ? 400 : 3000);

  const ebpf::Program& src = corpus::benchmark("xdp_map_access").o2;

  char tmpl[] = "/tmp/k2_solver_farm.XXXXXX";
  const char* dir = mkdtemp(tmpl);
  if (!dir) {
    fprintf(stderr, "bench_solver_farm: mkdtemp failed\n");
    return 1;
  }
  std::string cache_dir = std::string(dir) + "/eqcache";

  printf("solver_farm: 2 chains x %llu iters on xdp_map_access, cache at %s\n",
         (unsigned long long)iters, cache_dir.c_str());
  bench::hr();
  printf("%-24s %10s %8s %8s %8s %9s %9s %8s\n", "configuration", "wall ms",
         "z3 calls", "mem hit", "miss", "disk hit", "disk ld", "disk wr");
  bench::hr();

  std::vector<Row> rows;

  core::CompileOptions opts = base_options(iters);
  opts.cache_dir = cache_dir;
  rows.push_back(run_once("local cold (empty cache)", src, opts));
  print_row(rows.back());
  rows.push_back(run_once("local warm (same cache)", src, opts));
  print_row(rows.back());

  // Remote row: an in-process solve-worker on one end of a socketpair, the
  // compile talking to it through the fd:N endpoint form. Same query policy,
  // so the winner must match the local rows bit for bit.
  {
    int sv[2];
    if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      fprintf(stderr, "bench_solver_farm: socketpair failed\n");
      return 1;
    }
    std::thread worker_thread([fd = sv[1]] {
      verify::SolveWorker worker;
      std::string pending;
      char chunk[4096];
      ssize_t n;
      bool stop = false;
      while (!stop && (n = read(fd, chunk, sizeof chunk)) > 0) {
        pending.append(chunk, size_t(n));
        size_t pos;
        while (!stop && (pos = pending.find('\n')) != std::string::npos) {
          std::string line = pending.substr(0, pos);
          pending.erase(0, pos + 1);
          if (line.empty()) continue;
          std::string reply = worker.handle_line(line, &stop) + "\n";
          size_t off = 0;
          while (off < reply.size()) {
            ssize_t w = write(fd, reply.data() + off, reply.size() - off);
            if (w <= 0) { stop = true; break; }
            off += size_t(w);
          }
        }
      }
      close(fd);
    });

    core::CompileOptions ropts = base_options(iters);
    ropts.solver_endpoints = {"fd:" + std::to_string(sv[0])};
    verify::RemoteSolverBackend::Options bo;
    bo.endpoints = ropts.solver_endpoints;
    verify::RemoteSolverBackend backend(bo);
    rows.push_back(run_once("remote (1 worker, cold)", src, ropts, &backend));
    print_row(rows.back());
    verify::RemoteSolverBackend::Stats rs = backend.stats();
    bench::hr();
    printf("remote backend: %llu solved remotely, %llu endpoint failures, "
           "%llu local fallbacks\n",
           (unsigned long long)rs.remote_solved,
           (unsigned long long)rs.remote_failed,
           (unsigned long long)rs.local_fallbacks);
    shutdown(sv[0], SHUT_RDWR);  // backend keeps its fd; unstick the worker
    worker_thread.join();
  }

  bool warm_zero_solver = rows[1].res.solver_calls == 0;
  bool winners_match = winner_key(rows[0].res) == winner_key(rows[1].res) &&
                       winner_key(rows[0].res) == winner_key(rows[2].res);
  printf("warm run solver calls: %llu (target 0); winners %s across rows\n",
         (unsigned long long)rows[1].res.solver_calls,
         winners_match ? "IDENTICAL" : "DIFFER");

  if (!json_path.empty()) {
    FILE* jf = fopen(json_path.c_str(), "w");
    if (!jf) {
      fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    fprintf(jf, "{\n  \"bench\": \"solver_farm\",\n  \"smoke\": %s,\n",
            smoke ? "true" : "false");
    fprintf(jf, "  \"iters_per_chain\": %llu,\n", (unsigned long long)iters);
    fprintf(jf, "  \"warm_zero_solver_calls\": %s,\n",
            warm_zero_solver ? "true" : "false");
    fprintf(jf, "  \"winners_identical\": %s,\n",
            winners_match ? "true" : "false");
    fprintf(jf, "  \"results\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      fprintf(jf,
              "    {\"label\": \"%s\", \"wall_ms\": %.1f, "
              "\"solver_calls\": %llu, \"cache_hits\": %llu, "
              "\"cache_misses\": %llu, \"disk_hits\": %llu, "
              "\"disk_loaded\": %llu, \"disk_writes\": %llu}%s\n",
              r.label, r.wall_ms, (unsigned long long)r.res.solver_calls,
              (unsigned long long)r.res.cache.hits,
              (unsigned long long)r.res.cache.misses,
              (unsigned long long)r.res.cache.disk_hits,
              (unsigned long long)r.res.cache.disk_loaded,
              (unsigned long long)r.res.cache.disk_writes,
              i + 1 < rows.size() ? "," : "");
    }
    fprintf(jf, "  ]\n}\n");
    fclose(jf);
    printf("wrote %s\n", json_path.c_str());
  }
  return winners_match ? 0 : 1;
}
