// Micro-benchmark: evaluation-pipeline throughput (proposals/sec) —
// single- vs multi-threaded chains, the decision-preserving execution-order
// optimizations (fail-first tests + provable-rejection early exit) on and
// off, and synchronous vs asynchronous solver dispatch (ISSUE 2) at 1/2/4
// dedicated Z3 workers. Since ISSUE 5 every run goes through the service
// API (api::CompilerService) — the same entry point k2c and `k2c serve`
// use — with multi-thread rows as non-deterministic jobs (parallel chains
// inside the job).
//
//   bench_micro_pipeline                    full sweep (sync + async rows)
//   bench_micro_pipeline --solver-workers N sync baseline vs async at N
//   bench_micro_pipeline --smoke            short CI mode (sync rows only)
//   bench_micro_pipeline --json out.json    machine-readable results
//
// ISSUE 1 acceptance: >= 1.5x proposals/sec at 4 threads vs 1 thread on a
// >= 4-core machine. ISSUE 2 adds solver-queue depth and speculation
// outcome columns; async throughput gains need real hardware parallelism
// AND solver-bound workloads (on a 1-core container, read the speculation/
// rollback/queue columns, not wall-clock).
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "api/request.h"
#include "api/service.h"
#include "bench_util.h"
#include "util/flags.h"

namespace {

using namespace k2;

struct Run {
  const char* label;
  int threads;
  bool opts_on;
  int solver_workers;
  core::CompileResult res;
};

core::CompileResult run_once(int threads, bool opts_on, int solver_workers,
                             uint64_t iters) {
  api::CompileRequest req =
      api::CompileRequest::for_benchmark("xdp_map_access");
  req.goal = core::Goal::INST_COUNT;
  req.iters_per_chain = iters;
  req.num_chains = 4;
  req.threads = threads;
  req.top_k = 1;
  req.eq_timeout_ms = 10000;
  req.settings = api::CompileRequest::Settings::TABLE8;
  req.reorder_tests = opts_on;
  req.early_exit = opts_on;
  req.solver_workers = solver_workers;
  // Thread scaling is the point of this bench: chains run on the job's
  // pool, trading the sequential-mode determinism guarantee for speed.
  req.deterministic = false;

  api::ServiceOptions sopts;
  sopts.threads = threads;
  sopts.solver_workers = solver_workers;
  api::CompilerService service(sopts);
  api::JobHandle job = service.submit(std::move(req));
  job.wait();
  api::CompileResponse resp = job.response();
  if (resp.state != api::JobState::DONE) {
    fprintf(stderr, "bench_micro_pipeline: job %s %s: %s\n",
            resp.job_id.c_str(), api::to_string(resp.state),
            resp.error.c_str());
    exit(1);
  }
  // Dispatcher-level counters are filled per job by the service (owner-
  // reports rule), so the response is complete as-is.
  return *resp.single;
}

double proposals_per_sec(const core::CompileResult& r) {
  return r.total_secs > 0 ? double(r.total_proposals) / r.total_secs : 0;
}

void print_row(const Run& r) {
  printf("%-30s %4d %4d %12.0f %12llu %8llu %8llu %6llu %10s\n", r.label,
         r.threads, r.solver_workers, proposals_per_sec(r.res),
         (unsigned long long)r.res.tests_skipped,
         (unsigned long long)r.res.speculations,
         (unsigned long long)r.res.rollbacks,
         (unsigned long long)r.res.solver_queue_peak,
         bench::pct(r.res.cache.hit_rate()).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using T = util::FlagSpec::Type;
  util::Flags f({
      {"solver-workers", T::INT, "-1",
       "focused comparison: sync baseline vs async at this pool size", ""},
      {"smoke", T::BOOL, "", "short CI mode (sync rows only)", ""},
      {"json", T::STRING, "", "write machine-readable results here", ""},
  });
  std::string error;
  if (!f.parse(argc, argv, &error)) {
    fprintf(stderr, "bench_micro_pipeline: %s\n", error.c_str());
    return 2;
  }
  if (f.help_requested()) {
    fputs(f.help("usage: bench_micro_pipeline [options]").c_str(), stdout);
    return 0;
  }
  int requested_workers = int(f.num("solver-workers"));
  bool smoke = f.flag("smoke");
  std::string json_path = f.str("json");

  const ebpf::Program& src = corpus::benchmark("xdp_map_access").o2;
  uint64_t iters = bench::scaled(smoke ? 400 : 4000);

  printf("micro_pipeline: 4 chains x %llu iters on xdp_map_access (%d real insns), host has %u hardware threads\n",
         (unsigned long long)iters, src.num_real_insns(),
         std::thread::hardware_concurrency());
  bench::hr();
  printf("%-30s %4s %4s %12s %12s %8s %8s %6s %10s\n", "configuration",
         "thr", "slv", "proposals/s", "tests skip", "specs", "rollbk",
         "qpeak", "cache hit%");
  bench::hr();

  std::vector<Run> runs;
  if (requested_workers >= 0) {
    // Focused comparison: sync baseline vs async at the requested pool size
    // (pool size 0 degenerates to two identical sync runs).
    runs.push_back({"pipeline sync", 4, true, 0, {}});
    runs.push_back({"pipeline async", 4, true, requested_workers, {}});
  } else if (smoke) {
    runs.push_back({"legacy order (no reorder/exit)", 1, false, 0, {}});
    runs.push_back({"pipeline sync", 1, true, 0, {}});
  } else {
    runs.push_back({"legacy order (no reorder/exit)", 1, false, 0, {}});
    runs.push_back({"pipeline sync", 1, true, 0, {}});
    runs.push_back({"pipeline sync", 4, true, 0, {}});
    runs.push_back({"pipeline async", 4, true, 1, {}});
    runs.push_back({"pipeline async", 4, true, 2, {}});
    runs.push_back({"pipeline async", 4, true, 4, {}});
  }

  double base = 0, multi = 0;
  for (Run& r : runs) {
    r.res = run_once(r.threads, r.opts_on, r.solver_workers, iters);
    if (r.threads == 1 && r.opts_on && r.solver_workers == 0)
      base = proposals_per_sec(r.res);
    if (r.threads == 4 && r.opts_on && r.solver_workers == 0)
      multi = proposals_per_sec(r.res);
    print_row(r);
  }
  bench::hr();
  if (base > 0 && multi > 0)
    printf("4-thread speedup over 1-thread: %.2fx (meaningful only with >= 4 hardware threads)\n",
           multi / base);

  if (!json_path.empty()) {
    FILE* jf = fopen(json_path.c_str(), "w");
    if (!jf) {
      fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    fprintf(jf, "{\n  \"bench\": \"micro_pipeline\",\n  \"smoke\": %s,\n",
            smoke ? "true" : "false");
    fprintf(jf, "  \"iters_per_chain\": %llu,\n  \"results\": [\n",
            (unsigned long long)iters);
    for (size_t i = 0; i < runs.size(); ++i) {
      const Run& r = runs[i];
      fprintf(jf,
              "    {\"label\": \"%s\", \"threads\": %d, "
              "\"solver_workers\": %d, \"proposals_per_sec\": %.1f, "
              "\"tests_executed\": %llu, \"tests_skipped\": %llu, "
              "\"early_exits\": %llu, \"speculations\": %llu, "
              "\"rollbacks\": %llu, \"solver_queue_peak\": %llu, "
              "\"cache_hit_rate\": %.4f, \"cache_disk_hits\": %llu, "
              "\"cache_disk_loaded\": %llu, \"cache_disk_writes\": %llu}%s\n",
              r.label, r.threads, r.solver_workers, proposals_per_sec(r.res),
              (unsigned long long)r.res.tests_executed,
              (unsigned long long)r.res.tests_skipped,
              (unsigned long long)r.res.early_exits,
              (unsigned long long)r.res.speculations,
              (unsigned long long)r.res.rollbacks,
              (unsigned long long)r.res.solver_queue_peak,
              r.res.cache.hit_rate(), (unsigned long long)r.res.cache.disk_hits,
              (unsigned long long)r.res.cache.disk_loaded,
              (unsigned long long)r.res.cache.disk_writes,
              i + 1 < runs.size() ? "," : "");
    }
    fprintf(jf, "  ]\n}\n");
    fclose(jf);
    printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
