// Micro-benchmark: evaluation-pipeline throughput (proposals/sec) —
// single- vs multi-threaded chains over the work-stealing pool, and the
// decision-preserving execution-order optimizations (fail-first tests +
// provable-rejection early exit) on and off. ISSUE 1 acceptance: >= 1.5x
// proposals/sec at 4 threads vs 1 thread on a >= 4-core machine.
#include <cstdio>
#include <thread>

#include "bench_util.h"

namespace {

using namespace k2;

struct Run {
  const char* label;
  int threads;
  bool opts_on;
  core::CompileResult res;
};

core::CompileResult run_once(const ebpf::Program& src, int threads,
                             bool opts_on, uint64_t iters) {
  core::CompileOptions o;
  o.goal = core::Goal::INST_COUNT;
  o.iters_per_chain = iters;
  o.num_chains = 4;
  o.threads = threads;
  o.top_k = 1;
  o.eq.timeout_ms = 10000;
  o.settings = core::table8_settings();
  o.reorder_tests = opts_on;
  o.early_exit = opts_on;
  return core::compile(src, o);
}

double proposals_per_sec(const core::CompileResult& r) {
  return r.total_secs > 0 ? double(r.total_proposals) / r.total_secs : 0;
}

}  // namespace

int main() {
  const ebpf::Program& src = corpus::benchmark("xdp_map_access").o2;
  uint64_t iters = bench::scaled(4000);

  printf("micro_pipeline: 4 chains x %llu iters on xdp_map_access (%d real insns), host has %u hardware threads\n",
         (unsigned long long)iters, src.num_real_insns(),
         std::thread::hardware_concurrency());
  bench::hr();
  printf("%-34s %10s %12s %14s %12s %12s\n", "configuration", "threads",
         "proposals/s", "tests skipped", "early exits", "cache hit%");
  bench::hr();

  Run runs[] = {
      {"legacy order (no reorder/exit)", 1, false, {}},
      {"pipeline (reorder + early exit)", 1, true, {}},
      {"pipeline (reorder + early exit)", 4, true, {}},
  };
  double base = 0, multi = 0;
  for (Run& r : runs) {
    r.res = run_once(src, r.threads, r.opts_on, iters);
    double pps = proposals_per_sec(r.res);
    if (r.threads == 1 && r.opts_on) base = pps;
    if (r.threads == 4 && r.opts_on) multi = pps;
    printf("%-34s %10d %12.0f %14llu %12llu %11s\n", r.label, r.threads, pps,
           (unsigned long long)r.res.tests_skipped,
           (unsigned long long)r.res.early_exits,
           bench::pct(r.res.cache.hit_rate()).c_str());
  }
  bench::hr();
  if (base > 0)
    printf("4-thread speedup over 1-thread: %.2fx (meaningful only with >= 4 hardware threads)\n",
           multi / base);
  return 0;
}
