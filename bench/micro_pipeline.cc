// Micro-benchmark: evaluation-pipeline throughput (proposals/sec) —
// single- vs multi-threaded chains over the work-stealing pool, the
// decision-preserving execution-order optimizations (fail-first tests +
// provable-rejection early exit) on and off, and synchronous vs
// asynchronous solver dispatch (ISSUE 2): equivalence queries overlapped
// with chain progress via speculation, at 1/2/4 dedicated Z3 workers.
//
//   bench_micro_pipeline                    full sweep (sync + async rows)
//   bench_micro_pipeline --solver-workers N sync baseline vs async at N
//   bench_micro_pipeline --smoke            short CI mode (sync rows only)
//   bench_micro_pipeline --json out.json    machine-readable results
//
// ISSUE 1 acceptance: >= 1.5x proposals/sec at 4 threads vs 1 thread on a
// >= 4-core machine. ISSUE 2 adds solver-queue depth and speculation
// outcome columns; async throughput gains need real hardware parallelism
// AND solver-bound workloads (on a 1-core container, read the speculation/
// rollback/queue columns, not wall-clock).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.h"

namespace {

using namespace k2;

struct Run {
  const char* label;
  int threads;
  bool opts_on;
  int solver_workers;
  core::CompileResult res;
};

core::CompileResult run_once(const ebpf::Program& src, int threads,
                             bool opts_on, int solver_workers,
                             uint64_t iters) {
  core::CompileOptions o;
  o.goal = core::Goal::INST_COUNT;
  o.iters_per_chain = iters;
  o.num_chains = 4;
  o.threads = threads;
  o.top_k = 1;
  o.eq.timeout_ms = 10000;
  o.settings = core::table8_settings();
  o.reorder_tests = opts_on;
  o.early_exit = opts_on;
  o.solver_workers = solver_workers;
  return core::compile(src, o);
}

double proposals_per_sec(const core::CompileResult& r) {
  return r.total_secs > 0 ? double(r.total_proposals) / r.total_secs : 0;
}

void print_row(const Run& r) {
  printf("%-30s %4d %4d %12.0f %12llu %8llu %8llu %6llu %10s\n", r.label,
         r.threads, r.solver_workers, proposals_per_sec(r.res),
         (unsigned long long)r.res.tests_skipped,
         (unsigned long long)r.res.speculations,
         (unsigned long long)r.res.rollbacks,
         (unsigned long long)r.res.solver_queue_peak,
         bench::pct(r.res.cache.hit_rate()).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  int requested_workers = -1;
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!strcmp(argv[i], "--solver-workers") && i + 1 < argc) {
      requested_workers = atoi(argv[++i]);
    } else if (!strncmp(argv[i], "--solver-workers=", 17)) {
      requested_workers = atoi(argv[i] + 17);
    } else if (!strcmp(argv[i], "--smoke")) {
      smoke = true;
    } else if (!strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else if (!strncmp(argv[i], "--json=", 7)) {
      json_path = argv[i] + 7;
    }
  }

  const ebpf::Program& src = corpus::benchmark("xdp_map_access").o2;
  uint64_t iters = bench::scaled(smoke ? 400 : 4000);

  printf("micro_pipeline: 4 chains x %llu iters on xdp_map_access (%d real insns), host has %u hardware threads\n",
         (unsigned long long)iters, src.num_real_insns(),
         std::thread::hardware_concurrency());
  bench::hr();
  printf("%-30s %4s %4s %12s %12s %8s %8s %6s %10s\n", "configuration",
         "thr", "slv", "proposals/s", "tests skip", "specs", "rollbk",
         "qpeak", "cache hit%");
  bench::hr();

  std::vector<Run> runs;
  if (requested_workers >= 0) {
    // Focused comparison: sync baseline vs async at the requested pool size
    // (pool size 0 degenerates to two identical sync runs).
    runs.push_back({"pipeline sync", 4, true, 0, {}});
    runs.push_back({"pipeline async", 4, true, requested_workers, {}});
  } else if (smoke) {
    runs.push_back({"legacy order (no reorder/exit)", 1, false, 0, {}});
    runs.push_back({"pipeline sync", 1, true, 0, {}});
  } else {
    runs.push_back({"legacy order (no reorder/exit)", 1, false, 0, {}});
    runs.push_back({"pipeline sync", 1, true, 0, {}});
    runs.push_back({"pipeline sync", 4, true, 0, {}});
    runs.push_back({"pipeline async", 4, true, 1, {}});
    runs.push_back({"pipeline async", 4, true, 2, {}});
    runs.push_back({"pipeline async", 4, true, 4, {}});
  }

  double base = 0, multi = 0;
  for (Run& r : runs) {
    r.res = run_once(src, r.threads, r.opts_on, r.solver_workers, iters);
    if (r.threads == 1 && r.opts_on && r.solver_workers == 0)
      base = proposals_per_sec(r.res);
    if (r.threads == 4 && r.opts_on && r.solver_workers == 0)
      multi = proposals_per_sec(r.res);
    print_row(r);
  }
  bench::hr();
  if (base > 0 && multi > 0)
    printf("4-thread speedup over 1-thread: %.2fx (meaningful only with >= 4 hardware threads)\n",
           multi / base);

  if (json_path) {
    FILE* f = fopen(json_path, "w");
    if (!f) {
      fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    fprintf(f, "{\n  \"bench\": \"micro_pipeline\",\n  \"smoke\": %s,\n",
            smoke ? "true" : "false");
    fprintf(f, "  \"iters_per_chain\": %llu,\n  \"results\": [\n",
            (unsigned long long)iters);
    for (size_t i = 0; i < runs.size(); ++i) {
      const Run& r = runs[i];
      fprintf(f,
              "    {\"label\": \"%s\", \"threads\": %d, "
              "\"solver_workers\": %d, \"proposals_per_sec\": %.1f, "
              "\"tests_executed\": %llu, \"tests_skipped\": %llu, "
              "\"early_exits\": %llu, \"speculations\": %llu, "
              "\"rollbacks\": %llu, \"solver_queue_peak\": %llu, "
              "\"cache_hit_rate\": %.4f}%s\n",
              r.label, r.threads, r.solver_workers, proposals_per_sec(r.res),
              (unsigned long long)r.res.tests_executed,
              (unsigned long long)r.res.tests_skipped,
              (unsigned long long)r.res.early_exits,
              (unsigned long long)r.res.speculations,
              (unsigned long long)r.res.rollbacks,
              (unsigned long long)r.res.solver_queue_peak,
              r.res.cache.hit_rate(), i + 1 < runs.size() ? "," : "");
    }
    fprintf(f, "  ]\n}\n");
    fclose(f);
    printf("wrote %s\n", json_path);
  }
  return 0;
}
