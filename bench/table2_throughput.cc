// Table 2: single-core throughput as the maximum loss-free forwarding rate
// (MLFFR, RFC 2544), for the six XDP benchmarks the paper measures on its
// testbed. Our testbed substitute: interpreter-traced per-packet service
// times + the M/D/1/K queue simulator (DESIGN.md §1).
#include <cstdio>

#include "bench_util.h"
#include "kernel/kernel_checker.h"
#include "sim/perf_eval.h"
#include "sim/queue_sim.h"

using namespace k2;

int main() {
  const char* names[] = {"xdp2_kern/xdp1", "xdp_router_ipv4", "xdp_fwd",
                         "xdp1_kern/xdp1", "xdp_map_access", "xdp-balancer"};
  const double paper_gain[] = {0.0211, 0.0, 0.0177, 0.0475, 0.027, 0.0294};

  printf("Table 2: throughput (MLFFR, Mpps per core), 64B-class packets\n");
  bench::hr('=');
  printf("%-18s | %8s %8s %8s | %8s | %10s\n", "benchmark", "-O1", "-O2",
         "K2", "gain", "paper gain");
  bench::hr();

  int i = 0;
  for (const char* name : names) {
    const corpus::Benchmark& b = corpus::benchmark(name);
    auto workload = sim::make_workload(b.o2, 64, 0x2222);

    ebpf::Program k2v = b.o2;
    if (b.o2.insns.size() < 400 || bench::full_mode()) {
      core::CompileResult res =
          bench::quick_compile(b.o2, core::Goal::LATENCY, 5000, 3);
      if (res.improved) k2v = res.best;
    }

    bool o1_loads = kernel::kernel_check(b.o1).accepted;
    double s_o1 = o1_loads ? sim::avg_packet_cost_ns(b.o1, workload) : 0;
    double s_o2 = sim::avg_packet_cost_ns(b.o2, workload);
    double s_k2 = sim::avg_packet_cost_ns(k2v, workload);
    double m_o1 = s_o1 > 0 ? sim::find_mlffr(s_o1) : 0;
    double m_o2 = sim::find_mlffr(s_o2);
    double m_k2 = sim::find_mlffr(s_k2);
    double gain = m_o2 > 0 ? m_k2 / m_o2 - 1.0 : 0;

    if (s_o1 > 0)
      printf("%-18s | %8.3f %8.3f %8.3f | %8s | %10s\n", name, m_o1, m_o2,
             m_k2, bench::pct(gain).c_str(), bench::pct(paper_gain[i]).c_str());
    else
      printf("%-18s | %8s %8.3f %8.3f | %8s | %10s\n", name, "DNL", m_o2,
             m_k2, bench::pct(gain).c_str(), bench::pct(paper_gain[i]).c_str());
    i++;
  }
  bench::hr();
  printf("shape target: K2 >= best clang, gains in the 0-5%% band\n");
  return 0;
}
