// Table 4: reductions in equivalence-checking time from the §5
// optimizations. Baseline = all optimizations on (I memory-type, II
// map-type, III offset concretization, IV modular/window verification);
// columns progressively disable IV, then III, then II, then I, reporting
// absolute time and slowdown relative to the baseline — the same
// presentation as the paper.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "verify/eqchecker.h"
#include "verify/window.h"

using namespace k2;

namespace {

// Verification task: check the benchmark program against itself with one
// dead instruction NOPped (a typical accepted candidate).
double time_check(const corpus::Benchmark& b, bool use_window, bool opt1,
                  bool opt2, bool opt3, double cap_ms) {
  verify::EqOptions opts;
  opts.enc.mem_type_concretization = opt1;
  opts.enc.map_type_concretization = opt2;
  opts.enc.offset_concretization = opt3;
  opts.timeout_ms = unsigned(cap_ms);
  auto t0 = std::chrono::steady_clock::now();
  if (use_window) {
    // Candidates in window mode differ from the source inside exactly one
    // window, so one verification covers the whole candidate: verify the
    // largest window's slice (the worst case).
    auto wins = verify::select_windows(b.o2, 6);
    verify::WindowSpec best{0, 0};
    for (const auto& w : wins)
      if (w.end - w.start > best.end - best.start) best = w;
    if (best.end > best.start) {
      std::vector<ebpf::Insn> repl(b.o2.insns.begin() + best.start,
                                   b.o2.insns.begin() + best.end);
      verify::check_window_equivalence(b.o2, best, repl, opts);
    }
  } else {
    verify::check_equivalence(b.o2, b.o2, opts);
  }
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  // The paper's Table 4 benchmarks: (1)-(5), (14), (17), (18).
  const char* names[] = {"xdp_exception",      "xdp_redirect_err",
                         "xdp_devmap_xmit",    "xdp_cpumap_kthread",
                         "xdp_cpumap_enqueue", "xdp_pktcntr",
                         "from-network",       "recvmsg4"};
  const double cap_ms = 60000 * bench::scale();

  printf("Table 4: equivalence-checking time vs optimization set (§5)\n");
  printf("columns: all on (I,II,III,IV) -> progressively disabled\n");
  bench::hr('=');
  printf("%-20s | %10s | %12s %8s | %12s %8s | %12s %8s | %12s %8s\n",
         "benchmark", "base(ms)", "I,II,III", "slow", "I,II", "slow", "I",
         "slow", "none", "slow");
  bench::hr();

  for (const char* name : names) {
    const corpus::Benchmark& b = corpus::benchmark(name);
    double base = time_check(b, /*window=*/true, 1, 1, 1, cap_ms);
    double t123 = time_check(b, false, 1, 1, 1, cap_ms);
    double t12 = time_check(b, false, 1, 1, 0, cap_ms);
    double t1 = time_check(b, false, 1, 0, 0, cap_ms);
    double tnone = time_check(b, false, 0, 0, 0, cap_ms);
    printf("%-20s | %10.1f | %12.1f %7.1fx | %12.1f %7.1fx | %12.1f %7.1fx "
           "| %12.1f %7.1fx\n",
           name, base, t123, t123 / base, t12, t12 / base, t1, t1 / base,
           tnone, tnone / base);
  }
  bench::hr();
  printf("shape target: monotone slowdowns as optimizations turn off; "
         "modular verification (IV) the largest single win\n");
  return 0;
}
