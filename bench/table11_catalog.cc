// Table 11 (App. G) + §9: the catalog of optimizations K2 discovered. Each
// case study is reproduced as a (before, after) pair and formally verified
// by the equivalence checker; the xdp_pktcntr case is additionally
// re-discovered by an actual search run.
#include <cstdio>

#include "bench_util.h"
#include "ebpf/assembler.h"
#include "verify/eqchecker.h"
#include "verify/window.h"

using namespace k2;

namespace {

struct Case {
  const char* title;
  const char* before;
  const char* after;
};

void show(const Case& c) {
  ebpf::Program a = ebpf::assemble(c.before);
  ebpf::Program b = ebpf::assemble(c.after);
  verify::EqResult r = verify::check_equivalence(a, b);
  printf("%-58s | %2d -> %2d insns | %s\n", c.title, a.size_slots(),
         b.size_slots(), verify::verdict_name(r.verdict));
}

}  // namespace

int main() {
  printf("Table 11: catalog of K2 optimizations, formally re-verified\n");
  bench::hr('=');

  show({"coalesce reg-zero + two 32-bit stores (xdp_pktcntr, §9 ex.1)",
        "mov64 r1, 0\n"
        "stxw [r10-4], r1\n"
        "stxw [r10-8], r1\n"
        "ldxdw r0, [r10-8]\n"
        "exit\n",
        "stdw [r10-8], 0\n"
        "ldxdw r0, [r10-8]\n"
        "exit\n"});

  show({"coalesce byte-wise memcpy into wide moves (xdp_fwd)",
        "stdw [r10-8], 0x112233445566\n"
        "ldxh r1, [r10-8]\n"
        "stxb [r10-16], r1\n"
        "rsh64 r1, 8\n"
        "stxb [r10-15], r1\n"
        "ldxh r1, [r10-6]\n"
        "stxb [r10-14], r1\n"
        "rsh64 r1, 8\n"
        "stxb [r10-13], r1\n"
        "ldxdw r0, [r10-16]\n"
        "exit\n",
        "stdw [r10-8], 0x112233445566\n"
        "ldxw r1, [r10-8]\n"
        "stxw [r10-16], r1\n"
        "ldxdw r0, [r10-16]\n"
        "exit\n"});

  show({"load-add-store into atomic add (sys_enter_open)",
        "stdw [r10-8], 41\n"
        "ldxdw r1, [r10-8]\n"
        "add64 r1, 1\n"
        "stxdw [r10-8], r1\n"
        "ldxdw r0, [r10-8]\n"
        "exit\n",
        "stdw [r10-8], 41\n"
        "mov64 r1, 1\n"
        "xadd64 [r10-8], r1\n"
        "ldxdw r0, [r10-8]\n"
        "exit\n"});

  show({"16-bit swap pairs into 32-bit swap (xdp2)",
        "stdw [r10-8], 0x1122334455667788\n"
        "ldxh r1, [r10-8]\n"
        "ldxh r2, [r10-4]\n"
        "stxh [r10-4], r1\n"
        "stxh [r10-8], r2\n"
        "ldxh r1, [r10-6]\n"
        "ldxh r2, [r10-2]\n"
        "stxh [r10-2], r1\n"
        "stxh [r10-6], r2\n"
        "ldxdw r0, [r10-8]\n"
        "exit\n",
        "stdw [r10-8], 0x1122334455667788\n"
        "ldxw r1, [r10-8]\n"
        "ldxw r2, [r10-4]\n"
        "stxw [r10-4], r1\n"
        "stxw [r10-8], r2\n"
        "ldxdw r0, [r10-8]\n"
        "exit\n"});

  show({"dead zero-store elimination (xdp_map_access)",
        "mov64 r3, 0\n"
        "stxb [r10-8], r3\n"
        "mov64 r0, 2\n"
        "exit\n",
        "mov64 r0, 2\n"
        "exit\n"});

  // Context-dependent strength reduction (§9 ex.2) needs window
  // preconditions: with r3 known to be 4, mul becomes shift.
  {
    ebpf::Program p = ebpf::assemble(
        "mov64 r3, 4\n"
        "mov64 r2, 21\n"
        "mul64 r2, r3\n"
        "mov64 r0, r2\n"
        "exit\n");
    ebpf::Program repl_holder = ebpf::assemble(
        "mov64 r2, 21\n"
        "lsh64 r2, 2\n"
        "exit\n");
    std::vector<ebpf::Insn> repl(repl_holder.insns.begin(),
                                 repl_holder.insns.end() - 1);
    verify::EqResult r = verify::check_window_equivalence(
        p, verify::WindowSpec{1, 3}, repl);
    printf("%-58s | %2d -> %2d insns | %s (window precondition r3==4)\n",
           "context-dependent mul->shift (balancer_kern, §9 ex.2)", 2, 2,
           verify::verdict_name(r.verdict));
  }

  bench::hr();

  // Live re-discovery: run the search on the actual xdp_pktcntr benchmark.
  printf("re-discovery: searching xdp_pktcntr for the §9 rewrite...\n");
  const corpus::Benchmark& b = corpus::benchmark("xdp_pktcntr");
  core::CompileResult res =
      bench::quick_compile(b.o2, core::Goal::INST_COUNT, 8000, 4);
  printf("  source: %d insns, K2: %d insns (paper: 22 -> 19)\n",
         b.o2.size_slots(),
         res.improved ? res.best.size_slots() : b.o2.size_slots());
  if (res.improved) {
    printf("---- optimized program ----\n%s", res.best.to_string().c_str());
  }
  return 0;
}
