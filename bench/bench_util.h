// Shared helpers for the table-reproduction benches: consistent formatting,
// environment-based scaling, and a quick-search wrapper.
//
// Scaling: search-based benches default to laptop-scale budgets so the
// whole suite finishes in minutes. Set K2_BENCH_SCALE=<mult> to multiply
// iteration budgets (e.g. 10 for paper-scale overnight runs), and
// K2_BENCH_FULL=1 to include the 1.8k-instruction xdp-balancer in
// search-based tables.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/compiler.h"
#include "corpus/corpus.h"

namespace k2::bench {

// --key=value lookup over argv (shared by the bench CLIs; tools/k2c.cc
// carries its own copy to stay free of bench headers).
inline const char* arg_value(int argc, char** argv, const char* key) {
  size_t n = strlen(key);
  for (int i = 1; i < argc; ++i)
    if (strncmp(argv[i], key, n) == 0 && argv[i][n] == '=')
      return argv[i] + n + 1;
  return nullptr;
}

inline double scale() {
  const char* s = std::getenv("K2_BENCH_SCALE");
  return s ? std::max(0.01, atof(s)) : 1.0;
}

inline bool full_mode() {
  const char* s = std::getenv("K2_BENCH_FULL");
  return s && s[0] == '1';
}

inline uint64_t scaled(uint64_t base) {
  return uint64_t(double(base) * scale());
}

// A quick K2 run with sensible bench defaults.
inline core::CompileResult quick_compile(const ebpf::Program& src,
                                         core::Goal goal, uint64_t iters,
                                         int chains = 2, int top_k = 1) {
  core::CompileOptions o;
  o.goal = goal;
  o.iters_per_chain = scaled(iters);
  o.num_chains = chains;
  o.threads = chains;
  o.top_k = top_k;
  o.eq.timeout_ms = 10000;
  o.settings = core::table8_settings();
  return core::compile(src, o);
}

inline void hr(char c = '-') {
  for (int i = 0; i < 110; ++i) putchar(c);
  putchar('\n');
}

inline std::string pct(double frac) {
  char buf[32];
  snprintf(buf, sizeof buf, "%.2f%%", frac * 100.0);
  return buf;
}

}  // namespace k2::bench
