// Micro-benchmark: execution-engine throughput over corpus programs (§7 —
// the execution engine sits in the innermost search loop, running every
// proposal against the full test suite). Three-way comparison:
//
//   legacy   the original switch interpreter (per-run Machine::init,
//            per-instruction opcode classification)
//   decoded  the pre-decoded fast interpreter (decode once + computed-goto
//            dispatch + dirty-region machine reset)
//   jit      the native x86-64 baseline JIT (ExecBackend::JIT); rows where
//            the program falls back (unsupported helper, non-x86-64 host)
//            report the fallback's numbers and are flagged
//
// All three are checked bit-identical on the measured workload before any
// timing happens.
//
//   bench_micro_interp                     full run, human-readable table
//   bench_micro_interp --smoke             short CI mode
//   bench_micro_interp --json out.json     machine-readable (k2-microinterp/v2)
//   bench_micro_interp --min-speedup X     exit 1 if geomean decoded/legacy
//                                          speedup < X (the CI perf tripwire)
//   bench_micro_interp --min-jit-speedup X advisory: warn if geomean
//                                          jit/decoded speedup < X (native
//                                          rows only); --strict-jit makes it
//                                          exit 1 (for multi-issue hosts)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <vector>

#include "api/schema.h"
#include "bench_util.h"
#include "interp/fast_interp.h"
#include "interp/interpreter.h"
#include "jit/backend_runner.h"
#include "sim/perf_eval.h"

namespace {

using namespace k2;
using Clock = std::chrono::steady_clock;

struct Row {
  std::string name;
  double legacy_eps = 0;   // executions per second
  double decoded_eps = 0;
  double decoded_ips = 0;  // instructions per second (decoded path)
  double jit_eps = 0;
  double speedup = 0;      // decoded / legacy
  double jit_speedup = 0;  // jit / decoded
  bool jit_native = false;
};

bool results_equal(const interp::RunResult& a, const interp::RunResult& b) {
  return a.fault == b.fault && a.fault_pc == b.fault_pc && a.r0 == b.r0 &&
         a.insns_executed == b.insns_executed &&
         a.packet_out == b.packet_out && a.maps_out == b.maps_out;
}

Row measure(const std::string& name, uint64_t iters) {
  const corpus::Benchmark& b = corpus::benchmark(name);
  std::vector<interp::InputSpec> workload = sim::make_workload(b.o2, 16, 42);
  interp::RunOptions opt;

  interp::SuiteRunner runner;
  runner.prepare(b.o2);
  jit::BackendRunner jrunner;
  jrunner.select(jit::ExecBackend::JIT);
  jrunner.prepare(b.o2);

  // Bit-identity sanity for BOTH engines on the exact measured workload.
  for (const interp::InputSpec& in : workload) {
    interp::RunResult legacy = interp::run(b.o2, in, opt);
    if (!results_equal(legacy, runner.run_one(in, opt))) {
      fprintf(stderr, "FATAL: decoded interpreter diverged on %s\n",
              name.c_str());
      exit(1);
    }
    if (!results_equal(legacy, jrunner.run_one(in, opt))) {
      fprintf(stderr, "FATAL: jit backend diverged on %s\n", name.c_str());
      exit(1);
    }
  }

  Row row;
  row.name = name;
  row.jit_native = jrunner.jit_active();
  uint64_t sink = 0;

  {
    // Legacy baseline exactly as the pre-refactor pipeline ran it: reused
    // Machine, full re-init per run.
    interp::Machine m;
    auto t0 = Clock::now();
    for (uint64_t i = 0; i < iters; ++i) {
      interp::RunResult r =
          interp::run(b.o2, workload[i % workload.size()], opt, m);
      sink ^= r.r0 + r.insns_executed;
    }
    double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    row.legacy_eps = secs > 0 ? double(iters) / secs : 0;
  }
  {
    uint64_t insns = 0;
    auto t0 = Clock::now();
    for (uint64_t i = 0; i < iters; ++i) {
      const interp::RunResult& r =
          runner.run_one(workload[i % workload.size()], opt);
      sink ^= r.r0;
      insns += r.insns_executed;
    }
    double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    row.decoded_eps = secs > 0 ? double(iters) / secs : 0;
    row.decoded_ips = secs > 0 ? double(insns) / secs : 0;
  }
  {
    auto t0 = Clock::now();
    for (uint64_t i = 0; i < iters; ++i) {
      const interp::RunResult& r =
          jrunner.run_one(workload[i % workload.size()], opt);
      sink ^= r.r0;
    }
    double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    row.jit_eps = secs > 0 ? double(iters) / secs : 0;
  }
  if (sink == 0xdeadbeef) fprintf(stderr, "(unlikely)\n");  // keep `sink` live
  row.speedup = row.legacy_eps > 0 ? row.decoded_eps / row.legacy_eps : 0;
  row.jit_speedup = row.decoded_eps > 0 ? row.jit_eps / row.decoded_eps : 0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool strict_jit = false;
  const char* json_path = nullptr;
  double min_speedup = 0;
  double min_jit_speedup = 0;
  for (int i = 1; i < argc; ++i) {
    if (!strcmp(argv[i], "--smoke")) {
      smoke = true;
    } else if (!strcmp(argv[i], "--strict-jit")) {
      strict_jit = true;
    } else if (!strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else if (!strncmp(argv[i], "--json=", 7)) {
      json_path = argv[i] + 7;
    } else if (!strcmp(argv[i], "--min-speedup") && i + 1 < argc) {
      min_speedup = atof(argv[++i]);
    } else if (!strncmp(argv[i], "--min-speedup=", 14)) {
      min_speedup = atof(argv[i] + 14);
    } else if (!strcmp(argv[i], "--min-jit-speedup") && i + 1 < argc) {
      min_jit_speedup = atof(argv[++i]);
    } else if (!strncmp(argv[i], "--min-jit-speedup=", 18)) {
      min_jit_speedup = atof(argv[i] + 18);
    } else {
      // Loud failure: a typo here would otherwise silently disarm the
      // --min-speedup CI tripwire.
      fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  std::vector<std::string> names = {"xdp_exception", "xdp2_kern/xdp1",
                                    "xdp_fwd", "recvmsg4", "xdp_map_access"};
  if (bench::full_mode()) names.push_back("xdp-balancer");
  uint64_t iters = bench::scaled(smoke ? 4000 : 100000);

  printf("micro_interp: %llu executions per row, single thread\n",
         (unsigned long long)iters);
  bench::hr();
  printf("%-17s %14s %14s %14s %14s %8s %8s\n", "program", "legacy ex/s",
         "decoded ex/s", "decoded in/s", "jit ex/s", "dec/leg", "jit/dec");
  bench::hr();

  std::vector<Row> rows;
  double log_sum = 0;
  double jit_log_sum = 0;
  size_t jit_rows = 0;
  for (const std::string& name : names) {
    Row r = measure(name, iters);
    printf("%-17s %14.0f %14.0f %14.0f %14.0f %7.2fx %6.2fx%s\n",
           r.name.c_str(), r.legacy_eps, r.decoded_eps, r.decoded_ips,
           r.jit_eps, r.speedup, r.jit_speedup,
           r.jit_native ? "" : " (fallback)");
    log_sum += std::log(r.speedup);
    if (r.jit_native) {
      jit_log_sum += std::log(r.jit_speedup);
      jit_rows++;
    }
    rows.push_back(std::move(r));
  }
  double geomean = std::exp(log_sum / double(rows.size()));
  // JIT geomean covers natively-translated rows only; fallback rows would
  // just re-measure the fast interpreter against itself.
  double jit_geomean =
      jit_rows > 0 ? std::exp(jit_log_sum / double(jit_rows)) : 0;
  bench::hr();
  printf("geomean decoded/legacy speedup: %.2fx\n", geomean);
  printf("geomean jit/decoded speedup:    %.2fx (%zu/%zu programs native)\n",
         jit_geomean, jit_rows, rows.size());

  if (json_path) {
    FILE* f = fopen(json_path, "w");
    if (!f) {
      fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    fprintf(f, "{\n  \"schema\": \"%s\",\n  \"bench\": \"micro_interp\",\n",
            api::kMicroInterpSchema);
    fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    fprintf(f, "  \"iters_per_row\": %llu,\n  \"results\": [\n",
            (unsigned long long)iters);
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      fprintf(f,
              "    {\"name\": \"%s\", \"legacy_execs_per_sec\": %.0f, "
              "\"decoded_execs_per_sec\": %.0f, "
              "\"decoded_insns_per_sec\": %.0f, "
              "\"jit_execs_per_sec\": %.0f, \"speedup\": %.3f, "
              "\"jit_speedup\": %.3f, \"jit_native\": %s}%s\n",
              r.name.c_str(), r.legacy_eps, r.decoded_eps, r.decoded_ips,
              r.jit_eps, r.speedup, r.jit_speedup,
              r.jit_native ? "true" : "false",
              i + 1 < rows.size() ? "," : "");
    }
    fprintf(f, "  ],\n  \"geomean_speedup\": %.3f,\n", geomean);
    fprintf(f, "  \"geomean_jit_speedup\": %.3f\n}\n", jit_geomean);
    fclose(f);
    printf("wrote %s\n", json_path);
  }

  if (min_speedup > 0 && geomean < min_speedup) {
    fprintf(stderr,
            "FAIL: geomean speedup %.2fx below required %.2fx — decode-path "
            "perf regression\n",
            geomean, min_speedup);
    return 1;
  }
  if (min_jit_speedup > 0 && jit_rows > 0 && jit_geomean < min_jit_speedup) {
    // Advisory by default: container/VM hosts (no trusted cycle counters,
    // shared cores) routinely under-report the JIT's advantage. --strict-jit
    // upgrades it to a hard gate for bare-metal multi-issue hosts.
    fprintf(stderr,
            "%s: geomean jit/decoded speedup %.2fx below target %.2fx\n",
            strict_jit ? "FAIL" : "ADVISORY", jit_geomean, min_jit_speedup);
    if (strict_jit) return 1;
  }
  return 0;
}
