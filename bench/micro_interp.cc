// Micro-benchmark: interpreter throughput over corpus programs (§7 — the
// interpreter sits in the innermost search loop, executing every proposal
// against the full test suite).
#include <benchmark/benchmark.h>

#include "corpus/corpus.h"
#include "interp/interpreter.h"
#include "sim/perf_eval.h"

namespace {

void BM_Interpret(benchmark::State& state, const std::string& name) {
  const k2::corpus::Benchmark& b = k2::corpus::benchmark(name);
  auto workload = k2::sim::make_workload(b.o2, 16, 42);
  size_t i = 0;
  uint64_t insns = 0;
  for (auto _ : state) {
    k2::interp::RunResult r =
        k2::interp::run(b.o2, workload[i++ % workload.size()]);
    benchmark::DoNotOptimize(r.r0);
    insns += r.insns_executed;
  }
  state.counters["insns/s"] = benchmark::Counter(
      double(insns), benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Interpret, xdp_exception, std::string("xdp_exception"));
BENCHMARK_CAPTURE(BM_Interpret, xdp2, std::string("xdp2_kern/xdp1"));
BENCHMARK_CAPTURE(BM_Interpret, xdp_fwd, std::string("xdp_fwd"));
BENCHMARK_CAPTURE(BM_Interpret, recvmsg4, std::string("recvmsg4"));
BENCHMARK_CAPTURE(BM_Interpret, balancer, std::string("xdp-balancer"));

BENCHMARK_MAIN();
